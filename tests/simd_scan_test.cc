#include <gtest/gtest.h>

#include <cctype>
#include <clocale>
#include <string>

#include "testing/invariants.h"
#include "util/ascii.h"
#include "util/simd_scan.h"
#include "util/strings.h"

namespace sparqlog::util {
namespace {

namespace scan = sparqlog::util::scan;

// ---------------------------------------------------------------------------
// ASCII class table vs the C locale's <cctype>
// ---------------------------------------------------------------------------

// The table exists to replace std::isspace/isalnum/isxdigit calls whose
// results depend on the global locale. Pin the table to the "C" locale
// semantics over all 256 byte values.
TEST(AsciiTableTest, MatchesCLocaleCtypeForAll256Bytes) {
  const char* prev = std::setlocale(LC_ALL, nullptr);
  std::string saved = prev != nullptr ? prev : "C";
  ASSERT_NE(std::setlocale(LC_ALL, "C"), nullptr);
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const unsigned char u = static_cast<unsigned char>(b);
    EXPECT_EQ(IsAsciiSpace(c), std::isspace(u) != 0) << "byte " << b;
    EXPECT_EQ(IsAsciiDigit(c), std::isdigit(u) != 0) << "byte " << b;
    EXPECT_EQ(IsAsciiAlpha(c), std::isalpha(u) != 0) << "byte " << b;
    EXPECT_EQ(IsAsciiAlnum(c), std::isalnum(u) != 0) << "byte " << b;
    EXPECT_EQ(IsAsciiXdigit(c), std::isxdigit(u) != 0) << "byte " << b;
  }
  std::setlocale(LC_ALL, saved.c_str());
}

TEST(AsciiTableTest, LexerClassesMatchHandWrittenPredicates) {
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    const unsigned char u = static_cast<unsigned char>(b);
    // The lexer's historical identifier predicates, byte for byte.
    const bool name_start = std::isalpha(u) != 0 || c == '_' || u >= 0x80;
    const bool name_char = name_start || std::isdigit(u) != 0 || c == '-';
    EXPECT_EQ(IsNameStartChar(c), name_start) << "byte " << b;
    EXPECT_EQ(IsNameChar(c), name_char) << "byte " << b;
    const bool iri_char = u > 0x20 && c != '<' && c != '>' && c != '"' &&
                          c != '{' && c != '}' && c != '|' && c != '^' &&
                          c != '`' && c != '\\';
    EXPECT_EQ(IsIriChar(c), iri_char) << "byte " << b;
  }
}

// ---------------------------------------------------------------------------
// Scalar vs SIMD at the vector boundaries
// ---------------------------------------------------------------------------

// A stop byte at positions straddling the 16-byte register width: both
// implementations must agree at every start offset (CheckScanEquivalence
// sweeps all primitives, all offsets, plus PercentDecode and the lexer).
TEST(SimdScanTest, StopBytesAtVectorBoundaries) {
  for (const char stop : {' ', '.', '%', '+', '"', '\'', '\\', '\n', '<'}) {
    for (const size_t pos : {0u, 1u, 14u, 15u, 16u, 17u, 30u, 31u, 32u, 33u}) {
      std::string input(40, 'a');
      input[pos] = stop;
      auto v = testing::CheckScanEquivalence(input);
      EXPECT_FALSE(v.has_value())
          << "stop '" << static_cast<int>(stop) << "' at " << pos << ": "
          << (v ? v->detail : "");
    }
  }
}

// Runs ending exactly at 15/16/17 bytes, and inputs shorter than one
// register, exercise the masked tails.
TEST(SimdScanTest, RunLengthsAroundRegisterWidth) {
  for (const size_t len : {0u, 1u, 7u, 15u, 16u, 17u, 31u, 32u, 33u, 47u}) {
    std::string ident(len, 'x');
    EXPECT_EQ(scan::NameRun(ident, 0), len) << "len " << len;
    EXPECT_EQ(scan::SimdNameRun(ident, 0), scan::ScalarNameRun(ident, 0));
    std::string ws(len, ' ');
    EXPECT_EQ(scan::WhitespaceRun(ws, 0), len) << "len " << len;
    auto v = testing::CheckScanEquivalence(ident + "?" + ws);
    EXPECT_FALSE(v.has_value()) << (v ? v->detail : "");
  }
}

TEST(SimdScanTest, HighBytesCountAsIdentifierChars) {
  std::string input = "pr\xC3\xA9" "fix rest";
  EXPECT_EQ(scan::NameRun(input, 0), 7u);  // stops at the space
  auto v = testing::CheckScanEquivalence(input);
  EXPECT_FALSE(v.has_value()) << (v ? v->detail : "");
}

TEST(SimdScanTest, FindStringStopRespectsLongQuoteMode) {
  const std::string body = std::string(20, 'b') + "\nmore\"end";
  // Short strings stop at the newline; long strings sail past it.
  EXPECT_EQ(scan::FindStringStop(body, 0, '"', /*long_quote=*/false), 20u);
  EXPECT_EQ(scan::FindStringStop(body, 0, '"', /*long_quote=*/true), 25u);
  // The escape byte stops both modes.
  const std::string esc = std::string(17, 'c') + "\\\"";
  EXPECT_EQ(scan::FindStringStop(esc, 0, '"', false), 17u);
  EXPECT_EQ(scan::FindStringStop(esc, 0, '"', true), 17u);
  // A quote of the other kind is not a stop.
  EXPECT_EQ(scan::FindStringStop("abc'def\"x", 0, '"', true), 7u);
}

TEST(SimdScanTest, FindEscapeAtVectorEdges) {
  for (const char esc : {'%', '+'}) {
    for (const size_t pos : {0u, 15u, 16u, 17u, 32u}) {
      std::string input(40, 'u');
      input[pos] = esc;
      EXPECT_EQ(scan::FindEscape(input, 0), pos) << esc << " at " << pos;
      EXPECT_EQ(scan::ScalarFindEscape(input, 0), pos);
    }
  }
  EXPECT_EQ(scan::FindEscape("clean", 0), 5u);
  EXPECT_EQ(scan::FindEscape("", 0), 0u);
}

// UrlDecode's fast path memcpy's the clean span found by FindEscape;
// the observable behavior must stay byte-identical to the slow path.
TEST(SimdScanTest, UrlDecodeCleanAndEscapedSpans) {
  EXPECT_EQ(PercentDecode("no-escapes-here"), "no-escapes-here");
  EXPECT_EQ(PercentDecode("a%20b+c"), "a b c");
  EXPECT_EQ(PercentDecode("%zz%2"), "%zz%2");  // malformed escapes pass through
  std::string long_clean(100, 'q');
  EXPECT_EQ(PercentDecode(long_clean + "%41"), long_clean + "A");
  auto v = testing::CheckScanEquivalence(long_clean + "%41+%zz%");
  EXPECT_FALSE(v.has_value()) << (v ? v->detail : "");
}

}  // namespace
}  // namespace sparqlog::util
