// Tests for the durable snapshot stack: CRC32C, vbyte streams, the
// corpus term dictionary, the snapshot container (every-byte corruption
// matrix), the two-generation store, and the atomic-publish fault
// hooks (util/crc32c.h, util/vbyte.h, corpus/dictionary.h,
// util/snapshot_io.h).

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "corpus/dictionary.h"
#include "gtest/gtest.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "util/snapshot_io.h"
#include "util/vbyte.h"

namespace sparqlog {
namespace {

namespace snap = util::snapshot;
namespace vbyte = util::vbyte;

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswers) {
  // The Castagnoli check value (RFC 3720 appendix B / every CRC
  // catalogue): crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(util::Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(util::Crc32c(""), 0u);
  // 32 zero bytes — the iSCSI test vector.
  EXPECT_EQ(util::Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(util::Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  util::Rng rng(7);
  std::string data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back(static_cast<char>(rng.Below(256)));
  }
  const uint32_t whole = util::Crc32c(data);
  // Every split point yields the same value via Crc32cExtend.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{63},
                     size_t{500}, data.size()}) {
    const uint32_t a =
        util::Crc32cExtend(0, std::string_view(data).substr(0, cut));
    const uint32_t b =
        util::Crc32cExtend(a, std::string_view(data).substr(cut));
    EXPECT_EQ(b, whole) << "split at " << cut;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t clean = util::Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(util::Crc32c(data), clean) << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

// ---------------------------------------------------------------------------
// vbyte
// ---------------------------------------------------------------------------

TEST(VbyteTest, VarintRoundTripEdgesAndRandom) {
  std::vector<uint64_t> values = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ULL << 56) - 1,
                                  1ULL << 56,
                                  std::numeric_limits<uint64_t>::max()};
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) values.push_back(rng.Next() >> rng.Below(64));

  std::string buf;
  for (uint64_t v : values) vbyte::PutVarint(buf, v);
  std::string_view in = buf;
  for (uint64_t v : values) {
    uint64_t got = ~v;
    ASSERT_TRUE(vbyte::GetVarint(in, got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(VbyteTest, VarintLengthIsMinimal) {
  auto encoded_size = [](uint64_t v) {
    std::string buf;
    vbyte::PutVarint(buf, v);
    return buf.size();
  };
  EXPECT_EQ(encoded_size(0), 1u);
  EXPECT_EQ(encoded_size(127), 1u);
  EXPECT_EQ(encoded_size(128), 2u);
  EXPECT_EQ(encoded_size(16383), 2u);
  EXPECT_EQ(encoded_size(16384), 3u);
  EXPECT_EQ(encoded_size(std::numeric_limits<uint64_t>::max()), 10u);
}

TEST(VbyteTest, VarintRejectsTruncation) {
  std::string buf;
  vbyte::PutVarint(buf, std::numeric_limits<uint64_t>::max());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(vbyte::GetVarint(in, v)) << "prefix of " << cut << " bytes";
  }
}

TEST(VbyteTest, VarintRejectsOverlongAndOverflow) {
  // Eleven continuation bytes: more than any u64 needs.
  std::string overlong(10, '\x80');
  overlong.push_back('\x01');
  std::string_view in = overlong;
  uint64_t v;
  EXPECT_FALSE(vbyte::GetVarint(in, v));

  // Ten bytes whose tenth carries bits above 2^63 — would silently
  // truncate if accepted.
  std::string overflow(9, '\x80');
  overflow.push_back('\x02');
  std::string_view in2 = overflow;
  EXPECT_FALSE(vbyte::GetVarint(in2, v));
}

TEST(VbyteTest, ZigzagRoundTrip) {
  const std::vector<int64_t> values = {0,
                                       -1,
                                       1,
                                       -2,
                                       2,
                                       63,
                                       -64,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  std::string buf;
  for (int64_t v : values) vbyte::PutZigzag(buf, v);
  std::string_view in = buf;
  for (int64_t v : values) {
    int64_t got = 0;
    ASSERT_TRUE(vbyte::GetZigzag(in, got));
    EXPECT_EQ(got, v);
  }
  // Small magnitudes stay one byte regardless of sign.
  std::string small;
  vbyte::PutZigzag(small, -64);
  EXPECT_EQ(small.size(), 1u);
}

TEST(VbyteTest, LenPrefixedRoundTripAndGuard) {
  std::string buf;
  vbyte::PutLenPrefixed(buf, "payload");
  vbyte::PutLenPrefixed(buf, "");
  std::string_view in = buf;
  std::string_view s;
  ASSERT_TRUE(vbyte::GetLenPrefixed(in, s));
  EXPECT_EQ(s, "payload");
  ASSERT_TRUE(vbyte::GetLenPrefixed(in, s));
  EXPECT_EQ(s, "");
  EXPECT_TRUE(in.empty());

  // A length prefix claiming more than max_len (or than the input
  // holds) is rejected.
  std::string huge;
  vbyte::PutVarint(huge, 1000);
  huge += "way too short";
  std::string_view in2 = huge;
  EXPECT_FALSE(vbyte::GetLenPrefixed(in2, s));
  std::string capped;
  vbyte::PutLenPrefixed(capped, "0123456789");
  std::string_view in3 = capped;
  EXPECT_FALSE(vbyte::GetLenPrefixed(in3, s, /*max_len=*/9));
}

TEST(VbyteTest, DeltaSortedRoundTrip) {
  util::Rng rng(13);
  std::vector<uint64_t> sorted;
  uint64_t v = 0;
  for (int i = 0; i < 300; ++i) {
    v += 1 + rng.Below(1ULL << 40);
    sorted.push_back(v);
  }
  std::string buf;
  vbyte::PutDeltaSorted(buf, sorted);
  std::string_view in = buf;
  std::vector<uint64_t> got;
  ASSERT_TRUE(vbyte::GetDeltaSorted(in, got));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(got, sorted);

  std::string empty_buf;
  vbyte::PutDeltaSorted(empty_buf, {});
  std::string_view in2 = empty_buf;
  std::vector<uint64_t> got2;
  ASSERT_TRUE(vbyte::GetDeltaSorted(in2, got2));
  EXPECT_TRUE(got2.empty());
}

TEST(VbyteTest, DeltaSortedRejectsCorruptStreams) {
  // A zero delta (duplicate) after the first element.
  std::string dup;
  vbyte::PutVarint(dup, 2);  // count
  vbyte::PutVarint(dup, 5);  // first
  vbyte::PutVarint(dup, 0);  // delta 0 -> duplicate
  std::string_view in = dup;
  std::vector<uint64_t> out;
  EXPECT_FALSE(vbyte::GetDeltaSorted(in, out));

  // A wrapping delta (value decreases mod 2^64).
  std::string wrap;
  vbyte::PutVarint(wrap, 2);
  vbyte::PutVarint(wrap, 10);
  vbyte::PutVarint(wrap, std::numeric_limits<uint64_t>::max());  // 10 + max wraps
  std::string_view in2 = wrap;
  EXPECT_FALSE(vbyte::GetDeltaSorted(in2, out));

  // A count larger than the remaining bytes cannot drive the reserve.
  std::string huge;
  vbyte::PutVarint(huge, 1ULL << 40);
  std::string_view in3 = huge;
  EXPECT_FALSE(vbyte::GetDeltaSorted(in3, out));

  // Truncated mid-stream.
  std::vector<uint64_t> sorted = {1, 2, 3, 4, 5};
  std::string buf;
  vbyte::PutDeltaSorted(buf, sorted);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view in4(buf.data(), cut);
    EXPECT_FALSE(vbyte::GetDeltaSorted(in4, out)) << "cut " << cut;
  }
}

// ---------------------------------------------------------------------------
// TermDictionary
// ---------------------------------------------------------------------------

TEST(TermDictionaryTest, InternIsIdempotentAndDense) {
  corpus::TermDictionary dict;
  const uint64_t a = dict.Intern("wikidata");
  const uint64_t b = dict.Intern("dbpedia");
  EXPECT_EQ(dict.Intern("wikidata"), a);
  EXPECT_EQ(dict.Intern("dbpedia"), b);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.size(), 2u);
  ASSERT_NE(dict.term(a), nullptr);
  EXPECT_EQ(*dict.term(a), "wikidata");
  EXPECT_EQ(dict.term(99), nullptr);
}

TEST(TermDictionaryTest, EncodeDecodeRoundTrip) {
  corpus::TermDictionary dict;
  std::vector<uint64_t> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(dict.Intern("term-" + std::to_string(i * 7 % 50)));
  }
  std::string buf;
  dict.EncodeTo(buf);
  corpus::TermDictionary loaded;
  std::string_view in = buf;
  ASSERT_TRUE(loaded.DecodeFrom(in));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(loaded.size(), dict.size());
  for (uint64_t id = 0; id < dict.size(); ++id) {
    ASSERT_NE(loaded.term(id), nullptr);
    EXPECT_EQ(*loaded.term(id), *dict.term(id));
  }
}

TEST(TermDictionaryTest, DecodeRejectsTruncationAndDuplicates) {
  corpus::TermDictionary dict;
  dict.Intern("alpha");
  dict.Intern("beta");
  std::string buf;
  dict.EncodeTo(buf);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    corpus::TermDictionary d;
    std::string_view in(buf.data(), cut);
    EXPECT_FALSE(d.DecodeFrom(in)) << "cut " << cut;
  }
  // Two identical terms cannot both intern to distinct dense ids.
  std::string dup;
  vbyte::PutVarint(dup, 2);
  vbyte::PutLenPrefixed(dup, "same");
  vbyte::PutLenPrefixed(dup, "same");
  corpus::TermDictionary d;
  std::string_view in = dup;
  EXPECT_FALSE(d.DecodeFrom(in));
}

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

class SnapshotFileTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& tag) {
    return (std::filesystem::temp_directory_path() /
            ("sparqlog_snapshot_test_" + tag + "_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed())))
        .string();
  }

  static std::string SampleImage() {
    snap::SnapshotWriter writer;
    writer.AddSection(1, "first section payload");
    writer.AddSection(2, "");  // empty payloads are legal
    std::string big;
    for (int i = 0; i < 400; ++i) vbyte::PutVarint(big, uint64_t(i) * 977);
    writer.AddSection(16, big);
    return writer.Finish();
  }

  static void WriteRaw(const std::string& path, std::string_view bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
};

TEST_F(SnapshotFileTest, RoundTripStreamAndMmap) {
  const std::string path = Path("roundtrip");
  const std::string image = SampleImage();
  WriteRaw(path, image);
  for (snap::LoadMode mode : {snap::LoadMode::kStream, snap::LoadMode::kMmap}) {
    auto loaded = snap::Snapshot::Load(path, mode);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const snap::Snapshot& s = loaded.value();
    EXPECT_EQ(s.section_count(), 3u);
    EXPECT_EQ(s.file_bytes(), image.size());
    ASSERT_NE(s.section(1), nullptr);
    EXPECT_EQ(*s.section(1), "first section payload");
    ASSERT_NE(s.section(2), nullptr);
    EXPECT_TRUE(s.section(2)->empty());
    ASSERT_NE(s.section(16), nullptr);
    EXPECT_EQ(s.section(99), nullptr);
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, EveryByteFlipIsDetected) {
  // The tentpole guarantee: no single corrupt byte, anywhere in the
  // file, loads silently. Every byte is under either the header CRC or
  // a section CRC.
  const std::string path = Path("flip");
  const std::string image = SampleImage();
  for (size_t i = 0; i < image.size(); ++i) {
    std::string damaged = image;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x01);
    WriteRaw(path, damaged);
    auto loaded = snap::Snapshot::Load(path, snap::LoadMode::kStream);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i << " loaded silently";
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, EveryTruncationIsDetected) {
  const std::string path = Path("trunc");
  const std::string image = SampleImage();
  for (size_t keep = 0; keep < image.size(); ++keep) {
    WriteRaw(path, std::string_view(image).substr(0, keep));
    auto loaded = snap::Snapshot::Load(path, snap::LoadMode::kStream);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << keep
                              << " bytes loaded silently";
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, TrailingGarbageIsDetected) {
  const std::string path = Path("tail");
  for (const std::string& tail :
       {std::string("x"), std::string(4, '\0'),
        std::string("appended garbage")}) {
    WriteRaw(path, SampleImage() + tail);
    auto loaded = snap::Snapshot::Load(path, snap::LoadMode::kStream);
    EXPECT_FALSE(loaded.ok());
  }
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, ErrorsCarryPathAndReason) {
  const std::string path = Path("reason");
  WriteRaw(path, "not a snapshot at all");
  auto loaded = snap::Snapshot::Load(path, snap::LoadMode::kStream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(path), std::string::npos)
      << loaded.status().ToString();
  auto missing = snap::Snapshot::Load(Path("missing"),
                                      snap::LoadMode::kStream);
  EXPECT_FALSE(missing.ok());
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, FutureFormatVersionIsRefused) {
  // Bump the version word (bytes 8..15) and re-seal the header CRC so
  // only the version check can object.
  const std::string path = Path("version");
  std::string image = SampleImage();
  image[8] = static_cast<char>(snap::kSnapshotVersion + 1);
  const uint32_t crc = util::Crc32c(std::string_view(image).substr(0, 24));
  for (int i = 0; i < 8; ++i) {
    image[24 + i] =
        static_cast<char>(i < 4 ? (crc >> (8 * i)) & 0xFF : 0);
  }
  WriteRaw(path, image);
  auto loaded = snap::Snapshot::Load(path, snap::LoadMode::kStream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST_F(SnapshotFileTest, DuplicateSectionIdIsRefused) {
  snap::SnapshotWriter writer;
  writer.AddSection(5, "one");
  writer.AddSection(5, "two");
  const std::string path = Path("dup");
  WriteRaw(path, writer.Finish());
  auto loaded = snap::Snapshot::Load(path, snap::LoadMode::kStream);
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// SnapshotStore
// ---------------------------------------------------------------------------

TEST(SnapshotStoreTest, SaveAdvancesGenerationsAndPrunes) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "sparqlog_store_test.snap")
          .string();
  snap::SnapshotStore store(base);
  store.Remove();

  EXPECT_EQ(store.ReadManifest().status().code(), util::StatusCode::kNotFound);

  for (uint64_t gen = 1; gen <= 4; ++gen) {
    snap::SnapshotWriter writer;
    writer.AddSection(1, "generation " + std::to_string(gen));
    auto saved = store.Save(writer);
    ASSERT_TRUE(saved.ok()) << saved.status().ToString();
    EXPECT_EQ(saved.value(), gen);

    auto manifest = store.ReadManifest();
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest.value().current, gen);
    EXPECT_EQ(manifest.value().previous, gen > 1 ? gen - 1 : 0);
    // Exactly the retained generations exist on disk.
    EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(gen)));
    if (gen > 1) {
      EXPECT_TRUE(std::filesystem::exists(store.GenerationPath(gen - 1)));
    }
    if (gen > 2) {
      EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(gen - 2)));
    }
  }

  // Both retained generations load and carry their own payloads.
  auto current = store.LoadGeneration(4, snap::LoadMode::kStream);
  auto previous = store.LoadGeneration(3, snap::LoadMode::kMmap);
  ASSERT_TRUE(current.ok());
  ASSERT_TRUE(previous.ok());
  EXPECT_EQ(*current.value().section(1), "generation 4");
  EXPECT_EQ(*previous.value().section(1), "generation 3");

  store.Remove();
  EXPECT_FALSE(std::filesystem::exists(base));
  EXPECT_FALSE(std::filesystem::exists(store.GenerationPath(4)));
}

TEST(SnapshotStoreTest, DamagedManifestIsReasonedError) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "sparqlog_store_bad.snap")
          .string();
  snap::SnapshotStore store(base);
  store.Remove();
  snap::SnapshotWriter writer;
  writer.AddSection(1, "x");
  ASSERT_TRUE(store.Save(writer).ok());

  // Flip a manifest byte: every byte of the 40 is covered.
  std::error_code ec;
  const auto size = std::filesystem::file_size(base, ec);
  ASSERT_FALSE(ec);
  for (uint64_t i = 0; i < size; ++i) {
    std::string bytes;
    {
      std::ifstream in(base, std::ios::binary);
      bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    {
      std::ofstream out(base, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    auto manifest = store.ReadManifest();
    EXPECT_FALSE(manifest.ok()) << "manifest byte " << i << " flip accepted";
    EXPECT_FALSE(manifest.status().message().empty());
    bytes[i] = static_cast<char>(bytes[i] ^ 0x10);
    std::ofstream out(base, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  store.Remove();
}

// ---------------------------------------------------------------------------
// AtomicWriteFile + fault hooks
// ---------------------------------------------------------------------------

TEST(AtomicWriteFileTest, WritesAndReplaces) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sparqlog_atomic_test.bin")
          .string();
  ASSERT_TRUE(snap::AtomicWriteFile(path, "first contents").ok());
  ASSERT_TRUE(snap::AtomicWriteFile(path, "second").ok());
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(got, "second");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(AtomicWriteFileTest, FailedFsyncLeavesOldFileIntact) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sparqlog_atomic_fsync.bin")
          .string();
  ASSERT_TRUE(snap::AtomicWriteFile(path, "stable").ok());
  snap::IoFaultHooks hooks;
  hooks.fail_fsync = [](const std::string&) { return true; };
  snap::SetIoFaultHooksForTest(&hooks);
  util::Status st = snap::AtomicWriteFile(path, "never lands");
  snap::SetIoFaultHooksForTest(nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fsync"), std::string::npos) << st.ToString();
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(got, "stable");
  std::filesystem::remove(path);
}

TEST(AtomicWriteFileTest, FailedRenameLeavesOldFileIntact) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sparqlog_atomic_rename.bin")
          .string();
  ASSERT_TRUE(snap::AtomicWriteFile(path, "stable").ok());
  snap::IoFaultHooks hooks;
  hooks.fail_rename = [](const std::string&) { return true; };
  snap::SetIoFaultHooksForTest(&hooks);
  util::Status st = snap::AtomicWriteFile(path, "never lands");
  snap::SetIoFaultHooksForTest(nullptr);
  ASSERT_FALSE(st.ok());
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(got, "stable");
  std::filesystem::remove(path);
}

TEST(AtomicWriteFileTest, TornWriteZeroFillsTheTail) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sparqlog_atomic_torn.bin")
          .string();
  snap::IoFaultHooks hooks;
  hooks.torn_write = [](const std::string&, size_t) -> int64_t { return 4; };
  snap::SetIoFaultHooksForTest(&hooks);
  util::Status st = snap::AtomicWriteFile(path, "0123456789");
  snap::SetIoFaultHooksForTest(nullptr);
  // The tear is silent — like a power cut after an unflushed write the
  // application never observed.
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::ifstream in(path, std::ios::binary);
  std::string got((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(got, std::string("0123") + std::string(6, '\0'));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sparqlog
