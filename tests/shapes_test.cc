#include <gtest/gtest.h>

#include "graph/shapes.h"

namespace sparqlog::graph {
namespace {

Graph Path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(int n) {
  Graph g = Path(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph StarGraph(int leaves) {
  Graph g(leaves + 1);
  for (int i = 1; i <= leaves; ++i) g.AddEdge(0, i);
  return g;
}

// ---------------------------------------------------------------------------
// Tree-like shapes
// ---------------------------------------------------------------------------

TEST(ShapesTest, SingleEdge) {
  ShapeClass s = ClassifyShape(Path(2));
  EXPECT_TRUE(s.single_edge);
  EXPECT_TRUE(s.chain);
  EXPECT_TRUE(s.chain_set);
  EXPECT_TRUE(s.tree);
  EXPECT_TRUE(s.forest);
  EXPECT_TRUE(s.flower);
  EXPECT_TRUE(s.flower_set);
  EXPECT_FALSE(s.star);
  EXPECT_FALSE(s.cycle);
  EXPECT_EQ(s.girth, 0);
}

TEST(ShapesTest, ChainSubsumptionOrder) {
  ShapeClass s = ClassifyShape(Path(5));
  EXPECT_FALSE(s.single_edge);
  EXPECT_TRUE(s.chain);
  EXPECT_TRUE(s.chain_set);
  EXPECT_TRUE(s.tree);
  EXPECT_TRUE(s.forest);
}

TEST(ShapesTest, ChainSet) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  ShapeClass s = ClassifyShape(g);
  EXPECT_FALSE(s.chain);  // disconnected
  EXPECT_TRUE(s.chain_set);
  EXPECT_FALSE(s.tree);
  EXPECT_TRUE(s.forest);
  EXPECT_FALSE(s.flower);
  EXPECT_TRUE(s.flower_set);
}

TEST(ShapesTest, StarDefinitionRequiresHub) {
  // Definition: a tree with exactly one node with more than two
  // neighbors; a path is NOT a star.
  EXPECT_FALSE(ClassifyShape(Path(4)).star);
  ShapeClass s = ClassifyShape(StarGraph(3));
  EXPECT_TRUE(s.star);
  EXPECT_TRUE(s.tree);
  EXPECT_FALSE(s.chain);
}

TEST(ShapesTest, TwoHubsNotAStar) {
  // Two degree-3 nodes: a "double star" is a tree but not a star.
  Graph g(8);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(4, 6);
  g.AddEdge(4, 7);
  ShapeClass s = ClassifyShape(g);
  EXPECT_FALSE(s.star);
  EXPECT_TRUE(s.tree);
}

TEST(ShapesTest, TreeIsFlower) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(3, 4);
  g.AddEdge(3, 5);
  ShapeClass s = ClassifyShape(g);
  EXPECT_TRUE(s.tree);
  EXPECT_TRUE(s.flower);
}

// ---------------------------------------------------------------------------
// Cycles, petals, flowers
// ---------------------------------------------------------------------------

class CycleShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleShapeTest, CyclesClassify) {
  int n = GetParam();
  ShapeClass s = ClassifyShape(CycleGraph(n));
  EXPECT_TRUE(s.cycle);
  EXPECT_TRUE(s.flower);  // a cycle is a petal at any of its nodes
  EXPECT_TRUE(s.flower_set);
  EXPECT_FALSE(s.tree);
  EXPECT_FALSE(s.forest);
  EXPECT_EQ(s.girth, n);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CycleShapeTest,
                         ::testing::Values(3, 4, 5, 8, 14));

TEST(ShapesTest, PetalThetaGraph) {
  // Two nodes joined by three internally disjoint paths of length 2:
  // a petal, not a cycle.
  Graph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  g.AddEdge(0, 3);
  g.AddEdge(3, 1);
  g.AddEdge(0, 4);
  g.AddEdge(4, 1);
  EXPECT_TRUE(IsPetal(g));
  ShapeClass s = ClassifyShape(g);
  EXPECT_FALSE(s.cycle);
  EXPECT_TRUE(s.flower);
}

TEST(ShapesTest, PetalWithDirectEdge) {
  // s-t edge plus an s..t path: a petal (cycle in fact).
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  EXPECT_TRUE(IsPetal(g));
}

TEST(ShapesTest, FlowerWithPetalsAndStamens) {
  // Center 0 with: a petal (cycle 0-1-2-0), a stamen (chain 0-3-4), and
  // a stem (tree 0-5 with 5-6, 5-7).
  Graph g(8);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(0, 5);
  g.AddEdge(5, 6);
  g.AddEdge(5, 7);
  ShapeClass s = ClassifyShape(g);
  EXPECT_TRUE(s.flower);
  EXPECT_FALSE(s.cycle);
  EXPECT_FALSE(s.forest);
  EXPECT_TRUE(IsFlowerWithCenter(g, 0));
  EXPECT_FALSE(IsFlowerWithCenter(g, 1));
}

TEST(ShapesTest, PaperFlowerMultiplePetals) {
  // Like Figure 6: a central node with several petals and stamens.
  Graph g(9);
  // Petal 1: 0-1-2-0.
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  // Petal 2 with three paths 0..3: 0-4-3, 0-5-3, 0-3.
  g.AddEdge(0, 4);
  g.AddEdge(4, 3);
  g.AddEdge(0, 5);
  g.AddEdge(5, 3);
  g.AddEdge(0, 3);
  // Stamens.
  g.AddEdge(0, 6);
  g.AddEdge(0, 7);
  g.AddEdge(7, 8);
  ShapeClass s = ClassifyShape(g);
  EXPECT_TRUE(s.flower);
  EXPECT_TRUE(s.flower_set);
}

TEST(ShapesTest, TwoDisjointCyclesAreFlowerSetNotFlower) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 3);
  ShapeClass s = ClassifyShape(g);
  EXPECT_FALSE(s.flower);
  EXPECT_TRUE(s.flower_set);
}

TEST(ShapesTest, TwoCyclesSharingANodeIsFlower) {
  // Figure-eight: both cycles attach at node 0.
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(0, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 0);
  ShapeClass s = ClassifyShape(g);
  EXPECT_TRUE(s.flower);
  EXPECT_FALSE(s.cycle);
}

TEST(ShapesTest, CyclesAtDifferentNodesNotAFlower) {
  // Two cycles connected by a path: no single attachment node.
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);  // bridge
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 4);
  ShapeClass s = ClassifyShape(g);
  EXPECT_FALSE(s.flower);
  EXPECT_FALSE(s.flower_set);
}

TEST(ShapesTest, PendantOnFarSideOfPetalNotAFlower) {
  // A cycle through x with a tree hanging off the opposite node: trees
  // must attach at the center (strict Definition 6.1 reading).
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  g.AddEdge(2, 4);  // pendant at node 2
  // Candidate centers are all cycle nodes; only node 2 admits the
  // pendant, and the petal allows any node as center, so with x = 2 this
  // IS a flower.
  EXPECT_TRUE(IsFlowerWithCenter(g, 2));
  EXPECT_TRUE(ClassifyShape(g).flower);
}

TEST(ShapesTest, TwoPendantsOnDifferentCycleNodesNotAFlower) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);
  g.AddEdge(1, 4);  // pendant at 1
  g.AddEdge(3, 5);  // pendant at 3
  EXPECT_FALSE(ClassifyShape(g).flower);
  EXPECT_FALSE(ClassifyShape(g).flower_set);
}

TEST(ShapesTest, K4IsNotAFlower) {
  Graph g(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  ShapeClass s = ClassifyShape(g);
  EXPECT_FALSE(s.flower);
  EXPECT_FALSE(s.flower_set);
  EXPECT_EQ(s.girth, 3);
}

TEST(ShapesTest, SelfLoopOnlyIsDegenerateCycle) {
  Graph g(1);
  g.AddEdge(0, 0);
  ShapeClass s = ClassifyShape(g);
  EXPECT_TRUE(s.cycle);
  EXPECT_EQ(s.girth, 1);
}

TEST(ShapesTest, EmptyGraph) {
  ShapeClass s = ClassifyShape(Graph(0));
  EXPECT_TRUE(s.forest);
  EXPECT_TRUE(s.flower_set);
  EXPECT_FALSE(s.single_edge);
}

/// Property sweep: every chain is a chain set, every tree a forest,
/// every cycle a flower, and subsumption holds on random graphs.
class ShapeSubsumptionTest : public ::testing::TestWithParam<int> {};

TEST_P(ShapeSubsumptionTest, SubsumptionInvariants) {
  // Construct a pseudo-random graph from the seed.
  int seed = GetParam();
  int n = 3 + seed % 7;
  Graph g(n);
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1;
  for (int i = 0; i < n + seed % 5; ++i) {
    state = state * 1664525u + 1013904223u;
    int u = static_cast<int>(state % static_cast<unsigned>(n));
    state = state * 1664525u + 1013904223u;
    int v = static_cast<int>(state % static_cast<unsigned>(n));
    if (u != v) g.AddEdge(u, v);
  }
  ShapeClass s = ClassifyShape(g);
  if (s.single_edge) { EXPECT_TRUE(s.chain); }
  if (s.chain) { EXPECT_TRUE(s.chain_set); }
  if (s.chain) { EXPECT_TRUE(s.tree || g.num_edges() == 0); }
  if (s.star) { EXPECT_TRUE(s.tree); }
  if (s.tree) { EXPECT_TRUE(s.forest); }
  if (s.cycle) { EXPECT_TRUE(s.flower); }
  if (s.flower) { EXPECT_TRUE(s.flower_set); }
  if (s.forest) { EXPECT_TRUE(s.flower_set); }
  if (s.forest) { EXPECT_EQ(s.girth, 0); }
  if (!s.forest) { EXPECT_GT(s.girth, 0); }
}

INSTANTIATE_TEST_SUITE_P(Random, ShapeSubsumptionTest,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace sparqlog::graph
