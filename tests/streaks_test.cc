#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "streaks/streaks.h"

namespace sparqlog::streaks {
namespace {

StreakReport Detect(const std::vector<std::string>& log,
                 StreakOptions options = StreakOptions()) {
  StreakDetector detector(options);
  for (const std::string& q : log) detector.Add(q);
  return detector.Finish();
}

TEST(StripPrologueTest, RemovesPrefixDeclarations) {
  std::string q =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "PREFIX rdf: <http://rdf/>\nSELECT ?x WHERE { ?x a foaf:Person }";
  std::string stripped = StripPrologue(q);
  EXPECT_EQ(stripped.rfind("SELECT", 0), 0u);
}

TEST(StripPrologueTest, KeepsQueryWithoutPrologue) {
  EXPECT_EQ(StripPrologue("ASK { <a> <b> <c> }"),
            "ASK { <a> <b> <c> }");
}

TEST(StripPrologueTest, CaseInsensitive) {
  EXPECT_EQ(StripPrologue("prefix x: <u> select * where {}").rfind(
                "select", 0),
            0u);
}

TEST(StripPrologueTest, DoesNotCutInsideIris) {
  // "describe" appears inside an IRI before the real keyword.
  std::string q =
      "PREFIX a: <http://x/describe/y>\nCONSTRUCT WHERE { ?s ?p ?o }";
  EXPECT_EQ(StripPrologue(q).rfind("CONSTRUCT", 0), 0u);
}

TEST(StreakTest, IdenticalQueriesFormOneStreak) {
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  StreakReport r = Detect({q, q, q, q});
  EXPECT_EQ(r.total_streaks, 1u);
  EXPECT_EQ(r.longest, 4u);
  EXPECT_EQ(r.counts[0], 1u);  // bucket 1-10
}

TEST(StreakTest, DissimilarQueriesAreSingletons) {
  StreakReport r = Detect({
      "SELECT ?x WHERE { ?x <aaaaaaaaaa> ?y }",
      "ASK { <completely> <different> <thing> }",
      "DESCRIBE <http://yet.another/thing/entirely>",
  });
  EXPECT_EQ(r.total_streaks, 3u);
  EXPECT_EQ(r.longest, 1u);
}

TEST(StreakTest, GradualRefinementChains) {
  // Each query differs slightly from the previous; Levenshtein
  // similarity chains them into one streak.
  std::vector<std::string> log;
  std::string base = "SELECT ?x WHERE { ?x <birthPlace> <Paris> }";
  for (int i = 0; i < 6; ++i) {
    log.push_back(base + std::string(static_cast<size_t>(i), '#'));
  }
  StreakReport r = Detect(log);
  EXPECT_EQ(r.longest, 6u);
}

TEST(StreakTest, WindowLimitsMatching) {
  StreakOptions options;
  options.window = 2;
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  std::string far1 = "ASK { <aaaa> <bbbb> <cccc> }";
  std::string far2 = "DESCRIBE <http://unrelated/e>";
  std::string far3 = "CONSTRUCT WHERE { ?a <zz> ?b }";
  // q ... 3 dissimilar queries ... q: gap of 4 > window 2.
  StreakReport r = Detect({q, far1, far2, far3, q}, options);
  EXPECT_EQ(r.longest, 1u);
  EXPECT_EQ(r.total_streaks, 5u);
}

TEST(StreakTest, IntermediateSimilarBlocksMatch) {
  // Definition (2): q_i and q_j do not match if some query between them
  // is similar to q_i — the streak goes through the intermediate.
  std::string a = "SELECT ?x WHERE { ?x <p> ?y } #a";
  std::string b = "SELECT ?x WHERE { ?x <p> ?y } #b";  // similar to a
  std::string c = "SELECT ?x WHERE { ?x <p> ?y } #c";  // similar to both
  StreakReport r = Detect({a, b, c});
  // One streak a -> b -> c of length 3 (c matches b, not a).
  EXPECT_EQ(r.total_streaks, 1u);
  EXPECT_EQ(r.longest, 3u);
}

TEST(StreakTest, PrologueDifferencesIgnored) {
  // Identical after prefix stripping: should chain despite different
  // (long) prologues.
  std::string q1 =
      "PREFIX a: <http://very.long.namespace.example.org/alpha#>\n"
      "SELECT ?x WHERE { ?x <p> ?y }";
  std::string q2 =
      "PREFIX zz: <http://other.namespace.example.com/beta#>\n"
      "SELECT ?x WHERE { ?x <p> ?y }";
  StreakReport r = Detect({q1, q2});
  EXPECT_EQ(r.longest, 2u);
}

TEST(StreakTest, BucketBoundaries) {
  StreakReport r;
  r.AddStreakLength(1);
  r.AddStreakLength(10);
  r.AddStreakLength(11);
  r.AddStreakLength(100);
  r.AddStreakLength(101);
  r.AddStreakLength(169);  // the paper's longest
  EXPECT_EQ(r.counts[0], 2u);   // 1-10
  EXPECT_EQ(r.counts[1], 1u);   // 11-20
  EXPECT_EQ(r.counts[9], 1u);   // 91-100
  EXPECT_EQ(r.counts[10], 2u);  // >100
  EXPECT_EQ(r.longest, 169u);
}

TEST(StreakTest, BoundaryValues10And100LandInTheLowerBucket) {
  // The Table 6 buckets are [10i+1, 10i+10]: a streak of exactly 10
  // belongs to bucket 0 and exactly 100 to bucket 9 — the two spots an
  // off-by-one in (length - 1) / 10 would move.
  StreakReport ten;
  ten.AddStreakLength(10);
  EXPECT_EQ(ten.counts[0], 1u);
  EXPECT_EQ(ten.counts[1], 0u);
  StreakReport hundred;
  hundred.AddStreakLength(100);
  EXPECT_EQ(hundred.counts[9], 1u);
  EXPECT_EQ(hundred.counts[10], 0u);
}

TEST(StreakTest, MergeWithEmptyIsIdentity) {
  StreakReport r;
  r.AddStreakLength(3);
  r.AddStreakLength(42);
  r.queries_processed = 7;
  StreakReport copy = r;
  r.Merge(StreakReport{});
  EXPECT_EQ(r.counts[0], copy.counts[0]);
  EXPECT_EQ(r.counts[4], copy.counts[4]);
  EXPECT_EQ(r.total_streaks, copy.total_streaks);
  EXPECT_EQ(r.longest, copy.longest);
  EXPECT_EQ(r.queries_processed, copy.queries_processed);
}

TEST(StreakTest, MergeIsOrderIndependent) {
  StreakReport a;
  a.AddStreakLength(5);
  a.AddStreakLength(101);
  a.queries_processed = 10;
  StreakReport b;
  b.AddStreakLength(10);
  b.AddStreakLength(55);
  b.queries_processed = 3;

  StreakReport ab = a;
  ab.Merge(b);
  StreakReport ba = b;
  ba.Merge(a);
  for (size_t i = 0; i < 11; ++i) EXPECT_EQ(ab.counts[i], ba.counts[i]);
  EXPECT_EQ(ab.total_streaks, ba.total_streaks);
  EXPECT_EQ(ab.longest, ba.longest);
  EXPECT_EQ(ab.queries_processed, ba.queries_processed);
  EXPECT_EQ(ab.total_streaks, 4u);
  EXPECT_EQ(ab.longest, 101u);
  EXPECT_EQ(ab.queries_processed, 13u);
}

TEST(StreakTest, QueriesProcessedCounted) {
  StreakReport r = Detect({"SELECT ?x WHERE { ?x <p> ?y }",
                        "ASK { <aa> <bb> <cc> }"});
  EXPECT_EQ(r.queries_processed, 2u);
}

TEST(StreakTest, InterleavedSessions) {
  // Two interleaved refinement sessions stay separate streaks.
  std::string a = "SELECT ?x WHERE { ?x <birthPlace> ?place } ";
  std::string b = "ASK { <someone> <wrote> <something-entirely-else> } ";
  std::vector<std::string> log;
  for (int i = 0; i < 4; ++i) {
    log.push_back(a + std::string(static_cast<size_t>(i), 'a'));
    log.push_back(b + std::string(static_cast<size_t>(i), 'b'));
  }
  StreakReport r = Detect(log);
  EXPECT_EQ(r.total_streaks, 2u);
  EXPECT_EQ(r.longest, 4u);
}

TEST(StreakTest, FinishResetsState) {
  StreakDetector detector;
  detector.Add("SELECT ?x WHERE { ?x <p> ?y }");
  StreakReport first = detector.Finish();
  EXPECT_EQ(first.total_streaks, 1u);
  StreakReport second = detector.Finish();
  EXPECT_EQ(second.total_streaks, 0u);
  EXPECT_EQ(second.queries_processed, 0u);
}

}  // namespace
}  // namespace sparqlog::streaks
