#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "streaks/streaks.h"
#include "util/levenshtein.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sparqlog::streaks {
namespace {

StreakReport Detect(const std::vector<std::string>& log,
                 StreakOptions options = StreakOptions()) {
  StreakDetector detector(options);
  for (const std::string& q : log) detector.Add(q);
  return detector.Finish();
}

// -----------------------------------------------------------------------
// Pre-fast-path reference implementations, kept verbatim so the
// optimized code is regression-tested for byte-identical behavior.
// -----------------------------------------------------------------------

std::string OldStripPrologue(const std::string& query) {
  static const char* kForms[] = {"SELECT", "ASK", "CONSTRUCT", "DESCRIBE"};
  size_t best = std::string::npos;
  for (const char* form : kForms) {
    size_t len = std::string(form).size();
    for (size_t i = 0; i + len <= query.size(); ++i) {
      if (util::EqualsIgnoreCase(std::string_view(query).substr(i, len),
                                 form)) {
        bool left_ok =
            i == 0 || !(std::isalnum(static_cast<unsigned char>(
                            query[i - 1])) ||
                        query[i - 1] == ':' || query[i - 1] == '/' ||
                        query[i - 1] == '#' || query[i - 1] == '_');
        bool right_ok =
            i + len == query.size() ||
            !std::isalnum(static_cast<unsigned char>(query[i + len]));
        if (left_ok && right_ok) {
          best = std::min(best, i);
          break;
        }
      }
    }
  }
  if (best == std::string::npos) return query;
  return query.substr(best);
}

/// The pre-fast-path detector: per-pair SimilarByLevenshtein with no
/// prefilters, per-query std::string copies — the exact algorithm the
/// optimized SimilarityWindow + StreakChainTracker pair must reproduce.
class ReferenceDetector {
 public:
  explicit ReferenceDetector(StreakOptions options) : options_(options) {}

  void Add(const std::string& raw_query) {
    Entry entry;
    entry.text =
        options_.strip_prologue ? OldStripPrologue(raw_query) : raw_query;
    entry.index = next_index_++;
    ++report_.queries_processed;
    while (!window_.empty() &&
           next_index_ - window_.front().index > options_.window) {
      const Entry& old = window_.front();
      if (!old.extended) report_.AddStreakLength(old.streak_length);
      window_.pop_front();
    }
    bool matched_any = false;
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
      bool similar = util::SimilarByLevenshtein(
          it->text, entry.text, options_.similarity_threshold);
      if (!similar) continue;
      if (!it->has_later_similar) {
        if (!matched_any || it->streak_length + 1 > entry.streak_length) {
          entry.streak_length = it->streak_length + 1;
        }
        it->extended = true;
        matched_any = true;
      }
      it->has_later_similar = true;
    }
    window_.push_back(std::move(entry));
  }

  StreakReport Finish() {
    for (const Entry& e : window_) {
      if (!e.extended) report_.AddStreakLength(e.streak_length);
    }
    window_.clear();
    StreakReport out = report_;
    report_ = StreakReport();
    next_index_ = 0;
    return out;
  }

 private:
  struct Entry {
    std::string text;
    size_t index;
    bool has_later_similar = false;
    uint64_t streak_length = 1;
    bool extended = false;
  };
  StreakOptions options_;
  std::deque<Entry> window_;
  size_t next_index_ = 0;
  StreakReport report_;
};

void ExpectReportsEqual(const StreakReport& a, const StreakReport& b,
                        const std::string& context) {
  for (size_t i = 0; i < 11; ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << context << " bucket " << i;
  }
  EXPECT_EQ(a.total_streaks, b.total_streaks) << context;
  EXPECT_EQ(a.longest, b.longest) << context;
  EXPECT_EQ(a.queries_processed, b.queries_processed) << context;
}

/// A log with planted refinement sessions: bases with random suffixed
/// edits, interleaved with noise, heavy on duplicates — the shape the
/// prefilter cascade and dedup short-circuit must get exactly right.
std::vector<std::string> FuzzedLog(util::Rng& rng, size_t n) {
  std::vector<std::string> bases = {
      "SELECT ?x WHERE { ?x <birthPlace> <Paris> }",
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?p WHERE { ?p a "
      "foaf:Person }",
      "ASK { <a> <b> <c> }",
      "DESCRIBE <http://dbpedia.org/resource/Berlin>",
      "CONSTRUCT WHERE { ?s ?p ?o }",
  };
  std::vector<std::string> log;
  std::string current = bases[0];
  for (size_t i = 0; i < n; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.3) {
      current = bases[rng.Below(bases.size())];
    } else if (roll < 0.7) {
      // Small edit of the running query: refinement-session shape.
      std::string mutated = current;
      size_t edits = 1 + rng.Below(4);
      for (size_t e = 0; e < edits; ++e) {
        size_t pos = rng.Below(mutated.size() + 1);
        if (rng.Chance(0.5)) {
          mutated.insert(pos, 1, static_cast<char>('a' + rng.Below(26)));
        } else if (pos < mutated.size()) {
          mutated[pos] = static_cast<char>('a' + rng.Below(26));
        }
      }
      current = mutated;
    }
    // else: exact duplicate of the running query.
    log.push_back(current);
  }
  return log;
}

TEST(StripPrologueTest, RemovesPrefixDeclarations) {
  std::string q =
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
      "PREFIX rdf: <http://rdf/>\nSELECT ?x WHERE { ?x a foaf:Person }";
  std::string stripped = StripPrologue(q);
  EXPECT_EQ(stripped.rfind("SELECT", 0), 0u);
}

TEST(StripPrologueTest, KeepsQueryWithoutPrologue) {
  EXPECT_EQ(StripPrologue("ASK { <a> <b> <c> }"),
            "ASK { <a> <b> <c> }");
}

TEST(StripPrologueTest, CaseInsensitive) {
  EXPECT_EQ(StripPrologue("prefix x: <u> select * where {}").rfind(
                "select", 0),
            0u);
}

TEST(StripPrologueTest, DoesNotCutInsideIris) {
  // "describe" appears inside an IRI before the real keyword.
  std::string q =
      "PREFIX a: <http://x/describe/y>\nCONSTRUCT WHERE { ?s ?p ?o }";
  EXPECT_EQ(StripPrologue(q).rfind("CONSTRUCT", 0), 0u);
}

TEST(StreakTest, IdenticalQueriesFormOneStreak) {
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  StreakReport r = Detect({q, q, q, q});
  EXPECT_EQ(r.total_streaks, 1u);
  EXPECT_EQ(r.longest, 4u);
  EXPECT_EQ(r.counts[0], 1u);  // bucket 1-10
}

TEST(StreakTest, DissimilarQueriesAreSingletons) {
  StreakReport r = Detect({
      "SELECT ?x WHERE { ?x <aaaaaaaaaa> ?y }",
      "ASK { <completely> <different> <thing> }",
      "DESCRIBE <http://yet.another/thing/entirely>",
  });
  EXPECT_EQ(r.total_streaks, 3u);
  EXPECT_EQ(r.longest, 1u);
}

TEST(StreakTest, GradualRefinementChains) {
  // Each query differs slightly from the previous; Levenshtein
  // similarity chains them into one streak.
  std::vector<std::string> log;
  std::string base = "SELECT ?x WHERE { ?x <birthPlace> <Paris> }";
  for (int i = 0; i < 6; ++i) {
    log.push_back(base + std::string(static_cast<size_t>(i), '#'));
  }
  StreakReport r = Detect(log);
  EXPECT_EQ(r.longest, 6u);
}

TEST(StreakTest, WindowLimitsMatching) {
  StreakOptions options;
  options.window = 2;
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  std::string far1 = "ASK { <aaaa> <bbbb> <cccc> }";
  std::string far2 = "DESCRIBE <http://unrelated/e>";
  std::string far3 = "CONSTRUCT WHERE { ?a <zz> ?b }";
  // q ... 3 dissimilar queries ... q: gap of 4 > window 2.
  StreakReport r = Detect({q, far1, far2, far3, q}, options);
  EXPECT_EQ(r.longest, 1u);
  EXPECT_EQ(r.total_streaks, 5u);
}

TEST(StreakTest, IntermediateSimilarBlocksMatch) {
  // Definition (2): q_i and q_j do not match if some query between them
  // is similar to q_i — the streak goes through the intermediate.
  std::string a = "SELECT ?x WHERE { ?x <p> ?y } #a";
  std::string b = "SELECT ?x WHERE { ?x <p> ?y } #b";  // similar to a
  std::string c = "SELECT ?x WHERE { ?x <p> ?y } #c";  // similar to both
  StreakReport r = Detect({a, b, c});
  // One streak a -> b -> c of length 3 (c matches b, not a).
  EXPECT_EQ(r.total_streaks, 1u);
  EXPECT_EQ(r.longest, 3u);
}

TEST(StreakTest, PrologueDifferencesIgnored) {
  // Identical after prefix stripping: should chain despite different
  // (long) prologues.
  std::string q1 =
      "PREFIX a: <http://very.long.namespace.example.org/alpha#>\n"
      "SELECT ?x WHERE { ?x <p> ?y }";
  std::string q2 =
      "PREFIX zz: <http://other.namespace.example.com/beta#>\n"
      "SELECT ?x WHERE { ?x <p> ?y }";
  StreakReport r = Detect({q1, q2});
  EXPECT_EQ(r.longest, 2u);
}

TEST(StreakTest, BucketBoundaries) {
  StreakReport r;
  r.AddStreakLength(1);
  r.AddStreakLength(10);
  r.AddStreakLength(11);
  r.AddStreakLength(100);
  r.AddStreakLength(101);
  r.AddStreakLength(169);  // the paper's longest
  EXPECT_EQ(r.counts[0], 2u);   // 1-10
  EXPECT_EQ(r.counts[1], 1u);   // 11-20
  EXPECT_EQ(r.counts[9], 1u);   // 91-100
  EXPECT_EQ(r.counts[10], 2u);  // >100
  EXPECT_EQ(r.longest, 169u);
}

TEST(StreakTest, BoundaryValues10And100LandInTheLowerBucket) {
  // The Table 6 buckets are [10i+1, 10i+10]: a streak of exactly 10
  // belongs to bucket 0 and exactly 100 to bucket 9 — the two spots an
  // off-by-one in (length - 1) / 10 would move.
  StreakReport ten;
  ten.AddStreakLength(10);
  EXPECT_EQ(ten.counts[0], 1u);
  EXPECT_EQ(ten.counts[1], 0u);
  StreakReport hundred;
  hundred.AddStreakLength(100);
  EXPECT_EQ(hundred.counts[9], 1u);
  EXPECT_EQ(hundred.counts[10], 0u);
}

TEST(StreakTest, MergeWithEmptyIsIdentity) {
  StreakReport r;
  r.AddStreakLength(3);
  r.AddStreakLength(42);
  r.queries_processed = 7;
  StreakReport copy = r;
  r.Merge(StreakReport{});
  EXPECT_EQ(r.counts[0], copy.counts[0]);
  EXPECT_EQ(r.counts[4], copy.counts[4]);
  EXPECT_EQ(r.total_streaks, copy.total_streaks);
  EXPECT_EQ(r.longest, copy.longest);
  EXPECT_EQ(r.queries_processed, copy.queries_processed);
}

TEST(StreakTest, MergeIsOrderIndependent) {
  StreakReport a;
  a.AddStreakLength(5);
  a.AddStreakLength(101);
  a.queries_processed = 10;
  StreakReport b;
  b.AddStreakLength(10);
  b.AddStreakLength(55);
  b.queries_processed = 3;

  StreakReport ab = a;
  ab.Merge(b);
  StreakReport ba = b;
  ba.Merge(a);
  for (size_t i = 0; i < 11; ++i) EXPECT_EQ(ab.counts[i], ba.counts[i]);
  EXPECT_EQ(ab.total_streaks, ba.total_streaks);
  EXPECT_EQ(ab.longest, ba.longest);
  EXPECT_EQ(ab.queries_processed, ba.queries_processed);
  EXPECT_EQ(ab.total_streaks, 4u);
  EXPECT_EQ(ab.longest, 101u);
  EXPECT_EQ(ab.queries_processed, 13u);
}

TEST(StreakTest, QueriesProcessedCounted) {
  StreakReport r = Detect({"SELECT ?x WHERE { ?x <p> ?y }",
                        "ASK { <aa> <bb> <cc> }"});
  EXPECT_EQ(r.queries_processed, 2u);
}

TEST(StreakTest, InterleavedSessions) {
  // Two interleaved refinement sessions stay separate streaks.
  std::string a = "SELECT ?x WHERE { ?x <birthPlace> ?place } ";
  std::string b = "ASK { <someone> <wrote> <something-entirely-else> } ";
  std::vector<std::string> log;
  for (int i = 0; i < 4; ++i) {
    log.push_back(a + std::string(static_cast<size_t>(i), 'a'));
    log.push_back(b + std::string(static_cast<size_t>(i), 'b'));
  }
  StreakReport r = Detect(log);
  EXPECT_EQ(r.total_streaks, 2u);
  EXPECT_EQ(r.longest, 4u);
}

TEST(StreakTest, FinishResetsState) {
  StreakDetector detector;
  detector.Add("SELECT ?x WHERE { ?x <p> ?y }");
  StreakReport first = detector.Finish();
  EXPECT_EQ(first.total_streaks, 1u);
  StreakReport second = detector.Finish();
  EXPECT_EQ(second.total_streaks, 0u);
  EXPECT_EQ(second.queries_processed, 0u);
}

// -----------------------------------------------------------------------
// StripPrologue fast path vs the old implementation
// -----------------------------------------------------------------------

TEST(StripPrologueTest, MatchesOldImplementationOnFuzzedQueries) {
  util::Rng rng(20260726);
  const std::string pieces[] = {
      "PREFIX ", "foaf:", "<http://x/describe/y>", "<http://ask.example/>",
      "select",  "ASK",   "ConStRuCt",             "describe",
      "_select", "a",     ":",                     "/select",
      "#ask",    " ",     "\n",                    "9select",
      "asking",  "x",     "constructs",            "{ ?s ?p ?o }",
      "BASE",    "\t",    "d",                     "sel",
  };
  for (int i = 0; i < 2000; ++i) {
    std::string q;
    size_t parts = rng.Below(12);
    for (size_t p = 0; p < parts; ++p) {
      if (rng.Chance(0.8)) {
        q += pieces[rng.Below(std::size(pieces))];
      } else {
        q += static_cast<char>(rng.Below(256));
      }
    }
    EXPECT_EQ(StripPrologue(q), OldStripPrologue(q)) << "query: " << q;
    // The view variant must agree and view into the input.
    std::string_view v = StripPrologueView(q);
    EXPECT_EQ(std::string(v), OldStripPrologue(q));
    if (!q.empty() && !v.empty()) {
      EXPECT_GE(v.data(), q.data());
      EXPECT_LE(v.data() + v.size(), q.data() + q.size());
    }
  }
}

TEST(StripPrologueTest, KeywordsEmbeddedInIrisAndWords) {
  // Inside an IRI path, after '_', inside longer words: all skipped.
  EXPECT_EQ(StripPrologue("<http://x/select/y> foo"),
            "<http://x/select/y> foo");
  EXPECT_EQ(StripPrologue("my_select ASK {}"), "ASK {}");
  EXPECT_EQ(StripPrologue("selects construct {}"), "construct {}");
  EXPECT_EQ(StripPrologue("#describe\nSELECT *"), "SELECT *");
  // Keyword at the very start and at the very end.
  EXPECT_EQ(StripPrologue("ask {}"), "ask {}");
  EXPECT_EQ(StripPrologue("prefix p: <u> ask"), "ask");
}

// -----------------------------------------------------------------------
// Fast path vs the reference detector: bit-identical reports
// -----------------------------------------------------------------------

TEST(StreakTest, FastPathMatchesReferenceOnFuzzedLogs) {
  util::Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    StreakOptions options;
    options.window = 1 + rng.Below(40);
    options.similarity_threshold =
        (round % 3 == 0) ? 0.1 : (round % 3 == 1 ? 0.25 : 0.5);
    options.strip_prologue = rng.Chance(0.7);
    std::vector<std::string> log = FuzzedLog(rng, 300);

    ReferenceDetector reference(options);
    for (const std::string& q : log) reference.Add(q);
    StreakReport fast = Detect(log, options);
    ExpectReportsEqual(fast, reference.Finish(),
                       "round " + std::to_string(round) + " window " +
                           std::to_string(options.window));
  }
}

TEST(StreakTest, PrefilterStatsAccountForEveryPair) {
  util::Rng rng(11);
  std::vector<std::string> log = FuzzedLog(rng, 400);
  StreakDetector detector;
  for (const std::string& q : log) detector.Add(q);
  detector.Finish();
  const PrefilterStats& stats = detector.prefilter_stats();
  EXPECT_GT(stats.pairs, 0u);
  // Duplicate-heavy log: the exact-hash tier must fire.
  EXPECT_GT(stats.exact_hash_hits, 0u);
  // Every pair is settled by exactly one tier or reaches the DP.
  EXPECT_EQ(stats.pairs, stats.exact_hash_hits + stats.length_rejects +
                             stats.charmap_rejects +
                             stats.histogram_rejects +
                             stats.levenshtein_calls);
  // The cascade must actually avoid work on this workload.
  EXPECT_LT(stats.levenshtein_calls, stats.pairs);
}

TEST(StreakTest, PrefilterStatsMerge) {
  PrefilterStats a{10, 1, 2, 3, 1, 3};
  PrefilterStats b{5, 0, 1, 1, 1, 2};
  a.Merge(b);
  EXPECT_EQ(a.pairs, 15u);
  EXPECT_EQ(a.exact_hash_hits, 1u);
  EXPECT_EQ(a.length_rejects, 3u);
  EXPECT_EQ(a.charmap_rejects, 4u);
  EXPECT_EQ(a.histogram_rejects, 2u);
  EXPECT_EQ(a.levenshtein_calls, 5u);
}

// -----------------------------------------------------------------------
// Prefilter admissibility: no tier may reject a truly similar pair
// -----------------------------------------------------------------------

TEST(PrefilterTest, LowerBoundsNeverExceedTrueDistance) {
  util::Rng rng(31337);
  for (int i = 0; i < 500; ++i) {
    size_t len_a = rng.Below(120);
    size_t len_b = rng.Below(120);
    std::string a(len_a, '\0'), b(len_b, '\0');
    for (char& c : a) c = static_cast<char>(rng.Below(256));
    // Half the time, b is a small edit of a (near-miss pairs are where
    // an inadmissible bound would bite).
    if (rng.Chance(0.5) && !a.empty()) {
      b = a;
      size_t edits = 1 + rng.Below(6);
      for (size_t e = 0; e < edits && !b.empty(); ++e) {
        b[rng.Below(b.size())] = static_cast<char>(rng.Below(256));
      }
    } else {
      for (char& c : b) c = static_cast<char>(rng.Below(256));
    }
    size_t dist = util::Levenshtein(a, b);
    QueryFingerprint fa = FingerprintOf(a);
    QueryFingerprint fb = FingerprintOf(b);
    size_t longer = std::max(a.size(), b.size());
    size_t shorter = std::min(a.size(), b.size());
    EXPECT_LE(longer - shorter, dist) << "length bound, case " << i;
    EXPECT_LE(CharmapLowerBound(fa, fb), dist) << "charmap bound, case " << i;
    EXPECT_LE(HistogramLowerBound(fa, fb), dist)
        << "histogram bound, case " << i;
  }
}

TEST(PrefilterTest, HistogramSaturationStaysAdmissible) {
  // 300 'a's vs 300 'a's plus noise: counts clamp at 255 on both sides,
  // which must only weaken the bound.
  std::string a(300, 'a');
  std::string b = a + std::string(40, 'b');
  size_t dist = util::Levenshtein(a, b);  // 40
  QueryFingerprint fa = FingerprintOf(a);
  QueryFingerprint fb = FingerprintOf(b);
  EXPECT_EQ(fa.hist[static_cast<unsigned char>('a')], 255);
  EXPECT_LE(HistogramLowerBound(fa, fb), dist);
  EXPECT_LE(CharmapLowerBound(fa, fb), dist);
}

TEST(PrefilterTest, FingerprintBasics) {
  QueryFingerprint fp = FingerprintOf("ab\xff");
  EXPECT_EQ(fp.length, 3u);
  EXPECT_TRUE(fp.charmap[1] & (1ULL << ('a' - 64)));
  EXPECT_TRUE(fp.charmap[3] & (1ULL << (0xff - 192)));
  EXPECT_FALSE(fp.charmap[0] & 1ULL);  // NUL absent
  EXPECT_EQ(fp.hist[static_cast<unsigned char>('a')], 1);
  EXPECT_EQ(fp.hist[static_cast<unsigned char>('z')], 0);
  EXPECT_NE(fp.hash, FingerprintOf("ab").hash);
}

// -----------------------------------------------------------------------
// Window boundary semantics (EvictExpired timing)
// -----------------------------------------------------------------------

/// Builds a log of two identical queries separated by `gap - 1` pairwise
/// very dissimilar fillers, so the only possible chain is the pair.
std::vector<std::string> GapLog(size_t gap) {
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  std::vector<std::string> log = {q};
  for (size_t i = 1; i < gap; ++i) {
    // Each filler is dominated by a run of a per-position letter, so any
    // two fillers are ~20 edits apart (far over the 25% budget) and none
    // resembles q.
    log.push_back("ASK { <" +
                  std::string(20, static_cast<char>('a' + (i % 26))) +
                  "> <p> <o> }");
  }
  log.push_back(q);
  return log;
}

TEST(StreakTest, GapJustInsideTheWindowChains) {
  StreakOptions options;
  options.window = 5;
  StreakReport r = Detect(GapLog(4), options);  // gap == window - 1
  EXPECT_EQ(r.longest, 2u);
}

TEST(StreakTest, GapEqualToWindowDoesNotChain) {
  // Eviction runs after the index advances, so a predecessor exactly
  // `window` positions back is already gone when the scan happens —
  // the boundary the fast path must not move.
  StreakOptions options;
  options.window = 5;
  StreakReport r = Detect(GapLog(5), options);  // gap == window
  EXPECT_EQ(r.longest, 1u);
}

TEST(StreakTest, GapOnePastTheWindowDoesNotChain) {
  StreakOptions options;
  options.window = 5;
  StreakReport r = Detect(GapLog(6), options);  // gap == window + 1
  EXPECT_EQ(r.longest, 1u);
}

TEST(StreakTest, ZeroWindowMakesEveryQueryASingleton) {
  StreakOptions options;
  options.window = 0;
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  StreakReport r = Detect({q, q, q}, options);
  EXPECT_EQ(r.total_streaks, 3u);
  EXPECT_EQ(r.longest, 1u);
}

TEST(StreakTest, EmptyLogYieldsEmptyReport) {
  StreakReport r = Detect({});
  EXPECT_EQ(r.total_streaks, 0u);
  EXPECT_EQ(r.longest, 0u);
  EXPECT_EQ(r.queries_processed, 0u);
}

// -----------------------------------------------------------------------
// Report bucket edges around 10/11 and 100/101
// -----------------------------------------------------------------------

TEST(StreakTest, BucketEdgesElevenAndOneHundredOne) {
  StreakReport r;
  r.AddStreakLength(11);
  EXPECT_EQ(r.counts[0], 0u);
  EXPECT_EQ(r.counts[1], 1u);  // 11 opens the 11-20 bucket
  StreakReport s;
  s.AddStreakLength(101);
  EXPECT_EQ(s.counts[9], 0u);
  EXPECT_EQ(s.counts[10], 1u);  // 101 is the first >100 value
}

// -----------------------------------------------------------------------
// SimilarityWindow + StreakChainTracker building blocks
// -----------------------------------------------------------------------

TEST(SimilarityWindowTest, EmitsGapsOfMatchedPredecessors) {
  StreakOptions options;
  SimilarityWindow window(options);
  std::vector<uint32_t> gaps;
  std::string q = "SELECT ?x WHERE { ?x <p> ?y }";
  window.Add(q, gaps);
  EXPECT_TRUE(gaps.empty());
  window.Add(q, gaps);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], 1u);
  // The second duplicate blocks the first (has_later_similar): only the
  // most recent predecessor matches.
  window.Add(q, gaps);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], 1u);
}

TEST(StreakChainTrackerTest, DrainPlusFinishEqualsFinish) {
  // Feeding identical gap streams, a tracker drained mid-run and merged
  // must equal one finished in a single sweep.
  std::vector<std::vector<uint32_t>> stream = {
      {}, {1}, {1}, {}, {2}, {}, {}, {1}};
  StreakChainTracker one(3);
  for (const auto& gaps : stream) one.Add(gaps.data(), gaps.size());
  StreakReport whole = one.Finish();

  StreakChainTracker two(3);
  StreakReport merged;
  for (size_t i = 0; i < stream.size(); ++i) {
    two.Add(stream[i].data(), stream[i].size());
    if (i == 3) merged.Merge(two.DrainFinalized());
  }
  merged.Merge(two.DrainFinalized());
  merged.Merge(two.Finish());
  ExpectReportsEqual(merged, whole, "drain vs finish");
}

}  // namespace
}  // namespace sparqlog::streaks
