#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pipeline/chunk_source.h"
#include "pipeline/pipeline.h"
#include "testing/invariants.h"

namespace sparqlog::pipeline {
namespace {

/// Writes `bytes` verbatim to a fresh temp file and returns its path.
std::filesystem::path WriteTemp(const std::string& bytes) {
  static int counter = 0;
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("sparqlog_chunk_test_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter++) + ".log");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  return path;
}

struct Drained {
  std::vector<std::string> lines;
  std::vector<size_t> chunk_sizes;
  uint64_t bytes = 0;
};

/// Pulls every chunk out of `source` with the given max_lines bound.
Drained Drain(ChunkSource& source, size_t max_lines) {
  Drained d;
  LineChunk chunk;
  while (source.NextChunk(max_lines, chunk)) {
    EXPECT_FALSE(chunk.lines.empty());
    EXPECT_LE(chunk.lines.size(), max_lines);
    d.chunk_sizes.push_back(chunk.lines.size());
    d.bytes += chunk.bytes;
    for (std::string_view line : chunk.lines) d.lines.emplace_back(line);
  }
  return d;
}

Drained DrainFile(const std::string& bytes, size_t max_lines,
                  size_t slice_bytes = 0) {
  const std::filesystem::path path = WriteTemp(bytes);
  auto source = MmapChunkSource::Open(path.string(),
                                      MmapChunkSource::Options{slice_bytes});
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  Drained d = Drain(*source.value(), max_lines);
  std::filesystem::remove(path);
  return d;
}

TEST(MmapChunkSourceTest, SlicesAtNewlines) {
  Drained d = DrainFile("alpha\nbeta\ngamma\n", 64);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"alpha", "beta", "gamma"}));
  EXPECT_EQ(d.bytes, 14u);  // payload only, newlines excluded
}

TEST(MmapChunkSourceTest, StripsCarriageReturns) {
  Drained d = DrainFile("a\r\nbb\r\nccc\r\n", 64);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_EQ(d.bytes, 6u);
}

TEST(MmapChunkSourceTest, PreservesEmptyLines) {
  Drained d = DrainFile("\n\nx\n\n", 64);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"", "", "x", ""}));
}

TEST(MmapChunkSourceTest, EmitsFinalUnterminatedLine) {
  Drained d = DrainFile("one\ntwo", 64);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"one", "two"}));
}

TEST(MmapChunkSourceTest, NoPhantomLineAfterTrailingNewline) {
  // getline parity: "x\n" is one line, not one line plus an empty one.
  Drained d = DrainFile("x\n", 64);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"x"}));
}

TEST(MmapChunkSourceTest, EmptyFileYieldsNoChunks) {
  Drained d = DrainFile("", 64);
  EXPECT_TRUE(d.lines.empty());
  EXPECT_EQ(d.bytes, 0u);
}

TEST(MmapChunkSourceTest, MaxLinesBoundsEachChunk) {
  Drained d = DrainFile("a\nb\nc\nd\ne\n", 2);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"a", "b", "c", "d", "e"}));
  EXPECT_EQ(d.chunk_sizes, (std::vector<size_t>{2, 2, 1}));
}

TEST(MmapChunkSourceTest, SliceBudgetSplitsChunks) {
  // Budget of 4 payload bytes: "aa" + "bb" fill a chunk, then the next.
  Drained d = DrainFile("aa\nbb\ncc\ndd\n", 64, /*slice_bytes=*/4);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"aa", "bb", "cc", "dd"}));
  EXPECT_EQ(d.chunk_sizes, (std::vector<size_t>{2, 2}));
}

TEST(MmapChunkSourceTest, LineLongerThanSliceBudgetComesOutWhole) {
  const std::string big(64, 'z');
  Drained d = DrainFile(big + "\nshort\n", 64, /*slice_bytes=*/8);
  ASSERT_EQ(d.lines.size(), 2u);
  EXPECT_EQ(d.lines[0], big);
  EXPECT_EQ(d.lines[1], "short");
  // The long line never splits: a chunk holds whole lines only.
  EXPECT_EQ(d.chunk_sizes, (std::vector<size_t>{1, 1}));
}

TEST(MmapChunkSourceTest, LineSpansSliceBoundaryIntact) {
  // With a 5-byte budget the reader's cursor lands mid-line; the line
  // must still come out whole in the next chunk.
  Drained d = DrainFile("abc\ndefghij\nkl\n", 64, /*slice_bytes=*/5);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"abc", "defghij", "kl"}));
}

TEST(MmapChunkSourceTest, ViewsPointIntoTheMapping) {
  const std::filesystem::path path = WriteTemp("stable\nmemory\n");
  auto source = MmapChunkSource::Open(path.string());
  ASSERT_TRUE(source.ok());
  LineChunk chunk;
  ASSERT_TRUE(source.value()->NextChunk(64, chunk));
  ASSERT_EQ(chunk.lines.size(), 2u);
  // Zero-copy: no owned storage, views are 7 bytes apart in one buffer.
  EXPECT_TRUE(chunk.owned.empty());
  EXPECT_EQ(chunk.lines[1].data() - chunk.lines[0].data(), 7);
  std::filesystem::remove(path);
}

TEST(MmapChunkSourceTest, BufferedFallbackMatchesMmap) {
  // Options::use_mmap=false forces the read(2) fallback; it must serve
  // the exact lines, chunking, sizes, and resume cursors of the mapped
  // path. (Regression: the fallback once passed buffer.size() and
  // std::move(buffer) in one argument list — unspecified evaluation
  // order let gcc move first, so the source reported size 0 and served
  // an empty file.)
  const std::string bytes = "alpha\r\nbeta\n\nlast-no-newline";
  const std::filesystem::path path = WriteTemp(bytes);
  MmapChunkSource::Options buffered_opts;
  buffered_opts.use_mmap = false;
  auto mapped = MmapChunkSource::Open(path.string());
  auto buffered = MmapChunkSource::Open(path.string(), buffered_opts);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_EQ(buffered.value()->size_bytes(), bytes.size());
  EXPECT_EQ(buffered.value()->size_bytes(), mapped.value()->size_bytes());
  Drained dm = Drain(*mapped.value(), 2);
  Drained db = Drain(*buffered.value(), 2);
  EXPECT_EQ(db.lines, dm.lines);
  EXPECT_EQ(db.chunk_sizes, dm.chunk_sizes);
  EXPECT_EQ(db.bytes, dm.bytes);
  // Resume cursors agree too (the journal runs over either form).
  EXPECT_TRUE(buffered.value()->SupportsResume());
  ASSERT_TRUE(buffered.value()->SeekTo(7));  // start of "beta"
  LineChunk chunk;
  ASSERT_TRUE(buffered.value()->NextChunk(1, chunk));
  ASSERT_EQ(chunk.lines.size(), 1u);
  EXPECT_EQ(chunk.lines[0], "beta");
  std::filesystem::remove(path);
}

TEST(MmapChunkSourceTest, MissingFileIsAnError) {
  auto source = MmapChunkSource::Open("/nonexistent/sparqlog/nope.log");
  EXPECT_FALSE(source.ok());
}

TEST(MmapChunkSourceTest, MissingFileErrorCarriesErrno) {
  auto source = MmapChunkSource::Open("/nonexistent/sparqlog/nope.log");
  ASSERT_FALSE(source.ok());
  // The OS reason must survive into the message — "cannot open" alone
  // hides ENOENT vs EACCES vs EMFILE from the operator.
  EXPECT_NE(source.status().message().find(std::strerror(ENOENT)),
            std::string::npos)
      << source.status().ToString();
}

#if defined(__unix__) || defined(__APPLE__)
TEST(MmapChunkSourceTest, DirectoryIsInvalidArgument) {
  auto source =
      MmapChunkSource::Open(std::filesystem::temp_directory_path().string());
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().message().find("not a regular file"),
            std::string::npos)
      << source.status().ToString();
}
#endif

TEST(VectorChunkSourceTest, ViewsAliasCallerStrings) {
  const std::vector<std::string> lines = {"one", "two", "three"};
  VectorChunkSource source(lines);
  Drained d = Drain(source, 2);
  EXPECT_EQ(d.lines, lines);
  EXPECT_EQ(d.chunk_sizes, (std::vector<size_t>{2, 1}));
  VectorChunkSource again(lines);
  LineChunk chunk;
  ASSERT_TRUE(again.NextChunk(1, chunk));
  EXPECT_EQ(chunk.lines[0].data(), lines[0].data());
}

TEST(LineSourceAdapterTest, CopiesStreamLinesIntoOwnedStorage) {
  std::istringstream in("first\r\nsecond\nthird");
  IstreamLineSource stream(in);
  LineSourceAdapter adapter(stream);
  Drained d = Drain(adapter, 64);
  EXPECT_EQ(d.lines, (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_EQ(d.bytes, 16u);
}

// ---------------------------------------------------------------------------
// Source equivalence: vector == mmap == stream, full digest
// ---------------------------------------------------------------------------

std::vector<std::string> SampleLog() {
  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    log.push_back("q" + std::to_string(i % 7) +
                  "\tSELECT ?x WHERE { ?x <p:p" + std::to_string(i % 5) +
                  "> ?y }");
    if (i % 9 == 0) log.push_back("");
    if (i % 11 == 0) log.push_back("not a query at all");
  }
  return log;
}

TEST(SourceEquivalenceTest, AllFramingsAgree) {
  for (const bool crlf : {false, true}) {
    for (const bool trailing : {true, false}) {
      for (const size_t slice : {size_t{0}, size_t{7}, size_t{256}}) {
        testing::SourceEquivalenceConfig config;
        config.pipeline.threads = 2;
        config.pipeline.chunk_size = 8;
        config.slice_bytes = slice;
        config.crlf = crlf;
        config.trailing_newline = trailing;
        auto v = testing::CheckSourceEquivalence(SampleLog(), config);
        EXPECT_FALSE(v.has_value())
            << (v ? v->invariant + ": " + v->detail : "");
      }
    }
  }
}

// Degenerate file framings: an empty file and a file of blank CRLF
// lines must produce identical (and sane) digests through the vector,
// mmap, and stream sources — the mmap path in particular must treat a
// zero-byte file as a valid zero-line source, not an mmap failure.
TEST(SourceEquivalenceTest, EmptyFileAllSourcesAgree) {
  for (const size_t slice : {size_t{0}, size_t{7}}) {
    testing::SourceEquivalenceConfig config;
    config.pipeline.threads = 2;
    config.pipeline.chunk_size = 8;
    config.slice_bytes = slice;
    config.trailing_newline = false;  // truly zero bytes on disk
    auto v = testing::CheckSourceEquivalence({}, config);
    EXPECT_FALSE(v.has_value()) << (v ? v->invariant + ": " + v->detail : "");
  }
}

TEST(SourceEquivalenceTest, CrlfOnlyFileAllSourcesAgree) {
  // Three blank lines, CRLF-terminated: the file is "\r\n\r\n\r\n".
  const std::vector<std::string> blanks(3, "");
  for (const bool trailing : {true, false}) {
    testing::SourceEquivalenceConfig config;
    config.pipeline.threads = 2;
    config.pipeline.chunk_size = 2;
    config.crlf = true;
    config.trailing_newline = trailing;
    auto v = testing::CheckSourceEquivalence(blanks, config);
    EXPECT_FALSE(v.has_value()) << (v ? v->invariant + ": " + v->detail : "");
  }
}

}  // namespace
}  // namespace sparqlog::pipeline
