// Tests for the telemetry subsystem (src/obs/): histogram bucketing and
// percentiles, the Merge() discipline (empty identity, order
// independence), the scheduling-independent telemetry digest, the span
// ring, the exporters, and the end-to-end wiring through the parallel
// pipeline and the streak stage.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "pipeline/pipeline.h"
#include "pipeline/streak_stage.h"

namespace sparqlog::obs {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketPlacementFollowsBitWidth) {
  LatencyHistogram h;
  h.Record(0);    // bit_width 0
  h.Record(1);    // bit_width 1
  h.Record(2);    // bit_width 2
  h.Record(3);    // bit_width 2
  h.Record(4);    // bit_width 3
  h.Record(255);  // bit_width 8
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 2u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.BucketCount(8), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.total_ns(), 265u);
  EXPECT_EQ(h.min_ns(), 0u);
  EXPECT_EQ(h.max_ns(), 255u);
}

TEST(LatencyHistogramTest, HugeDurationsClampToLastBucket) {
  LatencyHistogram h;
  h.Record(~uint64_t{0});  // bit_width 64 >> kBuckets
  EXPECT_EQ(h.BucketCount(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(LatencyHistogramTest, PercentileReturnsBucketUpperBound) {
  LatencyHistogram h;
  EXPECT_EQ(h.PercentileNs(0.5), 0u);  // empty histogram
  for (int i = 0; i < 90; ++i) h.Record(10);    // bucket 4, upper 15
  for (int i = 0; i < 10; ++i) h.Record(1000);  // bucket 10, upper 1023
  EXPECT_EQ(h.PercentileNs(0.5), LatencyHistogram::BucketUpperNs(4));
  EXPECT_EQ(h.PercentileNs(0.89), LatencyHistogram::BucketUpperNs(4));
  EXPECT_EQ(h.PercentileNs(0.99), LatencyHistogram::BucketUpperNs(10));
  EXPECT_EQ(h.PercentileNs(1.0), LatencyHistogram::BucketUpperNs(10));
  EXPECT_DOUBLE_EQ(h.MeanNs(), (90 * 10 + 10 * 1000) / 100.0);
}

TEST(LatencyHistogramTest, MergeMatchesSingleStream) {
  LatencyHistogram a, b, all;
  for (uint64_t ns : {5u, 100u, 7000u}) {
    a.Record(ns);
    all.Record(ns);
  }
  for (uint64_t ns : {1u, 900u}) {
    b.Record(ns);
    all.Record(ns);
  }
  a.Merge(b);
  EXPECT_EQ(a, all);
}

// ---------------------------------------------------------------------------
// Merge discipline: empty identity and order independence.
// ---------------------------------------------------------------------------

QueueCounters SampleQueue(uint64_t base) {
  QueueCounters q;
  q.pushes = base + 1;
  q.pops = base + 2;
  q.push_blocks = base % 3;
  q.pop_waits = base % 5;
  q.push_block_ns = base * 10;
  q.pop_wait_ns = base * 20;
  q.max_depth = base % 7;
  q.rejected_pushes = base % 2;
  return q;
}

StageMetrics SampleStage(uint64_t base) {
  StageMetrics m;
  m.items_in = base * 3;
  m.items_out = base * 2;
  m.malformed = base;
  m.chunks = base + 1;
  m.alloc_bytes = base * 100;
  m.allocs = base * 4;
  m.chunk_ns.Record(base + 1);
  m.chunk_ns.Record((base + 1) * 1000);
  return m;
}

RunTelemetry SampleRun(uint64_t base) {
  RunTelemetry t;
  for (int s = 0; s < kStageCount; ++s) {
    t.stages[static_cast<size_t>(s)] =
        SampleStage(base + static_cast<uint64_t>(s));
  }
  t.chunk_queue = SampleQueue(base);
  t.shard_queues = SampleQueue(base + 13);
  t.shard_queries = {base, base + 1, base + 2};
  t.prefilter_pairs = base * 7;
  t.prefilter_dp = base * 2;
  t.wall_ns = base * 1000;
  t.workers = base % 4;
  t.run_alloc_bytes = base * 55;
  t.run_allocs = base * 5;
  return t;
}

TEST(MergeTest, EmptyIsIdentity) {
  QueueCounters q = SampleQueue(9), q_orig = q;
  q.Merge(QueueCounters{});
  EXPECT_EQ(q, q_orig);
  QueueCounters empty;
  empty.Merge(q_orig);
  EXPECT_EQ(empty, q_orig);

  StageMetrics m = SampleStage(4), m_orig = m;
  m.Merge(StageMetrics{});
  EXPECT_EQ(m, m_orig);
  StageMetrics m_empty;
  m_empty.Merge(m_orig);
  EXPECT_EQ(m_empty, m_orig);

  RunTelemetry t = SampleRun(3), t_orig = t;
  t.Merge(RunTelemetry{});
  EXPECT_EQ(t, t_orig);
  RunTelemetry t_empty;
  t_empty.Merge(t_orig);
  EXPECT_EQ(t_empty, t_orig);
}

TEST(MergeTest, OrderIndependent) {
  RunTelemetry forward;
  for (uint64_t base : {2u, 5u, 11u}) forward.Merge(SampleRun(base));
  RunTelemetry backward;
  for (uint64_t base : {11u, 5u, 2u}) backward.Merge(SampleRun(base));
  EXPECT_EQ(forward, backward);
}

TEST(MergeTest, ShardQueriesZeroExtendAndEnvelope) {
  RunTelemetry a, b;
  a.shard_queries = {1, 2};
  b.shard_queries = {10, 20, 30};
  a.wall_ns = 500;
  b.wall_ns = 900;
  a.workers = 2;
  b.workers = 3;
  a.chunk_queue.max_depth = 7;
  b.chunk_queue.max_depth = 4;
  a.Merge(b);
  EXPECT_EQ(a.shard_queries, (std::vector<uint64_t>{11, 22, 30}));
  EXPECT_EQ(a.wall_ns, 900u);      // shared wall clock -> max
  EXPECT_EQ(a.workers, 5u);        // head count -> sum
  EXPECT_EQ(a.chunk_queue.max_depth, 7u);  // high water -> max
}

// ---------------------------------------------------------------------------
// TelemetryDigest: covers item flow, ignores timing.
// ---------------------------------------------------------------------------

TEST(TelemetryDigestTest, IgnoresTimingAndQueueNoise) {
  RunTelemetry a = SampleRun(6);
  RunTelemetry b = a;
  b.wall_ns += 12345;
  b.workers += 2;
  b.chunk_queue.push_block_ns += 999;
  b.shard_queues.pop_waits += 3;
  b.stage(kStageParse).chunk_ns.Record(42);
  b.stage(kStageParse).chunks += 5;
  b.stage(kStageShard).alloc_bytes += 4096;
  b.run_allocs += 77;
  b.prefilter_dp += 4;  // warmup-dependent, excluded
  EXPECT_EQ(TelemetryDigest(a), TelemetryDigest(b));
}

TEST(TelemetryDigestTest, SensitiveToItemFlow) {
  RunTelemetry a = SampleRun(6);
  RunTelemetry items = a;
  ++items.stage(kStageParse).items_out;
  EXPECT_NE(TelemetryDigest(a), TelemetryDigest(items));
  RunTelemetry malformed = a;
  ++malformed.stage(kStageParse).malformed;
  EXPECT_NE(TelemetryDigest(a), TelemetryDigest(malformed));
  RunTelemetry shards = a;
  ++shards.shard_queries[1];
  EXPECT_NE(TelemetryDigest(a), TelemetryDigest(shards));
}

// ---------------------------------------------------------------------------
// TraceRing
// ---------------------------------------------------------------------------

TEST(TraceRingTest, KeepsNewestAndCountsDropped) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    ring.Record(kStageParse, i, i * 100, i * 100 + 50);
  }
  if constexpr (!kTelemetryEnabled) {
    EXPECT_EQ(ring.size(), 0u);
    return;
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<TraceEvent> events = ring.Drain();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].chunk, i + 2);  // oldest two were overwritten
    EXPECT_EQ(events[i].begin_ns, (i + 2) * 100);
  }
}

TEST(TraceRingTest, PartialFillDrainsInOrder) {
  TraceRing ring(8);
  ring.Record(kStageReader, 0, 10, 20);
  ring.Record(kStageReader, 1, 30, 40);
  if constexpr (!kTelemetryEnabled) return;
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceEvent> events = ring.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].chunk, 0u);
  EXPECT_EQ(events[1].chunk, 1u);
}

TEST(TraceRingTest, ZeroCapacityIsInert) {
  TraceRing ring(0);
  ring.Record(kStageParse, 0, 1, 2);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.Drain().empty());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ExportersTest, SummaryJsonPrometheusAndOneLine) {
  RunTelemetry t = SampleRun(8);
  t.shard_queries = {100, 0};  // peak 100 over mean 50 -> skew 2.00x
  t.wall_ns = 1000000;
  t.workers = 4;

  std::ostringstream summary;
  PrintSummary(summary, t);
  EXPECT_NE(summary.str().find("Queue stall"), std::string::npos);
  EXPECT_NE(summary.str().find("parse"), std::string::npos);

  std::ostringstream json;
  WriteTelemetryJson(json, t);
  EXPECT_NE(json.str().find("\"telemetry\""), std::string::npos);
  EXPECT_NE(json.str().find("\"digest\""), std::string::npos);
  EXPECT_NE(json.str().find("\"shard_queries\""), std::string::npos);

  std::string prom = PrometheusText(t);
  EXPECT_NE(prom.find("sparqlog_stage_items_in_total{stage=\"parse\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("sparqlog_stage_chunk_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("sparqlog_shard_queries_total{shard=\"1\"}"),
            std::string::npos);

  std::string line = OneLineSummary(t);
  EXPECT_EQ(line.rfind("telemetry:", 0), 0u);
  EXPECT_NE(line.find("shard skew 2.00x"), std::string::npos);
}

TEST(ExportersTest, ChromeTraceShape) {
  TraceData trace;
  trace.origin_ns = 1000;
  trace.wall_ns = 5000;
  TraceTrack track;
  track.name = "parse-0";
  track.events.push_back(TraceEvent{2000, 3000, 7, kStageParse, 0});
  trace.tracks.push_back(track);

  std::ostringstream out;
  WriteChromeTrace(out, trace);
  std::string s = out.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(s.find("\"parse-0\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(s.find("\"dur\": 1"), std::string::npos);  // 1000 ns -> 1 us
}

// ---------------------------------------------------------------------------
// End-to-end wiring
// ---------------------------------------------------------------------------

std::vector<std::string> TestLog(uint64_t entries, uint64_t seed = 2017) {
  auto profiles = corpus::PaperProfiles();
  corpus::GeneratorOptions options;
  options.scale = 0;
  options.min_entries = entries;
  options.seed = seed;
  corpus::SyntheticLogGenerator gen(
      corpus::ProfileByName(profiles, "DBpedia15"), options);
  return gen.GenerateLog();
}

TEST(PipelineTelemetryTest, DisabledByDefault) {
  pipeline::ParallelLogPipeline pl(pipeline::PipelineOptions{});
  pipeline::PipelineResult result = pl.Run(TestLog(200));
  EXPECT_FALSE(result.telemetry.has_value());
  EXPECT_FALSE(result.trace.has_value());
}

TEST(PipelineTelemetryTest, CountersMatchPipelineResults) {
  std::vector<std::string> log = TestLog(600);
  pipeline::PipelineOptions options;
  options.threads = 3;
  options.shards = 2;
  options.chunk_size = 64;
  options.telemetry.metrics = true;
  pipeline::ParallelLogPipeline pl(options);
  pipeline::PipelineResult result = pl.Run(log);
  if constexpr (!kTelemetryEnabled) {
    EXPECT_FALSE(result.telemetry.has_value());
    return;
  }
  ASSERT_TRUE(result.telemetry.has_value());
  const RunTelemetry& t = *result.telemetry;
  // Reader saw every line; parse emitted every query entry; the shard
  // stage kept the valid ones.
  EXPECT_EQ(t.stage(kStageReader).items_in, result.lines);
  EXPECT_EQ(t.stage(kStageParse).items_in, result.lines);
  EXPECT_EQ(t.stage(kStageParse).items_out, result.stats.total);
  EXPECT_EQ(t.stage(kStageShard).items_in, result.stats.total);
  EXPECT_EQ(t.stage(kStageShard).items_out, result.stats.valid);
  EXPECT_EQ(t.stage(kStageShard).malformed,
            result.stats.total - result.stats.valid);
  // Unique sink feeds analysis once per unique query.
  EXPECT_EQ(t.stage(kStageAnalysis).items_in, result.stats.unique);
  // Every routed entry landed on some shard.
  ASSERT_EQ(t.shard_queries.size(), 2u);
  EXPECT_EQ(t.shard_queries[0] + t.shard_queries[1], result.stats.total);
  // Envelope: reader + parse workers + shard consumers all reported.
  EXPECT_EQ(t.workers, 1u + 3u + 2u);
  EXPECT_GT(t.wall_ns, 0u);
  EXPECT_EQ(t.chunk_queue.pushes, t.chunk_queue.pops);
  EXPECT_EQ(t.chunk_queue.pushes, t.stage(kStageReader).chunks);
}

TEST(PipelineTelemetryTest, DigestInvariantAcrossSchedules) {
  std::vector<std::string> log = TestLog(500);
  auto digest_at = [&](int threads, size_t chunk_size, size_t queue_cap) {
    pipeline::PipelineOptions options;
    options.threads = threads;
    options.shards = 3;  // digest covers per-shard counts: hold it fixed
    options.chunk_size = chunk_size;
    options.queue_capacity = queue_cap;
    options.telemetry.metrics = true;
    pipeline::ParallelLogPipeline pl(options);
    pipeline::PipelineResult result = pl.Run(log);
    if (!result.telemetry.has_value()) return uint64_t{0};
    return TelemetryDigest(*result.telemetry);
  };
  uint64_t serial = digest_at(1, 512, 16);
  EXPECT_EQ(serial, digest_at(4, 64, 2));
  EXPECT_EQ(serial, digest_at(2, 7, 1));
  EXPECT_EQ(serial, digest_at(3, 1000, 4));
}

TEST(PipelineTelemetryTest, SerialIngestorMatchesShardStage) {
  std::vector<std::string> log = TestLog(400);
  // Serial reference: one LogIngestor with a private registry.
  RunTelemetry serial;
  corpus::LogIngestor ingestor;
  ingestor.set_telemetry(&serial);
  ingestor.ProcessLog(log);
  // Parallel run at an adversarial configuration.
  pipeline::PipelineOptions options;
  options.threads = 4;
  options.shards = 3;
  options.chunk_size = 17;
  options.telemetry.metrics = true;
  pipeline::ParallelLogPipeline pl(options);
  pipeline::PipelineResult result = pl.Run(log);
  if constexpr (!kTelemetryEnabled) return;
  ASSERT_TRUE(result.telemetry.has_value());
  // The shard/dedup counters are counted inside LogIngestor::Ingest on
  // both paths, so they must agree exactly.
  EXPECT_EQ(serial.stage(kStageShard).items_in,
            result.telemetry->stage(kStageShard).items_in);
  EXPECT_EQ(serial.stage(kStageShard).items_out,
            result.telemetry->stage(kStageShard).items_out);
  EXPECT_EQ(serial.stage(kStageShard).malformed,
            result.telemetry->stage(kStageShard).malformed);
  EXPECT_EQ(serial.stage(kStageShard).items_in, ingestor.stats().total);
  EXPECT_EQ(serial.stage(kStageShard).items_out, ingestor.stats().valid);
}

TEST(PipelineTelemetryTest, TraceSpansLandInsideRun) {
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.shards = 2;
  options.chunk_size = 32;
  options.telemetry.trace = true;
  pipeline::ParallelLogPipeline pl(options);
  pipeline::PipelineResult result = pl.Run(TestLog(300));
  if constexpr (!kTelemetryEnabled) {
    EXPECT_FALSE(result.trace.has_value());
    return;
  }
  ASSERT_TRUE(result.trace.has_value());
  const TraceData& trace = *result.trace;
  EXPECT_EQ(trace.tracks.size(), 1u + 2u + 2u);  // reader + parse + shard
  size_t spans = 0;
  for (const TraceTrack& track : trace.tracks) {
    EXPECT_EQ(track.dropped, 0u);
    for (const TraceEvent& e : track.events) {
      ++spans;
      EXPECT_LE(e.begin_ns, e.end_ns);
      EXPECT_GE(e.begin_ns, trace.origin_ns);
      EXPECT_LE(e.end_ns, trace.origin_ns + trace.wall_ns);
    }
  }
  EXPECT_GT(spans, 0u);
}

TEST(StreakStageTelemetryTest, EngagesAndCounts) {
  auto profiles = corpus::PaperProfiles();
  std::vector<std::string> queries = corpus::GenerateStreakLog(
      corpus::ProfileByName(profiles, "DBpedia16"), 300, 0.3, 7);
  pipeline::StreakStageOptions options;
  options.threads = 2;
  options.chunk_size = 50;
  options.telemetry.metrics = true;
  options.telemetry.trace = true;
  pipeline::StreakStage stage(options);
  pipeline::StreakStageResult result = stage.Run(queries);
  if constexpr (!kTelemetryEnabled) {
    EXPECT_FALSE(result.telemetry.has_value());
    return;
  }
  ASSERT_TRUE(result.telemetry.has_value());
  const RunTelemetry& t = *result.telemetry;
  // Warmup re-scans are excluded, so items == queries exactly; the
  // stitch pass folds every one of them once more.
  EXPECT_EQ(t.stage(kStageStreak).items_in, queries.size());
  EXPECT_EQ(t.stage(kStageStreak).items_out, queries.size());
  EXPECT_EQ(t.stage(kStageStitch).items_in, queries.size());
  EXPECT_EQ(t.stage(kStageStreak).chunks, result.chunks);
  EXPECT_EQ(t.prefilter_pairs, result.prefilter.pairs);
  EXPECT_EQ(t.prefilter_dp, result.prefilter.levenshtein_calls);
  ASSERT_TRUE(result.trace.has_value());
  EXPECT_GE(result.trace->tracks.size(), 2u);  // workers + stitch
}

}  // namespace
}  // namespace sparqlog::obs
