#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "corpus/ingest.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "sparql/termgen.h"
#include "testing/invariants.h"
#include "testing/log_mutator.h"
#include "testing/query_fuzzer.h"
#include "testing/shrink.h"
#include "util/rng.h"

namespace sparqlog::testing {
namespace {

// ---------------------------------------------------------------------------
// Term/escape generation hooks (sparql::termgen).
// ---------------------------------------------------------------------------

TEST(TermGenTest, Deterministic) {
  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sparql::termgen::RandomTerm(a).value,
              sparql::termgen::RandomTerm(b).value);
  }
}

TEST(TermGenTest, IriStringsStayInsideTheIrirefAlphabet) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    std::string iri = sparql::termgen::IriString(rng);
    for (char c : iri) {
      unsigned char u = static_cast<unsigned char>(c);
      EXPECT_GT(u, 0x20u) << "control byte in IRI";
      EXPECT_EQ(std::string_view("<>\"{}|^`\\").find(c),
                std::string_view::npos)
          << "lexer-rejected byte in IRI: " << c;
    }
  }
}

TEST(TermGenTest, LiteralBodiesCoverTheSerializerEscapeSet) {
  util::Rng rng(11);
  std::set<char> seen;
  for (int i = 0; i < 5000; ++i) {
    for (char c : sparql::termgen::LiteralBody(rng, 0.5)) {
      if (sparql::termgen::EscapedLiteralChars().find(c) !=
          std::string_view::npos) {
        seen.insert(c);
      }
    }
  }
  // Every character the serializer escapes must be generated, or an
  // escaping bug in one of them could never be caught.
  EXPECT_EQ(seen.size(), sparql::termgen::EscapedLiteralChars().size());
}

TEST(TermGenTest, VariableNamesAlwaysLex) {
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::string name = sparql::termgen::VariableName(rng);
    ASSERT_FALSE(name.empty());
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_');
    }
  }
}

// ---------------------------------------------------------------------------
// Query fuzzer.
// ---------------------------------------------------------------------------

TEST(QueryFuzzerTest, DeterministicSequence) {
  QueryFuzzOptions options;
  options.seed = 123;
  QueryFuzzer a(options), b(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(sparql::Serialize(a.Next()), sparql::Serialize(b.Next()));
  }
}

TEST(QueryFuzzerTest, DifferentSeedsDiverge) {
  QueryFuzzOptions oa, ob;
  oa.seed = 1;
  ob.seed = 2;
  QueryFuzzer a(oa), b(ob);
  bool diverged = false;
  for (int i = 0; i < 20 && !diverged; ++i) {
    diverged = sparql::Serialize(a.Next()) != sparql::Serialize(b.Next());
  }
  EXPECT_TRUE(diverged);
}

TEST(QueryFuzzerTest, CoversEveryOperatorPathClassFormAndShape) {
  QueryFuzzOptions options;
  options.seed = 99;
  QueryFuzzer fuzzer(options);
  for (int i = 0; i < 3000; ++i) fuzzer.Next();
  const FuzzCoverage& cov = fuzzer.coverage();
  for (size_t i = 0; i < cov.forms.size(); ++i) {
    EXPECT_GT(cov.forms[i], 0u) << "query form " << i << " never generated";
  }
  for (size_t i = 0; i < cov.patterns.size(); ++i) {
    EXPECT_GT(cov.patterns[i], 0u) << "pattern kind " << i
                                   << " never generated";
  }
  for (size_t i = 0; i < cov.paths.size(); ++i) {
    EXPECT_GT(cov.paths[i], 0u) << "path kind " << i << " never generated";
  }
  for (size_t i = 0; i < cov.exprs.size(); ++i) {
    EXPECT_GT(cov.exprs[i], 0u) << "expr kind " << i << " never generated";
  }
  for (size_t i = 0; i < cov.terms.size(); ++i) {
    EXPECT_GT(cov.terms[i], 0u) << "term kind " << i << " never generated";
  }
  for (size_t i = 0; i < cov.shapes.size(); ++i) {
    EXPECT_GT(cov.shapes[i], 0u) << "gmark shape " << i << " never used";
  }
  EXPECT_GT(cov.escaped_literals, 0u);
  EXPECT_GT(cov.gmark_skeletons, 0u);
}

TEST(QueryFuzzerTest, GeneratedQueriesSatisfyAllInvariants) {
  QueryFuzzOptions options;
  options.seed = 2026;
  QueryFuzzer fuzzer(options);
  sparql::Parser parser;
  for (int i = 0; i < 500; ++i) {
    sparql::Query q = fuzzer.Next();
    auto violation = CheckQuery(parser, q);
    ASSERT_FALSE(violation.has_value())
        << violation->invariant << ": " << violation->detail << "\n"
        << violation->input;
  }
}

// ---------------------------------------------------------------------------
// Log-line mutator.
// ---------------------------------------------------------------------------

TEST(LogMutatorTest, EncodeLineDecodesBackExactly) {
  LogMutatorOptions options;
  options.seed = 17;
  LogLineMutator mutator(options);
  sparql::Parser parser;
  const std::string text = "SELECT * WHERE { ?s ?p \"100% of a&b + c\" }";
  for (int i = 0; i < 200; ++i) {
    std::string line = mutator.EncodeLine(text);
    std::string decode_buf;
    auto extracted = corpus::ExtractQueryText(line, decode_buf);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(*extracted, text) << line;
  }
}

TEST(LogMutatorTest, Deterministic) {
  LogMutatorOptions options;
  options.seed = 4;
  LogLineMutator a(options), b(options);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextLine("ASK { ?s ?p ?o }"), b.NextLine("ASK { ?s ?p ?o }"));
  }
}

TEST(LogMutatorTest, MutatedLinesSatisfyIngestInvariants) {
  LogMutatorOptions options;
  options.seed = 31337;
  LogLineMutator mutator(options);
  sparql::Parser parser;
  const char* texts[] = {
      "SELECT * WHERE { ?s ?p ?o }",
      "ASK { <a> <b> \"esc\\\"aped\\n\" }",
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?p "
      "foaf:name ?n } LIMIT 10",
  };
  for (int i = 0; i < 600; ++i) {
    std::string line = mutator.NextLine(texts[i % 3]);
    auto violation = CheckLogLine(parser, line);
    ASSERT_FALSE(violation.has_value())
        << violation->invariant << ": " << violation->detail << "\n"
        << violation->input;
  }
}

// ---------------------------------------------------------------------------
// Invariant checks flag real divergence (sanity that they can fail).
// ---------------------------------------------------------------------------

TEST(InvariantsTest, FixtureQueriesPass) {
  sparql::Parser parser;
  EXPECT_FALSE(CheckQueryText(parser, "SELECT * WHERE { ?s ?p ?o }"));
  EXPECT_FALSE(CheckQueryText(parser, "ASK { ?s <p:p> \"a\\\"b\\nc\" }"));
  EXPECT_FALSE(CheckQueryText(parser, "not a query at all"));  // unparseable
}

TEST(InvariantsTest, ClosureViolationDetectedOnHandcraftedBadAst) {
  // An empty SELECT clause cannot be serialized into parseable text;
  // the checker must report it rather than crash or pass.
  sparql::Query q;
  q.form = sparql::QueryForm::kSelect;  // no items, no star
  q.has_body = true;
  q.where = sparql::Pattern::Group({});
  sparql::Parser parser;
  auto violation = CheckQuery(parser, q);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->invariant, "serializer-closure");
}

TEST(InvariantsTest, LogLineFixturesPass) {
  sparql::Parser parser;
  EXPECT_FALSE(CheckLogLine(parser, "query=ASK%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D"));
  EXPECT_FALSE(CheckLogLine(parser, "query=broken%%%garbage"));
  EXPECT_FALSE(CheckLogLine(parser, "noise line without prefix"));
  EXPECT_FALSE(CheckLogLine(parser, "query="));
  EXPECT_FALSE(CheckLogLine(parser, std::string_view("\xff\xc0\x80", 3)));
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel digest equivalence under randomized configs.
// ---------------------------------------------------------------------------

TEST(EquivalenceTest, RandomConfigsProduceIdenticalDigests) {
  QueryFuzzOptions fuzz_options;
  fuzz_options.seed = 6;
  QueryFuzzer fuzzer(fuzz_options);
  LogMutatorOptions mutator_options;
  mutator_options.seed = 6;
  LogLineMutator mutator(mutator_options);
  std::vector<std::string> texts;
  for (int i = 0; i < 16; ++i) {
    texts.push_back(sparql::Serialize(fuzzer.Next()));
  }
  util::Rng rng(6);
  std::vector<std::string> log;
  for (int i = 0; i < 400; ++i) {
    log.push_back(mutator.NextLine(texts[rng.Below(texts.size())]));
  }
  for (int round = 0; round < 4; ++round) {
    EquivalenceConfig config = RandomEquivalenceConfig(rng);
    auto violation = CheckSerialParallelEquivalence(log, config);
    ASSERT_FALSE(violation.has_value())
        << violation->invariant << ": " << violation->detail;
  }
}

TEST(EquivalenceTest, ShardsDecoupledFromThreads) {
  std::vector<std::string> log = {
      "query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D",
      "query=ASK%20%7B%20%3Ca%3E%20%3Cb%3E%20%3Cc%3E%20%7D",
      "query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D",  // dup
      "noise",
  };
  for (size_t shards : {1u, 2u, 3u, 7u}) {
    EquivalenceConfig config;
    config.threads = 2;
    config.shards = shards;
    config.chunk_size = 1;
    auto violation = CheckSerialParallelEquivalence(log, config);
    ASSERT_FALSE(violation.has_value())
        << "shards=" << shards << ": " << violation->detail;
  }
}

// ---------------------------------------------------------------------------
// Shrinking.
// ---------------------------------------------------------------------------

TEST(ShrinkTest, ReducesToThePlantedNeedle) {
  std::string haystack =
      "SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . FILTER (?x = \"NEEDLE\") } "
      "LIMIT 100";
  auto fails = [](const std::string& s) {
    return s.find("NEEDLE") != std::string::npos;
  };
  ShrinkOutcome outcome = ShrinkText(haystack, fails);
  EXPECT_EQ(outcome.text, "NEEDLE");
  EXPECT_GT(outcome.accepted, 0);
}

TEST(ShrinkTest, PredicateNeverSeesAPassingAcceptedState) {
  // Every accepted intermediate must fail; final result must fail.
  auto fails = [](const std::string& s) { return s.size() >= 3; };
  ShrinkOutcome outcome = ShrinkText("abcdefghij", fails);
  EXPECT_EQ(outcome.text.size(), 3u);
}

TEST(ShrinkTest, AstShrinkerReducesToMinimalWitness) {
  // Plant a failure: any query whose canonical form mentions OPTIONAL.
  QueryFuzzOptions options;
  options.seed = 8;
  QueryFuzzer fuzzer(options);
  sparql::Query q;
  std::string s;
  do {
    q = fuzzer.Next();
    s = sparql::Serialize(q);
  } while (s.find("OPTIONAL") == std::string::npos || s.size() < 400);
  auto fails = [](const sparql::Query& cand) {
    return sparql::Serialize(cand).find("OPTIONAL") != std::string::npos;
  };
  AstShrinkOutcome outcome = ShrinkQueryAst(q, fails);
  std::string minimal = sparql::Serialize(outcome.query);
  EXPECT_NE(minimal.find("OPTIONAL"), std::string::npos);
  // ASK { OPTIONAL { } } plus formatting.
  EXPECT_LT(minimal.size(), 40u) << minimal;
}

TEST(ShrinkTest, AstShrinkerKeepsWellFormedness) {
  // Shrinking against "serializer-closure" must not fabricate a
  // violation out of a degenerate AST (e.g. a bare FILTER as the WHERE
  // root): on a healthy serializer the predicate is never true, so the
  // input must come back untouched.
  QueryFuzzOptions options;
  options.seed = 14;
  QueryFuzzer fuzzer(options);
  sparql::Query q = fuzzer.Next();
  sparql::Parser parser;
  auto fails = [&parser](const sparql::Query& cand) {
    auto v = CheckQuery(parser, cand);
    return v.has_value() && v->invariant == "serializer-closure";
  };
  AstShrinkOutcome outcome = ShrinkQueryAst(q, fails);
  EXPECT_EQ(outcome.accepted, 0);
  EXPECT_EQ(sparql::Serialize(outcome.query), sparql::Serialize(q));
}

TEST(ShrinkTest, CppStringLiteralEscapesEverything) {
  std::string weird = "a\"b\\c\nd\te\x01\xff g";
  std::string lit = CppStringLiteral(weird);
  EXPECT_EQ(lit,
            "\"a\\\"b\\\\c\\nd\\te\\001\\377 g\"");
}

TEST(ShrinkTest, ReproducersAreReadyToPaste) {
  std::string r = FormatReproducer("QuerySeed1Case2", "query",
                                   "ASK { ?a ?a \"x\" }", 1);
  EXPECT_NE(r.find("TEST(FuzzRegression, QuerySeed1Case2)"),
            std::string::npos);
  EXPECT_NE(r.find("CheckQueryText"), std::string::npos);
  std::string l = FormatReproducer("LogLineSeed1Case3", "log_line",
                                   "query=ASK%7B%7D", 1);
  EXPECT_NE(l.find("CheckLogLine"), std::string::npos);
  std::string replay =
      FormatSeedReplayReproducer("QuerySeed5Case7", 5, 7,
                                 "serializer-closure", "ASK {\n}");
  EXPECT_NE(replay.find("options.seed = 5ULL"), std::string::npos);
  EXPECT_NE(replay.find("i <= 7"), std::string::npos);
  EXPECT_NE(replay.find("CheckQuery"), std::string::npos);
}

}  // namespace
}  // namespace sparqlog::testing
