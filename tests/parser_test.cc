#include <gtest/gtest.h>

#include "sparql/parser.h"
#include "sparql/serializer.h"

namespace sparqlog::sparql {
namespace {

Query MustParse(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << text;
  return r.ok() ? std::move(r).value() : Query{};
}

// ---------------------------------------------------------------------------
// Query forms
// ---------------------------------------------------------------------------

TEST(ParserTest, SelectStar) {
  Query q = MustParse("SELECT * WHERE { ?s ?p ?o }");
  EXPECT_EQ(q.form, QueryForm::kSelect);
  EXPECT_TRUE(q.select_star);
  ASSERT_TRUE(q.has_body);
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_TRUE(triples[0]->subject.is_variable());
  EXPECT_TRUE(triples[0]->has_variable_predicate());
}

TEST(ParserTest, SelectDistinctVars) {
  Query q = MustParse("SELECT DISTINCT ?a ?b WHERE { ?a <p> ?b }");
  EXPECT_TRUE(q.distinct);
  ASSERT_EQ(q.select_items.size(), 2u);
  EXPECT_EQ(q.select_items[0].var.value, "a");
}

TEST(ParserTest, SelectReduced) {
  Query q = MustParse("SELECT REDUCED ?a WHERE { ?a <p> ?b }");
  EXPECT_TRUE(q.reduced);
}

TEST(ParserTest, SelectExpressionAs) {
  Query q = MustParse(
      "SELECT (COUNT(*) AS ?c) (?x + 1 AS ?y) WHERE { ?x <p> ?o }");
  ASSERT_EQ(q.select_items.size(), 2u);
  ASSERT_TRUE(q.select_items[0].expr.has_value());
  EXPECT_EQ(q.select_items[0].expr->kind, ExprKind::kAggregate);
  EXPECT_TRUE(q.select_items[0].expr->star);
}

TEST(ParserTest, AskQuery) {
  Query q = MustParse("ASK { <s> <p> <o> }");
  EXPECT_EQ(q.form, QueryForm::kAsk);
  EXPECT_TRUE(q.BodyVariables().empty());
}

TEST(ParserTest, ConstructFullForm) {
  Query q = MustParse(
      "CONSTRUCT { ?s <made> ?o } WHERE { ?s <p> ?o }");
  EXPECT_EQ(q.form, QueryForm::kConstruct);
  ASSERT_EQ(q.construct_template.size(), 1u);
  EXPECT_EQ(q.construct_template[0].predicate.value, "made");
}

TEST(ParserTest, ConstructShortForm) {
  Query q = MustParse("CONSTRUCT WHERE { ?s <p> ?o }");
  ASSERT_EQ(q.construct_template.size(), 1u);
  EXPECT_TRUE(q.has_body);
}

TEST(ParserTest, DescribeWithoutBody) {
  Query q = MustParse("DESCRIBE <http://ex/r>");
  EXPECT_EQ(q.form, QueryForm::kDescribe);
  EXPECT_FALSE(q.has_body);
  ASSERT_EQ(q.describe_targets.size(), 1u);
}

TEST(ParserTest, DescribeWithBodyAndVar) {
  Query q = MustParse("DESCRIBE ?x WHERE { ?x <p> <o> }");
  EXPECT_TRUE(q.has_body);
  EXPECT_TRUE(q.describe_targets[0].is_variable());
}

TEST(ParserTest, UpdateRequestsRejectedAsUnsupported) {
  for (const char* update :
       {"INSERT DATA { <a> <b> <c> }", "DELETE WHERE { ?s ?p ?o }",
        "CLEAR GRAPH <g>", "LOAD <remote>", "DROP ALL",
        "WITH <g> DELETE { ?s ?p ?o } WHERE { ?s ?p ?o }"}) {
    auto r = ParseQuery(update);
    ASSERT_FALSE(r.ok()) << update;
    EXPECT_EQ(r.status().code(), util::StatusCode::kUnsupported) << update;
  }
}

// ---------------------------------------------------------------------------
// Prologue and IRIs
// ---------------------------------------------------------------------------

TEST(ParserTest, PrefixExpansion) {
  Query q = MustParse(
      "PREFIX ex: <http://ex.org/> SELECT * WHERE { ex:s ex:p ex:o }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  EXPECT_EQ(triples[0]->subject.value, "http://ex.org/s");
}

TEST(ParserTest, DefaultPrefixesAvailable) {
  Query q = MustParse("SELECT * WHERE { ?x rdf:type foaf:Person }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  EXPECT_EQ(triples[0]->predicate.value,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  EXPECT_EQ(triples[0]->object.value, "http://xmlns.com/foaf/0.1/Person");
}

TEST(ParserTest, UndeclaredPrefixFails) {
  auto r = ParseQuery("SELECT * WHERE { ?x zzz:foo ?y }");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, UnknownPrefixAllowedWithOption) {
  ParserOptions options;
  options.allow_unknown_prefixes = true;
  Parser parser(options);
  EXPECT_TRUE(parser.IsValid("SELECT * WHERE { ?x zzz:foo ?y }"));
}

TEST(ParserTest, AKeywordIsRdfType) {
  Query q = MustParse("SELECT * WHERE { ?x a <C> }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  EXPECT_EQ(triples[0]->predicate.value,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

// ---------------------------------------------------------------------------
// Triples block sugar
// ---------------------------------------------------------------------------

TEST(ParserTest, SemicolonAndCommaSugar) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p1> ?a , ?b ; <p2> ?c . }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_EQ(triples[0]->object.value, "a");
  EXPECT_EQ(triples[1]->object.value, "b");
  EXPECT_EQ(triples[2]->predicate.value, "p2");
}

TEST(ParserTest, TrailingSemicolonTolerated) {
  MustParse("SELECT * WHERE { ?x <p> ?y ; . }");
}

TEST(ParserTest, BlankNodePropertyList) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <knows> [ <name> ?n ; <age> ?a ] }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  // [..] introduces 2 triples plus the outer one.
  ASSERT_EQ(triples.size(), 3u);
  int blanks = 0;
  for (const TriplePattern* t : triples) {
    if (t->subject.is_blank() || t->object.is_blank()) ++blanks;
  }
  EXPECT_GE(blanks, 2);
}

TEST(ParserTest, BareBlankNodePropertyListAsTriple) {
  Query q = MustParse("SELECT * WHERE { [ <p> ?v ] }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  EXPECT_EQ(triples.size(), 1u);
}

TEST(ParserTest, Collections) {
  Query q = MustParse("SELECT * WHERE { ?x <list> ( 1 2 3 ) }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  // first/rest chain: 2 per element + outer triple.
  EXPECT_EQ(triples.size(), 7u);
}

TEST(ParserTest, EmptyCollectionIsRdfNil) {
  Query q = MustParse("SELECT * WHERE { ?x <list> () }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0]->object.value,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil");
}

TEST(ParserTest, LiteralForms) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> \"lit\"@en . ?x <q> \"5\"^^xsd:int . "
      "?x <r> 3.14 . ?x <s> true . ?x <t> -7 }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  ASSERT_EQ(triples.size(), 5u);
  EXPECT_EQ(triples[0]->object.lang, "en");
  EXPECT_EQ(triples[1]->object.datatype,
            "http://www.w3.org/2001/XMLSchema#int");
  EXPECT_EQ(triples[3]->object.value, "true");
  EXPECT_EQ(triples[4]->object.value, "-7");
}

// ---------------------------------------------------------------------------
// Graph pattern operators
// ---------------------------------------------------------------------------

TEST(ParserTest, OptionalPattern) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } }");
  bool found = false;
  for (const Pattern& c : q.where.children) {
    if (c.kind == PatternKind::kOptional) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, UnionPattern) {
  Query q = MustParse(
      "SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } UNION "
      "{ ?x <r> ?y } }");
  ASSERT_EQ(q.where.children.size(), 1u);
  EXPECT_EQ(q.where.children[0].kind, PatternKind::kUnion);
  EXPECT_EQ(q.where.children[0].children.size(), 3u);
}

TEST(ParserTest, MinusGraphServiceBindValues) {
  Query q = MustParse(
      "SELECT * WHERE { ?s <p> ?o MINUS { ?s <q> <bad> } "
      "GRAPH ?g { ?s <r> ?t } SERVICE SILENT <http://endpoint/> "
      "{ ?s <u> ?v } BIND(STR(?o) AS ?str) VALUES ?w { <a> <b> } }");
  int kinds[12] = {0};
  for (const Pattern& c : q.where.children) {
    ++kinds[static_cast<int>(c.kind)];
  }
  EXPECT_EQ(kinds[static_cast<int>(PatternKind::kMinus)], 1);
  EXPECT_EQ(kinds[static_cast<int>(PatternKind::kGraph)], 1);
  EXPECT_EQ(kinds[static_cast<int>(PatternKind::kService)], 1);
  EXPECT_EQ(kinds[static_cast<int>(PatternKind::kBind)], 1);
  EXPECT_EQ(kinds[static_cast<int>(PatternKind::kValues)], 1);
}

TEST(ParserTest, SubSelect) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <p> ?y { SELECT ?y WHERE { ?y <q> ?z } "
      "LIMIT 3 } }");
  bool found = false;
  for (const Pattern& c : q.where.children) {
    if (c.kind == PatternKind::kGroup) {
      for (const Pattern& gc : c.children) {
        if (gc.kind == PatternKind::kSubSelect) {
          found = true;
          ASSERT_TRUE(gc.subquery != nullptr);
          EXPECT_EQ(gc.subquery->limit, 3u);
        }
      }
    }
    if (c.kind == PatternKind::kSubSelect) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, MultiVarValues) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y } VALUES (?x ?y) { (<a> 1) (UNDEF 2) }");
  ASSERT_TRUE(q.trailing_values.has_value());
  EXPECT_EQ(q.trailing_values->values_vars.size(), 2u);
  ASSERT_EQ(q.trailing_values->values_rows.size(), 2u);
  EXPECT_FALSE(q.trailing_values->values_rows[1][0].has_value());  // UNDEF
}

// ---------------------------------------------------------------------------
// Filters and expressions
// ---------------------------------------------------------------------------

TEST(ParserTest, FilterPrecedence) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y FILTER(?y > 1 && ?y < 5 || !BOUND(?x)) }");
  const Pattern* filter = nullptr;
  for (const Pattern& c : q.where.children) {
    if (c.kind == PatternKind::kFilter) filter = &c;
  }
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->expr.kind, ExprKind::kOr);
  ASSERT_EQ(filter->expr.args.size(), 2u);
  EXPECT_EQ(filter->expr.args[0].kind, ExprKind::kAnd);
  EXPECT_EQ(filter->expr.args[1].kind, ExprKind::kNot);
}

TEST(ParserTest, ArithmeticPrecedence) {
  Query q = MustParse("SELECT (1 + 2 * 3 AS ?v) WHERE { ?x <p> ?y }");
  const Expr& e = *q.select_items[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kArith);
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.args[1].op, "*");
}

TEST(ParserTest, InAndNotIn) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y FILTER(?y IN (1, 2) && "
      "?x NOT IN (<a>)) }");
  const Pattern* filter = nullptr;
  for (const Pattern& c : q.where.children) {
    if (c.kind == PatternKind::kFilter) filter = &c;
  }
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->expr.args[0].kind, ExprKind::kIn);
  EXPECT_EQ(filter->expr.args[1].kind, ExprKind::kNotIn);
}

TEST(ParserTest, ExistsAndNotExists) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y FILTER EXISTS { ?x <q> ?z } "
      "FILTER NOT EXISTS { ?x <r> ?w } }");
  int exists = 0, not_exists = 0;
  for (const Pattern& c : q.where.children) {
    if (c.kind != PatternKind::kFilter) continue;
    if (c.expr.kind == ExprKind::kExists) ++exists;
    if (c.expr.kind == ExprKind::kNotExists) ++not_exists;
  }
  EXPECT_EQ(exists, 1);
  EXPECT_EQ(not_exists, 1);
}

TEST(ParserTest, BuiltinCalls) {
  MustParse(
      "SELECT * WHERE { ?x <p> ?y FILTER(REGEX(STR(?y), \"^A\", \"i\") || "
      "LANGMATCHES(LANG(?y), \"en\") || ISIRI(?x) || "
      "CONTAINS(UCASE(?y), \"Z\")) }");
}

TEST(ParserTest, AggregatesFull) {
  Query q = MustParse(
      "SELECT (SUM(?v) AS ?s) (AVG(DISTINCT ?v) AS ?a) "
      "(GROUP_CONCAT(?n; SEPARATOR=\",\") AS ?g) WHERE { ?x <p> ?v ; "
      "<n> ?n } GROUP BY ?x HAVING (SUM(?v) > 10)");
  EXPECT_EQ(q.select_items[1].expr->distinct, true);
  EXPECT_EQ(q.select_items[2].expr->separator, ",");
  EXPECT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.having.size(), 1u);
}

// ---------------------------------------------------------------------------
// Solution modifiers
// ---------------------------------------------------------------------------

TEST(ParserTest, SolutionModifiersAllForms) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y } ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_FALSE(q.order_by[1].descending);
  EXPECT_EQ(q.limit, 10u);
  EXPECT_EQ(q.offset, 5u);
}

TEST(ParserTest, OffsetBeforeLimit) {
  Query q = MustParse("SELECT * WHERE { ?x <p> ?y } OFFSET 2 LIMIT 4");
  EXPECT_EQ(q.limit, 4u);
  EXPECT_EQ(q.offset, 2u);
}

TEST(ParserTest, DatasetClauses) {
  Query q = MustParse(
      "SELECT * FROM <http://g1> FROM NAMED <http://g2> WHERE { ?s ?p ?o }");
  ASSERT_EQ(q.dataset.size(), 2u);
  EXPECT_FALSE(q.dataset[0].named);
  EXPECT_TRUE(q.dataset[1].named);
}

// ---------------------------------------------------------------------------
// Property paths
// ---------------------------------------------------------------------------

TEST(ParserTest, PropertyPathForms) {
  Query q = MustParse(
      "SELECT * WHERE { ?a <p>/<q> ?b . ?a <p>|<q> ?c . ?a ^<p> ?d . "
      "?a <p>* ?e . ?a <p>+ ?f . ?a <p>? ?g . ?a !(<p>|^<q>) ?h . "
      "?a (<p>/<q>)* ?i }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  ASSERT_EQ(triples.size(), 8u);
  EXPECT_EQ(triples[0]->path.kind, PathKind::kSeq);
  EXPECT_EQ(triples[1]->path.kind, PathKind::kAlt);
  EXPECT_EQ(triples[2]->path.kind, PathKind::kInverse);
  EXPECT_EQ(triples[3]->path.kind, PathKind::kZeroOrMore);
  EXPECT_EQ(triples[4]->path.kind, PathKind::kOneOrMore);
  EXPECT_EQ(triples[5]->path.kind, PathKind::kZeroOrOne);
  EXPECT_EQ(triples[6]->path.kind, PathKind::kNegated);
  EXPECT_EQ(triples[6]->path.children.size(), 2u);
  EXPECT_EQ(triples[7]->path.kind, PathKind::kZeroOrMore);
  EXPECT_EQ(triples[7]->path.children[0].kind, PathKind::kSeq);
}

TEST(ParserTest, BareIriPathIsPlainTriple) {
  Query q = MustParse("SELECT * WHERE { ?a <p> ?b }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  EXPECT_FALSE(triples[0]->has_path);
}

TEST(ParserTest, WikidataExampleFromPaper) {
  // The "Locations of archaeological sites" query from Section 3.
  Query q = MustParse(
      "SELECT ?label ?coord ?subj WHERE "
      "{ ?subj wdt:P31/wdt:P279* wd:Q839954 . ?subj wdt:P625 ?coord . "
      "?subj rdfs:label ?label filter(lang(?label)=\"en\") }");
  std::vector<const TriplePattern*> triples;
  q.where.CollectTriples(triples);
  ASSERT_EQ(triples.size(), 3u);
  EXPECT_TRUE(triples[0]->has_path);
  EXPECT_EQ(q.select_items.size(), 3u);
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(ParserTest, SyntaxErrors) {
  for (const char* bad :
       {"SELECT", "SELECT * WHERE { ?x", "SELECT WHERE { ?x <p> ?y }",
        "ASK { ?x <p> }", "SELECT * WHERE { ?x <p> ?y } LIMIT ?x",
        "SELECT * WHERE { FILTER } ", "FOO BAR", "",
        "SELECT * WHERE { ?x <p> ?y } UNION { ?x <q> ?y }",
        "SELECT ?x WHERE { { ?x <p> ?y }", "PREFIX : SELECT * WHERE {}"}) {
    EXPECT_FALSE(ParseQuery(bad).ok()) << bad;
  }
}

TEST(ParserTest, MalformedWikidataQueryFromPaper) {
  // "Public Art in Paris" was malformed: missing closing braces and a
  // bad aggregate (footnote 8).
  auto r = ParseQuery(
      "SELECT ?item (COUNT() AS ?c WHERE { ?item wdt:P31 wd:Q838948 ");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, EmptyGroupIsValid) {
  Query q = MustParse("SELECT * WHERE { }");
  EXPECT_TRUE(q.has_body);
  EXPECT_TRUE(q.where.children.empty());
}

// ---------------------------------------------------------------------------
// Deep-copy semantics of the shared_ptr AST payloads
// ---------------------------------------------------------------------------

// Regression: Expr/Pattern hold their recursive payloads (EXISTS
// pattern, subquery) behind shared_ptr to stay copyable. The copy path
// must clone the payload, not alias it — an aliasing copy lets a
// mutation of the copy (the shrinker does this constantly) silently
// rewrite the original.

TEST(ParserTest, CopiedExistsPatternIsIndependent) {
  Query q = MustParse(
      "SELECT * WHERE { ?x <p> ?y FILTER EXISTS { ?x <q> ?y } }");
  const std::string before = Serialize(q);

  Query copy = q;
  // Find the FILTER child and gut its EXISTS payload.
  ASSERT_TRUE(copy.has_body);
  Pattern* filter = nullptr;
  for (Pattern& child : copy.where.children) {
    if (child.kind == PatternKind::kFilter) filter = &child;
  }
  ASSERT_NE(filter, nullptr);
  ASSERT_EQ(filter->expr.kind, ExprKind::kExists);
  ASSERT_NE(filter->expr.pattern, nullptr);
  ASSERT_NE(filter->expr.pattern, q.where.children.back().expr.pattern)
      << "copy aliases the original EXISTS payload";
  filter->expr.pattern->children.clear();

  EXPECT_EQ(Serialize(q), before)
      << "mutating the copy's EXISTS pattern changed the original";
  EXPECT_NE(Serialize(copy), before);
}

TEST(ParserTest, CopiedSubqueryIsIndependent) {
  Query q = MustParse(
      "SELECT ?x WHERE { ?x <p> ?y { SELECT ?y WHERE { ?y <q> ?z } "
      "LIMIT 3 } }");
  const std::string before = Serialize(q);

  Query copy = q;
  ASSERT_TRUE(copy.has_body);
  Pattern* sub = nullptr;
  for (Pattern& child : copy.where.children) {
    if (child.kind == PatternKind::kSubSelect) sub = &child;
  }
  ASSERT_NE(sub, nullptr);
  ASSERT_NE(sub->subquery, nullptr);
  for (const Pattern& child : q.where.children) {
    if (child.kind == PatternKind::kSubSelect) {
      ASSERT_NE(sub->subquery, child.subquery)
          << "copy aliases the original subquery payload";
    }
  }
  sub->subquery->limit = 99;
  sub->subquery->where.children.clear();

  EXPECT_EQ(Serialize(q), before)
      << "mutating the copy's subquery changed the original";
  EXPECT_NE(Serialize(copy), before);
}

// ---------------------------------------------------------------------------
// Recursion depth cap
// ---------------------------------------------------------------------------

std::string Nested(const char* open, const char* body, const char* close,
                   int depth) {
  std::string s = "ASK ";
  for (int i = 0; i < depth; ++i) s += open;
  s += body;
  for (int i = 0; i < depth; ++i) s += close;
  return s;
}

TEST(ParserTest, RecursionCapRejectsDeepGroupNesting) {
  Parser parser;
  // Well beyond the default cap: each '{' is one recursion frame. The
  // pre-cap parser overran the C++ stack here (a crash containment
  // cannot catch); now it is an ordinary parse error.
  auto deep = parser.Parse(Nested("{", "?s ?p ?o", "}", 100000));
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(deep.status().message().find("maximum depth"), std::string::npos);
}

TEST(ParserTest, RecursionCapRejectsDeepExpressionAndNodeNesting) {
  Parser parser;
  // Parenthesized expressions recurse through ParsePrimaryExpression.
  std::string expr = "ASK { ?s ?p ?o FILTER(";
  for (int i = 0; i < 100000; ++i) expr += "(";
  expr += "1";
  auto deep_expr = parser.Parse(expr);
  ASSERT_FALSE(deep_expr.ok());
  EXPECT_EQ(deep_expr.status().code(), util::StatusCode::kInvalidArgument);

  // Blank-node property lists recurse through ParseVarOrTermOrNode.
  std::string bnodes = "ASK { ";
  for (int i = 0; i < 100000; ++i) bnodes += "[ <p:p> ";
  auto deep_bnode = parser.Parse(bnodes);
  ASSERT_FALSE(deep_bnode.ok());
  EXPECT_EQ(deep_bnode.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ParserTest, RecursionCapLeavesRealisticNestingAlone) {
  Parser parser;
  // Deeply nested but within the default cap of 128: parses fine.
  auto ok = parser.Parse(Nested("{", "?s ?p ?o", "}", 100));
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // The cap is configurable; a tight cap rejects what the default allows.
  ParserOptions tight;
  tight.max_recursion_depth = 4;
  Parser tight_parser(tight);
  auto rejected = tight_parser.Parse(Nested("{", "?s ?p ?o", "}", 10));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);
  auto accepted = tight_parser.Parse("ASK { { ?s ?p ?o } }");
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
}

}  // namespace
}  // namespace sparqlog::sparql
