#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/profile.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"

namespace sparqlog::sparql {
namespace {

/// Parses, serializes, re-parses, re-serializes; the two serializations
/// must agree (canonical-form property).
void ExpectStableRoundTrip(const std::string& text) {
  auto first = ParseQuery(text);
  ASSERT_TRUE(first.ok()) << first.status().ToString() << "\n" << text;
  std::string one = Serialize(first.value());
  auto second = ParseQuery(one);
  ASSERT_TRUE(second.ok()) << second.status().ToString() << "\nserialized:\n"
                           << one;
  std::string two = Serialize(second.value());
  EXPECT_EQ(one, two) << "non-canonical serialization for:\n" << text;
}

TEST(SerializerTest, RoundTripBasicForms) {
  ExpectStableRoundTrip("SELECT * WHERE { ?s ?p ?o }");
  ExpectStableRoundTrip("ASK { <a> <b> <c> }");
  ExpectStableRoundTrip("CONSTRUCT { ?s <p> ?o } WHERE { ?s <q> ?o }");
  ExpectStableRoundTrip("DESCRIBE <http://r/>");
  ExpectStableRoundTrip("DESCRIBE ?x WHERE { ?x <p> 1 }");
}

TEST(SerializerTest, RoundTripModifiers) {
  ExpectStableRoundTrip(
      "SELECT DISTINCT ?x WHERE { ?x <p> ?y } ORDER BY DESC(?y) "
      "LIMIT 5 OFFSET 2");
  ExpectStableRoundTrip(
      "SELECT (COUNT(*) AS ?c) WHERE { ?x <p> ?y } GROUP BY ?x "
      "HAVING (COUNT(*) > 3)");
}

TEST(SerializerTest, RoundTripOperators) {
  ExpectStableRoundTrip(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } "
      "FILTER(LANG(?y) = \"en\") }");
  ExpectStableRoundTrip(
      "SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }");
  ExpectStableRoundTrip(
      "SELECT * WHERE { GRAPH ?g { ?s ?p ?o } MINUS { ?s <b> <c> } }");
  ExpectStableRoundTrip(
      "SELECT * WHERE { SERVICE SILENT <http://e/> { ?s <p> ?o } "
      "BIND(STR(?o) AS ?b) VALUES (?v) { (<x>) (UNDEF) } }");
}

TEST(SerializerTest, RoundTripPaths) {
  ExpectStableRoundTrip("SELECT * WHERE { ?a <p>/<q>* ?b }");
  ExpectStableRoundTrip("SELECT * WHERE { ?a (<p>|<q>)+ ?b }");
  ExpectStableRoundTrip("SELECT * WHERE { ?a !(<p>|^<q>) ?b }");
  ExpectStableRoundTrip("SELECT * WHERE { ?a ^<p>/<q> ?b }");
  ExpectStableRoundTrip("SELECT * WHERE { ?a (<p>/<q>)* ?b }");
}

TEST(SerializerTest, RoundTripSubqueries) {
  ExpectStableRoundTrip(
      "SELECT ?x WHERE { ?x <p> ?y { SELECT DISTINCT ?y WHERE "
      "{ ?y <q> ?z } LIMIT 7 } }");
}

TEST(SerializerTest, RoundTripLiterals) {
  ExpectStableRoundTrip(
      "SELECT * WHERE { ?x <p> \"a\\\"b\" ; <q> \"c\"@de ; "
      "<r> \"1\"^^<http://www.w3.org/2001/XMLSchema#int> ; <s> 2.5 }");
}

TEST(SerializerTest, EscapesInLiterals) {
  auto q = ParseQuery("SELECT * WHERE { ?x <p> \"line\\nbreak\\ttab\" }");
  ASSERT_TRUE(q.ok());
  std::string s = Serialize(q.value());
  EXPECT_NE(s.find("\\n"), std::string::npos);
  EXPECT_NE(s.find("\\t"), std::string::npos);
  ExpectStableRoundTrip(s);
}

TEST(SerializerTest, FunctionCallSyntaxSurvivesReparse) {
  // Bare `NAME(args)` form only for parser-canonical identifiers;
  // everything else — colon-free relative IRIs, empty IRIs, lower-case
  // or keyword-colliding names — must keep the <iri>(args) form
  // (fuzzer-found: `<>(?a)` used to re-serialize as `(?a)`).
  ExpectStableRoundTrip("SELECT * WHERE { ?s ?p ?o . FILTER (<>(?a)) }");
  ExpectStableRoundTrip("SELECT * WHERE { ?s ?p ?o . FILTER (<abc>(?a)) }");
  ExpectStableRoundTrip(
      "SELECT * WHERE { ?s ?p ?o . FILTER (<http://e.org/f>(?a, 1)) }");
  // <DISTINCT>(?x) must not serialize bare: SUM(DISTINCT(?x)) reparses
  // as the aggregate's DISTINCT modifier (review-found).
  ExpectStableRoundTrip(
      "SELECT (SUM(<DISTINCT>(?x)) AS ?s) WHERE { ?a ?b ?x } GROUP BY ?a");
  Expr call = Expr::Call("DISTINCT", {Expr::MakeVar("x")});
  EXPECT_EQ(SerializeExpr(call), "<DISTINCT>(?x)");
  EXPECT_EQ(SerializeExpr(Expr::Call("REGEX", {Expr::MakeVar("x")})),
            "REGEX(?x)");
}

TEST(SerializerTest, TripleToString) {
  TriplePattern tp = TriplePattern::Make(
      rdf::Term::Var("s"), rdf::Term::Iri("http://p"),
      rdf::Term::Literal("x", "", "en"));
  EXPECT_EQ(SerializeTriple(tp), "?s <http://p> \"x\"@en");
}

/// Property-style sweep: every query emitted by the synthetic corpus
/// generator (which exercises all features) must parse and round-trip
/// stably. This is the key guarantee behind duplicate detection.
class GeneratorRoundTripTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorRoundTripTest, GeneratedQueriesRoundTrip) {
  corpus::GeneratorOptions options;
  options.seed = GetParam();
  auto profiles = corpus::PaperProfiles();
  // Cycle through the dataset profiles by seed for diversity.
  const corpus::DatasetProfile& profile =
      profiles[GetParam() % profiles.size()];
  corpus::SyntheticLogGenerator gen(profile, options);
  for (int i = 0; i < 50; ++i) {
    Query q = gen.GenerateQuery();
    std::string text = Serialize(q);
    auto parsed = ParseQuery(text);
    ASSERT_TRUE(parsed.ok())
        << parsed.status().ToString() << "\n" << text;
    EXPECT_EQ(Serialize(parsed.value()), text) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorRoundTripTest,
                         ::testing::Range<uint64_t>(0, 13));

}  // namespace
}  // namespace sparqlog::sparql
