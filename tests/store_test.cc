#include <gtest/gtest.h>

#include <chrono>

#include "store/engine.h"
#include "store/store.h"

namespace sparqlog::store {
namespace {

using namespace std::chrono_literals;

TripleStore SmallGraph() {
  TripleStore s;
  // A small social graph: alice -> bob -> carol -> alice (knows cycle),
  // plus names.
  s.Add("alice", "knows", "bob");
  s.Add("bob", "knows", "carol");
  s.Add("carol", "knows", "alice");
  s.Add("alice", "name", "Alice");
  s.Add("bob", "name", "Bob");
  s.Add("dave", "knows", "alice");
  s.Build();
  return s;
}

TEST(StoreTest, BuildDeduplicates) {
  TripleStore s;
  s.Add("a", "p", "b");
  s.Add("a", "p", "b");
  s.Build();
  EXPECT_EQ(s.size(), 1u);
}

TEST(StoreTest, MatchBySubject) {
  TripleStore s = SmallGraph();
  std::vector<rdf::EncodedTriple> out;
  s.Match(s.dict().Lookup("alice"), 0, 0, out);
  EXPECT_EQ(out.size(), 2u);  // knows bob, name Alice
}

TEST(StoreTest, MatchByPredicate) {
  TripleStore s = SmallGraph();
  std::vector<rdf::EncodedTriple> out;
  s.Match(0, s.dict().Lookup("knows"), 0, out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(s.CountPredicate(s.dict().Lookup("knows")), 4u);
}

TEST(StoreTest, MatchByPredicateObject) {
  TripleStore s = SmallGraph();
  std::vector<rdf::EncodedTriple> out;
  s.Match(0, s.dict().Lookup("knows"), s.dict().Lookup("alice"), out);
  EXPECT_EQ(out.size(), 2u);  // carol, dave
}

TEST(StoreTest, MatchFullScan) {
  TripleStore s = SmallGraph();
  std::vector<rdf::EncodedTriple> out;
  s.Match(0, 0, 0, out);
  EXPECT_EQ(out.size(), s.size());
}

TEST(StoreTest, DistinctCounts) {
  TripleStore s = SmallGraph();
  EXPECT_EQ(s.DistinctSubjects(s.dict().Lookup("knows")), 4u);
  EXPECT_EQ(s.DistinctObjects(s.dict().Lookup("knows")), 3u);
}

// ---------------------------------------------------------------------------
// Engines: correctness (both engines must agree)
// ---------------------------------------------------------------------------

BgpQuery ChainQuery(const TripleStore& s, int length) {
  BgpQuery q;
  int64_t prev = q.AddVar();
  for (int i = 0; i < length; ++i) {
    int64_t next = q.AddVar();
    BgpPattern p;
    p.s = prev;
    p.p = static_cast<int64_t>(s.dict().Lookup("knows"));
    p.o = next;
    q.triples.push_back(p);
    prev = next;
  }
  return q;
}

BgpQuery CycleQuery(const TripleStore& s, int length) {
  BgpQuery q;
  std::vector<int64_t> vars;
  for (int i = 0; i < length; ++i) vars.push_back(q.AddVar());
  for (int i = 0; i < length; ++i) {
    BgpPattern p;
    p.s = vars[static_cast<size_t>(i)];
    p.p = static_cast<int64_t>(s.dict().Lookup("knows"));
    p.o = vars[static_cast<size_t>((i + 1) % length)];
    q.triples.push_back(p);
  }
  return q;
}

TEST(EngineTest, AskChainBothEnginesAgree) {
  TripleStore s = SmallGraph();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  for (int len = 1; len <= 4; ++len) {
    BgpQuery q = ChainQuery(s, len);
    EvalStats a = bg.Evaluate(q, EvalMode::kAsk, 1s);
    EvalStats b = pg.Evaluate(q, EvalMode::kAsk, 1s);
    EXPECT_EQ(a.matched, b.matched) << "len=" << len;
    EXPECT_TRUE(a.matched);
  }
}

TEST(EngineTest, SelectCountsAgree) {
  TripleStore s = SmallGraph();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  for (int len = 1; len <= 3; ++len) {
    BgpQuery q = ChainQuery(s, len);
    EvalStats a = bg.Evaluate(q, EvalMode::kSelect, 1s);
    EvalStats b = pg.Evaluate(q, EvalMode::kSelect, 1s);
    EXPECT_EQ(a.num_results, b.num_results) << "len=" << len;
    EXPECT_GT(a.num_results, 0u);
  }
}

TEST(EngineTest, CycleDetection) {
  TripleStore s = SmallGraph();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  // The knows-cycle has length 3: a cycle query of length 3 matches,
  // length 4 does not (no 4-cycle: dave -> alice closes nothing).
  EvalStats a3 = bg.Evaluate(CycleQuery(s, 3), EvalMode::kAsk, 1s);
  EvalStats b3 = pg.Evaluate(CycleQuery(s, 3), EvalMode::kAsk, 1s);
  EXPECT_TRUE(a3.matched);
  EXPECT_TRUE(b3.matched);
  EvalStats a4 = bg.Evaluate(CycleQuery(s, 4), EvalMode::kAsk, 1s);
  EvalStats b4 = pg.Evaluate(CycleQuery(s, 4), EvalMode::kAsk, 1s);
  EXPECT_FALSE(a4.matched);
  EXPECT_FALSE(b4.matched);
}

TEST(EngineTest, SelectCycleCountsAgree) {
  TripleStore s = SmallGraph();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  BgpQuery q = CycleQuery(s, 3);
  EvalStats a = bg.Evaluate(q, EvalMode::kSelect, 1s);
  EvalStats b = pg.Evaluate(q, EvalMode::kSelect, 1s);
  EXPECT_EQ(a.num_results, b.num_results);
  EXPECT_EQ(a.num_results, 3u);  // 3 rotations of the triangle
}

TEST(EngineTest, ConstantsInPatterns) {
  TripleStore s = SmallGraph();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  BgpQuery q;
  int64_t x = q.AddVar();
  BgpPattern p;
  p.s = static_cast<int64_t>(s.dict().Lookup("alice"));
  p.p = static_cast<int64_t>(s.dict().Lookup("knows"));
  p.o = x;
  q.triples.push_back(p);
  EXPECT_EQ(bg.Evaluate(q, EvalMode::kSelect, 1s).num_results, 1u);
  EXPECT_EQ(pg.Evaluate(q, EvalMode::kSelect, 1s).num_results, 1u);
}

TEST(EngineTest, EmptyResultHandled) {
  TripleStore s = SmallGraph();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  BgpQuery q;
  int64_t x = q.AddVar();
  BgpPattern p;
  p.s = x;
  p.p = static_cast<int64_t>(s.dict().Lookup("name"));
  // A term known to the dictionary but never asserted in a triple.
  p.o = static_cast<int64_t>(s.dict().Intern("Nobody"));
  q.triples.push_back(p);
  EXPECT_FALSE(bg.Evaluate(q, EvalMode::kAsk, 1s).matched);
  EXPECT_FALSE(pg.Evaluate(q, EvalMode::kAsk, 1s).matched);
}

TEST(EngineTest, RepeatedVariableWithinTriple) {
  TripleStore s;
  s.Add("n1", "self", "n1");
  s.Add("n1", "self", "n2");
  s.Build();
  GraphEngine bg(s);
  RelationalEngine pg(s);
  BgpQuery q;
  int64_t x = q.AddVar();
  BgpPattern p;
  p.s = x;
  p.p = static_cast<int64_t>(s.dict().Lookup("self"));
  p.o = x;  // same variable: only the true self-loop matches
  q.triples.push_back(p);
  EXPECT_EQ(bg.Evaluate(q, EvalMode::kSelect, 1s).num_results, 1u);
  EXPECT_EQ(pg.Evaluate(q, EvalMode::kSelect, 1s).num_results, 1u);
}

TEST(EngineTest, TimeoutReported) {
  // A large random graph and a long cycle query with a tiny deadline.
  TripleStore s;
  for (int i = 0; i < 3000; ++i) {
    s.Add("n" + std::to_string(i % 100), "e",
          "n" + std::to_string((i * 37) % 100));
  }
  s.Build();
  RelationalEngine pg(s);
  BgpQuery q = CycleQuery(s, 6);
  // Rebuild against this store's dictionary.
  for (auto& t : q.triples) {
    t.p = static_cast<int64_t>(s.dict().Lookup("e"));
  }
  EvalStats stats = pg.Evaluate(q, EvalMode::kSelect, 1us);
  EXPECT_TRUE(stats.timed_out);
}

}  // namespace
}  // namespace sparqlog::store
