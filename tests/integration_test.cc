#include <gtest/gtest.h>

#include <chrono>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "gmark/graph_gen.h"
#include "gmark/query_gen.h"
#include "sparql/serializer.h"
#include "store/engine.h"
#include "streaks/streaks.h"

namespace sparqlog {
namespace {

using namespace std::chrono_literals;

/// End-to-end: synthetic log -> ingestion -> analyzer, checking that the
/// cross-module invariants the paper relies on hold on a mixed corpus.
TEST(IntegrationTest, LogToReportPipeline) {
  auto profiles = corpus::PaperProfiles();
  corpus::GeneratorOptions options;
  options.scale = 0;
  options.min_entries = 600;
  corpus::CorpusAnalyzer analyzer;
  corpus::CorpusStats totals;
  for (const char* name : {"DBpedia13", "BioP13", "WikiData17"}) {
    const corpus::DatasetProfile& profile =
        corpus::ProfileByName(profiles, name);
    corpus::SyntheticLogGenerator gen(profile, options);
    corpus::LogIngestor ingestor;
    std::string dataset = profile.name;
    ingestor.set_unique_sink([&](const sparql::Query& q) {
      analyzer.AddQuery(q, dataset);
    });
    ingestor.ProcessLog(gen.GenerateLog());
    totals.total += ingestor.stats().total;
    totals.valid += ingestor.stats().valid;
    totals.unique += ingestor.stats().unique;
  }
  EXPECT_GT(totals.total, totals.valid);
  EXPECT_GT(totals.valid, totals.unique);

  const corpus::KeywordCounts& kw = analyzer.keywords();
  EXPECT_EQ(kw.total, analyzer.projection().total);
  EXPECT_EQ(kw.select + kw.ask + kw.describe + kw.construct, kw.total);

  // Operator-set classification covers every Select/Ask query.
  const analysis::OperatorSetDistribution& ops = analyzer.operator_sets();
  uint64_t classified = ops.other;
  for (uint8_t m = 0; m < 32; ++m) classified += ops.Exact(m);
  EXPECT_EQ(classified, ops.total);

  // Shape subsumption on the aggregated corpus (Table 4 ordering).
  const corpus::ShapeCounts& cq = analyzer.cq_shapes();
  EXPECT_LE(cq.single_edge, cq.chain);
  EXPECT_LE(cq.chain, cq.chain_set);
  EXPECT_LE(cq.chain_set, cq.forest);
  EXPECT_LE(cq.star, cq.tree);
  EXPECT_LE(cq.tree, cq.forest);
  EXPECT_LE(cq.cycle, cq.flower);
  EXPECT_LE(cq.flower, cq.flower_set);
  EXPECT_LE(cq.forest, cq.flower_set);
  EXPECT_EQ(cq.treewidth_gt3, 0u);

  // CQ <= CQF <= CQOF column totals (fragments are supersets).
  EXPECT_LE(analyzer.cq_shapes().total, analyzer.cqf_shapes().total);
  EXPECT_LE(analyzer.cqf_shapes().total, analyzer.cqof_shapes().total +
                                             analyzer.cqf_shapes().total);
}

/// Figure 3's qualitative claim, scaled down and asserted on a
/// deterministic cost proxy. Wall-clock comparisons flake under
/// sanitizers (the old form compared elapsed_ns and timeout counts), so
/// the engine gap is measured in wasted work per answer: materialized
/// intermediate tuples divided by result count. Chains are productive
/// for the relational engine (nearly every materialized tuple extends
/// into an answer); cycles materialize the same open-path intermediates
/// only for the closing edge to discard almost all of them, so the
/// per-answer cost is orders of magnitude worse — while the graph
/// engine's pipelined search materializes nothing on either shape. All
/// counts are a pure function of the seeded graph and workload,
/// independent of machine speed.
TEST(IntegrationTest, ChainVsCycleEngineGap) {
  store::TripleStore store;
  gmark::GraphGenOptions gopts;
  gopts.num_nodes = 1000;
  gopts.seed = 3;
  gmark::GenerateGraph(gmark::Schema::Bib(), gopts, store);

  gmark::QueryGenOptions chain_opts;
  chain_opts.shape = gmark::QueryShape::kChain;
  chain_opts.length = 5;
  chain_opts.workload_size = 15;
  gmark::QueryGenOptions cycle_opts = chain_opts;
  cycle_opts.shape = gmark::QueryShape::kCycle;

  store::GraphEngine bg(store);
  store::RelationalEngine pg(store);

  struct WorkloadCost {
    uint64_t tuples = 0;
    uint64_t results = 0;
    int timeouts = 0;
  };
  // The deadline is a safety net, not part of the assertion: a timed-out
  // evaluation reports partial tuple counts, so it is generous enough
  // that even sanitizer builds finish every query.
  auto run = [&](const store::Engine& engine,
                 const std::vector<gmark::GeneratedQuery>& workload) {
    WorkloadCost cost;
    for (const auto& q : workload) {
      auto bgp = gmark::CompileForEngine(q, store, gmark::Schema::Bib());
      if (!bgp.has_value()) continue;
      store::EvalStats stats =
          engine.Evaluate(*bgp, store::EvalMode::kAsk, 120s);
      cost.tuples += stats.intermediate_tuples;
      cost.results += stats.num_results;
      if (stats.timed_out) ++cost.timeouts;
    }
    return cost;
  };

  auto chains = gmark::GenerateWorkload(gmark::Schema::Bib(), chain_opts);
  auto cycles = gmark::GenerateWorkload(gmark::Schema::Bib(), cycle_opts);
  WorkloadCost bg_chain = run(bg, chains);
  WorkloadCost bg_cycle = run(bg, cycles);
  WorkloadCost pg_chain = run(pg, chains);
  WorkloadCost pg_cycle = run(pg, cycles);

  ASSERT_EQ(bg_chain.timeouts + bg_cycle.timeouts + pg_chain.timeouts +
                pg_cycle.timeouts,
            0)
      << "an engine hit the safety-net deadline; counts are partial";
  // Wasted work per answer (tuples / results, compared by integer
  // cross-multiplication): cycles cost the relational engine at least
  // 20x more materialization per answer than chains. The observed gap
  // at this scale is ~90x, so 20x flags a real regression, not noise.
  EXPECT_GT(pg_cycle.tuples * (pg_chain.results + 1),
            20 * pg_chain.tuples * (pg_cycle.results + 1))
      << "cycle waste " << pg_cycle.tuples << "/" << pg_cycle.results
      << " vs chain waste " << pg_chain.tuples << "/" << pg_chain.results;
  // The graph engine answers both workloads without materializing any
  // intermediate relation.
  EXPECT_EQ(bg_chain.tuples, 0u);
  EXPECT_EQ(bg_cycle.tuples, 0u);
}

/// Streak analysis over a generated day-log with planted sessions.
TEST(IntegrationTest, StreakDetectionOnPlantedSessions) {
  auto profiles = corpus::PaperProfiles();
  const corpus::DatasetProfile& profile =
      corpus::ProfileByName(profiles, "DBpedia14");
  auto log = corpus::GenerateStreakLog(profile, 1200, 0.35, 99);
  streaks::StreakDetector detector;
  for (const std::string& q : log) detector.Add(q);
  streaks::StreakReport report = detector.Finish();
  EXPECT_EQ(report.queries_processed, 1200u);
  // Planted refinement sessions must surface as streaks of length > 1.
  EXPECT_GT(report.longest, 3u);
  // The bucket distribution is dominated by short streaks (Table 6).
  EXPECT_GT(report.counts[0], report.counts[1]);
}

}  // namespace
}  // namespace sparqlog
