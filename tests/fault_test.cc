// Tests for the fault-containment subsystem: util::Status, the analysis
// step budgets and the abandoned bucket, worker quarantine, the seeded
// fault-injection harness, and the crash-safe run journal.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "corpus/ingest.h"
#include "corpus/report.h"
#include "pipeline/journal.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "testing/fault_injection.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/snapshot_io.h"
#include "util/status.h"

namespace sparqlog {
namespace {

// ---------------------------------------------------------------------------
// util::Status
// ---------------------------------------------------------------------------

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    util::Status status;
    util::StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {util::Status::OK(), util::StatusCode::kOk, "OK"},
      {util::Status::InvalidArgument("bad"), util::StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {util::Status::NotFound("bad"), util::StatusCode::kNotFound, "NotFound"},
      {util::Status::OutOfRange("bad"), util::StatusCode::kOutOfRange,
       "OutOfRange"},
      {util::Status::Unsupported("bad"), util::StatusCode::kUnsupported,
       "Unsupported"},
      {util::Status::Timeout("bad"), util::StatusCode::kTimeout, "Timeout"},
      {util::Status::Internal("bad"), util::StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ok(), c.code == util::StatusCode::kOk);
    if (c.status.ok()) {
      EXPECT_EQ(c.status.ToString(), "OK");
      EXPECT_TRUE(c.status.message().empty());
    } else {
      EXPECT_EQ(c.status.message(), "bad");
      EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": bad");
    }
  }
}

TEST(StatusTest, MessagePropagatesThroughCopyAndMove) {
  util::Status s = util::Status::Timeout("ghw step budget exhausted");
  util::Status copy = s;
  EXPECT_EQ(copy.code(), util::StatusCode::kTimeout);
  EXPECT_EQ(copy.message(), "ghw step budget exhausted");
  EXPECT_EQ(s.message(), copy.message());
  util::Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "ghw step budget exhausted");
}

TEST(StatusTest, OkPathCarriesNoMessageStorage) {
  // The OK fast path is default construction with an empty message, so
  // copies never touch the heap (std::string SSO on empty).
  util::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());
  util::Status copy = ok;
  EXPECT_TRUE(copy.ok());
  EXPECT_TRUE(copy.message().empty());
}

// ---------------------------------------------------------------------------
// util::StepBudget
// ---------------------------------------------------------------------------

TEST(StepBudgetTest, UnlimitedNeverExhausts) {
  util::StepBudget unlimited;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(unlimited.Charge(1u << 20));
  EXPECT_FALSE(unlimited.exhausted());
  EXPECT_FALSE(unlimited.limited());

  util::StepBudget zero(0);
  EXPECT_TRUE(zero.Charge(42));
  EXPECT_FALSE(zero.exhausted());
}

TEST(StepBudgetTest, ExhaustionIsPermanent) {
  util::StepBudget b(10);
  EXPECT_TRUE(b.Charge(10));
  EXPECT_FALSE(b.exhausted());
  EXPECT_FALSE(b.Charge(1));
  EXPECT_TRUE(b.exhausted());
  // Permanently failed: even a free charge is refused.
  EXPECT_FALSE(b.Charge(0));
  EXPECT_EQ(b.remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Budgets → the abandoned bucket
// ---------------------------------------------------------------------------

/// A CQ with enough structure that the width kernels must do real work.
const char kStructuredQuery[] =
    "SELECT * WHERE { ?a <p:1> ?b . ?b <p:2> ?c . ?c <p:3> ?d . "
    "?d <p:4> ?a . ?a <p:5> ?c . ?b <p:6> ?d }";

TEST(AnalysisBudgetTest, UnlimitedMatchesAddQuery) {
  sparql::Parser parser;
  auto q = parser.Parse(kStructuredQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  corpus::CorpusAnalyzer plain, budgeted;
  plain.AddQuery(q.value(), "all");
  EXPECT_TRUE(
      budgeted.AddQueryBudgeted(q.value(), "all", corpus::AnalysisLimits{})
          .ok());
  EXPECT_EQ(pipeline::StatisticsDigest(plain),
            pipeline::StatisticsDigest(budgeted));
}

TEST(AnalysisBudgetTest, ExhaustedBudgetLeavesAggregatesUntouched) {
  sparql::Parser parser;
  auto q = parser.Parse(kStructuredQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  corpus::AnalysisLimits tiny;
  tiny.ghw_steps = 1;
  tiny.treewidth_steps = 1;
  tiny.girth_steps = 1;

  corpus::CorpusAnalyzer analyzer;
  util::Status st = analyzer.AddQueryBudgeted(q.value(), "all", tiny);
  ASSERT_EQ(st.code(), util::StatusCode::kTimeout) << st.ToString();
  // Compute-then-commit: the abandoned query contributed to NOTHING.
  corpus::CorpusAnalyzer fresh;
  EXPECT_EQ(pipeline::StatisticsDigest(analyzer),
            pipeline::StatisticsDigest(fresh));
  EXPECT_EQ(analyzer.keywords().total, 0u);
}

TEST(AnalysisBudgetTest, VerdictIsDeterministicPerQuery) {
  sparql::Parser parser;
  auto q = parser.Parse(kStructuredQuery);
  ASSERT_TRUE(q.ok());
  corpus::AnalysisLimits tiny;
  tiny.girth_steps = 2;
  corpus::CorpusAnalyzer a;
  util::Status first = a.AddQueryBudgeted(q.value(), "all", tiny);
  for (int i = 0; i < 5; ++i) {
    corpus::CorpusAnalyzer b;
    EXPECT_EQ(b.AddQueryBudgeted(q.value(), "all", tiny).code(), first.code());
  }
}

TEST(AnalysisBudgetTest, PipelineRoutesExhaustionToAbandoned) {
  const char kTrivialQuery[] = "ASK { ?s ?p ?o }";
  corpus::AnalysisLimits limits;
  limits.girth_steps = 1;
  limits.treewidth_steps = 1;

  // Establish each query's verdict under the limits directly; the
  // pipeline must reproduce exactly these verdicts per occurrence.
  sparql::Parser parser;
  auto structured = parser.Parse(kStructuredQuery);
  auto trivial = parser.Parse(kTrivialQuery);
  ASSERT_TRUE(structured.ok() && trivial.ok());
  corpus::CorpusAnalyzer probe_s, probe_t;
  const bool structured_abandons =
      probe_s.AddQueryBudgeted(structured.value(), "all", limits).code() ==
      util::StatusCode::kTimeout;
  const bool trivial_abandons =
      probe_t.AddQueryBudgeted(trivial.value(), "all", limits).code() ==
      util::StatusCode::kTimeout;
  // The structured query must actually hit the tiny budget, or this
  // test exercises nothing.
  ASSERT_TRUE(structured_abandons);

  std::vector<std::string> log;
  for (int i = 0; i < 8; ++i) {
    log.push_back(std::string("query=") + kStructuredQuery);  // duplicates
  }
  log.push_back(std::string("query=") + kTrivialQuery);
  log.push_back("query=not sparql at all");
  log.push_back("noise line");

  pipeline::PipelineOptions options;
  options.threads = 2;
  options.shards = 2;
  options.analysis_limits = limits;
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::PipelineResult r = pipe.Run(log);

  EXPECT_TRUE(r.stats.Conserved());
  EXPECT_EQ(r.stats.total, 10u);  // the noise line is not a query entry
  // All 8 structured duplicates abandon — the first occurrence by
  // verdict, the duplicates by the seen-abandoned route.
  const uint64_t expected_abandoned = 8u + (trivial_abandons ? 1u : 0u);
  EXPECT_EQ(r.stats.abandoned, expected_abandoned);
  EXPECT_EQ(r.stats.valid, 9u - expected_abandoned);
  EXPECT_EQ(r.stats.unique, 9u - expected_abandoned);
  EXPECT_EQ(r.stats.malformed, 1u);
  EXPECT_EQ(r.stats.quarantined, 0u);
  // The abandoned queries contributed to no aggregate.
  EXPECT_EQ(r.analysis.keywords().total, 9u - expected_abandoned);
}

// ---------------------------------------------------------------------------
// Worker quarantine
// ---------------------------------------------------------------------------

TEST(QuarantineTest, PoisonLinesAreQuarantinedDeterministically) {
  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  const std::string poison = "query=ASK { <s:13> ?p ?o }";

  pipeline::PipelineOptions options;
  options.threads = 3;
  options.shards = 2;
  options.chunk_size = 7;
  options.parse_fault_hook = [poison](std::string_view line) {
    if (line == poison) throw std::runtime_error("poisoned");
  };
  pipeline::ParallelLogPipeline pipe(options);

  pipeline::PipelineResult first = pipe.Run(log);
  EXPECT_TRUE(first.stats.Conserved());
  EXPECT_EQ(first.stats.quarantined, 1u);
  EXPECT_EQ(first.quarantine.count, 1u);
  ASSERT_EQ(first.quarantine.samples.size(), 1u);
  EXPECT_EQ(first.quarantine.samples[0].line, poison);
  EXPECT_EQ(first.quarantine.samples[0].reason, "poisoned");
  EXPECT_EQ(first.stats.valid, 39u);
  EXPECT_EQ(first.stats.total, 40u);

  // Same outcome under a different pipeline shape.
  pipeline::PipelineOptions alt = options;
  alt.threads = 1;
  alt.shards = 4;
  pipeline::ParallelLogPipeline pipe2(alt);
  pipeline::PipelineResult second = pipe2.Run(log);
  EXPECT_EQ(second.stats.quarantined, 1u);
  EXPECT_EQ(pipeline::StatisticsDigest(first.analysis),
            pipeline::StatisticsDigest(second.analysis));
}

TEST(QuarantineTest, OneShotFaultRecoversLosslessly) {
  std::vector<std::string> log;
  for (int i = 0; i < 30; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  // The hook throws exactly once; the recovery pass re-parses the chunk
  // cleanly, so nothing is quarantined and nothing is lost.
  auto fired = std::make_shared<std::atomic<bool>>(false);
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 10;
  options.parse_fault_hook = [fired](std::string_view) {
    if (!fired->exchange(true)) throw std::runtime_error("one-shot");
  };
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::PipelineResult r = pipe.Run(log);
  EXPECT_TRUE(r.stats.Conserved());
  EXPECT_EQ(r.stats.quarantined, 0u);
  EXPECT_EQ(r.stats.valid, 30u);
  EXPECT_EQ(r.quarantine.count, 0u);
}

TEST(QuarantineTest, ContainmentOffPropagates) {
  std::vector<std::string> log = {"query=ASK { ?s ?p ?o }"};
  pipeline::PipelineOptions options;
  options.threads = 1;
  options.fault_containment = false;
  options.parse_fault_hook = [](std::string_view) {
    throw std::runtime_error("uncontained");
  };
  pipeline::ParallelLogPipeline pipe(options);
  // With containment off the exception tears down the worker; the
  // pre-containment behaviour is process death via std::terminate, so
  // this is a death test.
  EXPECT_DEATH({ pipe.Run(log); }, "");
}

// ---------------------------------------------------------------------------
// Seeded fault plans (the fuzz phase 7 harness, concentrated)
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, MixedPlansPreserveConservation) {
  std::vector<std::string> log;
  for (int i = 0; i < 120; ++i) {
    switch (i % 4) {
      case 0:
        log.push_back("query=SELECT * WHERE { ?s <p:" + std::to_string(i) +
                      "> ?o }");
        break;
      case 1:
        log.push_back("query=ASK { ?s ?p ?o }");  // duplicates
        break;
      case 2:
        log.push_back("query=%%%broken%%%");  // malformed
        break;
      default:
        log.push_back("GET /favicon.ico");  // noise
        break;
    }
  }
  util::Rng rng(20260808);
  int with_faults = 0;
  for (int round = 0; round < 40; ++round) {
    testing::FaultPlan plan = testing::RandomFaultPlan(rng);
    if (plan.any()) ++with_faults;
    testing::EquivalenceConfig config = testing::RandomEquivalenceConfig(rng);
    auto v = testing::CheckFaultContainment(log, plan, config);
    EXPECT_FALSE(v.has_value())
        << v->invariant << ": " << v->detail << " (" << plan.Describe() << ")";
  }
  // The sampler must actually exercise faults, not just controls.
  EXPECT_GT(with_faults, 20);
}

TEST(FaultInjectionTest, PersistentSourceFaultKeepsPartialAccounting) {
  std::vector<std::string> log;
  for (int i = 0; i < 100; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  testing::FaultPlan plan;
  plan.persistent_at_chunk = 3;
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 10;
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::VectorChunkSource inner(log);
  testing::FaultInjectingChunkSource source(inner, plan);
  pipeline::PipelineResult r = pipe.Run(source);
  EXPECT_FALSE(r.source_status.ok());
  EXPECT_EQ(r.lines, 20u);  // two full chunks before the failure
  EXPECT_EQ(r.stats.valid, 20u);
  EXPECT_TRUE(r.stats.Conserved());
}

TEST(FaultInjectionTest, TransientBurstWithinBoundIsLossless) {
  std::vector<std::string> log;
  for (int i = 0; i < 50; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  testing::FaultPlan plan;
  plan.transient_at_chunk = 2;
  plan.transient_burst = 3;  // == the reader's retry bound
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 10;
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::VectorChunkSource inner(log);
  testing::FaultInjectingChunkSource source(inner, plan);
  pipeline::PipelineResult r = pipe.Run(source);
  EXPECT_TRUE(r.source_status.ok()) << r.source_status.ToString();
  EXPECT_EQ(r.lines, 50u);
  EXPECT_EQ(r.stats.valid, 50u);
}

// ---------------------------------------------------------------------------
// Crash-safe run journal
// ---------------------------------------------------------------------------

std::filesystem::path JournalPath(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("sparqlog_journal_") + tag + "_" +
          std::to_string(::getpid()) + ".bin");
}

/// A journal is now a manifest plus generation files; remove them all.
void RemoveJournal(const std::filesystem::path& path) {
  util::snapshot::SnapshotStore(path.string()).Remove();
}

/// Flips one bit in `path` at `offset` (from the start; negative =
/// from the end).
void FlipByte(const std::filesystem::path& path, long long offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<long long>(f.tellg());
  if (offset < 0) offset += size;
  ASSERT_GE(offset, 0);
  ASSERT_LT(offset, size);
  char b = 0;
  f.seekg(offset);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(offset);
  f.write(&b, 1);
}

std::vector<std::string> JournalTestLog() {
  std::vector<std::string> log;
  for (int i = 0; i < 400; ++i) {
    switch (i % 5) {
      case 0:
        log.push_back("query=SELECT ?x WHERE { ?x <p:" +
                      std::to_string(i % 17) + "> ?y }");
        break;
      case 1:
        log.push_back("query=ASK { ?s ?p ?o . ?o ?q ?s }");
        break;
      case 2:
        log.push_back("query=%%%nope");
        break;
      case 3:
        log.push_back("noise " + std::to_string(i));
        break;
      default:
        log.push_back("query=SELECT * WHERE { ?a <p:x> ?b . ?b <p:y> ?c }");
        break;
    }
  }
  return log;
}

TEST(JournalTest, KillThenResumeIsBitIdentical) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.shards = 3;
  options.chunk_size = 16;

  // Uninterrupted reference run.
  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("resume");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 4;

  // "Crash" after the first segment: stop at a checkpoint boundary.
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 1;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().complete);
    EXPECT_FALSE(r.value().resumed);
    EXPECT_EQ(r.value().segments, 1u);
  }
  // Resume with a FRESH source (a restarted process re-opens the file).
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_TRUE(r.value().complete);
    const pipeline::PipelineResult& got = r.value().result;
    EXPECT_EQ(got.lines, expect.lines);
    EXPECT_EQ(got.stats.total, expect.stats.total);
    EXPECT_EQ(got.stats.valid, expect.stats.valid);
    EXPECT_EQ(got.stats.unique, expect.stats.unique);
    EXPECT_EQ(got.stats.malformed, expect.stats.malformed);
    EXPECT_EQ(pipeline::StatisticsDigest(got.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  RemoveJournal(path);
}

TEST(JournalTest, UninterruptedJournalRunMatchesPlainRun) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 32;
  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("full");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 3;
  pipeline::VectorChunkSource source(log);
  auto r = pipeline::RunWithJournal(options, source, jopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().complete);
  EXPECT_FALSE(r.value().resumed);
  EXPECT_EQ(r.value().result.lines, expect.lines);
  EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
            pipeline::StatisticsDigest(expect.analysis));
  RemoveJournal(path);
}

TEST(JournalTest, IncompatibleCheckpointIsRejected) {
  const std::vector<std::string> log = JournalTestLog();
  const std::filesystem::path path = JournalPath("fingerprint");
  RemoveJournal(path);

  pipeline::PipelineOptions options;
  options.threads = 1;
  options.shards = 2;
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  jopts.max_segments = 1;
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // A different shard count re-routes state: resuming must refuse.
  pipeline::PipelineOptions changed = options;
  changed.shards = 5;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions resume = jopts;
    resume.max_segments = 0;
    auto r = pipeline::RunWithJournal(changed, source, resume);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  }
  RemoveJournal(path);
}

TEST(JournalTest, CorruptSoleGenerationIsRejected) {
  // With only one generation retained there is nothing to fall back to:
  // any corruption of it must be a hard error with a reason, never a
  // silent restart from zero.
  const std::vector<std::string> log = JournalTestLog();
  const std::filesystem::path path = JournalPath("corrupt");
  RemoveJournal(path);
  pipeline::PipelineOptions options;
  options.threads = 1;
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  jopts.max_segments = 1;
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().generation, 1u);
  }
  util::snapshot::SnapshotStore store(path.string());
  FlipByte(store.GenerationPath(1), -4);
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions resume = jopts;
    resume.max_segments = 0;
    auto r = pipeline::RunWithJournal(options, source, resume);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("corrupt"), std::string::npos)
        << r.status().ToString();
  }
  RemoveJournal(path);
}

TEST(JournalTest, CorruptCurrentGenerationFallsBackToPrevious) {
  // Damage the newest generation after two checkpoints: the resume must
  // restore the previous one, re-read the lost segment, and still end
  // bit-identical to an uninterrupted run.
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.shards = 2;
  options.chunk_size = 16;

  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("fallback");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 3;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 2;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_FALSE(r.value().complete);
    EXPECT_EQ(r.value().generation, 2u);
  }
  util::snapshot::SnapshotStore store(path.string());
  FlipByte(store.GenerationPath(2), 100);
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_TRUE(r.value().complete);
    EXPECT_TRUE(r.value().recovered_previous_generation);
    EXPECT_NE(r.value().recovery_reason.find("generation 2"),
              std::string::npos)
        << r.value().recovery_reason;
    EXPECT_EQ(r.value().result.lines, expect.lines);
    EXPECT_TRUE(r.value().result.stats.Conserved());
    EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  RemoveJournal(path);
}

TEST(JournalTest, CorruptBothGenerationsIsRejected) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 1;
  options.chunk_size = 16;
  const std::filesystem::path path = JournalPath("bothbad");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 3;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 2;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  util::snapshot::SnapshotStore store(path.string());
  FlipByte(store.GenerationPath(1), 50);
  FlipByte(store.GenerationPath(2), 50);
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
    // The reason string covers both failed generations.
    EXPECT_NE(r.status().message().find("generation 2"), std::string::npos);
    EXPECT_NE(r.status().message().find("generation 1"), std::string::npos);
  }
  RemoveJournal(path);
}

TEST(JournalTest, CorruptManifestIsRejected) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 1;
  const std::filesystem::path path = JournalPath("manifest");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  jopts.max_segments = 1;
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  FlipByte(path, 20);
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  }
  RemoveJournal(path);
}

TEST(JournalTest, FsyncFailureSurfacesErrorAndPreservesCheckpoint) {
  // An fsync error while publishing the second checkpoint must fail the
  // run with a reason (not limp on with an unsynced file), and the
  // first checkpoint must remain fully usable for the retry.
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 16;

  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("fsyncfail");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 3;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 1;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    util::snapshot::IoFaultHooks hooks;
    hooks.fail_fsync = [](const std::string&) { return true; };
    util::snapshot::SetIoFaultHooksForTest(&hooks);
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    util::snapshot::SetIoFaultHooksForTest(nullptr);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInternal);
    EXPECT_NE(r.status().message().find("fsync"), std::string::npos)
        << r.status().ToString();
  }
  // Retry with the fault cleared: resumes from generation 1 and
  // finishes, matching the uninterrupted run exactly.
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_TRUE(r.value().complete);
    EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  RemoveJournal(path);
}

TEST(JournalTest, MmapLoadedCheckpointMatchesStreamed) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 16;

  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("mmapload");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 4;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 1;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions resume = jopts;
    resume.mmap_load = true;
    auto r = pipeline::RunWithJournal(options, source, resume);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_TRUE(r.value().complete);
    EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  RemoveJournal(path);
}

// ---------------------------------------------------------------------------
// Quarantine sample cap (PipelineOptions::quarantine_max_samples)
// ---------------------------------------------------------------------------

TEST(QuarantineCapTest, CapIsHonoredAndDeterministic) {
  // 30 poisoned lines; a cap of 3 must keep the count exact (30) while
  // retaining exactly the first 3 samples in (chunk, line_index) order,
  // for ANY thread/shard configuration.
  std::vector<std::string> log;
  for (int i = 0; i < 30; ++i) {
    log.push_back("query=POISON " + std::to_string(i));
    log.push_back("query=ASK { ?s <p:" + std::to_string(i) + "> ?o }");
  }

  auto run = [&log](int threads, size_t shards) {
    pipeline::PipelineOptions options;
    options.threads = threads;
    options.shards = shards;
    options.chunk_size = 8;
    options.quarantine_max_samples = 3;
    options.parse_fault_hook = [](std::string_view line) {
      if (line.find("POISON") != std::string_view::npos) {
        throw std::runtime_error("poisoned");
      }
    };
    pipeline::ParallelLogPipeline pipe(options);
    return pipe.Run(log);
  };

  pipeline::PipelineResult first = run(1, 1);
  EXPECT_EQ(first.quarantine.count, 30u);
  ASSERT_EQ(first.quarantine.samples.size(), 3u);
  EXPECT_TRUE(first.stats.Conserved());
  for (auto [threads, shards] : {std::pair<int, size_t>{2, 3},
                                 std::pair<int, size_t>{4, 1},
                                 std::pair<int, size_t>{3, 2}}) {
    pipeline::PipelineResult r = run(threads, shards);
    EXPECT_EQ(r.quarantine.count, first.quarantine.count);
    ASSERT_EQ(r.quarantine.samples.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(r.quarantine.samples[i].chunk,
                first.quarantine.samples[i].chunk);
      EXPECT_EQ(r.quarantine.samples[i].line_index,
                first.quarantine.samples[i].line_index);
      EXPECT_EQ(r.quarantine.samples[i].line, first.quarantine.samples[i].line);
    }
  }
}

TEST(QuarantineCapTest, CapSurvivesJournalSegmentMerge) {
  // The per-segment reports merge across checkpoints; the merged report
  // must honor the same cap with the same deterministic prefix.
  std::vector<std::string> log;
  for (int i = 0; i < 20; ++i) {
    log.push_back("query=POISON " + std::to_string(i));
    log.push_back("query=ASK { ?s <p:" + std::to_string(i) + "> ?o }");
  }
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 4;
  options.quarantine_max_samples = 5;
  options.parse_fault_hook = [](std::string_view line) {
    if (line.find("POISON") != std::string_view::npos) {
      throw std::runtime_error("poisoned");
    }
  };

  const std::filesystem::path path = JournalPath("quarcap");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;  // several segments, several merges
  pipeline::VectorChunkSource source(log);
  auto r = pipeline::RunWithJournal(options, source, jopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().complete);
  EXPECT_EQ(r.value().result.quarantine.count, 20u);
  ASSERT_EQ(r.value().result.quarantine.samples.size(), 5u);
  for (size_t i = 1; i < 5; ++i) {
    const auto& a = r.value().result.quarantine.samples[i - 1];
    const auto& b = r.value().result.quarantine.samples[i];
    EXPECT_TRUE(a.chunk < b.chunk ||
                (a.chunk == b.chunk && a.line_index < b.line_index));
  }
  RemoveJournal(path);
}

TEST(JournalTest, NonResumableSourceIsRejectedUpFront) {
  pipeline::PipelineOptions options;
  options.threads = 1;
  pipeline::JournalOptions jopts;
  jopts.path = JournalPath("reject").string();

  class NoResumeSource : public pipeline::ChunkSource {
   public:
    bool NextChunk(size_t, pipeline::LineChunk&) override { return false; }
  } source;
  auto r = pipeline::RunWithJournal(options, source, jopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnsupported);

  pipeline::JournalOptions no_path;
  std::vector<std::string> empty;
  pipeline::VectorChunkSource vec(empty);
  auto r2 = pipeline::RunWithJournal(options, vec, no_path);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(JournalTest, BudgetedAbandonmentSurvivesResume) {
  // Abandoned-dedup state (seen_abandoned_) is part of the checkpoint:
  // a duplicate of an abandoned query arriving AFTER the resume must
  // still land in the abandoned bucket.
  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    log.push_back(std::string("query=") + kStructuredQuery);
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 8;
  options.analysis_limits.girth_steps = 1;
  options.analysis_limits.treewidth_steps = 1;

  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);
  ASSERT_EQ(expect.stats.abandoned, 40u);

  const std::filesystem::path path = JournalPath("abandoned");
  RemoveJournal(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 1;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_EQ(r.value().result.stats.abandoned, expect.stats.abandoned);
    EXPECT_TRUE(r.value().result.stats.Conserved());
    EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  RemoveJournal(path);
}

}  // namespace
}  // namespace sparqlog
