// Tests for the fault-containment subsystem: util::Status, the analysis
// step budgets and the abandoned bucket, worker quarantine, the seeded
// fault-injection harness, and the crash-safe run journal.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "corpus/ingest.h"
#include "corpus/report.h"
#include "pipeline/journal.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "testing/fault_injection.h"
#include "util/budget.h"
#include "util/rng.h"
#include "util/status.h"

namespace sparqlog {
namespace {

// ---------------------------------------------------------------------------
// util::Status
// ---------------------------------------------------------------------------

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    util::Status status;
    util::StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {util::Status::OK(), util::StatusCode::kOk, "OK"},
      {util::Status::InvalidArgument("bad"), util::StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {util::Status::NotFound("bad"), util::StatusCode::kNotFound, "NotFound"},
      {util::Status::OutOfRange("bad"), util::StatusCode::kOutOfRange,
       "OutOfRange"},
      {util::Status::Unsupported("bad"), util::StatusCode::kUnsupported,
       "Unsupported"},
      {util::Status::Timeout("bad"), util::StatusCode::kTimeout, "Timeout"},
      {util::Status::Internal("bad"), util::StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ok(), c.code == util::StatusCode::kOk);
    if (c.status.ok()) {
      EXPECT_EQ(c.status.ToString(), "OK");
      EXPECT_TRUE(c.status.message().empty());
    } else {
      EXPECT_EQ(c.status.message(), "bad");
      EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": bad");
    }
  }
}

TEST(StatusTest, MessagePropagatesThroughCopyAndMove) {
  util::Status s = util::Status::Timeout("ghw step budget exhausted");
  util::Status copy = s;
  EXPECT_EQ(copy.code(), util::StatusCode::kTimeout);
  EXPECT_EQ(copy.message(), "ghw step budget exhausted");
  EXPECT_EQ(s.message(), copy.message());
  util::Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "ghw step budget exhausted");
}

TEST(StatusTest, OkPathCarriesNoMessageStorage) {
  // The OK fast path is default construction with an empty message, so
  // copies never touch the heap (std::string SSO on empty).
  util::Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());
  util::Status copy = ok;
  EXPECT_TRUE(copy.ok());
  EXPECT_TRUE(copy.message().empty());
}

// ---------------------------------------------------------------------------
// util::StepBudget
// ---------------------------------------------------------------------------

TEST(StepBudgetTest, UnlimitedNeverExhausts) {
  util::StepBudget unlimited;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(unlimited.Charge(1u << 20));
  EXPECT_FALSE(unlimited.exhausted());
  EXPECT_FALSE(unlimited.limited());

  util::StepBudget zero(0);
  EXPECT_TRUE(zero.Charge(42));
  EXPECT_FALSE(zero.exhausted());
}

TEST(StepBudgetTest, ExhaustionIsPermanent) {
  util::StepBudget b(10);
  EXPECT_TRUE(b.Charge(10));
  EXPECT_FALSE(b.exhausted());
  EXPECT_FALSE(b.Charge(1));
  EXPECT_TRUE(b.exhausted());
  // Permanently failed: even a free charge is refused.
  EXPECT_FALSE(b.Charge(0));
  EXPECT_EQ(b.remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Budgets → the abandoned bucket
// ---------------------------------------------------------------------------

/// A CQ with enough structure that the width kernels must do real work.
const char kStructuredQuery[] =
    "SELECT * WHERE { ?a <p:1> ?b . ?b <p:2> ?c . ?c <p:3> ?d . "
    "?d <p:4> ?a . ?a <p:5> ?c . ?b <p:6> ?d }";

TEST(AnalysisBudgetTest, UnlimitedMatchesAddQuery) {
  sparql::Parser parser;
  auto q = parser.Parse(kStructuredQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  corpus::CorpusAnalyzer plain, budgeted;
  plain.AddQuery(q.value(), "all");
  EXPECT_TRUE(
      budgeted.AddQueryBudgeted(q.value(), "all", corpus::AnalysisLimits{})
          .ok());
  EXPECT_EQ(pipeline::StatisticsDigest(plain),
            pipeline::StatisticsDigest(budgeted));
}

TEST(AnalysisBudgetTest, ExhaustedBudgetLeavesAggregatesUntouched) {
  sparql::Parser parser;
  auto q = parser.Parse(kStructuredQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  corpus::AnalysisLimits tiny;
  tiny.ghw_steps = 1;
  tiny.treewidth_steps = 1;
  tiny.girth_steps = 1;

  corpus::CorpusAnalyzer analyzer;
  util::Status st = analyzer.AddQueryBudgeted(q.value(), "all", tiny);
  ASSERT_EQ(st.code(), util::StatusCode::kTimeout) << st.ToString();
  // Compute-then-commit: the abandoned query contributed to NOTHING.
  corpus::CorpusAnalyzer fresh;
  EXPECT_EQ(pipeline::StatisticsDigest(analyzer),
            pipeline::StatisticsDigest(fresh));
  EXPECT_EQ(analyzer.keywords().total, 0u);
}

TEST(AnalysisBudgetTest, VerdictIsDeterministicPerQuery) {
  sparql::Parser parser;
  auto q = parser.Parse(kStructuredQuery);
  ASSERT_TRUE(q.ok());
  corpus::AnalysisLimits tiny;
  tiny.girth_steps = 2;
  corpus::CorpusAnalyzer a;
  util::Status first = a.AddQueryBudgeted(q.value(), "all", tiny);
  for (int i = 0; i < 5; ++i) {
    corpus::CorpusAnalyzer b;
    EXPECT_EQ(b.AddQueryBudgeted(q.value(), "all", tiny).code(), first.code());
  }
}

TEST(AnalysisBudgetTest, PipelineRoutesExhaustionToAbandoned) {
  const char kTrivialQuery[] = "ASK { ?s ?p ?o }";
  corpus::AnalysisLimits limits;
  limits.girth_steps = 1;
  limits.treewidth_steps = 1;

  // Establish each query's verdict under the limits directly; the
  // pipeline must reproduce exactly these verdicts per occurrence.
  sparql::Parser parser;
  auto structured = parser.Parse(kStructuredQuery);
  auto trivial = parser.Parse(kTrivialQuery);
  ASSERT_TRUE(structured.ok() && trivial.ok());
  corpus::CorpusAnalyzer probe_s, probe_t;
  const bool structured_abandons =
      probe_s.AddQueryBudgeted(structured.value(), "all", limits).code() ==
      util::StatusCode::kTimeout;
  const bool trivial_abandons =
      probe_t.AddQueryBudgeted(trivial.value(), "all", limits).code() ==
      util::StatusCode::kTimeout;
  // The structured query must actually hit the tiny budget, or this
  // test exercises nothing.
  ASSERT_TRUE(structured_abandons);

  std::vector<std::string> log;
  for (int i = 0; i < 8; ++i) {
    log.push_back(std::string("query=") + kStructuredQuery);  // duplicates
  }
  log.push_back(std::string("query=") + kTrivialQuery);
  log.push_back("query=not sparql at all");
  log.push_back("noise line");

  pipeline::PipelineOptions options;
  options.threads = 2;
  options.shards = 2;
  options.analysis_limits = limits;
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::PipelineResult r = pipe.Run(log);

  EXPECT_TRUE(r.stats.Conserved());
  EXPECT_EQ(r.stats.total, 10u);  // the noise line is not a query entry
  // All 8 structured duplicates abandon — the first occurrence by
  // verdict, the duplicates by the seen-abandoned route.
  const uint64_t expected_abandoned = 8u + (trivial_abandons ? 1u : 0u);
  EXPECT_EQ(r.stats.abandoned, expected_abandoned);
  EXPECT_EQ(r.stats.valid, 9u - expected_abandoned);
  EXPECT_EQ(r.stats.unique, 9u - expected_abandoned);
  EXPECT_EQ(r.stats.malformed, 1u);
  EXPECT_EQ(r.stats.quarantined, 0u);
  // The abandoned queries contributed to no aggregate.
  EXPECT_EQ(r.analysis.keywords().total, 9u - expected_abandoned);
}

// ---------------------------------------------------------------------------
// Worker quarantine
// ---------------------------------------------------------------------------

TEST(QuarantineTest, PoisonLinesAreQuarantinedDeterministically) {
  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  const std::string poison = "query=ASK { <s:13> ?p ?o }";

  pipeline::PipelineOptions options;
  options.threads = 3;
  options.shards = 2;
  options.chunk_size = 7;
  options.parse_fault_hook = [poison](std::string_view line) {
    if (line == poison) throw std::runtime_error("poisoned");
  };
  pipeline::ParallelLogPipeline pipe(options);

  pipeline::PipelineResult first = pipe.Run(log);
  EXPECT_TRUE(first.stats.Conserved());
  EXPECT_EQ(first.stats.quarantined, 1u);
  EXPECT_EQ(first.quarantine.count, 1u);
  ASSERT_EQ(first.quarantine.samples.size(), 1u);
  EXPECT_EQ(first.quarantine.samples[0].line, poison);
  EXPECT_EQ(first.quarantine.samples[0].reason, "poisoned");
  EXPECT_EQ(first.stats.valid, 39u);
  EXPECT_EQ(first.stats.total, 40u);

  // Same outcome under a different pipeline shape.
  pipeline::PipelineOptions alt = options;
  alt.threads = 1;
  alt.shards = 4;
  pipeline::ParallelLogPipeline pipe2(alt);
  pipeline::PipelineResult second = pipe2.Run(log);
  EXPECT_EQ(second.stats.quarantined, 1u);
  EXPECT_EQ(pipeline::StatisticsDigest(first.analysis),
            pipeline::StatisticsDigest(second.analysis));
}

TEST(QuarantineTest, OneShotFaultRecoversLosslessly) {
  std::vector<std::string> log;
  for (int i = 0; i < 30; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  // The hook throws exactly once; the recovery pass re-parses the chunk
  // cleanly, so nothing is quarantined and nothing is lost.
  auto fired = std::make_shared<std::atomic<bool>>(false);
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 10;
  options.parse_fault_hook = [fired](std::string_view) {
    if (!fired->exchange(true)) throw std::runtime_error("one-shot");
  };
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::PipelineResult r = pipe.Run(log);
  EXPECT_TRUE(r.stats.Conserved());
  EXPECT_EQ(r.stats.quarantined, 0u);
  EXPECT_EQ(r.stats.valid, 30u);
  EXPECT_EQ(r.quarantine.count, 0u);
}

TEST(QuarantineTest, ContainmentOffPropagates) {
  std::vector<std::string> log = {"query=ASK { ?s ?p ?o }"};
  pipeline::PipelineOptions options;
  options.threads = 1;
  options.fault_containment = false;
  options.parse_fault_hook = [](std::string_view) {
    throw std::runtime_error("uncontained");
  };
  pipeline::ParallelLogPipeline pipe(options);
  // With containment off the exception tears down the worker; the
  // pre-containment behaviour is process death via std::terminate, so
  // this is a death test.
  EXPECT_DEATH({ pipe.Run(log); }, "");
}

// ---------------------------------------------------------------------------
// Seeded fault plans (the fuzz phase 7 harness, concentrated)
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, MixedPlansPreserveConservation) {
  std::vector<std::string> log;
  for (int i = 0; i < 120; ++i) {
    switch (i % 4) {
      case 0:
        log.push_back("query=SELECT * WHERE { ?s <p:" + std::to_string(i) +
                      "> ?o }");
        break;
      case 1:
        log.push_back("query=ASK { ?s ?p ?o }");  // duplicates
        break;
      case 2:
        log.push_back("query=%%%broken%%%");  // malformed
        break;
      default:
        log.push_back("GET /favicon.ico");  // noise
        break;
    }
  }
  util::Rng rng(20260808);
  int with_faults = 0;
  for (int round = 0; round < 40; ++round) {
    testing::FaultPlan plan = testing::RandomFaultPlan(rng);
    if (plan.any()) ++with_faults;
    testing::EquivalenceConfig config = testing::RandomEquivalenceConfig(rng);
    auto v = testing::CheckFaultContainment(log, plan, config);
    EXPECT_FALSE(v.has_value())
        << v->invariant << ": " << v->detail << " (" << plan.Describe() << ")";
  }
  // The sampler must actually exercise faults, not just controls.
  EXPECT_GT(with_faults, 20);
}

TEST(FaultInjectionTest, PersistentSourceFaultKeepsPartialAccounting) {
  std::vector<std::string> log;
  for (int i = 0; i < 100; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  testing::FaultPlan plan;
  plan.persistent_at_chunk = 3;
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 10;
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::VectorChunkSource inner(log);
  testing::FaultInjectingChunkSource source(inner, plan);
  pipeline::PipelineResult r = pipe.Run(source);
  EXPECT_FALSE(r.source_status.ok());
  EXPECT_EQ(r.lines, 20u);  // two full chunks before the failure
  EXPECT_EQ(r.stats.valid, 20u);
  EXPECT_TRUE(r.stats.Conserved());
}

TEST(FaultInjectionTest, TransientBurstWithinBoundIsLossless) {
  std::vector<std::string> log;
  for (int i = 0; i < 50; ++i) {
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  testing::FaultPlan plan;
  plan.transient_at_chunk = 2;
  plan.transient_burst = 3;  // == the reader's retry bound
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 10;
  pipeline::ParallelLogPipeline pipe(options);
  pipeline::VectorChunkSource inner(log);
  testing::FaultInjectingChunkSource source(inner, plan);
  pipeline::PipelineResult r = pipe.Run(source);
  EXPECT_TRUE(r.source_status.ok()) << r.source_status.ToString();
  EXPECT_EQ(r.lines, 50u);
  EXPECT_EQ(r.stats.valid, 50u);
}

// ---------------------------------------------------------------------------
// Crash-safe run journal
// ---------------------------------------------------------------------------

std::filesystem::path JournalPath(const char* tag) {
  return std::filesystem::temp_directory_path() /
         (std::string("sparqlog_journal_") + tag + "_" +
          std::to_string(::getpid()) + ".bin");
}

std::vector<std::string> JournalTestLog() {
  std::vector<std::string> log;
  for (int i = 0; i < 400; ++i) {
    switch (i % 5) {
      case 0:
        log.push_back("query=SELECT ?x WHERE { ?x <p:" +
                      std::to_string(i % 17) + "> ?y }");
        break;
      case 1:
        log.push_back("query=ASK { ?s ?p ?o . ?o ?q ?s }");
        break;
      case 2:
        log.push_back("query=%%%nope");
        break;
      case 3:
        log.push_back("noise " + std::to_string(i));
        break;
      default:
        log.push_back("query=SELECT * WHERE { ?a <p:x> ?b . ?b <p:y> ?c }");
        break;
    }
  }
  return log;
}

TEST(JournalTest, KillThenResumeIsBitIdentical) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.shards = 3;
  options.chunk_size = 16;

  // Uninterrupted reference run.
  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("resume");
  std::filesystem::remove(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 4;

  // "Crash" after the first segment: stop at a checkpoint boundary.
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 1;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r.value().complete);
    EXPECT_FALSE(r.value().resumed);
    EXPECT_EQ(r.value().segments, 1u);
  }
  // Resume with a FRESH source (a restarted process re-opens the file).
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_TRUE(r.value().complete);
    const pipeline::PipelineResult& got = r.value().result;
    EXPECT_EQ(got.lines, expect.lines);
    EXPECT_EQ(got.stats.total, expect.stats.total);
    EXPECT_EQ(got.stats.valid, expect.stats.valid);
    EXPECT_EQ(got.stats.unique, expect.stats.unique);
    EXPECT_EQ(got.stats.malformed, expect.stats.malformed);
    EXPECT_EQ(pipeline::StatisticsDigest(got.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  std::filesystem::remove(path);
}

TEST(JournalTest, UninterruptedJournalRunMatchesPlainRun) {
  const std::vector<std::string> log = JournalTestLog();
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 32;
  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);

  const std::filesystem::path path = JournalPath("full");
  std::filesystem::remove(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 3;
  pipeline::VectorChunkSource source(log);
  auto r = pipeline::RunWithJournal(options, source, jopts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().complete);
  EXPECT_FALSE(r.value().resumed);
  EXPECT_EQ(r.value().result.lines, expect.lines);
  EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
            pipeline::StatisticsDigest(expect.analysis));
  std::filesystem::remove(path);
}

TEST(JournalTest, IncompatibleCheckpointIsRejected) {
  const std::vector<std::string> log = JournalTestLog();
  const std::filesystem::path path = JournalPath("fingerprint");
  std::filesystem::remove(path);

  pipeline::PipelineOptions options;
  options.threads = 1;
  options.shards = 2;
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  jopts.max_segments = 1;
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // A different shard count re-routes state: resuming must refuse.
  pipeline::PipelineOptions changed = options;
  changed.shards = 5;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions resume = jopts;
    resume.max_segments = 0;
    auto r = pipeline::RunWithJournal(changed, source, resume);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  }
  std::filesystem::remove(path);
}

TEST(JournalTest, CorruptCheckpointIsRejected) {
  const std::vector<std::string> log = JournalTestLog();
  const std::filesystem::path path = JournalPath("corrupt");
  std::filesystem::remove(path);
  pipeline::PipelineOptions options;
  options.threads = 1;
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  jopts.max_segments = 1;
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  // Flip one byte inside the trailing digest words — the integrity
  // check must notice the stored digest no longer matches the state.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long long>(f.tellg());
    ASSERT_GT(size, 64);
    char b = 0;
    f.seekg(size - 4);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(size - 4);
    f.write(&b, 1);
  }
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions resume = jopts;
    resume.max_segments = 0;
    auto r = pipeline::RunWithJournal(options, source, resume);
    ASSERT_FALSE(r.ok());
  }
  std::filesystem::remove(path);
}

TEST(JournalTest, NonResumableSourceIsRejectedUpFront) {
  pipeline::PipelineOptions options;
  options.threads = 1;
  pipeline::JournalOptions jopts;
  jopts.path = JournalPath("reject").string();

  class NoResumeSource : public pipeline::ChunkSource {
   public:
    bool NextChunk(size_t, pipeline::LineChunk&) override { return false; }
  } source;
  auto r = pipeline::RunWithJournal(options, source, jopts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kUnsupported);

  pipeline::JournalOptions no_path;
  std::vector<std::string> empty;
  pipeline::VectorChunkSource vec(empty);
  auto r2 = pipeline::RunWithJournal(options, vec, no_path);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(JournalTest, BudgetedAbandonmentSurvivesResume) {
  // Abandoned-dedup state (seen_abandoned_) is part of the checkpoint:
  // a duplicate of an abandoned query arriving AFTER the resume must
  // still land in the abandoned bucket.
  std::vector<std::string> log;
  for (int i = 0; i < 40; ++i) {
    log.push_back(std::string("query=") + kStructuredQuery);
    log.push_back("query=ASK { <s:" + std::to_string(i) + "> ?p ?o }");
  }
  pipeline::PipelineOptions options;
  options.threads = 2;
  options.chunk_size = 8;
  options.analysis_limits.girth_steps = 1;
  options.analysis_limits.treewidth_steps = 1;

  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);
  ASSERT_EQ(expect.stats.abandoned, 40u);

  const std::filesystem::path path = JournalPath("abandoned");
  std::filesystem::remove(path);
  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;
  {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions first = jopts;
    first.max_segments = 1;
    auto r = pipeline::RunWithJournal(options, source, first);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  {
    pipeline::VectorChunkSource source(log);
    auto r = pipeline::RunWithJournal(options, source, jopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().resumed);
    EXPECT_EQ(r.value().result.stats.abandoned, expect.stats.abandoned);
    EXPECT_TRUE(r.value().result.stats.Conserved());
    EXPECT_EQ(pipeline::StatisticsDigest(r.value().result.analysis),
              pipeline::StatisticsDigest(expect.analysis));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sparqlog
