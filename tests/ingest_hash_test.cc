// Property tests for the streaming canonical-hash path: for every query
// we can produce, the hashing sink must equal FNV-1a of the string-sink
// serialization byte for byte. These pin down exactly the cases where
// view-vs-copy lexing and streaming-vs-materialized serialization could
// diverge: escaped literals, long strings, prefixed names, paths,
// numeric signs, aggregates, and subqueries.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "util/strings.h"

namespace sparqlog {
namespace {

using corpus::HashBytes;
using sparql::CanonicalHash;
using sparql::ParseQuery;
using sparql::Serialize;

void ExpectSinksAgree(const std::string& text) {
  auto parsed = ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  const sparql::Query& q = parsed.value();
  std::string canonical = Serialize(q);
  EXPECT_EQ(CanonicalHash(q), HashBytes(canonical)) << text;

  // SerializeTo through the virtual Sink interface must emit the same
  // bytes as the devirtualized Serialize instantiation.
  sparql::StringSink str_sink;
  sparql::SerializeTo(q, str_sink);
  EXPECT_EQ(str_sink.str(), canonical) << text;

  sparql::HashingSink hash_sink;
  sparql::SerializeTo(q, hash_sink);
  EXPECT_EQ(hash_sink.hash(), HashBytes(canonical)) << text;

  sparql::CountingSink count_sink;
  sparql::SerializeTo(q, count_sink);
  EXPECT_EQ(count_sink.bytes(), canonical.size()) << text;
}

TEST(IngestHashTest, FixtureQueries) {
  const std::vector<std::string> fixtures = {
      // Plain, escaped, long, and language/datatype literals.
      "SELECT * WHERE { ?s ?p \"plain\" }",
      "SELECT * WHERE { ?x <p> \"a\\\"b\\\\c\\nd\\te\" }",
      "SELECT * WHERE { ?x <p> \"\"\"long\nstring\nliteral\"\"\" }",
      "SELECT * WHERE { ?x <p> '''it''s long''' }",
      "SELECT * WHERE { ?x <p> \"\" }",
      "SELECT * WHERE { ?x <p> \"chat\"@fr ; <q> \"1\"^^xsd:int }",
      // Prefixed names, incl. dots, percent escapes, default namespace.
      "PREFIX ex: <http://e/> SELECT * WHERE { ex:a.b ex:p%20q ?o }",
      "SELECT ?x WHERE { ?x rdf:type dbo:Person }",
      "PREFIX : <http://d/> SELECT * WHERE { :s :p :o }",
      // Numeric literals with signs and exponents.
      "SELECT * WHERE { ?x <p> -4.5 ; <q> +2 ; <r> 1e6 ; <s> .5 }",
      // Property paths.
      "SELECT * WHERE { ?a <p>/<q>* ?b }",
      "SELECT * WHERE { ?a !(<p>|^<q>) ?b }",
      "SELECT * WHERE { ?a (^<p>)+ ?b }",
      // Blank nodes, collections, IRIs.
      "SELECT * WHERE { _:b1 <p> [ <q> ?v ] . ?l <r> (1 2 3) }",
      "ASK { <http://example.org/a#b> a <http://t/> }",
      // Aggregates, HAVING, subqueries, VALUES, FILTER.
      "SELECT (GROUP_CONCAT(DISTINCT ?n; SEPARATOR=\", \") AS ?ns) "
      "WHERE { ?x <name> ?n } GROUP BY ?x HAVING (COUNT(*) > 2)",
      "SELECT ?x WHERE { ?x <p> ?y { SELECT ?y WHERE { ?y <q> ?z } "
      "LIMIT 3 } } ORDER BY DESC(?x) LIMIT 10 OFFSET 5",
      "SELECT * WHERE { VALUES (?v) { (<x>) (UNDEF) } "
      "FILTER(?v IN (<x>, <y>) && !BOUND(?u) || STRLEN(STR(?v)) >= 3) }",
      "SELECT * WHERE { ?x <p> ?y FILTER NOT EXISTS { ?x <q> ?y } }",
  };
  for (const std::string& text : fixtures) ExpectSinksAgree(text);
}

TEST(IngestHashTest, GeneratedCorpusSinksAgree) {
  auto profiles = corpus::PaperProfiles();
  for (size_t pi = 0; pi < profiles.size(); ++pi) {
    corpus::GeneratorOptions options;
    options.seed = 7000 + pi;
    corpus::SyntheticLogGenerator gen(profiles[pi], options);
    for (int i = 0; i < 50; ++i) {
      sparql::Query q = gen.GenerateQuery();
      EXPECT_EQ(CanonicalHash(q), HashBytes(Serialize(q)))
          << "profile " << profiles[pi].name << " query " << i;
    }
  }
}

TEST(IngestHashTest, ParseLogLineScratchOverloadMatches) {
  sparql::Parser parser;
  std::string scratch;
  const std::vector<std::string> lines = {
      "query=" + util::PercentEncode(
                     "SELECT * WHERE { ?s ?p \"esc\\\"aped\" }") +
          "&format=json",
      "query=SELECT ?x WHERE { ?x rdf:type dbo:City }",  // fast path: no %/+
      "query=" + util::PercentEncode("ASK { <a> <b> \"x y\"@en }"),
      "query=NOT%20SPARQL",
      "noise line",
  };
  for (const std::string& line : lines) {
    corpus::ParsedLine with_scratch =
        corpus::ParseLogLine(parser, std::string_view(line), scratch);
    corpus::ParsedLine simple = corpus::ParseLogLine(parser, line);
    EXPECT_EQ(with_scratch.is_query, simple.is_query) << line;
    EXPECT_EQ(with_scratch.valid, simple.valid) << line;
    EXPECT_EQ(with_scratch.canonical_hash, simple.canonical_hash) << line;
    EXPECT_EQ(with_scratch.line_hash, simple.line_hash) << line;
    if (with_scratch.valid) {
      EXPECT_EQ(with_scratch.canonical_hash,
                HashBytes(Serialize(*with_scratch.query)))
          << line;
    }
  }
}

// One ParseScratch carried across well over a thousand sequential
// ParseLogLine calls, with resets only every few hundred lines: arena
// reuse, token-buffer reuse, and pname-interner epochs must never leak
// state between lines. Every result is diffed against the fresh-heap
// overload, which allocates per node and cannot alias anything.
TEST(IngestHashTest, ParseScratchSurvivesThousandsOfSequentialLines) {
  sparql::Parser parser;
  corpus::ParseScratch scratch;

  corpus::GeneratorOptions options;
  options.seed = 20260808;
  auto profiles = corpus::PaperProfiles();
  corpus::SyntheticLogGenerator gen(profiles[0], options);
  std::vector<std::string> pool;
  for (int i = 0; i < 37; ++i) {
    pool.push_back("query=" + util::PercentEncode(Serialize(gen.GenerateQuery())));
  }
  pool.push_back("query=NOT%20SPARQL");
  pool.push_back("noise line");
  pool.push_back("query=");

  constexpr int kLines = 1500;
  for (int i = 0; i < kLines; ++i) {
    if (i % 400 == 0) scratch.Reset();
    const std::string& line = pool[static_cast<size_t>(i) % pool.size()];
    corpus::ParsedLine arena =
        corpus::ParseLogLine(parser, std::string_view(line), scratch);
    corpus::ParsedLine heap = corpus::ParseLogLine(parser, line);
    ASSERT_EQ(arena.is_query, heap.is_query) << "line " << i << ": " << line;
    ASSERT_EQ(arena.valid, heap.valid) << "line " << i << ": " << line;
    ASSERT_EQ(arena.canonical_hash, heap.canonical_hash)
        << "line " << i << ": " << line;
    ASSERT_EQ(arena.line_hash, heap.line_hash) << "line " << i << ": " << line;
    ASSERT_EQ(arena.query.has_value(), heap.query.has_value())
        << "line " << i << ": " << line;
    if (arena.query.has_value()) {
      ASSERT_EQ(Serialize(*arena.query), Serialize(*heap.query))
          << "line " << i << ": " << line;
    }
  }
}

}  // namespace
}  // namespace sparqlog
