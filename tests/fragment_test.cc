#include <gtest/gtest.h>

#include "fragments/fragment.h"
#include "fragments/pattern_tree.h"
#include "sparql/parser.h"

namespace sparqlog::fragments {
namespace {

using sparql::ParseQuery;
using sparql::Query;

FragmentClass Classify(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << text;
  return ClassifyFragment(r.value());
}

// ---------------------------------------------------------------------------
// CQ / CPF / CQF (Definitions 3.1, 4.1, 5.2)
// ---------------------------------------------------------------------------

TEST(FragmentTest, SingleTripleIsCq) {
  FragmentClass fc = Classify("SELECT * WHERE { ?x <p> ?y }");
  EXPECT_TRUE(fc.cq);
  EXPECT_TRUE(fc.cpf);
  EXPECT_TRUE(fc.cqf);
  EXPECT_TRUE(fc.aof);
  EXPECT_TRUE(fc.well_designed);
  EXPECT_TRUE(fc.cqof);
  EXPECT_EQ(fc.num_triples, 1);
}

TEST(FragmentTest, MultiTripleConjunctionIsCq) {
  FragmentClass fc =
      Classify("SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z . ?z <r> ?x }");
  EXPECT_TRUE(fc.cq);
  EXPECT_EQ(fc.num_triples, 3);
}

TEST(FragmentTest, FilterMakesCpfNotCq) {
  FragmentClass fc =
      Classify("SELECT * WHERE { ?x <p> ?y FILTER(?y > 3) }");
  EXPECT_FALSE(fc.cq);
  EXPECT_TRUE(fc.cpf);
  EXPECT_TRUE(fc.cqf);  // single-variable filter is simple
}

TEST(FragmentTest, VarEqualityFilterIsSimple) {
  FragmentClass fc =
      Classify("SELECT * WHERE { ?x <p> ?y . ?a <q> ?b FILTER(?y = ?b) }");
  EXPECT_TRUE(fc.cqf);
}

TEST(FragmentTest, TwoVarComparisonIsNotSimple) {
  FragmentClass fc =
      Classify("SELECT * WHERE { ?x <p> ?y . ?a <q> ?b FILTER(?y < ?b) }");
  EXPECT_TRUE(fc.cpf);
  EXPECT_FALSE(fc.cqf);
  EXPECT_FALSE(fc.cqof);
}

TEST(FragmentTest, PropertyPathDisqualifies) {
  FragmentClass fc = Classify("SELECT * WHERE { ?x <p>/<q> ?y }");
  EXPECT_FALSE(fc.cq);
  EXPECT_FALSE(fc.aof);
}

TEST(FragmentTest, UnionDisqualifiesAof) {
  FragmentClass fc =
      Classify("SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }");
  EXPECT_FALSE(fc.aof);
  EXPECT_FALSE(fc.cq);
}

TEST(FragmentTest, GraphDisqualifiesAof) {
  EXPECT_FALSE(Classify("SELECT * WHERE { GRAPH <g> { ?x <p> ?y } }").aof);
}

TEST(FragmentTest, SubqueryDisqualifiesAof) {
  EXPECT_FALSE(
      Classify("SELECT * WHERE { { SELECT ?x WHERE { ?x <p> ?y } } }").aof);
}

TEST(FragmentTest, ExistsFilterDisqualifiesAof) {
  EXPECT_FALSE(Classify("SELECT * WHERE { ?x <p> ?y FILTER EXISTS "
                        "{ ?x <q> ?z } }")
                   .aof);
}

TEST(FragmentTest, ConstructIsNotInFragments) {
  FragmentClass fc = Classify("CONSTRUCT WHERE { ?x <p> ?y }");
  EXPECT_FALSE(fc.select_or_ask);
  EXPECT_FALSE(fc.cq);
}

TEST(FragmentTest, OptionalMakesAofNotCpf) {
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } }");
  EXPECT_TRUE(fc.aof);
  EXPECT_FALSE(fc.cpf);
  EXPECT_FALSE(fc.cq);
  EXPECT_TRUE(fc.well_designed);
  EXPECT_TRUE(fc.cqof);
}

TEST(FragmentTest, VarPredicateAllowedInCq) {
  FragmentClass fc = Classify("SELECT * WHERE { ?x ?p ?y . ?y ?q ?z }");
  EXPECT_TRUE(fc.cq);
  EXPECT_TRUE(fc.var_predicate);
}

// ---------------------------------------------------------------------------
// Well-designedness (Definition 5.3)
// ---------------------------------------------------------------------------

TEST(WellDesignedTest, PaperExampleP1IsWellDesigned) {
  // P1 = ((?A name ?N) OPT (?A email ?E)) OPT (?A webPage ?W).
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } "
      "OPTIONAL { ?A <webPage> ?W } }");
  EXPECT_TRUE(fc.well_designed);
  EXPECT_EQ(fc.interface_width, 1);
  EXPECT_TRUE(fc.cqof);
}

TEST(WellDesignedTest, PaperExampleP2IsWellDesigned) {
  // P2 = (?A name ?N) OPT ((?A email ?E) OPT (?A webPage ?W)).
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E "
      "OPTIONAL { ?A <webPage> ?W } } }");
  EXPECT_TRUE(fc.well_designed);
  EXPECT_EQ(fc.interface_width, 1);
}

TEST(WellDesignedTest, ViolationAcrossSiblingOptionals) {
  // ?E appears in two sibling OPTIONALs but not in the mandatory part:
  // violates Definition 5.3.
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } "
      "OPTIONAL { ?E <host> ?H } }");
  EXPECT_TRUE(fc.aof);
  EXPECT_FALSE(fc.well_designed);
  EXPECT_FALSE(fc.cqof);
}

TEST(WellDesignedTest, ViolationOptVarUsedOutside) {
  // ?z is introduced in the OPTIONAL and also used after it.
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } ?z <r> ?w }");
  EXPECT_FALSE(fc.well_designed);
}

TEST(WellDesignedTest, InterfaceWidthTwo) {
  // Root shares ?A and ?W with its child: interface width 2 (the paper's
  // modified-T1 example).
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?A <name> ?W . ?A <x> ?Y OPTIONAL "
      "{ ?A <webPage> ?W } }");
  EXPECT_TRUE(fc.well_designed);
  EXPECT_EQ(fc.interface_width, 2);
  EXPECT_FALSE(fc.cqof);
}

TEST(WellDesignedTest, NestedOptionalChainWellDesigned) {
  FragmentClass fc = Classify(
      "SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?c OPTIONAL "
      "{ ?c <r> ?d OPTIONAL { ?d <s> ?e } } } }");
  EXPECT_TRUE(fc.well_designed);
  EXPECT_EQ(fc.interface_width, 1);
  EXPECT_TRUE(fc.cqof);
}

TEST(WellDesignedTest, CqIsTriviallyWellDesigned) {
  EXPECT_TRUE(Classify("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }")
                  .well_designed);
}

// ---------------------------------------------------------------------------
// Pattern trees
// ---------------------------------------------------------------------------

TEST(PatternTreeTest, OptNormalFormHoistsJoin) {
  // {t1 OPTIONAL {t2} t3}: the rewrite puts t1, t3 in the root and t2 as
  // a child.
  auto r = ParseQuery(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } ?x <r> ?w }");
  ASSERT_TRUE(r.ok());
  PatternTreeResult tree = BuildPatternTree(r.value().where);
  ASSERT_TRUE(tree.ok);
  EXPECT_EQ(tree.root.triples.size(), 2u);
  ASSERT_EQ(tree.root.children.size(), 1u);
  EXPECT_EQ(tree.root.children[0].triples.size(), 1u);
}

TEST(PatternTreeTest, SiblingOptionalsBecomeSiblings) {
  auto r = ParseQuery(
      "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } "
      "OPTIONAL { ?A <web> ?W } }");
  ASSERT_TRUE(r.ok());
  PatternTreeResult tree = BuildPatternTree(r.value().where);
  ASSERT_TRUE(tree.ok);
  EXPECT_EQ(tree.root.children.size(), 2u);
  EXPECT_TRUE(tree.connected_variables);
}

TEST(PatternTreeTest, ConnectednessViolationDetected) {
  // ?E occurs in two branches but not the root: disconnected.
  auto r = ParseQuery(
      "SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } "
      "OPTIONAL { ?E <host> ?H } }");
  ASSERT_TRUE(r.ok());
  PatternTreeResult tree = BuildPatternTree(r.value().where);
  ASSERT_TRUE(tree.ok);
  EXPECT_FALSE(tree.connected_variables);
}

TEST(PatternTreeTest, NonAofReturnsNotOk) {
  auto r = ParseQuery(
      "SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(BuildPatternTree(r.value().where).ok);
}

TEST(PatternTreeTest, FiltersAttachToNodes) {
  auto r = ParseQuery(
      "SELECT * WHERE { ?x <p> ?y FILTER(?y > 1) OPTIONAL "
      "{ ?x <q> ?z FILTER(?z > 2) } }");
  ASSERT_TRUE(r.ok());
  PatternTreeResult tree = BuildPatternTree(r.value().where);
  ASSERT_TRUE(tree.ok);
  EXPECT_EQ(tree.root.filters.size(), 1u);
  ASSERT_EQ(tree.root.children.size(), 1u);
  EXPECT_EQ(tree.root.children[0].filters.size(), 1u);
}

TEST(SimpleFilterTest, Definitions) {
  auto expr = [](std::string_view text) {
    auto r = ParseQuery(std::string("SELECT * WHERE { ?x <p> ?y . "
                                    "?a <q> ?b FILTER(") +
                        std::string(text) + ") }");
    EXPECT_TRUE(r.ok()) << text;
    for (const auto& c : r.value().where.children) {
      if (c.kind == sparql::PatternKind::kFilter) return c.expr;
    }
    return sparql::Expr{};
  };
  EXPECT_TRUE(IsSimpleFilter(expr("?x > 1")));
  EXPECT_TRUE(IsSimpleFilter(expr("LANG(?y) = \"en\"")));
  EXPECT_TRUE(IsSimpleFilter(expr("?x = ?y")));
  EXPECT_FALSE(IsSimpleFilter(expr("?x < ?y")));
  EXPECT_FALSE(IsSimpleFilter(expr("?x = ?y || ?a = ?b")));
  EXPECT_TRUE(IsSimpleFilter(expr("REGEX(?x, \"^A\")")));
}

}  // namespace
}  // namespace sparqlog::fragments
