#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace sparqlog::rdf {
namespace {

TEST(TermTest, Constructors) {
  EXPECT_TRUE(Term::Iri("http://a").is_iri());
  EXPECT_TRUE(Term::Literal("x").is_literal());
  EXPECT_TRUE(Term::Blank("b").is_blank());
  EXPECT_TRUE(Term::Var("v").is_variable());
}

TEST(TermTest, UnknownVsConstant) {
  EXPECT_TRUE(Term::Var("v").is_unknown());
  EXPECT_TRUE(Term::Blank("b").is_unknown());
  EXPECT_FALSE(Term::Iri("i").is_unknown());
  EXPECT_TRUE(Term::Iri("i").is_constant());
  EXPECT_TRUE(Term::Literal("l").is_constant());
}

TEST(TermTest, ToStringForms) {
  EXPECT_EQ(Term::Iri("http://a").ToString(), "<http://a>");
  EXPECT_EQ(Term::Var("x").ToString(), "?x");
  EXPECT_EQ(Term::Blank("b1").ToString(), "_:b1");
  EXPECT_EQ(Term::Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", "", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::Literal("1", "http://int").ToString(),
            "\"1\"^^<http://int>");
}

TEST(TermTest, LiteralEscaping) {
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToString(),
            "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, EqualityAndOrdering) {
  EXPECT_EQ(Term::Var("x"), Term::Var("x"));
  EXPECT_NE(Term::Var("x"), Term::Iri("x"));
  EXPECT_NE(Term::Literal("x", "", "en"), Term::Literal("x", "", "de"));
  EXPECT_TRUE(Term::Iri("a") < Term::Literal("a") ||
              Term::Literal("a") < Term::Iri("a"));
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  TermId a = d.Intern("hello");
  TermId b = d.Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(d.size(), 1u);
}

TEST(DictionaryTest, LookupMissingReturnsZero) {
  Dictionary d;
  EXPECT_EQ(d.Lookup("absent"), 0u);
  d.Intern("present");
  EXPECT_NE(d.Lookup("present"), 0u);
}

TEST(DictionaryTest, ResolveRoundTrip) {
  Dictionary d;
  TermId a = d.Intern("alpha");
  TermId b = d.Intern("beta");
  EXPECT_EQ(d.Resolve(a), "alpha");
  EXPECT_EQ(d.Resolve(b), "beta");
}

TEST(DictionaryTest, SurvivesRehash) {
  // Force many insertions so the backing vector reallocates; all ids
  // and lookups must stay valid.
  Dictionary d;
  std::vector<TermId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(d.Intern("term-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(d.Resolve(ids[static_cast<size_t>(i)]),
              "term-" + std::to_string(i));
    EXPECT_EQ(d.Lookup("term-" + std::to_string(i)),
              ids[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(d.size(), 5000u);
}

TEST(DictionaryTest, EmptyStringIsInternable) {
  Dictionary d;
  TermId e = d.Intern("");
  EXPECT_NE(e, 0u);
  EXPECT_EQ(d.Resolve(e), "");
}

}  // namespace
}  // namespace sparqlog::rdf
