// Property and boundary tests for util/serde.h — the fixed-width
// little-endian primitives under the journal state blobs and the
// snapshot header/manifest words (util/snapshot_io.h).

#include "util/serde.h"

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace sparqlog {
namespace {

namespace serde = util::serde;

std::vector<uint64_t> EdgeValues() {
  return {0,
          1,
          0x7F,
          0x80,
          0xFF,
          0x100,
          0xFFFF,
          0x10000,
          0xFFFFFFFFULL,
          0x100000000ULL,
          0x0123456789ABCDEFULL,
          std::numeric_limits<uint64_t>::max() - 1,
          std::numeric_limits<uint64_t>::max()};
}

TEST(SerdeTest, U64RoundTripEdgesAndRandom) {
  std::vector<uint64_t> values = EdgeValues();
  util::Rng rng(2026);
  for (int i = 0; i < 200; ++i) values.push_back(rng.Next());

  std::ostringstream out;
  for (uint64_t v : values) serde::PutU64(out, v);
  std::istringstream in(out.str());
  for (uint64_t v : values) {
    uint64_t got = ~v;
    ASSERT_TRUE(serde::GetU64(in, got));
    EXPECT_EQ(got, v);
  }
  // The stream is exactly consumed: one more read fails.
  uint64_t extra;
  EXPECT_FALSE(serde::GetU64(in, extra));
}

TEST(SerdeTest, U64IsLittleEndianOnTheWire) {
  std::ostringstream out;
  serde::PutU64(out, 0x0102030405060708ULL);
  const std::string bytes = out.str();
  ASSERT_EQ(bytes.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[static_cast<size_t>(i)]),
              8 - i)
        << "byte " << i;
  }
}

TEST(SerdeTest, I64RoundTripIncludingNegatives) {
  const std::vector<int64_t> values = {0,
                                       1,
                                       -1,
                                       42,
                                       -42,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  std::ostringstream out;
  for (int64_t v : values) serde::PutI64(out, v);
  std::istringstream in(out.str());
  for (int64_t v : values) {
    int64_t got = 0;
    ASSERT_TRUE(serde::GetI64(in, got));
    EXPECT_EQ(got, v);
  }
}

TEST(SerdeTest, StringRoundTrip) {
  const std::vector<std::string> values = {
      "", "a", std::string(1, '\0'), "hello world",
      std::string(4096, 'x'), std::string("\x00\xFF\x7F mixed \n", 10)};
  std::ostringstream out;
  for (const std::string& v : values) serde::PutString(out, v);
  std::istringstream in(out.str());
  for (const std::string& v : values) {
    std::string got = "sentinel";
    ASSERT_TRUE(serde::GetString(in, got));
    EXPECT_EQ(got, v);
  }
}

TEST(SerdeTest, TruncatedU64Fails) {
  // Every strict prefix of an 8-byte word must fail, not zero-fill.
  std::ostringstream out;
  serde::PutU64(out, 0xDEADBEEFCAFEF00DULL);
  const std::string full = out.str();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    uint64_t v;
    EXPECT_FALSE(serde::GetU64(in, v)) << "prefix of " << cut << " bytes";
  }
}

TEST(SerdeTest, TruncatedStringFails) {
  std::ostringstream out;
  serde::PutString(out, "twelve bytes");
  const std::string full = out.str();
  ASSERT_EQ(full.size(), 8u + 12u);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    std::string s;
    EXPECT_FALSE(serde::GetString(in, s)) << "prefix of " << cut << " bytes";
  }
}

TEST(SerdeTest, StringGuardBoundary) {
  // Exactly at a custom max_len loads; one over is rejected.
  const std::string at_limit(16, 'y');
  std::ostringstream out;
  serde::PutString(out, at_limit);
  {
    std::istringstream in(out.str());
    std::string s;
    ASSERT_TRUE(serde::GetString(in, s, /*max_len=*/16));
    EXPECT_EQ(s, at_limit);
  }
  {
    std::istringstream in(out.str());
    std::string s;
    EXPECT_FALSE(serde::GetString(in, s, /*max_len=*/15));
  }
}

TEST(SerdeTest, StringDefaultGuardRejectsHugeLengthWithoutAllocating) {
  // A corrupt journal claiming a (1 GB + 1)-byte string must be refused
  // on the length prefix alone — the stream holds no such payload, and
  // no allocation of that size may happen.
  std::ostringstream out;
  serde::PutU64(out, (1ULL << 30) + 1);
  out << "short";
  std::istringstream in(out.str());
  std::string s = "untouched";
  EXPECT_FALSE(serde::GetString(in, s));
  EXPECT_EQ(s, "untouched");

  // Exactly at the default guard the length is admissible; the read
  // then fails honestly on the missing payload bytes.
  std::ostringstream out2;
  serde::PutU64(out2, 1ULL << 30);
  std::istringstream in2(out2.str());
  std::string s2;
  EXPECT_FALSE(serde::GetString(in2, s2));
}

TEST(SerdeTest, BufferOverloadsMatchStreamWireFormat) {
  // The string/string_view twins write and read the identical bytes as
  // the iostream pair, in both directions.
  std::vector<uint64_t> values = EdgeValues();
  std::string buf;
  for (uint64_t v : values) serde::PutU64(buf, v);

  std::ostringstream out;
  for (uint64_t v : values) serde::PutU64(out, v);
  EXPECT_EQ(buf, out.str());

  std::string_view view = buf;
  for (uint64_t v : values) {
    uint64_t got = ~v;
    ASSERT_TRUE(serde::GetU64(view, got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(view.empty());

  // Cross-read: stream-written bytes through the view reader.
  std::istringstream in(buf);
  std::string_view view2 = buf;
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t a = 1, b = 2;
    ASSERT_TRUE(serde::GetU64(in, a));
    ASSERT_TRUE(serde::GetU64(view2, b));
    EXPECT_EQ(a, b);
  }
}

TEST(SerdeTest, BufferGetU64ConsumesExactlyEightBytes) {
  std::string buf;
  serde::PutU64(buf, 7);
  buf.push_back('\x7f');  // trailing garbage the reader must not touch
  std::string_view view = buf;
  uint64_t v = 0;
  ASSERT_TRUE(serde::GetU64(view, v));
  EXPECT_EQ(v, 7u);
  EXPECT_EQ(view.size(), 1u);
  // Seven remaining bytes are not a word.
  std::string_view short_view(buf.data(), 7);
  EXPECT_FALSE(serde::GetU64(short_view, v));
}

}  // namespace
}  // namespace sparqlog
