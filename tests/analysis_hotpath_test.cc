// Differential tests for the allocation-lean structural-analysis path:
// the new flat-graph ClassifyShape / Treewidth / girth (and the bitset
// GHW) must agree with the retained pre-change implementations in
// testing/reference_analysis on random graphs — including self-loops,
// disconnected forests, K4 (treewidth 3), and the 64/65-node boundary
// where Graph switches from bitset masks to sorted-vector adjacency.

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "corpus/analysis_scratch.h"
#include "graph/canonical.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/shapes.h"
#include "sparql/parser.h"
#include "testing/invariants.h"
#include "testing/reference_analysis.h"
#include "util/rng.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog {
namespace {

namespace reference = testing::reference;
using graph::Graph;
using graph::ShapeClass;

void ExpectSameShape(const ShapeClass& ref, const ShapeClass& got,
                     const std::string& what) {
  EXPECT_EQ(ref.single_edge, got.single_edge) << what;
  EXPECT_EQ(ref.chain, got.chain) << what;
  EXPECT_EQ(ref.chain_set, got.chain_set) << what;
  EXPECT_EQ(ref.star, got.star) << what;
  EXPECT_EQ(ref.tree, got.tree) << what;
  EXPECT_EQ(ref.forest, got.forest) << what;
  EXPECT_EQ(ref.cycle, got.cycle) << what;
  EXPECT_EQ(ref.flower, got.flower) << what;
  EXPECT_EQ(ref.flower_set, got.flower_set) << what;
  EXPECT_EQ(ref.girth, got.girth) << what;
}

/// Runs both classifiers and both treewidth pipelines on `g`, sharing
/// one long-lived scratch so cross-call state leaks would surface.
void CheckGraph(const Graph& g, graph::ShapeScratch& shape_scratch,
                width::TreewidthScratch& tw_scratch, const std::string& what) {
  reference::ReferenceGraph ref = reference::FromGraph(g);
  ExpectSameShape(reference::ClassifyShape(ref),
                  graph::ClassifyShape(g, shape_scratch), what);
  width::TreewidthResult ref_tw = reference::Treewidth(ref);
  width::TreewidthResult new_tw = width::Treewidth(g, tw_scratch);
  if (ref_tw.exact && new_tw.exact) {
    EXPECT_EQ(ref_tw.width, new_tw.width) << what;
  }
  EXPECT_EQ(reference::TreewidthAtMost2(ref), width::TreewidthAtMost2(g))
      << what;
  EXPECT_EQ(ref.Girth(), g.Girth()) << what;
}

Graph RandomGraph(util::Rng& rng, int n, double edge_prob,
                  double loop_prob) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    if (rng.NextDouble() < loop_prob) g.AddEdge(u, u);
    for (int v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_prob) g.AddEdge(u, v);
    }
  }
  return g;
}

TEST(AnalysisEquivalenceTest, RandomSmallGraphs) {
  util::Rng rng(20260726);
  graph::ShapeScratch shape_scratch;
  width::TreewidthScratch tw_scratch;
  const double densities[] = {0.05, 0.15, 0.3, 0.6};
  for (int iter = 0; iter < 400; ++iter) {
    int n = static_cast<int>(rng.Below(13));
    double p = densities[rng.Below(4)];
    double loops = rng.Chance(0.3) ? 0.15 : 0.0;
    Graph g = RandomGraph(rng, n, p, loops);
    CheckGraph(g, shape_scratch, tw_scratch,
               "iter " + std::to_string(iter) + " n=" + std::to_string(n));
  }
}

TEST(AnalysisEquivalenceTest, RandomSparseGraphsAtBitsetBoundary) {
  util::Rng rng(64656466);
  graph::ShapeScratch shape_scratch;
  width::TreewidthScratch tw_scratch;
  for (int iter = 0; iter < 40; ++iter) {
    // 60..70 nodes crosses the 64-node mask/vector switch; subcritical
    // density keeps components small so the exact solvers stay fast on
    // both paths.
    int n = 60 + static_cast<int>(rng.Below(11));
    Graph g = RandomGraph(rng, n, 1.2 / n, rng.Chance(0.25) ? 0.05 : 0.0);
    CheckGraph(g, shape_scratch, tw_scratch,
               "boundary iter " + std::to_string(iter) +
                   " n=" + std::to_string(n));
  }
}

TEST(AnalysisEquivalenceTest, NamedShapesAcrossTheBoundary) {
  graph::ShapeScratch shape_scratch;
  width::TreewidthScratch tw_scratch;
  for (int n : {63, 64, 65, 66}) {
    Graph path(n);
    for (int i = 0; i + 1 < n; ++i) path.AddEdge(i, i + 1);
    CheckGraph(path, shape_scratch, tw_scratch, "path " + std::to_string(n));

    Graph cycle(n);
    for (int i = 0; i < n; ++i) cycle.AddEdge(i, (i + 1) % n);
    CheckGraph(cycle, shape_scratch, tw_scratch, "cycle " + std::to_string(n));

    Graph star(n);
    for (int i = 1; i < n; ++i) star.AddEdge(0, i);
    CheckGraph(star, shape_scratch, tw_scratch, "star " + std::to_string(n));
  }
}

TEST(AnalysisEquivalenceTest, GrowingAcrossTheBoundaryPreservesEdges) {
  // Build edge set while the graph spills from masks to vectors.
  Graph g(0);
  for (int i = 0; i < 70; ++i) {
    EXPECT_EQ(g.AddNode(), i);
    if (i > 0) g.AddEdge(i - 1, i);
    if (i >= 10) g.AddEdge(i - 10, i);
  }
  EXPECT_FALSE(g.small());
  EXPECT_EQ(g.num_nodes(), 70);
  for (int i = 1; i < 70; ++i) EXPECT_TRUE(g.HasEdge(i - 1, i));
  for (int i = 10; i < 70; ++i) EXPECT_TRUE(g.HasEdge(i - 10, i));
  // Neighbor iteration stays ascending after the spill.
  int prev = -1;
  for (int w : g.Neighbors(35)) {
    EXPECT_GT(w, prev);
    prev = w;
  }
  graph::ShapeScratch shape_scratch;
  width::TreewidthScratch tw_scratch;
  CheckGraph(g, shape_scratch, tw_scratch, "spilled ladder");
}

TEST(AnalysisEquivalenceTest, DisconnectedForestsAndLoops) {
  graph::ShapeScratch shape_scratch;
  width::TreewidthScratch tw_scratch;
  // Disconnected forest: three trees of different shapes.
  Graph forest(12);
  forest.AddEdge(0, 1);
  forest.AddEdge(1, 2);
  forest.AddEdge(3, 4);
  forest.AddEdge(3, 5);
  forest.AddEdge(3, 6);
  forest.AddEdge(7, 8);
  CheckGraph(forest, shape_scratch, tw_scratch, "forest");

  // Self-loops: at a tree node, at a cycle node, and at two nodes.
  Graph looped = forest;
  looped.AddEdge(1, 1);
  CheckGraph(looped, shape_scratch, tw_scratch, "forest+loop");
  looped.AddEdge(7, 7);
  CheckGraph(looped, shape_scratch, tw_scratch, "forest+2loops");

  Graph cycle_loop(5);
  for (int i = 0; i < 4; ++i) cycle_loop.AddEdge(i, (i + 1) % 4);
  cycle_loop.AddEdge(0, 0);
  CheckGraph(cycle_loop, shape_scratch, tw_scratch, "cycle+loop");
}

TEST(AnalysisEquivalenceTest, K4HasTreewidthThreeAndIsNoFlower) {
  Graph k4(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) k4.AddEdge(i, j);
  }
  graph::ShapeScratch shape_scratch;
  width::TreewidthScratch tw_scratch;
  CheckGraph(k4, shape_scratch, tw_scratch, "K4");
  EXPECT_EQ(width::Treewidth(k4).width, 3);
  EXPECT_FALSE(graph::ClassifyShape(k4).flower_set);
}

TEST(AnalysisEquivalenceTest, ScratchReuseIsStateless) {
  // The same scratch must classify a pathological sequence (big, small,
  // cyclic, empty, looped) exactly like fresh scratch each time.
  util::Rng rng(977);
  graph::ShapeScratch reused;
  width::TreewidthScratch reused_tw;
  for (int iter = 0; iter < 60; ++iter) {
    int n = iter % 2 == 0 ? static_cast<int>(rng.Below(70))
                          : static_cast<int>(rng.Below(8));
    Graph g = RandomGraph(rng, n, n > 20 ? 1.3 / n : 0.3,
                          rng.Chance(0.2) ? 0.1 : 0.0);
    graph::ShapeScratch fresh;
    width::TreewidthScratch fresh_tw;
    ExpectSameShape(graph::ClassifyShape(g, fresh),
                    graph::ClassifyShape(g, reused),
                    "reuse iter " + std::to_string(iter));
    EXPECT_EQ(width::Treewidth(g, fresh_tw).width,
              width::Treewidth(g, reused_tw).width)
        << iter;
  }
}

// ---------------------------------------------------------------------------
// Canonical builders and GHW, old vs new, on parsed queries.
// ---------------------------------------------------------------------------

TEST(AnalysisEquivalenceTest, CanonicalBuildersMatchOnHandwrittenQueries) {
  const char* queries[] = {
      "ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}",
      "ASK WHERE { ?x <p> <c> . ?y <q> <c> }",
      "ASK WHERE { ?x <p> ?y . ?z <q> ?w FILTER(?y = ?z) }",
      "ASK WHERE { ?a <p> ?b . ?b <q> ?c . ?c <r> ?d FILTER(?a = ?d) }",
      "ASK WHERE { ?x <p> ?x }",
      "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}",
      "ASK { ?s <p> \"lit\"^^<http://dt> . ?s <q> \"lit\"@en . ?s <r> \"lit\" }",
      "SELECT * WHERE { ?a ?p ?b . ?b ?p ?c . ?c ?p ?a }",
      "ASK { <s> <p> <o> }",
  };
  corpus::AnalysisScratch scratch;
  sparql::Parser parser;
  for (const char* text : queries) {
    auto r = parser.Parse(text);
    ASSERT_TRUE(r.ok()) << text;
    auto v = testing::CheckAnalysisEquivalence(r.value(), scratch);
    EXPECT_FALSE(v.has_value())
        << text << ": " << (v ? v->detail : std::string());
  }
}

TEST(AnalysisEquivalenceTest, RandomHypergraphsAgreeOnGhw) {
  util::Rng rng(4242);
  for (int iter = 0; iter < 120; ++iter) {
    int n = 2 + static_cast<int>(rng.Below(7));
    int m = 1 + static_cast<int>(rng.Below(8));
    graph::Hypergraph hg;
    reference::ReferenceHypergraph ref;
    for (int e = 0; e < m; ++e) {
      std::set<int> edge;
      int arity = 1 + static_cast<int>(rng.Below(3));
      for (int k = 0; k < arity; ++k) {
        edge.insert(static_cast<int>(rng.Below(static_cast<size_t>(n))));
      }
      ref.AddEdge(edge);
      hg.AddEdge(std::vector<int>(edge.begin(), edge.end()));
    }
    EXPECT_EQ(ref.IsAlphaAcyclic(), hg.IsAlphaAcyclic()) << iter;
    width::GhwResult ref_ghw = reference::GeneralizedHypertreeWidth(ref);
    width::GhwResult new_ghw = width::GeneralizedHypertreeWidth(hg);
    EXPECT_EQ(ref_ghw.width, new_ghw.width) << iter;
    EXPECT_EQ(ref_ghw.decomposition_nodes, new_ghw.decomposition_nodes)
        << iter;
    EXPECT_EQ(ref_ghw.exact, new_ghw.exact) << iter;
  }
}

// ---------------------------------------------------------------------------
// Kernelization linearity: the restart-free worklist must suppress a
// long degree-2 chain (here closed into a cycle so the series-parallel
// rule, not leaf pruning, does the work) in linear time. The pre-change
// implementation re-scanned every vertex per pass; at this size a
// quadratic pass structure would take minutes, the worklist milliseconds.
// ---------------------------------------------------------------------------

TEST(KernelizationWorklistTest, LongCycleReducesInLinearTime) {
  const int n = 300000;
  Graph cycle(n);
  for (int i = 0; i < n; ++i) cycle.AddEdge(i, (i + 1) % n);
  width::TreewidthScratch scratch;
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(width::TreewidthAtMost2(cycle, scratch));
  width::TreewidthResult tw = width::Treewidth(cycle, scratch);
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_EQ(tw.width, 2);
  EXPECT_TRUE(tw.exact);
  // Generous even for sanitizer builds; a quadratic reduction cannot
  // come close at 300k nodes.
  EXPECT_LT(seconds, 20.0);
}

TEST(KernelizationWorklistTest, LollipopKernelizesToTheClique) {
  // K5 with a 100k-node tail: the tail must be eaten by the worklist
  // and the kernel solved exactly (treewidth 4).
  const int tail = 100000;
  Graph g(5 + tail);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) g.AddEdge(i, j);
  }
  g.AddEdge(4, 5);
  for (int i = 5; i + 1 < 5 + tail; ++i) g.AddEdge(i, i + 1);
  width::TreewidthScratch scratch;
  auto start = std::chrono::steady_clock::now();
  width::TreewidthResult tw = width::Treewidth(g, scratch);
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_EQ(tw.width, 4);
  EXPECT_TRUE(tw.exact);
  EXPECT_LT(seconds, 20.0);
}

}  // namespace
}  // namespace sparqlog
