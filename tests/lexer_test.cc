#include <gtest/gtest.h>

#include "sparql/lexer.h"

namespace sparqlog::sparql {
namespace {

// Note: token values are views into the (static-storage) literals the
// tests pass, or into the returned stream's own side buffer — both
// outlive the checks below.
TokenStream MustLex(std::string_view s) {
  auto r = Lexer::Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : TokenStream{};
}

TEST(LexerTest, EmptyInput) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kEof));
}

TEST(LexerTest, IriRef) {
  auto tokens = MustLex("<http://example.org/a#b>");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kIriRef));
  EXPECT_EQ(tokens[0].value, "http://example.org/a#b");
}

TEST(LexerTest, IriVsComparison) {
  auto tokens = MustLex("?x < 3");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kVar));
  EXPECT_TRUE(tokens[1].Is(TokenType::kLt));
  EXPECT_TRUE(tokens[2].Is(TokenType::kInteger));
}

TEST(LexerTest, LessOrEqual) {
  auto tokens = MustLex("?x <= ?y");
  EXPECT_TRUE(tokens[1].Is(TokenType::kLe));
}

TEST(LexerTest, Variables) {
  auto tokens = MustLex("?abc $d1 ?x_y");
  EXPECT_EQ(tokens[0].value, "abc");
  EXPECT_EQ(tokens[1].value, "d1");
  EXPECT_EQ(tokens[2].value, "x_y");
}

TEST(LexerTest, BareQuestionMarkIsPathModifier) {
  auto tokens = MustLex("a? ");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kIdent));
  EXPECT_TRUE(tokens[1].Is(TokenType::kQuestion));
}

TEST(LexerTest, PrefixedNames) {
  auto tokens = MustLex("rdf:type dbo:birthPlace :local");
  EXPECT_TRUE(tokens[0].Is(TokenType::kPName));
  EXPECT_EQ(tokens[0].value, "rdf:type");
  EXPECT_EQ(tokens[1].value, "dbo:birthPlace");
  EXPECT_EQ(tokens[2].value, ":local");
}

TEST(LexerTest, PNameWithDotsKeepsTrailingDotAsToken) {
  auto tokens = MustLex("ex:a.b. ");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].value, "ex:a.b");
  EXPECT_TRUE(tokens[1].Is(TokenType::kDot));
}

TEST(LexerTest, BlankNodeLabels) {
  auto tokens = MustLex("_:b1 _:x");
  EXPECT_TRUE(tokens[0].Is(TokenType::kBlankLabel));
  EXPECT_EQ(tokens[0].value, "b1");
  EXPECT_EQ(tokens[1].value, "x");
}

TEST(LexerTest, Strings) {
  auto tokens = MustLex(R"("hello" 'world' "with \"esc\"" """long
string""")");
  EXPECT_EQ(tokens[0].value, "hello");
  EXPECT_EQ(tokens[1].value, "world");
  EXPECT_EQ(tokens[2].value, "with \"esc\"");
  EXPECT_EQ(tokens[3].value, "long\nstring");
}

TEST(LexerTest, UnterminatedStringFails) {
  auto r = Lexer::Tokenize("\"abc");
  EXPECT_FALSE(r.ok());
}

TEST(LexerTest, NewlineInShortStringFails) {
  auto r = Lexer::Tokenize("\"ab\nc\"");
  EXPECT_FALSE(r.ok());
}

TEST(LexerTest, Numbers) {
  auto tokens = MustLex("42 4.5 .5 1e6 2.5E-3");
  EXPECT_TRUE(tokens[0].Is(TokenType::kInteger));
  EXPECT_TRUE(tokens[1].Is(TokenType::kDecimal));
  EXPECT_TRUE(tokens[2].Is(TokenType::kDecimal));
  EXPECT_EQ(tokens[2].value, ".5");
  EXPECT_TRUE(tokens[3].Is(TokenType::kDouble));
  EXPECT_TRUE(tokens[4].Is(TokenType::kDouble));
}

TEST(LexerTest, DotAfterIntegerIsTripleTerminator) {
  auto tokens = MustLex("42 . ?x");
  EXPECT_TRUE(tokens[0].Is(TokenType::kInteger));
  EXPECT_TRUE(tokens[1].Is(TokenType::kDot));
}

TEST(LexerTest, LangTagsAndDatatypes) {
  auto tokens = MustLex("\"chat\"@fr \"1\"^^xsd:int");
  EXPECT_TRUE(tokens[1].Is(TokenType::kLangTag));
  EXPECT_EQ(tokens[1].value, "fr");
  EXPECT_TRUE(tokens[3].Is(TokenType::kCaretCaret));
  EXPECT_TRUE(tokens[4].Is(TokenType::kPName));
}

TEST(LexerTest, Comments) {
  auto tokens = MustLex("?x # a comment <not-an-iri>\n?y");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].value, "x");
  EXPECT_EQ(tokens[1].value, "y");
}

TEST(LexerTest, Operators) {
  auto tokens = MustLex("&& || ! != = ^ ^^ | / * + -");
  TokenType expected[] = {
      TokenType::kAndAnd, TokenType::kOrOr, TokenType::kBang,
      TokenType::kNe,     TokenType::kEq,   TokenType::kCaret,
      TokenType::kCaretCaret, TokenType::kPipe, TokenType::kSlash,
      TokenType::kStar,   TokenType::kPlus, TokenType::kMinus};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, LoneAmpersandFails) {
  EXPECT_FALSE(Lexer::Tokenize("a & b").ok());
}

TEST(LexerTest, LineNumbersTracked) {
  auto tokens = MustLex("?a\n?b\n\n?c");
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[2].line, 4u);
}

TEST(LexerTest, PunctuationSuite) {
  auto tokens = MustLex("{ } ( ) [ ] ; ,");
  TokenType expected[] = {TokenType::kLBrace,   TokenType::kRBrace,
                          TokenType::kLParen,   TokenType::kRParen,
                          TokenType::kLBracket, TokenType::kRBracket,
                          TokenType::kSemicolon, TokenType::kComma};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, KeywordsLexAsIdents) {
  auto tokens = MustLex("SELECT select Construct a TRUE");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(tokens[static_cast<size_t>(i)].Is(TokenType::kIdent)) << i;
  }
}

TEST(LexerTest, PNameWithPercentEscape) {
  auto tokens = MustLex("ex:a%20b");
  EXPECT_EQ(tokens[0].value, "ex:a%20b");
}

TEST(LexerTest, ColumnsTracked) {
  auto tokens = MustLex("?a ?bb\n  ?c");
  EXPECT_EQ(tokens[0].col, 1u);
  EXPECT_EQ(tokens[1].col, 4u);
  EXPECT_EQ(tokens[2].line, 2u);
  EXPECT_EQ(tokens[2].col, 3u);
}

TEST(LexerTest, ColumnsTrackedAfterLongString) {
  auto tokens = MustLex("\"\"\"a\nbc\"\"\" ?x");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kString));
  EXPECT_TRUE(tokens[1].Is(TokenType::kVar));
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].col, 7u);  // after `bc""" `
}

// --- Side-buffer path positions (PR 2 regression) --------------------------
// Escaped strings and escaped prefixed names take the materializing
// slow path into the token stream's side buffer; the value no longer
// equals its spelling, so line/column bookkeeping cannot be recovered
// from the value and must be tracked independently.

TEST(LexerTest, ColumnsTrackedAfterEscapedShortString) {
  // "a\"b" is 6 bytes wide in the source; ?x starts at byte column 8.
  auto tokens = MustLex("\"a\\\"b\" ?x");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kString));
  EXPECT_EQ(tokens[0].value, "a\"b");
  EXPECT_EQ(tokens[1].line, 1u);
  EXPECT_EQ(tokens[1].col, 8u);
  EXPECT_EQ(tokens[1].pos, 7u);
}

TEST(LexerTest, ColumnsTrackedAfterEscapedMultilineLongString) {
  // The escaped long string spans a newline via the slow path; the
  // following token's column counts from the new line's start.
  auto tokens = MustLex("'''a\\tb\ncd''' ?y");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].value, "a\tb\ncd");
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].col, 7u);  // after `cd''' `
}

TEST(LexerTest, ColumnsTrackedAfterEscapedPName) {
  // ex:a\~b spells 7 bytes but its value is 6 ("ex:a~b"); the column of
  // the next token must follow the spelling, not the value.
  auto tokens = MustLex("ex:a\\~b ?w");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].Is(TokenType::kPName));
  EXPECT_EQ(tokens[0].value, "ex:a~b");
  EXPECT_EQ(tokens[1].col, 9u);
  EXPECT_EQ(tokens[1].pos, 8u);
}

TEST(LexerTest, ColumnsTrackedAfterUnicodeEscapeKeptVerbatim) {
  // \u escapes are kept verbatim (2 source bytes -> 2 value bytes), the
  // remaining hex digits pass through; width bookkeeping must still be
  // positional.
  auto tokens = MustLex("\"x\\u0041y\" ?v");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].value, "x\\u0041y");
  EXPECT_EQ(tokens[1].col, 12u);
}

TEST(LexerTest, ErrorColumnAfterEscapedValueOnSameLine) {
  // The escaped string forces the side-buffer path; the error position
  // of the stray byte after it must still be exact.
  auto r = Lexer::Tokenize("\"a\\\"b\" ~");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 8"), std::string::npos)
      << r.status().ToString();
}

TEST(LexerTest, ErrorsReportLineAndColumn) {
  auto r = Lexer::Tokenize("?x\n  ~");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("column 3"), std::string::npos)
      << r.status().ToString();
}

// --- Bulk-scan path positions (PR 7 regression) ----------------------------
// The vectorized scanners (whitespace runs, comments, long strings,
// IRIs) jump the cursor many bytes at a time and recover line/column
// bookkeeping via CountNewlines afterwards. These pin the error
// position immediately after each fast path.

void ExpectErrorAt(const std::string& input, size_t line, size_t col) {
  auto r = Lexer::Tokenize(input);
  ASSERT_FALSE(r.ok()) << input;
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("line " + std::to_string(line) + ","),
            std::string::npos)
      << msg << "\ninput: " << input;
  EXPECT_NE(msg.find("column " + std::to_string(col)), std::string::npos)
      << msg << "\ninput: " << input;
}

TEST(LexerTest, ErrorPositionAfterUnescapedMultilineLongString) {
  // No escapes, so the long string takes the bulk scan over two
  // newlines; the stray byte sits at line 3, after `ef''' `.
  ExpectErrorAt("'''ab\ncd\nef''' ~", 3, 7);
}

TEST(LexerTest, ErrorPositionAfterCommentLines) {
  // Each comment is consumed by the scan-to-newline fast path.
  ExpectErrorAt("# one\n# two\n# three\n~", 4, 1);
}

TEST(LexerTest, ErrorPositionAfterBulkWhitespaceRun) {
  // A whitespace run longer than a vector register, crossing two
  // newlines: the run is skipped in bulk and the line counter must be
  // re-derived from the skipped span.
  ExpectErrorAt("?x" + std::string(70, ' ') + "\n\n    ~", 3, 5);
}

TEST(LexerTest, ErrorPositionAfterLongIri) {
  // 51-byte IRI consumed by the bulk IRI scan; '~' follows a space.
  ExpectErrorAt("<http://e/" + std::string(40, 'a') + "> ~", 1, 53);
}

TEST(LexerTest, ErrorPositionInsideLongStringThatNeverCloses) {
  // An unterminated long string: the error must point at the opening
  // quote's position, not wherever the bulk scan stopped.
  auto r = Lexer::Tokenize("?x\n  '''never closed\nstill open");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(LexerTest, UnescapedValuesAreViewsIntoTheInput) {
  static constexpr std::string_view kInput =
      "SELECT ?x <http://e/> \"plain\" ex:loc%20al 42.5";
  auto tokens = MustLex(kInput);
  // Every value here needs no unescaping, so it must be a slice of the
  // input buffer itself (zero copies on this path).
  auto within_input = [&](std::string_view v) {
    return v.data() >= kInput.data() &&
           v.data() + v.size() <= kInput.data() + kInput.size();
  };
  for (const Token& t : tokens) {
    if (t.value.empty()) continue;
    EXPECT_TRUE(within_input(t.value)) << "copied value: " << t.value;
  }
}

TEST(LexerTest, EscapedValuesAreOwnedByTheStream) {
  static constexpr std::string_view kInput = R"("a\tb" ex:esc\,cape)";
  auto tokens = MustLex(kInput);
  EXPECT_EQ(tokens[0].value, "a\tb");
  EXPECT_EQ(tokens[1].value, "ex:esc,cape");
  // Unescaped values differ from their spelling, so they cannot alias
  // the input; the stream's side buffer owns them.
  auto within_input = [&](std::string_view v) {
    return v.data() >= kInput.data() &&
           v.data() + v.size() <= kInput.data() + kInput.size();
  };
  EXPECT_FALSE(within_input(tokens[0].value));
  EXPECT_FALSE(within_input(tokens[1].value));
}

TEST(LexerTest, WikidataStyleQuery) {
  auto tokens = MustLex(
      "SELECT ?item WHERE { ?item wdt:P31/wdt:P279* wd:Q839954 . }");
  bool has_star = false;
  for (const Token& t : tokens) {
    if (t.Is(TokenType::kStar)) has_star = true;
  }
  EXPECT_TRUE(has_star);
}

}  // namespace
}  // namespace sparqlog::sparql
