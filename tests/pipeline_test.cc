#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "pipeline/shard.h"
#include "util/strings.h"

namespace sparqlog::pipeline {
namespace {

using corpus::CorpusAnalyzer;
using corpus::CorpusStats;
using corpus::FragmentStats;
using corpus::HypergraphStats;
using corpus::KeywordCounts;
using corpus::PathStats;
using corpus::ProjectionStats;
using corpus::ShapeCounts;
using corpus::TripleStats;

// ---------------------------------------------------------------------------
// Equality helpers: every aggregate, field by field.
// ---------------------------------------------------------------------------

void ExpectHistogramsEqual(const util::BucketHistogram& a,
                           const util::BucketHistogram& b) {
  ASSERT_EQ(a.max_direct(), b.max_direct());
  for (int v = 0; v <= a.max_direct(); ++v) EXPECT_EQ(a.Count(v), b.Count(v));
  EXPECT_EQ(a.Overflow(), b.Overflow());
}

void ExpectShapesEqual(const ShapeCounts& a, const ShapeCounts& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.single_edge, b.single_edge);
  EXPECT_EQ(a.chain, b.chain);
  EXPECT_EQ(a.chain_set, b.chain_set);
  EXPECT_EQ(a.star, b.star);
  EXPECT_EQ(a.tree, b.tree);
  EXPECT_EQ(a.forest, b.forest);
  EXPECT_EQ(a.cycle, b.cycle);
  EXPECT_EQ(a.flower, b.flower);
  EXPECT_EQ(a.flower_set, b.flower_set);
  EXPECT_EQ(a.treewidth_le2, b.treewidth_le2);
  EXPECT_EQ(a.treewidth_3, b.treewidth_3);
  EXPECT_EQ(a.treewidth_gt3, b.treewidth_gt3);
  EXPECT_EQ(a.girth, b.girth);
  EXPECT_EQ(a.single_edge_with_constants, b.single_edge_with_constants);
}

void ExpectAnalyzersEqual(const CorpusAnalyzer& a, const CorpusAnalyzer& b) {
  const KeywordCounts& ka = a.keywords();
  const KeywordCounts& kb = b.keywords();
  EXPECT_EQ(ka.total, kb.total);
  EXPECT_EQ(ka.select, kb.select);
  EXPECT_EQ(ka.ask, kb.ask);
  EXPECT_EQ(ka.describe, kb.describe);
  EXPECT_EQ(ka.construct, kb.construct);
  EXPECT_EQ(ka.distinct, kb.distinct);
  EXPECT_EQ(ka.limit, kb.limit);
  EXPECT_EQ(ka.offset, kb.offset);
  EXPECT_EQ(ka.order_by, kb.order_by);
  EXPECT_EQ(ka.reduced, kb.reduced);
  EXPECT_EQ(ka.filter, kb.filter);
  EXPECT_EQ(ka.conj, kb.conj);
  EXPECT_EQ(ka.union_, kb.union_);
  EXPECT_EQ(ka.optional, kb.optional);
  EXPECT_EQ(ka.graph, kb.graph);
  EXPECT_EQ(ka.not_exists, kb.not_exists);
  EXPECT_EQ(ka.minus, kb.minus);
  EXPECT_EQ(ka.exists, kb.exists);
  EXPECT_EQ(ka.count, kb.count);
  EXPECT_EQ(ka.max, kb.max);
  EXPECT_EQ(ka.min, kb.min);
  EXPECT_EQ(ka.avg, kb.avg);
  EXPECT_EQ(ka.sum, kb.sum);
  EXPECT_EQ(ka.group_by, kb.group_by);
  EXPECT_EQ(ka.having, kb.having);
  EXPECT_EQ(ka.service, kb.service);
  EXPECT_EQ(ka.bind, kb.bind);
  EXPECT_EQ(ka.values, kb.values);

  const auto& oa = a.operator_sets();
  const auto& ob = b.operator_sets();
  for (uint8_t mask = 0; mask < 32; ++mask) {
    EXPECT_EQ(oa.Exact(mask), ob.Exact(mask)) << "mask " << int(mask);
  }
  EXPECT_EQ(oa.other, ob.other);
  EXPECT_EQ(oa.total, ob.total);

  const ProjectionStats& pa = a.projection();
  const ProjectionStats& pb = b.projection();
  EXPECT_EQ(pa.total, pb.total);
  EXPECT_EQ(pa.with_projection, pb.with_projection);
  EXPECT_EQ(pa.select_with_projection, pb.select_with_projection);
  EXPECT_EQ(pa.ask_with_projection, pb.ask_with_projection);
  EXPECT_EQ(pa.indeterminate, pb.indeterminate);
  EXPECT_EQ(pa.with_subqueries, pb.with_subqueries);

  const FragmentStats& fa = a.fragments();
  const FragmentStats& fb = b.fragments();
  EXPECT_EQ(fa.select_ask, fb.select_ask);
  EXPECT_EQ(fa.aof, fb.aof);
  EXPECT_EQ(fa.cq, fb.cq);
  EXPECT_EQ(fa.cpf, fb.cpf);
  EXPECT_EQ(fa.cqf, fb.cqf);
  EXPECT_EQ(fa.well_designed, fb.well_designed);
  EXPECT_EQ(fa.cqof, fb.cqof);
  EXPECT_EQ(fa.wide_interface, fb.wide_interface);
  ExpectHistogramsEqual(fa.cq_sizes, fb.cq_sizes);
  ExpectHistogramsEqual(fa.cqf_sizes, fb.cqf_sizes);
  ExpectHistogramsEqual(fa.cqof_sizes, fb.cqof_sizes);

  ExpectShapesEqual(a.cq_shapes(), b.cq_shapes());
  ExpectShapesEqual(a.cqf_shapes(), b.cqf_shapes());
  ExpectShapesEqual(a.cqof_shapes(), b.cqof_shapes());

  const HypergraphStats& ha = a.hypergraphs();
  const HypergraphStats& hb = b.hypergraphs();
  EXPECT_EQ(ha.total, hb.total);
  EXPECT_EQ(ha.ghw1, hb.ghw1);
  EXPECT_EQ(ha.ghw2, hb.ghw2);
  EXPECT_EQ(ha.ghw3, hb.ghw3);
  EXPECT_EQ(ha.ghw_more, hb.ghw_more);
  EXPECT_EQ(ha.decompositions_gt10_nodes, hb.decompositions_gt10_nodes);
  EXPECT_EQ(ha.decompositions_gt100_nodes, hb.decompositions_gt100_nodes);

  const PathStats& qa = a.paths();
  const PathStats& qb = b.paths();
  EXPECT_EQ(qa.total_paths, qb.total_paths);
  EXPECT_EQ(qa.trivial_negated, qb.trivial_negated);
  EXPECT_EQ(qa.trivial_inverse, qb.trivial_inverse);
  EXPECT_EQ(qa.navigational, qb.navigational);
  EXPECT_EQ(qa.with_inverse, qb.with_inverse);
  EXPECT_EQ(qa.not_ctract, qb.not_ctract);
  EXPECT_EQ(qa.by_type, qb.by_type);

  ASSERT_EQ(a.per_dataset().size(), b.per_dataset().size());
  for (const auto& [name, ta] : a.per_dataset()) {
    ASSERT_TRUE(b.per_dataset().count(name)) << name;
    const TripleStats& tb = b.per_dataset().at(name);
    EXPECT_EQ(ta.select_ask, tb.select_ask) << name;
    EXPECT_EQ(ta.all_queries, tb.all_queries) << name;
    EXPECT_EQ(ta.triple_sum, tb.triple_sum) << name;
    EXPECT_EQ(ta.max_triples, tb.max_triples) << name;
    ExpectHistogramsEqual(ta.histogram, tb.histogram);
  }
}

/// A mixed synthetic log drawn from several dataset profiles so the
/// pipeline sees diverse query forms, paths, and malformed entries.
std::vector<std::string> BuildMixedLog(uint64_t min_entries_per_dataset) {
  auto profiles = corpus::PaperProfiles();
  std::vector<std::string> lines;
  uint64_t seed = 71;
  for (const char* name :
       {"DBpedia15", "WikiData17", "BioMed13", "SWDF13"}) {
    corpus::GeneratorOptions options;
    options.scale = 0;
    options.min_entries = min_entries_per_dataset;
    options.seed = seed++;
    corpus::SyntheticLogGenerator gen(corpus::ProfileByName(profiles, name),
                                      options);
    auto log = gen.GenerateLog();
    lines.insert(lines.end(), log.begin(), log.end());
  }
  return lines;
}

struct SerialResult {
  CorpusStats stats;
  CorpusAnalyzer analysis;
};

SerialResult RunSerial(const std::vector<std::string>& lines,
                       bool use_valid_corpus = false) {
  SerialResult result;
  corpus::LogIngestor ingestor;
  auto sink = [&result](const sparql::Query& q) {
    result.analysis.AddQuery(q, "all");
  };
  if (use_valid_corpus) {
    ingestor.set_valid_sink(sink);
  } else {
    ingestor.set_unique_sink(sink);
  }
  ingestor.ProcessLog(lines);
  result.stats = ingestor.stats();
  return result;
}

// ---------------------------------------------------------------------------
// Serial vs parallel determinism (the tentpole invariant).
// ---------------------------------------------------------------------------

TEST(PipelineDeterminismTest, MatchesSerialAtOneTwoAndEightThreads) {
  std::vector<std::string> lines = BuildMixedLog(1200);
  SerialResult serial = RunSerial(lines);

  for (int threads : {1, 2, 8}) {
    PipelineOptions options;
    options.threads = threads;
    options.chunk_size = 64;
    ParallelLogPipeline pipeline(options);
    PipelineResult result = pipeline.Run(lines);

    EXPECT_EQ(result.lines, lines.size()) << threads << " threads";
    EXPECT_EQ(result.stats.total, serial.stats.total) << threads;
    EXPECT_EQ(result.stats.valid, serial.stats.valid) << threads;
    EXPECT_EQ(result.stats.unique, serial.stats.unique) << threads;
    ExpectAnalyzersEqual(serial.analysis, result.analysis);
  }
}

TEST(PipelineDeterminismTest, ValidCorpusModeMatchesSerial) {
  std::vector<std::string> lines = BuildMixedLog(600);
  SerialResult serial = RunSerial(lines, /*use_valid_corpus=*/true);

  PipelineOptions options;
  options.threads = 4;
  options.chunk_size = 32;
  options.use_valid_corpus = true;
  ParallelLogPipeline pipeline(options);
  PipelineResult result = pipeline.Run(lines);

  EXPECT_EQ(result.stats.valid, serial.stats.valid);
  ExpectAnalyzersEqual(serial.analysis, result.analysis);
}

TEST(PipelineDeterminismTest, RepeatedRunsAreIdentical) {
  std::vector<std::string> lines = BuildMixedLog(400);
  PipelineOptions options;
  options.threads = 3;
  options.chunk_size = 17;  // odd size: chunks straddle entries unevenly
  PipelineResult a = ParallelLogPipeline(options).Run(lines);
  PipelineResult b = ParallelLogPipeline(options).Run(lines);
  EXPECT_EQ(a.stats.total, b.stats.total);
  EXPECT_EQ(a.stats.valid, b.stats.valid);
  EXPECT_EQ(a.stats.unique, b.stats.unique);
  ExpectAnalyzersEqual(a.analysis, b.analysis);
}

// ---------------------------------------------------------------------------
// Shard routing
// ---------------------------------------------------------------------------

TEST(ShardTest, FormattingVariantsRouteToSameShard) {
  sparql::Parser parser;
  corpus::ParsedLine a = corpus::ParseLogLine(
      parser, "query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }"));
  corpus::ParsedLine b = corpus::ParseLogLine(
      parser,
      "query=" + util::PercentEncode("SELECT *\nWHERE {\n ?s ?p ?o .\n}"));
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_EQ(a.canonical_hash, b.canonical_hash);
  for (size_t shards : {2u, 3u, 8u}) {
    EXPECT_EQ(ShardIndexFor(a, shards), ShardIndexFor(b, shards));
  }
}

TEST(ShardTest, MalformedEntriesRouteByLineHash) {
  sparql::Parser parser;
  corpus::ParsedLine p =
      corpus::ParseLogLine(parser, "query=NOT%20SPARQL");
  ASSERT_TRUE(p.is_query);
  ASSERT_FALSE(p.valid);
  for (size_t shards : {1u, 2u, 8u}) {
    size_t idx = ShardIndexFor(p, shards);
    EXPECT_LT(idx, shards);
    EXPECT_EQ(idx, ShardIndexFor(p, shards));  // deterministic
  }
}

TEST(ShardTest, ShardCountsTableOneSemantics) {
  ShardOptions options;
  Shard shard(options);
  sparql::Parser parser;
  auto feed = [&](const std::string& line) {
    shard.Consume(corpus::ParseLogLine(parser, line));
  };
  feed("GET /nonsense HTTP/1.1");
  feed("query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }"));
  feed("query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }"));
  feed("query=NOT%20SPARQL");
  EXPECT_EQ(shard.stats().total, 3u);
  EXPECT_EQ(shard.stats().valid, 2u);
  EXPECT_EQ(shard.stats().unique, 1u);
  EXPECT_EQ(shard.analyzer().keywords().total, 1u);
}

// ---------------------------------------------------------------------------
// BoundedQueue
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoAndCloseSemantics) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: rejected
  EXPECT_EQ(q.Pop(), 1);    // pending items still drain
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, BackpressureDeliversEverything) {
  BoundedQueue<int> q(2);  // tiny capacity: producer must block
  constexpr int kItems = 500;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  int64_t sum = 0, received = 0;
  while (std::optional<int> v = q.Pop()) {
    sum += *v;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, static_cast<int64_t>(kItems) * (kItems - 1) / 2);
}

TEST(BoundedQueueTest, StatsCountTrafficAndHighWater) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.Push(4));
  obs::QueueCounters stats = q.Stats();
  EXPECT_EQ(stats.pushes, 4u);
  EXPECT_EQ(stats.pops, 1u);
  EXPECT_EQ(stats.max_depth, 3u);  // never held more than three at once
  EXPECT_EQ(stats.push_blocks, 0u);
  EXPECT_EQ(stats.pop_waits, 0u);
  EXPECT_EQ(stats.push_block_ns, 0u);  // uncontended: clock never read
  EXPECT_EQ(stats.pop_wait_ns, 0u);
  EXPECT_EQ(stats.rejected_pushes, 0u);
}

TEST(BoundedQueueTest, PushAfterCloseIsRejectedAndCounted) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_FALSE(q.Push(3));
  obs::QueueCounters stats = q.Stats();
  EXPECT_EQ(stats.pushes, 1u);  // accepted items only
  EXPECT_EQ(stats.rejected_pushes, 2u);
}

TEST(BoundedQueueTest, PopDrainsFifoAfterCloseThenNullopt) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  q.Close();
  for (int i = 0; i < 5; ++i) {
    std::optional<int> v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO order survives Close
  }
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_EQ(q.Pop(), std::nullopt);  // stays exhausted
  obs::QueueCounters stats = q.Stats();
  EXPECT_EQ(stats.pushes, 5u);
  EXPECT_EQ(stats.pops, 5u);
  EXPECT_EQ(stats.pop_waits, 0u);  // items were always available
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerWhichIsRejected) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(0));  // queue now full
  std::atomic<int> second_push{-1};
  std::thread producer([&] {
    second_push = q.Push(1) ? 1 : 0;  // must block, then see Close
  });
  // Wait until the producer is provably blocked on the full queue.
  while (q.Stats().push_blocks == 0) std::this_thread::yield();
  q.Close();
  producer.join();
  EXPECT_EQ(second_push, 0);  // woken by Close -> rejected, not enqueued
  EXPECT_EQ(q.Pop(), 0);      // the pre-Close item still drains
  EXPECT_EQ(q.Pop(), std::nullopt);
  obs::QueueCounters stats = q.Stats();
  EXPECT_EQ(stats.pushes, 1u);
  EXPECT_EQ(stats.push_blocks, 1u);
  EXPECT_EQ(stats.rejected_pushes, 1u);
}

TEST(BoundedQueueTest, BlockedStatsAttributeWaitTime) {
  BoundedQueue<int> q(1);
  constexpr int kItems = 50;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.Push(i);
    q.Close();
  });
  // The producer fills the capacity-1 queue and must block on its
  // second push; only start draining once that block is observed, so
  // the assertion below is deterministic.
  while (q.Stats().push_blocks == 0) std::this_thread::yield();
  int received = 0;
  while (q.Pop().has_value()) ++received;
  producer.join();
  obs::QueueCounters stats = q.Stats();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(stats.pushes, static_cast<uint64_t>(kItems));
  EXPECT_EQ(stats.pops, static_cast<uint64_t>(kItems));
  EXPECT_EQ(stats.max_depth, 1u);
  EXPECT_GT(stats.push_blocks, 0u);
  if constexpr (obs::kTelemetryEnabled) {
    EXPECT_GT(stats.push_block_ns, 0u);  // the observed block accrued time
  }
}

// ---------------------------------------------------------------------------
// Line sources
// ---------------------------------------------------------------------------

TEST(LineSourceTest, IstreamSourceStreamsInChunks) {
  std::stringstream ss("a\nb\nc\nd\ne\n");
  IstreamLineSource source(ss);
  std::vector<std::string> chunk;
  ASSERT_TRUE(source.NextChunk(2, chunk));
  EXPECT_EQ(chunk, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(source.NextChunk(2, chunk));
  EXPECT_EQ(chunk, (std::vector<std::string>{"c", "d"}));
  ASSERT_TRUE(source.NextChunk(2, chunk));
  EXPECT_EQ(chunk, (std::vector<std::string>{"e"}));
  EXPECT_FALSE(source.NextChunk(2, chunk));
}

TEST(LineSourceTest, PipelineRunsFromIstream) {
  std::stringstream ss;
  ss << "query=" << util::PercentEncode("SELECT * WHERE { ?s ?p ?o }") << "\n"
     << "noise line\n"
     << "query=" << util::PercentEncode("ASK { <a> <b> <c> }") << "\n";
  PipelineOptions options;
  options.threads = 2;
  ParallelLogPipeline pipeline(options);
  IstreamLineSource source(ss);
  PipelineResult result = pipeline.Run(source);
  EXPECT_EQ(result.lines, 3u);
  EXPECT_EQ(result.stats.total, 2u);
  EXPECT_EQ(result.stats.valid, 2u);
  EXPECT_EQ(result.stats.unique, 2u);
}

// ---------------------------------------------------------------------------
// Merge() unit tests, one per aggregate.
// ---------------------------------------------------------------------------

TEST(MergeTest, CorpusStats) {
  CorpusStats a{10, 8, 5}, b{3, 2, 1};
  a.Merge(b);
  EXPECT_EQ(a.total, 13u);
  EXPECT_EQ(a.valid, 10u);
  EXPECT_EQ(a.unique, 6u);
}

TEST(MergeTest, BucketHistogram) {
  util::BucketHistogram a{11}, b{11};
  a.Add(0);
  a.Add(3, 2);
  a.Add(40);
  b.Add(3);
  b.Add(99);
  a.Merge(b);
  EXPECT_EQ(a.Count(0), 1u);
  EXPECT_EQ(a.Count(3), 3u);
  EXPECT_EQ(a.Overflow(), 2u);
  EXPECT_EQ(a.Total(), 6u);
}

TEST(MergeTest, KeywordCounts) {
  KeywordCounts a, b;
  a.total = 5;
  a.select = 4;
  a.filter = 2;
  b.total = 3;
  b.select = 1;
  b.union_ = 3;
  a.Merge(b);
  EXPECT_EQ(a.total, 8u);
  EXPECT_EQ(a.select, 5u);
  EXPECT_EQ(a.filter, 2u);
  EXPECT_EQ(a.union_, 3u);
}

TEST(MergeTest, TripleStatsTakesMaxOfMaxima) {
  TripleStats a, b;
  a.all_queries = 4;
  a.triple_sum = 9;
  a.max_triples = 3;
  a.select_ask = 4;
  a.histogram.Add(2);
  b.all_queries = 2;
  b.triple_sum = 14;
  b.max_triples = 12;
  b.select_ask = 1;
  b.histogram.Add(12);
  a.Merge(b);
  EXPECT_EQ(a.all_queries, 6u);
  EXPECT_EQ(a.triple_sum, 23u);
  EXPECT_EQ(a.max_triples, 12u);
  EXPECT_EQ(a.select_ask, 5u);
  EXPECT_EQ(a.histogram.Count(2), 1u);
  EXPECT_EQ(a.histogram.Overflow(), 1u);
}

TEST(MergeTest, ProjectionStats) {
  ProjectionStats a, b;
  a.total = 7;
  a.with_projection = 2;
  b.total = 3;
  b.with_projection = 1;
  b.indeterminate = 2;
  a.Merge(b);
  EXPECT_EQ(a.total, 10u);
  EXPECT_EQ(a.with_projection, 3u);
  EXPECT_EQ(a.indeterminate, 2u);
}

TEST(MergeTest, FragmentStats) {
  FragmentStats a, b;
  a.select_ask = 6;
  a.cq = 4;
  a.cq_sizes.Add(1);
  b.select_ask = 2;
  b.cq = 1;
  b.aof = 2;
  b.cq_sizes.Add(1);
  a.Merge(b);
  EXPECT_EQ(a.select_ask, 8u);
  EXPECT_EQ(a.cq, 5u);
  EXPECT_EQ(a.aof, 2u);
  EXPECT_EQ(a.cq_sizes.Count(1), 2u);
}

TEST(MergeTest, ShapeCountsMergesGirthMaps) {
  ShapeCounts a, b;
  a.total = 3;
  a.cycle = 1;
  a.girth[3] = 1;
  b.total = 2;
  b.cycle = 2;
  b.girth[3] = 2;
  b.girth[5] = 1;
  a.Merge(b);
  EXPECT_EQ(a.total, 5u);
  EXPECT_EQ(a.cycle, 3u);
  EXPECT_EQ(a.girth[3], 3u);
  EXPECT_EQ(a.girth[5], 1u);
}

TEST(MergeTest, HypergraphStats) {
  HypergraphStats a, b;
  a.total = 2;
  a.ghw1 = 2;
  b.total = 3;
  b.ghw2 = 3;
  b.decompositions_gt10_nodes = 1;
  a.Merge(b);
  EXPECT_EQ(a.total, 5u);
  EXPECT_EQ(a.ghw1, 2u);
  EXPECT_EQ(a.ghw2, 3u);
  EXPECT_EQ(a.decompositions_gt10_nodes, 1u);
}

TEST(MergeTest, PathStatsMergesTypeMaps) {
  PathStats a, b;
  a.total_paths = 4;
  a.navigational = 2;
  a.by_type[paths::PathType::kStar] = 2;
  b.total_paths = 1;
  b.navigational = 1;
  b.by_type[paths::PathType::kStar] = 1;
  b.by_type[paths::PathType::kStarOfAlt] = 1;
  a.Merge(b);
  EXPECT_EQ(a.total_paths, 5u);
  EXPECT_EQ(a.navigational, 3u);
  EXPECT_EQ(a.by_type[paths::PathType::kStar], 3u);
  EXPECT_EQ(a.by_type[paths::PathType::kStarOfAlt], 1u);
}

TEST(MergeTest, OperatorSetDistribution) {
  analysis::OperatorSetDistribution a, b;
  a.exact[0] = 5;
  a.exact[3] = 2;
  a.total = 7;
  b.exact[3] = 1;
  b.other = 4;
  b.total = 5;
  a.Merge(b);
  EXPECT_EQ(a.Exact(0), 5u);
  EXPECT_EQ(a.Exact(3), 3u);
  EXPECT_EQ(a.other, 4u);
  EXPECT_EQ(a.total, 12u);
}

TEST(MergeTest, AnalyzerMergeEqualsCombinedAnalysis) {
  auto profiles = corpus::PaperProfiles();
  corpus::GeneratorOptions options;
  options.seed = 23;
  corpus::SyntheticLogGenerator gen(
      corpus::ProfileByName(profiles, "DBpedia15"), options);
  std::vector<sparql::Query> queries;
  for (int i = 0; i < 300; ++i) queries.push_back(gen.GenerateQuery());

  CorpusAnalyzer combined;
  for (const auto& q : queries) combined.AddQuery(q, "all");

  CorpusAnalyzer left, right;
  for (size_t i = 0; i < queries.size(); ++i) {
    (i % 2 == 0 ? left : right).AddQuery(queries[i], "all");
  }
  left.MergeFrom(right);
  ExpectAnalyzersEqual(combined, left);
}

TEST(MergeTest, StatisticsDigestDetectsAnyDivergence) {
  auto profiles = corpus::PaperProfiles();
  corpus::GeneratorOptions options;
  options.seed = 41;
  corpus::SyntheticLogGenerator gen(
      corpus::ProfileByName(profiles, "WikiData17"), options);
  CorpusAnalyzer a, b;
  for (int i = 0; i < 200; ++i) {
    sparql::Query q = gen.GenerateQuery();
    a.AddQuery(q, "all");
    b.AddQuery(q, "all");
  }
  EXPECT_EQ(StatisticsDigest(a), StatisticsDigest(b));
  // One extra query must perturb the digest.
  b.AddQuery(gen.GenerateQuery(), "all");
  EXPECT_NE(StatisticsDigest(a), StatisticsDigest(b));
}

TEST(MergeTest, MergeShardsFoldsStatsAndAnalysis) {
  ShardOptions options;
  std::vector<std::unique_ptr<Shard>> shards;
  shards.push_back(std::make_unique<Shard>(options));
  shards.push_back(std::make_unique<Shard>(options));
  sparql::Parser parser;
  shards[0]->Consume(corpus::ParseLogLine(
      parser, "query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }")));
  shards[1]->Consume(corpus::ParseLogLine(
      parser, "query=" + util::PercentEncode("ASK { <a> <b> <c> }")));
  PipelineResult merged = MergeShards(shards);
  EXPECT_EQ(merged.stats.total, 2u);
  EXPECT_EQ(merged.stats.unique, 2u);
  EXPECT_EQ(merged.analysis.keywords().total, 2u);
  EXPECT_EQ(merged.analysis.keywords().select, 1u);
  EXPECT_EQ(merged.analysis.keywords().ask, 1u);
}

// ---------------------------------------------------------------------------
// Merge() algebra: identity on empty, order independence (the two
// properties MergeShards relies on for exactness).
// ---------------------------------------------------------------------------

/// Feeds a handful of syntactically diverse queries into an analyzer.
CorpusAnalyzer PopulatedAnalyzer(std::initializer_list<const char*> texts) {
  CorpusAnalyzer analyzer;
  sparql::Parser parser;
  for (const char* text : texts) {
    auto q = parser.Parse(text);
    EXPECT_TRUE(q.ok()) << text;
    if (q.ok()) analyzer.AddQuery(q.value(), "all");
  }
  return analyzer;
}

const std::initializer_list<const char*> kCorpusA = {
    "SELECT DISTINCT ?x WHERE { ?x <p:a> ?y . ?y <p:b> ?z } LIMIT 5",
    "ASK { <a:a> <p:c>+ ?x }",
    "SELECT * WHERE { { ?a <p:d> ?b } UNION { ?a <p:e> ?b } }",
};

const std::initializer_list<const char*> kCorpusB = {
    "CONSTRUCT { ?s <p:f> ?o } WHERE { ?s <p:f> ?o . FILTER(?o > 3) }",
    "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s",
    "DESCRIBE <x:y>",
    "ASK { ?x !(<p:g>|^<p:h>) ?y . OPTIONAL { ?x <p:i> ?z } }",
};

TEST(MergeAlgebraTest, MergeFromEmptyAnalyzerIsIdentity) {
  CorpusAnalyzer populated = PopulatedAnalyzer(kCorpusA);
  std::vector<uint64_t> before = StatisticsDigest(populated);
  CorpusAnalyzer empty;
  populated.MergeFrom(empty);
  EXPECT_EQ(StatisticsDigest(populated), before);
  // And merging INTO an empty analyzer reproduces the populated state.
  CorpusAnalyzer other;
  other.MergeFrom(PopulatedAnalyzer(kCorpusA));
  EXPECT_EQ(StatisticsDigest(other), before);
}

TEST(MergeAlgebraTest, MergeFromIsOrderIndependent) {
  CorpusAnalyzer ab = PopulatedAnalyzer(kCorpusA);
  ab.MergeFrom(PopulatedAnalyzer(kCorpusB));
  CorpusAnalyzer ba = PopulatedAnalyzer(kCorpusB);
  ba.MergeFrom(PopulatedAnalyzer(kCorpusA));
  EXPECT_EQ(StatisticsDigest(ab), StatisticsDigest(ba));
  ExpectAnalyzersEqual(ab, ba);
}

TEST(MergeAlgebraTest, AsymmetricMergePreservesEverySum) {
  // A sees 3 queries, B sees 4; the merged digest must equal the digest
  // of one analyzer that saw all 7 (the pipeline's shard invariant).
  CorpusAnalyzer merged = PopulatedAnalyzer(kCorpusA);
  merged.MergeFrom(PopulatedAnalyzer(kCorpusB));
  std::vector<const char*> all;
  all.insert(all.end(), kCorpusA.begin(), kCorpusA.end());
  all.insert(all.end(), kCorpusB.begin(), kCorpusB.end());
  CorpusAnalyzer reference;
  sparql::Parser parser;
  for (const char* text : all) {
    auto q = parser.Parse(text);
    ASSERT_TRUE(q.ok());
    reference.AddQuery(q.value(), "all");
  }
  EXPECT_EQ(StatisticsDigest(merged), StatisticsDigest(reference));
}

TEST(MergeAlgebraTest, CorpusStatsMergeIdentityAndSums) {
  CorpusStats a;
  a.total = 10;
  a.valid = 7;
  a.unique = 5;
  CorpusStats copy = a;
  a.Merge(CorpusStats{});
  EXPECT_EQ(a.total, copy.total);
  EXPECT_EQ(a.valid, copy.valid);
  EXPECT_EQ(a.unique, copy.unique);
  CorpusStats b;
  b.total = 1;
  b.valid = 1;
  b.unique = 0;
  a.Merge(b);
  EXPECT_EQ(a.total, 11u);
  EXPECT_EQ(a.valid, 8u);
  EXPECT_EQ(a.unique, 5u);
}

TEST(MergeAlgebraTest, PerStructMergeWithDefaultIsIdentity) {
  // Every aggregate struct must treat a default-constructed instance as
  // the neutral element — MergeShards merges shards that may have seen
  // zero entries.
  CorpusAnalyzer populated = PopulatedAnalyzer(kCorpusB);
  KeywordCounts k = populated.keywords();
  KeywordCounts k0 = k;
  k.Merge(KeywordCounts{});
  EXPECT_EQ(k.total, k0.total);
  EXPECT_EQ(k.select, k0.select);
  EXPECT_EQ(k.construct, k0.construct);
  EXPECT_EQ(k.optional, k0.optional);

  ShapeCounts s = populated.cq_shapes();
  ShapeCounts s0 = s;
  s.Merge(ShapeCounts{});
  ExpectShapesEqual(s, s0);

  PathStats p = populated.paths();
  PathStats p0 = p;
  p.Merge(PathStats{});
  EXPECT_EQ(p.total_paths, p0.total_paths);
  EXPECT_EQ(p.trivial_negated, p0.trivial_negated);
  EXPECT_EQ(p.by_type, p0.by_type);

  ProjectionStats pr = populated.projection();
  ProjectionStats pr0 = pr;
  pr.Merge(ProjectionStats{});
  EXPECT_EQ(pr.total, pr0.total);
  EXPECT_EQ(pr.with_projection, pr0.with_projection);

  FragmentStats f;
  f.cq = 3;
  f.cq_sizes.Add(2);
  f.Merge(FragmentStats{});
  EXPECT_EQ(f.cq, 3u);
  EXPECT_EQ(f.cq_sizes.Count(2), 1u);

  HypergraphStats hg;
  hg.total = 2;
  hg.ghw1 = 1;
  hg.Merge(HypergraphStats{});
  EXPECT_EQ(hg.total, 2u);
  EXPECT_EQ(hg.ghw1, 1u);

  TripleStats ts;
  ts.all_queries = 4;
  ts.histogram.Add(3);
  ts.Merge(TripleStats{});
  EXPECT_EQ(ts.all_queries, 4u);
  EXPECT_EQ(ts.histogram.Count(3), 1u);
}

TEST(PipelineTest, ShardCountDecoupledFromThreadCount) {
  std::vector<std::string> log;
  sparql::Parser parser;
  for (int i = 0; i < 40; ++i) {
    log.push_back("query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cp%3A" +
                  std::to_string(i % 7) + "%3E%20%3Fo%20%7D");
  }
  PipelineOptions reference_options;
  reference_options.threads = 1;
  ParallelLogPipeline reference(reference_options);
  PipelineResult expected = reference.Run(log);
  for (size_t shards : {1u, 2u, 5u, 9u}) {
    PipelineOptions options;
    options.threads = 3;
    options.shards = shards;
    options.chunk_size = 4;
    ParallelLogPipeline pipeline(options);
    EXPECT_EQ(pipeline.shards(), shards);
    PipelineResult result = pipeline.Run(log);
    EXPECT_EQ(result.stats.total, expected.stats.total) << shards;
    EXPECT_EQ(result.stats.unique, expected.stats.unique) << shards;
    EXPECT_EQ(StatisticsDigest(result.analysis),
              StatisticsDigest(expected.analysis))
        << shards;
  }
}

}  // namespace
}  // namespace sparqlog::pipeline
