#include <gtest/gtest.h>

#include <chrono>

#include "gmark/graph_gen.h"
#include "gmark/query_gen.h"
#include "gmark/schema.h"
#include "graph/canonical.h"
#include "graph/shapes.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "store/engine.h"

namespace sparqlog::gmark {
namespace {

using namespace std::chrono_literals;

TEST(SchemaTest, BibSchemaWellFormed) {
  Schema s = Schema::Bib();
  EXPECT_GE(s.types.size(), 4u);
  EXPECT_EQ(s.types.size(), s.type_proportions.size());
  for (const PredicateSpec& p : s.predicates) {
    EXPECT_GE(p.source_type, 0);
    EXPECT_LT(p.source_type, static_cast<int>(s.types.size()));
    EXPECT_GE(p.target_type, 0);
    EXPECT_LT(p.target_type, static_cast<int>(s.types.size()));
  }
}

TEST(SchemaTest, PredicateLookups) {
  Schema s = Schema::Bib();
  // Papers have outgoing predicates (authors, cites, ...).
  EXPECT_FALSE(s.PredicatesFrom(1).empty());
  // Researchers have incoming predicates (authors).
  EXPECT_FALSE(s.PredicatesInto(0).empty());
}

TEST(GraphGenTest, GeneratesRequestedSize) {
  store::TripleStore store;
  GraphGenOptions options;
  options.num_nodes = 2000;
  options.seed = 1;
  GenerateGraph(Schema::Bib(), options, store);
  // Types + edges; every node has an rdf:type triple.
  EXPECT_GE(store.size(), 2000u);
}

TEST(GraphGenTest, DeterministicForSeed) {
  store::TripleStore a, b;
  GraphGenOptions options;
  options.num_nodes = 500;
  options.seed = 77;
  GenerateGraph(Schema::Bib(), options, a);
  GenerateGraph(Schema::Bib(), options, b);
  EXPECT_EQ(a.size(), b.size());
}

TEST(GraphGenTest, EdgesRespectSchemaTypes) {
  store::TripleStore store;
  GraphGenOptions options;
  options.num_nodes = 800;
  GenerateGraph(Schema::Bib(), options, store);
  Schema schema = Schema::Bib();
  // Every "authors" edge goes Paper -> Researcher by IRI prefix.
  rdf::TermId authors =
      store.dict().Lookup(schema.namespace_iri + "authors");
  ASSERT_NE(authors, 0u);
  std::vector<rdf::EncodedTriple> out;
  store.Match(0, authors, 0, out);
  for (const auto& t : out) {
    EXPECT_NE(store.dict().Resolve(t.s).find("Paper/"), std::string::npos);
    EXPECT_NE(store.dict().Resolve(t.o).find("Researcher/"),
              std::string::npos);
  }
}

class WorkloadShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadShapeTest, ChainQueriesAreChains) {
  QueryGenOptions options;
  options.shape = QueryShape::kChain;
  options.length = GetParam();
  options.workload_size = 20;
  auto workload = GenerateWorkload(Schema::Bib(), options);
  ASSERT_EQ(workload.size(), 20u);
  for (const GeneratedQuery& q : workload) {
    EXPECT_EQ(q.length, GetParam());
    graph::CanonicalGraph cg = graph::BuildCanonicalGraph(q.sparql.where);
    ASSERT_TRUE(cg.valid);
    graph::ShapeClass s = graph::ClassifyShape(cg.graph);
    EXPECT_TRUE(s.chain) << sparql::Serialize(q.sparql);
  }
}

TEST_P(WorkloadShapeTest, CycleQueriesAreCycles) {
  QueryGenOptions options;
  options.shape = QueryShape::kCycle;
  options.length = GetParam();
  options.workload_size = 20;
  auto workload = GenerateWorkload(Schema::Bib(), options);
  for (const GeneratedQuery& q : workload) {
    graph::CanonicalGraph cg = graph::BuildCanonicalGraph(q.sparql.where);
    ASSERT_TRUE(cg.valid);
    graph::ShapeClass s = graph::ClassifyShape(cg.graph);
    EXPECT_TRUE(s.cycle || s.girth > 0) << sparql::Serialize(q.sparql);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, WorkloadShapeTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(WorkloadTest, StarShape) {
  QueryGenOptions options;
  options.shape = QueryShape::kStar;
  options.length = 4;
  options.workload_size = 10;
  for (const GeneratedQuery& q : GenerateWorkload(Schema::Bib(), options)) {
    graph::CanonicalGraph cg = graph::BuildCanonicalGraph(q.sparql.where);
    ASSERT_TRUE(cg.valid);
    graph::ShapeClass s = graph::ClassifyShape(cg.graph);
    EXPECT_TRUE(s.star || s.tree) << sparql::Serialize(q.sparql);
  }
}

TEST(WorkloadTest, AskFormIsAsk) {
  QueryGenOptions options;
  options.ask_form = true;
  options.workload_size = 5;
  for (const GeneratedQuery& q : GenerateWorkload(Schema::Bib(), options)) {
    EXPECT_EQ(q.sparql.form, sparql::QueryForm::kAsk);
  }
}

TEST(WorkloadTest, SqlEmitted) {
  QueryGenOptions options;
  options.shape = QueryShape::kCycle;
  options.length = 3;
  options.workload_size = 3;
  for (const GeneratedQuery& q : GenerateWorkload(Schema::Bib(), options)) {
    EXPECT_NE(q.sql.find("SELECT"), std::string::npos);
    EXPECT_NE(q.sql.find("FROM"), std::string::npos);
    EXPECT_NE(q.sql.find("WHERE"), std::string::npos);  // join conditions
  }
}

TEST(WorkloadTest, GeneratedSparqlSerializesAndReparses) {
  QueryGenOptions options;
  options.workload_size = 10;
  for (const GeneratedQuery& q : GenerateWorkload(Schema::Bib(), options)) {
    std::string text = sparql::Serialize(q.sparql);
    auto parsed = sparql::ParseQuery(text);
    EXPECT_TRUE(parsed.ok()) << text;
  }
}

TEST(WorkloadTest, CompileAndRunOnEngines) {
  store::TripleStore store;
  GraphGenOptions gopts;
  gopts.num_nodes = 2000;
  GenerateGraph(Schema::Bib(), gopts, store);
  QueryGenOptions options;
  options.shape = QueryShape::kChain;
  options.length = 3;
  options.workload_size = 10;
  store::GraphEngine bg(store);
  store::RelationalEngine pg(store);
  int compiled = 0;
  for (const GeneratedQuery& q : GenerateWorkload(Schema::Bib(), options)) {
    auto bgp = CompileForEngine(q, store, Schema::Bib());
    if (!bgp.has_value()) continue;
    ++compiled;
    store::EvalStats a = bg.Evaluate(*bgp, store::EvalMode::kAsk, 2s);
    store::EvalStats b = pg.Evaluate(*bgp, store::EvalMode::kAsk, 2s);
    if (!a.timed_out && !b.timed_out) {
      EXPECT_EQ(a.matched, b.matched) << q.sql;
    }
  }
  EXPECT_GT(compiled, 0);
}

}  // namespace
}  // namespace sparqlog::gmark
