// Property tests for the bit-parallel Levenshtein fast path: the Myers
// single-word/blocked variants and the scratch-based bounded variant
// must agree with the classic DP on arbitrary byte strings — including
// invalid UTF-8, embedded NULs, and lengths that cross the 64-char
// block boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "util/levenshtein.h"
#include "util/rng.h"

namespace sparqlog::util {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  size_t len = rng.Below(max_len + 1);
  std::string s(len, '\0');
  for (char& c : s) {
    if (rng.Chance(0.5)) {
      // Small alphabet: forces many equal characters (the interesting
      // DP paths) and frequent near-misses.
      c = static_cast<char>('a' + rng.Below(4));
    } else {
      // Raw bytes: NULs, invalid UTF-8, high bit set — all of it.
      c = static_cast<char>(rng.Below(256));
    }
  }
  return s;
}

/// A mutated copy of `s`: a few random edits, so pairs cover the whole
/// distance range from 0 to far apart.
std::string Mutate(Rng& rng, std::string s) {
  size_t edits = rng.Below(8);
  for (size_t e = 0; e < edits; ++e) {
    size_t pos = s.empty() ? 0 : rng.Below(s.size() + 1);
    switch (rng.Below(3)) {
      case 0:
        s.insert(pos, 1, static_cast<char>(rng.Below(256)));
        break;
      case 1:
        if (!s.empty() && pos < s.size()) s.erase(pos, 1);
        break;
      default:
        if (!s.empty() && pos < s.size()) {
          s[pos] = static_cast<char>(rng.Below(256));
        }
        break;
    }
  }
  return s;
}

TEST(MyersLevenshteinTest, KnownDistances) {
  EXPECT_EQ(MyersLevenshtein("", ""), 0u);
  EXPECT_EQ(MyersLevenshtein("abc", "abc"), 0u);
  EXPECT_EQ(MyersLevenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(MyersLevenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(MyersLevenshtein("", "abc"), 3u);
  EXPECT_EQ(MyersLevenshtein("abc", ""), 3u);
}

TEST(MyersLevenshteinTest, ExactlyAtTheWordBoundary) {
  // Patterns of length 63, 64, 65 exercise the single-word mask edge
  // and the switch to the blocked form.
  for (size_t len : {63u, 64u, 65u, 128u, 129u}) {
    std::string a(len, 'x');
    std::string b = a;
    b.back() = 'y';
    EXPECT_EQ(MyersLevenshtein(a, a), 0u) << "len=" << len;
    EXPECT_EQ(MyersLevenshtein(a, b), 1u) << "len=" << len;
    EXPECT_EQ(MyersLevenshtein(a, b + "zz"), 3u) << "len=" << len;
  }
}

TEST(MyersLevenshteinTest, AgreesWithClassicOnRandomByteStrings) {
  Rng rng(20260726);
  LevenshteinScratch scratch;
  for (int i = 0; i < 400; ++i) {
    // Lengths 0..300: both sides of the 64-char single-word limit and
    // several block counts.
    std::string a = RandomBytes(rng, 300);
    std::string b = rng.Chance(0.5) ? Mutate(rng, a) : RandomBytes(rng, 300);
    size_t expected = Levenshtein(a, b);
    EXPECT_EQ(MyersLevenshtein(a, b), expected)
        << "case " << i << " |a|=" << a.size() << " |b|=" << b.size();
    EXPECT_EQ(MyersLevenshtein(a, b, scratch), expected)
        << "scratch overload, case " << i;
  }
}

TEST(BoundedLevenshteinTest, ScratchOverloadMatchesAllocating) {
  Rng rng(99);
  LevenshteinScratch scratch;
  for (int i = 0; i < 300; ++i) {
    std::string a = RandomBytes(rng, 200);
    std::string b = rng.Chance(0.5) ? Mutate(rng, a) : RandomBytes(rng, 200);
    size_t max_dist = rng.Below(64);
    EXPECT_EQ(BoundedLevenshtein(a, b, max_dist, scratch),
              BoundedLevenshtein(a, b, max_dist))
        << "case " << i << " k=" << max_dist;
  }
}

TEST(BoundedLevenshteinTest, AllVariantsHonorTheContract) {
  // Contract: exact distance when it is <= k, k + 1 otherwise — for the
  // banded DP (both overloads) and the bit-parallel bounded variant.
  Rng rng(4242);
  LevenshteinScratch scratch;
  for (int i = 0; i < 300; ++i) {
    std::string a = RandomBytes(rng, 180);
    std::string b = rng.Chance(0.6) ? Mutate(rng, a) : RandomBytes(rng, 180);
    size_t exact = Levenshtein(a, b);
    for (size_t k : {size_t{0}, exact / 2, exact, exact + 1, exact + 10}) {
      size_t expected = std::min(exact, k + 1);
      EXPECT_EQ(BoundedLevenshtein(a, b, k), expected)
          << "banded, case " << i << " k=" << k;
      EXPECT_EQ(BoundedLevenshtein(a, b, k, scratch), expected)
          << "banded scratch, case " << i << " k=" << k;
      EXPECT_EQ(MyersBoundedLevenshtein(a, b, k, scratch), expected)
          << "myers bounded, case " << i << " k=" << k;
    }
  }
}

TEST(SimilarByLevenshteinTest, OverloadsAgree) {
  Rng rng(777);
  LevenshteinScratch scratch;
  for (int i = 0; i < 300; ++i) {
    std::string a = RandomBytes(rng, 150);
    std::string b = rng.Chance(0.7) ? Mutate(rng, a) : RandomBytes(rng, 150);
    for (double threshold : {0.0, 0.1, 0.25, 0.5, 1.0}) {
      bool expected = SimilarByLevenshtein(a, b, threshold);
      EXPECT_EQ(SimilarByLevenshtein(a, b, threshold, scratch), expected)
          << "case " << i << " t=" << threshold;
      // Cross-check against the definition itself.
      size_t longer = std::max(a.size(), b.size());
      bool by_definition =
          longer == 0 ||
          Levenshtein(a, b) <=
              static_cast<size_t>(threshold * static_cast<double>(longer));
      EXPECT_EQ(expected, by_definition) << "case " << i << " t=" << threshold;
    }
  }
}

TEST(SimilarByLevenshteinTest, EmptyStringsAreSimilar) {
  LevenshteinScratch scratch;
  EXPECT_TRUE(SimilarByLevenshtein("", "", 0.0));
  EXPECT_TRUE(SimilarByLevenshtein("", "", 0.25, scratch));
}

TEST(MyersLevenshteinTest, EmbeddedNulsAreOrdinaryBytes) {
  std::string a("a\0b\0c", 5);
  std::string b("a\0b\0d", 5);
  std::string c("abc", 3);
  EXPECT_EQ(MyersLevenshtein(a, a), 0u);
  EXPECT_EQ(MyersLevenshtein(a, b), 1u);
  EXPECT_EQ(MyersLevenshtein(a, c), Levenshtein(a, c));
}

TEST(MyersLevenshteinTest, ScratchIsReusableAcrossSizes) {
  // A scratch that served a large blocked call must still be valid for
  // smaller and single-word calls (state is re-initialized per call).
  LevenshteinScratch scratch;
  std::string big(300, 'q');
  std::string big2(280, 'q');
  EXPECT_EQ(MyersLevenshtein(big, big2, scratch), 20u);
  EXPECT_EQ(MyersLevenshtein("kitten", "sitting", scratch), 3u);
  std::string mid(70, 'z');
  EXPECT_EQ(MyersLevenshtein(mid, big, scratch), 300u);
  EXPECT_EQ(MyersLevenshtein("", "x", scratch), 1u);
}

}  // namespace
}  // namespace sparqlog::util
