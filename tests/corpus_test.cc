#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "sparql/serializer.h"
#include "util/strings.h"

namespace sparqlog::corpus {
namespace {

TEST(ProfileTest, ThirteenDatasets) {
  auto profiles = PaperProfiles();
  EXPECT_EQ(profiles.size(), 13u);
  uint64_t total = 0;
  for (const auto& p : profiles) total += p.total_queries;
  // Table 1 states a total of 180,653,910, but its thirteen rows sum to
  // 180,653,456 (the paper's total row is off by 454). Our profiles use
  // the per-dataset values verbatim.
  EXPECT_EQ(total, 180653456u);
}

TEST(ProfileTest, RatesAreProbabilities) {
  for (const auto& p : PaperProfiles()) {
    EXPECT_GT(p.total_queries, 0u) << p.name;
    EXPECT_GE(p.valid_rate, 0.0);
    EXPECT_LE(p.valid_rate, 1.0);
    EXPECT_GE(p.unique_rate, 0.0);
    EXPECT_LE(p.unique_rate, 1.0);
    double wsum = p.w_select + p.w_ask + p.w_describe + p.w_construct;
    EXPECT_NEAR(wsum, 1.0, 0.02) << p.name;
    double tsum = 0;
    for (double w : p.triples_weights) tsum += w;
    EXPECT_NEAR(tsum, 1.0, 0.06) << p.name;
  }
}

TEST(ProfileTest, LookupByName) {
  auto profiles = PaperProfiles();
  EXPECT_EQ(ProfileByName(profiles, "WikiData17").total_queries, 309u);
  EXPECT_EQ(ProfileByName(profiles, "BioP13").graph_rate, 0.80);
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(GeneratorTest, AllGeneratedQueriesAreValid) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  options.seed = 5;
  sparql::Parser parser;
  for (const auto& profile : profiles) {
    SyntheticLogGenerator gen(profile, options);
    for (int i = 0; i < 30; ++i) {
      std::string text = sparql::Serialize(gen.GenerateQuery());
      EXPECT_TRUE(parser.IsValid(text)) << profile.name << "\n" << text;
    }
  }
}

TEST(GeneratorTest, LogContainsNoiseAndMalformed) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  options.min_entries = 500;
  SyntheticLogGenerator gen(ProfileByName(profiles, "LGD13"), options);
  auto log = gen.GenerateLog();
  EXPECT_GE(log.size(), 500u);
  int noise = 0, queries = 0;
  for (const std::string& line : log) {
    if (line.rfind("query=", 0) == 0) {
      ++queries;
    } else {
      ++noise;
    }
  }
  EXPECT_GT(noise, 0);
  EXPECT_GT(queries, noise);
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  options.seed = 9;
  SyntheticLogGenerator a(profiles[0], options);
  SyntheticLogGenerator b(profiles[0], options);
  EXPECT_EQ(sparql::Serialize(a.GenerateQuery()),
            sparql::Serialize(b.GenerateQuery()));
}

// ---------------------------------------------------------------------------
// Ingestion pipeline (Table 1 semantics)
// ---------------------------------------------------------------------------

TEST(IngestTest, PipelineCounts) {
  LogIngestor ingestor;
  ingestor.ProcessLine("GET /nonsense HTTP/1.1");         // dropped
  ingestor.ProcessLine("query=SELECT%20*%20WHERE%20%7B%20%3Fs%20%3Fp%20"
                       "%3Fo%20%7D");                     // valid
  ingestor.ProcessLine("query=SELECT%20*%20WHERE%20%7B%20%3Fs%20%3Fp%20"
                       "%3Fo%20%7D");                     // duplicate
  ingestor.ProcessLine("query=NOT%20SPARQL");             // invalid
  const CorpusStats& stats = ingestor.stats();
  EXPECT_EQ(stats.total, 3u);
  EXPECT_EQ(stats.valid, 2u);
  EXPECT_EQ(stats.unique, 1u);
}

TEST(IngestTest, UpdateRequestsAreInvalid) {
  LogIngestor ingestor;
  ingestor.ProcessLine("query=INSERT%20DATA%20%7B%20%3Ca%3E%20%3Cb%3E%20"
                       "%3Cc%3E%20%7D");
  EXPECT_EQ(ingestor.stats().total, 1u);
  EXPECT_EQ(ingestor.stats().valid, 0u);
}

TEST(IngestTest, SinksReceiveQueries) {
  LogIngestor ingestor;
  int unique_count = 0, valid_count = 0;
  ingestor.set_unique_sink([&](const sparql::Query&) { ++unique_count; });
  ingestor.set_valid_sink([&](const sparql::Query&) { ++valid_count; });
  std::string line =
      "query=" + util::PercentEncode("ASK { <a> <b> <c> }");
  ingestor.ProcessLine(line);
  ingestor.ProcessLine(line);
  EXPECT_EQ(unique_count, 1);
  EXPECT_EQ(valid_count, 2);
}

TEST(IngestTest, PlusDecodesAsSpace) {
  LogIngestor ingestor;
  // '+' is the form-encoding of space; an encoded "%2B" stays a plus.
  ingestor.ProcessLine("query=SELECT+*+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D");
  EXPECT_EQ(ingestor.stats().total, 1u);
  EXPECT_EQ(ingestor.stats().valid, 1u);
}

TEST(IngestTest, TruncatedEscapesCountAsMalformed) {
  LogIngestor ingestor;
  // Truncated '%' escapes pass through verbatim; the garbled text fails
  // the parser and must be counted as Total-but-not-Valid, not dropped.
  ingestor.ProcessLine("query=SELECT%20%7");
  ingestor.ProcessLine("query=SELECT%20%");
  EXPECT_EQ(ingestor.stats().total, 2u);
  EXPECT_EQ(ingestor.stats().valid, 0u);
}

TEST(IngestTest, EmptyQueryValueIsMalformed) {
  LogIngestor ingestor;
  ingestor.ProcessLine("query=");
  EXPECT_EQ(ingestor.stats().total, 1u);
  EXPECT_EQ(ingestor.stats().valid, 0u);
}

TEST(IngestTest, TrailingCgiParametersAreStripped) {
  LogIngestor ingestor;
  ingestor.ProcessLine(
      "query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }") +
      "&format=json&timeout=30");
  EXPECT_EQ(ingestor.stats().total, 1u);
  EXPECT_EQ(ingestor.stats().valid, 1u);
  // An *encoded* '&' (%26) is query text, not a parameter separator:
  // here it garbles the query, which must still count toward Total.
  ingestor.ProcessLine("query=SELECT%20%26%20nonsense");
  EXPECT_EQ(ingestor.stats().total, 2u);
  EXPECT_EQ(ingestor.stats().valid, 1u);
}

TEST(IngestTest, ParsedLineMatchesProcessLine) {
  // The parse/ingest split used by the parallel pipeline must agree
  // with the one-shot serial entry point.
  sparql::Parser parser;
  LogIngestor split, serial;
  std::vector<std::string> lines = {
      "GET /noise HTTP/1.1",
      "query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }"),
      "query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }"),
      "query=NOT%20SPARQL",
  };
  for (const std::string& line : lines) {
    ParsedLine parsed = ParseLogLine(parser, line);
    split.Ingest(parsed);
    serial.ProcessLine(line);
    EXPECT_EQ(parsed.is_query, line.rfind("query=", 0) == 0);
  }
  EXPECT_EQ(split.stats().total, serial.stats().total);
  EXPECT_EQ(split.stats().valid, serial.stats().valid);
  EXPECT_EQ(split.stats().unique, serial.stats().unique);
}

TEST(IngestTest, WhitespaceVariantsAreDuplicates) {
  // Dedup works on the canonical AST serialization, so formatting
  // variants of the same query collapse.
  LogIngestor ingestor;
  ingestor.ProcessLine(
      "query=" + util::PercentEncode("SELECT * WHERE { ?s ?p ?o }"));
  ingestor.ProcessLine(
      "query=" + util::PercentEncode("SELECT *\nWHERE {\n  ?s ?p ?o .\n}"));
  EXPECT_EQ(ingestor.stats().valid, 2u);
  EXPECT_EQ(ingestor.stats().unique, 1u);
}

TEST(IngestTest, EndToEndStats) {
  auto profiles = PaperProfiles();
  const DatasetProfile& profile = ProfileByName(profiles, "DBpedia13");
  GeneratorOptions options;
  options.min_entries = 1500;
  options.scale = 0;  // force min_entries
  SyntheticLogGenerator gen(profile, options);
  LogIngestor ingestor;
  ingestor.ProcessLog(gen.GenerateLog());
  const CorpusStats& stats = ingestor.stats();
  EXPECT_GE(stats.total, 1500u);
  // Valid / Total should approximate the profile's valid_rate.
  double valid_rate = static_cast<double>(stats.valid) /
                      static_cast<double>(stats.total);
  EXPECT_NEAR(valid_rate, profile.valid_rate, 0.05);
  // Unique / Valid approximates unique_rate (serializer collisions can
  // only lower it slightly).
  double unique_rate = static_cast<double>(stats.unique) /
                       static_cast<double>(stats.valid);
  EXPECT_NEAR(unique_rate, profile.unique_rate, 0.08);
}

// ---------------------------------------------------------------------------
// Analyzer calibration
// ---------------------------------------------------------------------------

TEST(AnalyzerTest, FormMixMatchesProfile) {
  auto profiles = PaperProfiles();
  const DatasetProfile& profile = ProfileByName(profiles, "BioMed13");
  GeneratorOptions options;
  SyntheticLogGenerator gen(profile, options);
  CorpusAnalyzer analyzer;
  for (int i = 0; i < 2000; ++i) {
    analyzer.AddQuery(gen.GenerateQuery(), profile.name);
  }
  const KeywordCounts& kw = analyzer.keywords();
  // BioMed13: ~85% Describe queries (Section 4.1).
  double describe_share = static_cast<double>(kw.describe) /
                          static_cast<double>(kw.total);
  EXPECT_NEAR(describe_share, 0.848, 0.05);
}

TEST(AnalyzerTest, AvgTriplesInCalibrationBand) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  for (const char* name : {"BioP13", "SWDF13", "BritM14"}) {
    const DatasetProfile& profile = ProfileByName(profiles, name);
    SyntheticLogGenerator gen(profile, options);
    CorpusAnalyzer analyzer;
    for (int i = 0; i < 1500; ++i) {
      analyzer.AddQuery(gen.GenerateQuery(), profile.name);
    }
    double avg = analyzer.per_dataset().at(profile.name).AvgTriples();
    EXPECT_NEAR(avg, profile.avg_triples, profile.avg_triples * 0.45)
        << name;
  }
}

TEST(AnalyzerTest, ShapesArePredominantlyAcyclic) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  const DatasetProfile& profile = ProfileByName(profiles, "DBpedia14");
  SyntheticLogGenerator gen(profile, options);
  CorpusAnalyzer analyzer;
  for (int i = 0; i < 3000; ++i) {
    analyzer.AddQuery(gen.GenerateQuery(), profile.name);
  }
  const ShapeCounts& cq = analyzer.cq_shapes();
  ASSERT_GT(cq.total, 0u);
  // Table 4: >99% of CQs are forests; flower sets reach ~100%.
  EXPECT_GT(static_cast<double>(cq.forest) / cq.total, 0.97);
  EXPECT_GT(static_cast<double>(cq.flower_set) / cq.total, 0.99);
  EXPECT_EQ(cq.treewidth_le2 + cq.treewidth_3 + cq.treewidth_gt3,
            cq.total);
  EXPECT_EQ(cq.treewidth_gt3, 0u);
}

TEST(AnalyzerTest, FragmentSubsumption) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  SyntheticLogGenerator gen(ProfileByName(profiles, "DBpedia15"), options);
  CorpusAnalyzer analyzer;
  for (int i = 0; i < 2000; ++i) {
    analyzer.AddQuery(gen.GenerateQuery(), "DBpedia15");
  }
  const FragmentStats& fs = analyzer.fragments();
  EXPECT_LE(fs.cq, fs.cpf);
  EXPECT_LE(fs.cqf, fs.cpf);
  EXPECT_LE(fs.cpf, fs.aof + fs.cqf);  // CPF subset of AOF
  EXPECT_LE(fs.cqof, fs.aof);
  EXPECT_LE(fs.well_designed, fs.aof);
  EXPECT_GT(fs.aof, 0u);
}

TEST(AnalyzerTest, PathTypeTableCovered) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  // WikiData17 has the highest property-path rate (29.87%).
  SyntheticLogGenerator gen(ProfileByName(profiles, "WikiData17"), options);
  CorpusAnalyzer analyzer;
  for (int i = 0; i < 4000; ++i) {
    analyzer.AddQuery(gen.GenerateQuery(), "WikiData17");
  }
  const PathStats& ps = analyzer.paths();
  EXPECT_GT(ps.total_paths, 0u);
  // Star-of-alternation and plain star dominate (Table 5).
  EXPECT_GT(ps.by_type.count(paths::PathType::kStarOfAlt), 0u);
  // Hardly anything is outside C_tract.
  EXPECT_LE(ps.not_ctract, ps.navigational / 50 + 1);
}

TEST(AnalyzerTest, ProjectionRateReasonable) {
  auto profiles = PaperProfiles();
  GeneratorOptions options;
  SyntheticLogGenerator gen(ProfileByName(profiles, "DBpedia14"), options);
  CorpusAnalyzer analyzer;
  for (int i = 0; i < 3000; ++i) {
    analyzer.AddQuery(gen.GenerateQuery(), "DBpedia14");
  }
  const ProjectionStats& ps = analyzer.projection();
  double rate = static_cast<double>(ps.with_projection) /
                static_cast<double>(ps.total);
  // Paper: ~15% overall.
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.4);
}

}  // namespace
}  // namespace sparqlog::corpus
