#include <gtest/gtest.h>

#include "analysis/features.h"
#include "analysis/operator_set.h"
#include "analysis/projection.h"
#include "sparql/parser.h"

namespace sparqlog::analysis {
namespace {

using sparql::ParseQuery;
using sparql::Query;
using sparql::QueryForm;

QueryFeatures Features(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << text;
  return ExtractFeatures(r.value());
}

// ---------------------------------------------------------------------------
// Keyword flags (Table 2)
// ---------------------------------------------------------------------------

TEST(FeaturesTest, FormDetection) {
  EXPECT_EQ(Features("SELECT * WHERE { ?s ?p ?o }").form,
            QueryForm::kSelect);
  EXPECT_EQ(Features("ASK { ?s ?p ?o }").form, QueryForm::kAsk);
  EXPECT_EQ(Features("DESCRIBE <r>").form, QueryForm::kDescribe);
  EXPECT_EQ(Features("CONSTRUCT WHERE { ?s <p> ?o }").form,
            QueryForm::kConstruct);
}

TEST(FeaturesTest, ModifierFlags) {
  QueryFeatures f = Features(
      "SELECT DISTINCT ?x WHERE { ?x <p> ?y } ORDER BY ?x LIMIT 2 OFFSET 1");
  EXPECT_TRUE(f.distinct);
  EXPECT_TRUE(f.has_limit);
  EXPECT_TRUE(f.has_offset);
  EXPECT_TRUE(f.has_order_by);
  EXPECT_FALSE(f.has_group_by);
}

TEST(FeaturesTest, OperatorFlags) {
  QueryFeatures f = Features(
      "SELECT * WHERE { ?x <p> ?y . ?y <q> ?z OPTIONAL { ?x <r> ?w } "
      "FILTER(?z > 1) { ?a <s> ?b } UNION { ?a <t> ?b } "
      "GRAPH ?g { ?g <u> ?h } MINUS { ?x <v> <bad> } }");
  EXPECT_TRUE(f.conj);
  EXPECT_TRUE(f.optional);
  EXPECT_TRUE(f.filter);
  EXPECT_TRUE(f.union_);
  EXPECT_TRUE(f.graph);
  EXPECT_TRUE(f.minus);
}

TEST(FeaturesTest, SingleTripleHasNoAnd) {
  QueryFeatures f = Features("SELECT * WHERE { ?x <p> ?y }");
  EXPECT_FALSE(f.conj);
  EXPECT_EQ(f.opset, 0);
}

TEST(FeaturesTest, OptionalAloneIsNotAnd) {
  // {t OPTIONAL {t'}} translates to LeftJoin, not Join.
  QueryFeatures f = Features(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } }");
  EXPECT_FALSE(f.conj);
  EXPECT_TRUE(f.optional);
  EXPECT_EQ(f.opset, QueryFeatures::kOpO);
}

TEST(FeaturesTest, ExistsVsNotExists) {
  QueryFeatures f = Features(
      "SELECT * WHERE { ?x <p> ?y FILTER EXISTS { ?x <q> ?z } }");
  EXPECT_TRUE(f.exists);
  EXPECT_FALSE(f.not_exists);
  f = Features(
      "SELECT * WHERE { ?x <p> ?y FILTER NOT EXISTS { ?x <q> ?z } }");
  EXPECT_TRUE(f.not_exists);
}

TEST(FeaturesTest, AggregateFlags) {
  QueryFeatures f = Features(
      "SELECT (COUNT(*) AS ?c) (MAX(?v) AS ?m) (SUM(?v) AS ?s) WHERE "
      "{ ?x <p> ?v } GROUP BY ?x");
  EXPECT_TRUE(f.agg_count);
  EXPECT_TRUE(f.agg_max);
  EXPECT_TRUE(f.agg_sum);
  EXPECT_FALSE(f.agg_avg);
  EXPECT_TRUE(f.has_group_by);
}

TEST(FeaturesTest, TripleCountIncludesSubqueriesAndSugar) {
  QueryFeatures f = Features(
      "SELECT * WHERE { ?x <p> ?a , ?b { SELECT ?y WHERE { ?y <q> ?z . "
      "?z <r> ?w } } }");
  EXPECT_EQ(f.num_triples, 4);
}

TEST(FeaturesTest, PropertyPathFlags) {
  QueryFeatures f = Features("SELECT * WHERE { ?x <p>/<q> ?y }");
  EXPECT_TRUE(f.property_path);
  EXPECT_TRUE(f.navigational_path);
  f = Features("SELECT * WHERE { ?x !<p> ?y }");
  EXPECT_TRUE(f.property_path);
  EXPECT_FALSE(f.navigational_path);  // !a is trivial (Section 7)
}

TEST(FeaturesTest, VarPredicateFlag) {
  EXPECT_TRUE(Features("SELECT * WHERE { ?x ?p ?y }").var_predicate);
  EXPECT_FALSE(Features("SELECT * WHERE { ?x <p> ?y }").var_predicate);
}

// ---------------------------------------------------------------------------
// Operator sets (Table 3)
// ---------------------------------------------------------------------------

TEST(OperatorSetTest, ExactSets) {
  EXPECT_EQ(Features("SELECT * WHERE { ?x <p> ?y }").opset, 0);
  EXPECT_EQ(Features("SELECT * WHERE { ?x <p> ?y FILTER(?y > 1) }").opset,
            QueryFeatures::kOpF);
  EXPECT_EQ(Features("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }").opset,
            QueryFeatures::kOpA);
  EXPECT_EQ(
      Features("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z FILTER(?z != 1) }")
          .opset,
      QueryFeatures::kOpA | QueryFeatures::kOpF);
  EXPECT_EQ(
      Features("SELECT * WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } }").opset,
      QueryFeatures::kOpU);
  EXPECT_EQ(Features("SELECT * WHERE { GRAPH <g> { ?x <p> ?y } }").opset,
            QueryFeatures::kOpG);
}

TEST(OperatorSetTest, OtherFeaturesDetected) {
  EXPECT_TRUE(Features("SELECT * WHERE { ?x <p>* ?y }").opset_other);
  EXPECT_TRUE(Features(
      "SELECT * WHERE { ?x <p> ?y MINUS { ?x <q> <b> } }").opset_other);
  EXPECT_TRUE(Features(
      "SELECT * WHERE { ?x <p> ?y BIND(1 AS ?one) }").opset_other);
  EXPECT_TRUE(Features(
      "SELECT * WHERE { { SELECT ?x WHERE { ?x <p> ?y } } }").opset_other);
  EXPECT_FALSE(Features("SELECT * WHERE { ?x <p> ?y }").opset_other);
}

TEST(OperatorSetTest, DistributionAggregation) {
  OperatorSetDistribution dist;
  dist.Add(Features("SELECT * WHERE { ?x <p> ?y }"));
  dist.Add(Features("SELECT * WHERE { ?x <p> ?y FILTER(?y > 1) }"));
  dist.Add(Features("SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }"));
  dist.Add(Features(
      "SELECT * WHERE { ?x <p> ?y . ?y <q> ?z FILTER(?z != 1) }"));
  dist.Add(Features("DESCRIBE <r>"));  // not Select/Ask: ignored
  EXPECT_EQ(dist.total, 4u);
  EXPECT_EQ(dist.CpfSubtotal(), 4u);
  EXPECT_EQ(dist.Exact(0), 1u);
  EXPECT_EQ(dist.Exact(QueryFeatures::kOpF), 1u);
}

TEST(OperatorSetTest, CpfPlusComputation) {
  OperatorSetDistribution dist;
  dist.Add(Features(
      "SELECT * WHERE { ?x <p> ?y OPTIONAL { ?x <q> ?z } }"));  // {O}
  dist.Add(Features(
      "SELECT * WHERE { ?x <p> ?y . ?y <q> ?z OPTIONAL { ?x <r> ?w } "
      "FILTER(?y != 2) }"));  // {A, O, F}
  EXPECT_EQ(dist.CpfPlus(QueryFeatures::kOpO), 2u);
  EXPECT_EQ(dist.CpfSubtotal(), 0u);
}

TEST(OperatorSetTest, NamesMatchPaperNotation) {
  EXPECT_EQ(OperatorSetName(0), "none");
  EXPECT_EQ(OperatorSetName(QueryFeatures::kOpF), "F");
  EXPECT_EQ(OperatorSetName(QueryFeatures::kOpA | QueryFeatures::kOpO |
                            QueryFeatures::kOpU | QueryFeatures::kOpF),
            "A, O, U, F");
}

// ---------------------------------------------------------------------------
// Projection (Section 4.4)
// ---------------------------------------------------------------------------

TEST(ProjectionTest, SelectStarNeverProjects) {
  EXPECT_EQ(Features("SELECT * WHERE { ?x <p> ?y }").projection,
            ProjectionUse::kNo);
}

TEST(ProjectionTest, FullSelectionDoesNotProject) {
  EXPECT_EQ(Features("SELECT ?x ?y WHERE { ?x <p> ?y }").projection,
            ProjectionUse::kNo);
}

TEST(ProjectionTest, DroppedVariableProjects) {
  EXPECT_EQ(Features("SELECT ?x WHERE { ?x <p> ?y }").projection,
            ProjectionUse::kYes);
}

TEST(ProjectionTest, FilterVariablesAreNotInScope) {
  // ?z only occurs in a FILTER: it is not an in-scope variable, so
  // selecting ?x ?y is complete.
  EXPECT_EQ(Features("SELECT ?x ?y WHERE { ?x <p> ?y FILTER(?y > 1) }")
                .projection,
            ProjectionUse::kNo);
}

TEST(ProjectionTest, AskWithVariablesProjects) {
  EXPECT_EQ(Features("ASK { ?x <p> ?y }").projection, ProjectionUse::kYes);
}

TEST(ProjectionTest, ConcreteAskDoesNotProject) {
  // Most Ask queries test a concrete triple (the paper's observation).
  EXPECT_EQ(Features("ASK { <s> <p> <o> }").projection, ProjectionUse::kNo);
}

TEST(ProjectionTest, BindMakesIndeterminate) {
  EXPECT_EQ(Features(
                "SELECT ?x WHERE { ?x <p> ?y BIND(STR(?y) AS ?s) }")
                .projection,
            ProjectionUse::kIndeterminate);
  EXPECT_EQ(Features("SELECT (1 AS ?one) WHERE { ?x <p> ?y }").projection,
            ProjectionUse::kIndeterminate);
}

TEST(ProjectionTest, DescribeAndConstructDoNotProject) {
  EXPECT_EQ(Features("DESCRIBE ?x WHERE { ?x <p> ?y }").projection,
            ProjectionUse::kNo);
  EXPECT_EQ(Features("CONSTRUCT WHERE { ?s <p> ?o }").projection,
            ProjectionUse::kNo);
}

TEST(ProjectionTest, MinusBodyNotInScope) {
  // Variables bound only inside MINUS are not visible to projection.
  EXPECT_EQ(Features(
                "SELECT ?x ?y WHERE { ?x <p> ?y MINUS { ?x <q> ?z } }")
                .projection,
            ProjectionUse::kNo);
}

TEST(ProjectionTest, SubSelectScoping) {
  // Only the subquery's selected variables are in scope outside.
  EXPECT_EQ(Features("SELECT ?y WHERE { { SELECT ?y WHERE "
                     "{ ?y <q> ?z } } }")
                .projection,
            ProjectionUse::kNo);
  EXPECT_EQ(Features("SELECT ?y WHERE { ?y <p> ?w { SELECT ?y WHERE "
                     "{ ?y <q> ?z } } }")
                .projection,
            ProjectionUse::kYes);  // drops ?w
}

}  // namespace
}  // namespace sparqlog::analysis
