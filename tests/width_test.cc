#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "sparql/parser.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::width {
namespace {

using graph::Graph;
using graph::Hypergraph;

Graph Path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraph(int n) {
  Graph g = Path(n);
  g.AddEdge(n - 1, 0);
  return g;
}

Graph Complete(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

Graph GridGraph(int rows, int cols) {
  Graph g(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int v = r * cols + c;
      if (c + 1 < cols) g.AddEdge(v, v + 1);
      if (r + 1 < rows) g.AddEdge(v, v + cols);
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Treewidth
// ---------------------------------------------------------------------------

TEST(TreewidthTest, TrivialGraphs) {
  EXPECT_EQ(Treewidth(Graph(0)).width, 0);
  EXPECT_EQ(Treewidth(Graph(3)).width, 0);  // isolated nodes
  EXPECT_EQ(Treewidth(Path(2)).width, 1);
}

TEST(TreewidthTest, ForestsHaveWidthOne) {
  EXPECT_EQ(Treewidth(Path(10)).width, 1);
  Graph forest(7);
  forest.AddEdge(0, 1);
  forest.AddEdge(1, 2);
  forest.AddEdge(3, 4);
  forest.AddEdge(4, 5);
  forest.AddEdge(4, 6);
  EXPECT_EQ(Treewidth(forest).width, 1);
}

class CycleWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleWidthTest, CyclesHaveWidthTwo) {
  EXPECT_EQ(Treewidth(CycleGraph(GetParam())).width, 2);
  EXPECT_TRUE(TreewidthAtMost2(CycleGraph(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Lengths, CycleWidthTest,
                         ::testing::Values(3, 4, 5, 6, 10, 25));

TEST(TreewidthTest, CompleteGraphs) {
  // tw(K_n) = n - 1.
  EXPECT_EQ(Treewidth(Complete(4)).width, 3);
  EXPECT_EQ(Treewidth(Complete(5)).width, 4);
  EXPECT_EQ(Treewidth(Complete(6)).width, 5);
  EXPECT_FALSE(TreewidthAtMost2(Complete(4)));
}

TEST(TreewidthTest, Grids) {
  // tw(n x m grid) = min(n, m) for grids (n, m >= 2).
  EXPECT_EQ(Treewidth(GridGraph(2, 5)).width, 2);
  EXPECT_EQ(Treewidth(GridGraph(3, 3)).width, 3);
  EXPECT_EQ(Treewidth(GridGraph(3, 4)).width, 3);
  EXPECT_EQ(Treewidth(GridGraph(4, 4)).width, 4);
}

TEST(TreewidthTest, SeriesParallelIsTwo) {
  // Theta graph: two branch nodes, three parallel paths.
  Graph g(5);
  g.AddEdge(0, 2);
  g.AddEdge(2, 1);
  g.AddEdge(0, 3);
  g.AddEdge(3, 1);
  g.AddEdge(0, 4);
  g.AddEdge(4, 1);
  EXPECT_EQ(Treewidth(g).width, 2);
}

TEST(TreewidthTest, PaperFigure7StyleQuery) {
  // The Figure 7 DBpedia query joins ?subject and ?object through three
  // shared variables (K_{2,3} plus chords). The pure K_{2,3}-plus-edge
  // variant has width 2; adding one chord between the shared variables
  // creates a K4 minor and pushes it to 3 — this checks both sides of
  // the boundary the paper's one width-3 query sits on.
  auto r = sparql::ParseQuery(
      "SELECT * WHERE { ?subject <nationality> ?n . ?subject <birthPlace> "
      "?b . ?subject <genre> ?g . ?object <nationality> ?n . "
      "?object <birthPlace> ?b . ?object <genre> ?g . "
      "?subject <x> ?object }");
  ASSERT_TRUE(r.ok());
  graph::CanonicalGraph cg = graph::BuildCanonicalGraph(r.value().where);
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(Treewidth(cg.graph).width, 2);

  auto r3 = sparql::ParseQuery(
      "SELECT * WHERE { ?subject <nationality> ?n . ?subject <birthPlace> "
      "?b . ?subject <genre> ?g . ?object <nationality> ?n . "
      "?object <birthPlace> ?b . ?object <genre> ?g . "
      "?subject <x> ?object . ?n <y> ?b }");
  ASSERT_TRUE(r3.ok());
  graph::CanonicalGraph cg3 = graph::BuildCanonicalGraph(r3.value().where);
  ASSERT_TRUE(cg3.valid);
  EXPECT_EQ(Treewidth(cg3.graph).width, 3);
}

TEST(TreewidthTest, SelfLoopsIgnored) {
  Graph g = Path(3);
  g.AddEdge(1, 1);
  EXPECT_EQ(Treewidth(g).width, 1);
}

TEST(TreewidthTest, DisconnectedMax) {
  Graph g(8);
  // K4 plus a path.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) g.AddEdge(i, j);
  }
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 7);
  EXPECT_EQ(Treewidth(g).width, 3);
}

TEST(TreewidthTest, PetersenGraph) {
  // The Petersen graph has treewidth 4.
  Graph g(10);
  for (int i = 0; i < 5; ++i) {
    g.AddEdge(i, (i + 1) % 5);        // outer cycle
    g.AddEdge(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    g.AddEdge(i, 5 + i);              // spokes
  }
  EXPECT_EQ(Treewidth(g).width, 4);
}

// ---------------------------------------------------------------------------
// Generalized hypertree width
// ---------------------------------------------------------------------------

TEST(GhwTest, EmptyAndSingleEdge) {
  Hypergraph hg;
  EXPECT_EQ(GeneralizedHypertreeWidth(hg).width, 0);
  hg.AddEdge({0, 1});
  GhwResult r = GeneralizedHypertreeWidth(hg);
  EXPECT_EQ(r.width, 1);
  EXPECT_EQ(r.decomposition_nodes, 1);
}

TEST(GhwTest, ChainIsWidthOneWithEdgeCountNodes) {
  Hypergraph hg;
  hg.AddEdge({0, 1});
  hg.AddEdge({1, 2});
  hg.AddEdge({2, 3});
  GhwResult r = GeneralizedHypertreeWidth(hg);
  EXPECT_EQ(r.width, 1);
  // Section 6.2: for width-1 queries the number of decomposition nodes
  // corresponds to the number of edges.
  EXPECT_EQ(r.decomposition_nodes, 3);
}

TEST(GhwTest, TriangleIsWidthTwo) {
  Hypergraph hg;
  hg.AddEdge({0, 1});
  hg.AddEdge({1, 2});
  hg.AddEdge({0, 2});
  GhwResult r = GeneralizedHypertreeWidth(hg);
  EXPECT_EQ(r.width, 2);
  EXPECT_TRUE(r.exact);
}

class CycleGhwTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleGhwTest, CyclesHaveGhwTwo) {
  int n = GetParam();
  Hypergraph hg;
  for (int i = 0; i < n; ++i) hg.AddEdge({i, (i + 1) % n});
  EXPECT_EQ(GeneralizedHypertreeWidth(hg).width, 2);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CycleGhwTest,
                         ::testing::Values(3, 4, 5, 6, 8));

TEST(GhwTest, GuardedTriangleIsWidthOne) {
  Hypergraph hg;
  hg.AddEdge({0, 1});
  hg.AddEdge({1, 2});
  hg.AddEdge({0, 2});
  hg.AddEdge({0, 1, 2});
  EXPECT_EQ(GeneralizedHypertreeWidth(hg).width, 1);
}

TEST(GhwTest, TwoDisjointTrianglesWidthTwo) {
  Hypergraph hg;
  hg.AddEdge({0, 1});
  hg.AddEdge({1, 2});
  hg.AddEdge({0, 2});
  hg.AddEdge({3, 4});
  hg.AddEdge({4, 5});
  hg.AddEdge({3, 5});
  EXPECT_EQ(GeneralizedHypertreeWidth(hg).width, 2);
}

TEST(GhwTest, GhwAtMostTreewidthBoundOnCliques) {
  // K5 as a graph hypergraph: every edge binary. ghw(K5) = ceil(5/2)...
  // at least 2; our solver should find a small width <= 3.
  Hypergraph hg;
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) hg.AddEdge({i, j});
  }
  GhwResult r = GeneralizedHypertreeWidth(hg);
  EXPECT_GE(r.width, 2);
  EXPECT_LE(r.width, 3);
}

TEST(GhwTest, TriplePatternHypergraphFromQuery) {
  // Example 5.1 second query: hypergraph cyclic, ghw 2.
  auto r = sparql::ParseQuery(
      "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}");
  ASSERT_TRUE(r.ok());
  std::vector<const sparql::TriplePattern*> triples;
  std::vector<const sparql::Expr*> filters;
  graph::CollectTriplesAndFilters(r.value().where, triples, filters);
  Hypergraph hg = graph::BuildCanonicalHypergraph(triples, filters);
  EXPECT_EQ(GeneralizedHypertreeWidth(hg).width, 2);
}

TEST(GhwTest, GhwNeverExceedsTreewidthPlusOneOnGraphs) {
  // Sanity property: for binary hypergraphs, ghw <= tw + 1 (bags of a
  // tree decomposition can be covered by that many edges... we check the
  // weaker ghw <= tw + 1 empirically on small cases).
  for (int n : {3, 4, 5}) {
    Graph g = Complete(n);
    Hypergraph hg;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) hg.AddEdge({i, j});
    }
    int tw = Treewidth(g).width;
    int ghw = GeneralizedHypertreeWidth(hg, /*max_k=*/4).width;
    EXPECT_LE(ghw, tw + 1);
  }
}

}  // namespace
}  // namespace sparqlog::width
