#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/levenshtein.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/result.h"
#include "util/strings.h"
#include "util/table.h"

namespace sparqlog::util {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

TEST(StringsTest, AsciiCase) {
  EXPECT_EQ(AsciiLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(EqualsIgnoreCase("OPTIONAL", "optional"));
  EXPECT_FALSE(EqualsIgnoreCase("OPTIONAL", "optionally"));
  EXPECT_TRUE(StartsWithIgnoreCase("select * where", "SELECT"));
  EXPECT_FALSE(StartsWithIgnoreCase("sel", "SELECT"));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, SplitAndJoin) {
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringsTest, PercentRoundTrip) {
  std::string original = "SELECT ?x WHERE { ?x a <http://ex/C> . } # 100%";
  std::string encoded = PercentEncode(original);
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(PercentDecode(encoded), original);
}

TEST(StringsTest, PercentDecodeMalformed) {
  EXPECT_EQ(PercentDecode("%zz"), "%zz");
  EXPECT_EQ(PercentDecode("abc%2"), "abc%2");
  EXPECT_EQ(PercentDecode("a+b"), "a b");
}

TEST(StringsTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(180653910), "180,653,910");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringsTest, Percent) {
  EXPECT_EQ(Percent(8797, 10000), "87.97%");
  EXPECT_EQ(Percent(1, 0), "0.00%");
}

// ---------------------------------------------------------------------------
// Levenshtein
// ---------------------------------------------------------------------------

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(Levenshtein("", ""), 0u);
  EXPECT_EQ(Levenshtein("abc", "abc"), 0u);
  EXPECT_EQ(Levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(Levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(Levenshtein("", "abc"), 3u);
}

TEST(LevenshteinTest, BoundedAgreesWithExactWithinBudget) {
  Rng rng(99);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a, b;
    size_t la = rng.Below(20), lb = rng.Below(20);
    for (size_t i = 0; i < la; ++i) a += alphabet[rng.Below(4)];
    for (size_t i = 0; i < lb; ++i) b += alphabet[rng.Below(4)];
    size_t exact = Levenshtein(a, b);
    for (size_t budget : {0u, 1u, 3u, 10u, 40u}) {
      size_t bounded = BoundedLevenshtein(a, b, budget);
      if (exact <= budget) {
        EXPECT_EQ(bounded, exact) << a << " vs " << b;
      } else {
        EXPECT_GT(bounded, budget) << a << " vs " << b;
      }
    }
  }
}

TEST(LevenshteinTest, SymmetryProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a, b;
    for (size_t i = 0; i < rng.Below(15); ++i) {
      a += static_cast<char>('a' + rng.Below(3));
    }
    for (size_t i = 0; i < rng.Below(15); ++i) {
      b += static_cast<char>('a' + rng.Below(3));
    }
    EXPECT_EQ(Levenshtein(a, b), Levenshtein(b, a));
  }
}

TEST(LevenshteinTest, TriangleInequality) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      for (size_t i = 0; i < rng.Below(12); ++i) {
        str += static_cast<char>('a' + rng.Below(3));
      }
    }
    size_t ab = Levenshtein(s[0], s[1]);
    size_t bc = Levenshtein(s[1], s[2]);
    size_t ac = Levenshtein(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

TEST(LevenshteinTest, SimilarityThreshold) {
  // 25% of the longer string, as in the paper's streak analysis.
  EXPECT_TRUE(SimilarByLevenshtein("aaaa", "aaaa", 0.25));
  EXPECT_TRUE(SimilarByLevenshtein("aaaaaaab", "aaaaaaaa", 0.25));  // 1/8
  EXPECT_FALSE(SimilarByLevenshtein("abcd", "wxyz", 0.25));
  EXPECT_TRUE(SimilarByLevenshtein("", "", 0.25));
}

TEST(LevenshteinTest, LengthGapShortCircuit) {
  std::string small(5, 'a');
  std::string large(500, 'a');
  EXPECT_GT(BoundedLevenshtein(small, large, 10), 10u);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, WeightedRespectsZeros) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.Weighted(weights), 1u);
}

TEST(RngTest, WeightedDistribution) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Weighted(weights)];
  double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(5);
  int low = 0, total = 5000;
  for (int i = 0; i < total; ++i) {
    uint64_t v = rng.Zipf(1000, 1.5);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v <= 10) ++low;
  }
  // Zipf(1.5): the first ten ranks carry most of the mass.
  EXPECT_GT(low, total / 2);
}

// ---------------------------------------------------------------------------
// Table / Histogram
// ---------------------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  Table t({"A", "LongHeader"});
  t.AddRow({"xx", "1"});
  t.AddSeparator();
  t.AddRow({"y", "22"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(HistogramTest, BucketsAndOverflow) {
  BucketHistogram h(11);
  h.Add(0);
  h.Add(1);
  h.Add(1);
  h.Add(11);
  h.Add(12);
  h.Add(229);
  EXPECT_EQ(h.Count(0), 1u);
  EXPECT_EQ(h.Count(1), 2u);
  EXPECT_EQ(h.Count(11), 1u);
  EXPECT_EQ(h.Overflow(), 2u);
  EXPECT_EQ(h.Total(), 6u);
}

TEST(HistogramTest, NegativeClampsToZero) {
  BucketHistogram h(5);
  h.Add(-3);
  EXPECT_EQ(h.Count(0), 1u);
}

TEST(HistogramTest, ValuesExactlyOnBucketLimits) {
  // The edge buckets are where an off-by-one would hide: the last
  // direct value must not spill into overflow, and the first value
  // past it must not land in a direct bucket.
  BucketHistogram h(10);
  h.Add(9);
  h.Add(10);  // == max_direct: last direct bucket
  h.Add(11);  // first overflow value
  EXPECT_EQ(h.Count(9), 1u);
  EXPECT_EQ(h.Count(10), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.Total(), 3u);

  BucketHistogram one(1);
  one.Add(0);
  one.Add(1);
  one.Add(2);
  EXPECT_EQ(one.Count(0), 1u);
  EXPECT_EQ(one.Count(1), 1u);
  EXPECT_EQ(one.Overflow(), 1u);
}

TEST(HistogramTest, WeightedAddOnBoundary) {
  BucketHistogram h(11);
  h.Add(11, 5);
  h.Add(12, 7);
  EXPECT_EQ(h.Count(11), 5u);
  EXPECT_EQ(h.Overflow(), 7u);
}

TEST(HistogramTest, MergeAddsBucketwiseAndRejectsLayoutMismatch) {
  BucketHistogram a(5), b(5);
  a.Add(5);
  b.Add(5);
  b.Add(6);
  a.Merge(b);
  EXPECT_EQ(a.Count(5), 2u);
  EXPECT_EQ(a.Overflow(), 1u);

  BucketHistogram empty(5);
  a.Merge(empty);  // identity
  EXPECT_EQ(a.Count(5), 2u);
  EXPECT_EQ(a.Overflow(), 1u);
  EXPECT_EQ(a.Total(), 3u);
}

}  // namespace
}  // namespace sparqlog::util
