// The sharded streak stage must produce a report bit-identical to the
// serial StreakDetector for every thread and chunk count — including
// chunks far narrower than the similarity window, where every streak
// crosses chunk boundaries and lives or dies by the stitch pass.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/profile.h"
#include "pipeline/streak_stage.h"
#include "streaks/streaks.h"
#include "util/rng.h"

namespace sparqlog::pipeline {
namespace {

using streaks::StreakDetector;
using streaks::StreakOptions;
using streaks::StreakReport;

StreakReport Serial(const std::vector<std::string>& log,
                    const StreakOptions& options) {
  StreakDetector detector(options);
  for (const std::string& q : log) detector.Add(q);
  return detector.Finish();
}

void ExpectReportsEqual(const StreakReport& a, const StreakReport& b,
                        const std::string& context) {
  for (size_t i = 0; i < 11; ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << context << " bucket " << i;
  }
  EXPECT_EQ(a.total_streaks, b.total_streaks) << context;
  EXPECT_EQ(a.longest, b.longest) << context;
  EXPECT_EQ(a.queries_processed, b.queries_processed) << context;
}

std::vector<std::string> SessionLog(uint64_t seed, size_t n) {
  util::Rng rng(seed);
  std::vector<std::string> log;
  std::string current = "SELECT ?x WHERE { ?x <birthPlace> <Paris> }";
  for (size_t i = 0; i < n; ++i) {
    double roll = rng.NextDouble();
    if (roll < 0.25) {
      current = "ASK { <e" + std::to_string(rng.Below(50)) +
                "> <p> <o" + std::to_string(rng.Below(50)) + "> }";
    } else if (roll < 0.75) {
      current += static_cast<char>('a' + rng.Below(26));
    }
    log.push_back(current);
  }
  return log;
}

TEST(StreakStageTest, MatchesSerialAcrossThreadAndChunkCounts) {
  StreakOptions streak;
  std::vector<std::string> log = SessionLog(1, 600);
  StreakReport serial = Serial(log, streak);
  for (int threads : {1, 2, 3, 8}) {
    for (size_t chunk : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
      StreakStageOptions options;
      options.streak = streak;
      options.threads = threads;
      options.chunk_size = chunk;
      StreakStageResult result = StreakStage(options).Run(log);
      ExpectReportsEqual(result.report, serial,
                         "threads=" + std::to_string(threads) +
                             " chunk=" + std::to_string(chunk));
    }
  }
}

TEST(StreakStageTest, ChunksNarrowerThanTheWindow) {
  // chunk_size 1 with window 30: every query is its own chunk and the
  // stitch pass does all the chaining.
  StreakOptions streak;
  std::vector<std::string> log = SessionLog(2, 150);
  StreakStageOptions options;
  options.streak = streak;
  options.threads = 4;
  options.chunk_size = 1;
  StreakStageResult result = StreakStage(options).Run(log);
  ExpectReportsEqual(result.report, Serial(log, streak), "chunk=1");
  EXPECT_EQ(result.chunks, log.size());
}

TEST(StreakStageTest, RandomizedConfigurations) {
  util::Rng rng(20260726);
  for (int round = 0; round < 6; ++round) {
    StreakOptions streak;
    streak.window = 1 + rng.Below(40);
    streak.similarity_threshold = round % 2 == 0 ? 0.25 : 0.4;
    streak.strip_prologue = rng.Chance(0.5);
    std::vector<std::string> log = SessionLog(100 + round, 200 + rng.Below(200));
    StreakStageOptions options;
    options.streak = streak;
    options.threads = static_cast<int>(1 + rng.Below(5));
    options.chunk_size = 1 + rng.Below(97);
    StreakStageResult result = StreakStage(options).Run(log);
    ExpectReportsEqual(result.report, Serial(log, streak),
                       "round " + std::to_string(round) + " window " +
                           std::to_string(streak.window));
  }
}

TEST(StreakStageTest, EmptyAndTinyLogs) {
  StreakStageOptions options;
  options.threads = 4;
  StreakStageResult empty = StreakStage(options).Run({});
  EXPECT_EQ(empty.report.total_streaks, 0u);
  EXPECT_EQ(empty.report.queries_processed, 0u);
  EXPECT_EQ(empty.chunks, 0u);

  std::vector<std::string> one = {"SELECT ?x WHERE { ?x <p> ?y }"};
  StreakStageResult single = StreakStage(options).Run(one);
  EXPECT_EQ(single.report.total_streaks, 1u);
  EXPECT_EQ(single.report.queries_processed, 1u);
}

TEST(StreakStageTest, DefaultChunkingCoversTheLog) {
  StreakStageOptions options;
  options.threads = 3;  // chunk_size 0: derived from the thread count
  std::vector<std::string> log = SessionLog(9, 500);
  StreakStageResult result = StreakStage(options).Run(log);
  EXPECT_GE(result.chunks, 1u);
  EXPECT_EQ(result.report.queries_processed, log.size());
  ExpectReportsEqual(result.report, Serial(log, StreakOptions()), "default");
}

TEST(StreakStageTest, PrefilterCountersAggregate) {
  std::vector<std::string> log = SessionLog(5, 400);
  StreakStageOptions options;
  options.threads = 2;
  options.chunk_size = 100;
  StreakStageResult result = StreakStage(options).Run(log);
  EXPECT_GT(result.prefilter.pairs, 0u);
  EXPECT_EQ(result.prefilter.pairs,
            result.prefilter.exact_hash_hits + result.prefilter.length_rejects +
                result.prefilter.charmap_rejects +
                result.prefilter.histogram_rejects +
                result.prefilter.levenshtein_calls);
}

TEST(StreakStageTest, PlantedRefinementSessions) {
  // The realistic Table 6 shape: GenerateStreakLog plants refinement
  // sessions; serial and sharded must agree on the full report.
  auto profiles = corpus::PaperProfiles();
  const corpus::DatasetProfile& profile =
      corpus::ProfileByName(profiles, "DBpedia16");
  auto log = corpus::GenerateStreakLog(profile, 1200, 0.3, 4242);
  StreakOptions streak;
  StreakReport serial = Serial(log, streak);
  StreakStageOptions options;
  options.threads = 4;
  options.chunk_size = 97;
  StreakStageResult result = StreakStage(options).Run(log);
  ExpectReportsEqual(result.report, serial, "planted sessions");
  EXPECT_GT(result.report.total_streaks, 0u);
}

}  // namespace
}  // namespace sparqlog::pipeline
