#include <gtest/gtest.h>

#include "paths/path_eval.h"
#include "sparql/parser.h"

namespace sparqlog::paths {
namespace {

using rdf::TermId;

sparql::PathExpr PathOf(std::string_view syntax) {
  std::string query =
      "SELECT * WHERE { ?a " + std::string(syntax) + " ?b }";
  auto r = sparql::ParseQuery(query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<const sparql::TriplePattern*> triples;
  r.value().where.CollectTriples(triples);
  if (!triples[0]->has_path) {
    // A bare IRI parses as a plain predicate; lift it to a trivial path.
    return sparql::PathExpr::Link(triples[0]->predicate.value);
  }
  return triples[0]->path;
}

/// n1 -a-> n2 -b-> n3 -a-> n4; n2 -c-> n5; n5 -a-> n2 (small cycle).
store::TripleStore LineGraph() {
  store::TripleStore s;
  s.Add("n1", "a", "n2");
  s.Add("n2", "b", "n3");
  s.Add("n3", "a", "n4");
  s.Add("n2", "c", "n5");
  s.Add("n5", "a", "n2");
  s.Build();
  return s;
}

TermId Id(const store::TripleStore& s, const char* name) {
  return s.dict().Lookup(name);
}

TEST(PathEvalTest, SingleLink) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<a>"));
  EXPECT_TRUE(eval.Matches(Id(s, "n1"), Id(s, "n2")));
  EXPECT_FALSE(eval.Matches(Id(s, "n1"), Id(s, "n3")));
}

TEST(PathEvalTest, Sequence) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<a>/<b>"));
  EXPECT_TRUE(eval.Matches(Id(s, "n1"), Id(s, "n3")));
  EXPECT_FALSE(eval.Matches(Id(s, "n1"), Id(s, "n4")));
}

TEST(PathEvalTest, Alternation) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<b>|<c>"));
  auto reachable = eval.ReachableFrom(Id(s, "n2"));
  EXPECT_EQ(reachable.size(), 2u);  // n3 via b, n5 via c
}

TEST(PathEvalTest, Inverse) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("^<a>"));
  EXPECT_TRUE(eval.Matches(Id(s, "n2"), Id(s, "n1")));
  EXPECT_TRUE(eval.Matches(Id(s, "n2"), Id(s, "n5")));
}

TEST(PathEvalTest, InverseOfSequence) {
  store::TripleStore s = LineGraph();
  // ^(a/b) from n3 must reach n1.
  PathEvaluator eval(s, PathOf("^(<a>/<b>)"));
  EXPECT_TRUE(eval.Matches(Id(s, "n3"), Id(s, "n1")));
  EXPECT_FALSE(eval.Matches(Id(s, "n3"), Id(s, "n2")));
}

TEST(PathEvalTest, KleeneStarIncludesZeroSteps) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<a>*"));
  EXPECT_TRUE(eval.Matches(Id(s, "n1"), Id(s, "n1")));  // empty walk
  EXPECT_TRUE(eval.Matches(Id(s, "n1"), Id(s, "n2")));
  EXPECT_FALSE(eval.Matches(Id(s, "n1"), Id(s, "n3")));  // b edge breaks
}

TEST(PathEvalTest, PlusRequiresOneStep) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<a>+"));
  EXPECT_FALSE(eval.Matches(Id(s, "n1"), Id(s, "n1")));
  EXPECT_TRUE(eval.Matches(Id(s, "n1"), Id(s, "n2")));
}

TEST(PathEvalTest, OptionalStep) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<a>?"));
  EXPECT_TRUE(eval.Matches(Id(s, "n3"), Id(s, "n3")));
  EXPECT_TRUE(eval.Matches(Id(s, "n3"), Id(s, "n4")));
}

TEST(PathEvalTest, NegatedPropertySet) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("!<a>"));
  // From n2: b and c edges qualify, a edges do not.
  auto reachable = eval.ReachableFrom(Id(s, "n2"));
  EXPECT_EQ(reachable.count(Id(s, "n3")), 1u);
  EXPECT_EQ(reachable.count(Id(s, "n5")), 1u);
}

TEST(PathEvalTest, StarOverCycleTerminates) {
  store::TripleStore s;
  s.Add("x", "a", "y");
  s.Add("y", "a", "x");
  s.Build();
  PathEvaluator eval(s, PathOf("<a>*"));
  auto reachable = eval.ReachableFrom(Id(s, "x"));
  EXPECT_EQ(reachable.size(), 2u);
}

TEST(PathEvalTest, WikidataStylePath) {
  store::TripleStore s;
  s.Add("site", "P31", "classA");
  s.Add("classA", "P279", "classB");
  s.Add("classB", "P279", "target");
  s.Build();
  PathEvaluator eval(s, PathOf("<P31>/<P279>*"));
  EXPECT_TRUE(eval.Matches(Id(s, "site"), Id(s, "target")));
  EXPECT_TRUE(eval.Matches(Id(s, "site"), Id(s, "classA")));
}

TEST(PathEvalTest, UnknownPredicateNeverMatches) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<nosuch>"));
  EXPECT_TRUE(eval.ReachableFrom(Id(s, "n1")).empty());
}

// ---------------------------------------------------------------------------
// Simple-path semantics (Section 7 / Bagan et al.)
// ---------------------------------------------------------------------------

TEST(SimplePathTest, AgreesWithWalkOnAcyclicGraphs) {
  store::TripleStore s = LineGraph();
  PathEvaluator eval(s, PathOf("<a>/<b>"));
  auto r = eval.MatchesSimplePath(Id(s, "n1"), Id(s, "n3"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

TEST(SimplePathTest, RejectsRepeatedNodes) {
  // x -a-> y -a-> x -a-> y: the walk y..y of length 2 repeats x; the
  // only simple a/a path from x ends where it started two hops later —
  // but x -> y -> x repeats x, so no simple a/a path x -> x exists.
  store::TripleStore s;
  s.Add("x", "a", "y");
  s.Add("y", "a", "x");
  s.Build();
  PathEvaluator eval(s, PathOf("<a>/<a>"));
  EXPECT_TRUE(eval.Matches(Id(s, "x"), Id(s, "x")));  // walk semantics
  auto r = eval.MatchesSimplePath(Id(s, "x"), Id(s, "x"));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());  // simple-path semantics
}

TEST(SimplePathTest, FindsSimpleWitness) {
  store::TripleStore s;
  s.Add("a", "p", "b");
  s.Add("b", "p", "c");
  s.Add("c", "p", "d");
  s.Add("b", "p", "a");  // back edge that a simple path must avoid
  s.Build();
  PathEvaluator eval(s, PathOf("<p>+"));
  auto r = eval.MatchesSimplePath(Id(s, "a"), Id(s, "d"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

TEST(SimplePathTest, BudgetExhaustionReportsTimeout) {
  // A dense bipartite-ish graph where (p/q)* simple-path search
  // explodes; a step budget of 1 must trip immediately.
  store::TripleStore s;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      s.Add("u" + std::to_string(i), "p", "v" + std::to_string(j));
      s.Add("v" + std::to_string(j), "q", "u" + std::to_string(i));
    }
  }
  s.Add("v0", "r", "goal");
  s.Build();
  PathEvaluator eval(s, PathOf("(<p>/<q>)*"));
  auto r = eval.MatchesSimplePath(s.dict().Lookup("u0"),
                                  s.dict().Lookup("u7"), 2);
  // Either it finds the 2-step witness immediately or reports timeout;
  // with budget 2 the search cannot explore the whole space.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), util::StatusCode::kTimeout);
  }
}

TEST(SimplePathTest, TractableVsIntractableBudgets) {
  // C_tract expression a* needs few steps even on a clique; the
  // non-C_tract (a/b)* needs enumeration. We check that a* completes
  // within a modest budget on a graph where it must visit all nodes.
  store::TripleStore s;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i != j) {
        s.Add("n" + std::to_string(i), "a", "n" + std::to_string(j));
      }
    }
  }
  s.Build();
  PathEvaluator star(s, PathOf("<a>*"));
  auto r = star.MatchesSimplePath(s.dict().Lookup("n0"),
                                  s.dict().Lookup("n5"), 100000);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

}  // namespace
}  // namespace sparqlog::paths
