#include <gtest/gtest.h>

#include "paths/ctract.h"
#include "paths/path_class.h"
#include "sparql/parser.h"

namespace sparqlog::paths {
namespace {

using sparql::PathExpr;

PathExpr PathOf(std::string_view path_syntax) {
  std::string query =
      "SELECT * WHERE { ?a " + std::string(path_syntax) + " ?b }";
  auto r = sparql::ParseQuery(query);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\n" << query;
  std::vector<const sparql::TriplePattern*> triples;
  r.value().where.CollectTriples(triples);
  EXPECT_EQ(triples.size(), 1u);
  EXPECT_TRUE(triples[0]->has_path) << path_syntax;
  return triples[0]->path;
}

// ---------------------------------------------------------------------------
// Classification into the Table 5 taxonomy
// ---------------------------------------------------------------------------

struct ClassCase {
  const char* syntax;
  PathType expected;
};

class PathClassTest : public ::testing::TestWithParam<ClassCase> {};

TEST_P(PathClassTest, ClassifiesAsPaper) {
  const ClassCase& c = GetParam();
  PathClassification pc = ClassifyPath(PathOf(c.syntax));
  EXPECT_EQ(pc.type, c.expected)
      << c.syntax << " classified as " << PathTypeName(pc.type);
}

INSTANTIATE_TEST_SUITE_P(
    Table5, PathClassTest,
    ::testing::Values(
        ClassCase{"!<a>", PathType::kTrivialNegated},
        ClassCase{"^<a>", PathType::kTrivialInverse},
        ClassCase{"(<a>|<b>)*", PathType::kStarOfAlt},
        ClassCase{"(<a>|<b>|<c>|<d>)*", PathType::kStarOfAlt},
        ClassCase{"<a>*", PathType::kStar},
        ClassCase{"<a>/<b>", PathType::kSeq},
        ClassCase{"<a>/<b>/<c>/<d>/<e>/<f>", PathType::kSeq},
        ClassCase{"(^<a>)/<b>", PathType::kSeq},   // ^a treated as atom
        ClassCase{"(!<a>)/<b>", PathType::kSeq},   // !a treated as atom
        ClassCase{"<a>*/<b>", PathType::kStarSeqLink},
        ClassCase{"<b>/<a>*", PathType::kStarSeqLink},  // symmetric form
        ClassCase{"<a>|<b>", PathType::kAlt},
        ClassCase{"<a>|<b>|<c>", PathType::kAlt},
        ClassCase{"<a>+", PathType::kPlus},
        ClassCase{"<a>?", PathType::kSeqOfOpts},  // k = 1
        ClassCase{"<a>?/<b>?/<c>?", PathType::kSeqOfOpts},
        ClassCase{"<a>/(<b>|<c>)", PathType::kLinkSeqAlt},
        ClassCase{"<a>/<b>?/<c>?", PathType::kSeqLinkOpts},
        ClassCase{"(<a>/<b>*)|<c>", PathType::kAltSeqStarLink},
        ClassCase{"<a>*/<b>?", PathType::kStarSeqOpt},
        ClassCase{"<a>/<b>/<c>*", PathType::kSeqSeqStar},
        ClassCase{"<c>*/<b>/<a>", PathType::kSeqSeqStar},  // symmetric
        ClassCase{"!(<a>|<b>)", PathType::kNegatedAlt},
        ClassCase{"(<a>|<b>)+", PathType::kPlusOfAlt},
        ClassCase{"(<a>|<b>)/(<a>|<b>)", PathType::kAltAltSeq},
        ClassCase{"<a>?|<b>", PathType::kOptAltLink},
        ClassCase{"<a>*|<b>", PathType::kStarAltLink},
        ClassCase{"(<a>|<b>)?", PathType::kOptOfAlt},
        ClassCase{"<a>|<b>+", PathType::kLinkAltPlus},
        ClassCase{"<a>+|<b>+", PathType::kPlusAltPlus},
        ClassCase{"(<a>/<b>)*", PathType::kStarOfSeq},
        ClassCase{"(<a>*/<b>*)", PathType::kOther}));

TEST(PathClassTest, ArityParameter) {
  EXPECT_EQ(ClassifyPath(PathOf("(<a>|<b>|<c>)*")).k, 3);
  EXPECT_EQ(ClassifyPath(PathOf("<a>/<b>/<c>/<d>")).k, 4);
  EXPECT_EQ(ClassifyPath(PathOf("<a>?/<b>?")).k, 2);
  EXPECT_EQ(ClassifyPath(PathOf("<a>?")).k, 1);
}

TEST(PathClassTest, InverseUseDetected) {
  EXPECT_TRUE(ClassifyPath(PathOf("(^<a>)/<b>")).uses_inverse);
  EXPECT_FALSE(ClassifyPath(PathOf("<a>/<b>")).uses_inverse);
  // Within a starred alternation.
  EXPECT_TRUE(ClassifyPath(PathOf("(<a>|^<b>)*")).uses_inverse);
}

TEST(PathClassTest, TypeNamesRoundTrip) {
  EXPECT_EQ(PathTypeName(PathType::kStarOfAlt), "(a1|...|ak)*");
  EXPECT_EQ(PathTypeName(PathType::kStarOfSeq), "(a/b)*");
  EXPECT_EQ(PathTypeName(PathType::kOther), "other");
}

// ---------------------------------------------------------------------------
// C_tract (Bagan et al. [6]; Section 7)
// ---------------------------------------------------------------------------

class CtractTractableTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CtractTractableTest, TractableExpressions) {
  EXPECT_TRUE(IsCtract(PathOf(GetParam()))) << GetParam();
}

// Every Table 5 expression type except (a/b)* is in C_tract.
INSTANTIATE_TEST_SUITE_P(
    Table5Tractable, CtractTractableTest,
    ::testing::Values("!<a>", "^<a>", "(<a>|<b>)*", "<a>*",
                      "<a>/<b>/<c>", "<a>*/<b>", "<a>|<b>|<c>", "<a>+",
                      "<a>?/<b>?", "<a>/(<b>|<c>)", "<a>/<b>?/<c>?",
                      "(<a>/<b>*)|<c>", "<a>*/<b>?", "<a>/<b>/<c>*",
                      "!(<a>|<b>)", "(<a>|<b>)+", "(<a>|<b>)/(<a>|<b>)",
                      "<a>?|<b>", "<a>*|<b>", "(<a>|<b>)?", "<a>|<b>+",
                      "<a>+|<b>+",
                      // Nested closures flatten to A*:
                      "(<a>*)*", "(<a>+)*", "(<a>?)+"));

class CtractHardTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CtractHardTest, IntractableExpressions) {
  EXPECT_FALSE(IsCtract(PathOf(GetParam()))) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Hard, CtractHardTest,
    ::testing::Values("(<a>/<b>)*",          // the paper's one example
                      "(<a>/<b>)+",
                      "(<a>/<b>|<c>)*",      // star over length-2 words
                      "(<a>|<b>/<c>)*",
                      "<a>*/<b>*",           // two unbounded factors
                      "(<a>?/<b>)*"));

TEST(CtractTest, DeepNestingStillDecided) {
  EXPECT_TRUE(IsCtract(PathOf("((((<a>)*)*)*)*")));
  EXPECT_FALSE(IsCtract(PathOf("((<a>/<b>)*)*")));
}

}  // namespace
}  // namespace sparqlog::paths
