#include <gtest/gtest.h>

#include "graph/canonical.h"
#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "sparql/parser.h"

namespace sparqlog::graph {
namespace {

using sparql::ParseQuery;

Graph Path(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph Cycle(int n) {
  Graph g = Path(n);
  g.AddEdge(n - 1, 0);
  return g;
}

// ---------------------------------------------------------------------------
// Graph basics
// ---------------------------------------------------------------------------

TEST(GraphTest, EdgesAreSetSemantics) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, SelfLoops) {
  Graph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  EXPECT_TRUE(g.HasSelfLoop(0));
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.num_proper_edges(), 1);
  EXPECT_EQ(g.Degree(0), 1);  // self-loop does not count as a neighbor
}

TEST(GraphTest, ConnectedComponents) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  auto comps = g.ConnectedComponents();
  ASSERT_EQ(comps.size(), 3u);  // {0,1}, {2,3}, {4}
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = Cycle(5);
  std::vector<int> map;
  Graph sub = g.InducedSubgraph({0, 1, 2}, &map);
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // 0-1, 1-2 survive; 4-0 and 2-3 don't
  EXPECT_EQ(map[3], -1);
}

TEST(GraphTest, AcyclicityAndGirth) {
  EXPECT_TRUE(Path(5).IsAcyclic());
  EXPECT_EQ(Path(5).Girth(), 0);
  EXPECT_FALSE(Cycle(3).IsAcyclic());
  EXPECT_EQ(Cycle(3).Girth(), 3);
  EXPECT_EQ(Cycle(7).Girth(), 7);
}

TEST(GraphTest, GirthPicksShortestCycle) {
  Graph g = Cycle(6);
  g.AddEdge(0, 3);  // chord creates two 4-cycles
  EXPECT_EQ(g.Girth(), 4);
}

TEST(GraphTest, SelfLoopIsGirthOne) {
  Graph g(2);
  g.AddEdge(0, 1);
  g.AddEdge(1, 1);
  EXPECT_EQ(g.Girth(), 1);
  EXPECT_FALSE(g.IsAcyclic());
  EXPECT_TRUE(g.IsAcyclic(/*ignore_self_loops=*/true));
}

// ---------------------------------------------------------------------------
// Canonical graph (Section 5)
// ---------------------------------------------------------------------------

CanonicalGraph CanonicalOf(std::string_view query,
                           CanonicalOptions options = {}) {
  auto r = ParseQuery(query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return BuildCanonicalGraph(r.value().where, options);
}

TEST(CanonicalTest, ChainQueryGivesPath) {
  // First query of Example 5.1: a chain of three edges.
  CanonicalGraph cg = CanonicalOf(
      "ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}");
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(cg.graph.num_nodes(), 4);
  EXPECT_EQ(cg.graph.num_edges(), 3);
  EXPECT_TRUE(cg.graph.IsAcyclic());
}

TEST(CanonicalTest, VariablePredicateInvalidatesGraph) {
  // Second query of Example 5.1.
  CanonicalGraph cg = CanonicalOf(
      "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}");
  EXPECT_FALSE(cg.valid);
}

TEST(CanonicalTest, ConstantsAreNodes) {
  CanonicalGraph cg = CanonicalOf("ASK WHERE { ?x <p> <c> }");
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(cg.graph.num_nodes(), 2);
  EXPECT_EQ(cg.graph.num_edges(), 1);
}

TEST(CanonicalTest, ExcludingConstantsDropsEdge) {
  CanonicalOptions options;
  options.include_constants = false;
  CanonicalGraph cg = CanonicalOf("ASK WHERE { ?x <p> <c> }", options);
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(cg.graph.num_nodes(), 1);
  EXPECT_EQ(cg.graph.num_edges(), 0);
}

TEST(CanonicalTest, RepeatedConstantsShareNode) {
  CanonicalGraph cg =
      CanonicalOf("ASK WHERE { ?x <p> <c> . ?y <q> <c> }");
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(cg.graph.num_nodes(), 3);
}

TEST(CanonicalTest, EqualityFilterCollapsesNodes) {
  // Footnote 20: FILTER(?y = ?z) collapses ?y and ?z, making a path
  // into a shorter path.
  CanonicalGraph cg = CanonicalOf(
      "ASK WHERE { ?x <p> ?y . ?z <q> ?w FILTER(?y = ?z) }");
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(cg.graph.num_nodes(), 3);
  EXPECT_EQ(cg.graph.num_edges(), 2);
}

TEST(CanonicalTest, EqualityCollapseCanCreateCycle) {
  CanonicalGraph cg = CanonicalOf(
      "ASK WHERE { ?a <p> ?b . ?b <q> ?c . ?c <r> ?d FILTER(?a = ?d) }");
  ASSERT_TRUE(cg.valid);
  EXPECT_FALSE(cg.graph.IsAcyclic());
  EXPECT_EQ(cg.graph.Girth(), 3);
}

TEST(CanonicalTest, SelfLoopFromRepeatedVariable) {
  CanonicalGraph cg = CanonicalOf("ASK WHERE { ?x <p> ?x }");
  ASSERT_TRUE(cg.valid);
  EXPECT_EQ(cg.graph.num_nodes(), 1);
  EXPECT_TRUE(cg.graph.HasSelfLoop(0));
}

// ---------------------------------------------------------------------------
// Canonical hypergraph (Section 5)
// ---------------------------------------------------------------------------

Hypergraph HypergraphOf(std::string_view query) {
  auto r = ParseQuery(query);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::vector<const sparql::TriplePattern*> triples;
  std::vector<const sparql::Expr*> filters;
  CollectTriplesAndFilters(r.value().where, triples, filters);
  return BuildCanonicalHypergraph(triples, filters);
}

TEST(HypergraphTest, Example51CapturesJoinOnPredicateVar) {
  // The hypergraph of the second Example 5.1 query is cyclic: the join
  // on ?x2 is visible.
  Hypergraph hg = HypergraphOf(
      "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}");
  EXPECT_EQ(hg.num_edges(), 3);
  EXPECT_FALSE(hg.IsAlphaAcyclic());
}

TEST(HypergraphTest, ChainIsAlphaAcyclic) {
  Hypergraph hg = HypergraphOf(
      "ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}");
  EXPECT_TRUE(hg.IsAlphaAcyclic());
}

TEST(HypergraphTest, TriangleIsCyclic) {
  Hypergraph hg = HypergraphOf(
      "ASK WHERE {?a <p> ?b . ?b <q> ?c . ?c <r> ?a}");
  EXPECT_FALSE(hg.IsAlphaAcyclic());
}

TEST(HypergraphTest, TriangleWithGuardIsAcyclic) {
  // A hyperedge covering all three vertices makes it alpha-acyclic:
  // exercised through a predicate variable shared across a triple.
  Hypergraph hg;
  hg.AddEdge({0, 1});
  hg.AddEdge({1, 2});
  hg.AddEdge({0, 2});
  hg.AddEdge({0, 1, 2});  // guard
  EXPECT_TRUE(hg.IsAlphaAcyclic());
}

TEST(HypergraphTest, ConstantsExcluded) {
  Hypergraph hg = HypergraphOf("ASK WHERE { ?x <p> <c> }");
  EXPECT_EQ(hg.num_edges(), 1);
  EXPECT_EQ(hg.num_nodes(), 1);
}

TEST(HypergraphTest, AllConstantTripleContributesNoEdge) {
  Hypergraph hg = HypergraphOf("ASK WHERE { <s> <p> <o> }");
  EXPECT_EQ(hg.num_edges(), 0);
  EXPECT_TRUE(hg.IsAlphaAcyclic());
}

TEST(HypergraphTest, ComponentsViaSharedEdges) {
  Hypergraph hg;
  hg.AddEdge({0, 1});
  hg.AddEdge({2, 3});
  hg.AddEdge({1, 4});
  auto comps = hg.ConnectedComponents();
  EXPECT_EQ(comps.size(), 2u);
}

}  // namespace
}  // namespace sparqlog::graph
