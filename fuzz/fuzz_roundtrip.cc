// fuzz_roundtrip — the standing differential-verification driver.
//
// From one fixed seed it (1) generates queries with the property-based
// fuzzer and checks the round-trip / streaming-hash invariants,
// (2) mutates log lines and checks the ingest invariants, (3) replays
// randomized serial-vs-parallel digest equivalence rounds, and
// (4) replays randomized serial-vs-sharded streak-report equivalence
// rounds on fuzzed refinement-session logs, and (5) replays fuzzed
// queries through the pre-change vs allocation-lean structural-analysis
// paths (shape/girth/treewidth/GHW, the bench oracle) plus
// serial-vs-parallel StatsReport digests over analysis-heavy logs, and
// (6) replays the vectorized-scan differential (naive vs scalar vs SIMD
// at every start offset, PercentDecode, full-lexer determinism) on
// fuzzed queries, mutated log lines, and raw byte soup pinned around
// the 16-byte vector width, plus mmap-vs-stream-vs-vector source
// equivalence rounds on fuzzed files (CRLF, missing trailing newline,
// tiny slice budgets), and (7) replays seeded fault plans — truncated
// sources, transient/persistent read errors, injected allocation
// failures, deterministic poison lines — through the fault-containment
// pipeline, checking that nothing escapes, accounting conservation
// holds, quarantine reporting agrees with the counters, and
// deterministic plans replay bit-identically.
// Any violation is greedily shrunk to a minimal reproducer, printed as
// a ready-to-paste unit test, appended to --out, and fails the run.
//
// Usage:
//   fuzz_roundtrip [--seed N] [--queries N] [--lines N]
//                  [--pipeline-rounds N] [--pipeline-lines N]
//                  [--streak-rounds N] [--streak-queries N]
//                  [--analysis-rounds N] [--analysis-queries N]
//                  [--scan-inputs N] [--source-rounds N]
//                  [--fault-rounds N] [--fault-lines N]
//                  [--snapshot-rounds N] [--snapshot-lines N] [--out PATH]
// Environment overrides (for CI): SPARQLOG_FUZZ_SEED, SPARQLOG_FUZZ_QUERIES,
// SPARQLOG_FUZZ_LINES, SPARQLOG_FUZZ_PIPELINE_ROUNDS,
// SPARQLOG_FUZZ_STREAK_ROUNDS, SPARQLOG_FUZZ_ANALYSIS_ROUNDS,
// SPARQLOG_FUZZ_SCAN_INPUTS, SPARQLOG_FUZZ_SOURCE_ROUNDS,
// SPARQLOG_FUZZ_FAULT_ROUNDS, SPARQLOG_FUZZ_SNAPSHOT_ROUNDS.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

// Install the counting/fault-injecting allocator: phase 7's
// allocation-failure plans need operator new to consult the injection
// countdown (obs/alloc_tracker.h). Exactly one TU per binary.
#include "obs/alloc_hooks.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "testing/fault_injection.h"
#include "testing/snapshot_faults.h"
#include "testing/invariants.h"
#include "testing/log_mutator.h"
#include "testing/query_fuzzer.h"
#include "testing/shrink.h"
#include "util/rng.h"

namespace {

using sparqlog::testing::CheckLogLine;
using sparqlog::testing::CheckLogLineScratch;
using sparqlog::testing::CheckQuery;
using sparqlog::testing::CheckQueryText;
using sparqlog::testing::CheckSerialParallelEquivalence;
using sparqlog::testing::Violation;

struct Config {
  uint64_t seed = 20260726;
  long queries = 10000;
  long lines = 10000;
  long pipeline_rounds = 4;
  long pipeline_lines = 1500;
  long streak_rounds = 6;
  long streak_queries = 400;
  long analysis_rounds = 4;
  long analysis_queries = 300;
  long scan_inputs = 384;
  long source_rounds = 4;
  long fault_rounds = 1000;
  long fault_lines = 120;
  long snapshot_rounds = 60;
  long snapshot_lines = 96;
  std::string out_path = "fuzz_reproducers.txt";
};

long EnvOrDefault(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

Config ParseArgs(int argc, char** argv) {
  Config config;
  config.seed = static_cast<uint64_t>(
      EnvOrDefault("SPARQLOG_FUZZ_SEED", static_cast<long>(config.seed)));
  config.queries = EnvOrDefault("SPARQLOG_FUZZ_QUERIES", config.queries);
  config.lines = EnvOrDefault("SPARQLOG_FUZZ_LINES", config.lines);
  config.pipeline_rounds =
      EnvOrDefault("SPARQLOG_FUZZ_PIPELINE_ROUNDS", config.pipeline_rounds);
  config.streak_rounds =
      EnvOrDefault("SPARQLOG_FUZZ_STREAK_ROUNDS", config.streak_rounds);
  config.analysis_rounds =
      EnvOrDefault("SPARQLOG_FUZZ_ANALYSIS_ROUNDS", config.analysis_rounds);
  config.scan_inputs =
      EnvOrDefault("SPARQLOG_FUZZ_SCAN_INPUTS", config.scan_inputs);
  config.source_rounds =
      EnvOrDefault("SPARQLOG_FUZZ_SOURCE_ROUNDS", config.source_rounds);
  config.fault_rounds =
      EnvOrDefault("SPARQLOG_FUZZ_FAULT_ROUNDS", config.fault_rounds);
  config.snapshot_rounds =
      EnvOrDefault("SPARQLOG_FUZZ_SNAPSHOT_ROUNDS", config.snapshot_rounds);
  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* flag) {
      return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
    };
    if (arg("--seed")) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg("--queries")) {
      config.queries = std::atol(argv[++i]);
    } else if (arg("--lines")) {
      config.lines = std::atol(argv[++i]);
    } else if (arg("--pipeline-rounds")) {
      config.pipeline_rounds = std::atol(argv[++i]);
    } else if (arg("--pipeline-lines")) {
      config.pipeline_lines = std::atol(argv[++i]);
    } else if (arg("--streak-rounds")) {
      config.streak_rounds = std::atol(argv[++i]);
    } else if (arg("--streak-queries")) {
      config.streak_queries = std::atol(argv[++i]);
    } else if (arg("--analysis-rounds")) {
      config.analysis_rounds = std::atol(argv[++i]);
    } else if (arg("--analysis-queries")) {
      config.analysis_queries = std::atol(argv[++i]);
    } else if (arg("--scan-inputs")) {
      config.scan_inputs = std::atol(argv[++i]);
    } else if (arg("--source-rounds")) {
      config.source_rounds = std::atol(argv[++i]);
    } else if (arg("--fault-rounds")) {
      config.fault_rounds = std::atol(argv[++i]);
    } else if (arg("--fault-lines")) {
      config.fault_lines = std::atol(argv[++i]);
    } else if (arg("--snapshot-rounds")) {
      config.snapshot_rounds = std::atol(argv[++i]);
    } else if (arg("--snapshot-lines")) {
      config.snapshot_lines = std::atol(argv[++i]);
    } else if (arg("--out")) {
      config.out_path = argv[++i];
    }
  }
  return config;
}

/// Shrinks and reports one violation; returns the reproducer text.
std::string Report(const Config& config, const Violation& violation,
                   std::string_view kind, int index,
                   const sparqlog::testing::FailPredicate& fails) {
  std::string minimal = violation.input;
  if (!violation.input.empty() && fails(violation.input)) {
    sparqlog::testing::ShrinkOutcome shrunk =
        sparqlog::testing::ShrinkText(violation.input, fails);
    minimal = shrunk.text;
    std::fprintf(stderr,
                 "  shrink: %zu -> %zu bytes (%d evals, %d reductions)\n",
                 violation.input.size(), minimal.size(), shrunk.evals,
                 shrunk.accepted);
  }
  std::string name =
      std::string(kind == "log_line" ? "LogLine" : "Query") + "Seed" +
      std::to_string(config.seed) + "Case" + std::to_string(index);
  std::string reproducer = sparqlog::testing::FormatReproducer(
      name, kind, minimal, config.seed);
  std::fprintf(stderr, "VIOLATION [%s] %s\n%s\n", violation.invariant.c_str(),
               violation.detail.c_str(), reproducer.c_str());
  std::ofstream out(std::string(config.out_path), std::ios::app);
  out << "// [" << violation.invariant << "] " << violation.detail << "\n"
      << reproducer << "\n";
  return reproducer;
}

}  // namespace

int main(int argc, char** argv) {
  Config config = ParseArgs(argc, argv);
  std::fprintf(stderr,
               "fuzz_roundtrip: seed=%llu queries=%ld lines=%ld "
               "pipeline_rounds=%ld\n",
               static_cast<unsigned long long>(config.seed), config.queries,
               config.lines, config.pipeline_rounds);

  sparqlog::sparql::Parser parser;
  int violations = 0;

  // Phase 1: generated queries — round-trip + streaming-hash invariants.
  {
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    for (long i = 0; i < config.queries; ++i) {
      sparqlog::sparql::Query q = fuzzer.Next();
      if (auto v = CheckQuery(parser, q)) {
        ++violations;
        // Shrink structurally first (a closure violation has no
        // parseable text to shrink), pinned to the same invariant so
        // the reducer cannot wander to a different bug.
        std::string invariant = v->invariant;
        sparqlog::testing::AstShrinkOutcome shrunk =
            sparqlog::testing::ShrinkQueryAst(
                q, [&parser, &invariant](const sparqlog::sparql::Query& cand) {
                  auto cv = CheckQuery(parser, cand);
                  return cv.has_value() && cv->invariant == invariant;
                });
        std::string minimal = sparqlog::sparql::Serialize(shrunk.query);
        std::fprintf(stderr,
                     "  ast-shrink: %zu -> %zu bytes (%d evals, %d "
                     "reductions)\n",
                     v->input.size(), minimal.size(), shrunk.evals,
                     shrunk.accepted);
        std::string name = "QuerySeed" + std::to_string(config.seed) +
                           "Case" + std::to_string(i);
        std::string reproducer;
        auto text_violation = CheckQueryText(parser, minimal);
        if (text_violation.has_value() &&
            text_violation->invariant == invariant) {
          // The minimal canonical form still parses and still violates:
          // a plain text reproducer works and can shrink further.
          sparqlog::testing::ShrinkOutcome text_shrunk =
              sparqlog::testing::ShrinkText(
                  minimal, [&parser, &invariant](const std::string& text) {
                    auto cv = CheckQueryText(parser, text);
                    return cv.has_value() && cv->invariant == invariant;
                  });
          reproducer = sparqlog::testing::FormatReproducer(
              name, "query", text_shrunk.text, config.seed);
        } else {
          reproducer = sparqlog::testing::FormatSeedReplayReproducer(
              name, config.seed, i, invariant, minimal);
        }
        std::fprintf(stderr, "VIOLATION [%s] %s\n%s\n", v->invariant.c_str(),
                     v->detail.c_str(), reproducer.c_str());
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail << "\n"
            << reproducer << "\n";
      }
    }
    const sparqlog::testing::FuzzCoverage& cov = fuzzer.coverage();
    std::fprintf(stderr,
                 "  queries: %llu checked (%llu from gmark skeletons, "
                 "%llu escaped literals)\n",
                 static_cast<unsigned long long>(cov.queries),
                 static_cast<unsigned long long>(cov.gmark_skeletons),
                 static_cast<unsigned long long>(cov.escaped_literals));
  }

  // Phase 2: mutated log lines — ingest invariants.
  {
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed ^ 0x9E3779B97F4A7C15ULL;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    sparqlog::testing::LogMutatorOptions mutator_options;
    mutator_options.seed = config.seed;
    sparqlog::testing::LogLineMutator mutator(mutator_options);
    // A small rotating pool of query texts keeps generation cheap and
    // produces duplicate-after-mutation collisions on purpose. The
    // handwritten entries carry escape forms the serializer might
    // mishandle — they must NOT come from Serialize itself, or a
    // serializer escaping bug could never reach the parser intact.
    std::vector<std::string> pool = {
        "ASK { ?s ?p \"quo\\\"te\" }",
        "ASK { ?s ?p \"back\\\\slash\\n\\ttab\" }",
        "SELECT * WHERE { ?s ?p \"uni\\u0041code\" }",
        "ASK { ?s ?p '''long\n\"string\"''' }",
        "SELECT ?x WHERE { ?x <p:p> \"l\"@en-us . FILTER(?x != \"\\r\") }",
        "PREFIX ex: <http://e.org/> ASK { ex:s ex:p ex:o }",
        "ASK { ?s <http://e.org/%20sp> \"100%\" }",
        "SELECT (GROUP_CONCAT(?x; SEPARATOR=\"\\\"\") AS ?c) WHERE { ?s ?p ?x }",
    };
    const size_t handwritten = pool.size();
    for (int i = 0; i < 56; ++i) {
      pool.push_back(sparqlog::sparql::Serialize(fuzzer.Next()));
    }
    // One scratch for the whole phase: thousands of sequential
    // ParseLogLine calls reuse the same arena/token/pname state, with a
    // deliberately infrequent Reset so epoch recycling is exercised too.
    // Under ASan/UBSan this is the arena-reuse soak test.
    sparqlog::corpus::ParseScratch scratch;
    for (long i = 0; i < config.lines; ++i) {
      if (i > 0 && i % 97 == 0) {
        // Refresh only fuzzer-generated slots; the handwritten escape
        // fixtures must survive the whole run.
        pool[handwritten +
             static_cast<size_t>(i / 97) % (pool.size() - handwritten)] =
            sparqlog::sparql::Serialize(fuzzer.Next());
      }
      const std::string& text = pool[static_cast<size_t>(i) % pool.size()];
      std::string line = mutator.NextLine(text);
      if (auto v = CheckLogLine(parser, line)) {
        ++violations;
        // Pin the shrink to the observed invariant so byte deletion
        // cannot morph the witness into a different bug.
        std::string invariant = v->invariant;
        Report(config, *v, "log_line", static_cast<int>(i),
               [&parser, invariant](const std::string& candidate) {
                 auto cv = CheckLogLine(parser, candidate);
                 return cv.has_value() && cv->invariant == invariant;
               });
      }
      if (i % 701 == 0) scratch.Reset();
      if (auto v = CheckLogLineScratch(parser, line, scratch)) {
        ++violations;
        std::string invariant = v->invariant;
        Report(config, *v, "log_line_scratch", static_cast<int>(i),
               [&parser, invariant](const std::string& candidate) {
                 // Fresh scratch per candidate: the shrink predicate
                 // must be deterministic, not a function of how many
                 // candidates ran before it.
                 sparqlog::corpus::ParseScratch fresh;
                 auto cv = CheckLogLineScratch(parser, candidate, fresh);
                 return cv.has_value() && cv->invariant == invariant;
               });
      }
    }
    std::fprintf(stderr, "  log lines: %ld checked\n", config.lines);
  }

  // Phase 3: randomized serial-vs-parallel digest equivalence.
  {
    sparqlog::util::Rng rng(config.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed + 1;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    sparqlog::testing::LogMutatorOptions mutator_options;
    mutator_options.seed = config.seed + 1;
    sparqlog::testing::LogLineMutator mutator(mutator_options);
    std::vector<std::string> texts;
    for (int i = 0; i < 48; ++i) {
      texts.push_back(sparqlog::sparql::Serialize(fuzzer.Next()));
    }
    for (long round = 0; round < config.pipeline_rounds; ++round) {
      std::vector<std::string> log;
      log.reserve(static_cast<size_t>(config.pipeline_lines));
      for (long i = 0; i < config.pipeline_lines; ++i) {
        // Duplicates on purpose: dedup correctness is the point.
        log.push_back(
            mutator.NextLine(texts[rng.Below(texts.size())]));
      }
      sparqlog::testing::EquivalenceConfig equiv =
          sparqlog::testing::RandomEquivalenceConfig(rng);
      if (auto v = CheckSerialParallelEquivalence(log, equiv)) {
        ++violations;
        std::fprintf(stderr, "VIOLATION [%s] %s (round %ld)\n",
                     v->invariant.c_str(), v->detail.c_str(), round);
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail << " (round "
            << round << ", seed " << config.seed << ")\n";
      }
    }
    std::fprintf(stderr, "  pipeline rounds: %ld x %ld lines checked\n",
                 config.pipeline_rounds, config.pipeline_lines);
  }

  // Phase 4: randomized serial-vs-sharded streak-report equivalence on
  // fuzzed refinement-session logs (duplicates, small edits, topic
  // switches — the Section 8 workload shape).
  {
    sparqlog::util::Rng rng(config.seed ^ 0x5157EA4B00F5ULL);
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed + 2;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    std::vector<std::string> bases;
    for (int i = 0; i < 24; ++i) {
      bases.push_back(sparqlog::sparql::Serialize(fuzzer.Next()));
    }
    for (long round = 0; round < config.streak_rounds; ++round) {
      std::vector<std::string> log;
      log.reserve(static_cast<size_t>(config.streak_queries));
      std::string current = bases[rng.Below(bases.size())];
      for (long i = 0; i < config.streak_queries; ++i) {
        double roll = rng.NextDouble();
        if (roll < 0.25) {
          current = bases[rng.Below(bases.size())];
        } else if (roll < 0.75 && !current.empty()) {
          // Refinement-session edit: insert, delete, or flip one byte.
          size_t pos = rng.Below(current.size());
          switch (rng.Below(3)) {
            case 0:
              current.insert(pos, 1,
                             static_cast<char>('a' + rng.Below(26)));
              break;
            case 1:
              current.erase(pos, 1);
              break;
            default:
              current[pos] = static_cast<char>('a' + rng.Below(26));
              break;
          }
        }
        log.push_back(current);
      }
      sparqlog::testing::StreakEquivalenceConfig streak_config =
          sparqlog::testing::RandomStreakConfig(rng);
      if (auto v = sparqlog::testing::CheckStreakEquivalence(log,
                                                             streak_config)) {
        ++violations;
        std::fprintf(stderr, "VIOLATION [%s] %s (round %ld)\n",
                     v->invariant.c_str(), v->detail.c_str(), round);
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail << " (round "
            << round << ", seed " << config.seed << ")\n";
      }
    }
    std::fprintf(stderr, "  streak rounds: %ld x %ld queries checked\n",
                 config.streak_rounds, config.streak_queries);
  }

  // Phase 5: structural-analysis equivalence — every fuzzed query runs
  // through the pre-change (reference) and allocation-lean
  // shape/treewidth/GHW paths with a long-lived scratch (so recycled-
  // buffer state leaks surface), then each round's queries form a log
  // (duplicates included) replayed through randomized serial-vs-parallel
  // StatsReport digest equivalence.
  {
    sparqlog::util::Rng rng(config.seed ^ 0xA11A1F5EEDULL);
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed + 3;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    sparqlog::corpus::AnalysisScratch scratch;
    long checked = 0;
    for (long round = 0; round < config.analysis_rounds; ++round) {
      std::vector<std::string> log;
      log.reserve(static_cast<size_t>(config.analysis_queries));
      for (long i = 0; i < config.analysis_queries; ++i) {
        sparqlog::sparql::Query q = fuzzer.Next();
        ++checked;
        if (auto v = sparqlog::testing::CheckAnalysisEquivalence(q, scratch)) {
          ++violations;
          // Shrink structurally, pinned to analysis divergence (a fresh
          // scratch per candidate keeps the reducer deterministic).
          sparqlog::testing::AstShrinkOutcome shrunk =
              sparqlog::testing::ShrinkQueryAst(
                  q, [](const sparqlog::sparql::Query& cand) {
                    sparqlog::corpus::AnalysisScratch fresh;
                    return sparqlog::testing::CheckAnalysisEquivalence(cand,
                                                                       fresh)
                        .has_value();
                  });
          std::string minimal = sparqlog::sparql::Serialize(shrunk.query);
          std::fprintf(stderr,
                       "  ast-shrink: %zu -> %zu bytes (%d evals, %d "
                       "reductions)\n",
                       v->input.size(), minimal.size(), shrunk.evals,
                       shrunk.accepted);
          std::fprintf(stderr, "VIOLATION [%s] %s\n  minimal: %s\n",
                       v->invariant.c_str(), v->detail.c_str(),
                       minimal.c_str());
          std::ofstream out(config.out_path, std::ios::app);
          out << "// [" << v->invariant << "] " << v->detail << " (round "
              << round << ", seed " << config.seed << ")\n// minimal: "
              << minimal << "\n";
        }
        // Duplicates on purpose: the analysis stage runs per *unique*
        // query, so repeated texts exercise dedup + analysis together.
        std::string text = sparqlog::sparql::Serialize(q);
        log.push_back(text);
        if (rng.Chance(0.3)) log.push_back(std::move(text));
      }
      sparqlog::testing::EquivalenceConfig equiv =
          sparqlog::testing::RandomEquivalenceConfig(rng);
      if (auto v = sparqlog::testing::CheckSerialParallelEquivalence(log,
                                                                     equiv)) {
        ++violations;
        std::fprintf(stderr, "VIOLATION [%s] %s (analysis round %ld)\n",
                     v->invariant.c_str(), v->detail.c_str(), round);
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail
            << " (analysis round " << round << ", seed " << config.seed
            << ")\n";
      }
    }
    std::fprintf(stderr,
                 "  analysis rounds: %ld x %ld queries checked (%ld total)\n",
                 config.analysis_rounds, config.analysis_queries, checked);
  }

  // Phase 6: vectorized-scan differential + source equivalence. Scan
  // inputs mix fuzzed queries, mutated log lines, and raw byte soup
  // biased toward the scan primitives' stop bytes ('%', '+', quotes,
  // backslash, newlines, high bytes), with lengths pinned around the
  // 16-byte vector width so register tails and boundary loads are hit.
  {
    sparqlog::util::Rng rng(config.seed ^ 0x51A45CA7D1FFULL);
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed + 4;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    sparqlog::testing::LogMutatorOptions mutator_options;
    mutator_options.seed = config.seed + 4;
    sparqlog::testing::LogLineMutator mutator(mutator_options);

    static constexpr char kSoup[] = {
        '%',    '%',    '+',    '+',    '"',    '"',    '\'',   '\\',
        '\\',   '\n',   '\r',   '\t',   ' ',    '#',    '<',    '>',
        '?',    '$',    '_',    '-',    '.',    ':',    '@',    '^',
        'a',    'b',    'z',    'A',    'Z',    '0',    '9',    'f',
        'F',    '\x00', '\x7f', '\x80', '\xc3', '\xff'};
    auto soup = [&rng](size_t len) {
      std::string s;
      s.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(kSoup[rng.Below(sizeof(kSoup))]);
      }
      return s;
    };

    std::vector<std::string> pool = {"SELECT * WHERE { ?s ?p ?o }"};
    long checked = 0;
    for (long i = 0; i < config.scan_inputs; ++i) {
      std::string input;
      switch (i % 4) {
        case 0:
          input = sparqlog::sparql::Serialize(fuzzer.Next());
          break;
        case 1:
          input = mutator.NextLine(pool[rng.Below(pool.size())]);
          break;
        case 2: {
          // Lengths straddling the vector width stress the tails.
          static constexpr size_t kEdges[] = {0, 1, 15, 16, 17, 31, 32, 33};
          input = soup(kEdges[rng.Below(8)]);
          break;
        }
        default:
          input = soup(rng.Below(160));
          break;
      }
      // The check is quadratic in input length (every start offset);
      // cap it so multi-KB fuzzed queries stay cheap.
      if (input.size() > 512) input.resize(512);
      ++checked;
      if (auto v = sparqlog::testing::CheckScanEquivalence(input)) {
        ++violations;
        std::string invariant = v->invariant;
        Report(config, *v, "scan_input", static_cast<int>(i),
               [invariant](const std::string& candidate) {
                 auto cv = sparqlog::testing::CheckScanEquivalence(candidate);
                 return cv.has_value() && cv->invariant == invariant;
               });
      }
      if (pool.size() < 64 && !input.empty()) pool.push_back(input);
    }

    for (long round = 0; round < config.source_rounds; ++round) {
      std::vector<std::string> lines;
      const size_t n = 50 + rng.Below(350);
      lines.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        switch (rng.Below(4)) {
          case 0:
            lines.push_back("");  // empty lines stress the framing
            break;
          case 1:
            lines.push_back(soup(rng.Below(48)));
            break;
          default:
            lines.push_back(mutator.NextLine(pool[rng.Below(pool.size())]));
            break;
        }
      }
      sparqlog::testing::SourceEquivalenceConfig source_config =
          sparqlog::testing::RandomSourceConfig(rng);
      if (auto v = sparqlog::testing::CheckSourceEquivalence(lines,
                                                             source_config)) {
        ++violations;
        std::fprintf(stderr, "VIOLATION [%s] %s (source round %ld)\n",
                     v->invariant.c_str(), v->detail.c_str(), round);
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail
            << " (source round " << round << ", seed " << config.seed
            << ")\n";
      }
    }
    std::fprintf(stderr,
                 "  scan inputs: %ld checked, source rounds: %ld checked\n",
                 checked, config.source_rounds);
  }

  // Phase 7: seeded fault-injection replay. Each round builds a small
  // mutated log, samples one FaultPlan (source truncation, transient/
  // persistent read errors, allocation failure, poison lines — or the
  // fault-free control) and one pipeline shape, and checks the
  // containment contract: no escape, conservation, quarantine agreement,
  // honest source_status, and bit-identical replay for deterministic
  // plans. A violation report carries the plan description — the plan is
  // a pure function of the phase seed and round, so it replays exactly.
  {
    sparqlog::util::Rng rng(config.seed ^ 0xFA177C0A17ED5ULL);
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed + 7;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    sparqlog::testing::LogMutatorOptions mutator_options;
    mutator_options.seed = config.seed + 7;
    sparqlog::testing::LogLineMutator mutator(mutator_options);
    std::vector<std::string> texts;
    for (int i = 0; i < 32; ++i) {
      texts.push_back(sparqlog::sparql::Serialize(fuzzer.Next()));
    }
    long fault_plans = 0;
    for (long round = 0; round < config.fault_rounds; ++round) {
      std::vector<std::string> log;
      log.reserve(static_cast<size_t>(config.fault_lines));
      for (long i = 0; i < config.fault_lines; ++i) {
        log.push_back(mutator.NextLine(texts[rng.Below(texts.size())]));
      }
      sparqlog::testing::FaultPlan plan =
          sparqlog::testing::RandomFaultPlan(rng);
      if (plan.any()) ++fault_plans;
      sparqlog::testing::EquivalenceConfig equiv =
          sparqlog::testing::RandomEquivalenceConfig(rng);
      if (auto v = sparqlog::testing::CheckFaultContainment(log, plan,
                                                            equiv)) {
        ++violations;
        std::fprintf(stderr, "VIOLATION [%s] %s (fault round %ld, %s)\n",
                     v->invariant.c_str(), v->detail.c_str(), round,
                     plan.Describe().c_str());
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail
            << " (fault round " << round << ", seed " << config.seed << ", "
            << plan.Describe() << ")\n";
      }
    }
    std::fprintf(stderr,
                 "  fault rounds: %ld x %ld lines checked (%ld with faults)\n",
                 config.fault_rounds, config.fault_lines, fault_plans);
  }

  // Phase 8: storage-fault durability replay. Each round builds a small
  // mutated log and samples one StorageFaultPlan — a bit flip, file
  // truncation, torn publish, or fsync/rename failure against a
  // snapshot generation or the journal manifest (or the fault-free
  // control) — then checks the durability contract: every damaged byte
  // is detected, a damaged current generation falls back to the
  // previous one, damage never makes the finished run's digest diverge
  // from an uninterrupted run, and failed publishes surface loudly
  // while the prior checkpoint stays resumable.
  {
    sparqlog::util::Rng rng(config.seed ^ 0x5D15CF0857A6EULL);
    sparqlog::testing::QueryFuzzOptions fuzz_options;
    fuzz_options.seed = config.seed + 8;
    sparqlog::testing::QueryFuzzer fuzzer(fuzz_options);
    sparqlog::testing::LogMutatorOptions mutator_options;
    mutator_options.seed = config.seed + 8;
    sparqlog::testing::LogLineMutator mutator(mutator_options);
    std::vector<std::string> texts;
    for (int i = 0; i < 24; ++i) {
      texts.push_back(sparqlog::sparql::Serialize(fuzzer.Next()));
    }
    long storage_faults = 0;
    for (long round = 0; round < config.snapshot_rounds; ++round) {
      std::vector<std::string> log;
      log.reserve(static_cast<size_t>(config.snapshot_lines));
      for (long i = 0; i < config.snapshot_lines; ++i) {
        log.push_back(mutator.NextLine(texts[rng.Below(texts.size())]));
      }
      sparqlog::testing::StorageFaultPlan plan =
          sparqlog::testing::RandomStorageFaultPlan(rng);
      if (plan.kind != sparqlog::testing::StorageFaultPlan::Kind::kNone) {
        ++storage_faults;
      }
      sparqlog::testing::EquivalenceConfig equiv =
          sparqlog::testing::RandomEquivalenceConfig(rng);
      if (auto v = sparqlog::testing::CheckSnapshotDurability(log, plan,
                                                              equiv)) {
        ++violations;
        std::fprintf(stderr, "VIOLATION [%s] %s (snapshot round %ld, %s)\n",
                     v->invariant.c_str(), v->detail.c_str(), round,
                     plan.Describe().c_str());
        std::ofstream out(config.out_path, std::ios::app);
        out << "// [" << v->invariant << "] " << v->detail
            << " (snapshot round " << round << ", seed " << config.seed
            << ", " << plan.Describe() << ")\n";
      }
    }
    std::fprintf(
        stderr,
        "  snapshot rounds: %ld x %ld lines checked (%ld with faults)\n",
        config.snapshot_rounds, config.snapshot_lines, storage_faults);
  }

  if (violations > 0) {
    std::fprintf(stderr, "fuzz_roundtrip: %d violation(s); reproducers in %s\n",
                 violations, config.out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "fuzz_roundtrip: all invariants held\n");
  return 0;
}
