#!/usr/bin/env python3
"""Snapshot corruption matrix for the journaled pipeline.

Creates a two-generation checkpoint with parallel_runner, then damages
every retained file (current generation, previous generation, manifest)
in several ways (byte flips at several offsets, truncation) and asserts
the documented recovery contract:

  * damaged CURRENT generation  -> the resume recovers via the previous
    generation, finishes, and passes --verify (digest equality);
  * damaged PREVIOUS generation -> invisible: the resume restores the
    current generation, finishes, and passes --verify;
  * damaged manifest            -> hard, reasoned failure (non-zero
    exit; never a silent restart);
  * BOTH generations damaged    -> hard, reasoned failure.

Usage: check_snapshot_corruption.py [path-to-parallel_runner]
"""

import os
import shutil
import subprocess
import sys

RUNNER = sys.argv[1] if len(sys.argv) > 1 else "./build/parallel_runner"
BASE = "corrupt_matrix.ckpt"
COMMON = [
    RUNNER, "--generate", "all", "--entries", "400",
    "--threads", "4", "--shards", "3", "--chunk-size", "64",
    "--segment-chunks", "8", f"--journal={BASE}",
]

failures = []


def gen_path(n: int) -> str:
    return f"{BASE}.g{n}"


def retained():
    return [BASE, gen_path(1), gen_path(2)]


def cleanup():
    # Generation numbers are monotonic and never reused, so repeated
    # local runs leave arbitrary .g<N> files behind — glob, don't guess.
    import glob

    for p in glob.glob(BASE + "*"):
        os.remove(p)


def run(args, label):
    proc = subprocess.run(args, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def flip_byte(path: str, fraction: float):
    size = os.path.getsize(path)
    offset = min(size - 1, int(size * fraction))
    with open(path, "r+b") as f:
        f.seek(offset)
        b = f.read(1)
        f.seek(offset)
        f.write(bytes([b[0] ^ 0x40]))


def truncate(path: str, fraction: float):
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(min(size - 1, int(size * fraction)))


def check(ok: bool, label: str, output: str):
    if ok:
        print(f"  ok: {label}")
    else:
        failures.append(label)
        print(f"  FAIL: {label}\n----\n{output}\n----")


def snapshot_files():
    for path in retained():
        shutil.copyfile(path, path + ".bak")


def restore_files():
    for path in [gen_path(3), gen_path(4)]:
        if os.path.exists(path):
            os.remove(path)
    for path in retained():
        shutil.copyfile(path + ".bak", path)


def main() -> int:
    cleanup()

    # Two checkpointed segments: generations 1 and 2 retained, input
    # remaining for the resume to re-read.
    rc, out = run(COMMON + ["--max-segments", "2"], "setup")
    if rc != 0 or "input remaining" not in out:
        print(f"setup run failed (rc={rc})\n{out}")
        return 1
    for path in retained():
        if not os.path.exists(path):
            print(f"setup did not leave {path}")
            return 1
    snapshot_files()

    damages = [
        ("flip@25%", lambda p: flip_byte(p, 0.25)),
        ("flip@50%", lambda p: flip_byte(p, 0.50)),
        ("flip@99%", lambda p: flip_byte(p, 0.99)),
        ("truncate@50%", lambda p: truncate(p, 0.50)),
    ]

    for dmg_name, damage in damages:
        # Current generation: must fall back and stay exact.
        restore_files()
        damage(gen_path(2))
        rc, out = run(COMMON + ["--verify"], "current")
        check(
            rc == 0
            and "recovered from previous generation" in out
            and "resumed from checkpoint" in out
            and "input complete" in out,
            f"current generation {dmg_name} -> recovered exactly",
            out,
        )

        # Previous generation: must be invisible.
        restore_files()
        damage(gen_path(1))
        rc, out = run(COMMON + ["--verify"], "previous")
        check(
            rc == 0
            and "recovered from previous generation" not in out
            and "resumed from checkpoint" in out
            and "input complete" in out,
            f"previous generation {dmg_name} -> invisible",
            out,
        )

        # Manifest: hard error with a reason.
        restore_files()
        damage(BASE)
        rc, out = run(COMMON + ["--verify"], "manifest")
        check(
            rc != 0 and "journal" in out,
            f"manifest {dmg_name} -> hard reasoned error",
            out,
        )

        # Both generations: hard error, never a silent restart.
        restore_files()
        damage(gen_path(1))
        damage(gen_path(2))
        rc, out = run(COMMON + ["--verify"], "both")
        check(
            rc != 0 and "corrupt" in out,
            f"both generations {dmg_name} -> hard reasoned error",
            out,
        )

    # Control: undamaged resume completes and verifies.
    restore_files()
    rc, out = run(COMMON + ["--verify"], "control")
    check(
        rc == 0
        and "resumed from checkpoint" in out
        and "input complete" in out,
        "undamaged resume -> exact completion",
        out,
    )

    cleanup()
    if failures:
        print(f"\n{len(failures)} corruption-matrix failure(s)")
        return 1
    print("\nsnapshot corruption matrix: all cases held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
