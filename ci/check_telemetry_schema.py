#!/usr/bin/env python3
"""CI telemetry-smoke validator.

Checks the artifacts a `parallel_runner --metrics-json --trace` run
produced:

  * the metrics document validates against ci/telemetry_schema.json
    (a mini JSON-Schema interpreter below — stdlib only, supporting the
    subset the schema uses: type/required/properties/items/minimum/
    maximum/$ref into #/definitions), so renaming or dropping an
    exporter field fails CI until the schema is updated with it;
  * the metrics are internally coherent (shard_queries sum to the shard
    stage's items_in, stall fraction within [0,1]);
  * the trace document is Chrome-trace shaped: every "X" span carries
    ts/dur/pid/tid/name, spans land within [0, wall * 1.1], and every
    track referenced by a span has a thread_name metadata record.

Usage: check_telemetry_schema.py METRICS_JSON TRACE_JSON [SCHEMA_JSON]
Exits non-zero with a message per violation.
"""

import json
import os
import sys


def resolve_ref(schema_root, ref):
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref: {ref}")
    node = schema_root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "string":
        return isinstance(value, str)
    if expected == "boolean":
        return isinstance(value, bool)
    raise ValueError(f"unsupported schema type: {expected}")


def validate(value, schema, schema_root, path, errors):
    if "$ref" in schema:
        schema = resolve_ref(schema_root, schema["$ref"])
    expected = schema.get("type")
    if expected is not None and not type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if expected == "object":
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, schema_root, f"{path}.{key}", errors)
    elif expected == "array":
        items = schema.get("items")
        if items is not None:
            for i, item in enumerate(value):
                validate(item, items, schema_root, f"{path}[{i}]", errors)
    elif expected == "number":
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} above maximum {schema['maximum']}")


def check_metrics(metrics, schema, errors):
    validate(metrics, schema, schema, "$", errors)
    if errors:
        return
    t = metrics["telemetry"]
    shard_sum = sum(t["shard_queries"])
    shard_stage = next(
        (s for s in t["stages"] if s["name"] == "shard"), None)
    if shard_stage is None:
        errors.append("telemetry.stages: no 'shard' stage")
    elif shard_sum != shard_stage["items_in"]:
        errors.append(
            f"shard_queries sum {shard_sum} != shard items_in "
            f"{shard_stage['items_in']}")


def check_trace(trace, errors):
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("trace: traceEvents missing or empty")
        return
    wall_ns = trace.get("otherData", {}).get("wall_ns")
    if not isinstance(wall_ns, (int, float)) or wall_ns <= 0:
        errors.append("trace: otherData.wall_ns missing or non-positive")
        return
    wall_us = wall_ns / 1000.0
    named_tids = set()
    busy_per_tid = {}
    spans = 0
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_tids.add((event.get("pid"), event.get("tid")))
            continue
        if ph != "X":
            errors.append(f"trace[{i}]: unexpected phase {ph!r}")
            continue
        spans += 1
        for key in ("ts", "dur", "pid", "tid", "name"):
            if key not in event:
                errors.append(f"trace[{i}]: span missing '{key}'")
        ts, dur = event.get("ts", 0), event.get("dur", 0)
        if ts < 0 or dur < 0:
            errors.append(f"trace[{i}]: negative ts/dur ({ts}, {dur})")
        # 10% tolerance: span end timestamps are rounded to whole
        # microseconds and the wall clock stops after the last join.
        if ts + dur > wall_us * 1.1:
            errors.append(
                f"trace[{i}]: span ends at {ts + dur}us, past wall "
                f"{wall_us}us (+10%)")
        if (event.get("pid"), event.get("tid")) not in named_tids:
            errors.append(f"trace[{i}]: tid {event.get('tid')} has no "
                          "thread_name metadata")
        key = (event.get("pid"), event.get("tid"))
        busy_per_tid[key] = busy_per_tid.get(key, 0) + dur
    if spans == 0:
        errors.append("trace: no 'X' spans recorded")
    # A worker's spans never overlap (one chunk at a time), so each
    # track's busy time must fit inside the run's wall time.
    for key, busy in busy_per_tid.items():
        if busy > wall_us * 1.1:
            errors.append(
                f"trace: track {key} busy {busy}us exceeds wall "
                f"{wall_us}us (+10%)")


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__)
        return 2
    metrics_path, trace_path = argv[1], argv[2]
    schema_path = argv[3] if len(argv) == 4 else os.path.join(
        os.path.dirname(os.path.abspath(argv[0])), "telemetry_schema.json")
    with open(schema_path) as f:
        schema = json.load(f)
    errors = []
    with open(metrics_path) as f:
        check_metrics(json.load(f), schema, errors)
    with open(trace_path) as f:
        check_trace(json.load(f), errors)
    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if not errors:
        print(f"telemetry schema OK: {metrics_path}, {trace_path}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
