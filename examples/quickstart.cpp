// Quickstart: parse a SPARQL query and run the full per-query analysis
// pipeline of the paper — features, fragment membership, canonical
// graph shape, treewidth, and hypergraph width.
//
// Usage: quickstart ["SPARQL query text"]

#include <iostream>
#include <string>

#include "analysis/features.h"
#include "fragments/fragment.h"
#include "graph/canonical.h"
#include "graph/shapes.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

int main(int argc, char** argv) {
  using namespace sparqlog;

  std::string text =
      argc > 1 ? argv[1]
               : "SELECT ?label ?coord ?subj WHERE { "
                 "?subj wdt:P31/wdt:P279* wd:Q839954 . "
                 "?subj wdt:P625 ?coord . "
                 "?subj rdfs:label ?label FILTER(LANG(?label) = \"en\") }";

  auto parsed = sparql::ParseQuery(text);
  if (!parsed.ok()) {
    std::cerr << "Parse failed: " << parsed.status().ToString() << "\n";
    return 1;
  }
  const sparql::Query& q = parsed.value();
  std::cout << "Canonical form:\n" << sparql::Serialize(q) << "\n\n";

  analysis::QueryFeatures f = analysis::ExtractFeatures(q);
  std::cout << "Triples: " << f.num_triples
            << ", filter: " << (f.filter ? "yes" : "no")
            << ", optional: " << (f.optional ? "yes" : "no")
            << ", property path: " << (f.property_path ? "yes" : "no")
            << "\n";
  std::cout << "Projection: "
            << (f.projection == analysis::ProjectionUse::kYes ? "yes"
                : f.projection == analysis::ProjectionUse::kNo
                    ? "no"
                    : "indeterminate")
            << "\n";

  fragments::FragmentClass fc = fragments::ClassifyFragment(q);
  std::cout << "Fragments: CQ=" << fc.cq << " CPF=" << fc.cpf
            << " CQF=" << fc.cqf << " AOF=" << fc.aof
            << " well-designed=" << fc.well_designed
            << " CQOF=" << fc.cqof << "\n";

  if (q.has_body && !f.property_path && !fc.var_predicate) {
    graph::CanonicalGraph cg = graph::BuildCanonicalGraph(q.where);
    if (cg.valid) {
      graph::ShapeClass s = graph::ClassifyShape(cg.graph);
      std::cout << "Canonical graph: " << cg.graph.num_nodes()
                << " nodes, " << cg.graph.num_edges() << " edges; shape: "
                << (s.single_edge ? "single-edge"
                    : s.chain     ? "chain"
                    : s.star      ? "star"
                    : s.tree      ? "tree"
                    : s.forest    ? "forest"
                    : s.cycle     ? "cycle"
                    : s.flower    ? "flower"
                                  : "complex")
                << "\n";
      std::cout << "Treewidth: " << width::Treewidth(cg.graph).width
                << "\n";
    }
  } else if (q.has_body) {
    std::vector<const sparql::TriplePattern*> triples;
    std::vector<const sparql::Expr*> filters;
    graph::CollectTriplesAndFilters(q.where, triples, filters);
    graph::Hypergraph hg = graph::BuildCanonicalHypergraph(triples, filters);
    width::GhwResult ghw = width::GeneralizedHypertreeWidth(hg);
    std::cout << "Canonical hypergraph: " << hg.num_nodes() << " nodes, "
              << hg.num_edges() << " edges; generalized hypertree width "
              << ghw.width << " (" << ghw.decomposition_nodes
              << " decomposition nodes)\n";
  }
  return 0;
}
