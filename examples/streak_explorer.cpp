// Streak explorer: generates a single-day log with planted refinement
// sessions (users iterating on a seed query) and runs the Section 8
// streak analysis for several window sizes, showing how the window
// affects streak lengths — the paper's closing observation.
//
// Usage: streak_explorer [num_queries]

#include <cstdlib>
#include <iostream>

#include "corpus/generator.h"
#include "corpus/profile.h"
#include "streaks/streaks.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sparqlog;

  size_t num_queries = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;
  auto profiles = corpus::PaperProfiles();
  const corpus::DatasetProfile& profile =
      corpus::ProfileByName(profiles, "DBpedia16");
  auto log = corpus::GenerateStreakLog(profile, num_queries, 0.3, 4242);
  std::cout << "Generated day-log with " << log.size()
            << " queries (30% refinement sessions)\n\n";

  util::Table table({"Window", "Streaks", "Longest", "1-10", "11-20",
                     "21-30", ">30"});
  for (size_t window : {10, 30, 100}) {
    streaks::StreakOptions options;
    options.window = window;
    streaks::StreakDetector detector(options);
    for (const std::string& q : log) detector.Add(q);
    streaks::StreakReport r = detector.Finish();
    uint64_t over30 = 0;
    for (int b = 3; b < 11; ++b) over30 += r.counts[b];
    table.AddRow({std::to_string(window),
                  util::WithThousands(
                      static_cast<long long>(r.total_streaks)),
                  std::to_string(r.longest),
                  util::WithThousands(static_cast<long long>(r.counts[0])),
                  util::WithThousands(static_cast<long long>(r.counts[1])),
                  util::WithThousands(static_cast<long long>(r.counts[2])),
                  util::WithThousands(static_cast<long long>(over30))});
  }
  table.Print(std::cout);
  std::cout << "\nAs in the paper: increasing the window size yields "
               "longer streaks (Section 8).\n";
  return 0;
}
