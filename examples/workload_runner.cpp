// Workload runner: generates a gMark "Bib" graph and chain/star/cycle
// workloads, prints the generated SPARQL and SQL for one sample query,
// and compares both engines on each workload — a miniature of the
// Section 5.1 experiment.
//
// Usage: workload_runner [graph_nodes]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "gmark/graph_gen.h"
#include "gmark/query_gen.h"
#include "sparql/serializer.h"
#include "store/engine.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sparqlog;
  using namespace std::chrono;

  uint64_t nodes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  gmark::Schema schema = gmark::Schema::Bib();
  store::TripleStore store;
  gmark::GraphGenOptions gopts;
  gopts.num_nodes = nodes;
  gmark::GenerateGraph(schema, gopts, store);
  std::cout << "Bib graph: " << store.size() << " triples over " << nodes
            << " nodes\n\n";

  // Show one sample query in both output languages.
  gmark::QueryGenOptions sample_opts;
  sample_opts.shape = gmark::QueryShape::kCycle;
  sample_opts.length = 4;
  sample_opts.workload_size = 1;
  auto sample = gmark::GenerateWorkload(schema, sample_opts);
  std::cout << "Sample cycle query (SPARQL):\n"
            << sparql::Serialize(sample[0].sparql) << "\n";
  std::cout << "Sample cycle query (SQL):\n" << sample[0].sql << "\n\n";

  store::GraphEngine bg(store);
  store::RelationalEngine pg(store);
  util::Table table({"Shape", "Len", "BG avg ms", "PG avg ms",
                     "BG match%", "timeouts PG"});
  for (auto shape : {gmark::QueryShape::kChain, gmark::QueryShape::kStar,
                     gmark::QueryShape::kCycle}) {
    const char* shape_name = shape == gmark::QueryShape::kChain  ? "chain"
                             : shape == gmark::QueryShape::kStar ? "star"
                                                                 : "cycle";
    for (int len : {3, 5}) {
      gmark::QueryGenOptions qopts;
      qopts.shape = shape;
      qopts.length = len;
      qopts.workload_size = 25;
      auto workload = gmark::GenerateWorkload(schema, qopts);
      double bg_ms = 0, pg_ms = 0;
      int matched = 0, evaluated = 0, pg_timeouts = 0;
      for (const auto& q : workload) {
        auto bgp = gmark::CompileForEngine(q, store, schema);
        if (!bgp.has_value()) continue;
        ++evaluated;
        store::EvalStats a =
            bg.Evaluate(*bgp, store::EvalMode::kAsk, milliseconds(100));
        store::EvalStats b =
            pg.Evaluate(*bgp, store::EvalMode::kAsk, milliseconds(100));
        bg_ms += a.elapsed_ns / 1e6;
        pg_ms += b.elapsed_ns / 1e6;
        if (a.matched) ++matched;
        if (b.timed_out) ++pg_timeouts;
      }
      if (evaluated == 0) continue;
      char bg_buf[32], pg_buf[32], m_buf[32];
      std::snprintf(bg_buf, sizeof(bg_buf), "%.3f", bg_ms / evaluated);
      std::snprintf(pg_buf, sizeof(pg_buf), "%.3f", pg_ms / evaluated);
      std::snprintf(m_buf, sizeof(m_buf), "%.0f%%",
                    100.0 * matched / evaluated);
      table.AddRow({shape_name, std::to_string(len), bg_buf, pg_buf,
                    m_buf, std::to_string(pg_timeouts)});
    }
  }
  table.Print(std::cout);
  return 0;
}
