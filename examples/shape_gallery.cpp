// Shape gallery: classifies a gallery of real-world-style queries,
// including the paper's examples (the chain of Example 5.1, the flower
// of Figure 6, the treewidth-3 query of Figure 7), and prints their
// canonical-graph shapes and widths.

#include <iostream>
#include <string>
#include <vector>

#include "fragments/fragment.h"
#include "graph/canonical.h"
#include "graph/shapes.h"
#include "sparql/parser.h"
#include "util/table.h"
#include "width/treewidth.h"

int main() {
  using namespace sparqlog;

  struct Entry {
    const char* name;
    const char* query;
  };
  std::vector<Entry> gallery = {
      {"single edge", "ASK { ?x <p> ?y }"},
      {"single edge w/ constant", "ASK { ?x <p> <Paris> }"},
      {"chain (Ex. 5.1)",
       "ASK { ?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4 }"},
      {"star", "ASK { ?x <p> ?a . ?x <q> ?b . ?x <r> ?c }"},
      {"tree",
       "ASK { ?x <p> ?a . ?x <q> ?b . ?b <r> ?c . ?b <s> ?d }"},
      {"forest", "ASK { ?x <p> ?y . ?a <q> ?b }"},
      {"triangle (cycle)",
       "ASK { ?a <p> ?b . ?b <q> ?c . ?c <r> ?a }"},
      {"square (cycle)",
       "ASK { ?a <p> ?b . ?b <q> ?c . ?c <r> ?d . ?d <s> ?a }"},
      {"petal (theta)",
       "ASK { ?s <p> ?m1 . ?m1 <q> ?t . ?s <r> ?m2 . ?m2 <u> ?t . "
       "?s <v> ?t }"},
      {"flower (Fig. 6 style)",
       "ASK { ?c <p1> ?a . ?a <p2> ?c . ?c <p3> ?b . ?b <p4> ?d . "
       "?d <p5> ?c . ?c <s1> ?e . ?c <s2> ?f . ?f <s3> ?g }"},
      {"treewidth 3 (Fig. 7 style)",
       "SELECT * WHERE { ?subject <nationality> ?n . "
       "?subject <birthPlace> ?b . ?subject <genre> ?g . "
       "?object <nationality> ?n . ?object <birthPlace> ?b . "
       "?object <genre> ?g . ?subject <knows> ?object . ?n <p> ?b }"},
  };

  util::Table table({"Query", "Nodes", "Edges", "Shape", "Girth", "TW"});
  for (const Entry& e : gallery) {
    auto parsed = sparql::ParseQuery(e.query);
    if (!parsed.ok()) {
      std::cerr << e.name << ": " << parsed.status().ToString() << "\n";
      continue;
    }
    graph::CanonicalGraph cg =
        graph::BuildCanonicalGraph(parsed.value().where);
    if (!cg.valid) {
      table.AddRow({e.name, "-", "-", "var predicate", "-", "-"});
      continue;
    }
    graph::ShapeClass s = graph::ClassifyShape(cg.graph);
    std::string shape = s.single_edge ? "single edge"
                        : s.chain     ? "chain"
                        : s.star      ? "star"
                        : s.tree      ? "tree"
                        : s.chain_set ? "chain set"
                        : s.forest    ? "forest"
                        : s.cycle     ? "cycle"
                        : s.flower    ? "flower"
                        : s.flower_set ? "flower set"
                                       : "complex";
    table.AddRow({e.name, std::to_string(cg.graph.num_nodes()),
                  std::to_string(cg.graph.num_edges()), shape,
                  std::to_string(s.girth),
                  std::to_string(width::Treewidth(cg.graph).width)});
  }
  table.Print(std::cout);
  return 0;
}
