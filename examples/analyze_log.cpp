// End-to-end log analysis: reads a query log (one `query=<urlencoded>`
// entry per line) or generates a synthetic one, then prints a compact
// version of the paper's report — pipeline counts, keyword mix,
// fragment shares, and shape summary.
//
// Usage: analyze_log [logfile]
//        analyze_log --generate <DatasetName>   (e.g. DBpedia15)

#include <fstream>
#include <iostream>
#include <string>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace sparqlog;

  std::vector<std::string> lines;
  std::string source = "synthetic:DBpedia15";
  if (argc >= 2 && std::string(argv[1]) == "--generate") {
    std::string name = argc >= 3 ? argv[2] : "DBpedia15";
    auto profiles = corpus::PaperProfiles();
    corpus::GeneratorOptions options;
    options.min_entries = 3000;
    options.scale = 0;
    corpus::SyntheticLogGenerator gen(
        corpus::ProfileByName(profiles, name), options);
    lines = gen.GenerateLog();
    source = "synthetic:" + name;
  } else if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    for (std::string line; std::getline(in, line);) {
      lines.push_back(line);
    }
    source = argv[1];
  } else {
    auto profiles = corpus::PaperProfiles();
    corpus::GeneratorOptions options;
    options.min_entries = 3000;
    options.scale = 0;
    corpus::SyntheticLogGenerator gen(
        corpus::ProfileByName(profiles, "DBpedia15"), options);
    lines = gen.GenerateLog();
  }

  corpus::CorpusAnalyzer analyzer;
  corpus::LogIngestor ingestor;
  ingestor.set_unique_sink(
      [&](const sparql::Query& q) { analyzer.AddQuery(q, "log"); });
  ingestor.ProcessLog(lines);

  const corpus::CorpusStats& stats = ingestor.stats();
  std::cout << "Log: " << source << " (" << lines.size() << " lines)\n\n";
  std::cout << "Pipeline:  total " << util::WithThousands(
                   static_cast<long long>(stats.total))
            << "  ->  valid " << util::WithThousands(
                   static_cast<long long>(stats.valid))
            << "  ->  unique " << util::WithThousands(
                   static_cast<long long>(stats.unique)) << "\n\n";

  const corpus::KeywordCounts& kw = analyzer.keywords();
  double total = static_cast<double>(kw.total);
  util::Table forms({"Form", "Share"});
  forms.AddRow({"Select", util::Percent(static_cast<double>(kw.select), total)});
  forms.AddRow({"Ask", util::Percent(static_cast<double>(kw.ask), total)});
  forms.AddRow({"Describe",
                util::Percent(static_cast<double>(kw.describe), total)});
  forms.AddRow({"Construct",
                util::Percent(static_cast<double>(kw.construct), total)});
  forms.Print(std::cout);

  const corpus::FragmentStats& fs = analyzer.fragments();
  std::cout << "\nFragments (of " << fs.select_ask << " Select/Ask): CQ "
            << fs.cq << ", CQF " << fs.cqf << ", AOF " << fs.aof
            << ", well-designed " << fs.well_designed << ", CQOF "
            << fs.cqof << "\n";

  const corpus::ShapeCounts& cq = analyzer.cq_shapes();
  if (cq.total > 0) {
    std::cout << "\nCQ shapes: " << cq.single_edge << " single-edge, "
              << cq.chain << " chains, " << cq.star << " stars, "
              << cq.tree << " trees, " << cq.cycle << " cycles, "
              << cq.flower << " flowers (of " << cq.total << ")\n";
    std::cout << "Treewidth: <=2: " << cq.treewidth_le2
              << ", =3: " << cq.treewidth_3 << "\n";
  }

  const corpus::PathStats& ps = analyzer.paths();
  std::cout << "\nProperty paths: " << ps.total_paths << " ("
            << ps.navigational << " navigational, " << ps.not_ctract
            << " outside C_tract)\n";
  return 0;
}
