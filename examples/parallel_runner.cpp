// Parallel log analysis: streams a query log through the sharded
// multi-threaded pipeline (src/pipeline/) and prints the Table 1
// counters, keyword mix, and throughput. With --verify, the same input
// is re-run through the serial LogIngestor/CorpusAnalyzer path and the
// merged statistics are checked for exact equality.
//
// Usage: parallel_runner [options] [logfile]
//   --generate <Dataset|all>  synthesize a log instead of reading a file
//   --entries <n>             min entries per generated dataset (default 5000)
//   --threads <n>             parse worker threads (default: hardware)
//   --shards <n>              dedup/analysis shards (default: threads)
//   --chunk-size <n>          lines per work chunk (default 512)
//   --verify                  compare against the serial path

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparqlog;

  std::string generate;
  std::string logfile;
  uint64_t entries = 5000;
  bool verify = false;
  pipeline::PipelineOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--generate") {
      generate = next("--generate");
    } else if (arg == "--entries") {
      entries = std::stoull(next("--entries"));
    } else if (arg == "--threads") {
      options.threads = std::stoi(next("--threads"));
    } else if (arg == "--shards") {
      options.shards = std::stoull(next("--shards"));
    } else if (arg == "--chunk-size") {
      options.chunk_size = std::stoull(next("--chunk-size"));
    } else if (arg == "--verify") {
      verify = true;
    } else if (!arg.empty() && arg[0] != '-') {
      logfile = arg;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (generate.empty() && logfile.empty()) generate = "DBpedia15";

  // ---- Assemble the input (files are streamed, never slurped) ----
  std::vector<std::string> lines;
  std::string source;
  if (!generate.empty()) {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      if (generate != "all" && profile.name != generate) continue;
      corpus::GeneratorOptions gen_options;
      gen_options.scale = 0;
      gen_options.min_entries = entries;
      gen_options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, gen_options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
    if (lines.empty()) {
      std::cerr << "unknown dataset: " << generate << "\n";
      return 2;
    }
    source = "synthetic:" + generate;
  } else {
    source = logfile;
  }

  // ---- Run the pipeline ----
  pipeline::ParallelLogPipeline pl(options);
  pipeline::PipelineResult result;
  auto start = std::chrono::steady_clock::now();
  if (!logfile.empty()) {
    std::ifstream in(logfile);
    if (!in) {
      std::cerr << "cannot open " << logfile << "\n";
      return 2;
    }
    pipeline::IstreamLineSource file_source(in);
    result = pl.Run(file_source);
  } else {
    result = pl.Run(lines);
  }
  double elapsed = Seconds(start);

  std::cout << "Parallel pipeline over " << source << " ("
            << util::WithThousands(static_cast<long long>(result.lines))
            << " lines, " << pl.threads() << " threads, " << pl.shards()
            << " shards, chunk size " << options.chunk_size << ")\n\n";

  util::Table table({"Stage", "Queries", "Share"});
  table.AddRow({"Total", util::WithThousands(result.stats.total), ""});
  table.AddRow({"Valid", util::WithThousands(result.stats.valid),
                util::Percent(result.stats.valid, result.stats.total)});
  table.AddRow({"Unique", util::WithThousands(result.stats.unique),
                util::Percent(result.stats.unique, result.stats.valid)});
  table.Print(std::cout);

  const corpus::KeywordCounts& kw = result.analysis.keywords();
  std::cout << "\nForms: Select "
            << util::Percent(kw.select, kw.total) << ", Ask "
            << util::Percent(kw.ask, kw.total) << ", Describe "
            << util::Percent(kw.describe, kw.total) << ", Construct "
            << util::Percent(kw.construct, kw.total) << "\n";
  std::cout << "Throughput: "
            << util::WithThousands(static_cast<long long>(
                   elapsed > 0 ? result.stats.total / elapsed : 0))
            << " queries/sec (" << elapsed << " s)\n";

  // ---- Optional serial verification ----
  if (verify) {
    corpus::LogIngestor ingestor;
    corpus::CorpusAnalyzer serial;
    ingestor.set_unique_sink(
        [&serial](const sparql::Query& q) { serial.AddQuery(q, "all"); });
    start = std::chrono::steady_clock::now();
    if (!logfile.empty()) {
      std::ifstream in(logfile);  // second pass over the file
      std::string line;
      while (std::getline(in, line)) ingestor.ProcessLine(line);
    } else {
      ingestor.ProcessLog(lines);
    }
    double serial_elapsed = Seconds(start);

    // Exact equality over every aggregate, not just the Table 1 counts.
    bool ok = ingestor.stats().total == result.stats.total &&
              ingestor.stats().valid == result.stats.valid &&
              ingestor.stats().unique == result.stats.unique &&
              pipeline::StatisticsDigest(serial) ==
                  pipeline::StatisticsDigest(result.analysis);
    std::cout << "\nSerial path: " << serial_elapsed << " s; statistics "
              << (ok ? "MATCH" : "DIFFER") << "\n";
    if (!ok) {
      std::cerr << "serial/parallel divergence: total "
                << ingestor.stats().total << " vs " << result.stats.total
                << ", valid " << ingestor.stats().valid << " vs "
                << result.stats.valid << ", unique "
                << ingestor.stats().unique << " vs " << result.stats.unique
                << "\n";
      return 1;
    }
  }
  return 0;
}
