// Parallel log analysis: streams a query log through the sharded
// multi-threaded pipeline (src/pipeline/) and prints the Table 1
// counters, keyword mix, and throughput. With --verify, the same input
// is re-run through the serial LogIngestor/CorpusAnalyzer path and the
// merged statistics are checked for exact equality.
//
// Usage: parallel_runner [options] [logfile]
//   --generate <Dataset|all>  synthesize a log instead of reading a file
//   --entries <n>             min entries per generated dataset (default 5000)
//   --threads <n>             parse worker threads (default: hardware)
//   --shards <n>              dedup/analysis shards (default: threads)
//   --chunk-size <n>          lines per work chunk (default 512)
//   --mmap / --no-mmap        read a logfile through the zero-copy mmap
//                             chunk source (default) or the line-by-line
//                             stream source; mmap falls back to stream
//                             with a warning if the file cannot be mapped
//   --verify                  compare against the serial path; with a
//                             logfile, also re-run the pipeline through
//                             the other ingest source (stream vs mmap)
//                             and require identical statistics digests
//   --streaks                 run the sharded Section 8 streak stage
//                             instead of the corpus pipeline (a logfile
//                             is read as one query per line; --generate
//                             plants refinement sessions; --chunk-size
//                             becomes queries per streak chunk)
//   --analysis-bench          serial per-stage timing breakdown of the
//                             whole workload (ingest+dedup / streak
//                             detection / structural analysis of the
//                             unique corpus) so end-to-end hot-path
//                             wins are visible from the CLI
//   --metrics                 collect per-stage telemetry and print the
//                             stall/skew summary after the run
//   --metrics-json[=PATH]     write the telemetry registry as JSON
//                             (default metrics.json); implies --metrics
//   --metrics-prom[=PATH]     write Prometheus text exposition
//                             (default metrics.prom); implies --metrics
//   --trace[=PATH]            record per-worker spans and write Chrome
//                             trace-event JSON (default trace.json,
//                             load via chrome://tracing)
//   --budget <steps>          per-query step budget for each structural
//                             analysis kernel (ghw, treewidth, girth);
//                             exhausted queries land in the Abandoned
//                             bucket instead of stalling the run
//   --journal[=PATH]          crash-safe run journal (default
//                             run.journal): checkpoint shard state each
//                             segment; rerunning with the same journal
//                             resumes from the watermark. Requires a
//                             resumable source (mmap or in-memory)
//   --max-segments <n>        with --journal: stop after n segments
//                             even if input remains (simulates a kill
//                             at a checkpoint boundary)
//   --segment-chunks <n>      with --journal: reader chunks per segment
//   --snapshot-mmap           with --journal: load checkpoint snapshots
//                             mmap-backed instead of streamed
//                             (checkpoint cadence, default 64)

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "obs/alloc_hooks.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "pipeline/journal.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "pipeline/streak_stage.h"
#include "sparql/serializer.h"
#include "streaks/streaks.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Where the telemetry of a run should go. Empty path == exporter off.
struct TelemetryOutputs {
  bool print_summary = false;
  std::string json_path;
  std::string prom_path;
  std::string trace_path;
};

/// Emits every requested exporter for one run's telemetry/trace pair.
/// Returns false (after a message on stderr) if an output file failed.
bool ExportTelemetry(const TelemetryOutputs& outputs,
                     const std::optional<sparqlog::obs::RunTelemetry>& telemetry,
                     const std::optional<sparqlog::obs::TraceData>& trace) {
  using namespace sparqlog;
  auto open = [](const std::string& path, std::ofstream& out) {
    out.open(path);
    if (!out) std::cerr << "cannot write " << path << "\n";
    return static_cast<bool>(out);
  };
  if (telemetry.has_value()) {
    if (outputs.print_summary) {
      std::cout << "\n";
      obs::PrintSummary(std::cout, *telemetry);
    }
    if (!outputs.json_path.empty()) {
      std::ofstream out;
      if (!open(outputs.json_path, out)) return false;
      obs::WriteTelemetryJson(out, *telemetry);
    }
    if (!outputs.prom_path.empty()) {
      std::ofstream out;
      if (!open(outputs.prom_path, out)) return false;
      out << obs::PrometheusText(*telemetry);
    }
  }
  if (trace.has_value() && !outputs.trace_path.empty()) {
    std::ofstream out;
    if (!open(outputs.trace_path, out)) return false;
    obs::WriteChromeTrace(out, *trace);
    std::cout << "Trace written to " << outputs.trace_path
              << " (load via chrome://tracing)\n";
  }
  return true;
}

/// --streaks mode: the sharded streak stage end to end, with optional
/// bit-exact verification against the serial detector.
int RunStreakStage(const std::vector<std::string>& queries,
                   const std::string& source, int threads, size_t chunk_size,
                   bool verify, const sparqlog::obs::TelemetryOptions& telemetry,
                   const TelemetryOutputs& outputs) {
  using namespace sparqlog;
  pipeline::StreakStageOptions options;
  options.threads = threads;
  options.chunk_size = chunk_size;
  options.telemetry = telemetry;
  pipeline::StreakStage stage(options);

  auto start = std::chrono::steady_clock::now();
  pipeline::StreakStageResult result = stage.Run(queries);
  double elapsed = Seconds(start);

  std::cout << "Streak stage over " << source << " ("
            << util::WithThousands(
                   static_cast<long long>(result.report.queries_processed))
            << " queries, " << result.threads << " threads, "
            << result.chunks << " chunks)\n\n";

  util::Table table({"Streak length", "Count"});
  for (int b = 0; b < 11; ++b) {
    std::string label = b < 10 ? std::to_string(b * 10 + 1) + "-" +
                                     std::to_string(b * 10 + 10)
                               : ">100";
    table.AddRow({label, util::WithThousands(static_cast<long long>(
                             result.report.counts[b]))});
  }
  table.Print(std::cout);
  std::cout << "\nStreaks: "
            << util::WithThousands(
                   static_cast<long long>(result.report.total_streaks))
            << ", longest " << result.report.longest << "\n";
  const streaks::PrefilterStats& pf = result.prefilter;
  std::cout << "Prefilter cascade: "
            << util::WithThousands(static_cast<long long>(pf.pairs))
            << " pairs, Levenshtein calls avoided: "
            << util::WithThousands(static_cast<long long>(
                   pf.exact_hash_hits + pf.length_rejects +
                   pf.charmap_rejects + pf.histogram_rejects))
            << " (exact-hash "
            << util::WithThousands(static_cast<long long>(pf.exact_hash_hits))
            << ", length "
            << util::WithThousands(static_cast<long long>(pf.length_rejects))
            << ", charmap "
            << util::WithThousands(static_cast<long long>(pf.charmap_rejects))
            << ", histogram "
            << util::WithThousands(
                   static_cast<long long>(pf.histogram_rejects))
            << "), reached DP "
            << util::WithThousands(
                   static_cast<long long>(pf.levenshtein_calls))
            << "\n";
  std::cout << "Throughput: "
            << util::WithThousands(static_cast<long long>(
                   elapsed > 0 ? static_cast<double>(queries.size()) / elapsed
                               : 0))
            << " queries/sec (" << elapsed << " s)\n";

  if (!ExportTelemetry(outputs, result.telemetry, result.trace)) return 2;

  if (verify) {
    streaks::StreakDetector detector;
    start = std::chrono::steady_clock::now();
    for (const std::string& q : queries) detector.Add(q);
    streaks::StreakReport serial = detector.Finish();
    double serial_elapsed = Seconds(start);
    bool ok = serial == result.report;
    std::cout << "\nSerial detector: " << serial_elapsed << " s; reports "
              << (ok ? "MATCH" : "DIFFER") << "\n";
    if (result.telemetry.has_value()) {
      std::cout << obs::OneLineSummary(*result.telemetry) << "\n";
    }
    if (!ok) {
      std::cerr << "serial/sharded streak divergence: streaks "
                << serial.total_streaks << " vs "
                << result.report.total_streaks << ", longest "
                << serial.longest << " vs " << result.report.longest << "\n";
      return 1;
    }
  }
  return 0;
}

/// --analysis-bench mode: times the three serial hot paths — ingest
/// (decode + parse + canonical hash + dedup), streak detection over the
/// decoded query texts, and structural analysis (shapes, fragments,
/// widths, paths) of the unique corpus — and prints the breakdown.
int RunAnalysisBench(const std::vector<std::string>& lines,
                     const std::string& source) {
  using namespace sparqlog;

  // ---- Stage 1: ingest (ParseLogLine + dedup), keeping the survivors ----
  sparql::Parser parser;
  std::string decode_buf;
  std::unordered_set<uint64_t> seen;
  std::vector<sparql::Query> unique_queries;
  std::vector<std::string> query_texts;  // every valid occurrence, in order
  corpus::CorpusStats stats;
  auto start = std::chrono::steady_clock::now();
  for (const std::string& line : lines) {
    corpus::ParsedLine parsed =
        corpus::ParseLogLine(parser, std::string_view(line), decode_buf);
    if (!parsed.is_query) continue;
    ++stats.total;
    if (!parsed.valid) continue;
    ++stats.valid;
    query_texts.push_back(sparql::Serialize(*parsed.query));
    if (seen.insert(parsed.canonical_hash).second) {
      ++stats.unique;
      unique_queries.push_back(std::move(*parsed.query));
    }
  }
  double ingest_s = Seconds(start);

  // ---- Stage 2: streak detection over the ordered valid queries ----
  start = std::chrono::steady_clock::now();
  streaks::StreakDetector detector;
  for (const std::string& q : query_texts) detector.Add(q);
  streaks::StreakReport streak_report = detector.Finish();
  double streaks_s = Seconds(start);

  // ---- Stage 3: structural analysis of the unique corpus ----
  start = std::chrono::steady_clock::now();
  corpus::CorpusAnalyzer analyzer;
  for (const sparql::Query& q : unique_queries) analyzer.AddQuery(q, "all");
  double analysis_s = Seconds(start);

  double total = ingest_s + streaks_s + analysis_s;
  std::cout << "Per-stage serial timing over " << source << " ("
            << util::WithThousands(static_cast<long long>(lines.size()))
            << " lines -> " << util::WithThousands(stats.valid) << " valid, "
            << util::WithThousands(stats.unique) << " unique)\n\n";
  util::Table table({"Stage", "Items", "Time (s)", "Items/sec", "Share"});
  auto row = [&](const char* stage, uint64_t items, double seconds) {
    char time_buf[32], share_buf[16];
    std::snprintf(time_buf, sizeof(time_buf), "%.3f", seconds);
    std::snprintf(share_buf, sizeof(share_buf), "%.1f%%",
                  total > 0 ? 100.0 * seconds / total : 0.0);
    table.AddRow({stage, util::WithThousands(items), time_buf,
                  util::WithThousands(static_cast<long long>(
                      seconds > 0 ? static_cast<double>(items) / seconds : 0)),
                  share_buf});
  };
  row("ingest", static_cast<uint64_t>(lines.size()), ingest_s);
  row("streaks", streak_report.queries_processed, streaks_s);
  row("analysis", stats.unique, analysis_s);
  table.Print(std::cout);
  std::cout << "\nStreaks found: "
            << util::WithThousands(
                   static_cast<long long>(streak_report.total_streaks))
            << "; analysis tables cover "
            << util::WithThousands(analyzer.fragments().select_ask)
            << " Select/Ask bodies\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparqlog;

  std::string generate;
  std::string logfile;
  uint64_t entries = 5000;
  bool verify = false;
  bool streaks_mode = false;
  bool analysis_bench = false;
  bool chunk_size_set = false;
  bool use_mmap = true;
  TelemetryOutputs outputs;
  pipeline::PipelineOptions options;
  pipeline::JournalOptions journal;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    // "--flag=PATH" or bare "--flag" (falling back to `fallback`), for
    // the exporters whose value is an optional output path.
    auto path_flag = [&](const char* flag, const char* fallback,
                         std::string& out) {
      std::string prefix = std::string(flag) + "=";
      if (arg == flag) {
        out = fallback;
        return true;
      }
      if (arg.rfind(prefix, 0) == 0) {
        out = arg.substr(prefix.size());
        if (out.empty()) {
          std::cerr << flag << "= needs a path\n";
          std::exit(2);
        }
        return true;
      }
      return false;
    };
    if (arg == "--metrics") {
      options.telemetry.metrics = true;
      outputs.print_summary = true;
    } else if (path_flag("--metrics-json", "metrics.json", outputs.json_path)) {
      options.telemetry.metrics = true;
    } else if (path_flag("--metrics-prom", "metrics.prom", outputs.prom_path)) {
      options.telemetry.metrics = true;
    } else if (path_flag("--trace", "trace.json", outputs.trace_path)) {
      options.telemetry.trace = true;
    } else if (arg == "--generate") {
      generate = next("--generate");
    } else if (arg == "--entries") {
      entries = std::stoull(next("--entries"));
    } else if (arg == "--threads") {
      options.threads = std::stoi(next("--threads"));
    } else if (arg == "--shards") {
      options.shards = std::stoull(next("--shards"));
    } else if (arg == "--chunk-size") {
      options.chunk_size = std::stoull(next("--chunk-size"));
      chunk_size_set = true;
    } else if (arg == "--budget") {
      uint64_t steps = std::stoull(next("--budget"));
      options.analysis_limits.ghw_steps = steps;
      options.analysis_limits.treewidth_steps = steps;
      options.analysis_limits.girth_steps = steps;
    } else if (arg == "--snapshot-mmap") {
      journal.mmap_load = true;
    } else if (path_flag("--journal", "run.journal", journal.path)) {
      // handled
    } else if (arg == "--max-segments") {
      journal.max_segments = std::stoull(next("--max-segments"));
    } else if (arg == "--segment-chunks") {
      journal.chunks_per_segment = std::stoull(next("--segment-chunks"));
    } else if (arg == "--mmap") {
      use_mmap = true;
    } else if (arg == "--no-mmap") {
      use_mmap = false;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--streaks") {
      streaks_mode = true;
    } else if (arg == "--analysis-bench") {
      analysis_bench = true;
    } else if (!arg.empty() && arg[0] != '-') {
      logfile = arg;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (generate.empty() && logfile.empty()) {
    generate = streaks_mode ? "DBpedia16" : "DBpedia15";
  }

  // ---- Streak mode: ordered queries through the sharded streak stage ----
  if (streaks_mode) {
    std::vector<std::string> queries;
    std::string source;
    if (!logfile.empty()) {
      std::ifstream in(logfile);
      if (!in) {
        std::cerr << "cannot open " << logfile << "\n";
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) queries.push_back(std::move(line));
      source = logfile;
    } else {
      auto profiles = corpus::PaperProfiles();
      std::string dataset = generate == "all" ? "DBpedia16" : generate;
      const corpus::DatasetProfile& profile =
          corpus::ProfileByName(profiles, dataset);
      queries = corpus::GenerateStreakLog(profile, entries, 0.3, 2026);
      source = "synthetic:" + dataset;
    }
    // Unless the user pinned a chunk size, let the stage derive one
    // chunk per worker.
    return RunStreakStage(queries, source, options.threads,
                          chunk_size_set ? options.chunk_size : 0, verify,
                          options.telemetry, outputs);
  }

  // ---- Assemble the input (files are streamed, never slurped) ----
  std::vector<std::string> lines;
  std::string source;
  if (!generate.empty()) {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      if (generate != "all" && profile.name != generate) continue;
      corpus::GeneratorOptions gen_options;
      gen_options.scale = 0;
      gen_options.min_entries = entries;
      gen_options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, gen_options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
    if (lines.empty()) {
      std::cerr << "unknown dataset: " << generate << "\n";
      return 2;
    }
    source = "synthetic:" + generate;
  } else {
    source = logfile;
  }

  // ---- Per-stage serial breakdown (--analysis-bench) ----
  if (analysis_bench) {
    if (lines.empty() && !logfile.empty()) {
      std::ifstream in(logfile);
      if (!in) {
        std::cerr << "cannot open " << logfile << "\n";
        return 2;
      }
      std::string line;
      while (std::getline(in, line)) lines.push_back(std::move(line));
    }
    return RunAnalysisBench(lines, source);
  }

  // ---- Run the pipeline ----
  // --verify reports the one-line telemetry digest (stall/skew/allocs)
  // alongside the equivalence verdict, so collection rides along.
  if (verify) options.telemetry.metrics = true;
  pipeline::ParallelLogPipeline pl(options);
  pipeline::PipelineResult result;
  std::optional<pipeline::JournalRunResult> journaled;
  bool used_mmap = false;
  uint64_t input_bytes = 0;
  // With --journal the source is consumed in checkpointed segments; the
  // journal layer rejects non-resumable sources, so a logfile always
  // goes through MmapChunkSource (use_mmap=false keeps the buffered
  // fallback resumable) and never the stream source.
  auto run_journaled = [&](pipeline::ChunkSource& src) -> bool {
    auto jr = pipeline::RunWithJournal(options, src, journal);
    if (!jr.ok()) {
      std::cerr << "journal run failed: " << jr.status().ToString() << "\n";
      return false;
    }
    journaled = std::move(jr.value());
    result = std::move(journaled->result);
    return true;
  };
  auto start = std::chrono::steady_clock::now();
  if (!logfile.empty()) {
    std::unique_ptr<pipeline::MmapChunkSource> mapped;
    if (use_mmap || !journal.path.empty()) {
      pipeline::MmapChunkSource::Options mopts;
      mopts.use_mmap = use_mmap;
      auto opened = pipeline::MmapChunkSource::Open(logfile, mopts);
      if (opened.ok()) {
        mapped = std::move(opened.value());
      } else if (!journal.path.empty()) {
        std::cerr << "cannot open " << logfile << " for a journaled run ("
                  << opened.status().ToString() << ")\n";
        return 2;
      } else {
        std::cerr << "mmap failed (" << opened.status().ToString()
                  << "); falling back to stream source\n";
      }
    }
    if (mapped != nullptr) {
      used_mmap = use_mmap;
      input_bytes = mapped->size_bytes();
      if (!journal.path.empty()) {
        if (!run_journaled(*mapped)) return 2;
      } else {
        result = pl.Run(*mapped);
      }
    } else {
      std::ifstream in(logfile);
      if (!in) {
        std::cerr << "cannot open " << logfile << "\n";
        return 2;
      }
      pipeline::IstreamLineSource file_source(in);
      result = pl.Run(file_source);
    }
  } else {
    for (const std::string& line : lines) input_bytes += line.size();
    if (!journal.path.empty()) {
      pipeline::VectorChunkSource vec(lines);
      if (!run_journaled(vec)) return 2;
    } else {
      result = pl.Run(lines);
    }
  }
  double elapsed = Seconds(start);

  std::cout << "Parallel pipeline over " << source << " ("
            << util::WithThousands(static_cast<long long>(result.lines))
            << " lines, " << pl.threads() << " threads, " << pl.shards()
            << " shards, chunk size " << options.chunk_size << ", "
            << (logfile.empty() ? "in-memory"
                                : (used_mmap ? "mmap" : "stream"))
            << " source)\n\n";

  util::Table table({"Stage", "Queries", "Share"});
  table.AddRow({"Total", util::WithThousands(result.stats.total), ""});
  table.AddRow({"Valid", util::WithThousands(result.stats.valid),
                util::Percent(result.stats.valid, result.stats.total)});
  table.AddRow({"Unique", util::WithThousands(result.stats.unique),
                util::Percent(result.stats.unique, result.stats.valid)});
  table.AddRow({"Malformed", util::WithThousands(result.stats.malformed),
                util::Percent(result.stats.malformed, result.stats.total)});
  if (result.stats.abandoned > 0) {
    table.AddRow({"Abandoned", util::WithThousands(result.stats.abandoned),
                  util::Percent(result.stats.abandoned, result.stats.total)});
  }
  if (result.stats.quarantined > 0) {
    table.AddRow({"Quarantined",
                  util::WithThousands(result.stats.quarantined),
                  util::Percent(result.stats.quarantined,
                                result.stats.total)});
  }
  table.Print(std::cout);

  if (journaled.has_value()) {
    std::cout << "\nJournal " << journal.path << ": "
              << journaled->segments << " segment"
              << (journaled->segments == 1 ? "" : "s") << " this run"
              << (journaled->resumed ? ", resumed from checkpoint" : "")
              << (journaled->complete ? ", input complete"
                                      : ", input remaining")
              << ", snapshot generation " << journaled->generation << "\n";
    if (journaled->recovered_previous_generation) {
      std::cout << "  recovered from previous generation ("
                << journaled->recovery_reason << ")\n";
    }
  }
  if (!result.source_status.ok()) {
    std::cerr << "source failed mid-run ("
              << result.source_status.ToString()
              << "); counters cover the lines read before the failure\n";
  }
  if (result.quarantine.count > 0) {
    std::cout << "\nQuarantined " << result.quarantine.count
              << " line(s); first reproducers:\n";
    size_t shown = 0;
    for (const auto& sample : result.quarantine.samples) {
      if (++shown > 3) break;
      std::cout << "  chunk " << sample.chunk << " line "
                << sample.line_index << " (" << sample.reason
                << "): " << sample.line.substr(0, 96)
                << (sample.line.size() > 96 ? "..." : "") << "\n";
    }
  }

  const corpus::KeywordCounts& kw = result.analysis.keywords();
  std::cout << "\nForms: Select "
            << util::Percent(kw.select, kw.total) << ", Ask "
            << util::Percent(kw.ask, kw.total) << ", Describe "
            << util::Percent(kw.describe, kw.total) << ", Construct "
            << util::Percent(kw.construct, kw.total) << "\n";
  std::cout << "Throughput: "
            << util::WithThousands(static_cast<long long>(
                   elapsed > 0 ? result.stats.total / elapsed : 0))
            << " queries/sec, "
            << util::WithThousands(static_cast<long long>(
                   elapsed > 0 ? result.lines / elapsed : 0))
            << " lines/sec";
  if (input_bytes > 0 && elapsed > 0) {
    char mb_buf[32];
    std::snprintf(mb_buf, sizeof(mb_buf), "%.1f",
                  static_cast<double>(input_bytes) / (1e6 * elapsed));
    std::cout << ", " << mb_buf << " MB/s";
  }
  std::cout << " (" << elapsed << " s)\n";

  if (!ExportTelemetry(outputs, result.telemetry, result.trace)) return 2;

  // ---- Optional verification: cross-source, then serial ----
  if (verify && journaled.has_value() && !journaled->complete) {
    std::cout << "\nSkipping verification: the journaled run stopped "
                 "before exhausting the input (rerun with the same "
                 "--journal to finish, then verify)\n";
    verify = false;
  }
  if (verify && !logfile.empty()) {
    // Re-run through the ingest source NOT used above; the two sources
    // must be indistinguishable down to the full statistics digest.
    pipeline::PipelineResult other;
    bool ran_other = false;
    if (used_mmap) {
      std::ifstream in(logfile);
      if (in) {
        pipeline::IstreamLineSource file_source(in);
        other = pl.Run(file_source);
        ran_other = true;
      }
    } else {
      auto opened = pipeline::MmapChunkSource::Open(logfile);
      if (opened.ok()) {
        other = pl.Run(*opened.value());
        ran_other = true;
      } else {
        std::cerr << "cross-source verify: mmap unavailable ("
                  << opened.status().ToString() << ")\n";
      }
    }
    if (ran_other) {
      bool ok = other.lines == result.lines &&
                other.stats.total == result.stats.total &&
                other.stats.valid == result.stats.valid &&
                other.stats.unique == result.stats.unique &&
                pipeline::StatisticsDigest(other.analysis) ==
                    pipeline::StatisticsDigest(result.analysis);
      std::cout << "\nCross-source (" << (used_mmap ? "stream" : "mmap")
                << " re-run): statistics " << (ok ? "MATCH" : "DIFFER")
                << "\n";
      if (!ok) {
        std::cerr << "mmap/stream source divergence: lines " << result.lines
                  << " vs " << other.lines << ", total "
                  << result.stats.total << " vs " << other.stats.total
                  << ", valid " << result.stats.valid << " vs "
                  << other.stats.valid << ", unique " << result.stats.unique
                  << " vs " << other.stats.unique << "\n";
        return 1;
      }
    }
  }
  if (verify && options.analysis_limits.any()) {
    std::cout << "\nSkipping serial verification: --budget moves "
                 "exhausted queries to Abandoned, which the unbudgeted "
                 "serial path cannot reproduce\n";
    verify = false;
  }
  if (verify) {
    corpus::LogIngestor ingestor;
    corpus::CorpusAnalyzer serial;
    ingestor.set_unique_sink(
        [&serial](const sparql::Query& q) { serial.AddQuery(q, "all"); });
    start = std::chrono::steady_clock::now();
    if (!logfile.empty()) {
      std::ifstream in(logfile);  // second pass over the file
      std::string line;
      while (std::getline(in, line)) ingestor.ProcessLine(line);
    } else {
      ingestor.ProcessLog(lines);
    }
    double serial_elapsed = Seconds(start);

    // Exact equality over every aggregate, not just the Table 1 counts.
    bool ok = ingestor.stats().total == result.stats.total &&
              ingestor.stats().valid == result.stats.valid &&
              ingestor.stats().unique == result.stats.unique &&
              pipeline::StatisticsDigest(serial) ==
                  pipeline::StatisticsDigest(result.analysis);
    std::cout << "\nSerial path: " << serial_elapsed << " s; statistics "
              << (ok ? "MATCH" : "DIFFER") << "\n";
    if (result.telemetry.has_value()) {
      std::cout << obs::OneLineSummary(*result.telemetry) << "\n";
    }
    if (!ok) {
      std::cerr << "serial/parallel divergence: total "
                << ingestor.stats().total << " vs " << result.stats.total
                << ", valid " << ingestor.stats().valid << " vs "
                << result.stats.valid << ", unique "
                << ingestor.stats().unique << " vs " << result.stats.unique
                << "\n";
      return 1;
    }
  }
  return 0;
}
