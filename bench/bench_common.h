#ifndef SPARQLOG_BENCH_BENCH_COMMON_H_
#define SPARQLOG_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "obs/alloc_tracker.h"
#include "obs/json_writer.h"

namespace sparqlog::bench {

/// The streaming JSON writer behind every BENCH_*.json emitter and the
/// allocation-phase helpers now live in src/obs/ (the telemetry
/// subsystem shares them); these aliases keep bench code reading
/// naturally. A bench that wants live allocation counts must still
/// include obs/alloc_hooks.h from exactly one translation unit.
using JsonWriter = obs::JsonWriter;
using PhaseResult = obs::PhaseResult;
using obs::AllocatedBytes;
using obs::AllocationCount;
using obs::RunPhase;

/// Path for a bench's JSON artifact: SPARQLOG_BENCH_JSON overrides the
/// per-bench default so CI runs can redirect without editing code.
inline std::string BenchJsonPath(const char* fallback) {
  const char* env = std::getenv("SPARQLOG_BENCH_JSON");
  return env != nullptr ? env : fallback;
}

/// Positive integer knob from the environment (bench sizing).
inline uint64_t EnvCount(const char* name, uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

/// Scale factor for the synthetic corpus, overridable via the
/// SPARQLOG_SCALE environment variable (fraction of the paper's log
/// sizes; default keeps each bench within a few seconds).
inline double ScaleFromEnv(double fallback = 0.0002) {
  const char* env = std::getenv("SPARQLOG_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Runs the full Table 1 pipeline over all 13 datasets, feeding every
/// unique (or valid, when `use_valid_corpus`) query into `analyzer`.
/// Returns per-dataset pipeline stats.
struct DatasetRun {
  std::string name;
  corpus::CorpusStats stats;
};

inline std::vector<DatasetRun> RunCorpus(corpus::CorpusAnalyzer& analyzer,
                                         double scale,
                                         bool use_valid_corpus = false,
                                         uint64_t min_entries = 300) {
  std::vector<DatasetRun> runs;
  auto profiles = corpus::PaperProfiles();
  uint64_t seed = 2017;
  for (const auto& profile : profiles) {
    corpus::GeneratorOptions options;
    options.scale = scale;
    options.min_entries = min_entries;
    options.seed = seed++;
    corpus::SyntheticLogGenerator gen(profile, options);
    corpus::LogIngestor ingestor;
    const std::string dataset = profile.name;
    if (use_valid_corpus) {
      ingestor.set_valid_sink([&analyzer, dataset](const sparql::Query& q) {
        analyzer.AddQuery(q, dataset);
      });
    } else {
      ingestor.set_unique_sink([&analyzer, dataset](const sparql::Query& q) {
        analyzer.AddQuery(q, dataset);
      });
    }
    ingestor.ProcessLog(gen.GenerateLog());
    runs.push_back({profile.name, ingestor.stats()});
  }
  return runs;
}

}  // namespace sparqlog::bench

#endif  // SPARQLOG_BENCH_BENCH_COMMON_H_
