#ifndef SPARQLOG_BENCH_BENCH_COMMON_H_
#define SPARQLOG_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"

namespace sparqlog::bench {

/// Path for a bench's JSON artifact: SPARQLOG_BENCH_JSON overrides the
/// per-bench default so CI runs can redirect without editing code.
inline std::string BenchJsonPath(const char* fallback) {
  const char* env = std::getenv("SPARQLOG_BENCH_JSON");
  return env != nullptr ? env : fallback;
}

/// Positive integer knob from the environment (bench sizing).
inline uint64_t EnvCount(const char* name, uint64_t fallback) {
  if (const char* env = std::getenv(name)) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) return v;
  }
  return fallback;
}

/// Minimal streaming JSON writer shared by the BENCH_*.json emitters
/// (ingest, streaks, analysis): tracks nesting and emits commas and
/// two-space indentation, so bench code states keys and values only.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& Key(std::string_view k) {
    NextItem();
    Escaped(k);
    out_ << ": ";
    have_key_ = true;
    return *this;
  }

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Value(std::string_view v) {
    Prefix();
    Escaped(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(uint64_t v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(int v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(double v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(bool v) {
    Prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }

  template <typename T>
  JsonWriter& KV(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }

  void Finish() { out_ << "\n"; }

 private:
  JsonWriter& Open(char c) {
    Prefix();
    out_ << c;
    frames_.push_back(true);
    return *this;
  }
  JsonWriter& Close(char c) {
    bool empty = frames_.back();
    frames_.pop_back();
    if (!empty) Newline();
    out_ << c;
    return *this;
  }
  void NextItem() {
    if (frames_.empty()) return;
    if (!frames_.back()) out_ << ',';
    frames_.back() = false;
    Newline();
  }
  void Prefix() {
    if (have_key_) {
      have_key_ = false;
      return;
    }
    NextItem();
  }
  void Newline() {
    out_ << '\n';
    for (size_t i = 0; i < frames_.size(); ++i) out_ << "  ";
  }
  void Escaped(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      unsigned char u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out_ << '\\' << c;
      } else if (c == '\n') {
        out_ << "\\n";
      } else if (c == '\t') {
        out_ << "\\t";
      } else if (c == '\r') {
        out_ << "\\r";
      } else if (u < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", u);
        out_ << buf;
      } else {
        out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> frames_;  // true = frame has no children yet
  bool have_key_ = false;
};

/// Scale factor for the synthetic corpus, overridable via the
/// SPARQLOG_SCALE environment variable (fraction of the paper's log
/// sizes; default keeps each bench within a few seconds).
inline double ScaleFromEnv(double fallback = 0.0002) {
  const char* env = std::getenv("SPARQLOG_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Runs the full Table 1 pipeline over all 13 datasets, feeding every
/// unique (or valid, when `use_valid_corpus`) query into `analyzer`.
/// Returns per-dataset pipeline stats.
struct DatasetRun {
  std::string name;
  corpus::CorpusStats stats;
};

inline std::vector<DatasetRun> RunCorpus(corpus::CorpusAnalyzer& analyzer,
                                         double scale,
                                         bool use_valid_corpus = false,
                                         uint64_t min_entries = 300) {
  std::vector<DatasetRun> runs;
  auto profiles = corpus::PaperProfiles();
  uint64_t seed = 2017;
  for (const auto& profile : profiles) {
    corpus::GeneratorOptions options;
    options.scale = scale;
    options.min_entries = min_entries;
    options.seed = seed++;
    corpus::SyntheticLogGenerator gen(profile, options);
    corpus::LogIngestor ingestor;
    const std::string dataset = profile.name;
    if (use_valid_corpus) {
      ingestor.set_valid_sink([&analyzer, dataset](const sparql::Query& q) {
        analyzer.AddQuery(q, dataset);
      });
    } else {
      ingestor.set_unique_sink([&analyzer, dataset](const sparql::Query& q) {
        analyzer.AddQuery(q, dataset);
      });
    }
    ingestor.ProcessLog(gen.GenerateLog());
    runs.push_back({profile.name, ingestor.stats()});
  }
  return runs;
}

}  // namespace sparqlog::bench

#endif  // SPARQLOG_BENCH_BENCH_COMMON_H_
