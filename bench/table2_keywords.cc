// Regenerates Table 2 ("Keyword count in queries", unique corpus) plus
// the Section 4.4 subquery/projection numbers.

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale);
  const corpus::KeywordCounts& kw = analyzer.keywords();
  double total = static_cast<double>(kw.total);

  std::cout << "Table 2: keyword counts, unique corpus (scale=" << scale
            << ", " << util::WithThousands(static_cast<long long>(kw.total))
            << " queries)\n\n";
  util::Table table({"Element", "Absolute", "Relative", "Paper"});
  auto row = [&](const char* name, uint64_t count, const char* paper) {
    table.AddRow({name,
                  util::WithThousands(static_cast<long long>(count)),
                  util::Percent(static_cast<double>(count), total), paper});
  };
  row("Select", kw.select, "87.97%");
  row("Ask", kw.ask, "4.97%");
  row("Describe", kw.describe, "4.49%");
  row("Construct", kw.construct, "2.47%");
  table.AddSeparator();
  row("Distinct", kw.distinct, "21.72%");
  row("Limit", kw.limit, "17.00%");
  row("Offset", kw.offset, "6.15%");
  row("Order By", kw.order_by, "2.06%");
  table.AddSeparator();
  row("Filter", kw.filter, "40.15%");
  row("And", kw.conj, "28.25%");
  row("Union", kw.union_, "18.63%");
  row("Opt", kw.optional, "16.21%");
  row("Graph", kw.graph, "2.71%");
  row("Not Exists", kw.not_exists, "1.65%");
  row("Minus", kw.minus, "1.36%");
  row("Exists", kw.exists, "0.01%");
  table.AddSeparator();
  row("Count", kw.count, "0.57%");
  row("Max", kw.max, "0.01%");
  row("Min", kw.min, "0.01%");
  row("Avg", kw.avg, "<0.01%");
  row("Sum", kw.sum, "<0.01%");
  row("Group By", kw.group_by, "0.30%");
  row("Having", kw.having, "0.02%");
  table.Print(std::cout);

  const corpus::ProjectionStats& pj = analyzer.projection();
  std::cout << "\nSection 4.4 (subqueries and projection):\n";
  std::cout << "  subqueries: "
            << util::Percent(static_cast<double>(pj.with_subqueries), total)
            << " (paper: 0.54%)\n";
  std::cout << "  projection: "
            << util::Percent(static_cast<double>(pj.with_projection), total)
            << " (paper: 14.98%; Select "
            << util::Percent(static_cast<double>(pj.select_with_projection),
                             total)
            << " + Ask "
            << util::Percent(static_cast<double>(pj.ask_with_projection),
                             total)
            << ")\n";
  std::cout << "  indeterminate (Bind/AS): "
            << util::Percent(static_cast<double>(pj.indeterminate), total)
            << " (paper: 1.3%)\n";
  return 0;
}
