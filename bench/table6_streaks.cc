// Regenerates Table 6: streak-length histogram over three single-day
// DBpedia logs (window 30, normalized Levenshtein <= 25% after prefix
// removal). The paper's day logs (273MiB / 803MiB / 1004MiB) are
// simulated by planted refinement sessions of proportional sizes.
//
// The run is also the streak fast-path benchmark and divergence gate:
// each day log goes through (1) the pre-change reference detector
// (per-pair banded DP, no prefilters, per-query string copies),
// (2) the optimized serial StreakDetector, and (3) the sharded
// StreakStage — timing each, counting allocations per query, and
// recording how many Levenshtein calls every prefilter tier avoided.
// Results land in BENCH_streaks.json (override with SPARQLOG_BENCH_JSON)
// and the process exits non-zero if any path's StreakReport differs
// from the reference in any field.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/alloc_hooks.h"
#include "bench_common.h"
#include "corpus/generator.h"
#include "corpus/profile.h"
#include "pipeline/streak_stage.h"
#include "streaks/streaks.h"
#include "util/levenshtein.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace sparqlog;

// --------------------------------------------------------------------------
// The pre-change detector, kept verbatim as the timing baseline and the
// report oracle: per-pair SimilarByLevenshtein through the allocating
// banded DP, no fingerprints, no prefilters, a std::string per query.
// --------------------------------------------------------------------------
namespace reference {

/// The pre-change banded DP, verbatim: two fresh heap rows per call.
size_t BoundedLevenshteinAlloc(std::string_view a, std::string_view b,
                               size_t max_dist) {
  if (a.size() < b.size()) std::swap(a, b);
  size_t n = a.size(), m = b.size();
  if (n - m > max_dist) return max_dist + 1;
  if (max_dist == 0) return a == b ? 0 : 1;

  const size_t kInf = max_dist + 1;
  std::vector<size_t> row(m + 1, kInf), next(m + 1, kInf);
  size_t lo0 = 0, hi0 = std::min(m, max_dist);
  for (size_t j = lo0; j <= hi0; ++j) row[j] = j;

  for (size_t i = 1; i <= n; ++i) {
    size_t lo = (i > max_dist) ? i - max_dist : 0;
    size_t hi = std::min(m, i + max_dist);
    if (lo > hi) return kInf;
    std::fill(next.begin() + static_cast<long>(lo),
              next.begin() + static_cast<long>(hi) + 1, kInf);
    if (lo >= 1) next[lo - 1] = kInf;
    size_t best = kInf;
    for (size_t j = lo; j <= hi; ++j) {
      size_t v = kInf;
      if (j == 0) {
        v = i;
      } else {
        size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
        size_t diag = row[j - 1];
        v = std::min(v, diag == kInf ? kInf : diag + cost);
        if (row[j] != kInf) v = std::min(v, row[j] + 1);
        if (next[j - 1] != kInf) v = std::min(v, next[j - 1] + 1);
      }
      if (v > kInf) v = kInf;
      next[j] = v;
      best = std::min(best, v);
    }
    if (best > max_dist) return kInf;
    std::swap(row, next);
  }
  return std::min(row[m], kInf);
}

class StreakDetector {
 public:
  explicit StreakDetector(streaks::StreakOptions options)
      : options_(options) {}

  void Add(const std::string& raw_query) {
    Entry entry;
    entry.text = options_.strip_prologue ? streaks::StripPrologue(raw_query)
                                         : raw_query;
    entry.index = next_index_++;
    ++report_.queries_processed;
    while (!window_.empty() &&
           next_index_ - window_.front().index > options_.window) {
      const Entry& old = window_.front();
      if (!old.extended) report_.AddStreakLength(old.streak_length);
      window_.pop_front();
    }
    bool matched_any = false;
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
      size_t longer = std::max(it->text.size(), entry.text.size());
      bool similar;
      if (longer == 0) {
        similar = true;
      } else {
        size_t budget = static_cast<size_t>(std::floor(
            options_.similarity_threshold * static_cast<double>(longer)));
        similar =
            BoundedLevenshteinAlloc(it->text, entry.text, budget) <= budget;
      }
      if (!similar) continue;
      if (!it->has_later_similar) {
        if (!matched_any || it->streak_length + 1 > entry.streak_length) {
          entry.streak_length = it->streak_length + 1;
        }
        it->extended = true;
        matched_any = true;
      }
      it->has_later_similar = true;
    }
    window_.push_back(std::move(entry));
  }

  streaks::StreakReport Finish() {
    for (const Entry& e : window_) {
      if (!e.extended) report_.AddStreakLength(e.streak_length);
    }
    window_.clear();
    streaks::StreakReport out = report_;
    report_ = streaks::StreakReport();
    next_index_ = 0;
    return out;
  }

 private:
  struct Entry {
    std::string text;
    size_t index;
    bool has_later_similar = false;
    uint64_t streak_length = 1;
    bool extended = false;
  };
  streaks::StreakOptions options_;
  std::deque<Entry> window_;
  size_t next_index_ = 0;
  streaks::StreakReport report_;
};

}  // namespace reference

struct PathResult {
  double seconds = 0;
  uint64_t allocations = 0;
  uint64_t bytes_allocated = 0;
  streaks::StreakReport report;
};

template <typename Fn>
PathResult TimePath(Fn&& fn) {
  PathResult r;
  streaks::StreakReport report;
  bench::PhaseResult phase =
      bench::RunPhase("", [&report, &fn] { report = fn(); });
  r.seconds = phase.seconds;
  r.bytes_allocated = phase.bytes_allocated;
  r.allocations = phase.allocations;
  r.report = std::move(report);
  return r;
}

}  // namespace

int main() {
  using namespace sparqlog;

  size_t base = bench::EnvCount("SPARQLOG_STREAK_QUERIES", 4000);
  const std::string json_path = bench::BenchJsonPath("BENCH_streaks.json");

  // Day-log sizes proportional to the paper's 273 / 803 / 1004 MiB.
  struct Day {
    const char* dataset;
    size_t queries;
    double session_rate;
  };
  const Day days[] = {
      {"DBpedia14", base, 0.20},
      {"DBpedia15", base * 3, 0.25},
      {"DBpedia16", base * 37 / 10, 0.35},
  };

  std::cout << "Table 6: streak lengths in three single-day logs "
               "(window 30, Levenshtein <= 25%)\n\n";
  streaks::StreakReport reports[3];
  PathResult reference_results[3], fast_results[3], sharded_results[3];
  streaks::PrefilterStats fast_stats[3];
  pipeline::StreakStageResult stage_results[3];
  size_t day_queries[3] = {0, 0, 0};
  bool diverged = false;
  auto profiles = corpus::PaperProfiles();
  for (int d = 0; d < 3; ++d) {
    const corpus::DatasetProfile& profile =
        corpus::ProfileByName(profiles, days[d].dataset);
    auto log = corpus::GenerateStreakLog(profile, days[d].queries,
                                         days[d].session_rate,
                                         static_cast<uint64_t>(77 + d));
    day_queries[d] = log.size();

    streaks::StreakOptions options;
    reference_results[d] = TimePath([&] {
      reference::StreakDetector detector(options);
      for (const std::string& q : log) detector.Add(q);
      return detector.Finish();
    });
    streaks::PrefilterStats day_stats;
    fast_results[d] = TimePath([&] {
      streaks::StreakDetector detector(options);
      for (const std::string& q : log) detector.Add(q);
      streaks::StreakReport report = detector.Finish();
      day_stats = detector.prefilter_stats();
      return report;
    });
    fast_stats[d] = day_stats;
    sharded_results[d] = TimePath([&] {
      pipeline::StreakStageOptions stage_options;
      stage_options.streak = options;
      stage_results[d] = pipeline::StreakStage(stage_options).Run(log);
      return stage_results[d].report;
    });

    reports[d] = fast_results[d].report;
    if (!(reference_results[d].report == fast_results[d].report)) {
      std::fprintf(stderr,
                   "FAIL: fast serial report diverges from the reference "
                   "detector on %s\n",
                   days[d].dataset);
      diverged = true;
    }
    if (!(reference_results[d].report == sharded_results[d].report)) {
      std::fprintf(stderr,
                   "FAIL: sharded report diverges from the reference "
                   "detector on %s\n",
                   days[d].dataset);
      diverged = true;
    }
  }

  util::Table table({"Streak length", "#DBP'14", "#DBP'15", "#DBP'16",
                     "Paper '16"});
  const char* paper16[] = {"199,375", "37,402", "17,749", "5,849", "1,998",
                           "711",     "357",    "129",    "54",    "27",
                           "24"};
  for (int b = 0; b < 11; ++b) {
    std::string label = b < 10 ? std::to_string(b * 10 + 1) + "-" +
                                     std::to_string(b * 10 + 10)
                               : ">100";
    table.AddRow({label,
                  util::WithThousands(
                      static_cast<long long>(reports[0].counts[b])),
                  util::WithThousands(
                      static_cast<long long>(reports[1].counts[b])),
                  util::WithThousands(
                      static_cast<long long>(reports[2].counts[b])),
                  paper16[b]});
  }
  table.Print(std::cout);
  std::cout << "\nLongest streaks: " << reports[0].longest << " / "
            << reports[1].longest << " / " << reports[2].longest
            << " (paper: longest 169, in the 2016 log)\n";

  // ---- Fast-path scoreboard ----
  std::cout << "\nStreak throughput (queries/sec) and allocations/query:\n";
  util::Table perf({"Day", "Queries", "Reference q/s", "Fast q/s",
                    "Sharded q/s", "Speedup", "Ref allocs/q",
                    "Fast allocs/q"});
  for (int d = 0; d < 3; ++d) {
    double n = static_cast<double>(day_queries[d]);
    double ref_qps =
        reference_results[d].seconds > 0 ? n / reference_results[d].seconds : 0;
    double fast_qps =
        fast_results[d].seconds > 0 ? n / fast_results[d].seconds : 0;
    double sharded_qps =
        sharded_results[d].seconds > 0 ? n / sharded_results[d].seconds : 0;
    double speedup = reference_results[d].seconds > 0 && fast_results[d].seconds > 0
                         ? reference_results[d].seconds / fast_results[d].seconds
                         : 0;
    char speedup_buf[32];
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.1fx", speedup);
    perf.AddRow(
        {days[d].dataset, util::WithThousands(static_cast<long long>(n)),
         util::WithThousands(static_cast<long long>(ref_qps)),
         util::WithThousands(static_cast<long long>(fast_qps)),
         util::WithThousands(static_cast<long long>(sharded_qps)), speedup_buf,
         std::to_string(reference_results[d].allocations /
                        std::max<uint64_t>(1, day_queries[d])),
         std::to_string(fast_results[d].allocations /
                        std::max<uint64_t>(1, day_queries[d]))});
  }
  perf.Print(std::cout);

  std::cout << "\nPrefilter cascade (DBP'16 day): ";
  {
    const streaks::PrefilterStats& s = fast_stats[2];
    std::cout << util::WithThousands(static_cast<long long>(s.pairs))
              << " pairs -> "
              << util::WithThousands(
                     static_cast<long long>(s.exact_hash_hits))
              << " exact-hash, "
              << util::WithThousands(static_cast<long long>(s.length_rejects))
              << " length, "
              << util::WithThousands(
                     static_cast<long long>(s.charmap_rejects))
              << " charmap, "
              << util::WithThousands(
                     static_cast<long long>(s.histogram_rejects))
              << " histogram, "
              << util::WithThousands(
                     static_cast<long long>(s.levenshtein_calls))
              << " reached the DP\n";
  }

  // ---- BENCH_streaks.json ----
  {
    std::ofstream out(json_path);
    bench::JsonWriter json(out);
    json.BeginObject();
    json.KV("bench", "table6_streaks");
    json.KV("base_queries", static_cast<uint64_t>(base));
    json.Key("days").BeginArray();
    for (int d = 0; d < 3; ++d) {
      double n = static_cast<double>(day_queries[d]);
      auto qps = [n](const PathResult& r) {
        return r.seconds > 0 ? static_cast<uint64_t>(n / r.seconds) : 0;
      };
      auto path = [&json, &qps](const char* name, const PathResult& r) {
        json.Key(name).BeginObject();
        json.KV("seconds", r.seconds);
        json.KV("lines_per_sec", qps(r));
        json.KV("allocations", r.allocations);
        json.KV("bytes_allocated", r.bytes_allocated);
        json.EndObject();
      };
      const streaks::PrefilterStats& s = fast_stats[d];
      json.BeginObject();
      json.KV("dataset", days[d].dataset);
      json.KV("queries", static_cast<uint64_t>(day_queries[d]));
      path("reference", reference_results[d]);
      path("fast_serial", fast_results[d]);
      json.Key("sharded").BeginObject();
      json.KV("seconds", sharded_results[d].seconds);
      json.KV("lines_per_sec", qps(sharded_results[d]));
      json.KV("threads", stage_results[d].threads);
      json.KV("chunks", static_cast<uint64_t>(stage_results[d].chunks));
      json.EndObject();
      json.KV("speedup_fast_vs_reference",
              fast_results[d].seconds > 0
                  ? reference_results[d].seconds / fast_results[d].seconds
                  : 0.0);
      json.Key("prefilter").BeginObject();
      json.KV("pairs", s.pairs);
      json.KV("exact_hash_hits", s.exact_hash_hits);
      json.KV("length_rejects", s.length_rejects);
      json.KV("charmap_rejects", s.charmap_rejects);
      json.KV("histogram_rejects", s.histogram_rejects);
      json.KV("levenshtein_calls", s.levenshtein_calls);
      json.EndObject();
      json.KV("longest", reports[d].longest);
      json.EndObject();
    }
    json.EndArray();
    json.KV("reports_match", !diverged);
    json.EndObject();
    json.Finish();
  }
  std::cout << "\nWrote " << json_path << "\n";

  if (diverged) {
    std::fprintf(stderr,
                 "FAIL: fast-path StreakReport diverged from the reference "
                 "detector\n");
    return 1;
  }
  return 0;
}
