// Regenerates Table 6: streak-length histogram over three single-day
// DBpedia logs (window 30, normalized Levenshtein <= 25% after prefix
// removal). The paper's day logs (273MiB / 803MiB / 1004MiB) are
// simulated by planted refinement sessions of proportional sizes.

#include <iostream>

#include "corpus/generator.h"
#include "corpus/profile.h"
#include "streaks/streaks.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;

  size_t base = 4000;
  if (const char* env = std::getenv("SPARQLOG_STREAK_QUERIES")) {
    base = std::strtoull(env, nullptr, 10);
  }
  // Day-log sizes proportional to the paper's 273 / 803 / 1004 MiB.
  struct Day {
    const char* dataset;
    size_t queries;
    double session_rate;
  };
  const Day days[] = {
      {"DBpedia14", base, 0.20},
      {"DBpedia15", base * 3, 0.25},
      {"DBpedia16", base * 37 / 10, 0.35},
  };

  std::cout << "Table 6: streak lengths in three single-day logs "
               "(window 30, Levenshtein <= 25%)\n\n";
  streaks::StreakReport reports[3];
  auto profiles = corpus::PaperProfiles();
  for (int d = 0; d < 3; ++d) {
    const corpus::DatasetProfile& profile =
        corpus::ProfileByName(profiles, days[d].dataset);
    auto log = corpus::GenerateStreakLog(profile, days[d].queries,
                                         days[d].session_rate,
                                         static_cast<uint64_t>(77 + d));
    streaks::StreakDetector detector;
    for (const std::string& q : log) detector.Add(q);
    reports[d] = detector.Finish();
  }

  util::Table table({"Streak length", "#DBP'14", "#DBP'15", "#DBP'16",
                     "Paper '16"});
  const char* paper16[] = {"199,375", "37,402", "17,749", "5,849", "1,998",
                           "711",     "357",    "129",    "54",    "27",
                           "24"};
  for (int b = 0; b < 11; ++b) {
    std::string label = b < 10 ? std::to_string(b * 10 + 1) + "-" +
                                     std::to_string(b * 10 + 10)
                               : ">100";
    table.AddRow({label,
                  util::WithThousands(
                      static_cast<long long>(reports[0].counts[b])),
                  util::WithThousands(
                      static_cast<long long>(reports[1].counts[b])),
                  util::WithThousands(
                      static_cast<long long>(reports[2].counts[b])),
                  paper16[b]});
  }
  table.Print(std::cout);
  std::cout << "\nLongest streaks: " << reports[0].longest << " / "
            << reports[1].longest << " / " << reports[2].longest
            << " (paper: longest 169, in the 2016 log)\n";
  return 0;
}
