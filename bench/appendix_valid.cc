// Regenerates the appendix results (Tables 7, 8, 9 and Figures 8, 9,
// 10): the same analyses as Tables 2-5 / Figures 1, 5 but over the
// *Valid* corpus (duplicates included). The paper observes that larger
// and more complex queries occur relatively more often in the
// duplicate-free (unique) corpus.

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale, /*use_valid_corpus=*/true);
  const corpus::KeywordCounts& kw = analyzer.keywords();
  double total = static_cast<double>(kw.total);

  std::cout << "Appendix: analyses over the Valid corpus (duplicates "
               "included; scale=" << scale << ", "
            << util::WithThousands(static_cast<long long>(kw.total))
            << " queries)\n\n";

  std::cout << "Table 7: keyword counts (valid corpus)\n";
  util::Table t7({"Element", "Absolute", "Relative"});
  auto row7 = [&](const char* name, uint64_t count) {
    t7.AddRow({name, util::WithThousands(static_cast<long long>(count)),
               util::Percent(static_cast<double>(count), total)});
  };
  row7("Select", kw.select);
  row7("Ask", kw.ask);
  row7("Describe", kw.describe);
  row7("Construct", kw.construct);
  row7("Distinct", kw.distinct);
  row7("Limit", kw.limit);
  row7("Offset", kw.offset);
  row7("Order By", kw.order_by);
  row7("Filter", kw.filter);
  row7("And", kw.conj);
  row7("Union", kw.union_);
  row7("Opt", kw.optional);
  row7("Graph", kw.graph);
  t7.Print(std::cout);

  const analysis::OperatorSetDistribution& dist = analyzer.operator_sets();
  std::cout << "\nTable 8: operator sets (valid corpus); CPF subtotal: "
            << util::Percent(static_cast<double>(dist.CpfSubtotal()),
                             static_cast<double>(dist.total))
            << " (paper: 44.17%)\n";

  std::cout << "\nFigure 8: per-dataset Avg#T over the valid corpus:\n";
  util::Table f8({"Dataset", "Avg#T", "S/A%"});
  for (const auto& [name, ts] : analyzer.per_dataset()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ts.AvgTriples());
    f8.AddRow({name, buf,
               util::Percent(static_cast<double>(ts.select_ask),
                             static_cast<double>(ts.all_queries))});
  }
  f8.Print(std::cout);

  const corpus::FragmentStats& fs = analyzer.fragments();
  std::cout << "\nFigure 9: fragment shares (valid corpus): CQ "
            << util::Percent(static_cast<double>(fs.cq),
                             static_cast<double>(fs.aof))
            << ", CQF "
            << util::Percent(static_cast<double>(fs.cqf),
                             static_cast<double>(fs.aof))
            << ", CQOF "
            << util::Percent(static_cast<double>(fs.cqof),
                             static_cast<double>(fs.aof)) << " of AOF\n";

  std::cout << "\nTable 9: shape analysis (valid corpus, CQ column):\n";
  const corpus::ShapeCounts& cq = analyzer.cq_shapes();
  util::Table t9({"Shape", "#Queries", "Relative %", "Paper"});
  auto row9 = [&](const char* name, uint64_t v, const char* paper) {
    t9.AddRow({name, util::WithThousands(static_cast<long long>(v)),
               util::Percent(static_cast<double>(v),
                             static_cast<double>(cq.total)),
               paper});
  };
  row9("single edge", cq.single_edge, "82.79%");
  row9("chain", cq.chain, "98.40%");
  row9("chain set", cq.chain_set, "98.60%");
  row9("star", cq.star, "1.24%");
  row9("tree", cq.tree, "99.68%");
  row9("forest", cq.forest, "99.89%");
  row9("cycle", cq.cycle, "0.10%");
  row9("flower", cq.flower, "99.79%");
  row9("flower set", cq.flower_set, "99.99%");
  row9("treewidth <= 2", cq.treewidth_le2, "100.00%");
  t9.Print(std::cout);

  const corpus::PathStats& ps = analyzer.paths();
  std::cout << "\nFigure 10: property paths (valid corpus): total "
            << util::WithThousands(static_cast<long long>(ps.total_paths))
            << ", navigational "
            << util::WithThousands(static_cast<long long>(ps.navigational))
            << ", outside C_tract "
            << util::WithThousands(static_cast<long long>(ps.not_ctract))
            << " (paper: 1)\n";
  return 0;
}
