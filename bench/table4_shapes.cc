// Regenerates Table 4 (cumulative shape analysis of CQ / CQF / CQOF),
// the girth statistics of Section 6.1, and the hypergraph widths of
// Section 6.2 (variable-predicate CQOF queries).

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale);

  std::cout << "Table 4: cumulative shape analysis of CQ / CQF / CQOF "
               "(canonical graphs; variable-predicate queries excluded)\n\n";
  const corpus::ShapeCounts* cols[3] = {&analyzer.cq_shapes(),
                                        &analyzer.cqf_shapes(),
                                        &analyzer.cqof_shapes()};
  util::Table table({"Shape", "CQ", "CQ %", "CQF", "CQF %", "CQOF",
                     "CQOF %", "Paper CQ%"});
  auto row = [&](const char* name,
                 uint64_t corpus::ShapeCounts::*member, const char* paper) {
    std::vector<std::string> cells = {name};
    for (const corpus::ShapeCounts* sc : cols) {
      cells.push_back(
          util::WithThousands(static_cast<long long>(sc->*member)));
      cells.push_back(util::Percent(static_cast<double>(sc->*member),
                                    static_cast<double>(sc->total)));
    }
    cells.push_back(paper);
    table.AddRow(std::move(cells));
  };
  row("single edge", &corpus::ShapeCounts::single_edge, "77.98%");
  row("chain", &corpus::ShapeCounts::chain, "98.87%");
  row("chain set", &corpus::ShapeCounts::chain_set, "98.93%");
  row("star", &corpus::ShapeCounts::star, "0.94%");
  row("tree", &corpus::ShapeCounts::tree, "99.90%");
  row("forest", &corpus::ShapeCounts::forest, "99.95%");
  row("cycle", &corpus::ShapeCounts::cycle, "0.03%");
  row("flower", &corpus::ShapeCounts::flower, "99.94%");
  row("flower set", &corpus::ShapeCounts::flower_set, "100.00%");
  row("treewidth <= 2", &corpus::ShapeCounts::treewidth_le2, "100.00%");
  row("treewidth = 3", &corpus::ShapeCounts::treewidth_3, "1 query");
  {
    std::vector<std::string> cells = {"total"};
    for (const corpus::ShapeCounts* sc : cols) {
      cells.push_back(util::WithThousands(static_cast<long long>(sc->total)));
      cells.push_back("100.00%");
    }
    cells.push_back("");
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);

  std::cout << "\nConstants: "
            << util::Percent(
                   static_cast<double>(
                       analyzer.cq_shapes().single_edge_with_constants),
                   static_cast<double>(analyzer.cq_shapes().single_edge))
            << " of single-edge CQs use constants (paper: 78.70%)\n";

  std::cout << "\nShortest cycles in cyclic queries (Section 6.1; paper: "
               "len 3: 39,471; len 4: 6,561; len 5: 5,733; max 14):\n";
  util::Table girth({"Cycle length", "CQOF queries"});
  for (const auto& [len, count] : analyzer.cqof_shapes().girth) {
    girth.AddRow({std::to_string(len),
                  util::WithThousands(static_cast<long long>(count))});
  }
  girth.Print(std::cout);

  const corpus::HypergraphStats& hg = analyzer.hypergraphs();
  std::cout << "\nSection 6.2: generalized hypertree width of "
               "variable-predicate CQOF queries (paper: all width 1 except "
               "86 with width 2 and 8 with width 3):\n";
  util::Table ghw({"ghw", "Queries"});
  ghw.AddRow({"1", util::WithThousands(static_cast<long long>(hg.ghw1))});
  ghw.AddRow({"2", util::WithThousands(static_cast<long long>(hg.ghw2))});
  ghw.AddRow({"3", util::WithThousands(static_cast<long long>(hg.ghw3))});
  ghw.AddRow({">3", util::WithThousands(static_cast<long long>(hg.ghw_more))});
  ghw.Print(std::cout);
  std::cout << "Decompositions with >10 nodes: "
            << hg.decompositions_gt10_nodes << ", >100 nodes: "
            << hg.decompositions_gt100_nodes
            << " (paper: several hundred with >100 nodes)\n";
  return 0;
}
