#ifndef SPARQLOG_BENCH_ALLOC_TRACKER_H_
#define SPARQLOG_BENCH_ALLOC_TRACKER_H_

// Global allocation counters for the hot-path benches: overriding the
// usual new/delete pairs in the bench binary makes "bytes allocated per
// query/line" a first-class, regression-checkable metric without any
// external tooling.
//
// Include this header from exactly ONE translation unit per bench
// binary (the replacement operator new/delete definitions are
// deliberately non-inline, as the standard requires).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

namespace sparqlog::bench {

namespace alloc_internal {
inline std::atomic<uint64_t> g_alloc_bytes{0};
inline std::atomic<uint64_t> g_alloc_count{0};
}  // namespace alloc_internal

inline uint64_t AllocatedBytes() {
  return alloc_internal::g_alloc_bytes.load(std::memory_order_relaxed);
}
inline uint64_t AllocationCount() {
  return alloc_internal::g_alloc_count.load(std::memory_order_relaxed);
}

/// One timed + allocation-counted section of a bench run.
struct PhaseResult {
  std::string name;
  double seconds = 0;
  uint64_t bytes_allocated = 0;
  uint64_t allocations = 0;
};

/// Times `fn` and charges it with the allocations it performed.
template <typename Fn>
PhaseResult RunPhase(std::string name, Fn&& fn) {
  PhaseResult r;
  r.name = std::move(name);
  uint64_t bytes0 = AllocatedBytes();
  uint64_t count0 = AllocationCount();
  auto start = std::chrono::steady_clock::now();
  fn();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.bytes_allocated = AllocatedBytes() - bytes0;
  r.allocations = AllocationCount() - count0;
  return r;
}

}  // namespace sparqlog::bench

void* operator new(std::size_t n) {
  sparqlog::bench::alloc_internal::g_alloc_bytes.fetch_add(
      n, std::memory_order_relaxed);
  sparqlog::bench::alloc_internal::g_alloc_count.fetch_add(
      1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // SPARQLOG_BENCH_ALLOC_TRACKER_H_
