// Microbenchmark: shape classification, treewidth, and generalized
// hypertree width on query-sized graphs — the per-query cost of the
// Table 4 pipeline.

#include <benchmark/benchmark.h>

#include "graph/graph.h"
#include "graph/hypergraph.h"
#include "graph/shapes.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace {

using namespace sparqlog;

graph::Graph Flower(int petals, int petal_len, int stamens) {
  graph::Graph g(1 + petals * (petal_len - 1) + stamens);
  int next = 1;
  for (int p = 0; p < petals; ++p) {
    int prev = 0;
    for (int i = 0; i < petal_len - 1; ++i) {
      g.AddEdge(prev, next);
      prev = next++;
    }
    g.AddEdge(prev, 0);
  }
  for (int s = 0; s < stamens; ++s) g.AddEdge(0, next++);
  return g;
}

void BM_ClassifyShapeChain(benchmark::State& state) {
  graph::Graph g(static_cast<int>(state.range(0)));
  for (int i = 0; i + 1 < state.range(0); ++i) g.AddEdge(i, i + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ClassifyShape(g));
  }
}
BENCHMARK(BM_ClassifyShapeChain)->Arg(8)->Arg(64)->Arg(229);

void BM_ClassifyShapeChainScratch(benchmark::State& state) {
  graph::Graph g(static_cast<int>(state.range(0)));
  for (int i = 0; i + 1 < state.range(0); ++i) g.AddEdge(i, i + 1);
  graph::ShapeScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ClassifyShape(g, scratch));
  }
}
BENCHMARK(BM_ClassifyShapeChainScratch)->Arg(8)->Arg(64)->Arg(229);

void BM_TreewidthCycleScratch(benchmark::State& state) {
  graph::Graph g(static_cast<int>(state.range(0)));
  for (int i = 0; i < state.range(0); ++i) {
    g.AddEdge(i, static_cast<int>((i + 1) % state.range(0)));
  }
  width::TreewidthScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(width::Treewidth(g, scratch));
  }
}
BENCHMARK(BM_TreewidthCycleScratch)->Arg(8)->Arg(64)->Arg(200);

void BM_GhwTriangleChainScratch(benchmark::State& state) {
  graph::Hypergraph hg;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    hg.AddEdge({2 * i, 2 * i + 1});
    hg.AddEdge({2 * i + 1, 2 * i + 2});
    hg.AddEdge({2 * i, 2 * i + 2});
  }
  width::GhwScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(width::GeneralizedHypertreeWidth(hg, scratch));
  }
}
BENCHMARK(BM_GhwTriangleChainScratch)->Arg(1)->Arg(3)->Arg(6);

void BM_ClassifyShapeFlower(benchmark::State& state) {
  graph::Graph g = Flower(static_cast<int>(state.range(0)), 4, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::ClassifyShape(g));
  }
}
BENCHMARK(BM_ClassifyShapeFlower)->Arg(2)->Arg(4)->Arg(8);

void BM_TreewidthCycle(benchmark::State& state) {
  graph::Graph g(static_cast<int>(state.range(0)));
  for (int i = 0; i < state.range(0); ++i) {
    g.AddEdge(i, static_cast<int>((i + 1) % state.range(0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(width::Treewidth(g));
  }
}
BENCHMARK(BM_TreewidthCycle)->Arg(8)->Arg(64)->Arg(200);

void BM_TreewidthGrid4x4(benchmark::State& state) {
  graph::Graph g(16);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      if (c + 1 < 4) g.AddEdge(r * 4 + c, r * 4 + c + 1);
      if (r + 1 < 4) g.AddEdge(r * 4 + c, (r + 1) * 4 + c);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(width::Treewidth(g));
  }
}
BENCHMARK(BM_TreewidthGrid4x4);

void BM_GhwTriangleChain(benchmark::State& state) {
  // A chain of triangles: ghw 2, several components to decompose.
  graph::Hypergraph hg;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    hg.AddEdge({2 * i, 2 * i + 1});
    hg.AddEdge({2 * i + 1, 2 * i + 2});
    hg.AddEdge({2 * i, 2 * i + 2});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(width::GeneralizedHypertreeWidth(hg));
  }
}
BENCHMARK(BM_GhwTriangleChain)->Arg(1)->Arg(3)->Arg(6);

void BM_GhwAcyclicChain(benchmark::State& state) {
  graph::Hypergraph hg;
  for (int i = 0; i < state.range(0); ++i) hg.AddEdge({i, i + 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(width::GeneralizedHypertreeWidth(hg));
  }
}
BENCHMARK(BM_GhwAcyclicChain)->Arg(8)->Arg(64)->Arg(229);

}  // namespace
