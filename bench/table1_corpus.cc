// Regenerates Table 1: "Sizes of query logs in our corpus" —
// Total / Valid / Unique query counts per dataset, via the full
// cleaning -> parsing -> deduplication pipeline over the calibrated
// synthetic logs (scaled; relative percentages match the paper).

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  std::cout << "Table 1: sizes of query logs (synthetic corpus, scale="
            << scale << ")\n\n";

  corpus::CorpusAnalyzer analyzer;  // unused here but exercises the path
  auto runs = bench::RunCorpus(analyzer, scale);

  util::Table table({"Source", "Total #Q", "Valid #Q", "Unique #Q",
                     "Valid%", "Unique/Valid%"});
  corpus::CorpusStats totals;
  for (const auto& run : runs) {
    totals.total += run.stats.total;
    totals.valid += run.stats.valid;
    totals.unique += run.stats.unique;
    table.AddRow({run.name,
                  util::WithThousands(static_cast<long long>(run.stats.total)),
                  util::WithThousands(static_cast<long long>(run.stats.valid)),
                  util::WithThousands(static_cast<long long>(run.stats.unique)),
                  util::Percent(static_cast<double>(run.stats.valid),
                                static_cast<double>(run.stats.total)),
                  util::Percent(static_cast<double>(run.stats.unique),
                                static_cast<double>(run.stats.valid))});
  }
  table.AddSeparator();
  table.AddRow({"Total",
                util::WithThousands(static_cast<long long>(totals.total)),
                util::WithThousands(static_cast<long long>(totals.valid)),
                util::WithThousands(static_cast<long long>(totals.unique)),
                util::Percent(static_cast<double>(totals.valid),
                              static_cast<double>(totals.total)),
                util::Percent(static_cast<double>(totals.unique),
                              static_cast<double>(totals.valid))});
  table.Print(std::cout);
  std::cout << "\nPaper (Table 1): Total 180,653,910 / Valid 173,798,237 "
               "(96.2%) / Unique 56,164,661 (32.3% of valid)\n";
  return 0;
}
