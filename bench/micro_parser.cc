// Microbenchmark: parser and serializer throughput on representative
// queries (the validity check is the hot loop of the Table 1 pipeline).

#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"

namespace {

using namespace sparqlog;

const char* kSimple = "SELECT * WHERE { ?s ?p ?o }";
const char* kMedium =
    "PREFIX dbo: <http://dbpedia.org/ontology/> SELECT DISTINCT ?x ?n "
    "WHERE { ?x a dbo:Person ; dbo:birthPlace ?bp ; foaf:name ?n . "
    "OPTIONAL { ?x dbo:deathPlace ?dp } FILTER(LANG(?n) = \"en\") } "
    "ORDER BY ?n LIMIT 100";
const char* kComplex =
    "SELECT ?item (COUNT(DISTINCT ?site) AS ?c) WHERE { "
    "?item wdt:P31/wdt:P279* wd:Q839954 . ?item wdt:P625 ?coord . "
    "{ SELECT ?site WHERE { ?site wdt:P17 ?country } LIMIT 50 } "
    "FILTER NOT EXISTS { ?item wdt:P582 ?end } } GROUP BY ?item "
    "ORDER BY DESC(?c) LIMIT 10";

void BM_ParseSimple(benchmark::State& state) {
  sparql::Parser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(kSimple));
  }
}
BENCHMARK(BM_ParseSimple);

void BM_ParseMedium(benchmark::State& state) {
  sparql::Parser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(kMedium));
  }
}
BENCHMARK(BM_ParseMedium);

void BM_ParseComplex(benchmark::State& state) {
  sparql::Parser parser;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(kComplex));
  }
}
BENCHMARK(BM_ParseComplex);

void BM_ParseGenerated(benchmark::State& state) {
  auto profiles = corpus::PaperProfiles();
  corpus::GeneratorOptions options;
  corpus::SyntheticLogGenerator gen(profiles[0], options);
  std::vector<std::string> queries;
  for (int i = 0; i < 256; ++i) {
    queries.push_back(sparql::Serialize(gen.GenerateQuery()));
  }
  sparql::Parser parser;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Parse(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_ParseGenerated);

void BM_SerializeRoundTrip(benchmark::State& state) {
  auto q = sparql::ParseQuery(kMedium);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparql::Serialize(q.value()));
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_LexMedium(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparql::Lexer::Tokenize(kMedium));
  }
}
BENCHMARK(BM_LexMedium);

// The dedup key computed the old way: materialize the canonical string,
// then hash it. Baseline for BM_CanonicalHash.
void BM_SerializeThenHash(benchmark::State& state) {
  auto q = sparql::ParseQuery(kMedium);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        corpus::HashBytes(sparql::Serialize(q.value())));
  }
}
BENCHMARK(BM_SerializeThenHash);

// The dedup key streamed through the hashing sink — no canonical
// string is ever built.
void BM_CanonicalHash(benchmark::State& state) {
  auto q = sparql::ParseQuery(kMedium);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparql::CanonicalHash(q.value()));
  }
}
BENCHMARK(BM_CanonicalHash);

}  // namespace
