// Regenerates Figure 5 ("Size of CQ-like queries with at least two
// triples") and the Section 5.2 fragment shares: CQ, CQF, CQOF as
// fractions of the AOF patterns, plus the 1-triple fractions.

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale);
  const corpus::FragmentStats& fs = analyzer.fragments();

  std::cout << "Section 5.2 fragment shares (Select/Ask with body: "
            << util::WithThousands(static_cast<long long>(fs.select_ask))
            << ")\n\n";
  util::Table shares({"Fragment", "Absolute", "% of AOF", "Paper"});
  double aof = static_cast<double>(fs.aof);
  shares.AddRow({"AOF",
                 util::WithThousands(static_cast<long long>(fs.aof)),
                 "100%", "74.83% of Select/Ask"});
  shares.AddRow({"CQ", util::WithThousands(static_cast<long long>(fs.cq)),
                 util::Percent(static_cast<double>(fs.cq), aof), "54.58%"});
  shares.AddRow({"CQF", util::WithThousands(static_cast<long long>(fs.cqf)),
                 util::Percent(static_cast<double>(fs.cqf), aof), "84.08%"});
  shares.AddRow({"well-designed",
                 util::WithThousands(
                     static_cast<long long>(fs.well_designed)),
                 util::Percent(static_cast<double>(fs.well_designed), aof),
                 "98.53%"});
  shares.AddRow({"CQOF",
                 util::WithThousands(static_cast<long long>(fs.cqof)),
                 util::Percent(static_cast<double>(fs.cqof), aof),
                 "93.87%"});
  shares.AddRow({"interface width > 1",
                 util::WithThousands(
                     static_cast<long long>(fs.wide_interface)),
                 util::Percent(static_cast<double>(fs.wide_interface), aof),
                 "310 queries"});
  shares.Print(std::cout);

  std::cout << "\nFigure 5: size distribution of CQ-like queries with >= 2 "
               "triples (column = % of the fragment's >=2-triple "
               "queries)\n\n";
  util::Table table({"Size", "CQ", "CQF", "CQOF"});
  auto multi = [](const util::BucketHistogram& h) {
    uint64_t total = 0;
    for (int b = 2; b <= 10; ++b) total += h.Count(b);
    return total + h.Overflow();
  };
  uint64_t cq_multi = multi(fs.cq_sizes);
  uint64_t cqf_multi = multi(fs.cqf_sizes);
  uint64_t cqof_multi = multi(fs.cqof_sizes);
  for (int b = 2; b <= 10; ++b) {
    table.AddRow({std::to_string(b),
                  util::Percent(static_cast<double>(fs.cq_sizes.Count(b)),
                                static_cast<double>(cq_multi)),
                  util::Percent(static_cast<double>(fs.cqf_sizes.Count(b)),
                                static_cast<double>(cqf_multi)),
                  util::Percent(static_cast<double>(fs.cqof_sizes.Count(b)),
                                static_cast<double>(cqof_multi))});
  }
  table.AddRow({"11+",
                util::Percent(static_cast<double>(fs.cq_sizes.Overflow()),
                              static_cast<double>(cq_multi)),
                util::Percent(static_cast<double>(fs.cqf_sizes.Overflow()),
                              static_cast<double>(cqf_multi)),
                util::Percent(static_cast<double>(fs.cqof_sizes.Overflow()),
                              static_cast<double>(cqof_multi))});
  table.Print(std::cout);

  auto one_share = [](const util::BucketHistogram& h) {
    return util::Percent(static_cast<double>(h.Count(1)),
                         static_cast<double>(h.Total()));
  };
  std::cout << "\n1-triple fractions: CQ " << one_share(fs.cq_sizes)
            << " (paper 82%), CQF " << one_share(fs.cqf_sizes)
            << " (paper 83.45%), CQOF " << one_share(fs.cqof_sizes)
            << " (paper 75.52%)\n";
  return 0;
}
