// Microbenchmark: bounded vs unbounded Levenshtein — the ablation
// behind the streak detector's banded implementation (Section 8 calls
// the naive approach "extremely resource-consuming").

#include <benchmark/benchmark.h>

#include <string>

#include "util/levenshtein.h"
#include "util/rng.h"

namespace {

using namespace sparqlog;

std::string MakeQuery(size_t length, uint64_t seed) {
  util::Rng rng(seed);
  std::string base = "SELECT ?x WHERE { ?x <p> ?y . ";
  while (base.size() < length) {
    base += "?x <p" + std::to_string(rng.Below(100)) + "> ?v" +
            std::to_string(rng.Below(50)) + " . ";
  }
  base += "}";
  return base;
}

void BM_FullLevenshtein(benchmark::State& state) {
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = MakeQuery(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Levenshtein(a, b));
  }
}
BENCHMARK(BM_FullLevenshtein)->Arg(128)->Arg(512)->Arg(2048);

void BM_BoundedLevenshtein(benchmark::State& state) {
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = MakeQuery(static_cast<size_t>(state.range(0)), 2);
  size_t budget = a.size() / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::BoundedLevenshtein(a, b, budget));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(128)->Arg(512)->Arg(2048);

void BM_SimilarityTestDissimilar(benchmark::State& state) {
  // The common case in a log scan: clearly dissimilar queries, where the
  // banded cutoff exits early.
  std::string a = MakeQuery(2048, 1);
  std::string b = "ASK { <completely> <different> <query> }";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::SimilarByLevenshtein(a, b, 0.25));
  }
}
BENCHMARK(BM_SimilarityTestDissimilar);

}  // namespace
