// Microbenchmark: bounded vs unbounded Levenshtein — the ablation
// behind the streak detector's banded implementation (Section 8 calls
// the naive approach "extremely resource-consuming").

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>

#include "streaks/streaks.h"
#include "util/levenshtein.h"
#include "util/rng.h"

namespace {

using namespace sparqlog;

std::string MakeQuery(size_t length, uint64_t seed) {
  util::Rng rng(seed);
  std::string base = "SELECT ?x WHERE { ?x <p> ?y . ";
  while (base.size() < length) {
    base += "?x <p" + std::to_string(rng.Below(100)) + "> ?v" +
            std::to_string(rng.Below(50)) + " . ";
  }
  base += "}";
  return base;
}

void BM_FullLevenshtein(benchmark::State& state) {
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = MakeQuery(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Levenshtein(a, b));
  }
}
BENCHMARK(BM_FullLevenshtein)->Arg(128)->Arg(512)->Arg(2048);

void BM_BoundedLevenshtein(benchmark::State& state) {
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = MakeQuery(static_cast<size_t>(state.range(0)), 2);
  size_t budget = a.size() / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::BoundedLevenshtein(a, b, budget));
  }
}
BENCHMARK(BM_BoundedLevenshtein)->Arg(128)->Arg(512)->Arg(2048);

void BM_SimilarityTestDissimilar(benchmark::State& state) {
  // The common case in a log scan: clearly dissimilar queries, where the
  // banded cutoff exits early.
  std::string a = MakeQuery(2048, 1);
  std::string b = "ASK { <completely> <different> <query> }";
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::SimilarByLevenshtein(a, b, 0.25));
  }
}
BENCHMARK(BM_SimilarityTestDissimilar);

void BM_MyersLevenshtein(benchmark::State& state) {
  // The bit-parallel exact distance at the same sizes as the classic
  // DP above; <= 64 runs entirely in registers, larger sizes blocked.
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = MakeQuery(static_cast<size_t>(state.range(0)), 2);
  util::LevenshteinScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::MyersLevenshtein(a, b, scratch));
  }
}
BENCHMARK(BM_MyersLevenshtein)->Arg(64)->Arg(128)->Arg(512)->Arg(2048);

void BM_MyersBounded(benchmark::State& state) {
  // The streak hot path's DP: bit-parallel with the 25% budget cutoff,
  // on a near-miss pair (the kind the prefilters cannot reject).
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = a;
  for (size_t i = 10; i < b.size(); i += 37) b[i] = '#';
  size_t budget = a.size() / 4;
  util::LevenshteinScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::MyersBoundedLevenshtein(a, b, budget, scratch));
  }
}
BENCHMARK(BM_MyersBounded)->Arg(128)->Arg(512)->Arg(2048);

void BM_BoundedScratchVsAllocating(benchmark::State& state) {
  // The banded DP with caller scratch — isolates the allocation cost
  // against BM_BoundedLevenshtein above.
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  std::string b = MakeQuery(static_cast<size_t>(state.range(0)), 2);
  size_t budget = a.size() / 4;
  util::LevenshteinScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::BoundedLevenshtein(a, b, budget, scratch));
  }
}
BENCHMARK(BM_BoundedScratchVsAllocating)->Arg(128)->Arg(512)->Arg(2048);

void BM_PrefilterCascade(benchmark::State& state) {
  // Fingerprint bounds on a dissimilar pair: what the streak detector
  // pays per window pair *instead of* a Levenshtein call.
  std::string a = MakeQuery(512, 1);
  std::string b = "ASK { <completely> <different> <query> }";
  streaks::QueryFingerprint fa = streaks::FingerprintOf(a);
  streaks::QueryFingerprint fb = streaks::FingerprintOf(b);
  for (auto _ : state) {
    size_t bound = std::max(streaks::CharmapLowerBound(fa, fb),
                            streaks::HistogramLowerBound(fa, fb));
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_PrefilterCascade);

void BM_Fingerprint(benchmark::State& state) {
  // The once-per-query fingerprint pass the cascade amortizes over up
  // to `window` pair comparisons.
  std::string a = MakeQuery(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(streaks::FingerprintOf(a));
  }
}
BENCHMARK(BM_Fingerprint)->Arg(128)->Arg(512);

}  // namespace
