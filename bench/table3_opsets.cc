// Regenerates Table 3: sets of operators used in Select/Ask query
// bodies over O = {Filter, And, Opt, Graph, Union}, with the paper's
// CPF subtotal and CPF+O / CPF+G / CPF+U increments.

#include <iostream>

#include "analysis/operator_set.h"
#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  using analysis::QueryFeatures;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale);
  const analysis::OperatorSetDistribution& dist = analyzer.operator_sets();
  double total = static_cast<double>(dist.total);

  std::cout << "Table 3: operator sets in Select/Ask queries (scale="
            << scale << ", "
            << util::WithThousands(static_cast<long long>(dist.total))
            << " queries)\n\n";
  util::Table table({"Operator Set", "Absolute", "Relative", "Paper"});
  auto row = [&](uint8_t mask, const char* paper) {
    table.AddRow({analysis::OperatorSetName(mask),
                  util::WithThousands(
                      static_cast<long long>(dist.Exact(mask))),
                  util::Percent(static_cast<double>(dist.Exact(mask)), total),
                  paper});
  };
  constexpr uint8_t F = QueryFeatures::kOpF, A = QueryFeatures::kOpA,
                    O = QueryFeatures::kOpO, G = QueryFeatures::kOpG,
                    U = QueryFeatures::kOpU;
  row(0, "33.49%");
  row(F, "19.04%");
  row(A, "7.49%");
  row(A | F, "6.25%");
  table.AddRow({"CPF subtotal",
                util::WithThousands(
                    static_cast<long long>(dist.CpfSubtotal())),
                util::Percent(static_cast<double>(dist.CpfSubtotal()), total),
                "66.27%"});
  table.AddSeparator();
  row(O, "1.04%");
  row(O | F, "3.43%");
  row(A | O, "3.31%");
  row(A | O | F, "0.78%");
  table.AddRow({"CPF+O",
                "+" + util::WithThousands(
                          static_cast<long long>(dist.CpfPlus(O))),
                "+" + util::Percent(static_cast<double>(dist.CpfPlus(O)),
                                    total),
                "+8.56%"});
  table.AddSeparator();
  row(G, "2.65%");
  table.AddRow({"CPF+G",
                "+" + util::WithThousands(
                          static_cast<long long>(dist.CpfPlus(G))),
                "+" + util::Percent(static_cast<double>(dist.CpfPlus(G)),
                                    total),
                "+2.74%"});
  table.AddSeparator();
  row(U, "7.46%");
  row(U | F, "0.38%");
  row(A | U, "1.57%");
  row(A | U | F, "1.56%");
  table.AddRow({"CPF+U",
                "+" + util::WithThousands(
                          static_cast<long long>(dist.CpfPlus(U))),
                "+" + util::Percent(static_cast<double>(dist.CpfPlus(U)),
                                    total),
                "+10.97%"});
  table.AddSeparator();
  row(A | O | U | F, "7.82%");
  table.Print(std::cout);

  std::cout << "\nOther combinations from O: "
            << util::Percent(static_cast<double>(dist.OtherCombinations()),
                             total)
            << " (paper: 0.30%); features outside O: "
            << util::Percent(static_cast<double>(dist.other), total)
            << " (paper: 3.33%)\n";
  return 0;
}
