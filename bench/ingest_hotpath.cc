// Ingest hot-path bench: measures lines/sec and bytes allocated for the
// three nested stages of the Table 1 pipeline's dominant cost — lex
// only, parse only (lex + parse), and full ParseLogLine (parse +
// streaming canonical hash) — plus the complete serial ingest with
// dedup. Results go to BENCH_ingest.json (override the path with
// SPARQLOG_BENCH_JSON) so the perf trajectory is recorded run over run.
//
// The run doubles as a divergence check and exits non-zero if either
//  * the stats accumulated through the scratch-buffer ParseLogLine path
//    differ from LogIngestor's serial reference, or
//  * any query's streaming CanonicalHash() differs from FNV-1a of the
//    materialized Serialize() string (hash-sink vs string-sink).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <new>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "util/strings.h"

// --------------------------------------------------------------------------
// Global allocation counters. Overriding the usual new/delete pairs in
// the bench binary makes "bytes allocated per line" a first-class,
// regression-checkable metric without any external tooling.
// --------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sparqlog;

struct PhaseResult {
  std::string name;
  double seconds = 0;
  uint64_t bytes_allocated = 0;
  uint64_t allocations = 0;
};

PhaseResult RunPhase(const std::string& name,
                     const std::function<void()>& fn) {
  PhaseResult r;
  r.name = name;
  uint64_t bytes0 = g_alloc_bytes.load(std::memory_order_relaxed);
  uint64_t count0 = g_alloc_count.load(std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  fn();
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  r.bytes_allocated =
      g_alloc_bytes.load(std::memory_order_relaxed) - bytes0;
  r.allocations = g_alloc_count.load(std::memory_order_relaxed) - count0;
  return r;
}

// The lex/parse-only phases clean lines with corpus::ExtractQueryText —
// the same helper ParseLogLine uses — so they measure exactly the
// production input.
using corpus::ExtractQueryText;

}  // namespace

int main() {
  uint64_t entries_per_dataset = 2000;
  if (const char* env = std::getenv("SPARQLOG_BENCH_ENTRIES")) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) entries_per_dataset = v;
  }
  const char* json_path_env = std::getenv("SPARQLOG_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_ingest.json";

  std::printf("Generating corpus (%llu entries/dataset x 13 datasets)...\n",
              static_cast<unsigned long long>(entries_per_dataset));
  std::vector<std::string> lines;
  {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      corpus::GeneratorOptions options;
      options.scale = 0;
      options.min_entries = entries_per_dataset;
      options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
  }
  std::printf("%zu log lines\n\n", lines.size());

  sparql::Parser parser;
  std::string scratch;
  std::vector<PhaseResult> phases;

  // Phase 1: cleaning + lexing only.
  uint64_t tokens_seen = 0;
  phases.push_back(RunPhase("lex", [&] {
    for (const std::string& line : lines) {
      auto text = ExtractQueryText(line, scratch);
      if (!text.has_value()) continue;
      auto stream = sparql::Lexer::Tokenize(*text);
      if (stream.ok()) tokens_seen += stream.value().size();
    }
  }));

  // Phase 2: cleaning + full parse (subsumes lexing).
  uint64_t parsed_ok = 0;
  phases.push_back(RunPhase("parse", [&] {
    for (const std::string& line : lines) {
      auto text = ExtractQueryText(line, scratch);
      if (!text.has_value()) continue;
      if (parser.Parse(*text).ok()) ++parsed_ok;
    }
  }));

  // Phase 3: full ParseLogLine (parse + streaming canonical hash),
  // accumulating the Table 1 counters for the divergence check.
  corpus::CorpusStats hot_stats;
  std::unordered_set<uint64_t> seen;
  uint64_t hash_checked = 0, hash_mismatches = 0;
  phases.push_back(RunPhase("parse_log_line", [&] {
    for (const std::string& line : lines) {
      corpus::ParsedLine parsed =
          corpus::ParseLogLine(parser, std::string_view(line), scratch);
      if (!parsed.is_query) continue;
      ++hot_stats.total;
      if (!parsed.valid) continue;
      ++hot_stats.valid;
      if (seen.insert(parsed.canonical_hash).second) ++hot_stats.unique;
    }
  }));

  // Phase 4: the reference serial ingest (LogIngestor end to end).
  corpus::CorpusStats reference;
  phases.push_back(RunPhase("log_ingestor", [&] {
    corpus::LogIngestor ingestor;
    ingestor.ProcessLog(lines);
    reference = ingestor.stats();
  }));

  // Hash-sink vs string-sink identity over every valid query (off the
  // clock: Serialize() deliberately materializes the canonical string).
  for (const std::string& line : lines) {
    corpus::ParsedLine parsed =
        corpus::ParseLogLine(parser, std::string_view(line), scratch);
    if (!parsed.valid) continue;
    ++hash_checked;
    if (parsed.canonical_hash !=
        corpus::HashBytes(sparql::Serialize(*parsed.query))) {
      ++hash_mismatches;
    }
  }

  std::printf("%-16s %10s %14s %16s %12s\n", "phase", "time (s)",
              "lines/sec", "bytes/line", "allocs/line");
  for (const PhaseResult& p : phases) {
    double lps = p.seconds > 0 ? lines.size() / p.seconds : 0;
    std::printf("%-16s %10.3f %14s %16.1f %12.2f\n", p.name.c_str(),
                p.seconds,
                util::WithThousands(static_cast<long long>(lps)).c_str(),
                static_cast<double>(p.bytes_allocated) / lines.size(),
                static_cast<double>(p.allocations) / lines.size());
  }
  std::printf("\nTotal %llu, Valid %llu, Unique %llu (tokens %llu, parsed %llu)\n",
              static_cast<unsigned long long>(reference.total),
              static_cast<unsigned long long>(reference.valid),
              static_cast<unsigned long long>(reference.unique),
              static_cast<unsigned long long>(tokens_seen),
              static_cast<unsigned long long>(parsed_ok));

  bool stats_match = hot_stats.total == reference.total &&
                     hot_stats.valid == reference.valid &&
                     hot_stats.unique == reference.unique;

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"ingest_hotpath\",\n"
       << "  \"entries_per_dataset\": " << entries_per_dataset << ",\n"
       << "  \"lines\": " << lines.size() << ",\n"
       << "  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseResult& p = phases[i];
    double lps = p.seconds > 0 ? lines.size() / p.seconds : 0;
    json << "    {\"name\": \"" << p.name << "\", \"seconds\": " << p.seconds
         << ", \"lines_per_sec\": " << static_cast<uint64_t>(lps)
         << ", \"bytes_allocated\": " << p.bytes_allocated
         << ", \"allocations\": " << p.allocations << "}"
         << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"stats\": {\"total\": " << reference.total
       << ", \"valid\": " << reference.valid
       << ", \"unique\": " << reference.unique << "},\n"
       << "  \"hash_check\": {\"queries\": " << hash_checked
       << ", \"mismatches\": " << hash_mismatches << "},\n"
       << "  \"stats_match\": " << (stats_match ? "true" : "false") << "\n"
       << "}\n";
  json.close();
  std::printf("Wrote %s\n", json_path.c_str());

  if (!stats_match) {
    std::fprintf(stderr,
                 "FAIL: ParseLogLine stats diverged from LogIngestor "
                 "(total %llu/%llu valid %llu/%llu unique %llu/%llu)\n",
                 static_cast<unsigned long long>(hot_stats.total),
                 static_cast<unsigned long long>(reference.total),
                 static_cast<unsigned long long>(hot_stats.valid),
                 static_cast<unsigned long long>(reference.valid),
                 static_cast<unsigned long long>(hot_stats.unique),
                 static_cast<unsigned long long>(reference.unique));
    return 1;
  }
  if (hash_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu/%llu canonical hashes diverged between the "
                 "hashing sink and the string sink\n",
                 static_cast<unsigned long long>(hash_mismatches),
                 static_cast<unsigned long long>(hash_checked));
    return 1;
  }
  return 0;
}
