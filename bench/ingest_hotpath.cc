// Ingest hot-path bench: measures lines/sec and bytes allocated for the
// three nested stages of the Table 1 pipeline's dominant cost — lex
// only, parse only (lex + parse), and full ParseLogLine (parse +
// streaming canonical hash) — plus the complete serial ingest with
// dedup. Results go to BENCH_ingest.json (override the path with
// SPARQLOG_BENCH_JSON) so the perf trajectory is recorded run over run.
//
// The run doubles as a divergence check and exits non-zero if either
//  * the stats accumulated through the scratch-buffer ParseLogLine path
//    differ from LogIngestor's serial reference, or
//  * any query's streaming CanonicalHash() differs from FNV-1a of the
//    materialized Serialize() string (hash-sink vs string-sink).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/alloc_hooks.h"
#include "bench_common.h"
#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "pipeline/chunk_source.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "sparql/serializer.h"
#include "util/strings.h"

namespace {

using namespace sparqlog;
using bench::PhaseResult;
using bench::RunPhase;

// The lex/parse-only phases clean lines with corpus::ExtractQueryText —
// the same helper ParseLogLine uses — so they measure exactly the
// production input.
using corpus::ExtractQueryText;

}  // namespace

int main() {
  uint64_t entries_per_dataset = bench::EnvCount("SPARQLOG_BENCH_ENTRIES", 2000);
  const std::string json_path = bench::BenchJsonPath("BENCH_ingest.json");

  std::printf("Generating corpus (%llu entries/dataset x 13 datasets)...\n",
              static_cast<unsigned long long>(entries_per_dataset));
  std::vector<std::string> lines;
  {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      corpus::GeneratorOptions options;
      options.scale = 0;
      options.min_entries = entries_per_dataset;
      options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
  }
  std::printf("%zu log lines\n\n", lines.size());

  sparql::Parser parser;
  std::string scratch;
  std::vector<PhaseResult> phases;

  // Phase 1: cleaning + lexing only.
  uint64_t tokens_seen = 0;
  phases.push_back(RunPhase("lex", [&] {
    for (const std::string& line : lines) {
      auto text = ExtractQueryText(line, scratch);
      if (!text.has_value()) continue;
      auto stream = sparql::Lexer::Tokenize(*text);
      if (stream.ok()) tokens_seen += stream.value().size();
    }
  }));

  // Phase 2: cleaning + full parse (subsumes lexing).
  uint64_t parsed_ok = 0;
  phases.push_back(RunPhase("parse", [&] {
    for (const std::string& line : lines) {
      auto text = ExtractQueryText(line, scratch);
      if (!text.has_value()) continue;
      if (parser.Parse(*text).ok()) ++parsed_ok;
    }
  }));

  // Phase 2b: cleaning + arena-pooled parse. Same work as phase 2
  // through the ParserScratch overload: all AST nodes land on the
  // scratch arena, the pname cache stays warm across lines. This is the
  // phase the allocs/line gate below polices.
  uint64_t parsed_ok_scratch = 0;
  sparql::ParserScratch pscratch;
  phases.push_back(RunPhase("parse_scratch", [&] {
    for (const std::string& line : lines) {
      auto text = ExtractQueryText(line, scratch);
      if (!text.has_value()) continue;
      pscratch.Reset();
      if (parser.Parse(*text, pscratch).ok()) ++parsed_ok_scratch;
    }
  }));

  // Phase 3: full ParseLogLine (parse + streaming canonical hash),
  // accumulating the Table 1 counters for the divergence check.
  corpus::CorpusStats hot_stats;
  std::unordered_set<uint64_t> seen;
  uint64_t hash_checked = 0, hash_mismatches = 0;
  phases.push_back(RunPhase("parse_log_line", [&] {
    for (const std::string& line : lines) {
      corpus::ParsedLine parsed =
          corpus::ParseLogLine(parser, std::string_view(line), scratch);
      if (!parsed.is_query) continue;
      ++hot_stats.total;
      if (!parsed.valid) continue;
      ++hot_stats.valid;
      if (seen.insert(parsed.canonical_hash).second) ++hot_stats.unique;
    }
  }));

  // Phase 3b: full ParseLogLine through the pooled ParseScratch —
  // LogIngestor's per-line cadence (reset, parse, consume). The dedup
  // set is pre-reserved so the phase measures the parse path, not
  // hash-set rehashing; the remaining per-unique node insert is real
  // ingest work and stays on the clock.
  corpus::CorpusStats arena_stats;
  corpus::ParseScratch parse_scratch;
  std::unordered_set<uint64_t> seen_arena;
  seen_arena.reserve(lines.size());
  phases.push_back(RunPhase("parse_log_line_scratch", [&] {
    for (const std::string& line : lines) {
      parse_scratch.Reset();
      corpus::ParsedLine parsed =
          corpus::ParseLogLine(parser, std::string_view(line), parse_scratch);
      if (!parsed.is_query) continue;
      ++arena_stats.total;
      if (!parsed.valid) continue;
      ++arena_stats.valid;
      if (seen_arena.insert(parsed.canonical_hash).second) {
        ++arena_stats.unique;
      }
    }
  }));

  // Phase 4: the reference serial ingest (LogIngestor end to end).
  corpus::CorpusStats reference;
  phases.push_back(RunPhase("log_ingestor", [&] {
    corpus::LogIngestor ingestor;
    ingestor.ProcessLog(lines);
    reference = ingestor.stats();
  }));

  // Phase 5: the URL-decode / query-extraction layer alone — the
  // vectorized FindEscape fast path plus PercentDecodeTo's span copies.
  uint64_t extracted = 0;
  phases.push_back(RunPhase("url_decode", [&] {
    for (const std::string& line : lines) {
      if (ExtractQueryText(line, scratch).has_value()) ++extracted;
    }
  }));

  // Phase 6: full-file mmap ingest — zero-copy newline slicing straight
  // into ParseLogLine + dedup (the parallel pipeline's per-worker loop
  // minus the threads). The temp file is written off the clock.
  corpus::CorpusStats mmap_stats;
  uint64_t mmap_bytes = 0;
  const std::string mmap_path =
      (std::filesystem::temp_directory_path() / "sparqlog_bench_ingest.log")
          .string();
  {
    std::ofstream out(mmap_path, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  }
  phases.push_back(RunPhase("mmap_ingest", [&] {
    auto source = pipeline::MmapChunkSource::Open(mmap_path);
    if (!source.ok()) return;
    mmap_bytes = source.value()->size_bytes();
    std::unordered_set<uint64_t> seen_mmap;
    pipeline::LineChunk chunk;
    while (source.value()->NextChunk(512, chunk)) {
      for (std::string_view line : chunk.lines) {
        corpus::ParsedLine parsed = corpus::ParseLogLine(parser, line, scratch);
        if (!parsed.is_query) continue;
        ++mmap_stats.total;
        if (!parsed.valid) continue;
        ++mmap_stats.valid;
        if (seen_mmap.insert(parsed.canonical_hash).second) {
          ++mmap_stats.unique;
        }
      }
    }
  }));
  std::filesystem::remove(mmap_path);

  // Hash-sink vs string-sink identity over every valid query (off the
  // clock: Serialize() deliberately materializes the canonical string).
  for (const std::string& line : lines) {
    corpus::ParsedLine parsed =
        corpus::ParseLogLine(parser, std::string_view(line), scratch);
    if (!parsed.valid) continue;
    ++hash_checked;
    if (parsed.canonical_hash !=
        corpus::HashBytes(sparql::Serialize(*parsed.query))) {
      ++hash_mismatches;
    }
  }

  std::printf("%-16s %10s %14s %16s %12s\n", "phase", "time (s)",
              "lines/sec", "bytes/line", "allocs/line");
  for (const PhaseResult& p : phases) {
    double lps = p.seconds > 0 ? lines.size() / p.seconds : 0;
    std::printf("%-16s %10.3f %14s %16.1f %12.2f\n", p.name.c_str(),
                p.seconds,
                util::WithThousands(static_cast<long long>(lps)).c_str(),
                static_cast<double>(p.bytes_allocated) / lines.size(),
                static_cast<double>(p.allocations) / lines.size());
  }
  double mmap_seconds = phases.back().seconds;
  double mmap_mb_per_sec =
      mmap_seconds > 0 ? static_cast<double>(mmap_bytes) / (1e6 * mmap_seconds)
                       : 0;
  std::printf("\nmmap ingest: %llu bytes at %.1f MB/s\n",
              static_cast<unsigned long long>(mmap_bytes), mmap_mb_per_sec);
  std::printf("Total %llu, Valid %llu, Unique %llu (tokens %llu, parsed %llu, "
              "extracted %llu)\n",
              static_cast<unsigned long long>(reference.total),
              static_cast<unsigned long long>(reference.valid),
              static_cast<unsigned long long>(reference.unique),
              static_cast<unsigned long long>(tokens_seen),
              static_cast<unsigned long long>(parsed_ok),
              static_cast<unsigned long long>(extracted));

  bool stats_match = hot_stats.total == reference.total &&
                     hot_stats.valid == reference.valid &&
                     hot_stats.unique == reference.unique;
  bool arena_match = arena_stats.total == reference.total &&
                     arena_stats.valid == reference.valid &&
                     arena_stats.unique == reference.unique &&
                     parsed_ok_scratch == parsed_ok;
  bool mmap_match = mmap_stats.total == reference.total &&
                    mmap_stats.valid == reference.valid &&
                    mmap_stats.unique == reference.unique;

  // Allocation gate: the arena-pooled phases must stay at or below
  // this many heap allocations per line (the pre-arena parser sat at
  // ~16/line; the pooled path's budget is the dedup-set node plus
  // amortized arena/interner growth).
  const double max_allocs_per_line = [] {
    if (const char* env = std::getenv("SPARQLOG_BENCH_MAX_ALLOCS_PER_LINE")) {
      return std::atof(env);
    }
    return 2.0;
  }();
  std::vector<std::string> gate_failures;
  for (const PhaseResult& p : phases) {
    if (p.name != "parse_scratch" && p.name != "parse_log_line_scratch") {
      continue;
    }
    double apl = static_cast<double>(p.allocations) / lines.size();
    if (apl > max_allocs_per_line) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s: %.2f allocs/line (limit %.2f)",
                    p.name.c_str(), apl, max_allocs_per_line);
      gate_failures.emplace_back(buf);
    }
  }

  {
    std::ofstream out(json_path);
    bench::JsonWriter json(out);
    json.BeginObject();
    json.KV("bench", "ingest_hotpath");
    json.KV("entries_per_dataset", entries_per_dataset);
    json.KV("lines", static_cast<uint64_t>(lines.size()));
    json.Key("phases").BeginArray();
    for (const PhaseResult& p : phases) {
      double lps = p.seconds > 0 ? lines.size() / p.seconds : 0;
      json.BeginObject();
      json.KV("name", p.name);
      json.KV("seconds", p.seconds);
      json.KV("lines_per_sec", static_cast<uint64_t>(lps));
      json.KV("bytes_allocated", p.bytes_allocated);
      json.KV("allocations", p.allocations);
      json.KV("allocs_per_line",
              static_cast<double>(p.allocations) / lines.size());
      json.EndObject();
    }
    json.EndArray();
    json.Key("stats").BeginObject();
    json.KV("total", reference.total);
    json.KV("valid", reference.valid);
    json.KV("unique", reference.unique);
    json.EndObject();
    json.Key("hash_check").BeginObject();
    json.KV("queries", hash_checked);
    json.KV("mismatches", hash_mismatches);
    json.EndObject();
    json.Key("mmap").BeginObject();
    json.KV("bytes", mmap_bytes);
    json.KV("mb_per_sec", mmap_mb_per_sec);
    json.KV("stats_match", mmap_match);
    json.EndObject();
    json.KV("stats_match", stats_match);
    json.Key("alloc_gate").BeginObject();
    json.KV("max_allocs_per_line", max_allocs_per_line);
    json.KV("passed", gate_failures.empty());
    json.KV("arena_stats_match", arena_match);
    json.EndObject();
    json.EndObject();
    json.Finish();
  }
  std::printf("Wrote %s\n", json_path.c_str());

  if (!stats_match) {
    std::fprintf(stderr,
                 "FAIL: ParseLogLine stats diverged from LogIngestor "
                 "(total %llu/%llu valid %llu/%llu unique %llu/%llu)\n",
                 static_cast<unsigned long long>(hot_stats.total),
                 static_cast<unsigned long long>(reference.total),
                 static_cast<unsigned long long>(hot_stats.valid),
                 static_cast<unsigned long long>(reference.valid),
                 static_cast<unsigned long long>(hot_stats.unique),
                 static_cast<unsigned long long>(reference.unique));
    return 1;
  }
  if (!mmap_match) {
    std::fprintf(stderr,
                 "FAIL: mmap ingest stats diverged from LogIngestor "
                 "(total %llu/%llu valid %llu/%llu unique %llu/%llu)\n",
                 static_cast<unsigned long long>(mmap_stats.total),
                 static_cast<unsigned long long>(reference.total),
                 static_cast<unsigned long long>(mmap_stats.valid),
                 static_cast<unsigned long long>(reference.valid),
                 static_cast<unsigned long long>(mmap_stats.unique),
                 static_cast<unsigned long long>(reference.unique));
    return 1;
  }
  if (!arena_match) {
    std::fprintf(stderr,
                 "FAIL: arena-scratch stats diverged from LogIngestor "
                 "(total %llu/%llu valid %llu/%llu unique %llu/%llu, "
                 "parsed %llu/%llu)\n",
                 static_cast<unsigned long long>(arena_stats.total),
                 static_cast<unsigned long long>(reference.total),
                 static_cast<unsigned long long>(arena_stats.valid),
                 static_cast<unsigned long long>(reference.valid),
                 static_cast<unsigned long long>(arena_stats.unique),
                 static_cast<unsigned long long>(reference.unique),
                 static_cast<unsigned long long>(parsed_ok_scratch),
                 static_cast<unsigned long long>(parsed_ok));
    return 1;
  }
  if (!gate_failures.empty()) {
    for (const std::string& f : gate_failures) {
      std::fprintf(stderr, "FAIL: allocation gate: %s\n", f.c_str());
    }
    return 1;
  }
  if (hash_mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu/%llu canonical hashes diverged between the "
                 "hashing sink and the string sink\n",
                 static_cast<unsigned long long>(hash_mismatches),
                 static_cast<unsigned long long>(hash_checked));
    return 1;
  }
  return 0;
}
