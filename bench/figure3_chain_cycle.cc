// Regenerates Figure 3: average runtime of chain vs cycle Ask workloads
// (lengths 3..8, 100 queries each) on the two engines — GraphEngine
// (Blazegraph stand-in) and RelationalEngine (PostgreSQL stand-in) —
// over a gMark "Bib" graph, plus the cycle-timeout table (Figure 3
// bottom). Scaled down: graph size and timeout via env vars
// SPARQLOG_GRAPH_NODES (default 20000) and SPARQLOG_TIMEOUT_MS (300).

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "gmark/graph_gen.h"
#include "gmark/query_gen.h"
#include "store/engine.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  using namespace std::chrono;

  uint64_t nodes = 20000;
  if (const char* env = std::getenv("SPARQLOG_GRAPH_NODES")) {
    nodes = std::strtoull(env, nullptr, 10);
  }
  int timeout_ms = 300;
  if (const char* env = std::getenv("SPARQLOG_TIMEOUT_MS")) {
    timeout_ms = std::atoi(env);
  }
  int workload_size = 100;
  if (const char* env = std::getenv("SPARQLOG_WORKLOAD")) {
    workload_size = std::atoi(env);
  }

  std::cout << "Figure 3: chain vs cycle Ask workloads on BG-like and "
               "PG-like engines\n(gMark Bib graph, " << nodes
            << " nodes; timeout " << timeout_ms
            << "ms per query; workloads of " << workload_size
            << " queries; paper: 100k nodes, 300s timeout)\n\n";

  gmark::Schema schema = gmark::Schema::Bib();
  store::TripleStore store;
  gmark::GraphGenOptions gopts;
  gopts.num_nodes = nodes;
  gopts.seed = 42;
  gmark::GenerateGraph(schema, gopts, store);
  std::cout << "Graph: " << util::WithThousands(
                   static_cast<long long>(store.size()))
            << " triples\n\n";

  store::GraphEngine bg(store);
  store::RelationalEngine pg(store);
  nanoseconds timeout = milliseconds(timeout_ms);

  util::Table table({"Workload", "chainBG avg ns", "chainPG avg ns",
                     "cycleBG avg ns", "cyclePG avg ns", "cyclePG t/o"});
  util::Table timeouts({"W-x", "%t/o (cyclePG)", "Paper"});
  const char* paper_to[] = {"18%", "34%", "43%", "39%", "43%", "30%"};

  for (int len = 3; len <= 8; ++len) {
    double avg_ns[4] = {0, 0, 0, 0};
    int cycle_pg_to = 0;
    for (int shape = 0; shape < 2; ++shape) {
      gmark::QueryGenOptions qopts;
      qopts.shape =
          shape == 0 ? gmark::QueryShape::kChain : gmark::QueryShape::kCycle;
      qopts.length = len;
      qopts.workload_size = workload_size;
      qopts.seed = static_cast<uint64_t>(1000 + len);
      auto workload = gmark::GenerateWorkload(schema, qopts);
      int evaluated = 0;
      for (const auto& q : workload) {
        auto bgp = gmark::CompileForEngine(q, store, schema);
        if (!bgp.has_value()) continue;
        ++evaluated;
        store::EvalStats a = bg.Evaluate(*bgp, store::EvalMode::kAsk,
                                         timeout);
        store::EvalStats b = pg.Evaluate(*bgp, store::EvalMode::kAsk,
                                         timeout);
        avg_ns[shape * 2 + 0] += a.elapsed_ns;
        avg_ns[shape * 2 + 1] += b.elapsed_ns;
        if (shape == 1 && b.timed_out) ++cycle_pg_to;
      }
      if (evaluated > 0) {
        avg_ns[shape * 2 + 0] /= evaluated;
        avg_ns[shape * 2 + 1] /= evaluated;
      }
      if (shape == 1 && evaluated > 0) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.0f%%",
                      100.0 * cycle_pg_to / evaluated);
        timeouts.AddRow({"W-" + std::to_string(len), buf,
                         paper_to[len - 3]});
      }
    }
    auto fmt = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3e", v);
      return std::string(buf);
    };
    table.AddRow({"W-" + std::to_string(len), fmt(avg_ns[0]),
                  fmt(avg_ns[1]), fmt(avg_ns[2]), fmt(avg_ns[3]),
                  std::to_string(cycle_pg_to)});
  }
  table.Print(std::cout);
  std::cout << "\nTimeout rates for cyclePG (Figure 3 bottom):\n";
  timeouts.Print(std::cout);
  std::cout << "\nExpected shape: BG < PG overall; cycle > chain on both "
               "engines; cyclePG shows timeouts (times include the full "
               "timeout per timed-out query, as in the paper).\n";
  return 0;
}
