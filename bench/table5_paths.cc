// Regenerates Table 5: structure of navigational property paths
// (expression-type taxonomy), the trivial !a / ^a counts, the reverse-
// navigation share, and the C_tract census of Section 7.

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale);
  const corpus::PathStats& ps = analyzer.paths();

  std::cout << "Section 7: property paths in the corpus (scale=" << scale
            << ")\n\n";
  std::cout << "Total property paths: "
            << util::WithThousands(static_cast<long long>(ps.total_paths))
            << " (paper: 247,404)\n";
  std::cout << "Trivial !a: "
            << util::WithThousands(
                   static_cast<long long>(ps.trivial_negated))
            << " (paper: 63,039), trivial ^a: "
            << util::WithThousands(
                   static_cast<long long>(ps.trivial_inverse))
            << " (paper: 306)\n";
  std::cout << "Navigational: "
            << util::WithThousands(static_cast<long long>(ps.navigational))
            << " (paper: 184,059), of which with reverse navigation: "
            << util::Percent(static_cast<double>(ps.with_inverse),
                             static_cast<double>(ps.navigational))
            << " (paper: 36%)\n\n";

  util::Table table({"Expression Type", "Absolute", "Relative", "Paper"});
  struct PaperRow {
    paths::PathType type;
    const char* paper;
  };
  const PaperRow rows[] = {
      {paths::PathType::kStarOfAlt, "39.12%"},
      {paths::PathType::kStar, "26.42%"},
      {paths::PathType::kSeq, "11.65%"},
      {paths::PathType::kStarSeqLink, "10.39%"},
      {paths::PathType::kAlt, "8.72%"},
      {paths::PathType::kPlus, "2.07%"},
      {paths::PathType::kSeqOfOpts, "1.55%"},
      {paths::PathType::kLinkSeqAlt, "0.02%"},
      {paths::PathType::kSeqLinkOpts, "0.02%"},
      {paths::PathType::kAltSeqStarLink, "0.01%"},
      {paths::PathType::kStarSeqOpt, "0.01%"},
      {paths::PathType::kSeqSeqStar, "0.01%"},
      {paths::PathType::kNegatedAlt, "0.01%"},
      {paths::PathType::kPlusOfAlt, "0.01%"},
      {paths::PathType::kAltAltSeq, "<0.01%"},
      {paths::PathType::kOptAltLink, "<0.01%"},
      {paths::PathType::kStarAltLink, "<0.01%"},
      {paths::PathType::kOptOfAlt, "<0.01%"},
      {paths::PathType::kLinkAltPlus, "<0.01%"},
      {paths::PathType::kPlusAltPlus, "<0.01%"},
      {paths::PathType::kStarOfSeq, "<0.01% (1 query)"},
  };
  double nav = static_cast<double>(ps.navigational);
  for (const PaperRow& r : rows) {
    auto it = ps.by_type.find(r.type);
    uint64_t count = it == ps.by_type.end() ? 0 : it->second;
    table.AddRow({paths::PathTypeName(r.type),
                  util::WithThousands(static_cast<long long>(count)),
                  util::Percent(static_cast<double>(count), nav), r.paper});
  }
  table.Print(std::cout);

  std::cout << "\nExpressions outside C_tract: "
            << util::WithThousands(static_cast<long long>(ps.not_ctract))
            << " (paper: exactly one, (a/b)*)\n";
  return 0;
}
