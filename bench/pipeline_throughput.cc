// Pipeline scaling baseline: runs the same synthetic corpus through the
// serial LogIngestor/CorpusAnalyzer path and through the sharded
// parallel pipeline at 1/2/4/8 threads, reporting queries/sec and
// verifying that every run produces identical Table 1 counters. The
// corpus defaults to >= 100k query entries; SPARQLOG_BENCH_ENTRIES
// overrides the per-dataset floor.
//
// Exit status is non-zero on any serial/parallel statistics mismatch,
// so this doubles as a large-corpus determinism check.

#include <chrono>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "corpus/report.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

double Time(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace sparqlog;

  uint64_t entries_per_dataset = 8000;  // 13 datasets -> >= 100k entries
  if (const char* env = std::getenv("SPARQLOG_BENCH_ENTRIES")) {
    uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0) entries_per_dataset = v;
  }

  std::cout << "Generating corpus (" << entries_per_dataset
            << " entries/dataset x 13 datasets)...\n";
  std::vector<std::string> lines;
  {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      corpus::GeneratorOptions options;
      options.scale = 0;
      options.min_entries = entries_per_dataset;
      options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
  }
  std::cout << util::WithThousands(static_cast<long long>(lines.size()))
            << " log lines\n\n";

  // Serial baseline and reference statistics.
  corpus::CorpusStats reference;
  std::vector<uint64_t> reference_digest;
  double serial_s = Time([&] {
    corpus::LogIngestor ingestor;
    corpus::CorpusAnalyzer analyzer;
    ingestor.set_unique_sink(
        [&analyzer](const sparql::Query& q) { analyzer.AddQuery(q, "all"); });
    ingestor.ProcessLog(lines);
    reference = ingestor.stats();
    reference_digest = pipeline::StatisticsDigest(analyzer);
  });

  util::Table table({"Config", "Time (s)", "Queries/sec", "Speedup vs 1T",
                     "Stats"});
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", serial_s);
  table.AddRow({"serial", buf,
                util::WithThousands(static_cast<long long>(
                    reference.total / serial_s)),
                "-", "reference"});

  bool all_match = true;
  double one_thread_s = 0;
  for (int threads : {1, 2, 4, 8}) {
    pipeline::PipelineOptions options;
    options.threads = threads;
    pipeline::PipelineResult result;
    double s = Time([&] {
      pipeline::ParallelLogPipeline pl(options);
      result = pl.Run(lines);
    });
    if (threads == 1) one_thread_s = s;
    bool match = result.stats.total == reference.total &&
                 result.stats.valid == reference.valid &&
                 result.stats.unique == reference.unique &&
                 pipeline::StatisticsDigest(result.analysis) ==
                     reference_digest;
    all_match = all_match && match;
    std::snprintf(buf, sizeof(buf), "%.2f", s);
    std::string time_str = buf;
    std::snprintf(buf, sizeof(buf), "%.2fx", one_thread_s / s);
    table.AddRow({std::to_string(threads) + " threads", time_str,
                  util::WithThousands(
                      static_cast<long long>(result.stats.total / s)),
                  buf, match ? "identical" : "MISMATCH"});
  }
  table.Print(std::cout);

  std::cout << "\nTotal " << util::WithThousands(reference.total)
            << ", Valid " << util::WithThousands(reference.valid)
            << ", Unique " << util::WithThousands(reference.unique) << "\n";
  if (!all_match) {
    std::cerr << "FAIL: parallel statistics diverged from serial\n";
    return 1;
  }
  return 0;
}
