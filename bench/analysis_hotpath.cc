// Structural-analysis hot-path bench: measures queries/sec and
// allocations/query for the per-unique-query stages behind Table 4 /
// Figure 3 (shapes), Figure 5 (fragments), and Section 6 (widths) —
// canonical-graph build, shape classification, treewidth, and GHW —
// through the pre-change implementations (testing/reference_analysis,
// kept verbatim: NodeKey strings + std::map interning, std::set
// adjacency, set-copying kernelization, set-based det-k-decomp) and
// through the allocation-lean scratch path (term-interned flat graphs,
// worklist kernelization, bitset GHW).
//
// The run is also the divergence gate and exits non-zero if
//  * any per-query result differs between the two paths (shape flags,
//    girth, treewidth, GHW width or decomposition size),
//  * the aggregated ShapeCounts / FragmentStats / HypergraphStats /
//    girth maps differ from the reference-built tables, or
//  * the serial StatisticsDigest differs from the parallel pipeline's
//    under any of the exercised thread/shard configurations.
// Results land in BENCH_analysis.json (override with
// SPARQLOG_BENCH_JSON).

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "obs/alloc_hooks.h"
#include "bench_common.h"
#include "analysis/features.h"
#include "corpus/analysis_scratch.h"
#include "corpus/generator.h"
#include "corpus/ingest.h"
#include "corpus/profile.h"
#include "corpus/report.h"
#include "fragments/fragment.h"
#include "graph/canonical.h"
#include "graph/shapes.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "testing/reference_analysis.h"
#include "util/strings.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace {

using namespace sparqlog;
using bench::PhaseResult;
using bench::RunPhase;
namespace reference = testing::reference;

struct QueryCase {
  sparql::Query query;
  fragments::FragmentClass fc;
  bool graph_case = false;  // canonical graph meaningful (no var predicate)
  bool hyper_case = false;  // var-predicate CQOF: hypergraph analysis
};

struct GraphVerdict {
  bool valid = false;
  int nodes = 0;
  int edges = 0;
  graph::ShapeClass shape;
  int tw = 0;
};

struct HyperVerdict {
  int width = 0;
  int decomposition_nodes = 0;
};

int g_failures = 0;

void Check(const char* what, uint64_t ref, uint64_t got) {
  if (ref == got) return;
  ++g_failures;
  if (g_failures <= 20) {
    std::fprintf(stderr, "FAIL: %s diverges: reference %llu vs new %llu\n",
                 what, static_cast<unsigned long long>(ref),
                 static_cast<unsigned long long>(got));
  }
}

void CheckHistogram(const char* what, const util::BucketHistogram& ref,
                    const util::BucketHistogram& got) {
  for (int v = 0; v <= ref.max_direct(); ++v) {
    Check(what, ref.Count(v), got.Count(v));
  }
  Check(what, ref.Overflow(), got.Overflow());
}

void CheckShapeCounts(const char* what, const corpus::ShapeCounts& ref,
                      const corpus::ShapeCounts& got) {
  Check(what, ref.total, got.total);
  Check(what, ref.single_edge, got.single_edge);
  Check(what, ref.chain, got.chain);
  Check(what, ref.chain_set, got.chain_set);
  Check(what, ref.star, got.star);
  Check(what, ref.tree, got.tree);
  Check(what, ref.forest, got.forest);
  Check(what, ref.cycle, got.cycle);
  Check(what, ref.flower, got.flower);
  Check(what, ref.flower_set, got.flower_set);
  Check(what, ref.treewidth_le2, got.treewidth_le2);
  Check(what, ref.treewidth_3, got.treewidth_3);
  Check(what, ref.treewidth_gt3, got.treewidth_gt3);
  Check(what, ref.single_edge_with_constants, got.single_edge_with_constants);
  // The girth map: same keys, same counts.
  Check(what, ref.girth.size(), got.girth.size());
  if (ref.girth == got.girth) return;
  ++g_failures;
  std::fprintf(stderr, "FAIL: %s girth map diverges\n", what);
}

bool SameShape(const graph::ShapeClass& a, const graph::ShapeClass& b) {
  return a.single_edge == b.single_edge && a.chain == b.chain &&
         a.chain_set == b.chain_set && a.star == b.star && a.tree == b.tree &&
         a.forest == b.forest && a.cycle == b.cycle && a.flower == b.flower &&
         a.flower_set == b.flower_set && a.girth == b.girth;
}

/// The pre-change CorpusAnalyzer::AnalyzeShapes, replicated over the
/// reference implementations, so the Table 4 / Section 6 tables can be
/// rebuilt the old way and compared cell by cell.
void ReferenceAnalyzeShapes(const QueryCase& qc, corpus::ShapeCounts& cq,
                            corpus::ShapeCounts& cqf,
                            corpus::ShapeCounts& cqof,
                            corpus::HypergraphStats& hgs) {
  const fragments::FragmentClass& fc = qc.fc;
  if (!(fc.cq || fc.cqf || fc.cqof)) return;
  if (fc.var_predicate) {
    if (fc.cqof) {
      std::vector<const sparql::TriplePattern*> triples;
      std::vector<const sparql::Expr*> filters;
      graph::CollectTriplesAndFilters(qc.query.where, triples, filters);
      reference::ReferenceHypergraph hg =
          reference::BuildCanonicalHypergraph(triples, filters);
      width::GhwResult ghw = reference::GeneralizedHypertreeWidth(hg);
      ++hgs.total;
      switch (ghw.width) {
        case 0:
        case 1: ++hgs.ghw1; break;
        case 2: ++hgs.ghw2; break;
        case 3: ++hgs.ghw3; break;
        default: ++hgs.ghw_more; break;
      }
      if (ghw.decomposition_nodes > 10) ++hgs.decompositions_gt10_nodes;
      if (ghw.decomposition_nodes > 100) ++hgs.decompositions_gt100_nodes;
    }
    return;
  }
  std::vector<const sparql::TriplePattern*> triples;
  std::vector<const sparql::Expr*> filters;
  graph::CollectTriplesAndFilters(qc.query.where, triples, filters);
  reference::ReferenceCanonicalGraph cg =
      reference::BuildCanonicalGraph(triples, filters);
  if (!cg.valid) return;
  graph::ShapeClass shape = reference::ClassifyShape(cg.graph);
  width::TreewidthResult tw = reference::Treewidth(cg.graph);
  auto record = [&](corpus::ShapeCounts& sc) {
    ++sc.total;
    if (shape.single_edge) {
      ++sc.single_edge;
      bool has_constant = false;
      for (const rdf::Term& t : cg.node_terms) {
        if (t.is_constant()) has_constant = true;
      }
      if (has_constant) ++sc.single_edge_with_constants;
    }
    if (shape.chain) ++sc.chain;
    if (shape.chain_set) ++sc.chain_set;
    if (shape.star) ++sc.star;
    if (shape.tree) ++sc.tree;
    if (shape.forest) ++sc.forest;
    if (shape.cycle) ++sc.cycle;
    if (shape.flower) ++sc.flower;
    if (shape.flower_set) ++sc.flower_set;
    if (tw.width <= 2) {
      ++sc.treewidth_le2;
    } else if (tw.width == 3) {
      ++sc.treewidth_3;
    } else {
      ++sc.treewidth_gt3;
    }
    if (shape.girth > 0) ++sc.girth[shape.girth];
  };
  if (fc.cq) record(cq);
  if (fc.cqf) record(cqf);
  if (fc.cqof) record(cqof);
}

}  // namespace

int main() {
  uint64_t entries_per_dataset = bench::EnvCount("SPARQLOG_BENCH_ENTRIES", 2000);
  const std::string json_path = bench::BenchJsonPath("BENCH_analysis.json");

  std::printf("Generating corpus (%llu entries/dataset x 13 datasets)...\n",
              static_cast<unsigned long long>(entries_per_dataset));
  std::vector<std::string> lines;
  {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      corpus::GeneratorOptions options;
      options.scale = 0;
      options.min_entries = entries_per_dataset;
      options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
  }

  // The unique Select/Ask corpus, exactly as StatsReport sees it.
  sparql::Parser parser;
  std::string decode_buf;
  std::unordered_set<uint64_t> seen;
  std::vector<QueryCase> cases;
  for (const std::string& line : lines) {
    corpus::ParsedLine parsed =
        corpus::ParseLogLine(parser, std::string_view(line), decode_buf);
    if (!parsed.valid || !seen.insert(parsed.canonical_hash).second) continue;
    QueryCase qc;
    qc.query = std::move(*parsed.query);
    cases.push_back(std::move(qc));
  }
  std::vector<size_t> graph_idx, hyper_idx;
  for (size_t i = 0; i < cases.size(); ++i) {
    QueryCase& qc = cases[i];
    bool select_ask = qc.query.form == sparql::QueryForm::kSelect ||
                      qc.query.form == sparql::QueryForm::kAsk;
    if (!select_ask || !qc.query.has_body) continue;
    qc.fc = fragments::ClassifyFragment(qc.query);
    if (!(qc.fc.cq || qc.fc.cqf || qc.fc.cqof)) continue;
    if (qc.fc.var_predicate) {
      if (qc.fc.cqof) {
        qc.hyper_case = true;
        hyper_idx.push_back(i);
      }
    } else {
      qc.graph_case = true;
      graph_idx.push_back(i);
    }
  }
  const uint64_t analyzed = graph_idx.size() + hyper_idx.size();
  std::printf("%zu lines -> %zu unique queries, %llu analyzed "
              "(%zu canonical-graph, %zu hypergraph)\n\n",
              lines.size(), cases.size(),
              static_cast<unsigned long long>(analyzed), graph_idx.size(),
              hyper_idx.size());

  std::vector<PhaseResult> phases;
  corpus::AnalysisScratch scratch;

  // ---- Stage: canonical-graph build ----
  std::vector<reference::ReferenceCanonicalGraph> ref_graphs;
  ref_graphs.reserve(graph_idx.size());
  phases.push_back(RunPhase("canonical_ref", [&] {
    for (size_t i : graph_idx) {
      std::vector<const sparql::TriplePattern*> triples;
      std::vector<const sparql::Expr*> filters;
      graph::CollectTriplesAndFilters(cases[i].query.where, triples, filters);
      ref_graphs.push_back(reference::BuildCanonicalGraph(triples, filters));
    }
  }));
  phases.push_back(RunPhase("canonical_new", [&] {
    for (size_t i : graph_idx) {
      scratch.triples.clear();
      scratch.filters.clear();
      graph::CollectTriplesAndFilters(cases[i].query.where, scratch.triples,
                                      scratch.filters);
      graph::BuildCanonicalGraph(scratch.triples, scratch.filters,
                                 graph::CanonicalOptions(), scratch.canonical,
                                 scratch.graph);
    }
  }));
  // Off the clock: value copies of the new canonical graphs so the
  // shape/treewidth stages can be timed in isolation on both paths.
  std::vector<graph::CanonicalGraph> new_graphs;
  new_graphs.reserve(graph_idx.size());
  for (size_t i : graph_idx) {
    scratch.triples.clear();
    scratch.filters.clear();
    graph::CollectTriplesAndFilters(cases[i].query.where, scratch.triples,
                                    scratch.filters);
    graph::BuildCanonicalGraph(scratch.triples, scratch.filters,
                               graph::CanonicalOptions(), scratch.canonical,
                               scratch.graph);
    new_graphs.push_back(scratch.graph);
  }

  // ---- Stage: shape classification ----
  std::vector<graph::ShapeClass> shapes_ref(ref_graphs.size());
  std::vector<graph::ShapeClass> shapes_new(new_graphs.size());
  phases.push_back(RunPhase("shape_ref", [&] {
    for (size_t j = 0; j < ref_graphs.size(); ++j) {
      if (ref_graphs[j].valid) {
        shapes_ref[j] = reference::ClassifyShape(ref_graphs[j].graph);
      }
    }
  }));
  phases.push_back(RunPhase("shape_new", [&] {
    for (size_t j = 0; j < new_graphs.size(); ++j) {
      if (new_graphs[j].valid) {
        shapes_new[j] = graph::ClassifyShape(new_graphs[j].graph, scratch.shape);
      }
    }
  }));

  // ---- Stage: treewidth ----
  std::vector<int> tw_ref(ref_graphs.size(), 0), tw_new(new_graphs.size(), 0);
  phases.push_back(RunPhase("treewidth_ref", [&] {
    for (size_t j = 0; j < ref_graphs.size(); ++j) {
      if (ref_graphs[j].valid) {
        tw_ref[j] = reference::Treewidth(ref_graphs[j].graph).width;
      }
    }
  }));
  phases.push_back(RunPhase("treewidth_new", [&] {
    for (size_t j = 0; j < new_graphs.size(); ++j) {
      if (new_graphs[j].valid) {
        tw_new[j] =
            width::Treewidth(new_graphs[j].graph, scratch.treewidth).width;
      }
    }
  }));

  // ---- Stage: generalized hypertree width (build + search) ----
  std::vector<HyperVerdict> ghw_ref(hyper_idx.size()), ghw_new(hyper_idx.size());
  phases.push_back(RunPhase("ghw_ref", [&] {
    for (size_t j = 0; j < hyper_idx.size(); ++j) {
      std::vector<const sparql::TriplePattern*> triples;
      std::vector<const sparql::Expr*> filters;
      graph::CollectTriplesAndFilters(cases[hyper_idx[j]].query.where, triples,
                                      filters);
      reference::ReferenceHypergraph hg =
          reference::BuildCanonicalHypergraph(triples, filters);
      width::GhwResult r = reference::GeneralizedHypertreeWidth(hg);
      ghw_ref[j] = {r.width, r.decomposition_nodes};
    }
  }));
  phases.push_back(RunPhase("ghw_new", [&] {
    for (size_t j = 0; j < hyper_idx.size(); ++j) {
      scratch.triples.clear();
      scratch.filters.clear();
      graph::CollectTriplesAndFilters(cases[hyper_idx[j]].query.where,
                                      scratch.triples, scratch.filters);
      graph::BuildCanonicalHypergraph(scratch.triples, scratch.filters,
                                      graph::CanonicalOptions(),
                                      scratch.canonical, scratch.hypergraph);
      width::GhwResult r =
          width::GeneralizedHypertreeWidth(scratch.hypergraph, scratch.ghw);
      ghw_new[j] = {r.width, r.decomposition_nodes};
    }
  }));

  // ---- Stage: the whole analysis, end to end (the headline number) ----
  corpus::ShapeCounts cq_ref, cqf_ref, cqof_ref;
  corpus::HypergraphStats hgs_ref;
  phases.push_back(RunPhase("analyze_ref", [&] {
    for (const QueryCase& qc : cases) {
      if (!qc.graph_case && !qc.hyper_case) continue;
      ReferenceAnalyzeShapes(qc, cq_ref, cqf_ref, cqof_ref, hgs_ref);
    }
  }));
  // The scratch-path twin of ReferenceAnalyzeShapes: same per-query
  // work (collect, build, classify, widths, table counting), new
  // implementations.
  corpus::ShapeCounts cq_new, cqf_new, cqof_new;
  corpus::HypergraphStats hgs_new;
  phases.push_back(RunPhase("analyze_new", [&] {
    for (const QueryCase& qc : cases) {
      if (!qc.graph_case && !qc.hyper_case) continue;
      scratch.triples.clear();
      scratch.filters.clear();
      graph::CollectTriplesAndFilters(qc.query.where, scratch.triples,
                                      scratch.filters);
      if (qc.hyper_case) {
        graph::BuildCanonicalHypergraph(scratch.triples, scratch.filters,
                                        graph::CanonicalOptions(),
                                        scratch.canonical, scratch.hypergraph);
        width::GhwResult ghw =
            width::GeneralizedHypertreeWidth(scratch.hypergraph, scratch.ghw);
        ++hgs_new.total;
        switch (ghw.width) {
          case 0:
          case 1: ++hgs_new.ghw1; break;
          case 2: ++hgs_new.ghw2; break;
          case 3: ++hgs_new.ghw3; break;
          default: ++hgs_new.ghw_more; break;
        }
        if (ghw.decomposition_nodes > 10) ++hgs_new.decompositions_gt10_nodes;
        if (ghw.decomposition_nodes > 100) ++hgs_new.decompositions_gt100_nodes;
        continue;
      }
      graph::BuildCanonicalGraph(scratch.triples, scratch.filters,
                                 graph::CanonicalOptions(), scratch.canonical,
                                 scratch.graph);
      const graph::CanonicalGraph& cg = scratch.graph;
      if (!cg.valid) continue;
      graph::ShapeClass shape = graph::ClassifyShape(cg.graph, scratch.shape);
      width::TreewidthResult tw = width::Treewidth(cg.graph, scratch.treewidth);
      auto record = [&](corpus::ShapeCounts& sc) {
        ++sc.total;
        if (shape.single_edge) {
          ++sc.single_edge;
          bool has_constant = false;
          for (const rdf::Term* t : cg.node_terms) {
            if (t->is_constant()) has_constant = true;
          }
          if (has_constant) ++sc.single_edge_with_constants;
        }
        if (shape.chain) ++sc.chain;
        if (shape.chain_set) ++sc.chain_set;
        if (shape.star) ++sc.star;
        if (shape.tree) ++sc.tree;
        if (shape.forest) ++sc.forest;
        if (shape.cycle) ++sc.cycle;
        if (shape.flower) ++sc.flower;
        if (shape.flower_set) ++sc.flower_set;
        if (tw.width <= 2) {
          ++sc.treewidth_le2;
        } else if (tw.width == 3) {
          ++sc.treewidth_3;
        } else {
          ++sc.treewidth_gt3;
        }
        if (shape.girth > 0) ++sc.girth[shape.girth];
      };
      if (qc.fc.cq) record(cq_new);
      if (qc.fc.cqf) record(cqf_new);
      if (qc.fc.cqof) record(cqof_new);
    }
  }));
  // The production analyzer, off the clock: its tables must match the
  // reference tables too (guards the CorpusAnalyzer plumbing).
  corpus::CorpusAnalyzer analyzer;
  for (const QueryCase& qc : cases) {
    analyzer.AddQuery(qc.query, "all");
  }

  // ---- Oracle: per-query equivalence ----
  for (size_t j = 0; j < graph_idx.size(); ++j) {
    Check("canonical.valid", ref_graphs[j].valid ? 1 : 0,
          new_graphs[j].valid ? 1 : 0);
    if (!ref_graphs[j].valid || !new_graphs[j].valid) continue;
    Check("canonical.nodes",
          static_cast<uint64_t>(ref_graphs[j].graph.num_nodes()),
          static_cast<uint64_t>(new_graphs[j].graph.num_nodes()));
    Check("canonical.edges",
          static_cast<uint64_t>(ref_graphs[j].graph.num_edges()),
          static_cast<uint64_t>(new_graphs[j].graph.num_edges()));
    if (!SameShape(shapes_ref[j], shapes_new[j])) {
      ++g_failures;
      std::fprintf(stderr, "FAIL: shape flags diverge on graph case %zu\n", j);
    }
    Check("treewidth", static_cast<uint64_t>(tw_ref[j]),
          static_cast<uint64_t>(tw_new[j]));
  }
  for (size_t j = 0; j < hyper_idx.size(); ++j) {
    Check("ghw.width", static_cast<uint64_t>(ghw_ref[j].width),
          static_cast<uint64_t>(ghw_new[j].width));
    Check("ghw.nodes", static_cast<uint64_t>(ghw_ref[j].decomposition_nodes),
          static_cast<uint64_t>(ghw_new[j].decomposition_nodes));
  }

  // ---- Oracle: aggregated tables vs the reference-built tables ----
  CheckShapeCounts("ShapeCounts[cq]", cq_ref, cq_new);
  CheckShapeCounts("ShapeCounts[cqf]", cqf_ref, cqf_new);
  CheckShapeCounts("ShapeCounts[cqof]", cqof_ref, cqof_new);
  Check("HypergraphStats.total(stage)", hgs_ref.total, hgs_new.total);
  Check("HypergraphStats.ghw1(stage)", hgs_ref.ghw1, hgs_new.ghw1);
  Check("HypergraphStats.ghw2(stage)", hgs_ref.ghw2, hgs_new.ghw2);
  Check("HypergraphStats.ghw3(stage)", hgs_ref.ghw3, hgs_new.ghw3);
  CheckShapeCounts("ShapeCounts[cq](analyzer)", cq_ref, analyzer.cq_shapes());
  CheckShapeCounts("ShapeCounts[cqf](analyzer)", cqf_ref,
                   analyzer.cqf_shapes());
  CheckShapeCounts("ShapeCounts[cqof](analyzer)", cqof_ref,
                   analyzer.cqof_shapes());
  Check("HypergraphStats.total", hgs_ref.total, analyzer.hypergraphs().total);
  Check("HypergraphStats.ghw1", hgs_ref.ghw1, analyzer.hypergraphs().ghw1);
  Check("HypergraphStats.ghw2", hgs_ref.ghw2, analyzer.hypergraphs().ghw2);
  Check("HypergraphStats.ghw3", hgs_ref.ghw3, analyzer.hypergraphs().ghw3);
  Check("HypergraphStats.ghw_more", hgs_ref.ghw_more,
        analyzer.hypergraphs().ghw_more);
  Check("HypergraphStats.gt10", hgs_ref.decompositions_gt10_nodes,
        analyzer.hypergraphs().decompositions_gt10_nodes);
  Check("HypergraphStats.gt100", hgs_ref.decompositions_gt100_nodes,
        analyzer.hypergraphs().decompositions_gt100_nodes);
  {
    // FragmentStats: replicate the pre-change counting (ClassifyFragment
    // is untouched by the rewrite, so this guards the plumbing).
    corpus::FragmentStats fs_ref;
    for (const QueryCase& qc : cases) {
      bool select_ask = qc.query.form == sparql::QueryForm::kSelect ||
                        qc.query.form == sparql::QueryForm::kAsk;
      if (!select_ask || !qc.query.has_body) continue;
      fragments::FragmentClass fc = fragments::ClassifyFragment(qc.query);
      ++fs_ref.select_ask;
      if (fc.aof) ++fs_ref.aof;
      if (fc.cq) {
        ++fs_ref.cq;
        if (fc.num_triples >= 1) fs_ref.cq_sizes.Add(fc.num_triples);
      }
      if (fc.cpf) ++fs_ref.cpf;
      if (fc.cqf) {
        ++fs_ref.cqf;
        if (fc.num_triples >= 1) fs_ref.cqf_sizes.Add(fc.num_triples);
      }
      if (fc.well_designed) ++fs_ref.well_designed;
      if (fc.cqof) {
        ++fs_ref.cqof;
        if (fc.num_triples >= 1) fs_ref.cqof_sizes.Add(fc.num_triples);
      }
      if (fc.aof && fc.well_designed && fc.simple_filters &&
          fc.interface_width > 1) {
        ++fs_ref.wide_interface;
      }
    }
    const corpus::FragmentStats& got = analyzer.fragments();
    Check("FragmentStats.select_ask", fs_ref.select_ask, got.select_ask);
    Check("FragmentStats.aof", fs_ref.aof, got.aof);
    Check("FragmentStats.cq", fs_ref.cq, got.cq);
    Check("FragmentStats.cpf", fs_ref.cpf, got.cpf);
    Check("FragmentStats.cqf", fs_ref.cqf, got.cqf);
    Check("FragmentStats.well_designed", fs_ref.well_designed,
          got.well_designed);
    Check("FragmentStats.cqof", fs_ref.cqof, got.cqof);
    Check("FragmentStats.wide_interface", fs_ref.wide_interface,
          got.wide_interface);
    CheckHistogram("FragmentStats.cq_sizes", fs_ref.cq_sizes, got.cq_sizes);
    CheckHistogram("FragmentStats.cqf_sizes", fs_ref.cqf_sizes, got.cqf_sizes);
    CheckHistogram("FragmentStats.cqof_sizes", fs_ref.cqof_sizes,
                   got.cqof_sizes);
  }

  // ---- Oracle: serial vs parallel StatisticsDigest ----
  bool digest_match = true;
  {
    corpus::LogIngestor ingestor;
    corpus::CorpusAnalyzer serial;
    ingestor.set_unique_sink(
        [&serial](const sparql::Query& q) { serial.AddQuery(q, "all"); });
    ingestor.ProcessLog(lines);
    std::vector<uint64_t> serial_digest = pipeline::StatisticsDigest(serial);
    struct Config {
      int threads;
      size_t shards;
      size_t chunk;
    };
    const Config configs[] = {{3, 5, 64}, {4, 2, 7}, {2, 0, 512}};
    for (const Config& c : configs) {
      pipeline::PipelineOptions options;
      options.threads = c.threads;
      options.shards = c.shards;
      options.chunk_size = c.chunk;
      pipeline::ParallelLogPipeline pl(options);
      pipeline::PipelineResult result = pl.Run(lines);
      if (pipeline::StatisticsDigest(result.analysis) != serial_digest ||
          result.stats.total != ingestor.stats().total ||
          result.stats.valid != ingestor.stats().valid ||
          result.stats.unique != ingestor.stats().unique) {
        digest_match = false;
        ++g_failures;
        std::fprintf(stderr,
                     "FAIL: serial/parallel digest diverges (threads=%d "
                     "shards=%zu chunk=%zu)\n",
                     c.threads, c.shards, c.chunk);
      }
    }
  }

  // ---- Scoreboard ----
  std::printf("%-16s %10s %14s %16s %12s\n", "stage", "time (s)",
              "queries/sec", "bytes/query", "allocs/query");
  auto denom_of = [&](const std::string& name) -> uint64_t {
    if (name.rfind("ghw", 0) == 0) {
      return hyper_idx.empty() ? 1 : hyper_idx.size();
    }
    if (name.rfind("analyze", 0) == 0) return analyzed > 0 ? analyzed : 1;
    return graph_idx.empty() ? 1 : graph_idx.size();
  };
  for (const PhaseResult& p : phases) {
    double denom = static_cast<double>(denom_of(p.name));
    double qps = p.seconds > 0 ? denom / p.seconds : 0;
    std::printf("%-16s %10.3f %14s %16.1f %12.2f\n", p.name.c_str(), p.seconds,
                util::WithThousands(static_cast<long long>(qps)).c_str(),
                static_cast<double>(p.bytes_allocated) / denom,
                static_cast<double>(p.allocations) / denom);
  }

  const PhaseResult& ref_total = phases[phases.size() - 2];
  const PhaseResult& new_total = phases[phases.size() - 1];
  double speedup =
      new_total.seconds > 0 ? ref_total.seconds / new_total.seconds : 0;
  double alloc_ratio =
      new_total.allocations > 0
          ? static_cast<double>(ref_total.allocations) /
                static_cast<double>(new_total.allocations)
          : static_cast<double>(ref_total.allocations);
  std::printf("\nAnalysis stage: %.1fx queries/sec, %.1fx fewer allocations "
              "(%llu -> %llu over %llu queries)\n",
              speedup, alloc_ratio,
              static_cast<unsigned long long>(ref_total.allocations),
              static_cast<unsigned long long>(new_total.allocations),
              static_cast<unsigned long long>(analyzed));

  // ---- BENCH_analysis.json ----
  {
    std::ofstream out(json_path);
    bench::JsonWriter json(out);
    json.BeginObject();
    json.KV("bench", "analysis_hotpath");
    json.KV("entries_per_dataset", entries_per_dataset);
    json.KV("lines", static_cast<uint64_t>(lines.size()));
    json.KV("unique_queries", static_cast<uint64_t>(cases.size()));
    json.KV("analyzed_queries", analyzed);
    json.KV("graph_queries", static_cast<uint64_t>(graph_idx.size()));
    json.KV("hypergraph_queries", static_cast<uint64_t>(hyper_idx.size()));
    json.Key("phases").BeginArray();
    for (const PhaseResult& p : phases) {
      double denom = static_cast<double>(denom_of(p.name));
      double qps = p.seconds > 0 ? denom / p.seconds : 0;
      json.BeginObject();
      json.KV("name", p.name);
      json.KV("seconds", p.seconds);
      json.KV("queries_per_sec", static_cast<uint64_t>(qps));
      json.KV("bytes_allocated", p.bytes_allocated);
      json.KV("allocations", p.allocations);
      json.KV("allocs_per_query",
              static_cast<double>(p.allocations) / denom);
      json.EndObject();
    }
    json.EndArray();
    json.KV("speedup_analyze", speedup);
    json.KV("alloc_ratio_analyze", alloc_ratio);
    json.KV("digest_match", digest_match);
    json.KV("mismatches", static_cast<uint64_t>(g_failures));
    json.KV("tables_match", g_failures == 0);
    json.EndObject();
    json.Finish();
  }
  std::printf("Wrote %s\n", json_path.c_str());

  if (g_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d divergence(s) between the reference and the "
                 "allocation-lean analysis path\n",
                 g_failures);
    return 1;
  }
  return 0;
}
