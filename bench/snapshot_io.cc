// Snapshot I/O gate: prices the durable checkpoint path on real shard
// state and verifies that a checkpoint loads back to the exact
// pipeline result it saved.
//
// The synthetic paper corpus is run once journaled (single segment), so
// the final snapshot generation holds the complete dedup/analysis state
// of the run. The bench then measures, best-of-N:
//
//   * save  — rebuilding the checkpoint image (sections + CRC32C) and
//     publishing it write-fsync-rename to a scratch path;
//   * load (stream) / load (mmap) — fully verified Snapshot::Load of
//     the generation file.
//
// Fails (non-zero exit) if
//
//   * resuming the journal does not reproduce the plain run's
//     StatisticsDigest and Table 1 counters exactly (load-vs-recompute
//     equality — the durability contract), or
//   * the saved image differs from the on-disk generation byte-for-byte
//     (the rebuild-save arm must price the real payload).
//
// Knobs: SPARQLOG_BENCH_ENTRIES (per-dataset corpus floor, default
// 2000), SPARQLOG_BENCH_ROUNDS (best-of rounds, default 5),
// SPARQLOG_BENCH_JSON (artifact path, default BENCH_snapshot.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pipeline/journal.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "util/snapshot_io.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace sparqlog;
namespace snap = util::snapshot;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  uint64_t entries_per_dataset =
      bench::EnvCount("SPARQLOG_BENCH_ENTRIES", 2000);
  uint64_t rounds = bench::EnvCount("SPARQLOG_BENCH_ROUNDS", 5);

  std::cout << "Generating corpus (" << entries_per_dataset
            << " entries/dataset x 13 datasets)...\n";
  std::vector<std::string> lines;
  {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      corpus::GeneratorOptions options;
      options.scale = 0;
      options.min_entries = entries_per_dataset;
      options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
  }
  std::cout << util::WithThousands(static_cast<long long>(lines.size()))
            << " log lines, best of " << rounds << " rounds\n\n";

  pipeline::PipelineOptions options;

  // Reference: plain uninterrupted run.
  pipeline::ParallelLogPipeline plain(options);
  pipeline::PipelineResult expect = plain.Run(lines);
  const std::vector<uint64_t> expect_digest =
      pipeline::StatisticsDigest(expect.analysis);

  const std::string base =
      (std::filesystem::temp_directory_path() / "sparqlog_bench_snapshot.ckpt")
          .string();
  snap::SnapshotStore store(base);
  store.Remove();

  bool ok = true;

  // Journaled run: one segment, so generation 1 is the complete state.
  pipeline::JournalOptions jopts;
  jopts.path = base;
  jopts.chunks_per_segment = 1u << 30;
  {
    pipeline::VectorChunkSource source(lines);
    auto jr = pipeline::RunWithJournal(options, source, jopts);
    if (!jr.ok() || !jr.value().complete) {
      std::cerr << "FAIL: journaled run did not complete: "
                << jr.status().ToString() << "\n";
      return 1;
    }
  }

  // Load-vs-recompute: resuming the finished journal must restore the
  // exact state (the resumed run re-reads nothing).
  for (bool mmap : {false, true}) {
    pipeline::VectorChunkSource source(lines);
    pipeline::JournalOptions ropts = jopts;
    ropts.mmap_load = mmap;
    auto jr = pipeline::RunWithJournal(options, source, ropts);
    if (!jr.ok() || !jr.value().resumed ||
        jr.value().result.stats.total != expect.stats.total ||
        jr.value().result.stats.valid != expect.stats.valid ||
        jr.value().result.stats.unique != expect.stats.unique ||
        pipeline::StatisticsDigest(jr.value().result.analysis) !=
            expect_digest) {
      std::cerr << "FAIL: resumed checkpoint ("
                << (mmap ? "mmap" : "stream")
                << ") diverges from the recomputed run\n";
      ok = false;
    }
  }

  auto manifest = store.ReadManifest();
  if (!manifest.ok()) {
    std::cerr << "FAIL: " << manifest.status().ToString() << "\n";
    return 1;
  }
  const std::string gen_path = store.GenerationPath(manifest.value().current);
  std::string image;
  {
    std::ifstream in(gen_path, std::ios::binary);
    image.assign(std::istreambuf_iterator<char>(in), {});
  }
  const double mib = static_cast<double>(image.size()) / (1024.0 * 1024.0);

  // Save arm: rebuild the image from its own sections and publish it
  // durably to a scratch path — the real serialize+checksum+fsync cost
  // on the real payload.
  double best_save = 1e300;
  const std::string scratch = base + ".bench";
  {
    auto loaded = snap::Snapshot::Load(gen_path, snap::LoadMode::kStream);
    if (!loaded.ok()) {
      std::cerr << "FAIL: " << loaded.status().ToString() << "\n";
      return 1;
    }
    for (uint64_t r = 0; r <= rounds; ++r) {
      auto start = std::chrono::steady_clock::now();
      snap::SnapshotWriter writer;
      for (const auto& [id, payload] : loaded.value().sections()) {
        writer.AddSection(id, std::string(payload));
      }
      const std::string rebuilt = writer.Finish();
      util::Status st = snap::AtomicWriteFile(scratch, rebuilt);
      double elapsed = Seconds(start);
      if (!st.ok()) {
        std::cerr << "FAIL: " << st.ToString() << "\n";
        return 1;
      }
      if (r == 0) {
        // Warm-up round doubles as the fidelity check.
        if (rebuilt != image) {
          std::cerr << "FAIL: rebuilt snapshot image differs from the "
                       "journal's generation file\n";
          ok = false;
        }
        continue;
      }
      if (elapsed < best_save) best_save = elapsed;
    }
    std::filesystem::remove(scratch);
  }

  // Load arms: fully verified loads, stream and mmap.
  double best_load[2] = {1e300, 1e300};
  for (int mode = 0; mode < 2; ++mode) {
    for (uint64_t r = 0; r <= rounds; ++r) {
      auto start = std::chrono::steady_clock::now();
      auto loaded = snap::Snapshot::Load(gen_path, mode == 0
                                                       ? snap::LoadMode::kStream
                                                       : snap::LoadMode::kMmap);
      double elapsed = Seconds(start);
      if (!loaded.ok()) {
        std::cerr << "FAIL: " << loaded.status().ToString() << "\n";
        return 1;
      }
      if (r > 0 && elapsed < best_load[mode]) best_load[mode] = elapsed;
    }
  }

  const double bytes_per_query =
      static_cast<double>(image.size()) /
      static_cast<double>(expect.stats.total ? expect.stats.total : 1);

  util::Table table({"Arm", "Best (s)", "MB/s"});
  char buf[64], buf2[64];
  auto row = [&](const char* name, double secs) {
    std::snprintf(buf, sizeof(buf), "%.4f", secs);
    std::snprintf(buf2, sizeof(buf2), "%.1f", mib / secs);
    table.AddRow({name, buf, buf2});
  };
  row("save (rebuild+fsync)", best_save);
  row("load (stream)", best_load[0]);
  row("load (mmap)", best_load[1]);
  table.Print(std::cout);
  std::cout << "\nsnapshot: " << util::WithThousands(static_cast<long long>(
                                     image.size()))
            << " bytes for "
            << util::WithThousands(
                   static_cast<long long>(expect.stats.total))
            << " queries (" << bytes_per_query << " bytes/query)\n";
  if (ok) std::cout << "load-vs-recompute digest equality held\n";

  std::ofstream json_out(bench::BenchJsonPath("BENCH_snapshot.json"));
  bench::JsonWriter json(json_out);
  json.BeginObject();
  json.KV("bench", "snapshot_io");
  json.KV("lines", expect.lines);
  json.KV("queries", expect.stats.total);
  json.KV("rounds", rounds);
  json.KV("snapshot_bytes", static_cast<uint64_t>(image.size()));
  json.KV("bytes_per_query", bytes_per_query);
  json.KV("save_seconds", best_save);
  json.KV("save_mb_per_s", mib / best_save);
  json.KV("load_stream_seconds", best_load[0]);
  json.KV("load_stream_mb_per_s", mib / best_load[0]);
  json.KV("load_mmap_seconds", best_load[1]);
  json.KV("load_mmap_mb_per_s", mib / best_load[1]);
  json.KV("digest_equal", ok);
  json.KV("ok", ok);
  json.EndObject();
  json.Finish();

  store.Remove();
  return ok ? 0 : 1;
}
