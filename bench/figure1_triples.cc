// Regenerates Figure 1: per-dataset distribution of the number of
// triples in Select/Ask queries (buckets 0..10, 11+), plus the S/A share
// and average triple count rows from the figure's bottom table.

#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace sparqlog;
  double scale = bench::ScaleFromEnv();
  corpus::CorpusAnalyzer analyzer;
  bench::RunCorpus(analyzer, scale);

  std::cout << "Figure 1: #triples per Select/Ask query, per dataset "
               "(columns are % of the dataset's S/A queries)\n\n";
  std::vector<std::string> header = {"Dataset"};
  for (int b = 0; b <= 10; ++b) header.push_back(std::to_string(b));
  header.push_back("11+");
  header.push_back("S/A%");
  header.push_back("Avg#T");
  util::Table table(header);

  auto profiles = corpus::PaperProfiles();
  for (const auto& profile : profiles) {
    auto it = analyzer.per_dataset().find(profile.name);
    if (it == analyzer.per_dataset().end()) continue;
    const corpus::TripleStats& ts = it->second;
    std::vector<std::string> row = {profile.name};
    double sa = static_cast<double>(ts.select_ask);
    for (int b = 0; b <= 10; ++b) {
      row.push_back(
          util::Percent(static_cast<double>(ts.histogram.Count(b)), sa));
    }
    row.push_back(
        util::Percent(static_cast<double>(ts.histogram.Overflow()), sa));
    row.push_back(util::Percent(sa, static_cast<double>(ts.all_queries)));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", ts.AvgTriples());
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Aggregate cumulative claims from Section 4.2.
  uint64_t le1 = 0, le6 = 0, le12 = 0, sa_total = 0;
  for (const auto& [name, ts] : analyzer.per_dataset()) {
    sa_total += ts.select_ask;
    for (int b = 0; b <= 10; ++b) {
      if (b <= 1) le1 += ts.histogram.Count(b);
      if (b <= 6) le6 += ts.histogram.Count(b);
      le12 += ts.histogram.Count(b);
    }
    // The overflow bucket holds 11+; for <=12 we approximate by
    // including it only in le12 when small — report separately instead.
  }
  std::cout << "\nSelect/Ask queries with <=1 triple: "
            << util::Percent(static_cast<double>(le1),
                             static_cast<double>(sa_total))
            << " (paper: 56.45%), <=6: "
            << util::Percent(static_cast<double>(le6),
                             static_cast<double>(sa_total))
            << " (paper: 90.76%)\n";
  std::cout << "Paper bottom row Avg#T: DBpedia9/12 2.38, DBpedia13 3.98, "
               "DBpedia14 2.09, DBpedia15 2.94, DBpedia16 3.78, LGD13 3.19, "
               "LGD14 2.65, BioP13 1.16, BioP14 1.42, BioMed13 2.44, "
               "SWDF13 1.51, BritM14 5.47, WikiData17 3.94\n";
  return 0;
}
