// Microbenchmark / ablation: why the relational stand-in collapses on
// cycles — pipelined index-nested-loop (GraphEngine) vs materializing
// pairwise joins (RelationalEngine) on chains vs cycles of growing
// length over the same store.

#include <benchmark/benchmark.h>

#include <chrono>

#include "gmark/graph_gen.h"
#include "gmark/query_gen.h"
#include "store/engine.h"

namespace {

using namespace sparqlog;
using namespace std::chrono_literals;

struct Fixture {
  store::TripleStore store;
  gmark::Schema schema = gmark::Schema::Bib();
  Fixture() {
    gmark::GraphGenOptions options;
    options.num_nodes = 5000;
    options.seed = 11;
    gmark::GenerateGraph(schema, options, store);
  }
  static Fixture& Get() {
    static Fixture instance;
    return instance;
  }
};

std::vector<store::BgpQuery> Workload(gmark::QueryShape shape, int length) {
  Fixture& f = Fixture::Get();
  gmark::QueryGenOptions options;
  options.shape = shape;
  options.length = length;
  options.workload_size = 20;
  options.seed = static_cast<uint64_t>(length);
  std::vector<store::BgpQuery> out;
  for (const auto& q : gmark::GenerateWorkload(f.schema, options)) {
    auto bgp = gmark::CompileForEngine(q, f.store, f.schema);
    if (bgp.has_value()) out.push_back(*bgp);
  }
  return out;
}

template <typename EngineT>
void RunWorkload(benchmark::State& state, gmark::QueryShape shape) {
  Fixture& f = Fixture::Get();
  EngineT engine(f.store);
  auto workload = Workload(shape, static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    const store::BgpQuery& q = workload[i++ % workload.size()];
    benchmark::DoNotOptimize(
        engine.Evaluate(q, store::EvalMode::kAsk, 50ms));
  }
}

void BM_GraphEngineChain(benchmark::State& state) {
  RunWorkload<store::GraphEngine>(state, gmark::QueryShape::kChain);
}
BENCHMARK(BM_GraphEngineChain)->Arg(3)->Arg(5)->Arg(8);

void BM_GraphEngineCycle(benchmark::State& state) {
  RunWorkload<store::GraphEngine>(state, gmark::QueryShape::kCycle);
}
BENCHMARK(BM_GraphEngineCycle)->Arg(3)->Arg(5)->Arg(8);

void BM_RelationalEngineChain(benchmark::State& state) {
  RunWorkload<store::RelationalEngine>(state, gmark::QueryShape::kChain);
}
BENCHMARK(BM_RelationalEngineChain)->Arg(3)->Arg(5)->Arg(8);

void BM_RelationalEngineCycle(benchmark::State& state) {
  RunWorkload<store::RelationalEngine>(state, gmark::QueryShape::kCycle);
}
BENCHMARK(BM_RelationalEngineCycle)->Arg(3)->Arg(5)->Arg(8);

void BM_StoreMatchByPredicate(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  rdf::TermId p =
      f.store.dict().Lookup(f.schema.namespace_iri + "cites");
  std::vector<rdf::EncodedTriple> out;
  for (auto _ : state) {
    out.clear();
    f.store.Match(0, p, 0, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_StoreMatchByPredicate);

}  // namespace
