// Fault-containment overhead gate: runs the same synthetic corpus
// through the parallel pipeline with containment off (the
// pre-containment fast path: no try/catch scope, no quarantine
// bookkeeping), with containment on, and with containment plus
// generous analysis step budgets armed (large enough that nothing is
// abandoned, so the budget charging itself is what's being priced).
// Configurations are interleaved round-robin keeping the best
// (minimum) wall time of each so OS noise cancels instead of biasing
// one arm. Fails (non-zero exit) if
//
//   * the Table 1 counters differ between any two configurations on
//     this fault-free input (containment must never change results),
//   * a containment run quarantines or abandons anything (the input is
//     fault-free and the budgets are generous; either bucket being
//     non-empty means the machinery misfired), or
//   * best-of containment time exceeds best-of off time by more than
//     SPARQLOG_FAULTS_MAX_OVERHEAD (fraction, default 0.02).
//
// Knobs: SPARQLOG_BENCH_ENTRIES (per-dataset corpus floor),
// SPARQLOG_BENCH_ROUNDS (interleaved rounds, default 5),
// SPARQLOG_BENCH_JSON (artifact path, default BENCH_faults.json).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pipeline/pipeline.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace sparqlog;

struct Arm {
  const char* name;
  bool containment = false;
  bool budgets = false;
  double best_s = 1e300;
  corpus::CorpusStats stats;
  uint64_t lines = 0;
};

double RunOnce(const std::vector<std::string>& lines, Arm& arm) {
  pipeline::PipelineOptions options;
  options.fault_containment = arm.containment;
  if (arm.budgets) {
    // Generous enough that no synthetic query comes near exhaustion:
    // the arm prices the per-kernel Charge() calls, not abandonment.
    options.analysis_limits.ghw_steps = 1u << 30;
    options.analysis_limits.treewidth_steps = 1u << 30;
    options.analysis_limits.girth_steps = 1u << 30;
  }
  pipeline::ParallelLogPipeline pl(options);
  auto start = std::chrono::steady_clock::now();
  pipeline::PipelineResult result = pl.Run(lines);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  arm.stats = result.stats;
  arm.lines = result.lines;
  if (elapsed < arm.best_s) arm.best_s = elapsed;
  return elapsed;
}

}  // namespace

int main() {
  uint64_t entries_per_dataset = bench::EnvCount("SPARQLOG_BENCH_ENTRIES", 4000);
  uint64_t rounds = bench::EnvCount("SPARQLOG_BENCH_ROUNDS", 5);
  double max_overhead = 0.02;
  if (const char* env = std::getenv("SPARQLOG_FAULTS_MAX_OVERHEAD")) {
    double v = std::atof(env);
    if (v > 0) max_overhead = v;
  }

  std::cout << "Generating corpus (" << entries_per_dataset
            << " entries/dataset x 13 datasets)...\n";
  std::vector<std::string> lines;
  {
    auto profiles = corpus::PaperProfiles();
    uint64_t seed = 2017;
    for (const auto& profile : profiles) {
      corpus::GeneratorOptions options;
      options.scale = 0;
      options.min_entries = entries_per_dataset;
      options.seed = seed++;
      corpus::SyntheticLogGenerator gen(profile, options);
      auto log = gen.GenerateLog();
      lines.insert(lines.end(), log.begin(), log.end());
    }
  }
  std::cout << util::WithThousands(static_cast<long long>(lines.size()))
            << " log lines, best of " << rounds << " interleaved rounds\n\n";

  Arm arms[3] = {{"off", false, false},
                 {"containment", true, false},
                 {"containment+budgets", true, true}};

  // Warm-up round (page cache, allocator arenas), discarded.
  for (Arm& arm : arms) RunOnce(lines, arm);
  for (Arm& arm : arms) arm.best_s = 1e300;
  for (uint64_t r = 0; r < rounds; ++r) {
    for (Arm& arm : arms) RunOnce(lines, arm);
  }

  util::Table table({"Config", "Best (s)", "Queries/sec", "Overhead"});
  char buf[64];
  for (const Arm& arm : arms) {
    double overhead = arm.best_s / arms[0].best_s - 1.0;
    std::string overhead_str = "baseline";
    if (&arm != &arms[0]) {
      std::snprintf(buf, sizeof(buf), "%+.2f%%", 100.0 * overhead);
      overhead_str = buf;
    }
    std::snprintf(buf, sizeof(buf), "%.3f", arm.best_s);
    table.AddRow({arm.name, buf,
                  util::WithThousands(static_cast<long long>(
                      arm.stats.total / arm.best_s)),
                  overhead_str});
  }
  table.Print(std::cout);

  bool ok = true;
  // Containment must not change the answers on a fault-free input.
  for (int i = 1; i < 3; ++i) {
    if (arms[i].stats.total != arms[0].stats.total ||
        arms[i].stats.valid != arms[0].stats.valid ||
        arms[i].stats.unique != arms[0].stats.unique ||
        arms[i].stats.malformed != arms[0].stats.malformed ||
        arms[i].lines != arms[0].lines) {
      std::cerr << "FAIL: " << arms[i].name
                << " changed pipeline results vs off\n";
      ok = false;
    }
    if (arms[i].stats.quarantined != 0 || arms[i].stats.abandoned != 0) {
      std::cerr << "FAIL: " << arms[i].name << " quarantined "
                << arms[i].stats.quarantined << " / abandoned "
                << arms[i].stats.abandoned << " on a fault-free input\n";
      ok = false;
    }
  }
  double containment_overhead = arms[1].best_s / arms[0].best_s - 1.0;
  if (containment_overhead > max_overhead) {
    std::cerr << "FAIL: containment overhead "
              << 100.0 * containment_overhead << "% exceeds budget "
              << 100.0 * max_overhead << "%\n";
    ok = false;
  } else {
    std::cout << "\ncontainment overhead " << 100.0 * containment_overhead
              << "% within budget " << 100.0 * max_overhead << "%\n";
  }

  std::ofstream json_out(bench::BenchJsonPath("BENCH_faults.json"));
  bench::JsonWriter json(json_out);
  json.BeginObject();
  json.KV("bench", "fault_overhead");
  json.KV("lines", arms[0].lines);
  json.KV("rounds", rounds);
  json.KV("max_overhead", max_overhead);
  json.Key("configs");
  json.BeginArray();
  for (const Arm& arm : arms) {
    json.BeginObject();
    json.KV("name", arm.name);
    json.KV("best_seconds", arm.best_s);
    json.KV("queries_per_second", arm.stats.total / arm.best_s);
    json.KV("overhead", arm.best_s / arms[0].best_s - 1.0);
    json.EndObject();
  }
  json.EndArray();
  json.KV("ok", ok);
  json.EndObject();
  json.Finish();

  return ok ? 0 : 1;
}
