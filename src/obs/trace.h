#ifndef SPARQLOG_OBS_TRACE_H_
#define SPARQLOG_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace sparqlog::obs {

/// One completed span: a stage working on a chunk between two monotonic
/// timestamps. 32 bytes, trivially copyable — rings of these are cheap.
struct TraceEvent {
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint64_t chunk = 0;  // chunk / batch id (stage-defined)
  int32_t stage = 0;   // StageId
  uint32_t pad = 0;

  bool operator==(const TraceEvent& other) const = default;
};

/// Fixed-capacity per-worker span buffer. Record never allocates after
/// construction and never blocks: when the ring is full the oldest span
/// is overwritten and `dropped` counts the loss, so tracing a huge run
/// costs bounded memory and the *end* of the run (where stalls usually
/// live) is what survives.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Record(int stage, uint64_t chunk, uint64_t begin_ns, uint64_t end_ns) {
    if constexpr (!kTelemetryEnabled) {
      (void)stage;
      (void)chunk;
      (void)begin_ns;
      (void)end_ns;
      return;
    }
    if (events_.empty()) return;
    if (size_ == events_.size()) {
      ++dropped_;
    } else {
      ++size_;
    }
    events_[next_] = TraceEvent{begin_ns, end_ns, chunk,
                                static_cast<int32_t>(stage), 0};
    next_ = next_ + 1 == events_.size() ? 0 : next_ + 1;
  }

  size_t size() const { return size_; }
  uint64_t dropped() const { return dropped_; }

  /// The retained spans, oldest first.
  std::vector<TraceEvent> Drain() const;

 private:
  std::vector<TraceEvent> events_;
  size_t next_ = 0;   // slot the next Record writes
  size_t size_ = 0;   // valid events
  uint64_t dropped_ = 0;
};

/// One worker's named span track (reader, parse-0, shard-2, ...).
struct TraceTrack {
  std::string name;
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
};

/// A whole run's trace: per-worker tracks on a common time axis whose
/// origin is the run start (timestamps stay raw; exporters subtract).
struct TraceData {
  uint64_t origin_ns = 0;
  uint64_t wall_ns = 0;
  std::vector<TraceTrack> tracks;
};

/// Writes the Chrome trace-event JSON (load via chrome://tracing or
/// https://ui.perfetto.dev): one "X" complete event per span with
/// microsecond ts/dur relative to the run origin, thread-name metadata
/// per track, and a dropped-span count in the top-level metadata.
void WriteChromeTrace(std::ostream& out, const TraceData& trace);

}  // namespace sparqlog::obs

#endif  // SPARQLOG_OBS_TRACE_H_
