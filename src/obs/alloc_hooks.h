#ifndef SPARQLOG_OBS_ALLOC_HOOKS_H_
#define SPARQLOG_OBS_ALLOC_HOOKS_H_

// Replacement global operator new/delete feeding the counters in
// obs/alloc_tracker.h. Include this header from exactly ONE translation
// unit per binary that wants allocation telemetry (the replacement
// definitions are deliberately non-inline, as the standard requires);
// binaries that skip it run the default allocator and read zeros.

#include <cstdlib>
#include <new>

#include "obs/alloc_tracker.h"

void* operator new(std::size_t n) {
  // Fault injection (obs/alloc_tracker.h): one relaxed load when
  // disarmed, a thread-local check when armed. Throws before malloc so
  // an injected failure looks exactly like real memory exhaustion.
  if (sparqlog::obs::ShouldInjectAllocFailure()) throw std::bad_alloc();
  sparqlog::obs::alloc_internal::g_alloc_bytes.fetch_add(
      n, std::memory_order_relaxed);
  sparqlog::obs::alloc_internal::g_alloc_count.fetch_add(
      1, std::memory_order_relaxed);
  sparqlog::obs::alloc_internal::t_alloc_bytes += n;
  sparqlog::obs::alloc_internal::t_alloc_count += 1;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // SPARQLOG_OBS_ALLOC_HOOKS_H_
