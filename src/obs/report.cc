#include "obs/report.h"

#include <cstdio>
#include <sstream>

#include "util/table.h"

namespace sparqlog::obs {

namespace {

std::string Ms(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ns / 1e6);
  return buf;
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

std::string Ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

/// Stage throughput in MB/s: payload bytes over busy (in-stage) time.
std::string MbPerSec(uint64_t bytes, uint64_t busy_ns) {
  if (bytes == 0 || busy_ns == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) * 1e3 /
                    static_cast<double>(busy_ns));
  return buf;
}

/// Mean items per chunk, "-" when the stage processed no chunks.
std::string PerChunk(uint64_t items, uint64_t chunks) {
  if (chunks == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(items) / static_cast<double>(chunks));
  return buf;
}

void AppendQueueJson(JsonWriter& json, const QueueCounters& q) {
  json.BeginObject();
  json.KV("pushes", q.pushes);
  json.KV("pops", q.pops);
  json.KV("push_blocks", q.push_blocks);
  json.KV("pop_waits", q.pop_waits);
  json.KV("push_block_ns", q.push_block_ns);
  json.KV("pop_wait_ns", q.pop_wait_ns);
  json.KV("max_depth", q.max_depth);
  json.KV("rejected_pushes", q.rejected_pushes);
  json.EndObject();
}

/// Prometheus metric lines for one counter.
void Counter(std::string& out, const std::string& name,
             const std::string& labels, uint64_t value) {
  out += "# TYPE " + name + " counter\n";
  out += name + labels + " " + std::to_string(value) + "\n";
}

}  // namespace

void PrintSummary(std::ostream& out, const RunTelemetry& t) {
  out << "Telemetry (" << t.workers << " workers, wall "
      << Ms(static_cast<double>(t.wall_ns)) << " ms)\n\n";

  util::Table stages({"Stage", "Chunks", "In", "Out", "Malformed", "Abandoned",
                      "Quarantined", "MB/s", "In/chunk", "Mean ms", "p99 ms",
                      "Busy"});
  for (int s = 0; s < kStageCount; ++s) {
    const StageMetrics& m = t.stage(s);
    if (m.items_in == 0 && m.chunks == 0 && m.chunk_ns.count() == 0) continue;
    double busy = t.wall_ns > 0 ? static_cast<double>(m.chunk_ns.total_ns()) /
                                      static_cast<double>(t.wall_ns)
                                : 0.0;
    stages.AddRow({StageName(s), std::to_string(m.chunks),
                   std::to_string(m.items_in), std::to_string(m.items_out),
                   std::to_string(m.malformed), std::to_string(m.abandoned),
                   std::to_string(m.quarantined),
                   MbPerSec(m.bytes_in, m.chunk_ns.total_ns()),
                   PerChunk(m.items_in, m.chunks), Ms(m.chunk_ns.MeanNs()),
                   Ms(static_cast<double>(m.chunk_ns.PercentileNs(0.99))),
                   Pct(busy)});
  }
  stages.Print(out);

  out << "\n";
  util::Table queues({"Queue", "Pushes", "Pops", "Blocks", "Waits",
                      "Block ms", "Wait ms", "Max depth"});
  auto queue_row = [&queues](const char* name, const QueueCounters& q) {
    queues.AddRow({name, std::to_string(q.pushes), std::to_string(q.pops),
                   std::to_string(q.push_blocks), std::to_string(q.pop_waits),
                   Ms(static_cast<double>(q.push_block_ns)),
                   Ms(static_cast<double>(q.pop_wait_ns)),
                   std::to_string(q.max_depth)});
  };
  queue_row("chunks", t.chunk_queue);
  queue_row("shards", t.shard_queues);
  queues.Print(out);

  out << "\nQueue stall: " << Pct(t.QueueStallFraction())
      << " of worker time; shard skew: " << Ratio(t.ShardSkewRatio());
  if (!t.shard_queries.empty()) {
    out << " over " << t.shard_queries.size() << " shards (";
    for (size_t i = 0; i < t.shard_queries.size(); ++i) {
      if (i > 0) out << " ";
      out << t.shard_queries[i];
    }
    out << ")";
  }
  out << "\n";
  if (t.prefilter_pairs > 0) {
    out << "Prefilter cascade: " << t.prefilter_pairs << " pairs -> exact "
        << t.prefilter_exact_hash << ", length " << t.prefilter_length
        << ", charmap " << t.prefilter_charmap << ", histogram "
        << t.prefilter_histogram << ", DP " << t.prefilter_dp << "\n";
  }
  if (t.run_allocs > 0) {
    out << "Allocations: " << t.run_allocs << " (" << t.run_alloc_bytes
        << " bytes)\n";
  }
}

void AppendTelemetryJson(JsonWriter& json, const RunTelemetry& t) {
  json.Key("telemetry").BeginObject();
  json.KV("wall_ns", t.wall_ns);
  json.KV("workers", t.workers);
  json.KV("queue_stall_fraction", t.QueueStallFraction());
  json.KV("shard_skew_ratio", t.ShardSkewRatio());
  json.KV("digest", TelemetryDigest(t));

  json.Key("stages").BeginArray();
  for (int s = 0; s < kStageCount; ++s) {
    const StageMetrics& m = t.stage(s);
    json.BeginObject();
    json.KV("name", StageName(s));
    json.KV("items_in", m.items_in);
    json.KV("items_out", m.items_out);
    json.KV("malformed", m.malformed);
    json.KV("abandoned", m.abandoned);
    json.KV("quarantined", m.quarantined);
    json.KV("chunks", m.chunks);
    json.KV("bytes_in", m.bytes_in);
    json.KV("lines_per_chunk",
            m.chunks > 0 ? static_cast<double>(m.items_in) /
                               static_cast<double>(m.chunks)
                         : 0.0);
    json.KV("mb_per_sec",
            m.chunk_ns.total_ns() > 0
                ? static_cast<double>(m.bytes_in) * 1e3 /
                      static_cast<double>(m.chunk_ns.total_ns())
                : 0.0);
    json.KV("alloc_bytes", m.alloc_bytes);
    json.KV("allocs", m.allocs);
    json.Key("latency").BeginObject();
    json.KV("count", m.chunk_ns.count());
    json.KV("total_ns", m.chunk_ns.total_ns());
    json.KV("min_ns", m.chunk_ns.min_ns());
    json.KV("max_ns", m.chunk_ns.max_ns());
    json.KV("mean_ns", m.chunk_ns.MeanNs());
    json.KV("p50_ns", m.chunk_ns.PercentileNs(0.5));
    json.KV("p99_ns", m.chunk_ns.PercentileNs(0.99));
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();

  json.Key("queues").BeginObject();
  json.Key("chunks");
  AppendQueueJson(json, t.chunk_queue);
  json.Key("shards");
  AppendQueueJson(json, t.shard_queues);
  json.EndObject();

  json.Key("shard_queries").BeginArray();
  for (uint64_t c : t.shard_queries) json.Value(c);
  json.EndArray();

  json.Key("prefilter").BeginObject();
  json.KV("pairs", t.prefilter_pairs);
  json.KV("exact_hash_hits", t.prefilter_exact_hash);
  json.KV("length_rejects", t.prefilter_length);
  json.KV("charmap_rejects", t.prefilter_charmap);
  json.KV("histogram_rejects", t.prefilter_histogram);
  json.KV("levenshtein_calls", t.prefilter_dp);
  json.KV("abandoned_pairs", t.prefilter_abandoned);
  json.EndObject();

  json.Key("allocations").BeginObject();
  json.KV("bytes", t.run_alloc_bytes);
  json.KV("count", t.run_allocs);
  json.EndObject();

  json.EndObject();
}

void WriteTelemetryJson(std::ostream& out, const RunTelemetry& t) {
  JsonWriter json(out);
  json.BeginObject();
  AppendTelemetryJson(json, t);
  json.EndObject();
  json.Finish();
}

std::string PrometheusText(const RunTelemetry& t) {
  std::string out;
  out.reserve(4096);
  for (int s = 0; s < kStageCount; ++s) {
    const StageMetrics& m = t.stage(s);
    std::string labels = std::string("{stage=\"") + StageName(s) + "\"}";
    Counter(out, "sparqlog_stage_items_in_total", labels, m.items_in);
    Counter(out, "sparqlog_stage_items_out_total", labels, m.items_out);
    Counter(out, "sparqlog_stage_malformed_total", labels, m.malformed);
    Counter(out, "sparqlog_stage_abandoned_total", labels, m.abandoned);
    Counter(out, "sparqlog_stage_quarantined_total", labels, m.quarantined);
    Counter(out, "sparqlog_stage_chunks_total", labels, m.chunks);
    Counter(out, "sparqlog_stage_bytes_in_total", labels, m.bytes_in);
    // Cumulative le-histogram of chunk latency, seconds.
    out += "# TYPE sparqlog_stage_chunk_seconds histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      uint64_t count = m.chunk_ns.BucketCount(b);
      if (count == 0) continue;
      cumulative += count;
      char le[64];
      std::snprintf(le, sizeof(le), "%.9g",
                    static_cast<double>(LatencyHistogram::BucketUpperNs(b)) /
                        1e9);
      out += "sparqlog_stage_chunk_seconds_bucket{stage=\"";
      out += StageName(s);
      out += "\",le=\"";
      out += le;
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += "sparqlog_stage_chunk_seconds_bucket{stage=\"";
    out += StageName(s);
    out += "\",le=\"+Inf\"} " + std::to_string(m.chunk_ns.count()) + "\n";
    char sum[64];
    std::snprintf(sum, sizeof(sum), "%.9g",
                  static_cast<double>(m.chunk_ns.total_ns()) / 1e9);
    out += "sparqlog_stage_chunk_seconds_sum{stage=\"";
    out += StageName(s);
    out += "\"} ";
    out += sum;
    out += "\n";
    out += "sparqlog_stage_chunk_seconds_count{stage=\"";
    out += StageName(s);
    out += "\"} " + std::to_string(m.chunk_ns.count()) + "\n";
  }
  auto queue = [&out](const char* name, const QueueCounters& q) {
    std::string labels = std::string("{queue=\"") + name + "\"}";
    Counter(out, "sparqlog_queue_pushes_total", labels, q.pushes);
    Counter(out, "sparqlog_queue_pops_total", labels, q.pops);
    Counter(out, "sparqlog_queue_push_blocks_total", labels, q.push_blocks);
    Counter(out, "sparqlog_queue_pop_waits_total", labels, q.pop_waits);
    Counter(out, "sparqlog_queue_push_block_ns_total", labels,
            q.push_block_ns);
    Counter(out, "sparqlog_queue_pop_wait_ns_total", labels, q.pop_wait_ns);
    out += "# TYPE sparqlog_queue_max_depth gauge\n";
    out += "sparqlog_queue_max_depth" + labels + " " +
           std::to_string(q.max_depth) + "\n";
  };
  queue("chunks", t.chunk_queue);
  queue("shards", t.shard_queues);
  for (size_t i = 0; i < t.shard_queries.size(); ++i) {
    std::string labels = "{shard=\"" + std::to_string(i) + "\"}";
    Counter(out, "sparqlog_shard_queries_total", labels, t.shard_queries[i]);
  }
  out += "# TYPE sparqlog_run_wall_seconds gauge\n";
  char wall[64];
  std::snprintf(wall, sizeof(wall), "%.9g",
                static_cast<double>(t.wall_ns) / 1e9);
  out += std::string("sparqlog_run_wall_seconds ") + wall + "\n";
  Counter(out, "sparqlog_run_allocations_total", "", t.run_allocs);
  Counter(out, "sparqlog_run_allocated_bytes_total", "", t.run_alloc_bytes);
  return out;
}

std::string OneLineSummary(const RunTelemetry& t) {
  // Corpus runs read lines; a streak-stage run's unit is the query.
  uint64_t lines = t.stage(kStageReader).items_in;
  if (lines == 0) lines = t.stage(kStageStreak).items_in;
  double allocs_per_line =
      lines > 0 ? static_cast<double>(t.run_allocs) / static_cast<double>(lines)
                : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "telemetry: queue stall %.2f%% | shard skew %.2fx | "
                "allocs/line %.2f | malformed %llu | lines %llu",
                t.QueueStallFraction() * 100.0, t.ShardSkewRatio(),
                allocs_per_line,
                static_cast<unsigned long long>(t.stage(kStageParse).malformed),
                static_cast<unsigned long long>(lines));
  return buf;
}

}  // namespace sparqlog::obs
