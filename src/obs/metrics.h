#ifndef SPARQLOG_OBS_METRICS_H_
#define SPARQLOG_OBS_METRICS_H_

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "obs/clock.h"

namespace sparqlog::obs {

/// The pipeline stages the registry knows about. New stages append here
/// and in StageName(); everything else (merge, exporters, digest) picks
/// the new slot up automatically.
enum StageId : int {
  kStageReader = 0,   // line source -> chunk queue
  kStageParse,        // decode + parse + canonicalize + route
  kStageShard,        // per-shard dedup (Table 1 accounting)
  kStageAnalysis,     // structural analysis of the surviving corpus
  kStageStreak,       // similarity-window workers (Section 8)
  kStageStitch,       // serial streak stitch pass
  kStageCount
};

const char* StageName(int stage);

/// Per-run telemetry switches, carried inside PipelineOptions /
/// StreakStageOptions. Everything defaults off: an uninstrumented run
/// pays only one branch per chunk.
struct TelemetryOptions {
  /// Collect the metrics registry (counters + histograms + queue stats).
  bool metrics = false;
  /// Record per-worker span rings for the Chrome-trace export. Implies
  /// metrics collection.
  bool trace = false;
  /// Spans retained per worker ring before the oldest are overwritten.
  size_t trace_capacity = 1 << 15;

  bool enabled() const { return kTelemetryEnabled && (metrics || trace); }
};

/// Fixed-bucket latency histogram: bucket i counts durations whose
/// nanosecond value has bit width i (i.e. [2^(i-1), 2^i)), so Record is
/// one countl_zero plus an increment — no allocation, no search, and
/// Merge is elementwise addition. 40 buckets cover 1 ns to ~9 minutes.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 40;

  void Record(uint64_t ns) {
    int idx = std::bit_width(ns);
    if (idx >= kBuckets) idx = kBuckets - 1;
    ++counts_[static_cast<size_t>(idx)];
    ++count_;
    total_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
    if (count_ == 1 || ns < min_ns_) min_ns_ = ns;
  }

  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
      if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
    }
    count_ += other.count_;
    total_ns_ += other.total_ns_;
  }

  uint64_t count() const { return count_; }
  uint64_t total_ns() const { return total_ns_; }
  uint64_t min_ns() const { return count_ > 0 ? min_ns_ : 0; }
  uint64_t max_ns() const { return max_ns_; }
  uint64_t BucketCount(int i) const { return counts_[static_cast<size_t>(i)]; }

  /// Inclusive upper bound of bucket i in nanoseconds.
  static uint64_t BucketUpperNs(int i) {
    return i >= 63 ? ~uint64_t{0} : (uint64_t{1} << i) - 1;
  }

  double MeanNs() const {
    return count_ > 0 ? static_cast<double>(total_ns_) / count_ : 0.0;
  }

  /// Upper bound of the bucket holding the q-quantile (0 <= q <= 1).
  /// Bucket resolution (powers of two) bounds the error at 2x — plenty
  /// for stall diagnosis, and the price of an allocation-free Record.
  uint64_t PercentileNs(double q) const;

  bool operator==(const LatencyHistogram& other) const = default;

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t total_ns_ = 0;
  uint64_t min_ns_ = 0;
  uint64_t max_ns_ = 0;
};

/// BoundedQueue occupancy counters, maintained under the queue's own
/// mutex (no extra synchronization) and snapshot via Stats(). Wait
/// times are only clocked when a caller actually blocks, so the
/// uncontended fast path never reads the clock.
struct QueueCounters {
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t push_blocks = 0;    // Push found the queue full
  uint64_t pop_waits = 0;      // Pop found the queue empty (not closed)
  uint64_t push_block_ns = 0;  // total time producers spent blocked
  uint64_t pop_wait_ns = 0;    // total time consumers spent waiting
  uint64_t max_depth = 0;      // high-water occupancy
  uint64_t rejected_pushes = 0;  // Push after Close (item dropped)

  void Merge(const QueueCounters& other);
  bool operator==(const QueueCounters& other) const = default;
};

/// Per-stage metrics: item flow, chunk latency, and (when the binary
/// installs obs/alloc_hooks.h) allocations attributed via the worker
/// thread's thread-local counters.
struct StageMetrics {
  uint64_t items_in = 0;    // items entering the stage (lines, entries)
  uint64_t items_out = 0;   // items surviving the stage
  uint64_t malformed = 0;   // query entries that failed to parse
  uint64_t abandoned = 0;   // entries whose analysis budget ran out
  uint64_t quarantined = 0;  // entries isolated by fault containment
  uint64_t chunks = 0;      // work units processed
  /// Payload bytes entering the stage (line bytes, newlines excluded).
  /// Deterministic for a given input — independent of chunk size and
  /// scheduling — so it participates in TelemetryDigest. Feeds the
  /// MB/s ingest-throughput and lines-per-chunk derived metrics.
  uint64_t bytes_in = 0;
  uint64_t alloc_bytes = 0;
  uint64_t allocs = 0;
  LatencyHistogram chunk_ns;

  void Merge(const StageMetrics& other);
  bool operator==(const StageMetrics& other) const = default;
};

/// The metrics registry for one pipeline run. Each worker thread owns a
/// private instance and mutates it without synchronization (the same
/// Merge() discipline every aggregate in this codebase follows); the
/// run merges the per-worker instances once at report time.
struct RunTelemetry {
  std::array<StageMetrics, kStageCount> stages{};
  QueueCounters chunk_queue;   // reader -> parse workers
  QueueCounters shard_queues;  // parse workers -> shards, summed
  /// Routed query entries per shard — the skew diagnostic. Depends only
  /// on the shard count and the input, never on thread scheduling.
  std::vector<uint64_t> shard_queries;
  /// Streak prefilter cascade tier hits (streaks::PrefilterStats).
  uint64_t prefilter_pairs = 0;
  uint64_t prefilter_exact_hash = 0;
  uint64_t prefilter_length = 0;
  uint64_t prefilter_charmap = 0;
  uint64_t prefilter_histogram = 0;
  uint64_t prefilter_dp = 0;
  /// Similarity pairs abandoned because the Levenshtein step budget ran
  /// out (streaks::PrefilterStats::abandoned_pairs).
  uint64_t prefilter_abandoned = 0;
  /// Run envelope. wall_ns merges by max (parallel partitions share the
  /// wall clock), workers by sum.
  uint64_t wall_ns = 0;
  uint64_t workers = 0;
  /// Process-wide allocation deltas over the run (zero unless the
  /// binary installs obs/alloc_hooks.h).
  uint64_t run_alloc_bytes = 0;
  uint64_t run_allocs = 0;

  StageMetrics& stage(int id) { return stages[static_cast<size_t>(id)]; }
  const StageMetrics& stage(int id) const {
    return stages[static_cast<size_t>(id)];
  }

  /// Adds another instance: counter sums, histogram merges, max of
  /// wall_ns/max_depth, elementwise shard counts (shorter vectors
  /// zero-extend). Merge with a default-constructed instance is the
  /// identity, and the result is independent of merge order.
  void Merge(const RunTelemetry& other);

  /// Fraction of total worker-time spent blocked on queues:
  /// (push_block_ns + pop_wait_ns) / (workers * wall_ns). Zero when the
  /// run envelope is empty.
  double QueueStallFraction() const;

  /// max/mean of the per-shard routed query counts; 1.0 for <=1 shard
  /// or an empty run. A ratio near 1 means the canonical-hash routing
  /// spread the load evenly.
  double ShardSkewRatio() const;

  bool operator==(const RunTelemetry& other) const = default;
};

/// FNV-1a over the scheduling-independent counters (per-stage item
/// flow, malformed counts, per-shard query counts, prefilter tiers).
/// Two runs over the same input with the same shard count must digest
/// equally at ANY thread/chunk/queue configuration — timing fields
/// (histograms, queue waits, wall) are deliberately excluded. This is
/// the telemetry analogue of pipeline::StatisticsDigest.
uint64_t TelemetryDigest(const RunTelemetry& t);

}  // namespace sparqlog::obs

#endif  // SPARQLOG_OBS_METRICS_H_
