#ifndef SPARQLOG_OBS_REPORT_H_
#define SPARQLOG_OBS_REPORT_H_

#include <ostream>
#include <string>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace sparqlog::obs {

/// Human-readable stall/skew summary: per-stage item flow and chunk
/// latency, queue backpressure (blocks, waits, high-water depth, stall
/// share of worker time), and the per-shard query distribution.
void PrintSummary(std::ostream& out, const RunTelemetry& t);

/// Machine JSON under an open JsonWriter (the caller owns the enclosing
/// object): emits one "telemetry" key whose value is the full registry.
void AppendTelemetryJson(JsonWriter& json, const RunTelemetry& t);

/// Standalone JSON document — {"telemetry": {...}}.
void WriteTelemetryJson(std::ostream& out, const RunTelemetry& t);

/// Prometheus text exposition (version 0.0.4) of the registry —
/// counters, gauges, and cumulative `le` histograms — ready for a
/// future HTTP /metrics endpoint to return verbatim.
std::string PrometheusText(const RunTelemetry& t);

/// One line for CI logs: queue stall %, shard skew ratio, allocs/line,
/// malformed count. Keep it grep-stable ("telemetry:" prefix).
std::string OneLineSummary(const RunTelemetry& t);

}  // namespace sparqlog::obs

#endif  // SPARQLOG_OBS_REPORT_H_
