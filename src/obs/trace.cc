#include "obs/trace.h"

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace sparqlog::obs {

TraceRing::TraceRing(size_t capacity) { events_.resize(capacity); }

std::vector<TraceEvent> TraceRing::Drain() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event: next_ when wrapped, slot 0 otherwise.
  size_t start = size_ == events_.size() ? next_ : 0;
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(start + i) % events_.size()]);
  }
  return out;
}

void WriteChromeTrace(std::ostream& out, const TraceData& trace) {
  JsonWriter json(out);
  json.BeginObject();
  json.KV("displayTimeUnit", "ms");
  uint64_t dropped = 0;
  json.Key("traceEvents").BeginArray();
  for (size_t tid = 0; tid < trace.tracks.size(); ++tid) {
    const TraceTrack& track = trace.tracks[tid];
    dropped += track.dropped;
    json.BeginObject();
    json.KV("ph", "M");
    json.KV("name", "thread_name");
    json.KV("pid", 1);
    json.KV("tid", static_cast<uint64_t>(tid));
    json.Key("args").BeginObject();
    json.KV("name", track.name);
    json.EndObject();
    json.EndObject();
    for (const TraceEvent& e : track.events) {
      uint64_t begin = e.begin_ns >= trace.origin_ns
                           ? e.begin_ns - trace.origin_ns
                           : 0;
      uint64_t dur = e.end_ns >= e.begin_ns ? e.end_ns - e.begin_ns : 0;
      json.BeginObject();
      json.KV("ph", "X");
      json.KV("name", StageName(e.stage));
      json.KV("cat", "pipeline");
      json.KV("pid", 1);
      json.KV("tid", static_cast<uint64_t>(tid));
      json.KV("ts", static_cast<double>(begin) / 1000.0);
      json.KV("dur", static_cast<double>(dur) / 1000.0);
      json.Key("args").BeginObject();
      json.KV("chunk", e.chunk);
      json.EndObject();
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("otherData").BeginObject();
  json.KV("wall_ns", trace.wall_ns);
  json.KV("dropped_spans", dropped);
  json.EndObject();
  json.EndObject();
  json.Finish();
}

}  // namespace sparqlog::obs
