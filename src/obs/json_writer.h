#ifndef SPARQLOG_OBS_JSON_WRITER_H_
#define SPARQLOG_OBS_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace sparqlog::obs {

/// Minimal streaming JSON writer — the single implementation behind the
/// BENCH_*.json emitters and the telemetry exporters: tracks nesting and
/// emits commas and two-space indentation, so callers state keys and
/// values only. (Promoted from bench/bench_common.h so library code can
/// emit machine-readable telemetry without depending on bench/.)
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& Key(std::string_view k) {
    NextItem();
    Escaped(k);
    out_ << ": ";
    have_key_ = true;
    return *this;
  }

  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Value(std::string_view v) {
    Prefix();
    Escaped(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(uint64_t v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(int v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(double v) {
    Prefix();
    out_ << v;
    return *this;
  }
  JsonWriter& Value(bool v) {
    Prefix();
    out_ << (v ? "true" : "false");
    return *this;
  }

  template <typename T>
  JsonWriter& KV(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }

  void Finish() { out_ << "\n"; }

 private:
  JsonWriter& Open(char c) {
    Prefix();
    out_ << c;
    frames_.push_back(true);
    return *this;
  }
  JsonWriter& Close(char c) {
    bool empty = frames_.back();
    frames_.pop_back();
    if (!empty) Newline();
    out_ << c;
    return *this;
  }
  void NextItem() {
    if (frames_.empty()) return;
    if (!frames_.back()) out_ << ',';
    frames_.back() = false;
    Newline();
  }
  void Prefix() {
    if (have_key_) {
      have_key_ = false;
      return;
    }
    NextItem();
  }
  void Newline() {
    out_ << '\n';
    for (size_t i = 0; i < frames_.size(); ++i) out_ << "  ";
  }
  void Escaped(std::string_view s) {
    out_ << '"';
    for (char c : s) {
      unsigned char u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out_ << '\\' << c;
      } else if (c == '\n') {
        out_ << "\\n";
      } else if (c == '\t') {
        out_ << "\\t";
      } else if (c == '\r') {
        out_ << "\\r";
      } else if (u < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", u);
        out_ << buf;
      } else {
        out_ << c;
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  std::vector<bool> frames_;  // true = frame has no children yet
  bool have_key_ = false;
};

}  // namespace sparqlog::obs

#endif  // SPARQLOG_OBS_JSON_WRITER_H_
