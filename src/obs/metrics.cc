#include "obs/metrics.h"

#include <algorithm>

#include "util/fnv.h"

namespace sparqlog::obs {

const char* StageName(int stage) {
  switch (stage) {
    case kStageReader:
      return "reader";
    case kStageParse:
      return "parse";
    case kStageShard:
      return "shard";
    case kStageAnalysis:
      return "analysis";
    case kStageStreak:
      return "streak";
    case kStageStitch:
      return "stitch";
    default:
      return "unknown";
  }
}

uint64_t LatencyHistogram::PercentileNs(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the requested quantile, 1-based; walk the cumulative counts.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[static_cast<size_t>(i)];
    if (seen >= rank) return BucketUpperNs(i);
  }
  return max_ns_;
}

void QueueCounters::Merge(const QueueCounters& other) {
  pushes += other.pushes;
  pops += other.pops;
  push_blocks += other.push_blocks;
  pop_waits += other.pop_waits;
  push_block_ns += other.push_block_ns;
  pop_wait_ns += other.pop_wait_ns;
  max_depth = std::max(max_depth, other.max_depth);
  rejected_pushes += other.rejected_pushes;
}

void StageMetrics::Merge(const StageMetrics& other) {
  items_in += other.items_in;
  items_out += other.items_out;
  malformed += other.malformed;
  abandoned += other.abandoned;
  quarantined += other.quarantined;
  chunks += other.chunks;
  bytes_in += other.bytes_in;
  alloc_bytes += other.alloc_bytes;
  allocs += other.allocs;
  chunk_ns.Merge(other.chunk_ns);
}

void RunTelemetry::Merge(const RunTelemetry& other) {
  for (size_t i = 0; i < stages.size(); ++i) stages[i].Merge(other.stages[i]);
  chunk_queue.Merge(other.chunk_queue);
  shard_queues.Merge(other.shard_queues);
  if (other.shard_queries.size() > shard_queries.size()) {
    shard_queries.resize(other.shard_queries.size(), 0);
  }
  for (size_t i = 0; i < other.shard_queries.size(); ++i) {
    shard_queries[i] += other.shard_queries[i];
  }
  prefilter_pairs += other.prefilter_pairs;
  prefilter_exact_hash += other.prefilter_exact_hash;
  prefilter_length += other.prefilter_length;
  prefilter_charmap += other.prefilter_charmap;
  prefilter_histogram += other.prefilter_histogram;
  prefilter_dp += other.prefilter_dp;
  prefilter_abandoned += other.prefilter_abandoned;
  wall_ns = std::max(wall_ns, other.wall_ns);
  workers += other.workers;
  run_alloc_bytes += other.run_alloc_bytes;
  run_allocs += other.run_allocs;
}

double RunTelemetry::QueueStallFraction() const {
  if (wall_ns == 0 || workers == 0) return 0.0;
  uint64_t blocked = chunk_queue.push_block_ns + chunk_queue.pop_wait_ns +
                     shard_queues.push_block_ns + shard_queues.pop_wait_ns;
  return static_cast<double>(blocked) /
         (static_cast<double>(workers) * static_cast<double>(wall_ns));
}

double RunTelemetry::ShardSkewRatio() const {
  if (shard_queries.size() <= 1) return 1.0;
  uint64_t total = 0, peak = 0;
  for (uint64_t c : shard_queries) {
    total += c;
    peak = std::max(peak, c);
  }
  if (total == 0) return 1.0;
  double mean =
      static_cast<double>(total) / static_cast<double>(shard_queries.size());
  return static_cast<double>(peak) / mean;
}

uint64_t TelemetryDigest(const RunTelemetry& t) {
  // Only scheduling-independent counters participate: item flow and
  // shard routing. Chunk counts (depend on chunk_size), timing fields,
  // queue occupancy, allocation attribution, and prefilter tiers (the
  // sharded streak stage re-scans warmup overlaps, so tier totals vary
  // with the chunk layout) are all excluded by design.
  util::Fnv1a h;
  auto mix = [&h](uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    h.Update(std::string_view(bytes, sizeof(bytes)));
  };
  // abandoned participates: step budgets are per-canonical-query, so
  // the verdict is scheduling-independent. quarantined does NOT — alloc
  // faults land wherever the allocation counter happens to be, so two
  // runs of the same fault plan may quarantine different lines.
  for (const StageMetrics& s : t.stages) {
    mix(s.items_in);
    mix(s.items_out);
    mix(s.malformed);
    mix(s.abandoned);
    mix(s.bytes_in);
  }
  mix(t.shard_queries.size());
  for (uint64_t c : t.shard_queries) mix(c);
  return h.digest();
}

}  // namespace sparqlog::obs
