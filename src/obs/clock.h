#ifndef SPARQLOG_OBS_CLOCK_H_
#define SPARQLOG_OBS_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace sparqlog::obs {

/// Compile-time telemetry switch. Building with -DSPARQLOG_NO_TELEMETRY
/// removes every clock read and metric update from the instrumented hot
/// paths (the telemetry types and exporters remain, so callers compile
/// unchanged and simply observe zeroed counters).
#ifdef SPARQLOG_NO_TELEMETRY
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/// Monotonic nanosecond timestamp — the one clock every telemetry
/// component (latency histograms, queue wait accounting, trace spans)
/// reads, so spans from different workers land on a common time axis.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Timestamp gated on both the compile-time switch and a runtime
/// condition: the enabled-but-unused path costs one branch, the
/// compiled-out path costs nothing.
inline uint64_t NowNsIf(bool enabled) {
  if constexpr (kTelemetryEnabled) {
    if (enabled) return NowNs();
  }
  (void)enabled;
  return 0;
}

}  // namespace sparqlog::obs

#endif  // SPARQLOG_OBS_CLOCK_H_
