#ifndef SPARQLOG_OBS_ALLOC_TRACKER_H_
#define SPARQLOG_OBS_ALLOC_TRACKER_H_

// Allocation counters readable from anywhere in the library. The
// counters only move when a binary installs the replacement operator
// new/delete from obs/alloc_hooks.h (benches and parallel_runner do);
// everywhere else they read zero and allocation telemetry is simply
// absent. Promoted from bench/alloc_tracker.h so the telemetry registry
// can report allocations/stage with the same counters the hot-path
// benches gate on.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace sparqlog::obs {

namespace alloc_internal {
inline std::atomic<uint64_t> g_alloc_bytes{0};
inline std::atomic<uint64_t> g_alloc_count{0};
// Thread-local shadow counters: a worker can attribute allocations to
// its own stage without any cross-thread noise (the global atomics mix
// every thread together).
inline thread_local uint64_t t_alloc_bytes = 0;
inline thread_local uint64_t t_alloc_count = 0;
// Allocation-failure injection (the fault harness, testing/fault_injection).
// g_fail_after < 0 disarms; otherwise the g_fail_after-th eligible
// allocation throws bad_alloc (one-shot). Only allocations made by a
// thread inside an AllocFaultScope are eligible, so the injected
// failure lands in pipeline worker code — never in gtest bookkeeping or
// the containment machinery itself. The hooks check the relaxed atomic
// first: with injection disarmed the fast path is one load.
inline std::atomic<int64_t> g_fail_after{-1};
inline thread_local bool t_fault_scope = false;
}  // namespace alloc_internal

/// True iff this allocation should fail: armed, inside a fault scope,
/// and the countdown just hit zero (one-shot: the decrement disarms).
inline bool ShouldInjectAllocFailure() {
  if (alloc_internal::g_fail_after.load(std::memory_order_relaxed) < 0) {
    return false;
  }
  if (!alloc_internal::t_fault_scope) return false;
  return alloc_internal::g_fail_after.fetch_sub(
             1, std::memory_order_relaxed) == 0;
}

/// Arms the one-shot allocation failure: the `count`-th in-scope
/// allocation from now throws bad_alloc.
inline void ArmAllocFailure(int64_t count) {
  alloc_internal::g_fail_after.store(count, std::memory_order_relaxed);
}

/// Disarms any pending injected failure.
inline void DisarmAllocFailure() {
  alloc_internal::g_fail_after.store(-1, std::memory_order_relaxed);
}

/// Marks the calling thread's allocations as eligible for injected
/// failure while the scope is alive (workers wrap their parse loop).
class AllocFaultScope {
 public:
  AllocFaultScope() : prev_(alloc_internal::t_fault_scope) {
    alloc_internal::t_fault_scope = true;
  }
  ~AllocFaultScope() { alloc_internal::t_fault_scope = prev_; }
  AllocFaultScope(const AllocFaultScope&) = delete;
  AllocFaultScope& operator=(const AllocFaultScope&) = delete;

 private:
  bool prev_;
};

/// Process-wide totals (all threads).
inline uint64_t AllocatedBytes() {
  return alloc_internal::g_alloc_bytes.load(std::memory_order_relaxed);
}
inline uint64_t AllocationCount() {
  return alloc_internal::g_alloc_count.load(std::memory_order_relaxed);
}

/// Calling thread's totals — deltas around a stage give exact per-stage,
/// per-worker attribution with no atomics read anywhere hot.
inline uint64_t ThreadAllocatedBytes() {
  return alloc_internal::t_alloc_bytes;
}
inline uint64_t ThreadAllocationCount() {
  return alloc_internal::t_alloc_count;
}

/// One timed + allocation-counted section of a bench run.
struct PhaseResult {
  std::string name;
  double seconds = 0;
  uint64_t bytes_allocated = 0;
  uint64_t allocations = 0;
};

/// Times `fn` and charges it with the allocations it performed.
template <typename Fn>
PhaseResult RunPhase(std::string name, Fn&& fn) {
  PhaseResult r;
  r.name = std::move(name);
  uint64_t bytes0 = AllocatedBytes();
  uint64_t count0 = AllocationCount();
  auto start = std::chrono::steady_clock::now();
  fn();
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  r.bytes_allocated = AllocatedBytes() - bytes0;
  r.allocations = AllocationCount() - count0;
  return r;
}

}  // namespace sparqlog::obs

#endif  // SPARQLOG_OBS_ALLOC_TRACKER_H_
