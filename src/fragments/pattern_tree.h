#ifndef SPARQLOG_FRAGMENTS_PATTERN_TREE_H_
#define SPARQLOG_FRAGMENTS_PATTERN_TREE_H_

#include <set>
#include <string>
#include <vector>

#include "sparql/ast.h"

namespace sparqlog::fragments {

/// A node of a well-designed pattern tree (Example 5.4 of the paper,
/// after Letelier et al.): every node carries a conjunctive query; a
/// child is an OPTIONAL extension of its parent.
struct PatternTreeNode {
  std::vector<const sparql::TriplePattern*> triples;
  std::vector<const sparql::Expr*> filters;
  std::vector<PatternTreeNode> children;

  /// Variables of this node's CQ (triples only).
  std::set<std::string> Vars() const;
};

/// Result of building a pattern tree from an AOF pattern.
struct PatternTreeResult {
  /// Construction succeeded (body was an AOF pattern).
  bool ok = false;
  PatternTreeNode root;
  /// Max number of common variables between a node and a child
  /// (Example 5.4: both T1 and T2 have interface width one).
  int interface_width = 0;
  /// For each variable, the nodes containing it form a connected subtree
  /// (Barcelo et al.'s well-designedness of pattern trees).
  bool connected_variables = false;
};

/// Builds the pattern tree of an AOF pattern body via OPT-normal form:
/// the rewrite rules ((P1 OPT P2) AND P3) => ((P1 AND P3) OPT P2) and
/// (P1 AND (P2 OPT P3)) => ((P1 AND P2) OPT P3) (sound for well-designed
/// patterns), followed by the Currying encoding.
PatternTreeResult BuildPatternTree(const sparql::Pattern& body);

/// Checks Definition 5.3 (well-designedness) directly on the SPARQL
/// algebra tree of the AOF pattern: for every LeftJoin(L, R), the
/// variables of vars(R) \ vars(L) occur nowhere outside that subtree.
/// Returns false for non-AOF bodies.
bool IsWellDesigned(const sparql::Pattern& body);

}  // namespace sparqlog::fragments

#endif  // SPARQLOG_FRAGMENTS_PATTERN_TREE_H_
