#ifndef SPARQLOG_FRAGMENTS_FRAGMENT_H_
#define SPARQLOG_FRAGMENTS_FRAGMENT_H_

#include "sparql/ast.h"

namespace sparqlog::fragments {

/// Membership of a query in the paper's CQ-like fragments (Section 5.2).
struct FragmentClass {
  /// Select or Ask query (the fragments are defined over these).
  bool select_or_ask = false;
  /// And/Opt/Filter pattern: body uses only triple patterns (no property
  /// paths), And, Opt, and Filter — no subqueries, Graph, Union, etc.
  bool aof = false;
  /// Conjunctive query: triples + And only (Definition 3.1).
  bool cq = false;
  /// Conjunctive pattern with filters: triples + And + Filter
  /// (Definition 4.1).
  bool cpf = false;
  /// CPF with only simple filters (Definition 5.2): each filter mentions
  /// at most one variable or is of the form ?x = ?y.
  bool cqf = false;
  /// Well-designed AOF pattern (Definition 5.3).
  bool well_designed = false;
  /// CQOF: well-designed pattern tree with interface width <= 1 and
  /// simple filters (Definition 5.5).
  bool cqof = false;

  /// All filters simple (meaningful when aof).
  bool simple_filters = false;
  /// Interface width of the pattern tree (meaningful when aof &&
  /// well_designed); -1 otherwise.
  int interface_width = -1;
  /// Number of triple patterns in the body.
  int num_triples = 0;
  /// Some triple uses a variable in predicate position (then only the
  /// hypergraph is meaningful; Section 6.2).
  bool var_predicate = false;
};

/// Classifies `q` against all fragments in one pass.
FragmentClass ClassifyFragment(const sparql::Query& q);

/// True iff the filter constraint is "simple" in the sense of
/// Definition 5.2.
bool IsSimpleFilter(const sparql::Expr& e);

}  // namespace sparqlog::fragments

#endif  // SPARQLOG_FRAGMENTS_FRAGMENT_H_
