#include "fragments/pattern_tree.h"

#include <algorithm>
#include <map>
#include <memory>

namespace sparqlog::fragments {

using sparql::Expr;
using sparql::ExprKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::TriplePattern;

namespace {

/// Internal SPARQL-algebra view of an AOF pattern: BGPs combined with
/// Join, LeftJoin (OPTIONAL), and Filter, per the standard translation
/// of group graph patterns.
struct AlgebraNode {
  enum class Kind { kBgp, kJoin, kLeftJoin };
  Kind kind = Kind::kBgp;
  std::vector<const TriplePattern*> triples;          // kBgp
  std::vector<const Expr*> filters;                   // applied here
  std::vector<std::unique_ptr<AlgebraNode>> children; // 2 for joins
  std::set<std::string> vars;                         // subtree variables
};

bool ExprUsesPatterns(const Expr& e) {
  if (e.kind == ExprKind::kExists || e.kind == ExprKind::kNotExists) {
    return true;
  }
  for (const Expr& a : e.args) {
    if (ExprUsesPatterns(a)) return true;
  }
  return false;
}

void ComputeVars(AlgebraNode& n) {
  for (const TriplePattern* tp : n.triples) tp->CollectVariables(n.vars);
  for (const Expr* f : n.filters) f->CollectVariables(n.vars);
  for (auto& c : n.children) {
    ComputeVars(*c);
    n.vars.insert(c->vars.begin(), c->vars.end());
  }
}

/// Translates an AOF group pattern into the algebra. Returns nullptr if
/// the body is not AOF (anything besides triples without paths, groups,
/// filters without EXISTS, and OPTIONAL).
std::unique_ptr<AlgebraNode> Translate(const Pattern& p) {
  if (p.kind == PatternKind::kTriple) {
    if (p.triple.has_path) return nullptr;
    auto node = std::make_unique<AlgebraNode>();
    node->triples.push_back(&p.triple);
    return node;
  }
  if (p.kind != PatternKind::kGroup) return nullptr;

  auto acc = std::make_unique<AlgebraNode>();  // empty BGP
  std::vector<const Expr*> filters;
  auto join = [](std::unique_ptr<AlgebraNode> a,
                 std::unique_ptr<AlgebraNode> b) {
    // Merge BGPs; Join otherwise. An empty BGP is the identity.
    if (a->kind == AlgebraNode::Kind::kBgp && a->triples.empty() &&
        a->filters.empty() && a->children.empty()) {
      return b;
    }
    if (a->kind == AlgebraNode::Kind::kBgp &&
        b->kind == AlgebraNode::Kind::kBgp && a->filters.empty() &&
        b->filters.empty()) {
      a->triples.insert(a->triples.end(), b->triples.begin(),
                        b->triples.end());
      return a;
    }
    auto j = std::make_unique<AlgebraNode>();
    j->kind = AlgebraNode::Kind::kJoin;
    j->children.push_back(std::move(a));
    j->children.push_back(std::move(b));
    return j;
  };

  for (const Pattern& c : p.children) {
    switch (c.kind) {
      case PatternKind::kTriple: {
        auto t = Translate(c);
        if (t == nullptr) return nullptr;
        acc = join(std::move(acc), std::move(t));
        break;
      }
      case PatternKind::kGroup: {
        auto g = Translate(c);
        if (g == nullptr) return nullptr;
        acc = join(std::move(acc), std::move(g));
        break;
      }
      case PatternKind::kFilter:
        if (ExprUsesPatterns(c.expr)) return nullptr;
        filters.push_back(&c.expr);
        break;
      case PatternKind::kOptional: {
        auto body = Translate(c.children[0]);
        if (body == nullptr) return nullptr;
        auto lj = std::make_unique<AlgebraNode>();
        lj->kind = AlgebraNode::Kind::kLeftJoin;
        lj->children.push_back(std::move(acc));
        lj->children.push_back(std::move(body));
        acc = std::move(lj);
        break;
      }
      default:
        return nullptr;  // not an AOF pattern
    }
  }
  // Filters of a group apply to the whole group.
  acc->filters.insert(acc->filters.end(), filters.begin(), filters.end());
  return acc;
}

/// Linearizes the atoms (triples/filters) of the algebra tree in DFS
/// order, recording for each LeftJoin node its subtree range. Used for
/// the Definition 5.3 check.
struct LeftJoinInfo {
  size_t lo = 0, hi = 0;                 // atom index range of the subtree
  size_t right_lo = 0, right_hi = 0;     // atom range of the right child
  std::set<std::string> left_vars;
  std::set<std::string> right_vars;
};

void Linearize(const AlgebraNode& n,
               std::vector<std::set<std::string>>& atoms,
               std::vector<LeftJoinInfo>& leftjoins) {
  size_t lo = atoms.size();
  size_t right_lo = 0, right_hi = 0;
  if (n.kind == AlgebraNode::Kind::kLeftJoin) {
    Linearize(*n.children[0], atoms, leftjoins);
    right_lo = atoms.size();
    Linearize(*n.children[1], atoms, leftjoins);
    right_hi = atoms.size();
  } else {
    for (auto& c : n.children) Linearize(*c, atoms, leftjoins);
  }
  for (const TriplePattern* tp : n.triples) {
    std::set<std::string> vars;
    tp->CollectVariables(vars);
    atoms.push_back(std::move(vars));
  }
  for (const Expr* f : n.filters) {
    std::set<std::string> vars;
    f->CollectVariables(vars);
    atoms.push_back(std::move(vars));
  }
  if (n.kind == AlgebraNode::Kind::kLeftJoin) {
    LeftJoinInfo info;
    info.lo = lo;
    info.hi = atoms.size();
    info.right_lo = right_lo;
    info.right_hi = right_hi;
    info.left_vars = n.children[0]->vars;
    info.right_vars = n.children[1]->vars;
    leftjoins.push_back(std::move(info));
  }
}

/// Pattern-tree construction from the algebra via OPT-normal form.
PatternTreeNode Normalize(const AlgebraNode& n) {
  switch (n.kind) {
    case AlgebraNode::Kind::kBgp: {
      PatternTreeNode t;
      t.triples = n.triples;
      t.filters = n.filters;
      return t;
    }
    case AlgebraNode::Kind::kJoin: {
      // (P1 OPT P2) AND P3 => (P1 AND P3) OPT P2: merge the mandatory
      // roots, hoist all optional children as siblings.
      PatternTreeNode a = Normalize(*n.children[0]);
      PatternTreeNode b = Normalize(*n.children[1]);
      PatternTreeNode t;
      t.triples = a.triples;
      t.triples.insert(t.triples.end(), b.triples.begin(), b.triples.end());
      t.filters = a.filters;
      t.filters.insert(t.filters.end(), b.filters.begin(), b.filters.end());
      t.filters.insert(t.filters.end(), n.filters.begin(), n.filters.end());
      t.children = std::move(a.children);
      for (auto& c : b.children) t.children.push_back(std::move(c));
      return t;
    }
    case AlgebraNode::Kind::kLeftJoin: {
      PatternTreeNode left = Normalize(*n.children[0]);
      PatternTreeNode right = Normalize(*n.children[1]);
      left.filters.insert(left.filters.end(), n.filters.begin(),
                          n.filters.end());
      left.children.push_back(std::move(right));
      return left;
    }
  }
  return PatternTreeNode{};
}

int InterfaceWidth(const PatternTreeNode& node) {
  int width = 0;
  std::set<std::string> vars = node.Vars();
  for (const PatternTreeNode& child : node.children) {
    std::set<std::string> child_vars = child.Vars();
    std::set<std::string> common;
    std::set_intersection(vars.begin(), vars.end(), child_vars.begin(),
                          child_vars.end(),
                          std::inserter(common, common.begin()));
    width = std::max(width, static_cast<int>(common.size()));
    width = std::max(width, InterfaceWidth(child));
  }
  return width;
}

void NumberNodes(const PatternTreeNode& node, int parent, int& next,
                 std::vector<int>& parents,
                 std::vector<const PatternTreeNode*>& nodes) {
  int id = next++;
  parents.push_back(parent);
  nodes.push_back(&node);
  for (const PatternTreeNode& c : node.children) {
    NumberNodes(c, id, next, parents, nodes);
  }
}

bool ConnectedVariables(const PatternTreeNode& root) {
  std::vector<int> parents;
  std::vector<const PatternTreeNode*> nodes;
  int next = 0;
  NumberNodes(root, -1, next, parents, nodes);
  // For every variable: the set of nodes whose CQ mentions it must form
  // a connected subtree, i.e. every such node except the topmost has a
  // parent chain to the topmost passing only through mention-nodes.
  std::map<std::string, std::vector<int>> occurrences;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const std::string& v : nodes[i]->Vars()) {
      occurrences[v].push_back(static_cast<int>(i));
    }
  }
  for (const auto& [var, occ] : occurrences) {
    std::set<int> members(occ.begin(), occ.end());
    // Connectivity: all members must reach the shallowest member through
    // member-only parent chains; equivalently, each member's parent is a
    // member, except for exactly one root-most node.
    int roots = 0;
    for (int m : occ) {
      int parent = parents[static_cast<size_t>(m)];
      if (parent < 0 || members.count(parent) == 0) ++roots;
    }
    if (roots != 1) return false;
  }
  return true;
}

}  // namespace

std::set<std::string> PatternTreeNode::Vars() const {
  std::set<std::string> vars;
  for (const TriplePattern* tp : triples) tp->CollectVariables(vars);
  return vars;
}

bool IsWellDesigned(const Pattern& body) {
  std::unique_ptr<AlgebraNode> algebra = Translate(body);
  if (algebra == nullptr) return false;
  ComputeVars(*algebra);
  std::vector<std::set<std::string>> atoms;
  std::vector<LeftJoinInfo> leftjoins;
  Linearize(*algebra, atoms, leftjoins);
  for (const LeftJoinInfo& lj : leftjoins) {
    // W = vars(R) \ vars(L) must not occur outside [lo, hi).
    for (const std::string& w : lj.right_vars) {
      if (lj.left_vars.count(w) > 0) continue;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (i >= lj.lo && i < lj.hi) continue;
        if (atoms[i].count(w) > 0) return false;
      }
    }
  }
  return true;
}

PatternTreeResult BuildPatternTree(const Pattern& body) {
  PatternTreeResult result;
  std::unique_ptr<AlgebraNode> algebra = Translate(body);
  if (algebra == nullptr) return result;
  ComputeVars(*algebra);
  result.ok = true;
  result.root = Normalize(*algebra);
  result.interface_width = InterfaceWidth(result.root);
  result.connected_variables = ConnectedVariables(result.root);
  return result;
}

}  // namespace sparqlog::fragments
