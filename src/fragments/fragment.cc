#include "fragments/fragment.h"

#include <functional>
#include <set>
#include <string>

#include "fragments/pattern_tree.h"

namespace sparqlog::fragments {

using sparql::Expr;
using sparql::ExprKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;

namespace {

struct BodyScan {
  bool only_triples_and = true;    // CQ-shaped body
  bool only_triples_and_f = true;  // CPF-shaped body
  bool aof = true;                 // + OPTIONAL
  bool simple_filters = true;
  bool var_predicate = false;
  int num_triples = 0;
};

void Scan(const Pattern& p, BodyScan& s) {
  switch (p.kind) {
    case PatternKind::kTriple:
      ++s.num_triples;
      if (p.triple.has_path) {
        s.only_triples_and = s.only_triples_and_f = s.aof = false;
      } else if (p.triple.predicate.is_variable()) {
        s.var_predicate = true;
      }
      return;
    case PatternKind::kGroup:
      break;
    case PatternKind::kFilter:
      s.only_triples_and = false;
      if (!IsSimpleFilter(p.expr)) s.simple_filters = false;
      // EXISTS embeds patterns: not AOF.
      {
        std::set<std::string> ignored;
        const Expr& e = p.expr;
        std::function<bool(const Expr&)> uses_pattern =
            [&](const Expr& x) -> bool {
          if (x.kind == ExprKind::kExists || x.kind == ExprKind::kNotExists) {
            return true;
          }
          for (const Expr& a : x.args) {
            if (uses_pattern(a)) return true;
          }
          return false;
        };
        if (uses_pattern(e)) {
          s.only_triples_and_f = s.aof = false;
        }
      }
      return;
    case PatternKind::kOptional:
      s.only_triples_and = s.only_triples_and_f = false;
      break;
    default:
      s.only_triples_and = s.only_triples_and_f = s.aof = false;
      // Still count triples below for statistics.
      break;
  }
  for (const Pattern& c : p.children) Scan(c, s);
}

}  // namespace

bool IsSimpleFilter(const Expr& e) {
  std::set<std::string> vars;
  e.CollectVariables(vars);
  if (vars.size() <= 1) return true;
  // The form ?x = ?y is allowed (footnote 20: such filters collapse
  // nodes in the canonical graph).
  return e.kind == ExprKind::kCompare && e.op == "=" && e.args.size() == 2 &&
         e.args[0].is_variable() && e.args[1].is_variable();
}

FragmentClass ClassifyFragment(const Query& q) {
  FragmentClass fc;
  fc.select_or_ask =
      q.form == QueryForm::kSelect || q.form == QueryForm::kAsk;
  if (!fc.select_or_ask || !q.has_body) return fc;
  // Subqueries in projection position or trailing VALUES disqualify AOF.
  bool modifiers_ok = !q.trailing_values.has_value();

  BodyScan s;
  Scan(q.where, s);
  fc.num_triples = s.num_triples;
  fc.var_predicate = s.var_predicate;
  fc.simple_filters = s.simple_filters;

  fc.aof = s.aof && modifiers_ok;
  fc.cq = s.only_triples_and && modifiers_ok;
  fc.cpf = s.only_triples_and_f && modifiers_ok;
  fc.cqf = fc.cpf && s.simple_filters;

  if (fc.aof) {
    fc.well_designed = IsWellDesigned(q.where);
    if (fc.well_designed) {
      PatternTreeResult tree = BuildPatternTree(q.where);
      if (tree.ok) {
        fc.interface_width = tree.interface_width;
        fc.cqof = fc.simple_filters && tree.connected_variables &&
                  tree.interface_width <= 1;
      }
    }
  }
  return fc;
}

}  // namespace sparqlog::fragments
