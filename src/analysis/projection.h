#ifndef SPARQLOG_ANALYSIS_PROJECTION_H_
#define SPARQLOG_ANALYSIS_PROJECTION_H_

#include "analysis/features.h"
#include "sparql/ast.h"

namespace sparqlog::analysis {

/// Decides whether `q` uses projection, following the paper's reading of
/// SPARQL recommendation Section 18.2.1 (paper Section 4.4):
///
///  * `SELECT *` never projects.
///  * An explicit SELECT list projects iff it omits at least one in-scope
///    variable of the pattern.
///  * ASK projects iff the pattern mentions at least one variable (most
///    ASK queries test a concrete triple and therefore do not project).
///  * CONSTRUCT / DESCRIBE are counted as not using projection.
///  * Queries whose classification is ambiguous because of BIND or
///    `(expr AS ?v)` return kIndeterminate.
ProjectionUse ClassifyProjection(const sparql::Query& q);

}  // namespace sparqlog::analysis

#endif  // SPARQLOG_ANALYSIS_PROJECTION_H_
