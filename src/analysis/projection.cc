#include "analysis/projection.h"

#include <set>
#include <string>

namespace sparqlog::analysis {

using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;

namespace {

bool ContainsBind(const Pattern& p) {
  if (p.kind == PatternKind::kBind) return true;
  if (p.kind == PatternKind::kSubSelect && p.subquery) {
    for (const sparql::SelectItem& item : p.subquery->select_items) {
      if (item.expr.has_value()) return true;
    }
    if (p.subquery->has_body && ContainsBind(p.subquery->where)) return true;
  }
  for (const Pattern& c : p.children) {
    if (ContainsBind(c)) return true;
  }
  return false;
}

}  // namespace

ProjectionUse ClassifyProjection(const Query& q) {
  if (!q.has_body) return ProjectionUse::kNo;
  switch (q.form) {
    case QueryForm::kConstruct:
    case QueryForm::kDescribe:
      return ProjectionUse::kNo;
    case QueryForm::kAsk: {
      std::set<std::string> vars;
      q.where.CollectVariables(vars);
      return vars.empty() ? ProjectionUse::kNo : ProjectionUse::kYes;
    }
    case QueryForm::kSelect: {
      if (q.select_star) return ProjectionUse::kNo;
      bool has_as = false;
      for (const sparql::SelectItem& item : q.select_items) {
        if (item.expr.has_value()) has_as = true;
      }
      if (has_as || ContainsBind(q.where)) {
        return ProjectionUse::kIndeterminate;
      }
      std::set<std::string> in_scope;
      q.where.CollectInScopeVariables(in_scope);
      std::set<std::string> selected;
      for (const sparql::SelectItem& item : q.select_items) {
        selected.insert(std::string(item.var.value));
      }
      // Projection iff some in-scope variable is not selected.
      for (const std::string& v : in_scope) {
        if (selected.find(v) == selected.end()) return ProjectionUse::kYes;
      }
      return ProjectionUse::kNo;
    }
  }
  return ProjectionUse::kNo;
}

}  // namespace sparqlog::analysis
