#ifndef SPARQLOG_ANALYSIS_FEATURES_H_
#define SPARQLOG_ANALYSIS_FEATURES_H_

#include <cstdint>

#include "sparql/ast.h"

namespace sparqlog::analysis {

/// How a query uses projection (paper Section 4.4, SPARQL rec. 18.2.1).
enum class ProjectionUse {
  kNo,
  kYes,
  /// BIND / `AS` makes the in-scope variable set ambiguous for the
  /// syntactic test; the paper reports these separately (1.3%).
  kIndeterminate,
};

/// Per-query syntactic features: everything the shallow analysis
/// (Section 4 / Tables 2, 3 and Figure 1) needs, extracted in one AST walk.
struct QueryFeatures {
  sparql::QueryForm form = sparql::QueryForm::kSelect;
  bool has_body = false;

  // Solution modifiers (Table 2, block 2).
  bool distinct = false;
  bool reduced = false;
  bool has_limit = false;
  bool has_offset = false;
  bool has_order_by = false;
  bool has_group_by = false;
  bool has_having = false;

  // Body operators (Table 2, block 3). Presence flags; `conj` is the
  // paper's "And" (a group joining >= 2 pattern elements).
  bool filter = false;
  bool conj = false;
  bool union_ = false;
  bool optional = false;
  bool graph = false;
  bool minus = false;
  bool not_exists = false;
  bool exists = false;
  bool service = false;
  bool bind = false;
  bool values = false;
  bool subquery = false;
  bool property_path = false;
  /// Property path other than the trivial `!a` / `^a` forms (Section 7).
  bool navigational_path = false;
  bool var_predicate = false;

  // Aggregates (Table 2, block 4).
  bool agg_count = false;
  bool agg_max = false;
  bool agg_min = false;
  bool agg_avg = false;
  bool agg_sum = false;
  bool agg_sample = false;
  bool agg_group_concat = false;

  /// Number of triple patterns anywhere in the query (including
  /// subqueries and EXISTS patterns), as counted in Section 4.2.
  int num_triples = 0;

  ProjectionUse projection = ProjectionUse::kNo;

  /// Operator-set bitmask over O = {Filter, And, Opt, Graph, Union}
  /// (Table 3). Only for the *body* operators reachable without entering
  /// subqueries.
  static constexpr uint8_t kOpF = 1;
  static constexpr uint8_t kOpA = 2;
  static constexpr uint8_t kOpO = 4;
  static constexpr uint8_t kOpG = 8;
  static constexpr uint8_t kOpU = 16;
  uint8_t opset = 0;
  /// The body uses features outside O (Bind, Minus, subqueries, property
  /// paths, Service, Values, EXISTS filters) — the paper's 3.33% bucket.
  bool opset_other = false;
};

/// Extracts all features in a single traversal.
QueryFeatures ExtractFeatures(const sparql::Query& q);

}  // namespace sparqlog::analysis

#endif  // SPARQLOG_ANALYSIS_FEATURES_H_
