#include "analysis/operator_set.h"

namespace sparqlog::analysis {

void OperatorSetDistribution::Add(const QueryFeatures& f) {
  if (f.form != sparql::QueryForm::kSelect &&
      f.form != sparql::QueryForm::kAsk) {
    return;
  }
  ++total;
  if (f.opset_other) {
    ++other;
    return;
  }
  ++exact[f.opset & 31];
}

uint64_t OperatorSetDistribution::CpfSubtotal() const {
  uint64_t cpf = 0;
  for (uint8_t mask : {uint8_t{0}, QueryFeatures::kOpF, QueryFeatures::kOpA,
                       static_cast<uint8_t>(QueryFeatures::kOpA |
                                            QueryFeatures::kOpF)}) {
    cpf += exact[mask];
  }
  return cpf;
}

uint64_t OperatorSetDistribution::CpfPlus(uint8_t extra) const {
  uint64_t sum = 0;
  for (uint8_t base : {uint8_t{0}, QueryFeatures::kOpF, QueryFeatures::kOpA,
                       static_cast<uint8_t>(QueryFeatures::kOpA |
                                            QueryFeatures::kOpF)}) {
    sum += exact[(base | extra) & 31];
  }
  return sum;
}

uint64_t OperatorSetDistribution::OtherCombinations() const {
  // Everything classified in `exact` that is not one of the paper's rows:
  // CPF sets, CPF+O, CPF+G, CPF+U, and {A, O, U, F}.
  uint64_t shown = CpfSubtotal() + CpfPlus(QueryFeatures::kOpO) +
                   CpfPlus(QueryFeatures::kOpG) +
                   CpfPlus(QueryFeatures::kOpU) +
                   exact[QueryFeatures::kOpA | QueryFeatures::kOpO |
                         QueryFeatures::kOpU | QueryFeatures::kOpF];
  uint64_t classified = 0;
  for (uint64_t c : exact) classified += c;
  return classified - shown;
}

void OperatorSetDistribution::Merge(const OperatorSetDistribution& o) {
  for (size_t i = 0; i < 32; ++i) exact[i] += o.exact[i];
  other += o.other;
  total += o.total;
}

std::string OperatorSetName(uint8_t mask) {
  if (mask == 0) return "none";
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += ", ";
    out += name;
  };
  if (mask & QueryFeatures::kOpA) add("A");
  if (mask & QueryFeatures::kOpO) add("O");
  if (mask & QueryFeatures::kOpG) add("G");
  if (mask & QueryFeatures::kOpU) add("U");
  if (mask & QueryFeatures::kOpF) add("F");
  return out;
}

}  // namespace sparqlog::analysis
