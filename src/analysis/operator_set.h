#ifndef SPARQLOG_ANALYSIS_OPERATOR_SET_H_
#define SPARQLOG_ANALYSIS_OPERATOR_SET_H_

#include <cstdint>
#include <string>

#include "analysis/features.h"

namespace sparqlog::analysis {

/// Aggregated operator-set distribution over O = {Filter, And, Opt,
/// Graph, Union} for Select/Ask queries — the data behind Table 3.
///
/// `exact[mask]` counts queries whose body uses exactly the operators in
/// `mask` (bit layout as in QueryFeatures) and nothing outside O.
struct OperatorSetDistribution {
  uint64_t exact[32] = {0};
  /// Queries using a feature outside O in their body (paper: 3.33%).
  uint64_t other = 0;
  /// Total Select/Ask queries classified.
  uint64_t total = 0;

  void Add(const QueryFeatures& f);

  /// Adds another partition's counters (pipeline shard merging).
  void Merge(const OperatorSetDistribution& o);

  /// Count of queries whose operator set is exactly `mask`.
  uint64_t Exact(uint8_t mask) const { return exact[mask & 31]; }

  /// Count of CPF queries: operator set is a subset of {And, Filter}.
  uint64_t CpfSubtotal() const;

  /// Sum of all sets CPF ∪ {extra}: e.g. CPF+O = {O}, {O,F}, {A,O},
  /// {A,O,F} (the paper's "+8.56%" style rows).
  uint64_t CpfPlus(uint8_t extra) const;

  /// Queries using combinations from O not shown in the paper's rows.
  uint64_t OtherCombinations() const;
};

/// Renders a mask like "A, O, F" in the paper's notation ("none" for 0).
std::string OperatorSetName(uint8_t mask);

}  // namespace sparqlog::analysis

#endif  // SPARQLOG_ANALYSIS_OPERATOR_SET_H_
