#include "analysis/features.h"

#include "analysis/projection.h"

namespace sparqlog::analysis {

using sparql::Expr;
using sparql::ExprKind;
using sparql::PathExpr;
using sparql::PathKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;

namespace {

/// True iff the path is one of the trivial one-step forms `!a` or `^a`
/// (Section 7 excludes these from the navigational analysis).
bool IsTrivialPath(const PathExpr& p) {
  if (p.kind == PathKind::kInverse && p.children[0].IsSimpleLink()) {
    return true;
  }
  if (p.kind == PathKind::kNegated && p.children.size() == 1 &&
      p.children[0].IsSimpleLink()) {
    return true;
  }
  return false;
}

void WalkExpr(const Expr& e, QueryFeatures& f, bool in_body);

void WalkPattern(const Pattern& p, QueryFeatures& f, bool in_body) {
  switch (p.kind) {
    case PatternKind::kTriple:
      ++f.num_triples;
      if (p.triple.has_path) {
        f.property_path = true;
        if (!IsTrivialPath(p.triple.path)) f.navigational_path = true;
        if (in_body) f.opset_other = true;
      } else if (p.triple.predicate.is_variable()) {
        f.var_predicate = true;
      }
      return;
    case PatternKind::kFilter:
      f.filter = true;
      if (in_body) f.opset |= QueryFeatures::kOpF;
      WalkExpr(p.expr, f, in_body);
      return;
    case PatternKind::kUnion:
      f.union_ = true;
      if (in_body) f.opset |= QueryFeatures::kOpU;
      break;
    case PatternKind::kOptional:
      f.optional = true;
      if (in_body) f.opset |= QueryFeatures::kOpO;
      break;
    case PatternKind::kMinus:
      f.minus = true;
      if (in_body) f.opset_other = true;
      break;
    case PatternKind::kGraph:
      f.graph = true;
      if (in_body) f.opset |= QueryFeatures::kOpG;
      break;
    case PatternKind::kService:
      f.service = true;
      if (in_body) f.opset_other = true;
      break;
    case PatternKind::kBind:
      f.bind = true;
      if (in_body) f.opset_other = true;
      WalkExpr(p.expr, f, in_body);
      return;
    case PatternKind::kValues:
      f.values = true;
      if (in_body) f.opset_other = true;
      return;
    case PatternKind::kSubSelect:
      f.subquery = true;
      if (in_body) f.opset_other = true;
      if (p.subquery) {
        if (p.subquery->distinct) f.distinct = true;
        if (p.subquery->reduced) f.reduced = true;
        if (p.subquery->limit.has_value()) f.has_limit = true;
        if (p.subquery->offset.has_value()) f.has_offset = true;
        if (!p.subquery->order_by.empty()) f.has_order_by = true;
        if (!p.subquery->group_by.empty()) f.has_group_by = true;
        if (!p.subquery->having.empty()) f.has_having = true;
        for (const sparql::SelectItem& item : p.subquery->select_items) {
          if (item.expr.has_value()) WalkExpr(*item.expr, f, false);
        }
        for (const Expr& e : p.subquery->having) WalkExpr(e, f, false);
        for (const sparql::OrderCondition& oc : p.subquery->order_by) {
          WalkExpr(oc.expr, f, false);
        }
        if (p.subquery->has_body) {
          // Operators inside a subquery do not contribute to the outer
          // body's operator set (Table 3's "other" bucket), but they do
          // count for keyword statistics.
          WalkPattern(p.subquery->where, f, false);
        }
      }
      return;
    case PatternKind::kGroup: {
      // The paper's "And": a group joining two or more pattern elements.
      // Filters, optionals, minuses, and binds do not introduce a join
      // (they translate to Filter / LeftJoin / Minus / Extend).
      int joinable = 0;
      for (const Pattern& c : p.children) {
        switch (c.kind) {
          case PatternKind::kTriple:
          case PatternKind::kGroup:
          case PatternKind::kUnion:
          case PatternKind::kGraph:
          case PatternKind::kService:
          case PatternKind::kSubSelect:
          case PatternKind::kValues:
            ++joinable;
            break;
          default:
            break;
        }
      }
      if (joinable >= 2) {
        f.conj = true;
        if (in_body) f.opset |= QueryFeatures::kOpA;
      }
      break;
    }
  }
  for (const Pattern& c : p.children) WalkPattern(c, f, in_body);
}

void WalkExpr(const Expr& e, QueryFeatures& f, bool in_body) {
  switch (e.kind) {
    case ExprKind::kExists:
      f.exists = true;
      if (in_body) f.opset_other = true;
      if (e.pattern) WalkPattern(*e.pattern, f, false);
      return;
    case ExprKind::kNotExists:
      f.not_exists = true;
      if (in_body) f.opset_other = true;
      if (e.pattern) WalkPattern(*e.pattern, f, false);
      return;
    case ExprKind::kAggregate:
      if (e.op == "COUNT") f.agg_count = true;
      if (e.op == "MAX") f.agg_max = true;
      if (e.op == "MIN") f.agg_min = true;
      if (e.op == "AVG") f.agg_avg = true;
      if (e.op == "SUM") f.agg_sum = true;
      if (e.op == "SAMPLE") f.agg_sample = true;
      if (e.op == "GROUP_CONCAT") f.agg_group_concat = true;
      break;
    default:
      break;
  }
  for (const Expr& a : e.args) WalkExpr(a, f, in_body);
}

}  // namespace

QueryFeatures ExtractFeatures(const Query& q) {
  QueryFeatures f;
  f.form = q.form;
  f.has_body = q.has_body;
  f.distinct = q.distinct;
  f.reduced = q.reduced;
  f.has_limit = q.limit.has_value();
  f.has_offset = q.offset.has_value();
  f.has_order_by = !q.order_by.empty();
  f.has_group_by = !q.group_by.empty();
  f.has_having = !q.having.empty();

  if (q.has_body) WalkPattern(q.where, f, /*in_body=*/true);

  for (const sparql::SelectItem& item : q.select_items) {
    if (item.expr.has_value()) WalkExpr(*item.expr, f, false);
  }
  for (const sparql::GroupCondition& gc : q.group_by) {
    WalkExpr(gc.expr, f, false);
  }
  for (const Expr& e : q.having) WalkExpr(e, f, false);
  for (const sparql::OrderCondition& oc : q.order_by) {
    WalkExpr(oc.expr, f, false);
  }
  if (q.trailing_values.has_value()) f.values = true;

  f.projection = ClassifyProjection(q);
  return f;
}

}  // namespace sparqlog::analysis
