#include "streaks/streaks.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <utility>

#include "util/ascii.h"
#include "util/fnv.h"

namespace sparqlog::streaks {

void StreakReport::AddStreakLength(uint64_t length) {
  ++total_streaks;
  longest = std::max(longest, length);
  size_t bucket = (length == 0) ? 0 : (length - 1) / 10;
  if (bucket > 10) bucket = 10;
  ++counts[bucket];
}

void StreakReport::Merge(const StreakReport& other) {
  for (size_t i = 0; i < std::size(counts); ++i) counts[i] += other.counts[i];
  total_streaks += other.total_streaks;
  longest = std::max(longest, other.longest);
  queries_processed += other.queries_processed;
}

std::string_view StripPrologueView(std::string_view query) {
  // One left-to-right scan; the first position where any of the four
  // form keywords starts on a word boundary wins. Keyword dispatch is
  // by first letter (the four forms start with distinct letters), and
  // `c | 0x20` maps exactly {lower, upper} of an ASCII letter onto its
  // lowercase form, so the comparison below equals EqualsIgnoreCase.
  for (size_t i = 0; i < query.size(); ++i) {
    std::string_view keyword;
    switch (query[i] | 0x20) {
      case 's': keyword = "select"; break;
      case 'a': keyword = "ask"; break;
      case 'c': keyword = "construct"; break;
      case 'd': keyword = "describe"; break;
      default: continue;
    }
    if (i + keyword.size() > query.size()) continue;
    if (i > 0) {
      // Keyword boundary check: not inside an IRI or a longer word.
      char prev = query[i - 1];
      if (util::IsAsciiAlnum(prev) || prev == ':' || prev == '/' ||
          prev == '#' || prev == '_') {
        continue;
      }
    }
    bool match = true;
    for (size_t k = 1; k < keyword.size(); ++k) {
      if ((query[i + k] | 0x20) != keyword[k]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    if (i + keyword.size() < query.size() &&
        util::IsAsciiAlnum(query[i + keyword.size()])) {
      continue;
    }
    return query.substr(i);
  }
  return query;
}

std::string StripPrologue(const std::string& query) {
  return std::string(StripPrologueView(query));
}

QueryFingerprint FingerprintOf(std::string_view text) {
  QueryFingerprint fp;
  fp.length = static_cast<uint32_t>(text.size());
  fp.hash = util::Fnv1aHash(text);
  for (unsigned char c : text) {
    fp.charmap[c >> 6] |= 1ULL << (c & 63);
    if (fp.hist[c] != 255) ++fp.hist[c];
  }
  return fp;
}

size_t CharmapLowerBound(const QueryFingerprint& a,
                         const QueryFingerprint& b) {
  size_t only_a = 0, only_b = 0;
  for (int w = 0; w < 4; ++w) {
    only_a += static_cast<size_t>(std::popcount(a.charmap[w] & ~b.charmap[w]));
    only_b += static_cast<size_t>(std::popcount(b.charmap[w] & ~a.charmap[w]));
  }
  return std::max(only_a, only_b);
}

size_t HistogramLowerBound(const QueryFingerprint& a,
                           const QueryFingerprint& b) {
  size_t positive = 0, negative = 0;
  for (int c = 0; c < 256; ++c) {
    int diff = static_cast<int>(a.hist[c]) - static_cast<int>(b.hist[c]);
    if (diff > 0) {
      positive += static_cast<size_t>(diff);
    } else {
      negative += static_cast<size_t>(-diff);
    }
  }
  return std::max(positive, negative);
}

void PrefilterStats::Merge(const PrefilterStats& other) {
  pairs += other.pairs;
  exact_hash_hits += other.exact_hash_hits;
  length_rejects += other.length_rejects;
  charmap_rejects += other.charmap_rejects;
  histogram_rejects += other.histogram_rejects;
  levenshtein_calls += other.levenshtein_calls;
  abandoned_pairs += other.abandoned_pairs;
}

// ---------------------------------------------------------------------------
// SimilarityWindow
// ---------------------------------------------------------------------------

SimilarityWindow::SimilarityWindow(StreakOptions options)
    : options_(std::move(options)) {}

bool SimilarityWindow::Similar(const Slot& prev, const Slot& cand) {
  ++stats_.pairs;
  // The exact predicate (SimilarByLevenshtein): distance at most
  // floor(threshold * longer). Every tier below either decides exactly
  // or rejects on an admissible lower bound, so the cascade accepts a
  // pair iff the exact predicate does.
  size_t longer = std::max(prev.fp.length, cand.fp.length);
  if (prev.fp.hash == cand.fp.hash && prev.fp.length == cand.fp.length &&
      prev.text == cand.text) {
    // Distance 0 <= any budget; the duplicate-heavy real-log case.
    ++stats_.exact_hash_hits;
    return true;
  }
  size_t budget = static_cast<size_t>(
      std::floor(options_.similarity_threshold * longer));
  size_t length_gap = longer - std::min(prev.fp.length, cand.fp.length);
  if (length_gap > budget) {
    ++stats_.length_rejects;
    return false;
  }
  if (CharmapLowerBound(prev.fp, cand.fp) > budget) {
    ++stats_.charmap_rejects;
    return false;
  }
  if (HistogramLowerBound(prev.fp, cand.fp) > budget) {
    ++stats_.histogram_rejects;
    return false;
  }
  ++stats_.levenshtein_calls;
  if (options_.levenshtein_step_budget == 0) {
    return util::MyersBoundedLevenshtein(prev.text, cand.text, budget,
                                         scratch_) <= budget;
  }
  util::StepBudget steps(options_.levenshtein_step_budget);
  size_t dist = util::MyersBoundedLevenshtein(prev.text, cand.text, budget,
                                              scratch_, &steps);
  if (steps.exhausted()) {
    ++stats_.abandoned_pairs;
    return false;
  }
  return dist <= budget;
}

void SimilarityWindow::Add(std::string_view raw_query,
                           std::vector<uint32_t>& matched_gaps) {
  matched_gaps.clear();
  std::string_view text =
      options_.strip_prologue ? StripPrologueView(raw_query) : raw_query;

  size_t index = next_index_++;
  while (!window_.empty() &&
         next_index_ - window_.front().index > options_.window) {
    spare_.push_back(std::move(window_.front().text));
    window_.pop_front();
  }

  Slot slot;
  if (!spare_.empty()) {
    slot.text = std::move(spare_.back());
    spare_.pop_back();
  }
  slot.text.assign(text.data(), text.size());
  slot.fp = FingerprintOf(slot.text);
  slot.index = index;

  // Scan the window from the most recent to the oldest. A predecessor
  // q_i matches iff similar(q_i, q_j) and no query between them was
  // similar to q_i — the latter is tracked by has_later_similar.
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    if (!Similar(*it, slot)) continue;
    if (!it->has_later_similar) {
      matched_gaps.push_back(static_cast<uint32_t>(index - it->index));
    }
    it->has_later_similar = true;
  }
  window_.push_back(std::move(slot));
}

void SimilarityWindow::Reset() {
  while (!window_.empty()) {
    spare_.push_back(std::move(window_.front().text));
    window_.pop_front();
  }
  next_index_ = 0;
}

// ---------------------------------------------------------------------------
// StreakChainTracker
// ---------------------------------------------------------------------------

StreakChainTracker::StreakChainTracker(size_t window) : window_(window) {}

void StreakChainTracker::Add(const uint32_t* gaps, size_t count) {
  size_t index = next_index_++;
  ++report_.queries_processed;
  while (!nodes_.empty() && next_index_ - nodes_.front().index > window_) {
    if (!nodes_.front().extended) {
      // No later query extended this streak: it is final.
      report_.AddStreakLength(nodes_.front().length);
    }
    nodes_.pop_front();
  }
  Node node;
  node.index = index;
  for (size_t k = 0; k < count; ++k) {
    Node& matched = nodes_[index - gaps[k] - nodes_.front().index];
    matched.extended = true;
    node.length = std::max(node.length, matched.length + 1);
  }
  nodes_.push_back(node);
}

StreakReport StreakChainTracker::DrainFinalized() {
  StreakReport out = report_;
  report_ = StreakReport();
  return out;
}

StreakReport StreakChainTracker::Finish() {
  for (const Node& node : nodes_) {
    if (!node.extended) report_.AddStreakLength(node.length);
  }
  nodes_.clear();
  StreakReport out = report_;
  report_ = StreakReport();
  next_index_ = 0;
  return out;
}

// ---------------------------------------------------------------------------
// StreakDetector
// ---------------------------------------------------------------------------

StreakDetector::StreakDetector(StreakOptions options)
    : window_(options), tracker_(options.window) {}

void StreakDetector::Add(std::string_view query) {
  window_.Add(query, gaps_);
  tracker_.Add(gaps_.data(), gaps_.size());
}

StreakReport StreakDetector::Finish() {
  window_.Reset();
  return tracker_.Finish();
}

}  // namespace sparqlog::streaks
