#include "streaks/streaks.h"

#include <algorithm>
#include <iterator>

#include "util/levenshtein.h"
#include "util/strings.h"

namespace sparqlog::streaks {

void StreakReport::AddStreakLength(uint64_t length) {
  ++total_streaks;
  longest = std::max(longest, length);
  size_t bucket = (length == 0) ? 0 : (length - 1) / 10;
  if (bucket > 10) bucket = 10;
  ++counts[bucket];
}

void StreakReport::Merge(const StreakReport& other) {
  for (size_t i = 0; i < std::size(counts); ++i) counts[i] += other.counts[i];
  total_streaks += other.total_streaks;
  longest = std::max(longest, other.longest);
  queries_processed += other.queries_processed;
}

std::string StripPrologue(const std::string& query) {
  static const char* kForms[] = {"SELECT", "ASK", "CONSTRUCT", "DESCRIBE"};
  size_t best = std::string::npos;
  for (const char* form : kForms) {
    size_t len = std::string(form).size();
    for (size_t i = 0; i + len <= query.size(); ++i) {
      if (util::EqualsIgnoreCase(std::string_view(query).substr(i, len),
                                 form)) {
        // Keyword boundary check: not inside an IRI or a longer word.
        bool left_ok =
            i == 0 || !(std::isalnum(static_cast<unsigned char>(
                            query[i - 1])) ||
                        query[i - 1] == ':' || query[i - 1] == '/' ||
                        query[i - 1] == '#' || query[i - 1] == '_');
        bool right_ok =
            i + len == query.size() ||
            !std::isalnum(static_cast<unsigned char>(query[i + len]));
        if (left_ok && right_ok) {
          best = std::min(best, i);
          break;
        }
      }
    }
  }
  if (best == std::string::npos) return query;
  return query.substr(best);
}

StreakDetector::StreakDetector(StreakOptions options)
    : options_(std::move(options)) {}

void StreakDetector::EvictExpired() {
  while (!window_.empty() &&
         next_index_ - window_.front().index > options_.window) {
    const Entry& old = window_.front();
    if (!old.extended) {
      // No later query extended this streak: it is final.
      report_.AddStreakLength(old.streak_length);
    }
    window_.pop_front();
  }
}

void StreakDetector::Add(const std::string& raw_query) {
  Entry entry;
  entry.text = options_.strip_prologue ? StripPrologue(raw_query) : raw_query;
  entry.index = next_index_++;
  ++report_.queries_processed;
  EvictExpired();

  // Scan the window from the most recent to the oldest. A predecessor
  // q_i matches iff similar(q_i, q_j) and no query between them was
  // similar to q_i — the latter is tracked by has_later_similar.
  bool matched_any = false;
  for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
    bool similar = util::SimilarByLevenshtein(it->text, entry.text,
                                              options_.similarity_threshold);
    if (!similar) continue;
    if (!it->has_later_similar) {
      // q_j extends the streak ending at q_i.
      if (!matched_any || it->streak_length + 1 > entry.streak_length) {
        entry.streak_length = it->streak_length + 1;
      }
      it->extended = true;
      matched_any = true;
    }
    it->has_later_similar = true;
  }
  window_.push_back(std::move(entry));
}

StreakReport StreakDetector::Finish() {
  for (const Entry& e : window_) {
    if (!e.extended) report_.AddStreakLength(e.streak_length);
  }
  window_.clear();
  StreakReport out = report_;
  report_ = StreakReport();
  next_index_ = 0;
  return out;
}

}  // namespace sparqlog::streaks
