#ifndef SPARQLOG_STREAKS_STREAKS_H_
#define SPARQLOG_STREAKS_STREAKS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/levenshtein.h"

namespace sparqlog::streaks {

/// Parameters of the streak analysis (Section 8 of the paper).
struct StreakOptions {
  /// Two queries are similar iff their normalized Levenshtein distance
  /// (divided by the longer length) is at most this threshold.
  double similarity_threshold = 0.25;
  /// Maximum index gap between consecutive queries of a streak.
  size_t window = 30;
  /// Strip namespace prefixes (everything before the first
  /// SELECT/ASK/CONSTRUCT/DESCRIBE) before comparing, as the paper does.
  bool strip_prologue = true;
  /// Per-pair step budget for the Levenshtein DP (one step per 64-row
  /// block column; 0 = unlimited). A pair whose DP exhausts the budget
  /// is treated as dissimilar — deterministically, since the step count
  /// depends only on the two texts — and counted in
  /// PrefilterStats::abandoned_pairs.
  uint64_t levenshtein_step_budget = 0;
};

/// Aggregated results of a streak detection run.
struct StreakReport {
  /// counts[i] = number of streaks with length in [10i+1, 10i+10] for
  /// i = 0..9; counts[10] = streaks longer than 100 (Table 6 buckets).
  uint64_t counts[11] = {0};
  uint64_t total_streaks = 0;
  uint64_t longest = 0;
  uint64_t queries_processed = 0;

  void AddStreakLength(uint64_t length);

  /// Adds another partition's report (sums counters, max of `longest`).
  /// Exact when the partitions processed disjoint slices of the log;
  /// Merge with a default-constructed report is the identity.
  void Merge(const StreakReport& other);

  /// Field-for-field equality — the divergence gates compare whole
  /// reports with this, so a new field can never be silently skipped.
  bool operator==(const StreakReport& other) const = default;
};

/// Removes the prologue (prefix/base declarations): returns the suffix
/// of `query` starting at the first SELECT, ASK, CONSTRUCT, or DESCRIBE
/// keyword (case-insensitive). Namespace prefixes "introduce superficial
/// similarity" (Section 8). Zero-copy: the result views into `query`.
std::string_view StripPrologueView(std::string_view query);

/// Materializing convenience wrapper around StripPrologueView.
std::string StripPrologue(const std::string& query);

/// Per-query similarity fingerprint: everything the prefilter cascade
/// needs to lower-bound the edit distance of a pair without reading the
/// texts. Computed once per query in one O(length) pass.
struct QueryFingerprint {
  /// FNV-1a of the compared text — exact-duplicate short circuit.
  uint64_t hash = 0;
  uint32_t length = 0;
  /// 256-bit character-occurrence bitmap (bit c set iff byte c occurs).
  uint64_t charmap[4] = {0};
  /// Saturating byte histogram (counts clamp at 255; clamping only
  /// weakens the bound, never breaks admissibility).
  uint8_t hist[256] = {0};
};

QueryFingerprint FingerprintOf(std::string_view text);

/// Admissible lower bound from the occurrence bitmaps: every byte value
/// present in one string but absent from the other needs at least one
/// edit of its own. Eight word ops per pair.
size_t CharmapLowerBound(const QueryFingerprint& a, const QueryFingerprint& b);

/// Admissible bag-of-characters lower bound: with P (N) the total
/// positive (negative) histogram excess, every edit reduces P by at
/// most one and N by at most one, so distance >= max(P, N). Dominates
/// CharmapLowerBound but costs a 256-entry scan.
size_t HistogramLowerBound(const QueryFingerprint& a,
                           const QueryFingerprint& b);

/// Where each candidate pair of a streak run was decided. The cascade
/// tiers are ordered cheapest first; a pair is counted against the
/// first tier that settles it, and `levenshtein_calls` counts only the
/// pairs that survived every prefilter and reached the DP.
struct PrefilterStats {
  uint64_t pairs = 0;
  uint64_t exact_hash_hits = 0;
  uint64_t length_rejects = 0;
  uint64_t charmap_rejects = 0;
  uint64_t histogram_rejects = 0;
  uint64_t levenshtein_calls = 0;
  /// DP calls cut short by StreakOptions::levenshtein_step_budget (the
  /// pair is then treated as dissimilar). Always 0 with the default
  /// unlimited budget.
  uint64_t abandoned_pairs = 0;

  void Merge(const PrefilterStats& other);
};

/// The streak hot path: a sliding window of fingerprinted queries that,
/// for each new query, yields the index gaps of every predecessor it
/// *matches* under the paper's definition — similar, within the window,
/// and with no intermediate query similar to the predecessor. Window
/// text lives in a per-window arena of recycled buffers, so steady-state
/// operation allocates nothing per query.
///
/// Both the serial StreakDetector and the sharded pipeline stage are
/// built on this one implementation, which is what makes their reports
/// bit-identical by construction.
class SimilarityWindow {
 public:
  explicit SimilarityWindow(StreakOptions options = StreakOptions());

  /// Feeds the next query (in log order). Clears `matched_gaps` and
  /// fills it with (current index - predecessor index) for every
  /// matched predecessor, most recent first.
  void Add(std::string_view raw_query, std::vector<uint32_t>& matched_gaps);

  /// Forgets all window state (the recycled buffers are kept).
  void Reset();

  /// Cumulative cascade counters (not cleared by Reset).
  const PrefilterStats& stats() const { return stats_; }

 private:
  struct Slot {
    std::string text;  // recycled through spare_, not reallocated
    QueryFingerprint fp;
    size_t index = 0;
    /// Some later query within the window was similar to this one
    /// (then earlier entries cannot match across it).
    bool has_later_similar = false;
  };

  bool Similar(const Slot& prev, const Slot& cand);

  StreakOptions options_;
  std::deque<Slot> window_;
  std::vector<std::string> spare_;  // evicted buffers awaiting reuse
  size_t next_index_ = 0;
  PrefilterStats stats_;
  util::LevenshteinScratch scratch_;
};

/// Folds per-query match gaps into streak lengths and the Table 6
/// report: length(q) = 1 + max length over matched predecessors, and a
/// query nobody matched ends its streak. Shared by the serial detector
/// and the sharded stage's stitch pass.
class StreakChainTracker {
 public:
  explicit StreakChainTracker(size_t window);

  /// Consumes the matched gaps of the next query (in log order).
  void Add(const uint32_t* gaps, size_t count);

  /// Moves out everything finalized so far (streaks that can no longer
  /// be extended, plus the queries-processed count); chains still open
  /// in the window stay pending. Lets the sharded stage produce
  /// per-chunk partial reports that Merge into the exact total.
  StreakReport DrainFinalized();

  /// Flushes all open streaks, returns the report, and resets.
  StreakReport Finish();

 private:
  struct Node {
    uint64_t length = 1;
    size_t index = 0;
    /// Whether some later query extended this node's streak.
    bool extended = false;
  };

  size_t window_;
  size_t next_index_ = 0;
  std::deque<Node> nodes_;
  StreakReport report_;
};

/// Online streak detector over an ordered query log.
///
/// Implements the paper's definition: queries q_i and q_j (i < j) match
/// iff they are similar and no intermediate query is similar to q_i; a
/// streak chains matches with gaps <= window. A query that matches no
/// predecessor starts a new streak of length 1.
class StreakDetector {
 public:
  explicit StreakDetector(StreakOptions options = StreakOptions());

  /// Feeds the next query of the log (in log order).
  void Add(std::string_view query);

  /// Flushes all open streaks and returns the report.
  StreakReport Finish();

  /// Cascade counters for the whole lifetime of this detector.
  const PrefilterStats& prefilter_stats() const { return window_.stats(); }

 private:
  SimilarityWindow window_;
  StreakChainTracker tracker_;
  std::vector<uint32_t> gaps_;  // per-Add scratch
};

}  // namespace sparqlog::streaks

#endif  // SPARQLOG_STREAKS_STREAKS_H_
