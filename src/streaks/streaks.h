#ifndef SPARQLOG_STREAKS_STREAKS_H_
#define SPARQLOG_STREAKS_STREAKS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace sparqlog::streaks {

/// Parameters of the streak analysis (Section 8 of the paper).
struct StreakOptions {
  /// Two queries are similar iff their normalized Levenshtein distance
  /// (divided by the longer length) is at most this threshold.
  double similarity_threshold = 0.25;
  /// Maximum index gap between consecutive queries of a streak.
  size_t window = 30;
  /// Strip namespace prefixes (everything before the first
  /// SELECT/ASK/CONSTRUCT/DESCRIBE) before comparing, as the paper does.
  bool strip_prologue = true;
};

/// Aggregated results of a streak detection run.
struct StreakReport {
  /// counts[i] = number of streaks with length in [10i+1, 10i+10] for
  /// i = 0..9; counts[10] = streaks longer than 100 (Table 6 buckets).
  uint64_t counts[11] = {0};
  uint64_t total_streaks = 0;
  uint64_t longest = 0;
  uint64_t queries_processed = 0;

  void AddStreakLength(uint64_t length);

  /// Adds another partition's report (sums counters, max of `longest`).
  /// Exact when the partitions processed disjoint slices of the log;
  /// Merge with a default-constructed report is the identity.
  void Merge(const StreakReport& other);
};

/// Removes the prologue (prefix/base declarations): returns the suffix
/// of `query` starting at the first SELECT, ASK, CONSTRUCT, or DESCRIBE
/// keyword (case-insensitive). Namespace prefixes "introduce superficial
/// similarity" (Section 8).
std::string StripPrologue(const std::string& query);

/// Online streak detector over an ordered query log.
///
/// Implements the paper's definition: queries q_i and q_j (i < j) match
/// iff they are similar and no intermediate query is similar to q_i; a
/// streak chains matches with gaps <= window. A query that matches no
/// predecessor starts a new streak of length 1.
class StreakDetector {
 public:
  explicit StreakDetector(StreakOptions options = StreakOptions());

  /// Feeds the next query of the log (in log order).
  void Add(const std::string& query);

  /// Flushes all open streaks and returns the report.
  StreakReport Finish();

 private:
  struct Entry {
    std::string text;
    size_t index;
    /// Some later query within the window was similar to this one
    /// (then earlier entries cannot match across it).
    bool has_later_similar = false;
    /// Length of the longest streak ending at this entry.
    uint64_t streak_length = 1;
    /// Whether some later query extended this entry's streak.
    bool extended = false;
  };

  void EvictExpired();

  StreakOptions options_;
  std::deque<Entry> window_;
  size_t next_index_ = 0;
  StreakReport report_;
};

}  // namespace sparqlog::streaks

#endif  // SPARQLOG_STREAKS_STREAKS_H_
