#ifndef SPARQLOG_GMARK_QUERY_GEN_H_
#define SPARQLOG_GMARK_QUERY_GEN_H_

#include <optional>
#include <string>
#include <vector>

#include "gmark/schema.h"
#include "sparql/ast.h"
#include "store/engine.h"
#include "util/rng.h"

namespace sparqlog::gmark {

/// The query shapes gMark generates (Section 5.1 / footnote 18: chain,
/// star, chain-star ("star-chain"), and cycle).
enum class QueryShape { kChain, kStar, kCycle, kChainStar };

/// One generated conjunctive query, in three equivalent forms: the step
/// list (schema predicates with directions), a SPARQL AST, and SQL text
/// over per-predicate binary tables (the PostgreSQL encoding used in the
/// paper's experiment).
struct GeneratedQuery {
  QueryShape shape = QueryShape::kChain;
  int length = 0;
  /// Predicate index + direction per step (false = forward).
  std::vector<std::pair<int, bool>> steps;
  sparql::Query sparql;
  std::string sql;
};

/// Workload generation options.
struct QueryGenOptions {
  QueryShape shape = QueryShape::kChain;
  int length = 3;          ///< number of conjuncts (paper: 3..8)
  int workload_size = 100; ///< queries per workload (paper: 100)
  bool ask_form = true;    ///< the paper converts workloads to Ask
  uint64_t seed = 7;
};

/// Generates a workload of `workload_size` queries of the given shape
/// and length over `schema`, by typed random walks (chains/cycles) or
/// typed fan-outs (stars).
std::vector<GeneratedQuery> GenerateWorkload(const Schema& schema,
                                             const QueryGenOptions& options);

/// Compiles a generated query to the engine IR against a store's
/// dictionary. Returns nullopt when a predicate IRI is absent from the
/// store (then the query trivially has no results).
std::optional<store::BgpQuery> CompileForEngine(
    const GeneratedQuery& q, const store::TripleStore& store,
    const Schema& schema);

}  // namespace sparqlog::gmark

#endif  // SPARQLOG_GMARK_QUERY_GEN_H_
