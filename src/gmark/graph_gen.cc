#include "gmark/graph_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace sparqlog::gmark {

namespace {

uint64_t SampleOutDegree(const PredicateSpec& spec, util::Rng& rng) {
  switch (spec.out_distribution) {
    case DegreeDistribution::kUniform: {
      // Uniform in [0, 2*avg] (expected value = avg).
      uint64_t hi = static_cast<uint64_t>(std::llround(
          2.0 * spec.avg_out_degree));
      if (hi == 0) return rng.Chance(spec.avg_out_degree) ? 1 : 0;
      return rng.Below(hi + 1);
    }
    case DegreeDistribution::kZipfian: {
      // Zipf over [1, 10*avg] with s=2.0, shifted to allow zero.
      if (!rng.Chance(0.9)) return 0;
      uint64_t n = std::max<uint64_t>(
          1, static_cast<uint64_t>(10.0 * spec.avg_out_degree));
      return rng.Zipf(n, 2.0);
    }
    case DegreeDistribution::kGaussian: {
      // Approximate normal via the sum of three uniforms around avg.
      double u = rng.NextDouble() + rng.NextDouble() + rng.NextDouble();
      double value = spec.avg_out_degree * (u * 2.0 / 3.0);
      return value < 0 ? 0 : static_cast<uint64_t>(std::llround(value));
    }
  }
  return 0;
}

}  // namespace

void GenerateGraph(const Schema& schema, const GraphGenOptions& options,
                   store::TripleStore& out) {
  util::Rng rng(options.seed);

  // Partition node ids per type.
  size_t num_types = schema.types.size();
  std::vector<uint64_t> type_count(num_types, 0);
  double total_prop = 0;
  for (double p : schema.type_proportions) total_prop += p;
  uint64_t assigned = 0;
  for (size_t t = 0; t < num_types; ++t) {
    type_count[t] = static_cast<uint64_t>(
        static_cast<double>(options.num_nodes) *
        (schema.type_proportions[t] / total_prop));
    assigned += type_count[t];
  }
  if (assigned < options.num_nodes && !type_count.empty()) {
    type_count[0] += options.num_nodes - assigned;
  }

  // Node IRIs: <ns><Type>/<i>.
  auto node_iri = [&](size_t type, uint64_t i) {
    return schema.namespace_iri + schema.types[type] + "/" +
           std::to_string(i);
  };
  const std::string rdf_type =
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  for (size_t t = 0; t < num_types; ++t) {
    std::string type_iri = schema.namespace_iri + schema.types[t];
    for (uint64_t i = 0; i < type_count[t]; ++i) {
      out.Add(node_iri(t, i), rdf_type, type_iri);
    }
  }

  // Edges per predicate.
  for (const PredicateSpec& spec : schema.predicates) {
    std::string pred_iri = schema.namespace_iri + spec.name;
    uint64_t sources = type_count[static_cast<size_t>(spec.source_type)];
    uint64_t targets = type_count[static_cast<size_t>(spec.target_type)];
    if (targets == 0) continue;
    for (uint64_t i = 0; i < sources; ++i) {
      uint64_t degree = SampleOutDegree(spec, rng);
      for (uint64_t d = 0; d < degree; ++d) {
        uint64_t target =
            spec.target_skew > 0.0
                ? rng.Zipf(targets, 1.0 + spec.target_skew) - 1
                : rng.Below(targets);
        out.Add(node_iri(static_cast<size_t>(spec.source_type), i), pred_iri,
                node_iri(static_cast<size_t>(spec.target_type), target));
      }
    }
  }
  out.Build();
}

}  // namespace sparqlog::gmark
