#ifndef SPARQLOG_GMARK_GRAPH_GEN_H_
#define SPARQLOG_GMARK_GRAPH_GEN_H_

#include <cstdint>

#include "gmark/schema.h"
#include "store/store.h"
#include "util/rng.h"

namespace sparqlog::gmark {

/// Options for graph-instance generation.
struct GraphGenOptions {
  uint64_t num_nodes = 100000;  ///< paper: graph of size 100k nodes
  uint64_t seed = 42;
};

/// Generates a graph instance conforming to `schema` directly into a
/// triple store (nodes become IRIs <ns/TypeN>, predicates
/// <ns/predicate>). Also asserts rdf:type triples per node.
/// The store is Build()-ready on return.
void GenerateGraph(const Schema& schema, const GraphGenOptions& options,
                   store::TripleStore& out);

}  // namespace sparqlog::gmark

#endif  // SPARQLOG_GMARK_GRAPH_GEN_H_
