#ifndef SPARQLOG_GMARK_SCHEMA_H_
#define SPARQLOG_GMARK_SCHEMA_H_

#include <string>
#include <vector>

namespace sparqlog::gmark {

/// Degree distribution families supported by the generator (gMark [5]
/// supports uniform, normal/gaussian, and zipfian distributions).
enum class DegreeDistribution { kUniform, kZipfian, kGaussian };

/// One predicate (edge type) of a schema: a typed relation with in/out
/// degree characteristics.
struct PredicateSpec {
  std::string name;      ///< IRI-suffix, e.g. "authors"
  int source_type = 0;   ///< index into Schema::types
  int target_type = 0;
  double avg_out_degree = 2.0;
  DegreeDistribution out_distribution = DegreeDistribution::kUniform;
  /// Skew of the target choice (zipf exponent; 0 = uniform targets).
  double target_skew = 0.0;
};

/// A gMark-style graph schema: node types with proportions, plus typed
/// predicates.
struct Schema {
  std::string namespace_iri = "http://example.org/gmark/";
  std::vector<std::string> types;
  std::vector<double> type_proportions;  ///< sums to ~1
  std::vector<PredicateSpec> predicates;

  /// The "Bib" use case shipped with gMark and used in Section 5.1:
  /// researchers, papers, journals, conferences (+ universities/cities),
  /// with authorship, citation, publication, and affiliation edges.
  static Schema Bib();

  /// Predicates with the given source type.
  std::vector<int> PredicatesFrom(int type) const;
  /// Predicates with the given target type (traversable in reverse).
  std::vector<int> PredicatesInto(int type) const;
};

}  // namespace sparqlog::gmark

#endif  // SPARQLOG_GMARK_SCHEMA_H_
