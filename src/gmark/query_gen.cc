#include "gmark/query_gen.h"

#include <map>
#include <string>

namespace sparqlog::gmark {

using rdf::Term;
using sparql::Pattern;
using sparql::Query;
using sparql::QueryForm;
using sparql::TriplePattern;

namespace {

std::string VarName(int i) { return "x" + std::to_string(i); }

/// Typed random walk of `length` steps; steps may traverse predicates in
/// reverse. Returns the step list and the node types visited (length+1).
bool RandomWalk(const Schema& schema, int length, bool must_close,
                util::Rng& rng, std::vector<std::pair<int, bool>>& steps,
                std::vector<int>& types) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    steps.clear();
    types.clear();
    int type = static_cast<int>(rng.Below(schema.types.size()));
    types.push_back(type);
    bool ok = true;
    for (int i = 0; i < length; ++i) {
      std::vector<std::pair<int, bool>> moves;
      for (int p : schema.PredicatesFrom(type)) moves.emplace_back(p, false);
      for (int p : schema.PredicatesInto(type)) moves.emplace_back(p, true);
      if (moves.empty()) {
        ok = false;
        break;
      }
      // For the closing step of a cycle, restrict to moves returning to
      // the start type if possible.
      if (must_close && i == length - 1) {
        std::vector<std::pair<int, bool>> closing;
        for (const auto& [p, inv] : moves) {
          int next = inv ? schema.predicates[static_cast<size_t>(p)].source_type
                         : schema.predicates[static_cast<size_t>(p)].target_type;
          if (next == types[0]) closing.push_back({p, inv});
        }
        if (closing.empty()) {
          ok = false;
          break;
        }
        moves = std::move(closing);
      }
      auto [p, inv] = moves[rng.Below(moves.size())];
      steps.emplace_back(p, inv);
      type = inv ? schema.predicates[static_cast<size_t>(p)].source_type
                 : schema.predicates[static_cast<size_t>(p)].target_type;
      types.push_back(type);
    }
    if (ok && (!must_close || types.back() == types.front())) return true;
  }
  return false;
}

sparql::Query BuildSparql(const Schema& schema,
                          const std::vector<TriplePattern>& triples,
                          int num_vars, bool ask_form) {
  (void)schema;
  Query q;
  q.form = ask_form ? QueryForm::kAsk : QueryForm::kSelect;
  if (!ask_form) {
    for (int i = 0; i < num_vars; ++i) {
      sparql::SelectItem item;
      item.var = Term::Var(VarName(i));
      q.select_items.push_back(item);
    }
  }
  sparql::AstVector<Pattern> children;
  children.reserve(triples.size());
  for (const TriplePattern& t : triples) {
    children.push_back(Pattern::Triple(t));
  }
  q.has_body = true;
  q.where = Pattern::Group(std::move(children));
  return q;
}

std::string BuildSql(const Schema& schema,
                     const std::vector<std::pair<int, bool>>& steps,
                     const std::vector<std::pair<int, int>>& endpoint_vars,
                     bool ask_form) {
  // Per-predicate binary tables pred(s, o); variables map to columns.
  std::string sql = ask_form ? "SELECT 1" : "SELECT *";
  sql += " FROM ";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += schema.predicates[static_cast<size_t>(steps[i].first)].name +
           " AS e" + std::to_string(i);
  }
  // Equality conditions: shared variables across step endpoints.
  std::vector<std::string> conds;
  // endpoint_vars[i] = (subject var, object var) of step i (already
  // direction-resolved).
  std::map<int, std::vector<std::string>> columns_of_var;
  for (size_t i = 0; i < steps.size(); ++i) {
    columns_of_var[endpoint_vars[i].first].push_back(
        "e" + std::to_string(i) + ".s");
    columns_of_var[endpoint_vars[i].second].push_back(
        "e" + std::to_string(i) + ".o");
  }
  for (const auto& [var, cols] : columns_of_var) {
    for (size_t i = 1; i < cols.size(); ++i) {
      conds.push_back(cols[0] + " = " + cols[i]);
    }
  }
  if (!conds.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < conds.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += conds[i];
    }
  }
  if (ask_form) sql += " LIMIT 1";
  return sql + ";";
}

GeneratedQuery FromSteps(const Schema& schema, QueryShape shape,
                         const std::vector<std::pair<int, bool>>& steps,
                         const std::vector<std::pair<int, int>>& endpoints,
                         int num_vars, bool ask_form) {
  GeneratedQuery out;
  out.shape = shape;
  out.length = static_cast<int>(steps.size());
  out.steps = steps;
  std::vector<TriplePattern> triples;
  for (size_t i = 0; i < steps.size(); ++i) {
    const PredicateSpec& spec =
        schema.predicates[static_cast<size_t>(steps[i].first)];
    Term pred = Term::Iri(schema.namespace_iri + spec.name);
    Term subj = Term::Var(VarName(endpoints[i].first));
    Term obj = Term::Var(VarName(endpoints[i].second));
    triples.push_back(TriplePattern::Make(subj, pred, obj));
  }
  out.sparql = BuildSparql(schema, triples, num_vars, ask_form);
  out.sql = BuildSql(schema, steps, endpoints, ask_form);
  return out;
}

}  // namespace

std::vector<GeneratedQuery> GenerateWorkload(const Schema& schema,
                                             const QueryGenOptions& options) {
  util::Rng rng(options.seed);
  std::vector<GeneratedQuery> out;
  out.reserve(static_cast<size_t>(options.workload_size));
  while (out.size() < static_cast<size_t>(options.workload_size)) {
    std::vector<std::pair<int, bool>> steps;
    std::vector<int> types;
    std::vector<std::pair<int, int>> endpoints;
    switch (options.shape) {
      case QueryShape::kChain:
      case QueryShape::kCycle: {
        bool close = options.shape == QueryShape::kCycle;
        if (!RandomWalk(schema, options.length, close, rng, steps, types)) {
          continue;
        }
        int n = static_cast<int>(steps.size());
        for (int i = 0; i < n; ++i) {
          int from = i;
          int to = (close && i == n - 1) ? 0 : i + 1;
          if (steps[static_cast<size_t>(i)].second) {
            endpoints.emplace_back(to, from);  // inverse step
          } else {
            endpoints.emplace_back(from, to);
          }
        }
        out.push_back(FromSteps(schema, options.shape, steps, endpoints,
                                close ? n : n + 1, options.ask_form));
        break;
      }
      case QueryShape::kStar: {
        // k predicates incident to a common center type.
        int center_type = static_cast<int>(rng.Below(schema.types.size()));
        std::vector<std::pair<int, bool>> moves;
        for (int p : schema.PredicatesFrom(center_type)) {
          moves.emplace_back(p, false);
        }
        for (int p : schema.PredicatesInto(center_type)) {
          moves.emplace_back(p, true);
        }
        if (moves.empty()) continue;
        for (int i = 0; i < options.length; ++i) {
          auto [p, inv] = moves[rng.Below(moves.size())];
          steps.emplace_back(p, inv);
          if (inv) {
            endpoints.emplace_back(i + 1, 0);
          } else {
            endpoints.emplace_back(0, i + 1);
          }
        }
        out.push_back(FromSteps(schema, options.shape, steps, endpoints,
                                options.length + 1, options.ask_form));
        break;
      }
      case QueryShape::kChainStar: {
        // A chain of length l1 with a star of the remaining conjuncts
        // attached at the chain's midpoint.
        int chain_len = std::max(1, options.length / 2);
        int star_len = options.length - chain_len;
        if (!RandomWalk(schema, chain_len, false, rng, steps, types)) {
          continue;
        }
        int n = static_cast<int>(steps.size());
        for (int i = 0; i < n; ++i) {
          if (steps[static_cast<size_t>(i)].second) {
            endpoints.emplace_back(i + 1, i);
          } else {
            endpoints.emplace_back(i, i + 1);
          }
        }
        int mid = chain_len / 2;
        int mid_type = types[static_cast<size_t>(mid)];
        std::vector<std::pair<int, bool>> moves;
        for (int p : schema.PredicatesFrom(mid_type)) {
          moves.emplace_back(p, false);
        }
        for (int p : schema.PredicatesInto(mid_type)) {
          moves.emplace_back(p, true);
        }
        if (moves.empty()) continue;
        int next_var = n + 1;
        for (int i = 0; i < star_len; ++i) {
          auto [p, inv] = moves[rng.Below(moves.size())];
          steps.emplace_back(p, inv);
          if (inv) {
            endpoints.emplace_back(next_var, mid);
          } else {
            endpoints.emplace_back(mid, next_var);
          }
          ++next_var;
        }
        out.push_back(FromSteps(schema, options.shape, steps, endpoints,
                                next_var, options.ask_form));
        break;
      }
    }
  }
  return out;
}

std::optional<store::BgpQuery> CompileForEngine(
    const GeneratedQuery& q, const store::TripleStore& store,
    const Schema& schema) {
  store::BgpQuery out;
  int max_var = -1;
  // Recover endpoints from the SPARQL AST (triples are in step order).
  std::vector<const sparql::TriplePattern*> triples;
  q.sparql.where.CollectTriples(triples);
  std::map<std::string, int64_t> var_ids;
  (void)schema;
  for (const sparql::TriplePattern* tp : triples) {
    store::BgpPattern bp;
    auto position = [&](const Term& t) -> std::optional<int64_t> {
      if (t.is_variable()) {
        auto it = var_ids.find(std::string(t.value));
        if (it != var_ids.end()) return it->second;
        int64_t id = out.AddVar();
        var_ids.emplace(t.value, id);
        return id;
      }
      rdf::TermId tid = store.dict().Lookup(t.value);
      if (tid == 0) return std::nullopt;
      return static_cast<int64_t>(tid);
    };
    auto s = position(tp->subject);
    auto p = position(tp->predicate);
    auto o = position(tp->object);
    if (!s || !p || !o) return std::nullopt;
    bp.s = *s;
    bp.p = *p;
    bp.o = *o;
    out.triples.push_back(bp);
    max_var = std::max(max_var, out.num_vars);
  }
  return out;
}

}  // namespace sparqlog::gmark
