#include "gmark/schema.h"

namespace sparqlog::gmark {

Schema Schema::Bib() {
  Schema s;
  s.namespace_iri = "http://example.org/bib/";
  s.types = {"Researcher", "Paper", "Journal", "Conference", "University",
             "City"};
  s.type_proportions = {0.30, 0.50, 0.05, 0.05, 0.05, 0.05};
  // Indices into types:
  constexpr int kResearcher = 0, kPaper = 1, kJournal = 2, kConference = 3,
                kUniversity = 4, kCity = 5;
  s.predicates = {
      {"authors", kPaper, kResearcher, 2.5, DegreeDistribution::kGaussian,
       0.0},
      {"cites", kPaper, kPaper, 2.0, DegreeDistribution::kZipfian, 0.0},
      {"publishedInJournal", kPaper, kJournal, 0.5,
       DegreeDistribution::kUniform, 0.0},
      {"publishedInConference", kPaper, kConference, 0.5,
       DegreeDistribution::kUniform, 0.0},
      {"extendedTo", kPaper, kPaper, 0.2, DegreeDistribution::kUniform, 0.0},
      {"affiliatedWith", kResearcher, kUniversity, 1.0,
       DegreeDistribution::kUniform, 0.0},
      {"editorOf", kResearcher, kJournal, 0.1, DegreeDistribution::kUniform,
       0.0},
      {"friendOf", kResearcher, kResearcher, 1.5,
       DegreeDistribution::kZipfian, 0.0},
      {"heldIn", kConference, kCity, 1.0, DegreeDistribution::kUniform, 0.0},
      {"locatedIn", kUniversity, kCity, 1.0, DegreeDistribution::kUniform,
       0.0},
  };
  return s;
}

std::vector<int> Schema::PredicatesFrom(int type) const {
  std::vector<int> out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (predicates[i].source_type == type) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Schema::PredicatesInto(int type) const {
  std::vector<int> out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (predicates[i].target_type == type) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace sparqlog::gmark
