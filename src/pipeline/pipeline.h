#ifndef SPARQLOG_PIPELINE_PIPELINE_H_
#define SPARQLOG_PIPELINE_PIPELINE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/ingest.h"
#include "corpus/report.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/chunk_source.h"
#include "pipeline/shard.h"
#include "util/status.h"

namespace sparqlog::pipeline {

/// Bounded multi-producer multi-consumer queue. `Push` blocks while the
/// queue is full — this is the pipeline's backpressure: a fast reader
/// cannot run ahead of slow parsers by more than `capacity` chunks, so
/// memory stays bounded no matter how large the log is.
///
/// The queue keeps its own occupancy counters (obs::QueueCounters) under
/// the mutex it already holds: push-blocks, pop-waits, their durations,
/// and the high-water depth. The uncontended path never reads the clock
/// — wait time is only measured when a caller actually blocks — and with
/// SPARQLOG_NO_TELEMETRY the clock reads compile out entirely.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  /// Blocks until there is room. Returns false iff the queue was closed
  /// (the item is dropped; `rejected_pushes` counts it).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      ++stats_.push_blocks;
      uint64_t t0 = obs::NowNsIf(true);
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      if constexpr (obs::kTelemetryEnabled) {
        stats_.push_block_ns += obs::NowNs() - t0;
      }
    }
    if (closed_) {
      ++stats_.rejected_pushes;
      return false;
    }
    items_.push_back(std::move(item));
    ++stats_.pushes;
    if (items_.size() > stats_.max_depth) stats_.max_depth = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available. Returns nullopt once the queue
  /// is closed *and* drained — items pushed before Close stay poppable,
  /// in FIFO order.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      ++stats_.pop_waits;
      uint64_t t0 = obs::NowNsIf(true);
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      if constexpr (obs::kTelemetryEnabled) {
        stats_.pop_wait_ns += obs::NowNs() - t0;
      }
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++stats_.pops;
    not_full_.notify_one();
    return item;
  }

  /// Wakes all waiters; pending items remain poppable.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Snapshot of the occupancy counters. Consistent (taken under the
  /// queue mutex); call after the producing/consuming threads joined
  /// for final totals.
  obs::QueueCounters Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
  obs::QueueCounters stats_;
};

/// Streaming source of raw log lines, consumed chunk by chunk so a log
/// never has to fit in memory.
class LineSource {
 public:
  virtual ~LineSource() = default;

  /// Replaces `out` with up to `max_lines` lines. Returns false when
  /// the source is exhausted and `out` is empty.
  virtual bool NextChunk(size_t max_lines, std::vector<std::string>& out) = 0;
};

/// Streams lines from an istream (file, pipe, socket). Line semantics
/// match MmapChunkSource: std::getline splitting plus CRLF handling (a
/// trailing '\r' is stripped), so both sources yield identical lines —
/// and identical digests — for the same bytes.
class IstreamLineSource : public LineSource {
 public:
  explicit IstreamLineSource(std::istream& in) : in_(in) {}
  bool NextChunk(size_t max_lines, std::vector<std::string>& out) override;

 private:
  std::istream& in_;
};

/// Serves an in-memory log (tests, synthetic corpora).
class VectorLineSource : public LineSource {
 public:
  explicit VectorLineSource(const std::vector<std::string>& lines)
      : lines_(lines) {}
  bool NextChunk(size_t max_lines, std::vector<std::string>& out) override;

 private:
  const std::vector<std::string>& lines_;
  size_t next_ = 0;
};

/// One quarantined line, captured for offline reproduction.
struct QuarantineSample {
  uint64_t chunk = 0;       ///< chunk id (reader sequence number)
  uint64_t line_index = 0;  ///< index within the chunk
  std::string line;         ///< the raw line that failed
  std::string reason;       ///< what() of the exception, if any
};

/// Aggregated quarantine outcome of a run. `count` equals the stats'
/// quarantined bucket; `samples` holds the first
/// PipelineOptions::quarantine_max_samples failing lines in
/// deterministic (chunk, line_index) order so a failing run always
/// reports the same reproducers.
struct QuarantineReport {
  static constexpr size_t kDefaultMaxSamples = 16;
  uint64_t count = 0;
  std::vector<QuarantineSample> samples;
};

struct PipelineOptions {
  /// Parse worker threads. 0 means hardware concurrency.
  int threads = 0;
  /// Shards (dedup/analysis partitions). 0 means one per worker. The
  /// count is part of the routing function (ShardIndexFor), so the
  /// merged result is identical for every value; the verification
  /// subsystem randomizes it to prove that.
  size_t shards = 0;
  /// Raw lines per work chunk.
  size_t chunk_size = 512;
  /// Chunks (and routed batches, per shard) buffered before
  /// backpressure kicks in.
  size_t queue_capacity = 16;
  std::string dataset = "all";
  /// Analyze the valid corpus instead of the unique corpus.
  bool use_valid_corpus = false;
  sparql::ParserOptions parser_options;
  /// Metrics registry + span tracing switches (both default off).
  obs::TelemetryOptions telemetry;
  /// Worker/reader fault containment. When on (the default), an
  /// exception thrown while processing a line — bad_alloc included —
  /// quarantines that line (it still counts toward Total, in the
  /// quarantined bucket) and the run continues; chunk-source errors are
  /// retried (transient) or end the input early with
  /// PipelineResult::source_status set (persistent). When off,
  /// exceptions propagate — the pre-containment behaviour, kept for the
  /// overhead bench and for debugging.
  bool fault_containment = true;
  /// Per-query step budgets for the structural-analysis kernels
  /// (0 = unlimited). Exhaustion moves the query to the abandoned
  /// bucket; see corpus::AnalysisLimits.
  corpus::AnalysisLimits analysis_limits;
  /// Testing-only hook, called with every raw line before it is parsed
  /// (on the worker thread, inside the containment scope). A throwing
  /// hook is how the fault tests inject deterministic worker faults.
  std::function<void(std::string_view)> parse_fault_hook;
  /// Cap on quarantined-line samples kept in the QuarantineReport (the
  /// count is always exact; this bounds only the retained reproducers).
  /// The cap is applied after the deterministic (chunk, line_index)
  /// sort, so any value yields the same samples across thread/shard
  /// counts and across journal segment merges.
  size_t quarantine_max_samples = QuarantineReport::kDefaultMaxSamples;
};

/// Merged output of a pipeline run — the same numbers the serial
/// LogIngestor + CorpusAnalyzer pair produces for the same input.
struct PipelineResult {
  corpus::CorpusStats stats;
  corpus::CorpusAnalyzer analysis;
  /// Raw lines consumed, non-query noise included.
  uint64_t lines = 0;
  /// Quarantined-line report; empty on a fault-free run.
  QuarantineReport quarantine;
  /// OK unless the chunk source failed persistently mid-run, in which
  /// case the counters cover only the lines read before the failure.
  util::Status source_status;
  /// Merged per-worker metrics; engaged iff telemetry was requested.
  std::optional<obs::RunTelemetry> telemetry;
  /// Per-worker span tracks; engaged iff tracing was requested.
  std::optional<obs::TraceData> trace;
};

/// Multi-threaded sharded corpus pipeline:
///
///   reader -> [chunk queue] -> N parse workers -> [shard queues] -> N shards
///
/// Parse workers do the expensive work (URL decode, parse, canonical
/// serialization) in parallel, then route each entry to the shard that
/// owns its canonical hash (see ShardIndexFor). Each shard dedups and
/// analyzes its disjoint slice; Run merges the shards into one result
/// that is bit-identical to the serial path, independent of thread
/// count and scheduling.
class ParallelLogPipeline {
 public:
  explicit ParallelLogPipeline(PipelineOptions options = {});

  /// Streams `source` through the pipeline and merges shard results.
  /// This is the core entry point: workers consume string_view lines
  /// straight out of the chunks (zero-copy for mmap/vector sources).
  PipelineResult Run(ChunkSource& source);

  /// Same, over caller-owned shards. Empty `shards` is populated with
  /// shards() fresh instances; non-empty (a previous call's, or shards
  /// restored from a run journal) continue accumulating — dedup sets
  /// and counters persist across calls, so feeding a source in segments
  /// yields exactly the single-call result. The returned result merges
  /// the shards' cumulative state.
  PipelineResult Run(ChunkSource& source,
                     std::vector<std::unique_ptr<Shard>>& shards);

  /// Legacy line sources run through a LineSourceAdapter (lines are
  /// owned by each chunk; still one copy total per line).
  PipelineResult Run(LineSource& source);

  /// Convenience overload for in-memory logs; zero-copy views of
  /// `lines`, which must outlive the call.
  PipelineResult Run(const std::vector<std::string>& lines);

  /// The resolved worker count.
  int threads() const { return threads_; }

  /// The resolved shard count.
  size_t shards() const {
    return options_.shards > 0 ? options_.shards
                               : static_cast<size_t>(threads_);
  }

  /// Fresh shards configured exactly as Run would create them; the run
  /// journal builds these before restoring checkpointed state into them.
  std::vector<std::unique_ptr<Shard>> MakeShards() const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
  int threads_;
};

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_PIPELINE_H_
