#ifndef SPARQLOG_PIPELINE_SHARD_H_
#define SPARQLOG_PIPELINE_SHARD_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "corpus/ingest.h"
#include "corpus/report.h"
#include "sparql/parser.h"

namespace sparqlog::pipeline {

/// Configuration shared by every shard of one pipeline run.
struct ShardOptions {
  /// Dataset label for the per-dataset statistics (Figure 1).
  std::string dataset = "all";
  /// Analyze the valid corpus (duplicates included, the appendix
  /// tables) instead of the unique corpus.
  bool use_valid_corpus = false;
  sparql::ParserOptions parser_options;
  /// Per-query step budgets for the analysis kernels (0 = unlimited).
  /// Exhaustion moves the query — and its duplicates — into the
  /// abandoned bucket instead of the statistics.
  corpus::AnalysisLimits analysis_limits;
};

/// One worker shard: a LogIngestor (Table 1 accounting + duplicate
/// elimination) wired to its own CorpusAnalyzer. A shard owns the slice
/// of canonical-hash space `hash % num_shards == index`, so every
/// duplicate of a query lands on the same shard and global dedup stays
/// exact without any cross-shard coordination.
class Shard {
 public:
  explicit Shard(const ShardOptions& options);

  Shard(const Shard&) = delete;  // the ingestor sink captures `this`
  Shard& operator=(const Shard&) = delete;

  /// Ingests one parsed entry: Total/Valid/Unique accounting, then
  /// analysis of the surviving corpus. Not thread-safe; each shard is
  /// driven by a single consumer thread.
  void Consume(const corpus::ParsedLine& entry) { ingestor_.Ingest(entry); }

  /// Routes the shard's dedup/analysis counters into `telemetry` (the
  /// consumer thread's private registry instance; caller keeps it alive
  /// for the shard's lifetime).
  void set_telemetry(obs::RunTelemetry* telemetry) {
    ingestor_.set_telemetry(telemetry);
  }

  const corpus::CorpusStats& stats() const { return ingestor_.stats(); }
  const corpus::CorpusAnalyzer& analyzer() const { return analyzer_; }

  /// Appends the shard's complete accounting + analysis state (ingestor
  /// blob, then analyzer blob) as one snapshot-section payload; strings
  /// are interned into the snapshot-wide `dict`.
  void SaveState(std::string& out, corpus::TermDictionary& dict) const;
  /// Restores state written by SaveState into a freshly-constructed
  /// shard (same ShardOptions), consuming the bytes read. Returns false
  /// on a corrupt blob.
  bool LoadState(std::string_view& in, const corpus::TermDictionary& dict);

 private:
  corpus::LogIngestor ingestor_;
  corpus::CorpusAnalyzer analyzer_;
};

/// Deterministic entry→shard routing. Valid entries route by their
/// canonical-query hash (the dedup key, so duplicates — including
/// formatting variants of the same query — always share a shard);
/// malformed entries have no canonical form and route by raw-line hash,
/// which only spreads their Total counts. The result depends solely on
/// the entry and `num_shards`, never on thread timing.
size_t ShardIndexFor(const corpus::ParsedLine& entry, size_t num_shards);

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_SHARD_H_
