#ifndef SPARQLOG_PIPELINE_JOURNAL_H_
#define SPARQLOG_PIPELINE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "pipeline/chunk_source.h"
#include "pipeline/pipeline.h"
#include "util/result.h"

namespace sparqlog::pipeline {

/// Crash-safe run journal: the source is consumed in segments of
/// `chunks_per_segment` reader chunks, and after each segment a
/// checkpoint — the source's resume cursor plus every shard's complete
/// dedup/analysis state — is written to `path` (temp file + rename, so
/// a kill mid-write leaves the previous checkpoint intact). A rerun
/// against the same journal restores the shards, seeks the source to
/// the watermark, and continues; the final StatisticsDigest is
/// bit-identical to an uninterrupted run because the shard state at the
/// watermark IS the uninterrupted run's state at that point.
struct JournalOptions {
  /// Checkpoint file. Written after every segment; "<path>.tmp" is used
  /// as the rename staging file.
  std::string path;
  /// Reader chunks per segment (checkpoint cadence). Smaller segments
  /// lose less work on a crash and cost more checkpoint I/O.
  size_t chunks_per_segment = 64;
  /// Stop after this many segments even if input remains (0 = run to
  /// completion). The kill-then-resume tests use this to end a run at a
  /// checkpoint boundary deterministically.
  uint64_t max_segments = 0;
};

struct JournalRunResult {
  PipelineResult result;
  /// Segments processed by THIS invocation (not counting checkpointed
  /// work restored from the journal).
  uint64_t segments = 0;
  /// State was restored from an existing checkpoint.
  bool resumed = false;
  /// The source was exhausted — the result covers the whole input. False
  /// when the run stopped early (max_segments reached, or a persistent
  /// source error; see result.source_status).
  bool complete = false;
};

/// Runs `options`' pipeline over `source` with journaling as described
/// above. The source must support resume (MmapChunkSource,
/// VectorChunkSource). Fails without touching the source if the
/// journal file exists but was written by an incompatible configuration
/// (different shard count, dataset, corpus mode, or analysis limits —
/// checked via a fingerprint) or is corrupt.
util::Result<JournalRunResult> RunWithJournal(const PipelineOptions& options,
                                              ChunkSource& source,
                                              const JournalOptions& journal);

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_JOURNAL_H_
