#ifndef SPARQLOG_PIPELINE_JOURNAL_H_
#define SPARQLOG_PIPELINE_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "pipeline/chunk_source.h"
#include "pipeline/pipeline.h"
#include "util/result.h"

namespace sparqlog::pipeline {

/// Crash-safe run journal: the source is consumed in segments of
/// `chunks_per_segment` reader chunks, and after each segment a
/// checkpoint — the source's resume cursor plus every shard's complete
/// dedup/analysis state — is published as a snapshot generation
/// (util/snapshot_io.h): a versioned, per-section-CRC32C file written
/// via write-fsync-rename, with `path` as the manifest tracking the two
/// most recent generations. A rerun against the same journal restores
/// the newest intact generation, seeks the source to its watermark, and
/// continues; the final StatisticsDigest is bit-identical to an
/// uninterrupted run because the shard state at the watermark IS the
/// uninterrupted run's state at that point.
///
/// Damage handling: a corrupt newest generation (torn write, bit flip,
/// truncation — all CRC-detected) falls back to the previous
/// generation, re-reading the lost segment from the source; the result
/// is still exact. Only when no retained generation is usable — or the
/// checkpoint was written by an incompatible configuration or format
/// version — is the run refused, with a reason string (never a silent
/// restart: that would double-count the journal's prefix if the caller
/// later merges runs).
struct JournalOptions {
  /// Snapshot manifest path. Generations live at "<path>.g<N>"; each
  /// file is staged at "<name>.tmp" and renamed into place.
  std::string path;
  /// Reader chunks per segment (checkpoint cadence). Smaller segments
  /// lose less work on a crash and cost more checkpoint I/O.
  size_t chunks_per_segment = 64;
  /// Stop after this many segments even if input remains (0 = run to
  /// completion). The kill-then-resume tests use this to end a run at a
  /// checkpoint boundary deterministically.
  uint64_t max_segments = 0;
  /// Load checkpoint snapshots mmap-backed instead of streamed. Same
  /// verification either way; mmap avoids a copy of large shard state.
  bool mmap_load = false;
};

struct JournalRunResult {
  PipelineResult result;
  /// Segments processed by THIS invocation (not counting checkpointed
  /// work restored from the journal).
  uint64_t segments = 0;
  /// State was restored from an existing checkpoint.
  bool resumed = false;
  /// The source was exhausted — the result covers the whole input. False
  /// when the run stopped early (max_segments reached, or a persistent
  /// source error; see result.source_status).
  bool complete = false;
  /// Newest snapshot generation written by this run (or restored from,
  /// if this run wrote none). 0 = no checkpoint exists.
  uint64_t generation = 0;
  /// The newest generation was damaged and the run fell back to the
  /// previous one; `recovery_reason` says what was wrong with it.
  bool recovered_previous_generation = false;
  std::string recovery_reason;
};

/// Runs `options`' pipeline over `source` with journaling as described
/// above. The source must support resume (MmapChunkSource,
/// VectorChunkSource). Fails without touching the source if the
/// journal manifest exists but no retained generation is intact, or the
/// checkpoint was written by an incompatible configuration (different
/// shard count, dataset, corpus mode, or analysis limits — checked via
/// a fingerprint) or format version.
util::Result<JournalRunResult> RunWithJournal(const PipelineOptions& options,
                                              ChunkSource& source,
                                              const JournalOptions& journal);

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_JOURNAL_H_
