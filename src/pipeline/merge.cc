#include "pipeline/merge.h"

#include "analysis/operator_set.h"
#include "corpus/ingest.h"
#include "corpus/report.h"

namespace sparqlog::pipeline {

PipelineResult MergeShards(const std::vector<std::unique_ptr<Shard>>& shards) {
  PipelineResult result;
  for (const auto& shard : shards) {
    result.stats.Merge(shard->stats());
    result.analysis.MergeFrom(shard->analyzer());
  }
  return result;
}

namespace {

void DigestHistogram(const util::BucketHistogram& h,
                     std::vector<uint64_t>& out) {
  for (int v = 0; v <= h.max_direct(); ++v) out.push_back(h.Count(v));
  out.push_back(h.Overflow());
}

void DigestShapes(const corpus::ShapeCounts& s, std::vector<uint64_t>& out) {
  out.insert(out.end(),
             {s.total, s.single_edge, s.chain, s.chain_set, s.star, s.tree,
              s.forest, s.cycle, s.flower, s.flower_set, s.treewidth_le2,
              s.treewidth_3, s.treewidth_gt3, s.single_edge_with_constants});
  for (const auto& [girth, n] : s.girth) {
    out.push_back(static_cast<uint64_t>(girth));
    out.push_back(n);
  }
}

}  // namespace

std::vector<uint64_t> StatisticsDigest(const corpus::CorpusAnalyzer& a) {
  std::vector<uint64_t> out;

  const corpus::KeywordCounts& k = a.keywords();
  out.insert(out.end(),
             {k.total,      k.select,  k.ask,    k.describe, k.construct,
              k.distinct,   k.limit,   k.offset, k.order_by, k.reduced,
              k.filter,     k.conj,    k.union_, k.optional, k.graph,
              k.not_exists, k.minus,   k.exists, k.count,    k.max,
              k.min,        k.avg,     k.sum,    k.group_by, k.having,
              k.service,    k.bind,    k.values});

  const analysis::OperatorSetDistribution& o = a.operator_sets();
  out.insert(out.end(), o.exact, o.exact + 32);
  out.push_back(o.other);
  out.push_back(o.total);

  const corpus::ProjectionStats& p = a.projection();
  out.insert(out.end(),
             {p.total, p.with_projection, p.select_with_projection,
              p.ask_with_projection, p.indeterminate, p.with_subqueries});

  const corpus::FragmentStats& f = a.fragments();
  out.insert(out.end(), {f.select_ask, f.aof, f.cq, f.cpf, f.cqf,
                         f.well_designed, f.cqof, f.wide_interface});
  DigestHistogram(f.cq_sizes, out);
  DigestHistogram(f.cqf_sizes, out);
  DigestHistogram(f.cqof_sizes, out);

  DigestShapes(a.cq_shapes(), out);
  DigestShapes(a.cqf_shapes(), out);
  DigestShapes(a.cqof_shapes(), out);

  const corpus::HypergraphStats& h = a.hypergraphs();
  out.insert(out.end(),
             {h.total, h.ghw1, h.ghw2, h.ghw3, h.ghw_more,
              h.decompositions_gt10_nodes, h.decompositions_gt100_nodes});

  const corpus::PathStats& q = a.paths();
  out.insert(out.end(), {q.total_paths, q.trivial_negated, q.trivial_inverse,
                         q.navigational, q.with_inverse, q.not_ctract});
  for (const auto& [type, n] : q.by_type) {
    out.push_back(static_cast<uint64_t>(type));
    out.push_back(n);
  }

  for (const auto& [dataset, ts] : a.per_dataset()) {
    out.push_back(corpus::HashBytes(dataset));
    out.insert(out.end(),
               {ts.select_ask, ts.all_queries, ts.triple_sum, ts.max_triples});
    DigestHistogram(ts.histogram, out);
  }
  return out;
}

}  // namespace sparqlog::pipeline
