#ifndef SPARQLOG_PIPELINE_STREAK_STAGE_H_
#define SPARQLOG_PIPELINE_STREAK_STAGE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "streaks/streaks.h"

namespace sparqlog::pipeline {

struct StreakStageOptions {
  streaks::StreakOptions streak;
  /// Worker threads. 0 means hardware concurrency.
  int threads = 0;
  /// Queries per chunk. 0 derives one chunk per worker (clamped so a
  /// chunk is never smaller than the warmup overlap is wide).
  size_t chunk_size = 0;
  /// Metrics registry + span tracing switches (both default off).
  obs::TelemetryOptions telemetry;
};

/// Output of one sharded streak run.
struct StreakStageResult {
  streaks::StreakReport report;
  /// Cascade counters summed over every worker (warmup re-scans
  /// included, so totals exceed the serial detector's by the overlap).
  streaks::PrefilterStats prefilter;
  size_t chunks = 0;
  int threads = 0;
  /// Merged per-worker metrics; engaged iff telemetry was requested.
  std::optional<obs::RunTelemetry> telemetry;
  /// Per-worker span tracks; engaged iff tracing was requested.
  std::optional<obs::TraceData> trace;
};

/// Parallel streak detection over an ordered query log (Section 8).
///
/// The log is split into contiguous chunks. Each worker re-runs the
/// similarity window over the `window`-sized overlap region preceding
/// its chunk (discarding those results) and then records, for every
/// query of the chunk, the gaps of the predecessors it matches. Because
/// a query's matches — and the has-later-similar blockers between them
/// — only involve queries at most `window` positions back, the warmup
/// reconstructs the serial window state exactly, so every worker emits
/// exactly the edges the serial detector would. A cheap serial stitch
/// pass then folds the edges into streak lengths with StreakChainTracker
/// (streaks spanning chunk boundaries are resolved here) and merges the
/// per-chunk partial reports via StreakReport::Merge. The result is
/// bit-identical to StreakDetector for every thread and chunk count.
class StreakStage {
 public:
  explicit StreakStage(StreakStageOptions options = {});

  StreakStageResult Run(const std::vector<std::string>& queries) const;

  /// The resolved worker count.
  int threads() const { return threads_; }

 private:
  StreakStageOptions options_;
  int threads_;
};

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_STREAK_STAGE_H_
