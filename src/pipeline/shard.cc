#include "pipeline/shard.h"

namespace sparqlog::pipeline {

Shard::Shard(const ShardOptions& options)
    : ingestor_(options.parser_options) {
  // The analyzer consumes whichever corpus the run targets, as a gate:
  // the budgeted analyzer may return kTimeout, moving the query to the
  // abandoned bucket (with unlimited limits the gate always passes and
  // the behaviour is identical to the old plain sink). Capturing `this`
  // is safe: Shard is pinned (non-copyable, non-movable).
  auto gate = [this, dataset = options.dataset,
               limits = options.analysis_limits](const sparql::Query& q) {
    return analyzer_.AddQueryBudgeted(q, dataset, limits);
  };
  if (options.use_valid_corpus) {
    ingestor_.set_valid_gate(std::move(gate));
  } else {
    ingestor_.set_unique_gate(std::move(gate));
  }
}

void Shard::SaveState(std::string& out, corpus::TermDictionary& dict) const {
  ingestor_.SaveState(out);
  analyzer_.SaveState(out, dict);
}

bool Shard::LoadState(std::string_view& in,
                      const corpus::TermDictionary& dict) {
  return ingestor_.LoadState(in) && analyzer_.LoadState(in, dict);
}

size_t ShardIndexFor(const corpus::ParsedLine& entry, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t key = entry.valid ? entry.canonical_hash : entry.line_hash;
  return static_cast<size_t>(key % num_shards);
}

}  // namespace sparqlog::pipeline
