#include "pipeline/shard.h"

namespace sparqlog::pipeline {

Shard::Shard(const ShardOptions& options)
    : ingestor_(options.parser_options) {
  // The analyzer consumes whichever corpus the run targets. Capturing
  // `this` is safe: Shard is pinned (non-copyable, non-movable).
  auto sink = [this, dataset = options.dataset](const sparql::Query& q) {
    analyzer_.AddQuery(q, dataset);
  };
  if (options.use_valid_corpus) {
    ingestor_.set_valid_sink(std::move(sink));
  } else {
    ingestor_.set_unique_sink(std::move(sink));
  }
}

size_t ShardIndexFor(const corpus::ParsedLine& entry, size_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t key = entry.valid ? entry.canonical_hash : entry.line_hash;
  return static_cast<size_t>(key % num_shards);
}

}  // namespace sparqlog::pipeline
