#include "pipeline/pipeline.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/alloc_tracker.h"
#include "pipeline/merge.h"
#include "sparql/parser.h"

namespace sparqlog::pipeline {

bool IstreamLineSource::NextChunk(size_t max_lines,
                                  std::vector<std::string>& out) {
  out.clear();
  std::string line;
  while (out.size() < max_lines && std::getline(in_, line)) {
    // CRLF parity with MmapChunkSource: same bytes, same lines.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.push_back(std::move(line));
  }
  return !out.empty();
}

bool VectorLineSource::NextChunk(size_t max_lines,
                                 std::vector<std::string>& out) {
  out.clear();
  while (out.size() < max_lines && next_ < lines_.size()) {
    out.push_back(lines_[next_++]);
  }
  return !out.empty();
}

ParallelLogPipeline::ParallelLogPipeline(PipelineOptions options)
    : options_(std::move(options)) {
  threads_ = options_.threads > 0
                 ? options_.threads
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (threads_ < 1) threads_ = 1;
}

namespace {

/// Chunk with a stable id so trace spans from different stages can be
/// correlated ("which chunk was parsing while shard 3 stalled?").
struct NumberedChunk {
  uint64_t id = 0;
  LineChunk data;
};

/// Routed batch: the entries of one chunk bound for one shard.
struct ShardBatch {
  uint64_t chunk = 0;
  /// Keeps the chunk's parse scratch (whose arena owns every Query in
  /// `entries`) alive until the last shard is done consuming. The
  /// shared_ptr's deleter resets the scratch and returns it to the
  /// worker pool. Declared before `entries` deliberately: members are
  /// destroyed in reverse declaration order, and the entries' Query
  /// destructors call deallocate on the scratch's arena — the arena
  /// must still exist (and must not be reset) while they run.
  std::shared_ptr<corpus::ParseScratch> keepalive;
  std::vector<corpus::ParsedLine> entries;
};

/// Mutex-guarded free list of parse scratches. Workers take one per
/// chunk; the ShardBatch keepalive returns it (reset) once every shard
/// has consumed the chunk's entries. Steady state: a handful of warm
/// scratches cycling with zero heap traffic.
class ScratchPool {
 public:
  std::shared_ptr<corpus::ParseScratch> Acquire() {
    std::unique_ptr<corpus::ParseScratch> s;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        s = std::move(free_.back());
        free_.pop_back();
      }
    }
    if (!s) s = std::make_unique<corpus::ParseScratch>();
    return std::shared_ptr<corpus::ParseScratch>(
        s.release(), [this](corpus::ParseScratch* p) {
          p->Reset();
          std::lock_guard<std::mutex> lock(mu_);
          free_.emplace_back(p);
        });
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<corpus::ParseScratch>> free_;
};

/// Shared collector for quarantined lines. The mutex is only ever
/// touched on the exception path — a fault-free run never locks it.
/// Samples are kept in (chunk, line_index) order and capped, so the
/// report is deterministic regardless of which worker hit which fault
/// first.
class QuarantineCollector {
 public:
  explicit QuarantineCollector(size_t max_samples)
      : max_samples_(max_samples) {}

  void Record(uint64_t chunk, uint64_t line_index, std::string_view line,
              const char* reason) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    ++report_.count;
    // Capturing the sample allocates; under genuine memory exhaustion
    // the capture may fail, in which case the sample is dropped but the
    // count (and the stats' quarantined bucket) stays correct.
    try {
      QuarantineSample sample;
      sample.chunk = chunk;
      sample.line_index = line_index;
      sample.line.assign(line.data(), line.size());
      sample.reason = reason;
      report_.samples.push_back(std::move(sample));
      std::sort(report_.samples.begin(), report_.samples.end(),
                [](const QuarantineSample& a, const QuarantineSample& b) {
                  return a.chunk != b.chunk ? a.chunk < b.chunk
                                            : a.line_index < b.line_index;
                });
      if (report_.samples.size() > max_samples_) {
        report_.samples.resize(max_samples_);
      }
    } catch (...) {
    }
  }

  QuarantineReport Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(report_);
  }

 private:
  std::mutex mu_;
  const size_t max_samples_;
  QuarantineReport report_;
};

/// Bounded retries for TransientChunkError before the reader gives up
/// and treats the failure as persistent.
constexpr int kMaxTransientRetries = 3;

}  // namespace

PipelineResult ParallelLogPipeline::Run(ChunkSource& source) {
  std::vector<std::unique_ptr<Shard>> local_shards;
  return Run(source, local_shards);
}

std::vector<std::unique_ptr<Shard>> ParallelLogPipeline::MakeShards() const {
  ShardOptions shard_options;
  shard_options.dataset = options_.dataset;
  shard_options.use_valid_corpus = options_.use_valid_corpus;
  shard_options.parser_options = options_.parser_options;
  shard_options.analysis_limits = options_.analysis_limits;
  std::vector<std::unique_ptr<Shard>> out;
  const size_t n = shards();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::make_unique<Shard>(shard_options));
  }
  return out;
}

PipelineResult ParallelLogPipeline::Run(
    ChunkSource& source, std::vector<std::unique_ptr<Shard>>& shards) {
  // Caller-owned shards (journal resume) pin the shard count: routing is
  // hash % num_shards, so continuing with a different count would split
  // duplicate classes across shards.
  const size_t num_shards = shards.empty() ? this->shards() : shards.size();
  const size_t chunk_size = options_.chunk_size > 0 ? options_.chunk_size : 1;
  const size_t capacity =
      options_.queue_capacity > 0 ? options_.queue_capacity : 1;
  // Telemetry: worker w owns slot w of `telem` (and ring w when
  // tracing), mutates it lock-free, and the run merges the slots once
  // after the joins. Slot 0 = reader, 1..T = parse workers,
  // 1+T..T+S = shard consumers.
  const bool collect = options_.telemetry.enabled();
  const bool tracing = collect && options_.telemetry.trace;
  const size_t telem_count = 1 + static_cast<size_t>(threads_) + num_shards;
  std::vector<obs::RunTelemetry> telem(collect ? telem_count : 0);
  std::vector<obs::TraceRing> rings;
  if (tracing) {
    rings.reserve(telem_count);
    for (size_t i = 0; i < telem_count; ++i) {
      rings.emplace_back(options_.telemetry.trace_capacity);
    }
  }
  const uint64_t run_start = obs::NowNsIf(collect);
  const uint64_t alloc_bytes0 = collect ? obs::AllocatedBytes() : 0;
  const uint64_t alloc_count0 = collect ? obs::AllocationCount() : 0;

  if (shards.empty()) {
    shards = MakeShards();
  }

  using Batch = std::vector<corpus::ParsedLine>;
  // Shared scratch pool: declared before the queues/threads so it
  // outlives every in-flight ShardBatch keepalive.
  ScratchPool scratch_pool;
  BoundedQueue<NumberedChunk> chunk_queue(capacity);
  std::vector<std::unique_ptr<BoundedQueue<ShardBatch>>> shard_queues;
  shard_queues.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shard_queues.push_back(std::make_unique<BoundedQueue<ShardBatch>>(capacity));
  }

  std::atomic<uint64_t> lines_consumed{0};
  QuarantineCollector quarantine(options_.quarantine_max_samples);
  const bool contain = options_.fault_containment;

  // Shard consumers: single reader per shard, so Shard needs no locks.
  std::vector<std::thread> shard_threads;
  shard_threads.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shard_threads.emplace_back([&, i] {
      obs::RunTelemetry* rt =
          collect ? &telem[1 + static_cast<size_t>(threads_) + i] : nullptr;
      obs::TraceRing* ring =
          tracing ? &rings[1 + static_cast<size_t>(threads_) + i] : nullptr;
      // Shard-local dedup/analysis counters (items, malformed, unique)
      // land in this worker's registry slot via the ingestor hook.
      if (rt) shards[i]->set_telemetry(rt);
      const uint64_t tb0 = rt ? obs::ThreadAllocatedBytes() : 0;
      const uint64_t tc0 = rt ? obs::ThreadAllocationCount() : 0;
      while (std::optional<ShardBatch> batch = shard_queues[i]->Pop()) {
        uint64_t t0 = obs::NowNsIf(rt != nullptr);
        for (const corpus::ParsedLine& entry : batch->entries) {
          shards[i]->Consume(entry);
        }
        if constexpr (obs::kTelemetryEnabled) {
          if (rt) {
            uint64_t t1 = obs::NowNs();
            obs::StageMetrics& m = rt->stage(obs::kStageShard);
            ++m.chunks;
            m.chunk_ns.Record(t1 - t0);
            if (ring) {
              ring->Record(obs::kStageShard, batch->chunk, t0, t1);
            }
          }
        }
      }
      if (rt) {
        obs::StageMetrics& m = rt->stage(obs::kStageShard);
        m.alloc_bytes += obs::ThreadAllocatedBytes() - tb0;
        m.allocs += obs::ThreadAllocationCount() - tc0;
      }
    });
  }

  // Parse workers: decode + parse + canonicalize in parallel, then
  // route every query entry to the shard owning its hash.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    workers.emplace_back([&, w] {
      obs::RunTelemetry* rt =
          collect ? &telem[1 + static_cast<size_t>(w)] : nullptr;
      obs::TraceRing* ring = tracing ? &rings[1 + static_cast<size_t>(w)] : nullptr;
      if (rt) rt->shard_queries.resize(num_shards, 0);
      const uint64_t tb0 = rt ? obs::ThreadAllocatedBytes() : 0;
      const uint64_t tc0 = rt ? obs::ThreadAllocationCount() : 0;
      sparql::Parser parser(options_.parser_options);
      uint64_t local_lines = 0;
      std::vector<Batch> buckets(num_shards);
      while (std::optional<NumberedChunk> chunk = chunk_queue.Pop()) {
        uint64_t t0 = obs::NowNsIf(rt != nullptr);
        local_lines += chunk->data.lines.size();
        for (Batch& b : buckets) b.clear();
        // One scratch per chunk: every line's AST lands on its arena,
        // and the ShardBatch keepalives below return it (reset) to the
        // pool once the last shard finishes with this chunk.
        std::shared_ptr<corpus::ParseScratch> scratch =
            scratch_pool.Acquire();
        bool chunk_ok = true;
        if (contain) {
          // Containment scope: a throw anywhere in the chunk's parse
          // loop (bad_alloc included — injected alloc failures are only
          // eligible inside the AllocFaultScope) falls through to the
          // recovery pass below instead of killing the run.
          try {
            obs::AllocFaultScope fault_scope;
            for (std::string_view line : chunk->data.lines) {
              if (options_.parse_fault_hook) options_.parse_fault_hook(line);
              corpus::ParsedLine parsed =
                  corpus::ParseLogLine(parser, line, *scratch);
              if (!parsed.is_query) continue;  // noise: dropped, not routed
              buckets[ShardIndexFor(parsed, num_shards)].push_back(
                  std::move(parsed));
            }
          } catch (...) {
            chunk_ok = false;
          }
        } else {
          for (std::string_view line : chunk->data.lines) {
            if (options_.parse_fault_hook) options_.parse_fault_hook(line);
            corpus::ParsedLine parsed =
                corpus::ParseLogLine(parser, line, *scratch);
            if (!parsed.is_query) continue;
            buckets[ShardIndexFor(parsed, num_shards)].push_back(
                std::move(parsed));
          }
        }
        if (!chunk_ok) {
          // Recovery: the fast pass left arena-backed entries behind, so
          // drop them (before the scratch — their Query destructors touch
          // its arena) and reprocess every line on the heap path with a
          // per-line guard. Lines that still throw are quarantined: they
          // count toward Total in the quarantined bucket and are sampled
          // for offline reproduction. One-shot faults (an injected or
          // transient bad_alloc) parse cleanly here and lose nothing.
          for (Batch& b : buckets) b.clear();
          scratch.reset();
          for (size_t j = 0; j < chunk->data.lines.size(); ++j) {
            std::string_view line = chunk->data.lines[j];
            corpus::ParsedLine parsed;
            try {
              if (options_.parse_fault_hook) options_.parse_fault_hook(line);
              std::string decode_buf;
              parsed = corpus::ParseLogLine(parser, line, decode_buf);
            } catch (const std::exception& e) {
              parsed = corpus::ParsedLine();
              parsed.is_query = true;
              parsed.quarantined = true;
              parsed.line_hash = corpus::HashBytes(line);
              quarantine.Record(chunk->id, j, line, e.what());
            } catch (...) {
              parsed = corpus::ParsedLine();
              parsed.is_query = true;
              parsed.quarantined = true;
              parsed.line_hash = corpus::HashBytes(line);
              quarantine.Record(chunk->id, j, line, "unknown exception");
            }
            if (!parsed.is_query) continue;
            buckets[ShardIndexFor(parsed, num_shards)].push_back(
                std::move(parsed));
          }
        }
        if constexpr (obs::kTelemetryEnabled) {
          if (rt) {
            uint64_t routed = 0, malformed = 0;
            for (size_t i = 0; i < num_shards; ++i) {
              routed += buckets[i].size();
              rt->shard_queries[i] += buckets[i].size();
              for (const corpus::ParsedLine& e : buckets[i]) {
                if (!e.valid && !e.quarantined) ++malformed;
              }
            }
            uint64_t t1 = obs::NowNs();
            obs::StageMetrics& m = rt->stage(obs::kStageParse);
            ++m.chunks;
            m.items_in += chunk->data.lines.size();
            m.bytes_in += chunk->data.bytes;
            m.items_out += routed;
            m.malformed += malformed;
            m.chunk_ns.Record(t1 - t0);
            if (ring) ring->Record(obs::kStageParse, chunk->id, t0, t1);
          }
        }
        for (size_t i = 0; i < num_shards; ++i) {
          if (buckets[i].empty()) continue;
          shard_queues[i]->Push(
              ShardBatch{chunk->id, scratch, std::move(buckets[i])});
          buckets[i] = Batch();
        }
      }
      if (rt) {
        obs::StageMetrics& m = rt->stage(obs::kStageParse);
        m.alloc_bytes += obs::ThreadAllocatedBytes() - tb0;
        m.allocs += obs::ThreadAllocationCount() - tc0;
      }
      lines_consumed.fetch_add(local_lines, std::memory_order_relaxed);
    });
  }

  // Reader (this thread): stream chunks in; Push blocks when the
  // parsers fall behind, bounding memory.
  util::Status source_status;
  {
    obs::RunTelemetry* rt = collect ? &telem[0] : nullptr;
    obs::TraceRing* ring = tracing ? &rings[0] : nullptr;
    const uint64_t tb0 = rt ? obs::ThreadAllocatedBytes() : 0;
    const uint64_t tc0 = rt ? obs::ThreadAllocationCount() : 0;
    NumberedChunk chunk;
    uint64_t next_id = 0;
    int transient_retries = 0;
    for (;;) {
      uint64_t t0 = obs::NowNsIf(rt != nullptr);
      bool more;
      if (contain) {
        // Transient source errors (short read, EINTR, injected faults)
        // retry a bounded number of times; persistent errors stop the
        // input early, with the failure surfaced as source_status and
        // every line read so far still fully accounted.
        try {
          more = source.NextChunk(chunk_size, chunk.data);
          transient_retries = 0;
        } catch (const TransientChunkError& e) {
          if (++transient_retries <= kMaxTransientRetries) continue;
          source_status = util::Status::Internal(
              std::string("chunk source failed after ") +
              std::to_string(kMaxTransientRetries) +
              " retries: " + e.what());
          break;
        } catch (const std::exception& e) {
          source_status = util::Status::Internal(
              std::string("chunk source error: ") + e.what());
          break;
        }
      } else {
        more = source.NextChunk(chunk_size, chunk.data);
      }
      if constexpr (obs::kTelemetryEnabled) {
        if (rt && more) {
          uint64_t t1 = obs::NowNs();
          obs::StageMetrics& m = rt->stage(obs::kStageReader);
          ++m.chunks;
          m.items_in += chunk.data.lines.size();
          m.items_out += chunk.data.lines.size();
          m.bytes_in += chunk.data.bytes;
          m.chunk_ns.Record(t1 - t0);
          if (ring) ring->Record(obs::kStageReader, next_id, t0, t1);
        }
      }
      if (!more) break;
      chunk.id = next_id++;
      chunk_queue.Push(std::move(chunk));
      chunk = NumberedChunk();
    }
    if (rt) {
      obs::StageMetrics& m = rt->stage(obs::kStageReader);
      m.alloc_bytes += obs::ThreadAllocatedBytes() - tb0;
      m.allocs += obs::ThreadAllocationCount() - tc0;
    }
  }
  chunk_queue.Close();
  for (std::thread& t : workers) t.join();
  for (auto& q : shard_queues) q->Close();
  for (std::thread& t : shard_threads) t.join();

  PipelineResult result = MergeShards(shards);
  result.lines = lines_consumed.load(std::memory_order_relaxed);
  result.quarantine = quarantine.Take();
  result.source_status = std::move(source_status);

  if (collect) {
    obs::RunTelemetry merged;
    merged.shard_queries.resize(num_shards, 0);
    for (const obs::RunTelemetry& t : telem) merged.Merge(t);
    merged.chunk_queue = chunk_queue.Stats();
    for (const auto& q : shard_queues) merged.shard_queues.Merge(q->Stats());
    merged.wall_ns = obs::NowNs() - run_start;
    merged.workers = telem_count;
    merged.run_alloc_bytes = obs::AllocatedBytes() - alloc_bytes0;
    merged.run_allocs = obs::AllocationCount() - alloc_count0;
    result.telemetry = std::move(merged);
    if (tracing) {
      obs::TraceData trace;
      trace.origin_ns = run_start;
      trace.wall_ns = result.telemetry->wall_ns;
      trace.tracks.reserve(telem_count);
      for (size_t i = 0; i < telem_count; ++i) {
        obs::TraceTrack track;
        if (i == 0) {
          track.name = "reader";
        } else if (i <= static_cast<size_t>(threads_)) {
          track.name = "parse-" + std::to_string(i - 1);
        } else {
          track.name =
              "shard-" + std::to_string(i - 1 - static_cast<size_t>(threads_));
        }
        track.events = rings[i].Drain();
        track.dropped = rings[i].dropped();
        trace.tracks.push_back(std::move(track));
      }
      result.trace = std::move(trace);
    }
  }
  return result;
}

PipelineResult ParallelLogPipeline::Run(LineSource& source) {
  LineSourceAdapter adapter(source);
  return Run(static_cast<ChunkSource&>(adapter));
}

PipelineResult ParallelLogPipeline::Run(const std::vector<std::string>& lines) {
  VectorChunkSource source(lines);
  return Run(static_cast<ChunkSource&>(source));
}

}  // namespace sparqlog::pipeline
