#include "pipeline/pipeline.h"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>

#include "pipeline/merge.h"
#include "sparql/parser.h"

namespace sparqlog::pipeline {

bool IstreamLineSource::NextChunk(size_t max_lines,
                                  std::vector<std::string>& out) {
  out.clear();
  std::string line;
  while (out.size() < max_lines && std::getline(in_, line)) {
    out.push_back(std::move(line));
  }
  return !out.empty();
}

bool VectorLineSource::NextChunk(size_t max_lines,
                                 std::vector<std::string>& out) {
  out.clear();
  while (out.size() < max_lines && next_ < lines_.size()) {
    out.push_back(lines_[next_++]);
  }
  return !out.empty();
}

ParallelLogPipeline::ParallelLogPipeline(PipelineOptions options)
    : options_(std::move(options)) {
  threads_ = options_.threads > 0
                 ? options_.threads
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (threads_ < 1) threads_ = 1;
}

PipelineResult ParallelLogPipeline::Run(LineSource& source) {
  const size_t num_shards = shards();
  const size_t chunk_size = options_.chunk_size > 0 ? options_.chunk_size : 1;
  const size_t capacity =
      options_.queue_capacity > 0 ? options_.queue_capacity : 1;

  ShardOptions shard_options;
  shard_options.dataset = options_.dataset;
  shard_options.use_valid_corpus = options_.use_valid_corpus;
  shard_options.parser_options = options_.parser_options;

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<Shard>(shard_options));
  }

  using Chunk = std::vector<std::string>;
  using Batch = std::vector<corpus::ParsedLine>;
  BoundedQueue<Chunk> chunk_queue(capacity);
  std::vector<std::unique_ptr<BoundedQueue<Batch>>> shard_queues;
  shard_queues.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shard_queues.push_back(std::make_unique<BoundedQueue<Batch>>(capacity));
  }

  std::atomic<uint64_t> lines_consumed{0};

  // Shard consumers: single reader per shard, so Shard needs no locks.
  std::vector<std::thread> shard_threads;
  shard_threads.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shard_threads.emplace_back([&, i] {
      while (std::optional<Batch> batch = shard_queues[i]->Pop()) {
        for (const corpus::ParsedLine& entry : *batch) {
          shards[i]->Consume(entry);
        }
      }
    });
  }

  // Parse workers: decode + parse + canonicalize in parallel, then
  // route every query entry to the shard owning its hash.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads_));
  for (int w = 0; w < threads_; ++w) {
    workers.emplace_back([&] {
      sparql::Parser parser(options_.parser_options);
      uint64_t local_lines = 0;
      std::vector<Batch> buckets(num_shards);
      std::string decode_buf;  // per-worker URL-decode scratch
      while (std::optional<Chunk> chunk = chunk_queue.Pop()) {
        local_lines += chunk->size();
        for (Batch& b : buckets) b.clear();
        for (const std::string& line : *chunk) {
          corpus::ParsedLine parsed =
              corpus::ParseLogLine(parser, line, decode_buf);
          if (!parsed.is_query) continue;  // noise: dropped, not routed
          size_t idx = ShardIndexFor(parsed, num_shards);
          buckets[idx].push_back(std::move(parsed));
        }
        for (size_t i = 0; i < num_shards; ++i) {
          if (buckets[i].empty()) continue;
          shard_queues[i]->Push(std::move(buckets[i]));
          buckets[i] = Batch();
        }
      }
      lines_consumed.fetch_add(local_lines, std::memory_order_relaxed);
    });
  }

  // Reader (this thread): stream chunks in; Push blocks when the
  // parsers fall behind, bounding memory.
  Chunk chunk;
  while (source.NextChunk(chunk_size, chunk)) {
    chunk_queue.Push(std::move(chunk));
    chunk = Chunk();
  }
  chunk_queue.Close();
  for (std::thread& t : workers) t.join();
  for (auto& q : shard_queues) q->Close();
  for (std::thread& t : shard_threads) t.join();

  PipelineResult result = MergeShards(shards);
  result.lines = lines_consumed.load(std::memory_order_relaxed);
  return result;
}

PipelineResult ParallelLogPipeline::Run(const std::vector<std::string>& lines) {
  VectorLineSource source(lines);
  return Run(source);
}

}  // namespace sparqlog::pipeline
