#ifndef SPARQLOG_PIPELINE_MERGE_H_
#define SPARQLOG_PIPELINE_MERGE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "pipeline/pipeline.h"
#include "pipeline/shard.h"

namespace sparqlog::pipeline {

/// Folds per-shard results into one PipelineResult. Because shards
/// partition the canonical-hash space, their Total/Valid/Unique counts
/// and analyzer aggregates are disjoint and every statistic merges by
/// plain summation — the merged result equals the serial path's output
/// exactly. The per-aggregate Merge() methods live with their classes
/// (CorpusStats, KeywordCounts, TripleStats, ProjectionStats,
/// FragmentStats, ShapeCounts, HypergraphStats, PathStats,
/// OperatorSetDistribution, util::BucketHistogram).
PipelineResult MergeShards(const std::vector<std::unique_ptr<Shard>>& shards);

/// Flattens every aggregate of an analyzer — keyword counters, operator
/// sets, projection, fragments (histograms included), shapes (girth
/// maps included), hypergraphs, paths (type maps included), and the
/// per-dataset triple statistics — into one deterministic counter
/// vector. Two analyzers hold identical statistics iff their digests
/// are equal; drivers use this to verify serial/parallel equivalence
/// without field-by-field plumbing.
std::vector<uint64_t> StatisticsDigest(const corpus::CorpusAnalyzer& a);

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_MERGE_H_
