#include "pipeline/journal.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "corpus/dictionary.h"
#include "pipeline/merge.h"
#include "util/fnv.h"
#include "util/snapshot_io.h"
#include "util/vbyte.h"

namespace sparqlog::pipeline {

namespace {

namespace snap = util::snapshot;

/// Journal-level schema version inside the snapshot container (the
/// container has its own format version). Bump when the meta layout or
/// the shard blob encoding changes incompatibly.
constexpr uint64_t kJournalVersion = 2;

/// Snapshot section ids. Per-shard state lives at kShardSectionBase + i.
constexpr uint64_t kMetaSection = 1;
constexpr uint64_t kDictionarySection = 2;
constexpr uint64_t kShardSectionBase = 16;

/// Everything that changes the meaning or layout of the checkpointed
/// shard state. A journal written under one fingerprint must not be
/// resumed under another: a different shard count re-routes duplicate
/// classes, different limits re-bucket abandoned queries.
uint64_t OptionsFingerprint(const PipelineOptions& o, size_t num_shards) {
  util::Fnv1a h;
  auto mix = [&h](uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    h.Update(std::string_view(bytes, sizeof(bytes)));
  };
  h.Update(o.dataset);
  mix(o.dataset.size());
  mix(o.use_valid_corpus ? 1 : 0);
  mix(o.analysis_limits.ghw_steps);
  mix(o.analysis_limits.treewidth_steps);
  mix(o.analysis_limits.girth_steps);
  mix(num_shards);
  return h.digest();
}

/// Caps the inner source at `max_chunks` reads so the journal can
/// checkpoint between segments. Exceptions pass through untouched (the
/// pipeline reader's containment sees them as usual).
class BoundedChunkSource : public ChunkSource {
 public:
  BoundedChunkSource(ChunkSource& inner, size_t max_chunks)
      : inner_(inner), max_chunks_(max_chunks) {}

  bool NextChunk(size_t max_lines, LineChunk& out) override {
    if (served_ >= max_chunks_) return false;
    if (!inner_.NextChunk(max_lines, out)) {
      exhausted_ = true;
      return false;
    }
    ++served_;
    return true;
  }

  /// The inner source itself ran out (as opposed to the segment cap).
  bool exhausted() const { return exhausted_; }

  /// Chunks actually handed out by this segment.
  size_t served() const { return served_; }

 private:
  ChunkSource& inner_;
  size_t max_chunks_;
  size_t served_ = 0;
  bool exhausted_ = false;
};

util::Status WriteCheckpoint(snap::SnapshotStore& store, uint64_t fingerprint,
                             uint64_t offset, uint64_t lines_total,
                             const std::vector<std::unique_ptr<Shard>>& shards,
                             uint64_t& generation_out) {
  snap::SnapshotWriter writer;
  corpus::TermDictionary dict;

  // Shards first: SaveState populates the dictionary, which must be
  // complete before its own section is encoded. (Sections load by id,
  // so file order does not matter.)
  for (size_t i = 0; i < shards.size(); ++i) {
    std::string blob;
    shards[i]->SaveState(blob, dict);
    writer.AddSection(kShardSectionBase + i, std::move(blob));
  }

  std::string dict_blob;
  dict.EncodeTo(dict_blob);
  writer.AddSection(kDictionarySection, std::move(dict_blob));

  std::string meta;
  util::vbyte::PutVarint(meta, kJournalVersion);
  util::vbyte::PutVarint(meta, fingerprint);
  util::vbyte::PutVarint(meta, shards.size());
  util::vbyte::PutVarint(meta, offset);
  util::vbyte::PutVarint(meta, lines_total);
  // Semantic integrity check on top of the container CRCs: the digest
  // of the merged analyzer state must reproduce on load.
  PipelineResult merged = MergeShards(shards);
  std::vector<uint64_t> digest = StatisticsDigest(merged.analysis);
  util::vbyte::PutVarint(meta, digest.size());
  for (uint64_t w : digest) util::vbyte::PutVarint(meta, w);
  writer.AddSection(kMetaSection, std::move(meta));

  auto gen = store.Save(writer);
  if (!gen.ok()) return gen.status();
  generation_out = gen.value();
  return util::Status::OK();
}

/// Restores one loaded (container-verified) snapshot into freshly
/// constructed shards. Returns OK, kUnsupported for "written by an
/// incompatible configuration or schema" (not recoverable by falling
/// back — the previous generation shares the configuration), or
/// kInvalidArgument for content that doesn't hang together (treated as
/// corruption; the caller may fall back).
util::Status RestoreCheckpoint(const snap::Snapshot& snapshot,
                               uint64_t fingerprint, uint64_t& offset,
                               uint64_t& lines_total,
                               std::vector<std::unique_ptr<Shard>>& shards) {
  const std::string_view* meta = snapshot.section(kMetaSection);
  if (meta == nullptr) {
    return util::Status::InvalidArgument("checkpoint has no meta section");
  }
  std::string_view cursor = *meta;
  uint64_t version, fp, shard_count, digest_words;
  if (!(util::vbyte::GetVarint(cursor, version) &&
        util::vbyte::GetVarint(cursor, fp) &&
        util::vbyte::GetVarint(cursor, shard_count) &&
        util::vbyte::GetVarint(cursor, offset) &&
        util::vbyte::GetVarint(cursor, lines_total) &&
        util::vbyte::GetVarint(cursor, digest_words))) {
    return util::Status::InvalidArgument("checkpoint meta section truncated");
  }
  if (version != kJournalVersion) {
    return util::Status::Unsupported(
        "checkpoint schema version " + std::to_string(version) +
        " (this build reads " + std::to_string(kJournalVersion) + ")");
  }
  if (fp != fingerprint) {
    return util::Status::Unsupported(
        "checkpoint was written by an incompatible configuration "
        "(options fingerprint mismatch)");
  }
  if (shard_count != shards.size()) {
    return util::Status::Unsupported(
        "checkpoint has " + std::to_string(shard_count) +
        " shards, this run has " + std::to_string(shards.size()));
  }
  std::vector<uint64_t> stored(static_cast<size_t>(digest_words));
  for (uint64_t& w : stored) {
    if (!util::vbyte::GetVarint(cursor, w)) {
      return util::Status::InvalidArgument("checkpoint digest truncated");
    }
  }
  if (!cursor.empty()) {
    return util::Status::InvalidArgument(
        "checkpoint meta section has trailing bytes");
  }

  const std::string_view* dict_blob = snapshot.section(kDictionarySection);
  if (dict_blob == nullptr) {
    return util::Status::InvalidArgument(
        "checkpoint has no dictionary section");
  }
  corpus::TermDictionary dict;
  std::string_view dict_cursor = *dict_blob;
  if (!dict.DecodeFrom(dict_cursor) || !dict_cursor.empty()) {
    return util::Status::InvalidArgument(
        "checkpoint dictionary section is malformed");
  }

  for (size_t i = 0; i < shards.size(); ++i) {
    const std::string_view* blob = snapshot.section(kShardSectionBase + i);
    if (blob == nullptr) {
      return util::Status::InvalidArgument("checkpoint is missing shard " +
                                           std::to_string(i));
    }
    std::string_view shard_cursor = *blob;
    if (!shards[i]->LoadState(shard_cursor, dict) || !shard_cursor.empty()) {
      return util::Status::InvalidArgument("checkpoint shard " +
                                           std::to_string(i) +
                                           " state is malformed");
    }
  }

  PipelineResult merged = MergeShards(shards);
  if (StatisticsDigest(merged.analysis) != stored) {
    return util::Status::InvalidArgument(
        "checkpoint statistics digest does not reproduce from shard state");
  }
  return util::Status::OK();
}

void MergeQuarantine(QuarantineReport& into, QuarantineReport&& from,
                     size_t max_samples) {
  into.count += from.count;
  for (QuarantineSample& s : from.samples) {
    into.samples.push_back(std::move(s));
  }
  std::sort(into.samples.begin(), into.samples.end(),
            [](const QuarantineSample& a, const QuarantineSample& b) {
              return a.chunk != b.chunk ? a.chunk < b.chunk
                                        : a.line_index < b.line_index;
            });
  if (into.samples.size() > max_samples) {
    into.samples.resize(max_samples);
  }
}

}  // namespace

util::Result<JournalRunResult> RunWithJournal(const PipelineOptions& options,
                                              ChunkSource& source,
                                              const JournalOptions& jopts) {
  if (jopts.path.empty()) {
    return util::Status::InvalidArgument("journal: path must be set");
  }
  if (!source.SupportsResume()) {
    return util::Status::Unsupported(
        "journal: chunk source does not support resume "
        "(offset/SeekTo); use MmapChunkSource or VectorChunkSource");
  }
  const size_t chunks_per_segment =
      jopts.chunks_per_segment > 0 ? jopts.chunks_per_segment : 1;
  const snap::LoadMode load_mode =
      jopts.mmap_load ? snap::LoadMode::kMmap : snap::LoadMode::kStream;

  ParallelLogPipeline pipeline(options);
  const uint64_t fingerprint = OptionsFingerprint(options, pipeline.shards());
  snap::SnapshotStore store(jopts.path);

  std::vector<std::unique_ptr<Shard>> shards = pipeline.MakeShards();
  JournalRunResult out;
  uint64_t lines_total = 0;

  // Resume if a checkpoint manifest exists. A present-but-unusable
  // journal is a hard error: silently restarting from zero would
  // double-count the prefix the journal already covers if the caller
  // later merges runs. A damaged newest generation is NOT unusable —
  // the previous generation restores an earlier watermark and the lost
  // segment is simply re-read from the source.
  auto manifest = store.ReadManifest();
  if (!manifest.ok() &&
      manifest.status().code() != util::StatusCode::kNotFound) {
    return util::Status::InvalidArgument(
        "journal: existing checkpoint at '" + jopts.path +
        "' is corrupt or was written by an incompatible configuration (" +
        manifest.status().message() + ")");
  }
  if (manifest.ok()) {
    std::vector<uint64_t> generations{manifest.value().current};
    if (manifest.value().previous != 0) {
      generations.push_back(manifest.value().previous);
    }
    std::string reasons;
    bool restored = false;
    for (uint64_t gen : generations) {
      auto note = [&reasons, gen](const std::string& msg) {
        if (!reasons.empty()) reasons += "; ";
        reasons += "generation " + std::to_string(gen) + ": " + msg;
      };
      auto snapshot = store.LoadGeneration(gen, load_mode);
      if (!snapshot.ok()) {
        note(snapshot.status().message());
        continue;
      }
      uint64_t offset = 0;
      std::vector<std::unique_ptr<Shard>> fresh = pipeline.MakeShards();
      util::Status st = RestoreCheckpoint(snapshot.value(), fingerprint,
                                          offset, lines_total, fresh);
      if (st.code() == util::StatusCode::kUnsupported) {
        // Incompatibility is a property of the whole journal, not of
        // one damaged file; falling back cannot fix it.
        return util::Status::InvalidArgument(
            "journal: existing checkpoint at '" + jopts.path +
            "' was written by an incompatible configuration (" +
            st.message() + ")");
      }
      if (!st.ok()) {
        note(st.message());
        continue;
      }
      if (!source.SeekTo(offset)) {
        return util::Status::OutOfRange(
            "journal: checkpoint watermark is beyond the source (journal "
            "from a different input?)");
      }
      shards = std::move(fresh);
      out.resumed = true;
      out.generation = gen;
      if (gen != manifest.value().current) {
        out.recovered_previous_generation = true;
        out.recovery_reason = reasons;
      }
      restored = true;
      break;
    }
    if (!restored) {
      return util::Status::InvalidArgument(
          "journal: existing checkpoint at '" + jopts.path +
          "' is corrupt or was written by an incompatible configuration (" +
          reasons + ")");
    }
  }

  QuarantineReport all_quarantine;
  std::optional<obs::RunTelemetry> all_telemetry;
  PipelineResult last;
  uint64_t chunk_base = 0;  // chunk ordinals restart per segment; re-base so
                            // merged quarantine samples order globally
  for (;;) {
    if (jopts.max_segments > 0 && out.segments >= jopts.max_segments) break;
    BoundedChunkSource segment(source, chunks_per_segment);
    PipelineResult r = pipeline.Run(segment, shards);
    ++out.segments;
    lines_total += r.lines;
    for (QuarantineSample& s : r.quarantine.samples) s.chunk += chunk_base;
    chunk_base += segment.served();
    MergeQuarantine(all_quarantine, std::move(r.quarantine),
                    options.quarantine_max_samples);
    if (r.telemetry.has_value()) {
      if (!all_telemetry.has_value()) all_telemetry.emplace();
      all_telemetry->Merge(*r.telemetry);
    }
    const bool source_failed = !r.source_status.ok();
    const bool exhausted = segment.exhausted();
    last = std::move(r);
    util::Status st = WriteCheckpoint(store, fingerprint, source.offset(),
                                      lines_total, shards, out.generation);
    if (!st.ok()) {
      return util::Status::Internal("journal: cannot write checkpoint to '" +
                                    jopts.path + "': " + st.message());
    }
    if (source_failed) break;
    if (exhausted) {
      out.complete = true;
      break;
    }
  }

  // `last` already merges the shards' cumulative state (stats and
  // analysis span every segment, this run's and any resumed prefix);
  // only the per-segment fields need the accumulated values.
  out.result = std::move(last);
  out.result.lines = lines_total;
  out.result.quarantine = std::move(all_quarantine);
  out.result.telemetry = std::move(all_telemetry);
  return out;
}

}  // namespace sparqlog::pipeline
