#include "pipeline/journal.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "pipeline/merge.h"
#include "util/fnv.h"
#include "util/serde.h"

namespace sparqlog::pipeline {

namespace {

constexpr uint64_t kJournalMagic = 0x314C4E524A515330ULL;  // "0SQJRNL1"
constexpr uint64_t kJournalVersion = 1;

/// Everything that changes the meaning or layout of the checkpointed
/// shard state. A journal written under one fingerprint must not be
/// resumed under another: a different shard count re-routes duplicate
/// classes, different limits re-bucket abandoned queries.
uint64_t OptionsFingerprint(const PipelineOptions& o, size_t num_shards) {
  util::Fnv1a h;
  auto mix = [&h](uint64_t v) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
    h.Update(std::string_view(bytes, sizeof(bytes)));
  };
  h.Update(o.dataset);
  mix(o.dataset.size());
  mix(o.use_valid_corpus ? 1 : 0);
  mix(o.analysis_limits.ghw_steps);
  mix(o.analysis_limits.treewidth_steps);
  mix(o.analysis_limits.girth_steps);
  mix(num_shards);
  return h.digest();
}

/// Caps the inner source at `max_chunks` reads so the journal can
/// checkpoint between segments. Exceptions pass through untouched (the
/// pipeline reader's containment sees them as usual).
class BoundedChunkSource : public ChunkSource {
 public:
  BoundedChunkSource(ChunkSource& inner, size_t max_chunks)
      : inner_(inner), max_chunks_(max_chunks) {}

  bool NextChunk(size_t max_lines, LineChunk& out) override {
    if (served_ >= max_chunks_) return false;
    if (!inner_.NextChunk(max_lines, out)) {
      exhausted_ = true;
      return false;
    }
    ++served_;
    return true;
  }

  /// The inner source itself ran out (as opposed to the segment cap).
  bool exhausted() const { return exhausted_; }

 private:
  ChunkSource& inner_;
  size_t max_chunks_;
  size_t served_ = 0;
  bool exhausted_ = false;
};

bool WriteCheckpoint(const JournalOptions& jopts, uint64_t fingerprint,
                     uint64_t offset, uint64_t lines_total,
                     const std::vector<std::unique_ptr<Shard>>& shards) {
  const std::string tmp = jopts.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    util::serde::PutU64(out, kJournalMagic);
    util::serde::PutU64(out, kJournalVersion);
    util::serde::PutU64(out, fingerprint);
    util::serde::PutU64(out, shards.size());
    util::serde::PutU64(out, offset);
    util::serde::PutU64(out, lines_total);
    for (const auto& shard : shards) shard->SaveState(out);
    // Trailing integrity check: the digest of the merged analyzer
    // state. A truncated or bit-flipped checkpoint fails to reproduce
    // it on load.
    PipelineResult merged = MergeShards(shards);
    std::vector<uint64_t> digest = StatisticsDigest(merged.analysis);
    util::serde::PutU64(out, digest.size());
    for (uint64_t w : digest) util::serde::PutU64(out, w);
    out.flush();
    if (!out) return false;
  }
  // Atomic publish: rename replaces the previous checkpoint in one
  // step, so every moment in time has a complete checkpoint on disk.
  return std::rename(tmp.c_str(), jopts.path.c_str()) == 0;
}

/// Returns true and fills the outputs iff `path` holds a compatible,
/// intact checkpoint. `shards` must arrive freshly constructed.
bool LoadCheckpoint(const std::string& path, uint64_t fingerprint,
                    uint64_t& offset, uint64_t& lines_total,
                    std::vector<std::unique_ptr<Shard>>& shards) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic, version, fp, shard_count;
  if (!(util::serde::GetU64(in, magic) && util::serde::GetU64(in, version) &&
        util::serde::GetU64(in, fp) && util::serde::GetU64(in, shard_count))) {
    return false;
  }
  if (magic != kJournalMagic || version != kJournalVersion ||
      fp != fingerprint || shard_count != shards.size()) {
    return false;
  }
  if (!(util::serde::GetU64(in, offset) &&
        util::serde::GetU64(in, lines_total))) {
    return false;
  }
  for (auto& shard : shards) {
    if (!shard->LoadState(in)) return false;
  }
  uint64_t digest_words;
  if (!util::serde::GetU64(in, digest_words)) return false;
  std::vector<uint64_t> stored(digest_words);
  for (uint64_t& w : stored) {
    if (!util::serde::GetU64(in, w)) return false;
  }
  PipelineResult merged = MergeShards(shards);
  return StatisticsDigest(merged.analysis) == stored;
}

void MergeQuarantine(QuarantineReport& into, QuarantineReport&& from) {
  into.count += from.count;
  for (QuarantineSample& s : from.samples) {
    into.samples.push_back(std::move(s));
  }
  std::sort(into.samples.begin(), into.samples.end(),
            [](const QuarantineSample& a, const QuarantineSample& b) {
              return a.chunk != b.chunk ? a.chunk < b.chunk
                                        : a.line_index < b.line_index;
            });
  if (into.samples.size() > QuarantineReport::kMaxSamples) {
    into.samples.resize(QuarantineReport::kMaxSamples);
  }
}

}  // namespace

util::Result<JournalRunResult> RunWithJournal(const PipelineOptions& options,
                                              ChunkSource& source,
                                              const JournalOptions& jopts) {
  if (jopts.path.empty()) {
    return util::Status::InvalidArgument("journal: path must be set");
  }
  if (!source.SupportsResume()) {
    return util::Status::Unsupported(
        "journal: chunk source does not support resume "
        "(offset/SeekTo); use MmapChunkSource or VectorChunkSource");
  }
  const size_t chunks_per_segment =
      jopts.chunks_per_segment > 0 ? jopts.chunks_per_segment : 1;

  ParallelLogPipeline pipeline(options);
  const uint64_t fingerprint = OptionsFingerprint(options, pipeline.shards());

  std::vector<std::unique_ptr<Shard>> shards = pipeline.MakeShards();
  JournalRunResult out;
  uint64_t lines_total = 0;

  // Resume if a checkpoint exists. A present-but-unusable journal is a
  // hard error: silently restarting from zero would double-count the
  // prefix the journal already covers if the caller later merges runs.
  {
    std::ifstream probe(jopts.path, std::ios::binary);
    if (probe.good()) {
      probe.close();
      uint64_t offset = 0;
      if (!LoadCheckpoint(jopts.path, fingerprint, offset, lines_total,
                          shards)) {
        return util::Status::InvalidArgument(
            "journal: existing checkpoint at '" + jopts.path +
            "' is corrupt or was written by an incompatible configuration");
      }
      if (!source.SeekTo(offset)) {
        return util::Status::OutOfRange(
            "journal: checkpoint watermark is beyond the source (journal "
            "from a different input?)");
      }
      out.resumed = true;
    }
  }

  QuarantineReport all_quarantine;
  std::optional<obs::RunTelemetry> all_telemetry;
  PipelineResult last;
  for (;;) {
    if (jopts.max_segments > 0 && out.segments >= jopts.max_segments) break;
    BoundedChunkSource segment(source, chunks_per_segment);
    PipelineResult r = pipeline.Run(segment, shards);
    ++out.segments;
    lines_total += r.lines;
    MergeQuarantine(all_quarantine, std::move(r.quarantine));
    if (r.telemetry.has_value()) {
      if (!all_telemetry.has_value()) all_telemetry.emplace();
      all_telemetry->Merge(*r.telemetry);
    }
    const bool source_failed = !r.source_status.ok();
    const bool exhausted = segment.exhausted();
    last = std::move(r);
    if (!WriteCheckpoint(jopts, fingerprint, source.offset(), lines_total,
                         shards)) {
      return util::Status::Internal("journal: cannot write checkpoint to '" +
                                    jopts.path + "'");
    }
    if (source_failed) break;
    if (exhausted) {
      out.complete = true;
      break;
    }
  }

  // `last` already merges the shards' cumulative state (stats and
  // analysis span every segment, this run's and any resumed prefix);
  // only the per-segment fields need the accumulated values.
  out.result = std::move(last);
  out.result.lines = lines_total;
  out.result.quarantine = std::move(all_quarantine);
  out.result.telemetry = std::move(all_telemetry);
  return out;
}

}  // namespace sparqlog::pipeline
