#ifndef SPARQLOG_PIPELINE_CHUNK_SOURCE_H_
#define SPARQLOG_PIPELINE_CHUNK_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sparqlog::pipeline {

class LineSource;

/// One unit of reader output: a batch of lines as string_views, plus
/// whatever storage those views need when the source cannot hand out
/// stable memory of its own.
///
/// Lifetime contract: the views in `lines` stay valid while (a) the
/// chunk itself is alive — `owned` moves with it, and moving a
/// std::vector never relocates its elements — and (b) the producing
/// ChunkSource is alive, for sources whose views point at long-lived
/// backing memory (an mmap'ed file, a caller's vector). Workers must
/// therefore finish with a chunk before the pipeline run returns;
/// nothing may squirrel a view away past Run().
struct LineChunk {
  std::vector<std::string_view> lines;
  /// Backing storage for `lines` when the source must copy (stream
  /// input). Zero-copy sources leave it empty.
  std::vector<std::string> owned;
  /// Payload bytes: the sum of line lengths, excluding newline bytes —
  /// deterministic across mmap/stream/vector sources for the same
  /// logical lines (feeds the ingest-throughput telemetry).
  uint64_t bytes = 0;

  void Clear() {
    lines.clear();
    owned.clear();
    bytes = 0;
  }
};

/// Streaming source of log-line chunks. The zero-copy generalization of
/// LineSource: implementations that own stable memory hand out views
/// into it and never build per-line strings.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Replaces `out` with up to `max_lines` lines. Returns false when
  /// the source is exhausted and `out` is empty.
  virtual bool NextChunk(size_t max_lines, LineChunk& out) = 0;
};

/// Memory-maps a log file and slices it at newline boundaries; every
/// line is a view straight into the mapping (no per-line allocation, no
/// byte copied). Line semantics match std::getline plus CRLF handling:
/// a trailing '\r' is stripped from every line, a file ending in '\n'
/// yields no final empty line, and a final unterminated line is
/// yielded as-is.
class MmapChunkSource : public ChunkSource {
 public:
  struct Options {
    /// Soft chunk budget in bytes: NextChunk stops early once a chunk
    /// holds at least this much payload (it always emits at least one
    /// line, so a line longer than the budget comes out whole).
    /// 0 means lines-only chunking (max_lines is the only bound).
    size_t slice_bytes = 0;
  };

  /// Maps `path` read-only (MADV_SEQUENTIAL). On platforms without
  /// mmap the file is read into one heap buffer instead — same view
  /// semantics, one copy total rather than one per line.
  static util::Result<std::unique_ptr<MmapChunkSource>> Open(
      const std::string& path, Options options);
  static util::Result<std::unique_ptr<MmapChunkSource>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  ~MmapChunkSource() override;
  MmapChunkSource(const MmapChunkSource&) = delete;
  MmapChunkSource& operator=(const MmapChunkSource&) = delete;

  bool NextChunk(size_t max_lines, LineChunk& out) override;

  /// Total mapped (or buffered) file size in bytes.
  size_t size_bytes() const { return size_; }

 private:
  MmapChunkSource(const char* data, size_t size, bool mapped,
                  std::string fallback, Options options);

  const char* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< engaged only on non-mmap platforms
  Options options_;
};

/// Adapts a legacy LineSource: lines land in the chunk's `owned`
/// storage and the views point at them. Keeps stream/pipe inputs
/// working against the ChunkSource pipeline core.
class LineSourceAdapter : public ChunkSource {
 public:
  explicit LineSourceAdapter(LineSource& source) : source_(source) {}
  bool NextChunk(size_t max_lines, LineChunk& out) override;

 private:
  LineSource& source_;
};

/// Serves an in-memory log zero-copy: views point at the caller's
/// strings, which must outlive the pipeline run.
class VectorChunkSource : public ChunkSource {
 public:
  explicit VectorChunkSource(const std::vector<std::string>& lines)
      : lines_(lines) {}
  bool NextChunk(size_t max_lines, LineChunk& out) override;

 private:
  const std::vector<std::string>& lines_;
  size_t next_ = 0;
};

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_CHUNK_SOURCE_H_
