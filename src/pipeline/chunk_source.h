#ifndef SPARQLOG_PIPELINE_CHUNK_SOURCE_H_
#define SPARQLOG_PIPELINE_CHUNK_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sparqlog::pipeline {

class LineSource;

/// A chunk read failed in a way that may succeed on retry (short read,
/// EINTR, injected transient fault). The pipeline reader retries a
/// bounded number of times before treating the error as persistent.
class TransientChunkError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A chunk read failed persistently (I/O error, truncated mapping).
/// The pipeline reader stops consuming the source, surfaces the error
/// as PipelineResult::source_status, and finishes the lines it already
/// has — a partial result with honest accounting, not a crash.
class ChunkSourceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One unit of reader output: a batch of lines as string_views, plus
/// whatever storage those views need when the source cannot hand out
/// stable memory of its own.
///
/// Lifetime contract: the views in `lines` stay valid while (a) the
/// chunk itself is alive — `owned` moves with it, and moving a
/// std::vector never relocates its elements — and (b) the producing
/// ChunkSource is alive, for sources whose views point at long-lived
/// backing memory (an mmap'ed file, a caller's vector). Workers must
/// therefore finish with a chunk before the pipeline run returns;
/// nothing may squirrel a view away past Run().
struct LineChunk {
  std::vector<std::string_view> lines;
  /// Backing storage for `lines` when the source must copy (stream
  /// input). Zero-copy sources leave it empty.
  std::vector<std::string> owned;
  /// Payload bytes: the sum of line lengths, excluding newline bytes —
  /// deterministic across mmap/stream/vector sources for the same
  /// logical lines (feeds the ingest-throughput telemetry).
  uint64_t bytes = 0;

  void Clear() {
    lines.clear();
    owned.clear();
    bytes = 0;
  }
};

/// Streaming source of log-line chunks. The zero-copy generalization of
/// LineSource: implementations that own stable memory hand out views
/// into it and never build per-line strings.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Replaces `out` with up to `max_lines` lines. Returns false when
  /// the source is exhausted and `out` is empty. May throw
  /// TransientChunkError / ChunkSourceError; the pipeline reader
  /// contains both (see PipelineOptions::fault_containment).
  virtual bool NextChunk(size_t max_lines, LineChunk& out) = 0;

  /// Resume support (the crash-safe run journal, pipeline/journal.h).
  /// `offset()` is an opaque cursor naming the next unread line —
  /// a byte offset for file sources, an index for in-memory ones —
  /// valid only for the same source contents. `SeekTo` repositions to a
  /// previously observed cursor. Sources without resume support keep
  /// the defaults (journaling them is rejected up front).
  virtual bool SupportsResume() const { return false; }
  virtual uint64_t offset() const { return 0; }
  virtual bool SeekTo(uint64_t /*offset*/) { return false; }
};

/// Memory-maps a log file and slices it at newline boundaries; every
/// line is a view straight into the mapping (no per-line allocation, no
/// byte copied). Line semantics match std::getline plus CRLF handling:
/// a trailing '\r' is stripped from every line, a file ending in '\n'
/// yields no final empty line, and a final unterminated line is
/// yielded as-is.
class MmapChunkSource : public ChunkSource {
 public:
  struct Options {
    /// Soft chunk budget in bytes: NextChunk stops early once a chunk
    /// holds at least this much payload (it always emits at least one
    /// line, so a line longer than the budget comes out whole).
    /// 0 means lines-only chunking (max_lines is the only bound).
    size_t slice_bytes = 0;
    /// false forces the buffered-read fallback even where mmap is
    /// available — identical chunk semantics, exercised by the fault
    /// tests so the EINTR/short-read handling stays covered.
    bool use_mmap = true;
  };

  /// Maps `path` read-only (MADV_SEQUENTIAL). On platforms without
  /// mmap (or with Options::use_mmap false) the file is read into one
  /// heap buffer instead — same view semantics, one copy total rather
  /// than one per line; the read loop retries EINTR/short reads.
  static util::Result<std::unique_ptr<MmapChunkSource>> Open(
      const std::string& path, Options options);
  static util::Result<std::unique_ptr<MmapChunkSource>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  ~MmapChunkSource() override;
  MmapChunkSource(const MmapChunkSource&) = delete;
  MmapChunkSource& operator=(const MmapChunkSource&) = delete;

  bool NextChunk(size_t max_lines, LineChunk& out) override;

  /// Total mapped (or buffered) file size in bytes.
  size_t size_bytes() const { return size_; }

  /// Resume cursor: the byte offset of the next unread line.
  bool SupportsResume() const override { return true; }
  uint64_t offset() const override { return pos_; }
  bool SeekTo(uint64_t offset) override {
    if (offset > size_) return false;
    pos_ = static_cast<size_t>(offset);
    return true;
  }

 private:
  MmapChunkSource(const char* data, size_t size, bool mapped,
                  std::string fallback, Options options);

  const char* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  bool mapped_ = false;
  std::string fallback_;  ///< engaged only on non-mmap platforms
  Options options_;
};

/// Adapts a legacy LineSource: lines land in the chunk's `owned`
/// storage and the views point at them. Keeps stream/pipe inputs
/// working against the ChunkSource pipeline core.
class LineSourceAdapter : public ChunkSource {
 public:
  explicit LineSourceAdapter(LineSource& source) : source_(source) {}
  bool NextChunk(size_t max_lines, LineChunk& out) override;

 private:
  LineSource& source_;
};

/// Serves an in-memory log zero-copy: views point at the caller's
/// strings, which must outlive the pipeline run.
class VectorChunkSource : public ChunkSource {
 public:
  explicit VectorChunkSource(const std::vector<std::string>& lines)
      : lines_(lines) {}
  bool NextChunk(size_t max_lines, LineChunk& out) override;

  /// Resume cursor: the index of the next unread line.
  bool SupportsResume() const override { return true; }
  uint64_t offset() const override { return next_; }
  bool SeekTo(uint64_t offset) override {
    if (offset > lines_.size()) return false;
    next_ = static_cast<size_t>(offset);
    return true;
  }

 private:
  const std::vector<std::string>& lines_;
  size_t next_ = 0;
};

}  // namespace sparqlog::pipeline

#endif  // SPARQLOG_PIPELINE_CHUNK_SOURCE_H_
