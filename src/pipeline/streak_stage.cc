#include "pipeline/streak_stage.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/alloc_tracker.h"
#include "obs/clock.h"

namespace sparqlog::pipeline {

namespace {

/// Match edges of one chunk in CSR form: query j of the chunk matched
/// the predecessors at gaps gaps[offsets[j] .. offsets[j+1]).
struct ChunkEdges {
  std::vector<uint32_t> gaps;
  std::vector<uint32_t> offsets;
};

}  // namespace

StreakStage::StreakStage(StreakStageOptions options)
    : options_(std::move(options)) {
  threads_ = options_.threads > 0
                 ? options_.threads
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (threads_ < 1) threads_ = 1;
}

StreakStageResult StreakStage::Run(
    const std::vector<std::string>& queries) const {
  StreakStageResult result;
  result.threads = threads_;
  const size_t n = queries.size();
  const size_t window = options_.streak.window;
  if (n == 0) {
    result.chunks = 0;
    return result;
  }

  size_t chunk_size = options_.chunk_size;
  if (chunk_size == 0) {
    chunk_size = (n + static_cast<size_t>(threads_) - 1) /
                 static_cast<size_t>(threads_);
    // A chunk narrower than the overlap pays more warmup than work.
    chunk_size = std::max(chunk_size, window + 1);
  }
  chunk_size = std::max<size_t>(chunk_size, 1);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  result.chunks = num_chunks;

  // ---- Parallel phase: per-chunk match edges. Workers claim chunks
  // dynamically; every chunk is independent given its warmup overlap.
  const size_t worker_count =
      std::min<size_t>(static_cast<size_t>(threads_), num_chunks);
  const bool collect = options_.telemetry.enabled();
  const bool tracing = collect && options_.telemetry.trace;
  const uint64_t run_start = obs::NowNsIf(collect);
  const uint64_t alloc_bytes0 = collect ? obs::AllocatedBytes() : 0;
  const uint64_t alloc_count0 = collect ? obs::AllocationCount() : 0;
  std::vector<ChunkEdges> edges(num_chunks);
  std::vector<streaks::PrefilterStats> worker_stats(worker_count);
  // Per-worker registry instances and span rings; slot w belongs to
  // streak worker w, the last slot to the serial stitch pass.
  std::vector<obs::RunTelemetry> telem(collect ? worker_count + 1 : 0);
  std::vector<obs::TraceRing> rings;
  if (tracing) {
    rings.reserve(worker_count + 1);
    for (size_t i = 0; i <= worker_count; ++i) {
      rings.emplace_back(options_.telemetry.trace_capacity);
    }
  }
  std::atomic<size_t> next_chunk{0};
  auto worker = [&](size_t worker_index) {
    obs::RunTelemetry* rt = collect ? &telem[worker_index] : nullptr;
    obs::TraceRing* ring = tracing ? &rings[worker_index] : nullptr;
    const uint64_t tb0 = rt ? obs::ThreadAllocatedBytes() : 0;
    const uint64_t tc0 = rt ? obs::ThreadAllocationCount() : 0;
    // One window per worker: Reset() between chunks keeps the recycled
    // text buffers and the Levenshtein scratch across the whole run.
    streaks::SimilarityWindow win(options_.streak);
    std::vector<uint32_t> gaps;
    for (size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
         c < num_chunks;
         c = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
      const size_t start = c * chunk_size;
      const size_t end = std::min(n, start + chunk_size);
      const size_t warm = start > window ? start - window : 0;
      uint64_t t0 = obs::NowNsIf(rt != nullptr);
      win.Reset();
      for (size_t j = warm; j < start; ++j) {
        win.Add(queries[j], gaps);  // state only; edges discarded
      }
      ChunkEdges& out = edges[c];
      out.offsets.reserve(end - start + 1);
      out.offsets.push_back(0);
      for (size_t j = start; j < end; ++j) {
        win.Add(queries[j], gaps);
        out.gaps.insert(out.gaps.end(), gaps.begin(), gaps.end());
        out.offsets.push_back(static_cast<uint32_t>(out.gaps.size()));
      }
      if constexpr (obs::kTelemetryEnabled) {
        if (rt) {
          uint64_t t1 = obs::NowNs();
          obs::StageMetrics& m = rt->stage(obs::kStageStreak);
          ++m.chunks;
          m.items_in += end - start;  // warmup re-scans are not items
          m.items_out += end - start;
          m.chunk_ns.Record(t1 - t0);
          if (ring) ring->Record(obs::kStageStreak, c, t0, t1);
        }
      }
    }
    if (rt) {
      obs::StageMetrics& m = rt->stage(obs::kStageStreak);
      m.alloc_bytes += obs::ThreadAllocatedBytes() - tb0;
      m.allocs += obs::ThreadAllocationCount() - tc0;
    }
    worker_stats[worker_index] = win.stats();
  };

  if (worker_count <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(worker_count);
    for (size_t t = 0; t < worker_count; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) t.join();
  }
  for (const streaks::PrefilterStats& stats : worker_stats) {
    result.prefilter.Merge(stats);
  }

  // ---- Serial stitch: fold the edges, in log order, into streak
  // lengths. Chains crossing a chunk boundary resolve here because the
  // tracker's window carries over; per-chunk partials Merge exactly.
  {
    obs::RunTelemetry* rt = collect ? &telem[worker_count] : nullptr;
    obs::TraceRing* ring = tracing ? &rings[worker_count] : nullptr;
    streaks::StreakChainTracker tracker(window);
    for (size_t c = 0; c < edges.size(); ++c) {
      const ChunkEdges& chunk = edges[c];
      uint64_t t0 = obs::NowNsIf(rt != nullptr);
      for (size_t j = 0; j + 1 < chunk.offsets.size(); ++j) {
        tracker.Add(chunk.gaps.data() + chunk.offsets[j],
                    chunk.offsets[j + 1] - chunk.offsets[j]);
      }
      result.report.Merge(tracker.DrainFinalized());
      if constexpr (obs::kTelemetryEnabled) {
        if (rt) {
          uint64_t t1 = obs::NowNs();
          obs::StageMetrics& m = rt->stage(obs::kStageStitch);
          ++m.chunks;
          m.items_in += chunk.offsets.size() - 1;
          m.items_out += chunk.offsets.size() - 1;
          m.chunk_ns.Record(t1 - t0);
          if (ring) ring->Record(obs::kStageStitch, c, t0, t1);
        }
      }
    }
    result.report.Merge(tracker.Finish());
  }

  if (collect) {
    obs::RunTelemetry merged;
    for (const obs::RunTelemetry& t : telem) merged.Merge(t);
    merged.prefilter_pairs = result.prefilter.pairs;
    merged.prefilter_exact_hash = result.prefilter.exact_hash_hits;
    merged.prefilter_length = result.prefilter.length_rejects;
    merged.prefilter_charmap = result.prefilter.charmap_rejects;
    merged.prefilter_histogram = result.prefilter.histogram_rejects;
    merged.prefilter_dp = result.prefilter.levenshtein_calls;
    merged.prefilter_abandoned = result.prefilter.abandoned_pairs;
    merged.wall_ns = obs::NowNs() - run_start;
    merged.workers = worker_count + 1;
    merged.run_alloc_bytes = obs::AllocatedBytes() - alloc_bytes0;
    merged.run_allocs = obs::AllocationCount() - alloc_count0;
    result.telemetry = std::move(merged);
    if (tracing) {
      obs::TraceData trace;
      trace.origin_ns = run_start;
      trace.wall_ns = result.telemetry->wall_ns;
      trace.tracks.reserve(worker_count + 1);
      for (size_t i = 0; i <= worker_count; ++i) {
        obs::TraceTrack track;
        track.name = i < worker_count ? "streak-" + std::to_string(i)
                                      : "stitch";
        track.events = rings[i].Drain();
        track.dropped = rings[i].dropped();
        trace.tracks.push_back(std::move(track));
      }
      result.trace = std::move(trace);
    }
  }
  return result;
}

}  // namespace sparqlog::pipeline
