#include "pipeline/streak_stage.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace sparqlog::pipeline {

namespace {

/// Match edges of one chunk in CSR form: query j of the chunk matched
/// the predecessors at gaps gaps[offsets[j] .. offsets[j+1]).
struct ChunkEdges {
  std::vector<uint32_t> gaps;
  std::vector<uint32_t> offsets;
};

}  // namespace

StreakStage::StreakStage(StreakStageOptions options)
    : options_(std::move(options)) {
  threads_ = options_.threads > 0
                 ? options_.threads
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (threads_ < 1) threads_ = 1;
}

StreakStageResult StreakStage::Run(
    const std::vector<std::string>& queries) const {
  StreakStageResult result;
  result.threads = threads_;
  const size_t n = queries.size();
  const size_t window = options_.streak.window;
  if (n == 0) {
    result.chunks = 0;
    return result;
  }

  size_t chunk_size = options_.chunk_size;
  if (chunk_size == 0) {
    chunk_size = (n + static_cast<size_t>(threads_) - 1) /
                 static_cast<size_t>(threads_);
    // A chunk narrower than the overlap pays more warmup than work.
    chunk_size = std::max(chunk_size, window + 1);
  }
  chunk_size = std::max<size_t>(chunk_size, 1);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  result.chunks = num_chunks;

  // ---- Parallel phase: per-chunk match edges. Workers claim chunks
  // dynamically; every chunk is independent given its warmup overlap.
  const size_t worker_count =
      std::min<size_t>(static_cast<size_t>(threads_), num_chunks);
  std::vector<ChunkEdges> edges(num_chunks);
  std::vector<streaks::PrefilterStats> worker_stats(worker_count);
  std::atomic<size_t> next_chunk{0};
  auto worker = [&](size_t worker_index) {
    // One window per worker: Reset() between chunks keeps the recycled
    // text buffers and the Levenshtein scratch across the whole run.
    streaks::SimilarityWindow win(options_.streak);
    std::vector<uint32_t> gaps;
    for (size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
         c < num_chunks;
         c = next_chunk.fetch_add(1, std::memory_order_relaxed)) {
      const size_t start = c * chunk_size;
      const size_t end = std::min(n, start + chunk_size);
      const size_t warm = start > window ? start - window : 0;
      win.Reset();
      for (size_t j = warm; j < start; ++j) {
        win.Add(queries[j], gaps);  // state only; edges discarded
      }
      ChunkEdges& out = edges[c];
      out.offsets.reserve(end - start + 1);
      out.offsets.push_back(0);
      for (size_t j = start; j < end; ++j) {
        win.Add(queries[j], gaps);
        out.gaps.insert(out.gaps.end(), gaps.begin(), gaps.end());
        out.offsets.push_back(static_cast<uint32_t>(out.gaps.size()));
      }
    }
    worker_stats[worker_index] = win.stats();
  };

  if (worker_count <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(worker_count);
    for (size_t t = 0; t < worker_count; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) t.join();
  }
  for (const streaks::PrefilterStats& stats : worker_stats) {
    result.prefilter.Merge(stats);
  }

  // ---- Serial stitch: fold the edges, in log order, into streak
  // lengths. Chains crossing a chunk boundary resolve here because the
  // tracker's window carries over; per-chunk partials Merge exactly.
  streaks::StreakChainTracker tracker(window);
  for (const ChunkEdges& chunk : edges) {
    for (size_t j = 0; j + 1 < chunk.offsets.size(); ++j) {
      tracker.Add(chunk.gaps.data() + chunk.offsets[j],
                  chunk.offsets[j + 1] - chunk.offsets[j]);
    }
    result.report.Merge(tracker.DrainFinalized());
  }
  result.report.Merge(tracker.Finish());
  return result;
}

}  // namespace sparqlog::pipeline
