#include "pipeline/chunk_source.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "pipeline/pipeline.h"

#if defined(__unix__) || defined(__APPLE__)
#define SPARQLOG_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SPARQLOG_HAVE_MMAP 0
#endif

namespace sparqlog::pipeline {

using util::Result;
using util::Status;

MmapChunkSource::MmapChunkSource(const char* data, size_t size, bool mapped,
                                 std::string fallback, Options options)
    : data_(data),
      size_(size),
      mapped_(mapped),
      fallback_(std::move(fallback)),
      options_(options) {
  if (!mapped_) data_ = fallback_.data();
}

MmapChunkSource::~MmapChunkSource() {
#if SPARQLOG_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

#if SPARQLOG_HAVE_MMAP
namespace {

/// open(2) with EINTR retry — a signal between open and the retry loop
/// must not fail the whole run.
int OpenRetryEintr(const char* path) {
  for (;;) {
    int fd = ::open(path, O_RDONLY);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// Reads the whole file into `buffer`, retrying EINTR and continuing
/// after short reads (both are normal on pipes-turned-regular-files and
/// under signal-heavy test harnesses). Returns false on a real error
/// with errno set.
bool ReadAllRetryEintr(int fd, size_t size, std::string& buffer) {
  buffer.resize(size);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::read(fd, buffer.data() + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      // File shrank underneath us; serve what exists.
      buffer.resize(done);
      return true;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace
#endif

Result<std::unique_ptr<MmapChunkSource>> MmapChunkSource::Open(
    const std::string& path, Options options) {
#if SPARQLOG_HAVE_MMAP
  int fd = OpenRetryEintr(path.c_str());
  if (fd < 0) {
    return Status::NotFound("mmap source: cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("mmap source: fstat failed for '" + path +
                            "': " + std::strerror(err));
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("mmap source: '" + path +
                                   "' is not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (!options.use_mmap) {
    // Buffered-read path: same view semantics as the mapping, one copy
    // total. This is also the code the fault tests drive.
    std::string buffer;
    if (!ReadAllRetryEintr(fd, size, buffer)) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap source: read failed for '" + path +
                              "': " + std::strerror(err));
    }
    if (::close(fd) != 0) {
      // A failing close can mean lost writeback errors on some
      // filesystems; for a read-only descriptor it still signals a
      // kernel-level problem worth surfacing instead of swallowing.
      return Status::Internal("mmap source: close failed for '" + path +
                              "': " + std::strerror(errno));
    }
    // buffer.size() must be read before std::move(buffer): argument
    // evaluation order is unspecified, and gcc moves first.
    const size_t buffered = buffer.size();
    return std::unique_ptr<MmapChunkSource>(new MmapChunkSource(
        nullptr, buffered, /*mapped=*/false, std::move(buffer), options));
  }
  const char* data = nullptr;
  // An empty file is a valid (zero-line) source: mmap(len=0) is EINVAL
  // on Linux, so it must be skipped, not treated as a failure.
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap source: mmap failed for '" + path +
                              "': " + std::strerror(err));
    }
#if defined(MADV_SEQUENTIAL)
    ::madvise(map, size, MADV_SEQUENTIAL);
#endif
    data = static_cast<const char*>(map);
  }
  if (::close(fd) != 0) {  // the mapping outlives the descriptor
    const int err = errno;
    if (data != nullptr) ::munmap(const_cast<char*>(data), size);
    return Status::Internal("mmap source: close failed for '" + path +
                            "': " + std::strerror(err));
  }
  return std::unique_ptr<MmapChunkSource>(
      new MmapChunkSource(data, size, /*mapped=*/true, std::string(), options));
#else
  // No mmap: one bulk read into a single buffer. Views keep the same
  // semantics; the per-line allocation is still gone.
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("mmap source: cannot open '" + path + "'");
  }
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  const size_t buffered = buffer.size();  // before the unsequenced move
  return std::unique_ptr<MmapChunkSource>(new MmapChunkSource(
      nullptr, buffered, /*mapped=*/false, std::move(buffer), options));
#endif
}

bool MmapChunkSource::NextChunk(size_t max_lines, LineChunk& out) {
  out.Clear();
  const size_t slice_bytes = options_.slice_bytes;
  const size_t slice_start = pos_;
  while (pos_ < size_ && out.lines.size() < max_lines) {
    if (slice_bytes > 0 && !out.lines.empty() &&
        pos_ - slice_start >= slice_bytes) {
      break;
    }
    const char* start = data_ + pos_;
    const void* nl = std::memchr(start, '\n', size_ - pos_);
    size_t len;
    if (nl != nullptr) {
      len = static_cast<size_t>(static_cast<const char*>(nl) - start);
      pos_ += len + 1;
    } else {
      // Final line without a trailing newline.
      len = size_ - pos_;
      pos_ = size_;
    }
    if (len > 0 && start[len - 1] == '\r') --len;  // CRLF
    out.lines.emplace_back(start, len);
    out.bytes += len;
  }
  return !out.lines.empty();
}

bool LineSourceAdapter::NextChunk(size_t max_lines, LineChunk& out) {
  out.Clear();
  if (!source_.NextChunk(max_lines, out.owned)) return false;
  out.lines.reserve(out.owned.size());
  for (const std::string& line : out.owned) {
    out.lines.emplace_back(line);
    out.bytes += line.size();
  }
  return true;
}

bool VectorChunkSource::NextChunk(size_t max_lines, LineChunk& out) {
  out.Clear();
  while (next_ < lines_.size() && out.lines.size() < max_lines) {
    const std::string& line = lines_[next_++];
    out.lines.emplace_back(line);
    out.bytes += line.size();
  }
  return !out.lines.empty();
}

}  // namespace sparqlog::pipeline
