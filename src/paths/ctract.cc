#include "paths/ctract.h"

#include <algorithm>
#include <limits>

namespace sparqlog::paths {

using sparql::PathExpr;
using sparql::PathKind;

namespace {

constexpr int kUnbounded = std::numeric_limits<int>::max() / 4;

/// Flattens nested closure operators: (e*)* == e*, (e+)* == e*,
/// (e?)* == e*, etc., so that (a*)* is recognized as tractable.
PathExpr FlattenClosures(const PathExpr& p) {
  PathExpr out = p;
  out.children.clear();
  for (const PathExpr& c : p.children) {
    out.children.push_back(FlattenClosures(c));
  }
  bool is_closure = out.kind == PathKind::kZeroOrMore ||
                    out.kind == PathKind::kOneOrMore ||
                    out.kind == PathKind::kZeroOrOne;
  if (is_closure && out.children.size() == 1) {
    const PathExpr& child = out.children[0];
    bool child_closure = child.kind == PathKind::kZeroOrMore ||
                         child.kind == PathKind::kOneOrMore ||
                         child.kind == PathKind::kZeroOrOne;
    if (child_closure) {
      // Combined closure: star unless both are plus.
      PathKind combined =
          (out.kind == PathKind::kOneOrMore &&
           child.kind == PathKind::kOneOrMore)
              ? PathKind::kOneOrMore
              : PathKind::kZeroOrMore;
      PathExpr collapsed = child.children[0];
      PathExpr result;
      result.kind = combined;
      result.children.push_back(std::move(collapsed));
      return result;
    }
  }
  return out;
}

/// Longest word the expression can match (kUnbounded for infinite).
int MaxWordLen(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kLink:
    case PathKind::kNegated:
      return 1;
    case PathKind::kInverse:
      return MaxWordLen(p.children[0]);
    case PathKind::kSeq: {
      long total = 0;
      for (const PathExpr& c : p.children) total += MaxWordLen(c);
      return total >= kUnbounded ? kUnbounded : static_cast<int>(total);
    }
    case PathKind::kAlt: {
      int best = 0;
      for (const PathExpr& c : p.children) {
        best = std::max(best, MaxWordLen(c));
      }
      return best;
    }
    case PathKind::kZeroOrMore:
    case PathKind::kOneOrMore:
      return MaxWordLen(p.children[0]) > 0 ? kUnbounded : 0;
    case PathKind::kZeroOrOne:
      return MaxWordLen(p.children[0]);
  }
  return 0;
}

bool IsUnbounded(const PathExpr& p) { return MaxWordLen(p) >= kUnbounded; }

bool Tractable(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kLink:
    case PathKind::kNegated:
      return true;
    case PathKind::kInverse:
      return Tractable(p.children[0]);
    case PathKind::kZeroOrMore:
    case PathKind::kOneOrMore:
      // A* / A+ over letter sets only: the starred expression must not
      // match any word of length >= 2 (else e.g. (a/b)* which is hard
      // under simple-path semantics).
      return MaxWordLen(p.children[0]) <= 1;
    case PathKind::kZeroOrOne:
      return Tractable(p.children[0]);
    case PathKind::kAlt:
      // Finite unions preserve tractability.
      for (const PathExpr& c : p.children) {
        if (!Tractable(c)) return false;
      }
      return true;
    case PathKind::kSeq: {
      // w1 A* w2: at most one unbounded factor, all factors tractable.
      int unbounded = 0;
      for (const PathExpr& c : p.children) {
        if (!Tractable(c)) return false;
        if (IsUnbounded(c)) ++unbounded;
      }
      return unbounded <= 1;
    }
  }
  return false;
}

}  // namespace

bool IsCtract(const PathExpr& path) {
  return Tractable(FlattenClosures(path));
}

}  // namespace sparqlog::paths
