#ifndef SPARQLOG_PATHS_PATH_CLASS_H_
#define SPARQLOG_PATHS_PATH_CLASS_H_

#include <string>

#include "sparql/ast.h"

namespace sparqlog::paths {

/// The expression types of Table 5 (Section 7). Atoms are literals `a`,
/// reverse steps `^a`, or single negations `!a` (the paper classifies
/// `(^a)/b` and `(!a)/b` like `a/b`). Each type also covers its
/// symmetric form (e.g. `a*/b` covers `b/a*`).
enum class PathType {
  kTrivialNegated,   ///< !a — excluded from the navigational analysis
  kTrivialInverse,   ///< ^a — excluded from the navigational analysis
  kPlainLink,        ///< bare IRI: not a navigational property path
  kStarOfAlt,        ///< (a1|...|ak)*
  kStar,             ///< a*
  kSeq,              ///< a1/.../ak
  kStarSeqLink,      ///< a*/b (or b/a*)
  kAlt,              ///< a1|...|ak
  kPlus,             ///< a+
  kSeqOfOpts,        ///< a1?/.../ak?
  kLinkSeqAlt,       ///< a(b1|...|bk) — i.e. a/(b1|...|bk)
  kSeqLinkOpts,      ///< a1/a2?/.../ak?
  kAltSeqStarLink,   ///< (a/b*)|c
  kStarSeqOpt,       ///< a*/b?
  kSeqSeqStar,       ///< a/b/c*
  kNegatedAlt,       ///< !(a|b)
  kPlusOfAlt,        ///< (a1|...|ak)+
  kAltAltSeq,        ///< (a1|...|ak)(a1|...|ak)
  kOptAltLink,       ///< a?|b
  kStarAltLink,      ///< a*|b
  kOptOfAlt,         ///< (a|b)?
  kLinkAltPlus,      ///< a|b+
  kPlusAltPlus,      ///< a+|b+
  kStarOfSeq,        ///< (a/b)* — the one non-Ctract expression found
  kOther,            ///< anything else
};

/// Result of classifying a property path.
struct PathClassification {
  PathType type = PathType::kOther;
  /// The arity parameter k of the type, where applicable (e.g. sequence
  /// or alternation length); 0 otherwise.
  int k = 0;
  /// Uses reverse navigation `^` nested inside a complex expression
  /// (36% of the navigational paths in the paper's corpus).
  bool uses_inverse = false;
};

/// Classifies `path` into the Table 5 taxonomy.
PathClassification ClassifyPath(const sparql::PathExpr& path);

/// Human-readable name of a path type, matching the paper's notation.
std::string PathTypeName(PathType t);

}  // namespace sparqlog::paths

#endif  // SPARQLOG_PATHS_PATH_CLASS_H_
