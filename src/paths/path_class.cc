#include "paths/path_class.h"

namespace sparqlog::paths {

using sparql::PathExpr;
using sparql::PathKind;

namespace {

/// An "atom" for classification purposes: a literal, a reversed literal,
/// or a single-negation (footnote in Section 7: `(^a)/b` and `(!a)/b`
/// classify like `a/b`).
bool IsAtom(const PathExpr& p) {
  if (p.kind == PathKind::kLink) return true;
  if (p.kind == PathKind::kInverse) return IsAtom(p.children[0]);
  if (p.kind == PathKind::kNegated && p.children.size() == 1) return true;
  return false;
}

bool AllAtoms(const sparql::AstVector<PathExpr>& children) {
  for (const PathExpr& c : children) {
    if (!IsAtom(c)) return false;
  }
  return true;
}

bool IsStarOfAtom(const PathExpr& p) {
  return p.kind == PathKind::kZeroOrMore && IsAtom(p.children[0]);
}
bool IsPlusOfAtom(const PathExpr& p) {
  return p.kind == PathKind::kOneOrMore && IsAtom(p.children[0]);
}
bool IsOptOfAtom(const PathExpr& p) {
  return p.kind == PathKind::kZeroOrOne && IsAtom(p.children[0]);
}
bool IsAltOfAtoms(const PathExpr& p) {
  return p.kind == PathKind::kAlt && AllAtoms(p.children);
}

void ScanInverse(const PathExpr& p, bool& found) {
  if (p.kind == PathKind::kInverse) found = true;
  for (const PathExpr& c : p.children) ScanInverse(c, found);
}

}  // namespace

PathClassification ClassifyPath(const PathExpr& path) {
  PathClassification out;
  ScanInverse(path, out.uses_inverse);

  // Trivial forms first (Section 7 sets them aside).
  if (path.kind == PathKind::kLink) {
    out.type = PathType::kPlainLink;
    out.uses_inverse = false;
    return out;
  }
  if (path.kind == PathKind::kNegated && path.children.size() == 1 &&
      path.children[0].kind == PathKind::kLink) {
    out.type = PathType::kTrivialNegated;
    return out;
  }
  if (path.kind == PathKind::kInverse &&
      path.children[0].kind == PathKind::kLink) {
    out.type = PathType::kTrivialInverse;
    return out;
  }

  const auto& kids = path.children;
  switch (path.kind) {
    case PathKind::kZeroOrMore:
      if (IsAtom(kids[0])) {
        out.type = PathType::kStar;
      } else if (IsAltOfAtoms(kids[0])) {
        out.type = PathType::kStarOfAlt;
        out.k = static_cast<int>(kids[0].children.size());
      } else if (kids[0].kind == PathKind::kSeq &&
                 AllAtoms(kids[0].children)) {
        out.type = PathType::kStarOfSeq;
        out.k = static_cast<int>(kids[0].children.size());
      }
      return out;
    case PathKind::kOneOrMore:
      if (IsAtom(kids[0])) {
        out.type = PathType::kPlus;
      } else if (IsAltOfAtoms(kids[0])) {
        out.type = PathType::kPlusOfAlt;
        out.k = static_cast<int>(kids[0].children.size());
      }
      return out;
    case PathKind::kZeroOrOne:
      if (IsAtom(kids[0])) {
        // A lone a? is a sequence of optionals with k = 1.
        out.type = PathType::kSeqOfOpts;
        out.k = 1;
      } else if (IsAltOfAtoms(kids[0])) {
        out.type = PathType::kOptOfAlt;
        out.k = static_cast<int>(kids[0].children.size());
      }
      return out;
    case PathKind::kNegated:
      out.type = PathType::kNegatedAlt;
      out.k = static_cast<int>(kids.size());
      return out;
    case PathKind::kSeq: {
      out.k = static_cast<int>(kids.size());
      if (AllAtoms(kids)) {
        out.type = PathType::kSeq;
        return out;
      }
      // a*/b and b/a* (two elements, one star-of-atom, one atom).
      if (kids.size() == 2) {
        if ((IsStarOfAtom(kids[0]) && IsAtom(kids[1])) ||
            (IsAtom(kids[0]) && IsStarOfAtom(kids[1]))) {
          out.type = PathType::kStarSeqLink;
          return out;
        }
        if ((IsStarOfAtom(kids[0]) && IsOptOfAtom(kids[1])) ||
            (IsOptOfAtom(kids[0]) && IsStarOfAtom(kids[1]))) {
          out.type = PathType::kStarSeqOpt;
          return out;
        }
        if ((IsAtom(kids[0]) && IsAltOfAtoms(kids[1])) ||
            (IsAltOfAtoms(kids[0]) && IsAtom(kids[1]))) {
          out.type = PathType::kLinkSeqAlt;
          out.k = static_cast<int>(
              (IsAltOfAtoms(kids[0]) ? kids[0] : kids[1]).children.size());
          return out;
        }
        if (kids[0].kind == PathKind::kAlt && kids[1].kind == PathKind::kAlt &&
            AllAtoms(kids[0].children) && AllAtoms(kids[1].children)) {
          out.type = PathType::kAltAltSeq;
          out.k = static_cast<int>(kids[0].children.size());
          return out;
        }
      }
      // a1?/.../ak? — all optional atoms.
      {
        bool all_opts = true;
        for (const PathExpr& c : kids) {
          if (!IsOptOfAtom(c)) all_opts = false;
        }
        if (all_opts) {
          out.type = PathType::kSeqOfOpts;
          return out;
        }
      }
      // a1/a2?/.../ak? — one leading atom, optional tail.
      {
        bool tail_opts = kids.size() >= 2 && IsAtom(kids[0]);
        for (size_t i = 1; i < kids.size() && tail_opts; ++i) {
          if (!IsOptOfAtom(kids[i])) tail_opts = false;
        }
        if (tail_opts) {
          out.type = PathType::kSeqLinkOpts;
          out.k = static_cast<int>(kids.size()) - 1;
          return out;
        }
      }
      // a/b/c* (or c*/b/a): atoms except one trailing/leading star.
      if (kids.size() >= 3) {
        bool leading_star = IsStarOfAtom(kids[0]);
        bool trailing_star = IsStarOfAtom(kids.back());
        bool rest_atoms = true;
        for (size_t i = 0; i < kids.size(); ++i) {
          bool is_edge_star = (i == 0 && leading_star && !trailing_star) ||
                              (i + 1 == kids.size() && trailing_star &&
                               !leading_star);
          if (is_edge_star) continue;
          if (!IsAtom(kids[i])) rest_atoms = false;
        }
        if ((leading_star != trailing_star) && rest_atoms) {
          out.type = PathType::kSeqSeqStar;
          return out;
        }
      }
      out.type = PathType::kOther;
      return out;
    }
    case PathKind::kAlt: {
      out.k = static_cast<int>(kids.size());
      if (AllAtoms(kids)) {
        out.type = PathType::kAlt;
        return out;
      }
      if (kids.size() == 2) {
        const PathExpr& a = kids[0];
        const PathExpr& b = kids[1];
        auto pair_is = [&](auto pred_a, auto pred_b) {
          return (pred_a(a) && pred_b(b)) || (pred_a(b) && pred_b(a));
        };
        if (pair_is(IsOptOfAtom, IsAtom)) {
          out.type = PathType::kOptAltLink;
          return out;
        }
        if (pair_is(IsStarOfAtom, IsAtom)) {
          out.type = PathType::kStarAltLink;
          return out;
        }
        if (pair_is(IsPlusOfAtom, IsAtom)) {
          out.type = PathType::kLinkAltPlus;
          return out;
        }
        if (IsPlusOfAtom(a) && IsPlusOfAtom(b)) {
          out.type = PathType::kPlusAltPlus;
          return out;
        }
        // (a/b*)|c and symmetric forms.
        auto is_seq_atom_star = [&](const PathExpr& p) {
          if (p.kind != PathKind::kSeq || p.children.size() != 2) {
            return false;
          }
          return (IsAtom(p.children[0]) && IsStarOfAtom(p.children[1])) ||
                 (IsStarOfAtom(p.children[0]) && IsAtom(p.children[1]));
        };
        if (pair_is(is_seq_atom_star, IsAtom)) {
          out.type = PathType::kAltSeqStarLink;
          return out;
        }
      }
      out.type = PathType::kOther;
      return out;
    }
    default:
      out.type = PathType::kOther;
      return out;
  }
}

std::string PathTypeName(PathType t) {
  switch (t) {
    case PathType::kTrivialNegated: return "!a";
    case PathType::kTrivialInverse: return "^a";
    case PathType::kPlainLink: return "a";
    case PathType::kStarOfAlt: return "(a1|...|ak)*";
    case PathType::kStar: return "a*";
    case PathType::kSeq: return "a1/.../ak";
    case PathType::kStarSeqLink: return "a*/b";
    case PathType::kAlt: return "a1|...|ak";
    case PathType::kPlus: return "a+";
    case PathType::kSeqOfOpts: return "a1?/.../ak?";
    case PathType::kLinkSeqAlt: return "a(b1|...|bk)";
    case PathType::kSeqLinkOpts: return "a1/a2?/.../ak?";
    case PathType::kAltSeqStarLink: return "(a/b*)|c";
    case PathType::kStarSeqOpt: return "a*/b?";
    case PathType::kSeqSeqStar: return "a/b/c*";
    case PathType::kNegatedAlt: return "!(a|b)";
    case PathType::kPlusOfAlt: return "(a1|...|ak)+";
    case PathType::kAltAltSeq: return "(a1|..|ak)(a1|..|ak)";
    case PathType::kOptAltLink: return "a?|b";
    case PathType::kStarAltLink: return "a*|b";
    case PathType::kOptOfAlt: return "(a|b)?";
    case PathType::kLinkAltPlus: return "a|b+";
    case PathType::kPlusAltPlus: return "a+|b+";
    case PathType::kStarOfSeq: return "(a/b)*";
    case PathType::kOther: return "other";
  }
  return "other";
}

}  // namespace sparqlog::paths
