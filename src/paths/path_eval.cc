#include "paths/path_eval.h"

#include <deque>
#include <map>

namespace sparqlog::paths {

using rdf::TermId;
using sparql::PathExpr;
using sparql::PathKind;
using util::Result;
using util::Status;

int PathEvaluator::NewState() {
  eps_.emplace_back();
  out_trans_.emplace_back();
  return static_cast<int>(eps_.size()) - 1;
}

PathEvaluator::PathEvaluator(const store::TripleStore& store,
                             const PathExpr& path)
    : store_(store) {
  auto [s, a] = Build(path);
  start_ = s;
  accept_ = a;
}

/// Thompson construction; returns (start, accept).
std::pair<int, int> PathEvaluator::Build(const PathExpr& p) {
  switch (p.kind) {
    case PathKind::kLink: {
      int s = NewState(), a = NewState();
      Transition t;
      t.from = s;
      t.to = a;
      t.predicate = store_.dict().Lookup(p.iri);
      transitions_.push_back(t);
      out_trans_[static_cast<size_t>(s)].push_back(
          static_cast<int>(transitions_.size()) - 1);
      return {s, a};
    }
    case PathKind::kInverse: {
      // Inverse distributes to the leaves: build the child and flip
      // every transition created for it. For composite children the
      // sequence order must also flip; handle the common leaf cases
      // directly and general children by wrapping.
      if (p.children[0].kind == PathKind::kLink) {
        int s = NewState(), a = NewState();
        Transition t;
        t.from = s;
        t.to = a;
        t.predicate = store_.dict().Lookup(p.children[0].iri);
        t.inverse = true;
        transitions_.push_back(t);
        out_trans_[static_cast<size_t>(s)].push_back(
            static_cast<int>(transitions_.size()) - 1);
        return {s, a};
      }
      // ^(complex): reverse the child's automaton — flip its consuming
      // transitions (direction + inverse flag) and its epsilon edges,
      // then swap start and accept. Thompson children are contiguous
      // and self-contained, so only states/transitions created during
      // the child build are touched.
      size_t first_transition = transitions_.size();
      size_t first_state = eps_.size();
      auto [cs, ca] = Build(p.children[0]);
      for (size_t i = first_transition; i < transitions_.size(); ++i) {
        Transition& t = transitions_[i];
        std::swap(t.from, t.to);
        t.inverse = !t.inverse;
      }
      std::vector<std::vector<int>> reversed(eps_.size() - first_state);
      for (size_t u = first_state; u < eps_.size(); ++u) {
        for (int v : eps_[u]) {
          reversed[static_cast<size_t>(v) - first_state].push_back(
              static_cast<int>(u));
        }
        eps_[u].clear();
      }
      for (size_t u = first_state; u < eps_.size(); ++u) {
        eps_[u] = std::move(reversed[u - first_state]);
      }
      for (auto& list : out_trans_) list.clear();
      for (size_t i = 0; i < transitions_.size(); ++i) {
        out_trans_[static_cast<size_t>(transitions_[i].from)].push_back(
            static_cast<int>(i));
      }
      return {ca, cs};
    }
    case PathKind::kNegated: {
      int s = NewState(), a = NewState();
      Transition t;
      t.from = s;
      t.to = a;
      t.is_negated = true;
      for (const PathExpr& member : p.children) {
        if (member.kind == PathKind::kLink) {
          t.negated.emplace_back(store_.dict().Lookup(member.iri), false);
        } else if (member.kind == PathKind::kInverse &&
                   member.children[0].kind == PathKind::kLink) {
          t.negated.emplace_back(
              store_.dict().Lookup(member.children[0].iri), true);
        }
      }
      transitions_.push_back(t);
      out_trans_[static_cast<size_t>(s)].push_back(
          static_cast<int>(transitions_.size()) - 1);
      return {s, a};
    }
    case PathKind::kSeq: {
      int s = -1, a = -1;
      for (const PathExpr& c : p.children) {
        auto [cs, ca] = Build(c);
        if (s < 0) {
          s = cs;
        } else {
          eps_[static_cast<size_t>(a)].push_back(cs);
        }
        a = ca;
      }
      return {s, a};
    }
    case PathKind::kAlt: {
      int s = NewState(), a = NewState();
      for (const PathExpr& c : p.children) {
        auto [cs, ca] = Build(c);
        eps_[static_cast<size_t>(s)].push_back(cs);
        eps_[static_cast<size_t>(ca)].push_back(a);
      }
      return {s, a};
    }
    case PathKind::kZeroOrMore: {
      int s = NewState(), a = NewState();
      auto [cs, ca] = Build(p.children[0]);
      eps_[static_cast<size_t>(s)].push_back(cs);
      eps_[static_cast<size_t>(s)].push_back(a);
      eps_[static_cast<size_t>(ca)].push_back(cs);
      eps_[static_cast<size_t>(ca)].push_back(a);
      return {s, a};
    }
    case PathKind::kOneOrMore: {
      int s = NewState(), a = NewState();
      auto [cs, ca] = Build(p.children[0]);
      eps_[static_cast<size_t>(s)].push_back(cs);
      eps_[static_cast<size_t>(ca)].push_back(cs);
      eps_[static_cast<size_t>(ca)].push_back(a);
      return {s, a};
    }
    case PathKind::kZeroOrOne: {
      int s = NewState(), a = NewState();
      auto [cs, ca] = Build(p.children[0]);
      eps_[static_cast<size_t>(s)].push_back(cs);
      eps_[static_cast<size_t>(s)].push_back(a);
      eps_[static_cast<size_t>(ca)].push_back(a);
      return {s, a};
    }
  }
  int s = NewState();
  return {s, s};
}

void PathEvaluator::EpsilonClose(std::set<int>& states) const {
  std::deque<int> frontier(states.begin(), states.end());
  while (!frontier.empty()) {
    int s = frontier.front();
    frontier.pop_front();
    for (int t : eps_[static_cast<size_t>(s)]) {
      if (states.insert(t).second) frontier.push_back(t);
    }
  }
}

void PathEvaluator::Step(const std::set<int>& states, TermId node,
                         std::vector<std::pair<int, TermId>>& out) const {
  std::vector<rdf::EncodedTriple> matches;
  for (int s : states) {
    for (int ti : out_trans_[static_cast<size_t>(s)]) {
      const Transition& t = transitions_[static_cast<size_t>(ti)];
      matches.clear();
      if (t.is_negated) {
        // Forward edges whose predicate is not negated-forward.
        store_.Match(node, 0, 0, matches);
        for (const auto& m : matches) {
          bool excluded = false;
          for (const auto& [pred, inv] : t.negated) {
            if (!inv && pred == m.p) excluded = true;
          }
          if (!excluded) out.emplace_back(t.to, m.o);
        }
        // Reverse edges whose predicate is not negated-inverse.
        bool any_inverse_member = false;
        for (const auto& [pred, inv] : t.negated) {
          if (inv) any_inverse_member = true;
        }
        if (any_inverse_member) {
          matches.clear();
          store_.Match(0, 0, node, matches);
          for (const auto& m : matches) {
            bool excluded = false;
            for (const auto& [pred, inv] : t.negated) {
              if (inv && pred == m.p) excluded = true;
            }
            if (!excluded) out.emplace_back(t.to, m.s);
          }
        }
        continue;
      }
      if (t.predicate == 0) continue;  // unknown IRI: never matches
      if (t.inverse) {
        store_.Match(0, t.predicate, node, matches);
        for (const auto& m : matches) out.emplace_back(t.to, m.s);
      } else {
        store_.Match(node, t.predicate, 0, matches);
        for (const auto& m : matches) out.emplace_back(t.to, m.o);
      }
    }
  }
}

std::set<TermId> PathEvaluator::ReachableFrom(TermId source) const {
  // BFS over (node, state) pairs.
  std::set<std::pair<TermId, int>> seen;
  std::set<TermId> reachable;
  std::set<int> init{start_};
  EpsilonClose(init);
  std::deque<std::pair<TermId, int>> frontier;
  for (int s : init) {
    if (seen.insert({source, s}).second) frontier.push_back({source, s});
    if (s == accept_) reachable.insert(source);
  }
  while (!frontier.empty()) {
    auto [node, state] = frontier.front();
    frontier.pop_front();
    std::vector<std::pair<int, TermId>> next;
    Step({state}, node, next);
    for (auto [nstate, nnode] : next) {
      std::set<int> closure{nstate};
      EpsilonClose(closure);
      for (int s : closure) {
        if (s == accept_) reachable.insert(nnode);
        if (seen.insert({nnode, s}).second) frontier.push_back({nnode, s});
      }
    }
  }
  return reachable;
}

bool PathEvaluator::Matches(TermId source, TermId target) const {
  std::set<TermId> reachable = ReachableFrom(source);
  return reachable.count(target) > 0;
}

bool PathEvaluator::SimplePathDfs(TermId node, const std::set<int>& states,
                                  TermId target,
                                  std::set<TermId>& on_path,
                                  uint64_t& steps, uint64_t max_steps,
                                  bool& found) const {
  if (++steps > max_steps) return false;  // budget exhausted
  if (states.count(accept_) > 0 && node == target) {
    found = true;
    return true;
  }
  std::vector<std::pair<int, TermId>> next;
  Step(states, node, next);
  // Group next states by node (a simple path may revisit NFA states but
  // not graph nodes).
  std::map<TermId, std::set<int>> by_node;
  for (auto [state, nnode] : next) {
    if (on_path.count(nnode) > 0) continue;
    by_node[nnode].insert(state);
  }
  for (auto& [nnode, nstates] : by_node) {
    EpsilonClose(nstates);
    on_path.insert(nnode);
    bool done = SimplePathDfs(nnode, nstates, target, on_path, steps,
                              max_steps, found);
    on_path.erase(nnode);
    if (done && found) return true;
    if (steps > max_steps) return false;
  }
  return steps <= max_steps;
}

Result<bool> PathEvaluator::MatchesSimplePath(TermId source, TermId target,
                                              uint64_t max_steps) const {
  std::set<int> init{start_};
  EpsilonClose(init);
  std::set<TermId> on_path{source};
  uint64_t steps = 0;
  bool found = false;
  bool completed = SimplePathDfs(source, init, target, on_path, steps,
                                 max_steps, found);
  if (found) return true;
  if (!completed) {
    return Status::Timeout("simple-path search exceeded step budget");
  }
  return false;
}

}  // namespace sparqlog::paths
