#ifndef SPARQLOG_PATHS_CTRACT_H_
#define SPARQLOG_PATHS_CTRACT_H_

#include "sparql/ast.h"

namespace sparqlog::paths {

/// Membership test for the tractable class C_tract of Bagan, Bonifati,
/// and Groz [6]: evaluating a property path under *simple path*
/// semantics is in PTIME iff its language is in C_tract, and
/// NP-complete otherwise.
///
/// We implement the structural test sufficient for the corpus analysis
/// (Section 7): a language is recognized as tractable when it is a
/// finite union of expressions of the form  w1 A* w2  (words around a
/// "local" Kleene star over single letters). Structurally:
///  * star/plus over an expression whose words have length <= 1
///    (letters, alternations of letters) is tractable — this is A*;
///  * concatenations are tractable when at most one factor is unbounded;
///  * alternations/options of tractable parts are tractable;
///  * a star over an expression that can match a word of length >= 2
///    (such as `(a/b)*`) is not in C_tract.
/// Nested-star forms like `(a*)*` are flattened first. Every expression
/// type of Table 5 classifies exactly as the paper reports (all
/// tractable except `(a/b)*`).
bool IsCtract(const sparql::PathExpr& path);

}  // namespace sparqlog::paths

#endif  // SPARQLOG_PATHS_CTRACT_H_
