#ifndef SPARQLOG_PATHS_PATH_EVAL_H_
#define SPARQLOG_PATHS_PATH_EVAL_H_

#include <cstdint>
#include <set>
#include <vector>

#include "sparql/ast.h"
#include "store/store.h"
#include "util/result.h"

namespace sparqlog::paths {

/// Property-path evaluation over a TripleStore — the experimental
/// companion to the Section 7 analysis. Two semantics:
///
///  * **Walk semantics** (SPARQL 1.1): a path matches any walk in the
///    graph. Evaluated via BFS on the product of the graph and a
///    Thompson NFA of the expression — always polynomial.
///  * **Simple-path semantics** (Bagan et al. [6]): nodes may not
///    repeat. NP-complete in general; for C_tract expressions it is in
///    PTIME, and outside C_tract the search degrades to exponential
///    enumeration — which this evaluator exposes via its step budget.
class PathEvaluator {
 public:
  /// Compiles `path` against a built store. Predicates not present in
  /// the dictionary simply never match.
  PathEvaluator(const store::TripleStore& store, const sparql::PathExpr& path);

  /// All nodes reachable from `source` by a walk matching the path.
  std::set<rdf::TermId> ReachableFrom(rdf::TermId source) const;

  /// Walk-semantics existence test: some matching walk source -> target?
  bool Matches(rdf::TermId source, rdf::TermId target) const;

  /// Simple-path-semantics existence test with a step budget. Returns
  /// kTimeout when the budget is exhausted before an answer is known
  /// (the practical signature of a non-C_tract expression).
  util::Result<bool> MatchesSimplePath(rdf::TermId source,
                                       rdf::TermId target,
                                       uint64_t max_steps = 1000000) const;

  int num_states() const { return static_cast<int>(eps_.size()); }

 private:
  /// One NFA edge transition: consume a graph edge.
  struct Transition {
    int from = 0;
    int to = 0;
    rdf::TermId predicate = 0;  ///< 0 for negated sets
    bool inverse = false;
    /// Negated property set: matches any edge whose (predicate,
    /// direction) is NOT in this list. Empty unless negated.
    std::vector<std::pair<rdf::TermId, bool>> negated;
    bool is_negated = false;
  };

  std::pair<int, int> Build(const sparql::PathExpr& p);
  int NewState();
  void EpsilonClose(std::set<int>& states) const;
  void Step(const std::set<int>& states, rdf::TermId node,
            std::vector<std::pair<int, rdf::TermId>>& out) const;

  bool SimplePathDfs(rdf::TermId node, const std::set<int>& states,
                     rdf::TermId target, std::set<rdf::TermId>& on_path,
                     uint64_t& steps, uint64_t max_steps, bool& found) const;

  const store::TripleStore& store_;
  std::vector<std::vector<int>> eps_;       ///< epsilon edges per state
  std::vector<Transition> transitions_;     ///< consuming edges
  std::vector<std::vector<int>> out_trans_; ///< transition ids per state
  int start_ = 0;
  int accept_ = 0;
};

}  // namespace sparqlog::paths

#endif  // SPARQLOG_PATHS_PATH_EVAL_H_
