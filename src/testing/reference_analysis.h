#ifndef SPARQLOG_TESTING_REFERENCE_ANALYSIS_H_
#define SPARQLOG_TESTING_REFERENCE_ANALYSIS_H_

#include <set>
#include <vector>

#include "graph/canonical.h"
#include "graph/graph.h"
#include "graph/shapes.h"
#include "rdf/term.h"
#include "sparql/ast.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::testing::reference {

// ---------------------------------------------------------------------------
// The pre-change structural-analysis implementations, retained verbatim
// (modulo renames) as the differential oracle for the allocation-lean
// rewrite: std::map-keyed term interning over concatenated NodeKey
// strings, std::set adjacency, set-copying kernelization, and the
// set-based det-k-decomp search. bench_analysis_hotpath times them as
// the baseline; the property tests and fuzz phase 5 replay old-vs-new
// on random graphs and fuzzed queries. Do not "improve" this code — its
// value is that it stays exactly what shipped before the rewrite.
// ---------------------------------------------------------------------------

/// The pre-change Graph: set-semantics adjacency, one std::set per node.
class ReferenceGraph {
 public:
  ReferenceGraph() = default;
  explicit ReferenceGraph(int num_nodes)
      : adj_(static_cast<size_t>(num_nodes)) {}

  int AddNode();
  void AddEdge(int u, int v);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  int num_edges() const { return num_edges_; }
  int num_proper_edges() const {
    return num_edges_ - static_cast<int>(self_loops_.size());
  }

  bool HasEdge(int u, int v) const;
  bool HasSelfLoop(int v) const { return self_loops_.count(v) > 0; }
  const std::set<int>& self_loops() const { return self_loops_; }
  const std::set<int>& Neighbors(int v) const {
    return adj_[static_cast<size_t>(v)];
  }
  int Degree(int v) const {
    return static_cast<int>(adj_[static_cast<size_t>(v)].size());
  }

  std::vector<std::vector<int>> ConnectedComponents() const;
  ReferenceGraph InducedSubgraph(const std::vector<int>& nodes,
                                 std::vector<int>* index_map = nullptr) const;
  bool IsAcyclic(bool ignore_self_loops = false) const;
  int Girth() const;

 private:
  std::vector<std::set<int>> adj_;
  std::set<int> self_loops_;
  int num_edges_ = 0;
};

/// The pre-change Hypergraph: one std::set<int> per hyperedge.
class ReferenceHypergraph {
 public:
  ReferenceHypergraph() = default;

  void AddEdge(std::set<int> nodes);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<std::set<int>>& edges() const { return edges_; }

  bool IsAlphaAcyclic() const;

 private:
  std::vector<std::set<int>> edges_;
  int num_nodes_ = 0;
};

/// Pre-change canonical graph result (node_terms are owned copies, the
/// way the old builder materialized them).
struct ReferenceCanonicalGraph {
  ReferenceGraph graph;
  std::vector<rdf::Term> node_terms;
  bool valid = true;
};

/// Pre-change canonical-graph builder: NodeKey string per term, one
/// std::map id table per query.
ReferenceCanonicalGraph BuildCanonicalGraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const graph::CanonicalOptions& options = graph::CanonicalOptions());

/// Pre-change canonical-hypergraph builder.
ReferenceHypergraph BuildCanonicalHypergraph(
    const std::vector<const sparql::TriplePattern*>& triples,
    const std::vector<const sparql::Expr*>& filters,
    const graph::CanonicalOptions& options = graph::CanonicalOptions());

/// Pre-change shape classifier (Blocks/petal/flower over std::set).
graph::ShapeClass ClassifyShape(const ReferenceGraph& g);

/// Pre-change treewidth: set-copying kernelization with full re-scans,
/// then the bitset elimination solver.
width::TreewidthResult Treewidth(const ReferenceGraph& g);
bool TreewidthAtMost2(const ReferenceGraph& g);

/// Pre-change generalized hypertree width: set-based det-k-decomp.
width::GhwResult GeneralizedHypertreeWidth(const ReferenceHypergraph& hg,
                                           int max_k = 4);

/// Copies a (new, flat) Graph into the reference representation so
/// property tests can run both classifiers on the same random graph.
ReferenceGraph FromGraph(const graph::Graph& g);

}  // namespace sparqlog::testing::reference

#endif  // SPARQLOG_TESTING_REFERENCE_ANALYSIS_H_
