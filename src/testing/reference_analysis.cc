#include "testing/reference_analysis.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>

namespace sparqlog::testing::reference {

using rdf::Term;
using sparql::Expr;
using sparql::ExprKind;
using sparql::TriplePattern;

// ---------------------------------------------------------------------------
// Pre-change Graph (verbatim graph/graph.cc)
// ---------------------------------------------------------------------------

int ReferenceGraph::AddNode() {
  adj_.emplace_back();
  return static_cast<int>(adj_.size()) - 1;
}

void ReferenceGraph::AddEdge(int u, int v) {
  if (u == v) {
    if (self_loops_.insert(v).second) ++num_edges_;
    return;
  }
  if (adj_[static_cast<size_t>(u)].insert(v).second) {
    adj_[static_cast<size_t>(v)].insert(u);
    ++num_edges_;
  }
}

bool ReferenceGraph::HasEdge(int u, int v) const {
  if (u == v) return HasSelfLoop(v);
  return adj_[static_cast<size_t>(u)].count(v) > 0;
}

std::vector<std::vector<int>> ReferenceGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> seen(adj_.size(), false);
  for (int start = 0; start < num_nodes(); ++start) {
    if (seen[static_cast<size_t>(start)]) continue;
    std::vector<int> comp;
    std::queue<int> frontier;
    frontier.push(start);
    seen[static_cast<size_t>(start)] = true;
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      comp.push_back(v);
      for (int w : Neighbors(v)) {
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = true;
          frontier.push(w);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

ReferenceGraph ReferenceGraph::InducedSubgraph(
    const std::vector<int>& nodes, std::vector<int>* index_map) const {
  std::vector<int> map(adj_.size(), -1);
  ReferenceGraph sub(static_cast<int>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    map[static_cast<size_t>(nodes[i])] = static_cast<int>(i);
  }
  for (int v : nodes) {
    int nv = map[static_cast<size_t>(v)];
    if (HasSelfLoop(v)) sub.AddEdge(nv, nv);
    for (int w : Neighbors(v)) {
      int nw = map[static_cast<size_t>(w)];
      if (nw >= 0 && nv < nw) sub.AddEdge(nv, nw);
    }
  }
  if (index_map != nullptr) *index_map = std::move(map);
  return sub;
}

bool ReferenceGraph::IsAcyclic(bool ignore_self_loops) const {
  if (!ignore_self_loops && !self_loops_.empty()) return false;
  int components = static_cast<int>(ConnectedComponents().size());
  return num_proper_edges() == num_nodes() - components;
}

int ReferenceGraph::Girth() const {
  if (!self_loops_.empty()) return 1;
  int best = 0;
  int n = num_nodes();
  for (int start = 0; start < n; ++start) {
    std::vector<int> dist(static_cast<size_t>(n), -1);
    std::vector<int> parent(static_cast<size_t>(n), -1);
    std::queue<int> frontier;
    dist[static_cast<size_t>(start)] = 0;
    frontier.push(start);
    while (!frontier.empty()) {
      int v = frontier.front();
      frontier.pop();
      for (int w : Neighbors(v)) {
        if (dist[static_cast<size_t>(w)] < 0) {
          dist[static_cast<size_t>(w)] = dist[static_cast<size_t>(v)] + 1;
          parent[static_cast<size_t>(w)] = v;
          frontier.push(w);
        } else if (w != parent[static_cast<size_t>(v)]) {
          int len = dist[static_cast<size_t>(v)] +
                    dist[static_cast<size_t>(w)] + 1;
          if (best == 0 || len < best) best = len;
        }
      }
    }
  }
  return best;
}

ReferenceGraph FromGraph(const graph::Graph& g) {
  ReferenceGraph out(g.num_nodes());
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (g.HasSelfLoop(v)) out.AddEdge(v, v);
    for (int w : g.Neighbors(v)) {
      if (v < w) out.AddEdge(v, w);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pre-change Hypergraph (verbatim graph/hypergraph.cc)
// ---------------------------------------------------------------------------

void ReferenceHypergraph::AddEdge(std::set<int> nodes) {
  if (nodes.empty()) return;
  num_nodes_ = std::max(num_nodes_, *nodes.rbegin() + 1);
  edges_.push_back(std::move(nodes));
}

bool ReferenceHypergraph::IsAlphaAcyclic() const {
  std::vector<std::set<int>> edges = edges_;
  std::vector<bool> alive(edges.size(), true);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<int> occurrences(static_cast<size_t>(num_nodes_), 0);
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (int v : edges[i]) ++occurrences[static_cast<size_t>(v)];
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (auto it = edges[i].begin(); it != edges[i].end();) {
        if (occurrences[static_cast<size_t>(*it)] == 1) {
          it = edges[i].erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
      if (edges[i].empty()) alive[i] = false;
    }
    for (size_t i = 0; i < edges.size(); ++i) {
      if (!alive[i]) continue;
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j || !alive[j]) continue;
        if (std::includes(edges[j].begin(), edges[j].end(),
                          edges[i].begin(), edges[i].end()) &&
            (edges[i] != edges[j] || i > j)) {
          alive[i] = false;
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    if (alive[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Pre-change canonical builders (verbatim graph/canonical.cc)
// ---------------------------------------------------------------------------

namespace {

class UnionFind {
 public:
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }
  int Add() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return static_cast<int>(parent_.size()) - 1;
  }

 private:
  std::vector<int> parent_;
};

std::string NodeKey(const Term& t) {
  switch (t.kind) {
    case rdf::TermKind::kVariable: return "?" + std::string(t.value);
    case rdf::TermKind::kBlank: return "_" + std::string(t.value);
    case rdf::TermKind::kIri: return "<" + std::string(t.value);
    case rdf::TermKind::kLiteral:
      return "\"" + std::string(t.value) + "^" + std::string(t.datatype) +
             "@" + std::string(t.lang);
  }
  return "";
}

void CollectEqualityPairs(const Expr& e,
                          std::vector<std::pair<std::string, std::string>>& out) {
  if (graph::IsVarEqualityFilter(e)) {
    out.emplace_back("?" + e.args[0].term.value, "?" + e.args[1].term.value);
    return;
  }
  if (e.kind == ExprKind::kAnd) {
    for (const Expr& a : e.args) CollectEqualityPairs(a, out);
  }
}

}  // namespace

ReferenceCanonicalGraph BuildCanonicalGraph(
    const std::vector<const TriplePattern*>& triples,
    const std::vector<const Expr*>& filters,
    const graph::CanonicalOptions& options) {
  ReferenceCanonicalGraph out;
  for (const TriplePattern* tp : triples) {
    if (tp->has_path || tp->predicate.is_variable()) {
      out.valid = false;
      return out;
    }
  }

  UnionFind uf;
  std::map<std::string, int> key_to_uf;
  std::map<int, Term> uf_term;
  auto intern = [&](const Term& t) {
    std::string key = NodeKey(t);
    auto it = key_to_uf.find(key);
    if (it != key_to_uf.end()) return it->second;
    int id = uf.Add();
    key_to_uf.emplace(std::move(key), id);
    uf_term.emplace(id, t);
    return id;
  };

  if (options.collapse_equality_filters) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const Expr* f : filters) CollectEqualityPairs(*f, pairs);
    for (const auto& [a, b] : pairs) {
      Term ta = Term::Var(a.substr(1));
      Term tb = Term::Var(b.substr(1));
      uf.Union(intern(ta), intern(tb));
    }
  }

  auto keep = [&](const Term& t) {
    return options.include_constants || t.is_unknown();
  };

  std::map<int, int> class_to_node;
  auto node_of = [&](const Term& t) {
    int cls = uf.Find(intern(t));
    auto it = class_to_node.find(cls);
    if (it != class_to_node.end()) return it->second;
    int node = out.graph.AddNode();
    out.node_terms.push_back(uf_term.at(cls));
    class_to_node.emplace(cls, node);
    return node;
  };

  for (const TriplePattern* tp : triples) {
    bool ks = keep(tp->subject);
    bool ko = keep(tp->object);
    if (ks && ko) {
      out.graph.AddEdge(node_of(tp->subject), node_of(tp->object));
    } else if (ks) {
      node_of(tp->subject);
    } else if (ko) {
      node_of(tp->object);
    }
  }
  return out;
}

ReferenceHypergraph BuildCanonicalHypergraph(
    const std::vector<const TriplePattern*>& triples,
    const std::vector<const Expr*>& filters,
    const graph::CanonicalOptions& options) {
  UnionFind uf;
  std::map<std::string, int> key_to_uf;
  auto intern = [&](const Term& t) {
    std::string key = NodeKey(t);
    auto it = key_to_uf.find(key);
    if (it != key_to_uf.end()) return it->second;
    int id = uf.Add();
    key_to_uf.emplace(std::move(key), id);
    return id;
  };

  if (options.collapse_equality_filters) {
    std::vector<std::pair<std::string, std::string>> pairs;
    for (const Expr* f : filters) CollectEqualityPairs(*f, pairs);
    for (const auto& [a, b] : pairs) {
      uf.Union(intern(Term::Var(a.substr(1))), intern(Term::Var(b.substr(1))));
    }
  }

  std::map<int, int> class_to_node;
  int next_node = 0;
  auto node_of = [&](const Term& t) {
    int cls = uf.Find(intern(t));
    auto it = class_to_node.find(cls);
    if (it != class_to_node.end()) return it->second;
    class_to_node.emplace(cls, next_node);
    return next_node++;
  };

  ReferenceHypergraph hg;
  for (const TriplePattern* tp : triples) {
    std::set<int> edge;
    if (tp->subject.is_unknown()) edge.insert(node_of(tp->subject));
    if (!tp->has_path && tp->predicate.is_unknown()) {
      edge.insert(node_of(tp->predicate));
    }
    if (tp->object.is_unknown()) edge.insert(node_of(tp->object));
    hg.AddEdge(std::move(edge));
  }
  return hg;
}

// ---------------------------------------------------------------------------
// Pre-change shape classifier (verbatim graph/shapes.cc)
// ---------------------------------------------------------------------------

namespace {

std::vector<std::vector<std::pair<int, int>>> Blocks(const ReferenceGraph& g) {
  int n = g.num_nodes();
  std::vector<int> disc(static_cast<size_t>(n), -1),
      low(static_cast<size_t>(n), 0);
  std::vector<std::pair<int, int>> edge_stack;
  std::vector<std::vector<std::pair<int, int>>> blocks;
  int timer = 0;

  std::function<void(int, int)> dfs = [&](int u, int parent) {
    disc[static_cast<size_t>(u)] = low[static_cast<size_t>(u)] = timer++;
    bool skipped_parent_edge = false;
    for (int v : g.Neighbors(u)) {
      if (v == parent && !skipped_parent_edge) {
        skipped_parent_edge = true;
        continue;
      }
      if (disc[static_cast<size_t>(v)] < 0) {
        edge_stack.emplace_back(u, v);
        dfs(v, u);
        low[static_cast<size_t>(u)] =
            std::min(low[static_cast<size_t>(u)], low[static_cast<size_t>(v)]);
        if (low[static_cast<size_t>(v)] >= disc[static_cast<size_t>(u)]) {
          std::vector<std::pair<int, int>> block;
          for (;;) {
            auto e = edge_stack.back();
            edge_stack.pop_back();
            block.push_back(e);
            if (e.first == u && e.second == v) break;
          }
          blocks.push_back(std::move(block));
        }
      } else if (disc[static_cast<size_t>(v)] < disc[static_cast<size_t>(u)]) {
        edge_stack.emplace_back(u, v);
        low[static_cast<size_t>(u)] =
            std::min(low[static_cast<size_t>(u)], disc[static_cast<size_t>(v)]);
      }
    }
  };

  for (int u = 0; u < n; ++u) {
    if (disc[static_cast<size_t>(u)] < 0) dfs(u, -1);
  }
  return blocks;
}

std::set<int> BlockNodes(const std::vector<std::pair<int, int>>& block) {
  std::set<int> nodes;
  for (const auto& [u, v] : block) {
    nodes.insert(u);
    nodes.insert(v);
  }
  return nodes;
}

std::set<int> PetalCenters(const std::vector<std::pair<int, int>>& block) {
  std::set<int> nodes = BlockNodes(block);
  std::vector<std::pair<int, int>> degrees;
  {
    for (int v : nodes) {
      int d = 0;
      for (const auto& [a, b] : block) {
        if (a == v || b == v) ++d;
      }
      degrees.emplace_back(v, d);
    }
  }
  std::set<int> branch;
  for (const auto& [v, d] : degrees) {
    if (d > 2) branch.insert(v);
    if (d < 2) return {};
  }
  if (branch.empty()) return nodes;
  if (branch.size() != 2) return {};
  auto it = branch.begin();
  int u = *it++;
  int v = *it;
  int du = 0, dv = 0;
  for (const auto& [a, b] : block) {
    if (a == u || b == u) ++du;
    if (a == v || b == v) ++dv;
  }
  if (du != dv) return {};
  return branch;
}

bool IsFlowerWithCenter(const ReferenceGraph& g, int x) {
  for (int v : g.self_loops()) {
    if (v != x) return false;
  }
  auto blocks = Blocks(g);
  std::set<std::pair<int, int>> petal_edges;
  for (const auto& block : blocks) {
    if (block.size() <= 1) continue;
    std::set<int> centers = PetalCenters(block);
    if (centers.count(x) == 0) return false;
    for (const auto& [u, v] : block) {
      petal_edges.insert({std::min(u, v), std::max(u, v)});
    }
  }
  ReferenceGraph rest(g.num_nodes());
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      if (u < v && petal_edges.count({u, v}) == 0) rest.AddEdge(u, v);
    }
  }
  for (const auto& comp : rest.ConnectedComponents()) {
    if (comp.size() <= 1) continue;
    bool has_edge = false;
    for (int v : comp) {
      if (rest.Degree(v) > 0) has_edge = true;
    }
    if (!has_edge) continue;
    if (std::find(comp.begin(), comp.end(), x) == comp.end()) return false;
  }
  return true;
}

bool IsFlowerConnected(const ReferenceGraph& g) {
  if (g.num_nodes() == 0) return true;
  if (g.IsAcyclic()) return true;
  auto blocks = Blocks(g);
  bool first = true;
  std::set<int> candidates;
  for (const auto& block : blocks) {
    if (block.size() <= 1) continue;
    std::set<int> centers = PetalCenters(block);
    if (centers.empty()) return false;
    if (first) {
      candidates = std::move(centers);
      first = false;
    } else {
      std::set<int> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            centers.begin(), centers.end(),
                            std::inserter(merged, merged.begin()));
      candidates = std::move(merged);
    }
  }
  for (int v : g.self_loops()) {
    if (first) {
      candidates.insert(v);
    }
  }
  if (!g.self_loops().empty()) {
    std::set<int> loop_nodes(g.self_loops().begin(), g.self_loops().end());
    if (loop_nodes.size() > 1) return false;
    if (first) {
      candidates = loop_nodes;
    } else {
      std::set<int> merged;
      std::set_intersection(candidates.begin(), candidates.end(),
                            loop_nodes.begin(), loop_nodes.end(),
                            std::inserter(merged, merged.begin()));
      candidates = std::move(merged);
    }
  }
  for (int x : candidates) {
    if (IsFlowerWithCenter(g, x)) return true;
  }
  return false;
}

}  // namespace

graph::ShapeClass ClassifyShape(const ReferenceGraph& g) {
  graph::ShapeClass s;
  s.girth = g.Girth();
  auto components = g.ConnectedComponents();
  bool connected = components.size() <= 1;
  bool acyclic = g.IsAcyclic();

  s.forest = acyclic;
  s.tree = acyclic && connected && g.num_nodes() > 0;
  s.single_edge = g.num_edges() == 1 && g.num_nodes() == 2;

  auto is_chain_component = [&](const std::vector<int>& comp) {
    int max_degree = 0;
    for (int v : comp) {
      if (g.HasSelfLoop(v)) return false;
      max_degree = std::max(max_degree, g.Degree(v));
    }
    int edges = 0;
    for (int v : comp) edges += g.Degree(v);
    edges /= 2;
    return edges == static_cast<int>(comp.size()) - 1 && max_degree <= 2;
  };
  if (g.num_nodes() > 0) {
    s.chain = connected && is_chain_component(components[0]);
    s.chain_set = true;
    for (const auto& comp : components) {
      if (!is_chain_component(comp)) {
        s.chain_set = false;
        break;
      }
    }
  } else {
    s.chain_set = true;
    s.forest = true;
  }

  if (s.tree) {
    int hubs = 0;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v) > 2) ++hubs;
    }
    s.star = hubs == 1;
  }

  if (connected && g.num_nodes() > 0 && g.self_loops().empty()) {
    bool all_two = true;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (g.Degree(v) != 2) all_two = false;
    }
    s.cycle = all_two && g.num_proper_edges() == g.num_nodes();
  }
  if (connected && g.num_nodes() == 1 && g.num_edges() == 1 &&
      !g.self_loops().empty()) {
    s.cycle = true;
  }

  if (g.num_nodes() == 0) {
    s.flower = true;
    s.flower_set = true;
  } else {
    s.flower_set = true;
    for (const auto& comp : components) {
      ReferenceGraph sub = g.InducedSubgraph(comp);
      if (!IsFlowerConnected(sub)) {
        s.flower_set = false;
        break;
      }
    }
    s.flower = connected && s.flower_set;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Pre-change treewidth (verbatim width/treewidth.cc)
// ---------------------------------------------------------------------------

namespace {

bool ReducesToEmpty(std::vector<std::set<int>> adj) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t v = 0; v < adj.size(); ++v) {
      size_t deg = adj[v].size();
      if (deg == 0) continue;
      if (deg == 1) {
        int u = *adj[v].begin();
        adj[static_cast<size_t>(u)].erase(static_cast<int>(v));
        adj[v].clear();
        changed = true;
      } else if (deg == 2) {
        auto it = adj[v].begin();
        int a = *it++;
        int b = *it;
        adj[static_cast<size_t>(a)].erase(static_cast<int>(v));
        adj[static_cast<size_t>(b)].erase(static_cast<int>(v));
        adj[v].clear();
        adj[static_cast<size_t>(a)].insert(b);
        adj[static_cast<size_t>(b)].insert(a);
        changed = true;
      }
    }
  }
  for (const auto& neighbors : adj) {
    if (!neighbors.empty()) return false;
  }
  return true;
}

std::vector<std::set<int>> Kernelize(const ReferenceGraph& g) {
  std::vector<std::set<int>> adj(static_cast<size_t>(g.num_nodes()));
  for (int v = 0; v < g.num_nodes(); ++v) {
    adj[static_cast<size_t>(v)] = g.Neighbors(v);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t v = 0; v < adj.size(); ++v) {
      size_t deg = adj[v].size();
      if (deg == 1) {
        int u = *adj[v].begin();
        adj[static_cast<size_t>(u)].erase(static_cast<int>(v));
        adj[v].clear();
        changed = true;
      } else if (deg == 2) {
        auto it = adj[v].begin();
        int a = *it++;
        int b = *it;
        adj[static_cast<size_t>(a)].erase(static_cast<int>(v));
        adj[static_cast<size_t>(b)].erase(static_cast<int>(v));
        adj[v].clear();
        adj[static_cast<size_t>(a)].insert(b);
        adj[static_cast<size_t>(b)].insert(a);
        changed = true;
      }
    }
  }
  std::vector<int> remap(adj.size(), -1);
  int next = 0;
  for (size_t v = 0; v < adj.size(); ++v) {
    if (!adj[v].empty()) remap[v] = next++;
  }
  std::vector<std::set<int>> kernel(static_cast<size_t>(next));
  for (size_t v = 0; v < adj.size(); ++v) {
    if (remap[v] < 0) continue;
    for (int w : adj[v]) {
      kernel[static_cast<size_t>(remap[v])].insert(
          remap[static_cast<size_t>(w)]);
    }
  }
  return kernel;
}

class EliminationSolver {
 public:
  explicit EliminationSolver(std::vector<uint64_t> adj)
      : n_(static_cast<int>(adj.size())), adj_(std::move(adj)) {}

  int Solve() {
    uint64_t all = n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
    int upper = MinFillUpperBound();
    best_ = upper;
    Search(adj_, all, 0);
    return best_;
  }

 private:
  int MinFillUpperBound() {
    std::vector<uint64_t> adj = adj_;
    uint64_t alive = n_ == 64 ? ~0ULL : ((1ULL << n_) - 1);
    int width = 0;
    while (alive != 0) {
      int best_v = -1;
      long best_fill = -1;
      for (int v = 0; v < n_; ++v) {
        if (((alive >> v) & 1) == 0) continue;
        uint64_t nb = adj[static_cast<size_t>(v)] & alive;
        long fill = 0;
        for (int a = 0; a < n_; ++a) {
          if (((nb >> a) & 1) == 0) continue;
          uint64_t missing = nb & ~adj[static_cast<size_t>(a)];
          missing &= ~(1ULL << a);
          fill += std::popcount(missing);
        }
        if (best_fill < 0 || fill < best_fill) {
          best_fill = fill;
          best_v = v;
        }
      }
      uint64_t nb = adj[static_cast<size_t>(best_v)] & alive;
      width = std::max(width, std::popcount(nb));
      Eliminate(adj, best_v, nb);
      alive &= ~(1ULL << best_v);
    }
    return width;
  }

  static void Eliminate(std::vector<uint64_t>& adj, int v, uint64_t nb) {
    for (int a = 0; a < 64; ++a) {
      if (((nb >> a) & 1) == 0) continue;
      adj[static_cast<size_t>(a)] |= nb;
      adj[static_cast<size_t>(a)] &= ~(1ULL << a);
      adj[static_cast<size_t>(a)] &= ~(1ULL << v);
    }
  }

  void Search(const std::vector<uint64_t>& adj, uint64_t alive,
              int width_so_far) {
    if (alive == 0) {
      best_ = std::min(best_, width_so_far);
      return;
    }
    if (width_so_far >= best_) return;
    auto it = memo_.find(alive);
    if (it != memo_.end() && it->second <= width_so_far) return;
    memo_[alive] = width_so_far;

    std::vector<std::pair<int, int>> candidates;
    for (int v = 0; v < n_; ++v) {
      if (((alive >> v) & 1) == 0) continue;
      int deg = std::popcount(adj[static_cast<size_t>(v)] & alive);
      candidates.emplace_back(deg, v);
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [deg, v] : candidates) {
      int width = std::max(width_so_far, deg);
      if (width >= best_) continue;
      std::vector<uint64_t> next = adj;
      Eliminate(next, v, adj[static_cast<size_t>(v)] & alive);
      Search(next, alive & ~(1ULL << v), width);
    }
  }

  int n_;
  std::vector<uint64_t> adj_;
  int best_ = 0;
  std::unordered_map<uint64_t, int> memo_;
};

}  // namespace

bool TreewidthAtMost2(const ReferenceGraph& g) {
  std::vector<std::set<int>> adj(static_cast<size_t>(g.num_nodes()));
  for (int v = 0; v < g.num_nodes(); ++v) {
    adj[static_cast<size_t>(v)] = g.Neighbors(v);
  }
  return ReducesToEmpty(std::move(adj));
}

width::TreewidthResult Treewidth(const ReferenceGraph& g) {
  width::TreewidthResult result;
  if (g.num_nodes() == 0 || g.num_proper_edges() == 0) {
    result.width = 0;
    return result;
  }
  if (g.IsAcyclic(/*ignore_self_loops=*/true)) {
    result.width = 1;
    return result;
  }
  if (TreewidthAtMost2(g)) {
    result.width = 2;
    return result;
  }
  std::vector<std::set<int>> kernel = Kernelize(g);
  if (kernel.size() > 64) {
    result.exact = false;
    result.width = static_cast<int>(kernel.size());
    return result;
  }
  std::vector<uint64_t> adj(kernel.size(), 0);
  for (size_t v = 0; v < kernel.size(); ++v) {
    for (int w : kernel[v]) adj[v] |= 1ULL << w;
  }
  EliminationSolver solver(std::move(adj));
  result.width = solver.Solve();
  return result;
}

// ---------------------------------------------------------------------------
// Pre-change generalized hypertree width (verbatim width/hypertree.cc)
// ---------------------------------------------------------------------------

namespace {

class DetKDecomp {
 public:
  DetKDecomp(const ReferenceHypergraph& hg, int k) : hg_(hg), k_(k) {}

  std::optional<int> Decompose(const std::vector<int>& edge_ids,
                               const std::set<int>& connector) {
    auto key = std::make_pair(edge_ids, connector);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    std::optional<int> result = DecomposeUncached(edge_ids, connector);
    memo_.emplace(std::move(key), result);
    return result;
  }

 private:
  std::set<int> VerticesOf(const std::vector<int>& edge_ids) const {
    std::set<int> out;
    for (int e : edge_ids) {
      const auto& edge = hg_.edges()[static_cast<size_t>(e)];
      out.insert(edge.begin(), edge.end());
    }
    return out;
  }

  std::optional<int> DecomposeUncached(const std::vector<int>& edge_ids,
                                       const std::set<int>& connector) {
    std::set<int> comp_vertices = VerticesOf(edge_ids);
    std::vector<int> candidates;
    for (int e = 0; e < hg_.num_edges(); ++e) {
      const auto& edge = hg_.edges()[static_cast<size_t>(e)];
      bool touches = false;
      for (int v : edge) {
        if (comp_vertices.count(v) > 0 || connector.count(v) > 0) {
          touches = true;
          break;
        }
      }
      if (touches) candidates.push_back(e);
    }

    std::vector<int> chosen;
    return TrySeparators(edge_ids, connector, comp_vertices, candidates, 0,
                         chosen);
  }

  std::optional<int> TrySeparators(const std::vector<int>& edge_ids,
                                   const std::set<int>& connector,
                                   const std::set<int>& comp_vertices,
                                   const std::vector<int>& candidates,
                                   size_t start, std::vector<int>& chosen) {
    if (!chosen.empty()) {
      std::optional<int> nodes =
          CheckSeparator(edge_ids, connector, comp_vertices, chosen);
      if (nodes.has_value()) return nodes;
    }
    if (chosen.size() == static_cast<size_t>(k_)) return std::nullopt;
    for (size_t i = start; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      std::optional<int> nodes = TrySeparators(
          edge_ids, connector, comp_vertices, candidates, i + 1, chosen);
      chosen.pop_back();
      if (nodes.has_value()) return nodes;
    }
    return std::nullopt;
  }

  std::optional<int> CheckSeparator(const std::vector<int>& edge_ids,
                                    const std::set<int>& connector,
                                    const std::set<int>& comp_vertices,
                                    const std::vector<int>& separator) {
    std::set<int> bag;
    for (int e : separator) {
      const auto& edge = hg_.edges()[static_cast<size_t>(e)];
      bag.insert(edge.begin(), edge.end());
    }
    for (int v : connector) {
      if (bag.count(v) == 0) return std::nullopt;
    }
    bool covers_new = false;
    for (int v : comp_vertices) {
      if (connector.count(v) == 0 && bag.count(v) > 0) {
        covers_new = true;
        break;
      }
    }
    if (!covers_new) return std::nullopt;
    std::set<int> remaining;
    for (int v : comp_vertices) {
      if (bag.count(v) == 0) remaining.insert(v);
    }
    int total_nodes = 1;
    std::set<int> assigned;
    for (int seed : remaining) {
      if (assigned.count(seed) > 0) continue;
      std::set<int> comp{seed};
      std::vector<int> frontier{seed};
      std::set<int> comp_edges;
      while (!frontier.empty()) {
        int v = frontier.back();
        frontier.pop_back();
        for (int e : edge_ids) {
          const auto& edge = hg_.edges()[static_cast<size_t>(e)];
          if (edge.count(v) == 0) continue;
          comp_edges.insert(e);
          for (int w : edge) {
            if (bag.count(w) > 0 || comp.count(w) > 0) continue;
            comp.insert(w);
            frontier.push_back(w);
          }
        }
      }
      assigned.insert(comp.begin(), comp.end());
      std::set<int> sub_connector;
      for (int e : comp_edges) {
        const auto& edge = hg_.edges()[static_cast<size_t>(e)];
        for (int w : edge) {
          if (bag.count(w) > 0) sub_connector.insert(w);
        }
      }
      std::vector<int> sub_edges(comp_edges.begin(), comp_edges.end());
      std::optional<int> sub_nodes = Decompose(sub_edges, sub_connector);
      if (!sub_nodes.has_value()) return std::nullopt;
      total_nodes += *sub_nodes;
    }
    return total_nodes;
  }

  const ReferenceHypergraph& hg_;
  int k_;
  std::map<std::pair<std::vector<int>, std::set<int>>, std::optional<int>>
      memo_;
};

}  // namespace

width::GhwResult GeneralizedHypertreeWidth(const ReferenceHypergraph& hg,
                                           int max_k) {
  width::GhwResult result;
  if (hg.num_edges() == 0) return result;

  if (hg.IsAlphaAcyclic()) {
    result.width = 1;
    result.decomposition_nodes = hg.num_edges();
    return result;
  }

  std::vector<int> all_edges(static_cast<size_t>(hg.num_edges()));
  for (int e = 0; e < hg.num_edges(); ++e) {
    all_edges[static_cast<size_t>(e)] = e;
  }
  for (int k = 2; k <= max_k; ++k) {
    DetKDecomp solver(hg, k);
    std::optional<int> nodes = solver.Decompose(all_edges, {});
    if (nodes.has_value()) {
      result.width = k;
      result.decomposition_nodes = *nodes;
      return result;
    }
  }
  result.width = max_k + 1;
  result.exact = false;
  return result;
}

}  // namespace sparqlog::testing::reference
