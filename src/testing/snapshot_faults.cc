#include "testing/snapshot_faults.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "pipeline/journal.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "util/snapshot_io.h"

namespace sparqlog::testing {

namespace {

namespace snap = util::snapshot;

std::optional<Violation> Violate(std::string invariant, std::string detail) {
  Violation v;
  v.invariant = std::move(invariant);
  v.detail = std::move(detail);
  return v;
}

const char* KindName(StorageFaultPlan::Kind kind) {
  switch (kind) {
    case StorageFaultPlan::Kind::kNone:
      return "none";
    case StorageFaultPlan::Kind::kBitFlip:
      return "bitflip";
    case StorageFaultPlan::Kind::kTruncate:
      return "truncate";
    case StorageFaultPlan::Kind::kTornPublish:
      return "torn-publish";
    case StorageFaultPlan::Kind::kFsyncFailure:
      return "fsync-fail";
    case StorageFaultPlan::Kind::kRenameFailure:
      return "rename-fail";
  }
  return "?";
}

const char* TargetName(StorageFaultPlan::Target target) {
  switch (target) {
    case StorageFaultPlan::Target::kCurrentGeneration:
      return "current";
    case StorageFaultPlan::Target::kPreviousGeneration:
      return "previous";
    case StorageFaultPlan::Target::kManifest:
      return "manifest";
  }
  return "?";
}

/// XORs one byte of `path` at the fractional offset. Any change to a
/// snapshot or manifest byte must be CRC-detected, so which byte does
/// not matter for correctness — fuzzing `where` sweeps the format.
bool FlipByteAt(const std::string& path, double where) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return false;
  const auto offset = static_cast<std::streamoff>(std::min<uint64_t>(
      size - 1, static_cast<uint64_t>(where * static_cast<double>(size))));
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!f.good()) return false;
  char b = 0;
  f.seekg(offset);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(offset);
  f.write(&b, 1);
  return f.good();
}

/// Truncates `path` to a strict prefix at the fractional offset.
bool TruncateAt(const std::string& path, double where) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return false;
  const uint64_t keep = std::min<uint64_t>(
      size - 1, static_cast<uint64_t>(where * static_cast<double>(size)));
  std::filesystem::resize_file(path, keep, ec);
  return !ec;
}

}  // namespace

std::string StorageFaultPlan::Describe() const {
  std::string s = "storage{seed=" + std::to_string(seed);
  s += std::string(" kind=") + KindName(kind);
  if (kind != Kind::kNone) {
    s += std::string(" target=") + TargetName(target);
    s += " where=" + std::to_string(where);
  }
  return s + "}";
}

StorageFaultPlan RandomStorageFaultPlan(util::Rng& rng) {
  using Kind = StorageFaultPlan::Kind;
  using Target = StorageFaultPlan::Target;
  StorageFaultPlan plan;
  plan.seed = rng.Next();
  plan.where = rng.NextDouble();
  // ~1 in 6 plans are the fault-free control: resume must be exact when
  // nothing is damaged, streamed and mmap-backed.
  if (rng.Chance(1.0 / 6.0)) return plan;
  switch (rng.Below(5)) {
    case 0:
      plan.kind = Kind::kBitFlip;
      break;
    case 1:
      plan.kind = Kind::kTruncate;
      break;
    case 2:
      plan.kind = Kind::kTornPublish;
      break;
    case 3:
      plan.kind = Kind::kFsyncFailure;
      break;
    default:
      plan.kind = Kind::kRenameFailure;
      break;
  }
  if (plan.kind == Kind::kBitFlip || plan.kind == Kind::kTruncate) {
    // At-rest damage can hit any retained file.
    switch (rng.Below(3)) {
      case 0:
        plan.target = Target::kCurrentGeneration;
        break;
      case 1:
        plan.target = Target::kPreviousGeneration;
        break;
      default:
        plan.target = Target::kManifest;
        break;
    }
  } else if (plan.kind == Kind::kTornPublish) {
    // A tear happens to whatever is being published: a generation file
    // or the manifest.
    plan.target = rng.Chance(0.3) ? Target::kManifest
                                  : Target::kCurrentGeneration;
  }
  return plan;
}

std::optional<Violation> CheckSnapshotDurability(
    const std::vector<std::string>& log, const StorageFaultPlan& plan,
    const EquivalenceConfig& config) {
  auto describe = [&] {
    return plan.Describe() + " threads=" + std::to_string(config.threads) +
           " shards=" + std::to_string(config.shards) +
           " lines=" + std::to_string(log.size());
  };

  pipeline::PipelineOptions options;
  options.threads = config.threads;
  options.queue_capacity = config.queue_capacity;
  options.shards = config.shards;
  options.use_valid_corpus = config.use_valid_corpus;
  // ~8 chunks regardless of log size, so the two setup segments (2
  // chunks each) leave input for the post-damage resume to re-read.
  options.chunk_size = std::max<size_t>(1, log.size() / 8);

  pipeline::ParallelLogPipeline reference(options);
  pipeline::PipelineResult expect = reference.Run(log);
  const std::vector<uint64_t> expect_digest =
      pipeline::StatisticsDigest(expect.analysis);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("sparqlog_snapfault_" + std::to_string(plan.seed) + ".ckpt");
  snap::SnapshotStore store(path.string());
  store.Remove();
  struct Cleanup {
    snap::SnapshotStore& store;
    ~Cleanup() { store.Remove(); }
  } cleanup{store};

  pipeline::JournalOptions jopts;
  jopts.path = path.string();
  jopts.chunks_per_segment = 2;

  auto resume = [&](bool mmap,
                    uint64_t max_segments) -> util::Result<
                                                 pipeline::JournalRunResult> {
    pipeline::VectorChunkSource source(log);
    pipeline::JournalOptions ropts = jopts;
    ropts.mmap_load = mmap;
    ropts.max_segments = max_segments;
    return pipeline::RunWithJournal(options, source, ropts);
  };

  // Setup: run two segments, leaving two retained generations and input
  // remaining.
  {
    auto r = resume(false, 2);
    if (!r.ok()) {
      return Violate("storage-setup", "setup run failed: " +
                                          r.status().ToString() + " (" +
                                          describe() + ")");
    }
    if (r.value().complete) {
      // Log too small to split into segments: degrade to a plain
      // journaled-equals-plain check (still worth asserting).
      if (pipeline::StatisticsDigest(r.value().result.analysis) !=
          expect_digest) {
        return Violate("storage-exactness",
                       "single-segment journaled run diverges from plain "
                       "run (" +
                           describe() + ")");
      }
      return std::nullopt;
    }
    if (r.value().generation != 2) {
      return Violate("storage-setup",
                     "expected generation 2 after two segments, got " +
                         std::to_string(r.value().generation) + " (" +
                         describe() + ")");
    }
  }

  auto manifest = store.ReadManifest();
  if (!manifest.ok() || manifest.value().previous == 0) {
    return Violate("storage-setup", "two generations not retained (" +
                                        describe() + ")");
  }
  const std::string manifest_path = store.manifest_path();
  const std::string current_path =
      store.GenerationPath(manifest.value().current);
  const std::string previous_path =
      store.GenerationPath(manifest.value().previous);

  // Alternate load mode by seed so both paths see every damage shape.
  const bool mmap = (plan.seed & 1) != 0;

  auto check_exact_finish = [&](const char* invariant,
                                bool expect_resumed = true)
      -> std::optional<Violation> {
    auto r = resume(mmap, 0);
    if (!r.ok()) {
      return Violate(invariant, "resume failed: " + r.status().ToString() +
                                    " (" + describe() + ")");
    }
    if (r.value().resumed != expect_resumed || !r.value().complete) {
      return Violate(invariant, "resume did not restore and finish (" +
                                    describe() + ")");
    }
    if (pipeline::StatisticsDigest(r.value().result.analysis) !=
        expect_digest) {
      return Violate(invariant,
                     "resumed digest diverges from the uninterrupted run (" +
                         describe() + ")");
    }
    return std::nullopt;
  };

  switch (plan.kind) {
    case StorageFaultPlan::Kind::kNone: {
      // Streamed resume to completion, then an mmap-backed resume of the
      // final checkpoint: both must reproduce the reference digest.
      if (auto v = check_exact_finish("storage-control")) return v;
      auto r = resume(true, 0);
      if (!r.ok() || !r.value().resumed ||
          pipeline::StatisticsDigest(r.value().result.analysis) !=
              expect_digest) {
        return Violate("storage-control",
                       "mmap-backed resume diverges (" + describe() + ")");
      }
      return std::nullopt;
    }

    case StorageFaultPlan::Kind::kBitFlip:
    case StorageFaultPlan::Kind::kTruncate: {
      const std::string& victim =
          plan.target == StorageFaultPlan::Target::kManifest ? manifest_path
          : plan.target == StorageFaultPlan::Target::kCurrentGeneration
              ? current_path
              : previous_path;
      const bool damaged = plan.kind == StorageFaultPlan::Kind::kBitFlip
                               ? FlipByteAt(victim, plan.where)
                               : TruncateAt(victim, plan.where);
      if (!damaged) {
        return Violate("storage-setup",
                       "could not damage " + victim + " (" + describe() + ")");
      }
      if (plan.target == StorageFaultPlan::Target::kManifest) {
        // A damaged manifest must be a hard, reasoned error — and a
        // fresh start must reproduce the reference exactly.
        auto r = resume(mmap, 0);
        if (r.ok()) {
          return Violate("storage-detection",
                         "damaged manifest accepted silently (" + describe() +
                             ")");
        }
        if (r.status().message().empty()) {
          return Violate("storage-detection",
                         "damaged manifest rejected without a reason (" +
                             describe() + ")");
        }
        store.Remove();
        return check_exact_finish("storage-fresh-restart",
                                  /*expect_resumed=*/false);
      }
      if (plan.target == StorageFaultPlan::Target::kCurrentGeneration) {
        // Must fall back to the previous generation and still be exact.
        auto r = resume(mmap, 0);
        if (!r.ok()) {
          return Violate("storage-fallback",
                         "no fallback from damaged current generation: " +
                             r.status().ToString() + " (" + describe() + ")");
        }
        if (!r.value().recovered_previous_generation ||
            r.value().recovery_reason.empty()) {
          return Violate("storage-fallback",
                         "damaged current generation not reported as "
                         "recovered (" +
                             describe() + ")");
        }
        if (!r.value().complete ||
            pipeline::StatisticsDigest(r.value().result.analysis) !=
                expect_digest) {
          return Violate("storage-exactness",
                         "fallback resume diverges from the uninterrupted "
                         "run (" +
                             describe() + ")");
        }
        return std::nullopt;
      }
      // Previous generation damaged: invisible, the current one carries
      // the run.
      {
        auto r = resume(mmap, 0);
        if (!r.ok() || r.value().recovered_previous_generation) {
          return Violate("storage-retention",
                         "damaged PREVIOUS generation affected the resume (" +
                             describe() + ")");
        }
        if (pipeline::StatisticsDigest(r.value().result.analysis) !=
            expect_digest) {
          return Violate("storage-exactness",
                         "resume with damaged previous generation "
                         "diverges (" +
                             describe() + ")");
        }
      }
      return std::nullopt;
    }

    case StorageFaultPlan::Kind::kTornPublish: {
      // Tear the NEXT publish of the target once, then run one more
      // segment (the tear is silent, like a power cut after an
      // unflushed write), then resume without faults: the result must
      // still be exact. Detection/fallback is exercised implicitly —
      // if the tear actually lost bytes, the resume must recover via
      // the previous generation or (manifest tear) fail hard; either
      // way the final digest must match.
      const bool manifest_target =
          plan.target == StorageFaultPlan::Target::kManifest;
      bool torn = false;
      snap::IoFaultHooks hooks;
      hooks.torn_write = [&](const std::string& p, size_t size) -> int64_t {
        const bool is_manifest = p == manifest_path;
        if (is_manifest != manifest_target || torn || size == 0) return -1;
        torn = true;
        return static_cast<int64_t>(std::min<uint64_t>(
            size - 1,
            static_cast<uint64_t>(plan.where * static_cast<double>(size))));
      };
      snap::SetIoFaultHooksForTest(&hooks);
      auto mid = resume(mmap, 1);
      snap::SetIoFaultHooksForTest(nullptr);
      if (!mid.ok()) {
        return Violate("storage-torn",
                       "torn publish surfaced as a write error: " +
                           mid.status().ToString() + " (" + describe() + ")");
      }
      if (!torn) {
        return Violate("storage-setup",
                       "torn-publish hook never fired (" + describe() + ")");
      }
      auto r = resume(mmap, 0);
      if (r.ok()) {
        if (!r.value().complete ||
            pipeline::StatisticsDigest(r.value().result.analysis) !=
                expect_digest) {
          return Violate("storage-exactness",
                         "post-tear resume diverges from the uninterrupted "
                         "run (" +
                             describe() + ")");
        }
        return std::nullopt;
      }
      // A torn manifest may be unrecoverable — that must be loud, and a
      // fresh start must still be exact.
      if (!manifest_target) {
        return Violate("storage-fallback",
                       "torn generation publish not recovered: " +
                           r.status().ToString() + " (" + describe() + ")");
      }
      store.Remove();
      return check_exact_finish("storage-fresh-restart",
                                /*expect_resumed=*/false);
    }

    case StorageFaultPlan::Kind::kFsyncFailure:
    case StorageFaultPlan::Kind::kRenameFailure: {
      // The next checkpoint publish fails at the fsync/rename step: the
      // run must surface an error (never limp on with an unsynced
      // checkpoint), and the prior checkpoint must remain resumable.
      snap::IoFaultHooks hooks;
      if (plan.kind == StorageFaultPlan::Kind::kFsyncFailure) {
        hooks.fail_fsync = [](const std::string&) { return true; };
      } else {
        hooks.fail_rename = [](const std::string&) { return true; };
      }
      snap::SetIoFaultHooksForTest(&hooks);
      auto mid = resume(mmap, 1);
      snap::SetIoFaultHooksForTest(nullptr);
      if (mid.ok()) {
        return Violate("storage-publish-error",
                       "failed fsync/rename not surfaced (" + describe() +
                           ")");
      }
      if (mid.status().message().empty()) {
        return Violate("storage-publish-error",
                       "fsync/rename failure rejected without a reason (" +
                           describe() + ")");
      }
      return check_exact_finish("storage-publish-retry");
    }
  }
  return std::nullopt;
}

}  // namespace sparqlog::testing
