#ifndef SPARQLOG_TESTING_LOG_MUTATOR_H_
#define SPARQLOG_TESTING_LOG_MUTATOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.h"

namespace sparqlog::testing {

/// Mutator configuration; the sequence is a deterministic function of
/// `seed`.
struct LogMutatorOptions {
  uint64_t seed = 42;
  /// Probability that NextLine applies at least one destructive
  /// mutation (more follow geometrically).
  double mutation_probability = 0.6;
};

/// Generates adversarial endpoint log lines to harden `ParseLogLine`:
/// valid `query=<urlencoded>` entries with randomized encoding choices,
/// then destructive mutations — escape injection (broken and gratuitous
/// %-sequences), truncation, CGI parameter noise, raw '&' splits,
/// invalid UTF-8, byte flips, and prefix damage that turns an entry
/// into noise. Every emitted line is a legal *input* (ParseLogLine
/// accepts arbitrary bytes); mutations attack the cleaning and
/// validation stages, not the process.
class LogLineMutator {
 public:
  explicit LogLineMutator(const LogMutatorOptions& options = {});

  /// URL-encodes `query_text` into a `query=...` log line. Encoding
  /// choices (hex case, '+' vs "%20", gratuitous escaping of safe
  /// bytes) are randomized, but the line always decodes back to
  /// exactly `query_text`.
  std::string EncodeLine(std::string_view query_text);

  /// Applies one random destructive mutation.
  std::string Mutate(std::string_view line);

  /// EncodeLine plus a geometric number of mutations (possibly none).
  std::string NextLine(std::string_view query_text);

 private:
  LogMutatorOptions options_;
  util::Rng rng_;
};

}  // namespace sparqlog::testing

#endif  // SPARQLOG_TESTING_LOG_MUTATOR_H_
