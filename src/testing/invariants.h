#ifndef SPARQLOG_TESTING_INVARIANTS_H_
#define SPARQLOG_TESTING_INVARIANTS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/analysis_scratch.h"
#include "corpus/ingest.h"
#include "sparql/ast.h"
#include "sparql/parser.h"
#include "util/rng.h"

namespace sparqlog::testing {

/// One invariant violation: which invariant broke, how, and the exact
/// input that triggers it (query text or raw log line — feed it back
/// through the matching Check* function to reproduce).
struct Violation {
  std::string invariant;
  std::string detail;
  std::string input;
};

/// Checks the serializer/parser invariants on an AST:
///  * serializer closure — Serialize(q) must re-parse;
///  * round-trip idempotence — Serialize(Parse(Serialize(q))) == Serialize(q);
///  * streaming hash — CanonicalHash(x) == HashBytes(Serialize(x)) for
///    both the original and the reparsed AST.
std::optional<Violation> CheckQuery(const sparql::Parser& parser,
                                    const sparql::Query& q);

/// Text-level variant: parses `text` and, when it parses, runs
/// CheckQuery on the result. Unparseable text is not a violation (the
/// corpus is full of invalid queries); this is the entry point printed
/// reproducers use.
std::optional<Violation> CheckQueryText(const sparql::Parser& parser,
                                        std::string_view text);

/// Checks the log-ingest invariants on one raw line:
///  * both ParseLogLine overloads agree field for field;
///  * parsing the same line twice is deterministic;
///  * classification matches ExtractQueryText;
///  * valid entries: canonical_hash equals the FNV of the canonical
///    serialization, and the parsed query passes CheckQuery;
///  * malformed entries: line_hash equals the FNV of the raw line.
std::optional<Violation> CheckLogLine(sparql::Parser& parser,
                                      std::string_view line);

/// Arena-path variant of CheckLogLine: parses `line` through the
/// ParseScratch overload — reusing `scratch` across calls is the point,
/// the caller owns the Reset cadence — and diffs every field plus the
/// canonical serialization against the heap overload (the
/// allocation-per-node differential oracle). Also checks detach
/// semantics: plain-copying the arena-built Query must yield an
/// independent heap AST with an identical serialization.
std::optional<Violation> CheckLogLineScratch(sparql::Parser& parser,
                                             std::string_view line,
                                             corpus::ParseScratch& scratch);

/// One randomized pipeline configuration for the serial-vs-parallel
/// equivalence check.
struct EquivalenceConfig {
  int threads = 2;
  size_t chunk_size = 512;
  size_t queue_capacity = 16;
  /// Shard count decoupled from the worker count (0 = same as threads).
  size_t shards = 0;
  bool use_valid_corpus = false;
};

/// Samples thread/chunk/queue/shard counts from the ranges that shook
/// out races during development (1..5 threads, tiny chunks included so
/// chunk boundaries move, shards != threads half the time).
EquivalenceConfig RandomEquivalenceConfig(util::Rng& rng);

/// Runs `log` through the serial path (LogIngestor + CorpusAnalyzer)
/// and through ParallelLogPipeline under `config`, then compares
/// Total/Valid/Unique, the line count, and the full StatisticsDigest.
/// Any difference is a violation.
std::optional<Violation> CheckSerialParallelEquivalence(
    const std::vector<std::string>& log, const EquivalenceConfig& config);

/// One randomized configuration for the serial-vs-sharded streak check.
struct StreakEquivalenceConfig {
  int threads = 2;
  size_t chunk_size = 64;
  size_t window = 30;
  double similarity_threshold = 0.25;
  bool strip_prologue = true;
};

/// Samples thread/chunk/window/threshold combinations, biased toward
/// the stress cases: chunks narrower than the window (every streak
/// crosses a stitch boundary) and tiny windows (eviction edges move).
StreakEquivalenceConfig RandomStreakConfig(util::Rng& rng);

/// Runs `queries` through the serial StreakDetector and through the
/// sharded StreakStage under `config`, then compares every field of the
/// two StreakReports. Any difference is a violation.
std::optional<Violation> CheckStreakEquivalence(
    const std::vector<std::string>& queries,
    const StreakEquivalenceConfig& config);

/// Differentially verifies the vectorized ingest scan layer on one
/// input:
///  * every Scalar* scan primitive (util/simd_scan.h) against a naive
///    byte-at-a-time reference, at every start offset — catches SWAR
///    bugs even in SPARQLOG_NO_SIMD builds;
///  * every Simd* primitive against its Scalar* twin, at every start
///    offset — the vector-vs-scalar lexer differential;
///  * util::PercentDecode against a byte-at-a-time reference decoder;
///  * Lexer::Tokenize determinism across two runs on the input.
std::optional<Violation> CheckScanEquivalence(std::string_view input);

/// One configuration for the mmap/stream/vector source equivalence
/// check: the pipeline config plus the file framing to exercise.
struct SourceEquivalenceConfig {
  EquivalenceConfig pipeline;
  /// MmapChunkSource slice budget (0 = lines-only chunking).
  size_t slice_bytes = 0;
  /// Write CRLF line endings (both file sources must strip the '\r').
  bool crlf = false;
  /// End the file with a line terminator (getline drops the would-be
  /// final empty line; both sources must agree).
  bool trailing_newline = true;
};

/// Samples slice budgets (including ones smaller than a line), CRLF,
/// and missing-trailing-newline framings.
SourceEquivalenceConfig RandomSourceConfig(util::Rng& rng);

/// Writes `lines` to a temporary file and pipelines it three ways —
/// in-memory vector, MmapChunkSource, IstreamLineSource — under
/// `config`, comparing Total/Valid/Unique, line counts, the full
/// StatisticsDigest, and the TelemetryDigest across all three. Bytes
/// that the line framing would consume ('\n', '\r') are stripped from
/// the lines first so the file round-trips exactly.
std::optional<Violation> CheckSourceEquivalence(
    const std::vector<std::string>& lines,
    const SourceEquivalenceConfig& config);

/// Replays one query's structural analysis through the pre-change
/// implementations (testing/reference_analysis: NodeKey-string interning,
/// std::set graphs, restart kernelization, set-based det-k-decomp) and
/// the allocation-lean scratch path, comparing canonical graph size,
/// node terms, every ShapeClass flag, girth, treewidth, and — for
/// hypergraphs small enough for the exact search — GHW width and
/// decomposition size. `scratch` is deliberately long-lived so cross-
/// query state leaks in the recycled buffers would surface as
/// divergence.
std::optional<Violation> CheckAnalysisEquivalence(
    const sparql::Query& q, corpus::AnalysisScratch& scratch);

}  // namespace sparqlog::testing

#endif  // SPARQLOG_TESTING_INVARIANTS_H_
