#include "testing/query_fuzzer.h"

#include <cstddef>
#include <string>
#include <utility>

#include "gmark/schema.h"

namespace sparqlog::testing {

using rdf::Term;
using sparql::Expr;
using sparql::ExprKind;
using sparql::PathExpr;
using sparql::PathKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;
using sparql::TriplePattern;
namespace termgen = sparql::termgen;

// Coverage arrays must track the AST enums exactly: a new enumerator
// without a matching slot would either index out of bounds here or let
// the coverage test pass vacuously.
static_assert(static_cast<size_t>(QueryForm::kDescribe) + 1 ==
              std::tuple_size_v<decltype(FuzzCoverage::forms)>);
static_assert(static_cast<size_t>(PatternKind::kSubSelect) + 1 ==
              std::tuple_size_v<decltype(FuzzCoverage::patterns)>);
static_assert(static_cast<size_t>(PathKind::kZeroOrOne) + 1 ==
              std::tuple_size_v<decltype(FuzzCoverage::paths)>);
static_assert(static_cast<size_t>(ExprKind::kNotExists) + 1 ==
              std::tuple_size_v<decltype(FuzzCoverage::exprs)>);
static_assert(static_cast<size_t>(rdf::TermKind::kVariable) + 1 ==
              std::tuple_size_v<decltype(FuzzCoverage::terms)>);
static_assert(static_cast<size_t>(gmark::QueryShape::kChainStar) + 1 ==
              std::tuple_size_v<decltype(FuzzCoverage::shapes)>);

namespace {

/// Builtin function names the parser accepts as `NAME(args)`. Stored
/// upper-case because the parser canonicalizes call names to upper.
constexpr const char* kBuiltins[] = {
    "STR",      "LANG",     "DATATYPE", "BOUND",      "IRI",
    "ABS",      "CEIL",     "FLOOR",    "ROUND",      "STRLEN",
    "UCASE",    "LCASE",    "CONTAINS", "STRSTARTS",  "STRENDS",
    "CONCAT",   "SUBSTR",   "REPLACE",  "REGEX",      "YEAR",
    "ISIRI",    "ISBLANK",  "ISLITERAL", "ISNUMERIC", "LANGMATCHES",
    "SAMETERM", "IF",       "COALESCE", "MD5",        "NOW",
};

constexpr const char* kCompareOps[] = {"=", "!=", "<", ">", "<=", ">="};
constexpr const char* kArithOps[] = {"+", "-", "*", "/"};

bool NeedsLiteralEscape(std::string_view body) {
  return body.find_first_of(termgen::EscapedLiteralChars()) !=
         std::string::npos;
}

}  // namespace

QueryFuzzer::QueryFuzzer(const QueryFuzzOptions& options)
    : options_(options), rng_(options.seed) {
  // Pre-generate skeletons for all four paper shapes and several
  // lengths. Seeded off the fuzzer seed so the whole sequence is one
  // deterministic function of QueryFuzzOptions.
  gmark::Schema schema = gmark::Schema::Bib();
  const gmark::QueryShape shapes[] = {
      gmark::QueryShape::kChain, gmark::QueryShape::kStar,
      gmark::QueryShape::kCycle, gmark::QueryShape::kChainStar};
  for (gmark::QueryShape shape : shapes) {
    for (int length : {2, 3, 5}) {
      gmark::QueryGenOptions gen;
      gen.shape = shape;
      gen.length = length;
      gen.workload_size = 6;
      gen.ask_form = false;
      gen.seed = options_.seed ^ (static_cast<uint64_t>(shape) << 8 |
                                  static_cast<uint64_t>(length));
      for (gmark::GeneratedQuery& q : gmark::GenerateWorkload(schema, gen)) {
        skeletons_.push_back(std::move(q));
      }
    }
  }
}

Term QueryFuzzer::GenTerm(const termgen::TermGenOptions& options) {
  Term t = termgen::RandomTerm(rng_, options);
  ++coverage_.terms[static_cast<size_t>(t.kind)];
  if (t.is_literal() && NeedsLiteralEscape(t.value)) {
    ++coverage_.escaped_literals;
  }
  return t;
}

Term QueryFuzzer::GenVarOrIri() {
  Term t = rng_.Chance(0.5) ? Term::Var(termgen::VariableName(rng_))
                            : Term::Iri(termgen::IriString(rng_));
  ++coverage_.terms[static_cast<size_t>(t.kind)];
  return t;
}

PathExpr QueryFuzzer::GenPath(int depth) {
  auto link = [this] {
    ++coverage_.paths[static_cast<size_t>(PathKind::kLink)];
    return PathExpr::Link(termgen::IriString(rng_));
  };
  if (depth <= 0) return link();
  PathKind kind;
  switch (rng_.Below(8)) {
    case 0: kind = PathKind::kLink; break;
    case 1: kind = PathKind::kInverse; break;
    case 2: kind = PathKind::kNegated; break;
    case 3: kind = PathKind::kSeq; break;
    case 4: kind = PathKind::kAlt; break;
    case 5: kind = PathKind::kZeroOrMore; break;
    case 6: kind = PathKind::kOneOrMore; break;
    default: kind = PathKind::kZeroOrOne; break;
  }
  ++coverage_.paths[static_cast<size_t>(kind)];
  switch (kind) {
    case PathKind::kLink:
      return PathExpr::Link(termgen::IriString(rng_));
    case PathKind::kInverse:
    case PathKind::kZeroOrMore:
    case PathKind::kOneOrMore:
    case PathKind::kZeroOrOne:
      return PathExpr::Unary(kind, GenPath(depth - 1));
    case PathKind::kNegated: {
      // Members are links or inverted links, per the grammar.
      sparql::AstVector<PathExpr> members;
      size_t n = 1 + rng_.Below(3);
      for (size_t i = 0; i < n; ++i) {
        PathExpr member = PathExpr::Link(termgen::IriString(rng_));
        if (rng_.Chance(0.3)) {
          member = PathExpr::Unary(PathKind::kInverse, std::move(member));
        }
        members.push_back(std::move(member));
      }
      return PathExpr::Nary(PathKind::kNegated, std::move(members));
    }
    case PathKind::kSeq:
    case PathKind::kAlt: {
      // N-ary nodes need >= 2 children to survive a reparse.
      sparql::AstVector<PathExpr> children;
      size_t n = 2 + rng_.Below(2);
      for (size_t i = 0; i < n; ++i) children.push_back(GenPath(depth - 1));
      return PathExpr::Nary(kind, std::move(children));
    }
  }
  return link();
}

Expr QueryFuzzer::GenAggregate(int depth) {
  static constexpr const char* kAggregates[] = {
      "COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"};
  Expr e;
  e.kind = ExprKind::kAggregate;
  ++coverage_.exprs[static_cast<size_t>(e.kind)];
  e.op = kAggregates[rng_.Below(std::size(kAggregates))];
  e.distinct = rng_.Chance(0.3);
  if (e.op == "COUNT" && rng_.Chance(0.4)) {
    e.star = true;
  } else {
    e.args.push_back(GenExpr(depth - 1, false));
  }
  if (e.op == "GROUP_CONCAT" && rng_.Chance(0.5)) {
    e.separator = termgen::LiteralBody(rng_, 0.3);
  }
  return e;
}

Expr QueryFuzzer::GenExpr(int depth, bool allow_aggregate) {
  if (depth <= 0) {
    // Leaf: a term usable in expression position (no blank nodes — the
    // expression grammar has no blank node production).
    termgen::TermGenOptions term_options;
    term_options.allow_blanks = false;
    Expr e = Expr::MakeTerm(GenTerm(term_options));
    ++coverage_.exprs[static_cast<size_t>(ExprKind::kTerm)];
    return e;
  }
  ExprKind kind;
  switch (rng_.Below(14)) {
    case 0: kind = ExprKind::kTerm; break;
    case 1: kind = ExprKind::kOr; break;
    case 2: kind = ExprKind::kAnd; break;
    case 3: kind = ExprKind::kNot; break;
    case 4: kind = ExprKind::kCompare; break;
    case 5: kind = ExprKind::kIn; break;
    case 6: kind = ExprKind::kNotIn; break;
    case 7: kind = ExprKind::kArith; break;
    case 8: kind = ExprKind::kUnaryMinus; break;
    case 9: kind = ExprKind::kUnaryPlus; break;
    case 10: kind = ExprKind::kFunction; break;
    case 11: kind = allow_aggregate ? ExprKind::kAggregate
                                    : ExprKind::kFunction; break;
    case 12: kind = ExprKind::kExists; break;
    default: kind = ExprKind::kNotExists; break;
  }
  if (kind == ExprKind::kTerm) return GenExpr(0, allow_aggregate);
  if (kind == ExprKind::kAggregate) return GenAggregate(depth);
  Expr e;
  e.kind = kind;
  ++coverage_.exprs[static_cast<size_t>(kind)];
  switch (kind) {
    case ExprKind::kOr:
    case ExprKind::kAnd: {
      size_t n = 2 + rng_.Below(2);
      for (size_t i = 0; i < n; ++i) {
        e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      }
      break;
    }
    case ExprKind::kNot:
    case ExprKind::kUnaryMinus:
    case ExprKind::kUnaryPlus:
      e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      break;
    case ExprKind::kCompare:
      e.op = kCompareOps[rng_.Below(std::size(kCompareOps))];
      e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      break;
    case ExprKind::kArith:
      e.op = kArithOps[rng_.Below(std::size(kArithOps))];
      e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      break;
    case ExprKind::kIn:
    case ExprKind::kNotIn: {
      e.args.push_back(GenExpr(depth - 1, allow_aggregate));  // lhs
      size_t n = rng_.Below(3);                               // may be empty
      for (size_t i = 0; i < n; ++i) {
        e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      }
      break;
    }
    case ExprKind::kFunction: {
      if (rng_.Chance(0.2)) {
        // Extension function: called by IRI (must contain ':' so the
        // serializer renders the <iri>(args) form).
        e.op = "http://example.org/fn/" + termgen::VariableName(rng_);
      } else {
        e.op = kBuiltins[rng_.Below(std::size(kBuiltins))];
      }
      size_t n = rng_.Below(3);
      for (size_t i = 0; i < n; ++i) {
        e.args.push_back(GenExpr(depth - 1, allow_aggregate));
      }
      break;
    }
    case ExprKind::kExists:
    case ExprKind::kNotExists:
      e.pattern = std::make_shared<Pattern>(GenGroup(1));
      break;
    default:
      break;
  }
  return e;
}

Pattern QueryFuzzer::GenTriple() {
  ++coverage_.patterns[static_cast<size_t>(PatternKind::kTriple)];
  termgen::TermGenOptions subject_options;
  subject_options.allow_literals = false;  // keep subjects realistic
  Term subject = GenTerm(subject_options);
  Term object = GenTerm({});
  if (rng_.Chance(0.25)) {
    PathExpr path = GenPath(2);
    if (!path.IsSimpleLink()) {
      return Pattern::Triple(
          TriplePattern::MakePath(std::move(subject), std::move(path),
                                  std::move(object)));
    }
    // A bare link is an ordinary triple; fall through so the AST matches
    // what a reparse produces.
    return Pattern::Triple(TriplePattern::Make(
        std::move(subject), Term::Iri(path.iri), std::move(object)));
  }
  Term predicate = GenVarOrIri();
  return Pattern::Triple(TriplePattern::Make(
      std::move(subject), std::move(predicate), std::move(object)));
}

Pattern QueryFuzzer::GenValues() {
  ++coverage_.patterns[static_cast<size_t>(PatternKind::kValues)];
  Pattern p;
  p.kind = PatternKind::kValues;
  size_t vars = 1 + rng_.Below(3);
  for (size_t i = 0; i < vars; ++i) {
    p.values_vars.push_back(Term::Var(termgen::VariableName(rng_)));
  }
  size_t rows = rng_.Below(3);
  termgen::TermGenOptions cell_options;
  cell_options.allow_variables = false;  // data block values are ground
  cell_options.allow_blanks = false;
  for (size_t r = 0; r < rows; ++r) {
    sparql::AstVector<std::optional<Term>> row;
    for (size_t c = 0; c < vars; ++c) {
      if (rng_.Chance(0.2)) {
        row.push_back(std::nullopt);  // UNDEF
      } else {
        row.push_back(GenTerm(cell_options));
      }
    }
    p.values_rows.push_back(std::move(row));
  }
  return p;
}

Pattern QueryFuzzer::GenSubSelect(int depth) {
  ++coverage_.patterns[static_cast<size_t>(PatternKind::kSubSelect)];
  auto sub = std::make_shared<Query>();
  sub->form = QueryForm::kSelect;
  if (rng_.Chance(0.3)) {
    sub->select_star = true;
  } else {
    size_t n = 1 + rng_.Below(2);
    for (size_t i = 0; i < n; ++i) {
      sparql::SelectItem item;
      item.var = Term::Var(termgen::VariableName(rng_));
      if (rng_.Chance(0.3)) item.expr = GenExpr(1, true);
      sub->select_items.push_back(std::move(item));
    }
  }
  if (rng_.Chance(0.3)) sub->distinct = true;
  sub->has_body = true;
  sub->where = GenGroup(depth - 1);
  if (rng_.Chance(0.3)) sub->limit = rng_.Below(1000);
  if (rng_.Chance(0.2)) sub->offset = rng_.Below(100);
  Pattern p;
  p.kind = PatternKind::kSubSelect;
  p.subquery = std::move(sub);
  return p;
}

Pattern QueryFuzzer::GenGroupChild(int depth) {
  // Weighted toward triples so patterns look like real queries.
  uint64_t roll = rng_.Below(depth > 0 ? 16 : 6);
  switch (roll) {
    case 0:
    case 1:
    case 2:
    case 3:
      return GenTriple();
    case 4: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kFilter)];
      return Pattern::Filter(GenExpr(options_.max_expr_depth, false));
    }
    case 5: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kBind)];
      Pattern p;
      p.kind = PatternKind::kBind;
      p.expr = GenExpr(2, false);
      p.var = Term::Var(termgen::VariableName(rng_));
      return p;
    }
    case 6:
    case 7: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kOptional)];
      return Pattern::Optional(GenGroup(depth - 1));
    }
    case 8: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kMinus)];
      return Pattern::Minus(GenGroup(depth - 1));
    }
    case 9:
    case 10: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kUnion)];
      sparql::AstVector<Pattern> branches;
      size_t n = 2 + rng_.Below(2);
      for (size_t i = 0; i < n; ++i) branches.push_back(GenGroup(depth - 1));
      return Pattern::Union(std::move(branches));
    }
    case 11: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kGraph)];
      return Pattern::Graph(GenVarOrIri(), GenGroup(depth - 1));
    }
    case 12: {
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kService)];
      Pattern p;
      p.kind = PatternKind::kService;
      p.graph = GenVarOrIri();
      p.silent = rng_.Chance(0.3);
      p.children.push_back(GenGroup(depth - 1));
      return p;
    }
    case 13:
      return GenValues();
    case 14:
      return GenSubSelect(depth);
    default: {
      // A nested plain group.
      ++coverage_.patterns[static_cast<size_t>(PatternKind::kGroup)];
      return GenGroup(depth - 1);
    }
  }
}

Pattern QueryFuzzer::GenGroup(int depth) {
  ++coverage_.patterns[static_cast<size_t>(PatternKind::kGroup)];
  sparql::AstVector<Pattern> children;
  size_t n = rng_.Below(4);  // empty groups are legal
  if (depth <= 0 && n == 0) n = 1;
  for (size_t i = 0; i < n; ++i) {
    children.push_back(GenGroupChild(depth));
  }
  return Pattern::Group(std::move(children));
}

sparql::AstVector<Pattern> QueryFuzzer::GenBaseTriples() {
  if (!skeletons_.empty() &&
      rng_.Chance(options_.gmark_skeleton_probability)) {
    const gmark::GeneratedQuery& skeleton =
        skeletons_[rng_.Below(skeletons_.size())];
    ++coverage_.gmark_skeletons;
    ++coverage_.shapes[static_cast<size_t>(skeleton.shape)];
    sparql::AstVector<Pattern> children = skeleton.sparql.where.children;
    for (Pattern& child : children) {
      if (child.kind == PatternKind::kTriple) {
        ++coverage_.patterns[static_cast<size_t>(PatternKind::kTriple)];
        // Occasionally upgrade a skeleton edge to a property path so
        // shaped BGPs also exercise the path serializer.
        if (!child.triple.has_path && rng_.Chance(0.15)) {
          PathExpr path = GenPath(2);
          if (!path.IsSimpleLink()) {
            child.triple.has_path = true;
            child.triple.path = std::move(path);
          }
        }
      }
    }
    return children;
  }
  sparql::AstVector<Pattern> children;
  size_t n = 1 + rng_.Below(3);
  for (size_t i = 0; i < n; ++i) children.push_back(GenTriple());
  return children;
}

void QueryFuzzer::GenSolutionModifiers(Query& q) {
  if (rng_.Chance(0.2)) {
    size_t n = 1 + rng_.Below(2);
    for (size_t i = 0; i < n; ++i) {
      sparql::GroupCondition gc;
      switch (rng_.Below(3)) {
        case 0:
          gc.expr = Expr::MakeVar(termgen::VariableName(rng_));
          break;
        case 1:
          gc.expr = GenExpr(2, false);
          gc.as_var = Term::Var(termgen::VariableName(rng_));
          break;
        default:
          gc.expr = GenExpr(2, false);
          break;
      }
      q.group_by.push_back(std::move(gc));
    }
    if (rng_.Chance(0.5)) {
      q.having.push_back(GenExpr(2, true));
    }
  }
  if (rng_.Chance(0.25)) {
    size_t n = 1 + rng_.Below(2);
    for (size_t i = 0; i < n; ++i) {
      sparql::OrderCondition oc;
      oc.descending = rng_.Chance(0.4);
      oc.expr = rng_.Chance(0.6) ? Expr::MakeVar(termgen::VariableName(rng_))
                                 : GenExpr(2, true);
      q.order_by.push_back(std::move(oc));
    }
  }
  if (rng_.Chance(0.35)) q.limit = rng_.Below(100000);
  if (rng_.Chance(0.2)) q.offset = rng_.Below(10000);
}

Query QueryFuzzer::Next() {
  ++coverage_.queries;
  Query q;
  switch (rng_.Below(10)) {
    case 0:
    case 1:
      q.form = QueryForm::kAsk;
      break;
    case 2:
      q.form = QueryForm::kConstruct;
      break;
    case 3:
      q.form = QueryForm::kDescribe;
      break;
    default:
      q.form = QueryForm::kSelect;
      break;
  }
  ++coverage_.forms[static_cast<size_t>(q.form)];

  // Body: everything except some DESCRIBE queries has one (the parser
  // requires WHERE for SELECT/ASK/CONSTRUCT).
  bool body = q.form != QueryForm::kDescribe || rng_.Chance(0.7);
  if (body) {
    sparql::AstVector<Pattern> children = GenBaseTriples();
    // Decorations beyond the BGP.
    size_t extra = rng_.Below(3);
    for (size_t i = 0; i < extra; ++i) {
      children.push_back(GenGroupChild(options_.max_pattern_depth));
    }
    q.has_body = true;
    q.where = Pattern::Group(std::move(children));
  }

  switch (q.form) {
    case QueryForm::kSelect: {
      if (rng_.Chance(0.3)) {
        q.distinct = true;
      } else if (rng_.Chance(0.1)) {
        q.reduced = true;
      }
      if (rng_.Chance(0.4)) {
        q.select_star = true;
      } else {
        size_t n = 1 + rng_.Below(3);
        for (size_t i = 0; i < n; ++i) {
          sparql::SelectItem item;
          item.var = Term::Var(termgen::VariableName(rng_));
          if (rng_.Chance(0.25)) item.expr = GenExpr(2, true);
          q.select_items.push_back(std::move(item));
        }
      }
      break;
    }
    case QueryForm::kAsk:
      break;
    case QueryForm::kConstruct: {
      size_t n = rng_.Below(4);
      termgen::TermGenOptions node_options;
      node_options.allow_literals = false;
      for (size_t i = 0; i < n; ++i) {
        // Template triples: no property paths (parser rejects them).
        q.construct_template.push_back(TriplePattern::Make(
            GenTerm(node_options), GenVarOrIri(), GenTerm({})));
      }
      break;
    }
    case QueryForm::kDescribe: {
      if (rng_.Chance(0.25)) {
        q.describe_all = true;
      } else {
        size_t n = 1 + rng_.Below(2);
        for (size_t i = 0; i < n; ++i) q.describe_targets.push_back(GenVarOrIri());
      }
      break;
    }
  }

  if (rng_.Chance(0.15)) {
    size_t n = 1 + rng_.Below(2);
    for (size_t i = 0; i < n; ++i) {
      sparql::DatasetClause dc;
      dc.named = rng_.Chance(0.4);
      dc.iri = termgen::IriString(rng_);
      q.dataset.push_back(std::move(dc));
    }
  }

  GenSolutionModifiers(q);

  if (rng_.Chance(0.1)) {
    q.trailing_values = GenValues();
  }
  return q;
}

}  // namespace sparqlog::testing
