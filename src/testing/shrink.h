#ifndef SPARQLOG_TESTING_SHRINK_H_
#define SPARQLOG_TESTING_SHRINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "sparql/ast.h"

namespace sparqlog::testing {

/// Returns true iff `candidate` still exhibits the failure being
/// shrunk. The predicate must be deterministic.
using FailPredicate = std::function<bool(const std::string&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations; greedy shrinking converges
  /// far below this on query-sized inputs, the bound guards
  /// pathological ones.
  int max_evals = 50000;
};

struct ShrinkOutcome {
  std::string text;  ///< smallest failing input found
  int evals = 0;     ///< predicate evaluations spent
  int accepted = 0;  ///< accepted reductions
};

/// Greedy textual shrinking: alternates chunk-deletion passes (spans of
/// len/2, len/4, ..., 1 bytes, delta-debugging style) with a
/// byte-simplification pass (replace each byte with 'a'), repeating
/// until a fixpoint. `failing` must satisfy `fails`; the result also
/// does, and every intermediate candidate that was accepted did too.
/// Termination: every accepted step strictly reduces
/// (length, #bytes != 'a') lexicographically.
ShrinkOutcome ShrinkText(std::string_view failing, const FailPredicate& fails,
                         const ShrinkOptions& options = {});

/// Returns true iff the candidate AST still exhibits the failure.
using QueryFailPredicate = std::function<bool(const sparql::Query&)>;

struct AstShrinkOutcome {
  sparql::Query query;
  int evals = 0;
  int accepted = 0;
};

/// Greedy structural shrinking of a failing query AST, for failures
/// textual shrinking cannot reach (a serializer-closure bug leaves no
/// parseable witness to shrink). Tries, to a fixpoint: clearing
/// prologue/modifiers, collapsing the form to ASK, deleting pattern
/// children and expression arguments, hoisting single-child nodes,
/// replacing subtrees with trivial leaves, and byte-minimizing term
/// values — accepting any candidate `fails` still rejects. Works on a
/// deep copy, so shared subquery/EXISTS nodes are never aliased.
AstShrinkOutcome ShrinkQueryAst(const sparql::Query& failing,
                                const QueryFailPredicate& fails,
                                const ShrinkOptions& options = {});

/// Escapes `s` as a C++ string literal (octal escapes for anything
/// non-printable, so invalid UTF-8 reproduces byte-exactly).
std::string CppStringLiteral(std::string_view s);

/// Renders a ready-to-paste GTest unit test that replays a shrunk
/// failing input through the matching invariant check. `kind` is
/// "query" (CheckQueryText) or "log_line" (CheckLogLine).
std::string FormatReproducer(std::string_view test_name,
                             std::string_view kind, std::string_view input,
                             uint64_t seed);

/// Reproducer for AST-phase failures whose canonical form does not
/// re-parse (so no text can replay them): regenerates the failing query
/// from the fuzzer seed and index — the fuzzer sequence is a pure
/// function of its options, independent of serializer fixes — and
/// quotes the shrunk canonical form for the human reader.
std::string FormatSeedReplayReproducer(std::string_view test_name,
                                       uint64_t seed, long index,
                                       std::string_view invariant,
                                       std::string_view minimal_canonical);

}  // namespace sparqlog::testing

#endif  // SPARQLOG_TESTING_SHRINK_H_
