#include "testing/shrink.h"

#include <cctype>
#include <memory>
#include <utility>

namespace sparqlog::testing {

using rdf::Term;
using sparql::Expr;
using sparql::ExprKind;
using sparql::PathExpr;
using sparql::PathKind;
using sparql::Pattern;
using sparql::PatternKind;
using sparql::Query;
using sparql::QueryForm;

namespace {

/// One deletion sweep at the given chunk size. Accepts greedily: after
/// a successful deletion the same offset is retried (the next chunk
/// slid into place).
bool DeletionPass(std::string& cur, size_t chunk, const FailPredicate& fails,
                  const ShrinkOptions& options, ShrinkOutcome& outcome) {
  bool changed = false;
  size_t pos = 0;
  while (pos < cur.size() && outcome.evals < options.max_evals) {
    std::string candidate = cur;
    candidate.erase(pos, chunk);
    ++outcome.evals;
    if (fails(candidate)) {
      cur = std::move(candidate);
      ++outcome.accepted;
      changed = true;
    } else {
      pos += chunk;
    }
  }
  return changed;
}

/// Replaces bytes with 'a' where the failure persists — normalizes
/// irrelevant content so the reproducer reads as signal, not noise.
bool SimplifyPass(std::string& cur, const FailPredicate& fails,
                  const ShrinkOptions& options, ShrinkOutcome& outcome) {
  bool changed = false;
  for (size_t i = 0; i < cur.size() && outcome.evals < options.max_evals;
       ++i) {
    if (cur[i] == 'a') continue;
    std::string candidate = cur;
    candidate[i] = 'a';
    ++outcome.evals;
    if (fails(candidate)) {
      cur = std::move(candidate);
      ++outcome.accepted;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

ShrinkOutcome ShrinkText(std::string_view failing, const FailPredicate& fails,
                         const ShrinkOptions& options) {
  ShrinkOutcome outcome;
  outcome.text = std::string(failing);
  bool changed = true;
  while (changed && outcome.evals < options.max_evals) {
    changed = false;
    for (size_t chunk = outcome.text.size() / 2; chunk >= 1; chunk /= 2) {
      if (DeletionPass(outcome.text, chunk, fails, options, outcome)) {
        changed = true;
      }
      if (chunk == 1) break;
    }
    if (SimplifyPass(outcome.text, fails, options, outcome)) changed = true;
  }
  return outcome;
}

namespace {

// --- Deep copies -----------------------------------------------------------
// Pattern/Expr hold shared_ptr members (subqueries, EXISTS bodies); their
// copy constructors deep-clone those payloads (see sparql/ast.h), so a
// plain copy is already a full snapshot with no shared state. These
// helpers keep the shrinker's snapshot call sites explicit about that.

Pattern DeepCopy(const Pattern& p) { return p; }
Expr DeepCopy(const Expr& e) { return e; }
Query DeepCopy(const Query& q) { return q; }

// --- The shrinker ----------------------------------------------------------

class AstShrinker {
 public:
  AstShrinker(const Query& failing, const QueryFailPredicate& fails,
              const ShrinkOptions& options)
      : q_(DeepCopy(failing)), fails_(fails), options_(options) {}

  AstShrinkOutcome Run() {
    bool changed = true;
    while (changed && Budget()) {
      changed = ShrinkTop();
      if (q_.has_body && ShrinkPattern(q_.where, /*group_slot=*/true)) {
        changed = true;
      }
      if (q_.trailing_values.has_value() &&
          ShrinkPattern(*q_.trailing_values)) {
        changed = true;
      }
    }
    AstShrinkOutcome outcome;
    outcome.query = std::move(q_);
    outcome.evals = evals_;
    outcome.accepted = accepted_;
    return outcome;
  }

 private:
  bool Budget() const { return evals_ < options_.max_evals; }

  bool Test() {
    ++evals_;
    if (fails_(q_)) {
      ++accepted_;
      return true;
    }
    return false;
  }

  /// Snapshots `slot`, applies `mutate`, keeps the change iff the whole
  /// query still fails. `slot` must live inside q_.
  template <typename T, typename Fn>
  bool Attempt(T& slot, Fn&& mutate) {
    if (!Budget()) return false;
    T saved = DeepCopy(slot);
    mutate(slot);
    if (Test()) return true;
    slot = std::move(saved);
    return false;
  }

  // DeepCopy dispatch for snapshot types without shared state.
  static Term DeepCopy(const Term& t) { return t; }
  static PathExpr DeepCopy(const PathExpr& p) { return p; }
  static sparql::TriplePattern DeepCopy(const sparql::TriplePattern& t) {
    return t;
  }
  static Pattern DeepCopy(const Pattern& p) {
    return sparqlog::testing::DeepCopy(p);
  }
  static Expr DeepCopy(const Expr& e) { return sparqlog::testing::DeepCopy(e); }
  static Query DeepCopy(const Query& q) {
    return sparqlog::testing::DeepCopy(q);
  }

  /// Byte-minimizes a string slot in place (delete a byte / replace
  /// with 'a'), testing the whole query each step. `min_len` guards
  /// slots that must stay non-empty (variable names, blank labels,
  /// language tags) so the reducer cannot fabricate an unrelated
  /// serializer-closure failure out of `?` or `_:`.
  bool MinimizeString(sparql::AstString& s, size_t min_len = 0) {
    bool changed = false;
    size_t i = 0;
    while (i < s.size() && Budget()) {
      char removed = s[i];
      if (s.size() <= min_len) {
        // No deletions left; replacement only.
        if (removed != 'a') {
          s[i] = 'a';
          if (Test()) {
            changed = true;
          } else {
            s[i] = removed;
          }
        }
        ++i;
        continue;
      }
      s.erase(i, 1);
      if (Test()) {
        changed = true;
        continue;
      }
      s.insert(i, 1, removed);
      if (removed != 'a') {
        s[i] = 'a';
        if (Test()) {
          changed = true;
          ++i;
          continue;
        }
        s[i] = removed;
      }
      ++i;
    }
    return changed;
  }

  bool ShrinkTerm(Term& t) {
    bool changed = false;
    if (!(t.is_variable() && t.value == "a")) {
      changed |= Attempt(t, [](Term& x) { x = Term::Var("a"); });
    }
    if (t.is_literal()) {
      if (!t.datatype.empty()) {
        changed |= Attempt(t, [](Term& x) { x.datatype.clear(); });
      }
      if (!t.lang.empty()) {
        changed |= Attempt(t, [](Term& x) { x.lang.clear(); });
      }
    }
    // Variables and blank labels must not shrink to nothing: `?` and
    // `_:` do not lex.
    size_t min_len = (t.is_variable() || t.is_blank()) ? 1 : 0;
    changed |= MinimizeString(t.value, min_len);
    if (!t.datatype.empty()) changed |= MinimizeString(t.datatype);
    if (!t.lang.empty()) changed |= MinimizeString(t.lang, 1);
    return changed;
  }

  bool ShrinkPath(PathExpr& p) {
    bool changed = false;
    if (!(p.kind == PathKind::kLink && p.iri == "a")) {
      changed |= Attempt(p, [](PathExpr& x) { x = PathExpr::Link("a"); });
    }
    if (p.kind == PathKind::kLink) {
      changed |= MinimizeString(p.iri);
      return changed;
    }
    // Hoist a child, delete surplus children, then recurse.
    for (size_t i = 0; i < p.children.size(); ++i) {
      if (Attempt(p, [i](PathExpr& x) {
            PathExpr child = x.children[i];
            x = std::move(child);
          })) {
        return true;
      }
    }
    size_t min_children =
        (p.kind == PathKind::kSeq || p.kind == PathKind::kAlt) ? 2 : 1;
    size_t i = 0;
    while (p.children.size() > min_children && i < p.children.size() &&
           Budget()) {
      PathExpr removed = p.children[i];
      p.children.erase(p.children.begin() + static_cast<long>(i));
      if (Test()) {
        changed = true;
        continue;
      }
      p.children.insert(p.children.begin() + static_cast<long>(i),
                        std::move(removed));
      ++i;
    }
    for (PathExpr& c : p.children) changed |= ShrinkPath(c);
    return changed;
  }

  size_t MinArgs(const Expr& e) const {
    switch (e.kind) {
      case ExprKind::kOr:
      case ExprKind::kAnd:
      case ExprKind::kCompare:
      case ExprKind::kArith:
        return 2;
      case ExprKind::kNot:
      case ExprKind::kUnaryMinus:
      case ExprKind::kUnaryPlus:
      case ExprKind::kIn:
      case ExprKind::kNotIn:
        return 1;
      case ExprKind::kAggregate:
        return e.star ? 0 : 1;
      default:
        return 0;
    }
  }

  bool ShrinkExpr(Expr& e) {
    if (e.is_variable() && e.term.value == "a") return false;
    if (Attempt(e, [](Expr& x) { x = Expr::MakeVar("a"); })) return true;
    bool changed = false;
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (Attempt(e, [i](Expr& x) {
            Expr arg = sparqlog::testing::DeepCopy(x.args[i]);
            x = std::move(arg);
          })) {
        return true;
      }
    }
    size_t min_args = MinArgs(e);
    size_t i = 0;
    while (e.args.size() > min_args && i < e.args.size() && Budget()) {
      Expr removed = sparqlog::testing::DeepCopy(e.args[i]);
      e.args.erase(e.args.begin() + static_cast<long>(i));
      if (Test()) {
        changed = true;
        continue;
      }
      e.args.insert(e.args.begin() + static_cast<long>(i),
                    std::move(removed));
      ++i;
    }
    if (e.kind == ExprKind::kTerm) {
      changed |= ShrinkTerm(e.term);
    }
    if (e.kind == ExprKind::kFunction || e.kind == ExprKind::kAggregate) {
      changed |= MinimizeString(e.op);
      if (e.distinct) {
        changed |= Attempt(e, [](Expr& x) { x.distinct = false; });
      }
      if (!e.separator.empty()) {
        changed |= Attempt(e, [](Expr& x) { x.separator.clear(); });
        changed |= MinimizeString(e.separator);
      }
    }
    if ((e.kind == ExprKind::kExists || e.kind == ExprKind::kNotExists) &&
        e.pattern) {
      changed |= ShrinkPattern(*e.pattern, /*group_slot=*/true);
    }
    for (Expr& a : e.args) changed |= ShrinkExpr(a);
    return changed;
  }

  bool ShrinkTriple(sparql::TriplePattern& t) {
    bool changed = ShrinkTerm(t.subject);
    if (t.has_path) {
      changed |= Attempt(t, [](sparql::TriplePattern& x) {
        x.has_path = false;
        x.path = PathExpr();
        x.predicate = Term::Var("a");
      });
    }
    if (t.has_path) {
      changed |= ShrinkPath(t.path);
    } else {
      changed |= ShrinkTerm(t.predicate);
    }
    changed |= ShrinkTerm(t.object);
    return changed;
  }

  /// `group_slot` marks positions the grammar restricts to a group (or
  /// subselect): the WHERE root, OPTIONAL/MINUS/GRAPH/SERVICE bodies,
  /// UNION branches, EXISTS bodies. Hoisting a bare FILTER or triple
  /// into such a slot would serialize as garbage and register as a
  /// fabricated closure failure, so those hoists are skipped.
  bool ShrinkPattern(Pattern& p, bool group_slot = false) {
    bool changed = false;
    // Hoist: replace a wrapper by one of its children.
    if (p.kind != PatternKind::kGroup || p.children.size() == 1) {
      for (size_t i = 0; i < p.children.size(); ++i) {
        PatternKind child_kind = p.children[i].kind;
        if (group_slot && child_kind != PatternKind::kGroup &&
            child_kind != PatternKind::kSubSelect) {
          continue;
        }
        if (Attempt(p, [i](Pattern& x) {
              Pattern child = sparqlog::testing::DeepCopy(x.children[i]);
              x = std::move(child);
            })) {
          return true;
        }
      }
    }
    size_t min_children = 0;
    switch (p.kind) {
      case PatternKind::kUnion:
        min_children = 2;
        break;
      case PatternKind::kOptional:
      case PatternKind::kMinus:
      case PatternKind::kGraph:
      case PatternKind::kService:
        min_children = 1;
        break;
      default:
        break;
    }
    size_t i = 0;
    while (p.children.size() > min_children && i < p.children.size() &&
           Budget()) {
      Pattern removed = sparqlog::testing::DeepCopy(p.children[i]);
      p.children.erase(p.children.begin() + static_cast<long>(i));
      if (Test()) {
        changed = true;
        continue;
      }
      p.children.insert(p.children.begin() + static_cast<long>(i),
                        std::move(removed));
      ++i;
    }
    switch (p.kind) {
      case PatternKind::kTriple:
        changed |= ShrinkTriple(p.triple);
        break;
      case PatternKind::kFilter:
        changed |= ShrinkExpr(p.expr);
        break;
      case PatternKind::kBind:
        changed |= ShrinkExpr(p.expr);
        changed |= ShrinkTerm(p.var);
        break;
      case PatternKind::kGraph:
      case PatternKind::kService:
        changed |= ShrinkTerm(p.graph);
        break;
      case PatternKind::kValues: {
        size_t r = 0;
        while (r < p.values_rows.size() && Budget()) {
          auto removed = p.values_rows[r];
          p.values_rows.erase(p.values_rows.begin() + static_cast<long>(r));
          if (Test()) {
            changed = true;
            continue;
          }
          p.values_rows.insert(p.values_rows.begin() + static_cast<long>(r),
                               std::move(removed));
          ++r;
        }
        // Drop a variable together with its column.
        size_t c = 0;
        while (p.values_vars.size() > 1 && c < p.values_vars.size() &&
               Budget()) {
          if (Attempt(p, [c](Pattern& x) {
                x.values_vars.erase(x.values_vars.begin() +
                                    static_cast<long>(c));
                for (auto& row : x.values_rows) {
                  if (c < row.size()) {
                    row.erase(row.begin() + static_cast<long>(c));
                  }
                }
              })) {
            changed = true;
          } else {
            ++c;
          }
        }
        for (Term& v : p.values_vars) changed |= ShrinkTerm(v);
        for (auto& row : p.values_rows) {
          for (auto& cell : row) {
            if (cell.has_value()) changed |= ShrinkTerm(*cell);
          }
        }
        break;
      }
      case PatternKind::kSubSelect:
        if (p.subquery) changed |= ShrinkSubquery(*p.subquery);
        break;
      default:
        break;
    }
    // Children of a group are unconstrained; bodies and branches of the
    // wrapper kinds must stay groups.
    bool child_group_slot = p.kind != PatternKind::kGroup;
    for (Pattern& c : p.children) {
      changed |= ShrinkPattern(c, child_group_slot);
    }
    return changed;
  }

  bool ShrinkSubquery(Query& sub) {
    bool changed = false;
    if (!sub.select_star) {
      changed |= Attempt(sub, [](Query& x) {
        x.select_star = true;
        x.select_items.clear();
      });
    }
    changed |= ClearModifiers(sub);
    if (sub.has_body) {
      changed |= ShrinkPattern(sub.where, /*group_slot=*/true);
    }
    return changed;
  }

  bool ClearModifiers(Query& q) {
    bool changed = false;
    if (!q.dataset.empty()) {
      changed |= Attempt(q, [](Query& x) { x.dataset.clear(); });
    }
    if (!q.group_by.empty()) {
      changed |= Attempt(q, [](Query& x) { x.group_by.clear(); });
    }
    if (!q.having.empty()) {
      changed |= Attempt(q, [](Query& x) { x.having.clear(); });
    }
    if (!q.order_by.empty()) {
      changed |= Attempt(q, [](Query& x) { x.order_by.clear(); });
    }
    if (q.limit.has_value()) {
      changed |= Attempt(q, [](Query& x) { x.limit.reset(); });
    }
    if (q.offset.has_value()) {
      changed |= Attempt(q, [](Query& x) { x.offset.reset(); });
    }
    if (q.distinct || q.reduced) {
      changed |= Attempt(q, [](Query& x) {
        x.distinct = false;
        x.reduced = false;
      });
    }
    if (!q.prefixes.empty() || !q.base.empty()) {
      changed |= Attempt(q, [](Query& x) {
        x.prefixes.clear();
        x.base.clear();
      });
    }
    return changed;
  }

  bool ShrinkTop() {
    bool changed = ClearModifiers(q_);
    if (q_.trailing_values.has_value()) {
      changed |= Attempt(q_, [](Query& x) { x.trailing_values.reset(); });
    }
    if (q_.form != QueryForm::kAsk) {
      changed |= Attempt(q_, [](Query& x) {
        x.form = QueryForm::kAsk;
        x.select_star = false;
        x.select_items.clear();
        x.distinct = false;
        x.reduced = false;
        x.construct_template.clear();
        x.describe_targets.clear();
        x.describe_all = false;
        if (!x.has_body) {
          x.has_body = true;
          x.where = Pattern::Group({});
        }
      });
    }
    if (q_.form == QueryForm::kSelect && !q_.select_star) {
      changed |= Attempt(q_, [](Query& x) {
        x.select_star = true;
        x.select_items.clear();
      });
      size_t i = 0;
      while (i < q_.select_items.size() && q_.select_items.size() > 1 &&
             Budget()) {
        if (Attempt(q_, [i](Query& x) {
              x.select_items.erase(x.select_items.begin() +
                                   static_cast<long>(i));
            })) {
          changed = true;
        } else {
          ++i;
        }
      }
      // By index: a failed Attempt(q_, ...) restores the whole query,
      // which would dangle any reference held across it.
      for (size_t j = 0; j < q_.select_items.size(); ++j) {
        if (!q_.select_items[j].expr.has_value()) continue;
        if (Attempt(q_,
                    [j](Query& x) { x.select_items[j].expr.reset(); })) {
          changed = true;
        } else if (ShrinkExpr(*q_.select_items[j].expr)) {
          changed = true;
        }
      }
    }
    if (q_.form == QueryForm::kConstruct) {
      size_t i = 0;
      while (i < q_.construct_template.size() && Budget()) {
        if (Attempt(q_, [i](Query& x) {
              x.construct_template.erase(x.construct_template.begin() +
                                         static_cast<long>(i));
            })) {
          changed = true;
        } else {
          ++i;
        }
      }
      for (auto& tp : q_.construct_template) changed |= ShrinkTriple(tp);
    }
    if (q_.form == QueryForm::kDescribe) {
      if (!q_.describe_all && q_.describe_targets.size() > 1) {
        size_t i = 0;
        while (q_.describe_targets.size() > 1 && i < q_.describe_targets.size() &&
               Budget()) {
          if (Attempt(q_, [i](Query& x) {
                x.describe_targets.erase(x.describe_targets.begin() +
                                         static_cast<long>(i));
              })) {
            changed = true;
          } else {
            ++i;
          }
        }
      }
      for (Term& t : q_.describe_targets) changed |= ShrinkTerm(t);
    }
    for (auto& gc : q_.group_by) changed |= ShrinkExpr(gc.expr);
    for (auto& h : q_.having) changed |= ShrinkExpr(h);
    for (auto& oc : q_.order_by) changed |= ShrinkExpr(oc.expr);
    return changed;
  }

  Query q_;
  const QueryFailPredicate& fails_;
  ShrinkOptions options_;
  int evals_ = 0;
  int accepted_ = 0;
};

}  // namespace

AstShrinkOutcome ShrinkQueryAst(const Query& failing,
                                const QueryFailPredicate& fails,
                                const ShrinkOptions& options) {
  AstShrinker shrinker(failing, fails, options);
  return shrinker.Run();
}

std::string CppStringLiteral(std::string_view s) {
  std::string out = "\"";
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c >= 0x20 && c < 0x7f) {
          out.push_back(static_cast<char>(c));
        } else {
          // Three-digit octal: immune to the hex-escape maximal-munch
          // problem when a digit follows.
          char buf[5];
          buf[0] = '\\';
          buf[1] = static_cast<char>('0' + ((c >> 6) & 7));
          buf[2] = static_cast<char>('0' + ((c >> 3) & 7));
          buf[3] = static_cast<char>('0' + (c & 7));
          buf[4] = '\0';
          out += buf;
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string FormatSeedReplayReproducer(std::string_view test_name,
                                       uint64_t seed, long index,
                                       std::string_view invariant,
                                       std::string_view minimal_canonical) {
  std::string out;
  out += "// Replays fuzz seed " + std::to_string(seed) + ", query #" +
         std::to_string(index) + " (invariant: " + std::string(invariant) +
         ").\n// Shrunk canonical form:\n";
  size_t start = 0;
  while (start <= minimal_canonical.size()) {
    size_t end = minimal_canonical.find('\n', start);
    if (end == std::string_view::npos) end = minimal_canonical.size();
    out += "//   " +
           std::string(minimal_canonical.substr(start, end - start)) + "\n";
    if (end == minimal_canonical.size()) break;
    start = end + 1;
  }
  out += "TEST(FuzzRegression, " + std::string(test_name) + ") {\n";
  out += "  sparqlog::testing::QueryFuzzOptions options;\n";
  out += "  options.seed = " + std::to_string(seed) + "ULL;\n";
  out += "  sparqlog::testing::QueryFuzzer fuzzer(options);\n";
  out += "  sparqlog::sparql::Query q;\n";
  out += "  for (long i = 0; i <= " + std::to_string(index) +
         "; ++i) q = fuzzer.Next();\n";
  out += "  sparqlog::sparql::Parser parser;\n";
  out += "  auto violation = sparqlog::testing::CheckQuery(parser, q);\n";
  out += "  ASSERT_FALSE(violation.has_value())\n";
  out += "      << violation->invariant << \": \" << violation->detail;\n";
  out += "}\n";
  return out;
}

std::string FormatReproducer(std::string_view test_name,
                             std::string_view kind, std::string_view input,
                             uint64_t seed) {
  const bool is_log_line = kind == "log_line";
  std::string out;
  out += "// Minimal reproducer shrunk from fuzz seed " +
         std::to_string(seed) + " (" + std::string(kind) + " invariant).\n";
  out += "TEST(FuzzRegression, " + std::string(test_name) + ") {\n";
  out += "  sparqlog::sparql::Parser parser;\n";
  out += "  const std::string input = " + CppStringLiteral(input) + ";\n";
  if (is_log_line) {
    out += "  auto violation = sparqlog::testing::CheckLogLine(parser, input);\n";
  } else {
    out +=
        "  auto violation = sparqlog::testing::CheckQueryText(parser, "
        "input);\n";
  }
  out += "  ASSERT_FALSE(violation.has_value())\n";
  out += "      << violation->invariant << \": \" << violation->detail;\n";
  out += "}\n";
  return out;
}

}  // namespace sparqlog::testing
