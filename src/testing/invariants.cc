#include "testing/invariants.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <utility>

#include "corpus/ingest.h"
#include "corpus/report.h"
#include "graph/canonical.h"
#include "graph/shapes.h"
#include "obs/metrics.h"
#include "pipeline/chunk_source.h"
#include "pipeline/merge.h"
#include "pipeline/pipeline.h"
#include "pipeline/streak_stage.h"
#include "sparql/lexer.h"
#include "sparql/serializer.h"
#include "streaks/streaks.h"
#include "testing/reference_analysis.h"
#include "util/ascii.h"
#include "util/simd_scan.h"
#include "util/strings.h"
#include "width/hypertree.h"
#include "width/treewidth.h"

namespace sparqlog::testing {

namespace {

std::optional<Violation> Violate(std::string invariant, std::string detail,
                                 std::string_view input) {
  Violation v;
  v.invariant = std::move(invariant);
  v.detail = std::move(detail);
  v.input = std::string(input);
  return v;
}

/// Field-for-field comparison of two ParsedLine results; returns a
/// description of the first difference, or empty.
std::string DiffParsedLines(const corpus::ParsedLine& a,
                            const corpus::ParsedLine& b) {
  if (a.is_query != b.is_query) return "is_query differs";
  if (a.valid != b.valid) return "valid differs";
  if (a.canonical_hash != b.canonical_hash) return "canonical_hash differs";
  if (a.line_hash != b.line_hash) return "line_hash differs";
  if (a.query.has_value() != b.query.has_value()) return "query engagement differs";
  if (a.query.has_value() &&
      sparql::Serialize(*a.query) != sparql::Serialize(*b.query)) {
    return "canonical serialization differs";
  }
  return {};
}

}  // namespace

std::optional<Violation> CheckQuery(const sparql::Parser& parser,
                                    const sparql::Query& q) {
  std::string s0 = sparql::Serialize(q);
  if (sparql::CanonicalHash(q) != corpus::HashBytes(s0)) {
    return Violate("canonical-hash",
                   "CanonicalHash(q) != FNV(Serialize(q)) on the input AST",
                   s0);
  }
  util::Result<sparql::Query> reparsed = parser.Parse(s0);
  if (!reparsed.ok()) {
    return Violate("serializer-closure",
                   "canonical form does not re-parse: " +
                       reparsed.status().message(),
                   s0);
  }
  std::string s1 = sparql::Serialize(reparsed.value());
  if (s1 != s0) {
    size_t i = 0;
    while (i < s0.size() && i < s1.size() && s0[i] == s1[i]) ++i;
    return Violate("roundtrip-idempotence",
                   "Serialize(Parse(s)) != s, first difference at byte " +
                       std::to_string(i),
                   s0);
  }
  if (sparql::CanonicalHash(reparsed.value()) != corpus::HashBytes(s1)) {
    return Violate("canonical-hash",
                   "CanonicalHash(q) != FNV(Serialize(q)) on the reparsed AST",
                   s0);
  }
  return std::nullopt;
}

std::optional<Violation> CheckQueryText(const sparql::Parser& parser,
                                        std::string_view text) {
  util::Result<sparql::Query> parsed = parser.Parse(text);
  if (!parsed.ok()) return std::nullopt;
  return CheckQuery(parser, parsed.value());
}

std::optional<Violation> CheckLogLine(sparql::Parser& parser,
                                      std::string_view line) {
  std::string decode_buf;
  corpus::ParsedLine scratch = corpus::ParseLogLine(parser, line, decode_buf);
  corpus::ParsedLine owned =
      corpus::ParseLogLine(parser, std::string(line));
  if (std::string diff = DiffParsedLines(scratch, owned); !diff.empty()) {
    return Violate("logline-overload-agreement",
                   "scratch-buffer and convenience overloads disagree: " +
                       diff,
                   line);
  }
  std::string decode_buf2;
  corpus::ParsedLine again = corpus::ParseLogLine(parser, line, decode_buf2);
  if (std::string diff = DiffParsedLines(scratch, again); !diff.empty()) {
    return Violate("logline-determinism",
                   "same line parsed twice differs: " + diff, line);
  }
  std::string extract_buf;
  bool extracted =
      corpus::ExtractQueryText(line, extract_buf).has_value();
  if (extracted != scratch.is_query) {
    return Violate("logline-classification",
                   "ExtractQueryText and ParseLogLine disagree on is_query",
                   line);
  }
  if (scratch.valid) {
    if (!scratch.query.has_value()) {
      return Violate("logline-engagement", "valid entry without a query AST",
                     line);
    }
    if (scratch.canonical_hash !=
        corpus::HashBytes(sparql::Serialize(*scratch.query))) {
      return Violate("logline-canonical-hash",
                     "canonical_hash != FNV of the canonical serialization",
                     line);
    }
    if (auto v = CheckQuery(parser, *scratch.query)) {
      v->input = std::string(line);
      return v;
    }
  } else if (scratch.is_query) {
    if (scratch.line_hash != corpus::HashBytes(line)) {
      return Violate("logline-route-hash",
                     "malformed entry's line_hash != FNV of the raw line",
                     line);
    }
  }
  return std::nullopt;
}

std::optional<Violation> CheckLogLineScratch(sparql::Parser& parser,
                                             std::string_view line,
                                             corpus::ParseScratch& scratch) {
  corpus::ParsedLine arena = corpus::ParseLogLine(parser, line, scratch);
  corpus::ParsedLine heap = corpus::ParseLogLine(parser, std::string(line));
  if (std::string diff = DiffParsedLines(arena, heap); !diff.empty()) {
    return Violate("logline-scratch-agreement",
                   "arena-scratch and heap overloads disagree: " + diff, line);
  }
  if (arena.query.has_value()) {
    // Detach semantics: a plain copy of an arena-resident Query must be
    // an independent heap AST that still serializes identically.
    sparql::Query detached = *arena.query;
    if (sparql::Serialize(detached) != sparql::Serialize(*heap.query)) {
      return Violate("logline-scratch-detach",
                     "copying the arena-built Query changed its "
                     "canonical serialization",
                     line);
    }
  }
  return std::nullopt;
}

EquivalenceConfig RandomEquivalenceConfig(util::Rng& rng) {
  EquivalenceConfig config;
  config.threads = static_cast<int>(1 + rng.Below(5));
  // Tiny chunks move every chunk boundary; large ones test batching.
  config.chunk_size = 1 + rng.Below(64);
  config.queue_capacity = 1 + rng.Below(8);
  config.shards =
      rng.Chance(0.5) ? 0 : static_cast<size_t>(1 + rng.Below(7));
  config.use_valid_corpus = rng.Chance(0.25);
  return config;
}

std::optional<Violation> CheckSerialParallelEquivalence(
    const std::vector<std::string>& log, const EquivalenceConfig& config) {
  auto describe = [&config] {
    return "threads=" + std::to_string(config.threads) +
           " chunk=" + std::to_string(config.chunk_size) +
           " queue=" + std::to_string(config.queue_capacity) +
           " shards=" + std::to_string(config.shards) +
           " corpus=" + (config.use_valid_corpus ? "valid" : "unique");
  };

  // Serial reference: the same wiring a Shard uses, single-threaded.
  corpus::LogIngestor ingestor;
  corpus::CorpusAnalyzer analyzer;
  auto sink = [&analyzer](const sparql::Query& q) {
    analyzer.AddQuery(q, "all");
  };
  if (config.use_valid_corpus) {
    ingestor.set_valid_sink(sink);
  } else {
    ingestor.set_unique_sink(sink);
  }
  ingestor.ProcessLog(log);

  pipeline::PipelineOptions options;
  options.threads = config.threads;
  options.chunk_size = config.chunk_size;
  options.queue_capacity = config.queue_capacity;
  options.shards = config.shards;
  options.use_valid_corpus = config.use_valid_corpus;
  // Collect the metrics registry alongside: the run's telemetry must be
  // internally consistent and scheduling-independent too.
  options.telemetry.metrics = true;
  pipeline::ParallelLogPipeline parallel(options);
  pipeline::PipelineResult result = parallel.Run(log);

  const corpus::CorpusStats& serial = ingestor.stats();
  if (result.stats.total != serial.total ||
      result.stats.valid != serial.valid ||
      result.stats.unique != serial.unique) {
    return Violate(
        "serial-parallel-stats",
        "Total/Valid/Unique diverge (" + describe() + "): serial " +
            std::to_string(serial.total) + "/" + std::to_string(serial.valid) +
            "/" + std::to_string(serial.unique) + " vs parallel " +
            std::to_string(result.stats.total) + "/" +
            std::to_string(result.stats.valid) + "/" +
            std::to_string(result.stats.unique),
        "");
  }
  if (result.lines != log.size()) {
    return Violate("serial-parallel-lines",
                   "pipeline consumed " + std::to_string(result.lines) +
                       " of " + std::to_string(log.size()) + " lines (" +
                       describe() + ")",
                   "");
  }
  std::vector<uint64_t> serial_digest = pipeline::StatisticsDigest(analyzer);
  std::vector<uint64_t> parallel_digest =
      pipeline::StatisticsDigest(result.analysis);
  if (serial_digest != parallel_digest) {
    size_t i = 0;
    while (i < serial_digest.size() && i < parallel_digest.size() &&
           serial_digest[i] == parallel_digest[i]) {
      ++i;
    }
    return Violate("serial-parallel-digest",
                   "StatisticsDigest diverges at index " + std::to_string(i) +
                       " (" + describe() + ")",
                   "");
  }

  // ---- Telemetry invariants (compiled out with SPARQLOG_NO_TELEMETRY).
  if constexpr (obs::kTelemetryEnabled) {
    if (!result.telemetry.has_value()) {
      return Violate("telemetry-missing",
                     "metrics requested but pipeline returned no telemetry (" +
                         describe() + ")",
                     "");
    }
    const obs::RunTelemetry& t = *result.telemetry;
    // Internal consistency: the registry must agree with the pipeline's
    // own results — reader/parse saw every line, the shard stage kept
    // exactly the valid entries, the shards account for every query.
    uint64_t shard_sum = 0;
    for (uint64_t q : t.shard_queries) shard_sum += q;
    const uint64_t analysis_expected =
        config.use_valid_corpus ? serial.valid : serial.unique;
    if (t.stage(obs::kStageReader).items_in != log.size() ||
        t.stage(obs::kStageParse).items_in != log.size() ||
        t.stage(obs::kStageShard).items_in != serial.total ||
        t.stage(obs::kStageShard).items_out != serial.valid ||
        t.stage(obs::kStageShard).malformed != serial.total - serial.valid ||
        t.stage(obs::kStageAnalysis).items_in != analysis_expected ||
        shard_sum != serial.total) {
      return Violate(
          "telemetry-consistency",
          "telemetry counters disagree with pipeline results (" + describe() +
              "): reader=" + std::to_string(t.stage(obs::kStageReader).items_in) +
              " parse=" + std::to_string(t.stage(obs::kStageParse).items_in) +
              " shard=" + std::to_string(t.stage(obs::kStageShard).items_in) +
              "/" + std::to_string(t.stage(obs::kStageShard).items_out) +
              " analysis=" +
              std::to_string(t.stage(obs::kStageAnalysis).items_in) +
              " shard_sum=" + std::to_string(shard_sum) + " vs lines=" +
              std::to_string(log.size()) + " total=" +
              std::to_string(serial.total) + " valid=" +
              std::to_string(serial.valid),
          "");
    }
    // Scheduling independence: a single-threaded run over the same
    // input with the same resolved shard count but a different chunk
    // size must produce the identical telemetry digest.
    pipeline::PipelineOptions reference_options = options;
    reference_options.threads = 1;
    reference_options.shards = parallel.shards();
    reference_options.chunk_size = config.chunk_size == 1 ? 37 : 1;
    reference_options.queue_capacity = 16;
    pipeline::ParallelLogPipeline reference(reference_options);
    pipeline::PipelineResult reference_result = reference.Run(log);
    if (!reference_result.telemetry.has_value() ||
        obs::TelemetryDigest(*reference_result.telemetry) !=
            obs::TelemetryDigest(t)) {
      return Violate("telemetry-digest",
                     "TelemetryDigest differs between the run (" + describe() +
                         ") and its single-threaded reference",
                     "");
    }
  }
  return std::nullopt;
}

StreakEquivalenceConfig RandomStreakConfig(util::Rng& rng) {
  StreakEquivalenceConfig config;
  config.threads = static_cast<int>(1 + rng.Below(5));
  // Tiny chunks force every streak across a stitch boundary; large ones
  // test the fully-local case.
  config.chunk_size = 1 + rng.Below(96);
  config.window = 1 + rng.Below(40);
  const double thresholds[] = {0.1, 0.25, 0.4};
  config.similarity_threshold = thresholds[rng.Below(3)];
  config.strip_prologue = rng.Chance(0.7);
  return config;
}

std::optional<Violation> CheckStreakEquivalence(
    const std::vector<std::string>& queries,
    const StreakEquivalenceConfig& config) {
  streaks::StreakOptions streak;
  streak.window = config.window;
  streak.similarity_threshold = config.similarity_threshold;
  streak.strip_prologue = config.strip_prologue;

  streaks::StreakDetector detector(streak);
  for (const std::string& q : queries) detector.Add(q);
  streaks::StreakReport serial = detector.Finish();

  pipeline::StreakStageOptions options;
  options.streak = streak;
  options.threads = config.threads;
  options.chunk_size = config.chunk_size;
  streaks::StreakReport sharded =
      pipeline::StreakStage(options).Run(queries).report;
  if (serial == sharded) return std::nullopt;

  // Diverged: name the first differing field for the report.
  auto describe = [&config] {
    return "threads=" + std::to_string(config.threads) +
           " chunk=" + std::to_string(config.chunk_size) +
           " window=" + std::to_string(config.window) + " threshold=" +
           std::to_string(config.similarity_threshold) +
           (config.strip_prologue ? " strip" : " nostrip");
  };
  auto mismatch = [&](const std::string& field, uint64_t a, uint64_t b) {
    return Violate("streak-serial-sharded",
                   "StreakReport." + field + " diverges (" + describe() +
                       "): serial " + std::to_string(a) + " vs sharded " +
                       std::to_string(b),
                   "");
  };
  for (size_t i = 0; i < 11; ++i) {
    if (serial.counts[i] != sharded.counts[i]) {
      return mismatch("counts[" + std::to_string(i) + "]", serial.counts[i],
                      sharded.counts[i]);
    }
  }
  if (serial.total_streaks != sharded.total_streaks) {
    return mismatch("total_streaks", serial.total_streaks,
                    sharded.total_streaks);
  }
  if (serial.longest != sharded.longest) {
    return mismatch("longest", serial.longest, sharded.longest);
  }
  if (serial.queries_processed != sharded.queries_processed) {
    return mismatch("queries_processed", serial.queries_processed,
                    sharded.queries_processed);
  }
  // operator== said unequal but no named field differs: a field was
  // added to StreakReport without extending this diagnosis.
  return mismatch("operator==", 0, 1);
}

namespace {

namespace scan = util::scan;

/// Byte-at-a-time references, deliberately written without the class
/// table's ScanClassScalar or any word tricks, so they can catch bugs
/// in both the SWAR scalar kernels and the table itself.
size_t NaiveClassRun(std::string_view s, size_t pos, uint16_t mask) {
  while (pos < s.size() && (util::AsciiClassOf(s[pos]) & mask) != 0) ++pos;
  return pos;
}

size_t NaiveFindStringStop(std::string_view s, size_t pos, char quote,
                           bool long_quote) {
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (c == quote || c == '\\' || (!long_quote && c == '\n')) return pos;
  }
  return s.size();
}

size_t NaiveFindEscape(std::string_view s, size_t pos) {
  for (; pos < s.size(); ++pos) {
    if (s[pos] == '%' || s[pos] == '+') return pos;
  }
  return s.size();
}

std::string NaivePercentDecode(std::string_view s) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

}  // namespace

std::optional<Violation> CheckScanEquivalence(std::string_view input) {
  auto fail = [&input](const std::string& what, size_t pos, size_t a,
                       size_t b) {
    return Violate("scan-differential",
                   what + " diverges at start offset " + std::to_string(pos) +
                       ": " + std::to_string(a) + " vs " + std::to_string(b),
                   input);
  };

  struct RunPrimitive {
    const char* name;
    size_t (*scalar)(std::string_view, size_t);
    size_t (*simd)(std::string_view, size_t);
    uint16_t mask;
  };
  static constexpr RunPrimitive kRuns[] = {
      {"NameRun", scan::ScalarNameRun, scan::SimdNameRun,
       util::kAsciiNameChar},
      {"VarRun", scan::ScalarVarRun, scan::SimdVarRun, util::kAsciiVarChar},
      {"PnLocalRun", scan::ScalarPnLocalRun, scan::SimdPnLocalRun,
       util::kAsciiPnLocal},
      {"BlankLabelRun", scan::ScalarBlankLabelRun, scan::SimdBlankLabelRun,
       util::kAsciiBlankLabel},
      {"LangTagRun", scan::ScalarLangTagRun, scan::SimdLangTagRun,
       util::kAsciiLangTag},
      {"WhitespaceRun", scan::ScalarWhitespaceRun, scan::SimdWhitespaceRun,
       util::kAsciiSpace},
      {"IriRun", scan::ScalarIriRun, scan::SimdIriRun, util::kAsciiIriChar},
      {"DigitRun", scan::ScalarDigitRun, scan::SimdDigitRun,
       util::kAsciiDigit},
  };

  for (size_t pos = 0; pos <= input.size(); ++pos) {
    for (const RunPrimitive& p : kRuns) {
      const size_t naive = NaiveClassRun(input, pos, p.mask);
      const size_t scalar = p.scalar(input, pos);
      if (scalar != naive) {
        return fail(std::string(p.name) + " scalar-vs-naive", pos, scalar,
                    naive);
      }
      const size_t simd = p.simd(input, pos);
      if (simd != scalar) {
        return fail(std::string(p.name) + " simd-vs-scalar", pos, simd,
                    scalar);
      }
    }
    for (const char quote : {'"', '\''}) {
      for (const bool long_quote : {false, true}) {
        const std::string what = std::string("FindStringStop(") + quote +
                                 (long_quote ? ",long)" : ",short)");
        const size_t naive = NaiveFindStringStop(input, pos, quote, long_quote);
        const size_t scalar =
            scan::ScalarFindStringStop(input, pos, quote, long_quote);
        if (scalar != naive) {
          return fail(what + " scalar-vs-naive", pos, scalar, naive);
        }
        const size_t simd =
            scan::SimdFindStringStop(input, pos, quote, long_quote);
        if (simd != scalar) {
          return fail(what + " simd-vs-scalar", pos, simd, scalar);
        }
      }
    }
    {
      const size_t naive = NaiveFindEscape(input, pos);
      const size_t scalar = scan::ScalarFindEscape(input, pos);
      if (scalar != naive) {
        return fail("FindEscape scalar-vs-naive", pos, scalar, naive);
      }
      const size_t simd = scan::SimdFindEscape(input, pos);
      if (simd != scalar) {
        return fail("FindEscape simd-vs-scalar", pos, simd, scalar);
      }
    }
  }

  const std::string expect = NaivePercentDecode(input);
  const std::string got = util::PercentDecode(input);
  if (got != expect) {
    size_t i = 0;
    while (i < expect.size() && i < got.size() && expect[i] == got[i]) ++i;
    return Violate("scan-percent-decode",
                   "PercentDecode diverges from the byte-at-a-time reference "
                   "at output byte " +
                       std::to_string(i),
                   input);
  }

  // Drive the full lexer over the raw bytes twice — mostly for the
  // sanitizer legs, where any out-of-bounds vector load in the lexed
  // fast paths trips ASan regardless of token agreement.
  util::Result<sparql::TokenStream> t1 = sparql::Lexer::Tokenize(input);
  util::Result<sparql::TokenStream> t2 = sparql::Lexer::Tokenize(input);
  if (t1.ok() != t2.ok()) {
    return Violate("scan-lexer-determinism",
                   "Tokenize status differs between identical runs", input);
  }
  if (t1.ok()) {
    const sparql::TokenStream& a = t1.value();
    const sparql::TokenStream& b = t2.value();
    if (a.size() != b.size()) {
      return Violate("scan-lexer-determinism", "token count differs", input);
    }
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].type != b[i].type || a[i].value != b[i].value ||
          a[i].pos != b[i].pos || a[i].line != b[i].line ||
          a[i].col != b[i].col) {
        return Violate("scan-lexer-determinism",
                       "token " + std::to_string(i) + " differs", input);
      }
    }
  }
  return std::nullopt;
}

SourceEquivalenceConfig RandomSourceConfig(util::Rng& rng) {
  SourceEquivalenceConfig config;
  config.pipeline = RandomEquivalenceConfig(rng);
  // Budgets below typical line length force single-line slices; large
  // ones exercise multi-line chunks against the max_lines bound.
  const size_t budgets[] = {0, 1, 16, 64, 256, 4096};
  config.slice_bytes = budgets[rng.Below(6)];
  config.crlf = rng.Chance(0.3);
  config.trailing_newline = rng.Chance(0.8);
  return config;
}

std::optional<Violation> CheckSourceEquivalence(
    const std::vector<std::string>& lines,
    const SourceEquivalenceConfig& config) {
  // Strip framing bytes so the file parses back to exactly these lines.
  std::vector<std::string> sanitized;
  sanitized.reserve(lines.size());
  for (const std::string& line : lines) {
    std::string clean;
    clean.reserve(line.size());
    for (char c : line) {
      if (c != '\n' && c != '\r') clean.push_back(c);
    }
    sanitized.push_back(std::move(clean));
  }
  // A final empty line is only representable with a terminator.
  bool trailing = config.trailing_newline;
  if (!sanitized.empty() && sanitized.back().empty()) trailing = true;

  auto describe = [&config, trailing] {
    return "threads=" + std::to_string(config.pipeline.threads) +
           " chunk=" + std::to_string(config.pipeline.chunk_size) +
           " shards=" + std::to_string(config.pipeline.shards) +
           " slice=" + std::to_string(config.slice_bytes) +
           (config.crlf ? " crlf" : " lf") +
           (trailing ? " trailing-nl" : " no-trailing-nl");
  };

  // Unique temp path: pid-distinct via ASLR'd static address, plus a
  // process-local counter (fuzz legs and tests run concurrently).
  static std::atomic<uint64_t> counter{0};
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("sparqlog_source_eq_" +
       std::to_string(reinterpret_cast<uintptr_t>(&counter) & 0xFFFFFF) +
       "_" + std::to_string(counter.fetch_add(1)) + ".log");
  struct FileGuard {
    std::filesystem::path p;
    ~FileGuard() {
      std::error_code ec;
      std::filesystem::remove(p, ec);
    }
  } guard{path};

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Violate("source-io", "cannot create temp file " + path.string(),
                     "");
    }
    const char* sep = config.crlf ? "\r\n" : "\n";
    for (size_t i = 0; i < sanitized.size(); ++i) {
      out << sanitized[i];
      if (i + 1 < sanitized.size() || trailing) out << sep;
    }
  }

  pipeline::PipelineOptions options;
  options.threads = config.pipeline.threads;
  options.chunk_size = config.pipeline.chunk_size;
  options.queue_capacity = config.pipeline.queue_capacity;
  options.shards = config.pipeline.shards;
  options.use_valid_corpus = config.pipeline.use_valid_corpus;
  options.telemetry.metrics = true;
  pipeline::ParallelLogPipeline pipe(options);

  pipeline::PipelineResult mem = pipe.Run(sanitized);

  util::Result<std::unique_ptr<pipeline::MmapChunkSource>> mapped =
      pipeline::MmapChunkSource::Open(
          path.string(),
          pipeline::MmapChunkSource::Options{config.slice_bytes});
  if (!mapped.ok()) {
    return Violate("source-io",
                   "mmap open failed: " + mapped.status().message(), "");
  }
  pipeline::PipelineResult mm = pipe.Run(*mapped.value());

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Violate("source-io", "cannot reopen temp file " + path.string(),
                   "");
  }
  pipeline::IstreamLineSource stream_source(in);
  pipeline::PipelineResult st =
      pipe.Run(static_cast<pipeline::LineSource&>(stream_source));

  auto compare = [&](const pipeline::PipelineResult& a,
                     const pipeline::PipelineResult& b, const char* an,
                     const char* bn) -> std::optional<Violation> {
    const std::string pair = std::string(an) + " vs " + bn;
    if (a.lines != b.lines) {
      return Violate("source-equivalence",
                     pair + " line counts diverge (" + describe() + "): " +
                         std::to_string(a.lines) + " vs " +
                         std::to_string(b.lines),
                     "");
    }
    if (a.stats.total != b.stats.total || a.stats.valid != b.stats.valid ||
        a.stats.unique != b.stats.unique) {
      return Violate("source-equivalence",
                     pair + " Total/Valid/Unique diverge (" + describe() + ")",
                     "");
    }
    if (pipeline::StatisticsDigest(a.analysis) !=
        pipeline::StatisticsDigest(b.analysis)) {
      return Violate("source-equivalence",
                     pair + " StatisticsDigest diverges (" + describe() + ")",
                     "");
    }
    if constexpr (obs::kTelemetryEnabled) {
      if (a.telemetry.has_value() != b.telemetry.has_value() ||
          (a.telemetry.has_value() &&
           obs::TelemetryDigest(*a.telemetry) !=
               obs::TelemetryDigest(*b.telemetry))) {
        return Violate("source-equivalence",
                       pair + " TelemetryDigest diverges (" + describe() + ")",
                       "");
      }
    }
    return std::nullopt;
  };
  if (auto v = compare(mem, mm, "vector", "mmap")) return v;
  if (auto v = compare(mem, st, "vector", "stream")) return v;
  if (mem.lines != sanitized.size()) {
    return Violate("source-equivalence",
                   "pipeline consumed " + std::to_string(mem.lines) + " of " +
                       std::to_string(sanitized.size()) + " lines (" +
                       describe() + ")",
                   "");
  }
  return std::nullopt;
}

std::optional<Violation> CheckAnalysisEquivalence(
    const sparql::Query& q, corpus::AnalysisScratch& scratch) {
  if (!q.has_body) return std::nullopt;
  std::string text = sparql::Serialize(q);
  auto fail = [&text](const std::string& detail) {
    return Violate("analysis-old-vs-new", detail, text);
  };

  scratch.triples.clear();
  scratch.filters.clear();
  graph::CollectTriplesAndFilters(q.where, scratch.triples, scratch.filters);

  // ---- Canonical graph: build, shape, girth, treewidth ----
  reference::ReferenceCanonicalGraph ref =
      reference::BuildCanonicalGraph(scratch.triples, scratch.filters);
  graph::BuildCanonicalGraph(scratch.triples, scratch.filters,
                             graph::CanonicalOptions(), scratch.canonical,
                             scratch.graph);
  const graph::CanonicalGraph& got = scratch.graph;
  if (ref.valid != got.valid) return fail("canonical validity differs");
  if (ref.valid) {
    if (ref.graph.num_nodes() != got.graph.num_nodes()) {
      return fail("canonical node count differs");
    }
    if (ref.graph.num_edges() != got.graph.num_edges()) {
      return fail("canonical edge count differs");
    }
    for (size_t i = 0; i < ref.node_terms.size(); ++i) {
      if (ref.node_terms[i] != *got.node_terms[i]) {
        return fail("canonical node term " + std::to_string(i) + " differs");
      }
    }
    for (int u = 0; u < ref.graph.num_nodes(); ++u) {
      if (ref.graph.HasSelfLoop(u) != got.graph.HasSelfLoop(u)) {
        return fail("self-loop set differs at node " + std::to_string(u));
      }
      for (int v : ref.graph.Neighbors(u)) {
        if (!got.graph.HasEdge(u, v)) {
          return fail("edge " + std::to_string(u) + "-" + std::to_string(v) +
                      " missing from the flat graph");
        }
      }
    }
    graph::ShapeClass ref_shape = reference::ClassifyShape(ref.graph);
    graph::ShapeClass new_shape =
        graph::ClassifyShape(got.graph, scratch.shape);
    auto flag = [&](const char* name, bool a, bool b)
        -> std::optional<Violation> {
      if (a == b) return std::nullopt;
      return fail(std::string("ShapeClass.") + name + " differs (old " +
                  (a ? "true" : "false") + ")");
    };
    if (auto v = flag("single_edge", ref_shape.single_edge,
                      new_shape.single_edge)) {
      return v;
    }
    if (auto v = flag("chain", ref_shape.chain, new_shape.chain)) return v;
    if (auto v = flag("chain_set", ref_shape.chain_set, new_shape.chain_set)) {
      return v;
    }
    if (auto v = flag("star", ref_shape.star, new_shape.star)) return v;
    if (auto v = flag("tree", ref_shape.tree, new_shape.tree)) return v;
    if (auto v = flag("forest", ref_shape.forest, new_shape.forest)) return v;
    if (auto v = flag("cycle", ref_shape.cycle, new_shape.cycle)) return v;
    if (auto v = flag("flower", ref_shape.flower, new_shape.flower)) return v;
    if (auto v = flag("flower_set", ref_shape.flower_set,
                      new_shape.flower_set)) {
      return v;
    }
    if (ref_shape.girth != new_shape.girth) {
      return fail("girth differs: old " + std::to_string(ref_shape.girth) +
                  " vs new " + std::to_string(new_shape.girth));
    }
    width::TreewidthResult ref_tw = reference::Treewidth(ref.graph);
    width::TreewidthResult new_tw =
        width::Treewidth(got.graph, scratch.treewidth);
    if (ref_tw.width != new_tw.width || ref_tw.exact != new_tw.exact) {
      return fail("treewidth differs: old " + std::to_string(ref_tw.width) +
                  " vs new " + std::to_string(new_tw.width));
    }
  }

  // ---- Canonical hypergraph: build + GHW ----
  reference::ReferenceHypergraph ref_hg =
      reference::BuildCanonicalHypergraph(scratch.triples, scratch.filters);
  graph::BuildCanonicalHypergraph(scratch.triples, scratch.filters,
                                  graph::CanonicalOptions(), scratch.canonical,
                                  scratch.hypergraph);
  if (ref_hg.num_edges() != scratch.hypergraph.num_edges()) {
    return fail("hyperedge count differs");
  }
  if (ref_hg.num_nodes() != scratch.hypergraph.num_nodes()) {
    return fail("hypergraph node count differs");
  }
  if (ref_hg.IsAlphaAcyclic() != scratch.hypergraph.IsAlphaAcyclic()) {
    return fail("alpha-acyclicity differs");
  }
  // The exact GHW search is exponential in the worst case; bound the
  // differential run to query-sized hypergraphs (the production gate —
  // bench_analysis_hotpath — replays the full corpus distribution).
  if (ref_hg.num_edges() <= 24) {
    width::GhwResult ref_ghw = reference::GeneralizedHypertreeWidth(ref_hg);
    width::GhwResult new_ghw =
        width::GeneralizedHypertreeWidth(scratch.hypergraph, scratch.ghw);
    if (ref_ghw.width != new_ghw.width ||
        ref_ghw.decomposition_nodes != new_ghw.decomposition_nodes ||
        ref_ghw.exact != new_ghw.exact) {
      return fail("GHW differs: old " + std::to_string(ref_ghw.width) + "/" +
                  std::to_string(ref_ghw.decomposition_nodes) + " vs new " +
                  std::to_string(new_ghw.width) + "/" +
                  std::to_string(new_ghw.decomposition_nodes));
    }
  }
  return std::nullopt;
}

}  // namespace sparqlog::testing
