#ifndef SPARQLOG_TESTING_QUERY_FUZZER_H_
#define SPARQLOG_TESTING_QUERY_FUZZER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "gmark/query_gen.h"
#include "sparql/ast.h"
#include "sparql/termgen.h"
#include "util/rng.h"

namespace sparqlog::testing {

/// What the fuzzer has emitted so far, indexed by the AST enums. The
/// coverage test asserts every slot is non-zero after a few thousand
/// queries, so a new operator added to the AST without fuzzer support
/// fails loudly instead of silently shrinking coverage.
struct FuzzCoverage {
  std::array<uint64_t, 4> forms{};      ///< sparql::QueryForm
  std::array<uint64_t, 11> patterns{};  ///< sparql::PatternKind
  std::array<uint64_t, 8> paths{};      ///< sparql::PathKind
  std::array<uint64_t, 14> exprs{};     ///< sparql::ExprKind
  std::array<uint64_t, 4> terms{};      ///< rdf::TermKind
  std::array<uint64_t, 4> shapes{};     ///< gmark::QueryShape skeletons used
  uint64_t escaped_literals = 0;  ///< literal bodies needing serializer escapes
  uint64_t gmark_skeletons = 0;   ///< queries grown from a gmark BGP
  uint64_t queries = 0;
};

/// Fuzzer configuration. Everything derives deterministically from
/// `seed`; two fuzzers with equal options emit identical sequences.
struct QueryFuzzOptions {
  uint64_t seed = 42;
  /// Maximum nesting of group graph patterns (OPTIONAL in UNION in ...).
  int max_pattern_depth = 3;
  /// Maximum nesting of expressions.
  int max_expr_depth = 3;
  /// Probability that a query grows from a gmark-generated BGP skeleton
  /// (chain / star / cycle / chain-star over the Bib schema) instead of
  /// free-form triples.
  double gmark_skeleton_probability = 0.5;
};

/// Deterministic property-based SPARQL query generator.
///
/// Layered on src/gmark/query_gen: half of the emitted queries start
/// from a gMark workload BGP (the paper's four shapes), the rest from
/// free-form triples; both are then decorated with the full operator
/// surface the canonical serializer knows — every PatternKind, every
/// PathKind, every ExprKind, all four query forms, all solution
/// modifiers, and literal/escape forms from sparql::termgen.
///
/// Generated queries satisfy the serializer-closure constraints (e.g.
/// ASK always has a body, n-ary operators have >= 2 operands, CONSTRUCT
/// templates carry no property paths), so `Serialize(Next())` is always
/// expected to re-parse; a parse failure is a genuine bug in the
/// serializer or parser, not fuzzer noise.
class QueryFuzzer {
 public:
  explicit QueryFuzzer(const QueryFuzzOptions& options = {});

  /// The next query of the deterministic sequence.
  sparql::Query Next();

  const FuzzCoverage& coverage() const { return coverage_; }
  const QueryFuzzOptions& options() const { return options_; }

 private:
  sparql::Pattern GenGroup(int depth);
  sparql::Pattern GenGroupChild(int depth);
  sparql::Pattern GenTriple();
  sparql::Pattern GenValues();
  sparql::Pattern GenSubSelect(int depth);
  sparql::PathExpr GenPath(int depth);
  sparql::Expr GenExpr(int depth, bool allow_aggregate);
  sparql::Expr GenAggregate(int depth);
  rdf::Term GenTerm(const sparql::termgen::TermGenOptions& options);
  rdf::Term GenVarOrIri();
  void GenSolutionModifiers(sparql::Query& q);
  /// Root WHERE children: a gmark skeleton BGP or free-form triples.
  sparql::AstVector<sparql::Pattern> GenBaseTriples();

  QueryFuzzOptions options_;
  util::Rng rng_;
  FuzzCoverage coverage_;
  /// Pre-generated gmark skeletons, all four shapes.
  std::vector<gmark::GeneratedQuery> skeletons_;
};

}  // namespace sparqlog::testing

#endif  // SPARQLOG_TESTING_QUERY_FUZZER_H_
